// aimbench regenerates the paper's tables and figures (see DESIGN.md §4 for
// the experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// results) and runs the declarative scenario observatory (DESIGN.md §13):
// record scenario results under benchmarks/results/, compare fresh runs
// against the promoted host baseline, and gate CI on regression.
//
// Usage:
//
//	aimbench -exp all
//	aimbench -exp fig9b -duration 3s -entities 50000
//	aimbench -exp fused,ingest -record        # emit result files per experiment
//	AIM_FULL=1 aimbench -exp kpi              # full 546-indicator schema
//
//	aimbench -list-scenarios
//	aimbench -scenario smoke -record          # result under benchmarks/results/<fp>/
//	aimbench -scenario smoke -record -promote # and make it the host baseline
//	aimbench -scenario smoke -compare         # diff vs baseline, exit 3 on breach
//	aimbench -scenario specs/custom.json -record
//	aimbench -scenario smoke -compare -fingerprint ci -noise-floor 1.5  # CI gate
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/scenario"
)

type experiment struct {
	name string
	desc string
	run  func(bench.Params) (*bench.Table, error)
}

var experiments = []experiment{
	{"kpi", "Table 4: KPI compliance under the default deployment", bench.KPICompliance},
	{"fig9a", "Fig 9a/10a: partitions (n) x bucket size", bench.Fig9a10a},
	{"fig9b", "Fig 9b/10b: clients (c) sweep, AIM vs baselines", bench.Fig9b10b},
	{"fig9c", "Fig 9c/10c: scale-out with fixed load", bench.Fig9c10c},
	{"fig11", "Fig 11: scalability, load grows with servers", bench.Fig11},
	{"esprate", "§5.1/§5.3: event-rate comparison vs baselines", bench.EventRateComparison},
	{"rules", "§4.4: rule index crossover micro-benchmark", bench.RuleIndexCrossover},
	{"bucket", "§4.5: bucket-size scan ablation", bench.BucketSizeSweep},
	{"batch", "§3.2: shared-scan batch-size ablation", bench.SharedScanBatch},
	{"fused", "§4.7: fused batch plans vs naive shared scan", bench.FusedScanMicro},
	{"steal", "§3.2: fixed assignment vs work-stealing scan", bench.WorkStealingScan},
	{"cow", "§6: differential updates vs copy-on-write", bench.COWvsDelta},
	{"ingest", "batched ingest: wire batch-size sweep over TCP", bench.IngestBatchSweep},
	{"kernels", "scan & apply kernel micro: compares, masked agg, split-phase apply", bench.KernelMicro},
	{"overload", "overload sweep: admission control and shedding vs offered load", bench.OverloadSweep},
	{"chaos", "fault-tolerance drill: flaky/dead node, strict vs degraded RTA", bench.FaultTolerance},
	{"recover", "durability: recovery time vs archive tail length & checkpoint cadence", bench.RecoveryTime},
	{"replica", "replication: WAL-shipped follower, kill-the-primary failover blackout", bench.ReplicaFailover},
	{"mixed", "instrumented mixed load: freshness & latency histograms", bench.MixedWorkload},
	{"tiered", "tiered main: entities/GB and cold-scan penalty, flat vs compressed", bench.TieredSweep},
}

// Exit codes: 0 ok, 1 runtime error, 2 usage error, 3 regression breach.
const exitRegression = 3

func main() {
	var (
		expFlag  = flag.String("exp", "", "experiment(s) to run: comma list, 'all' or 'list'")
		entities = flag.Uint64("entities", 0, "entities per server (overrides AIM_ENTITIES)")
		rate     = flag.Float64("rate", 0, "event rate per server (overrides AIM_RATE)")
		duration = flag.Duration("duration", 0, "measurement window per point (overrides AIM_DURATION)")
		servers  = flag.Int("servers", 0, "max servers for scale-out (overrides AIM_SERVERS)")
		full     = flag.Bool("full", false, "use the full 546-indicator schema")

		metricsDump = flag.String("metrics-dump", "", `write the Prometheus text exposition of everything the experiments measured to this file after the run ("-" = stdout)`)

		scenarioFlag  = flag.String("scenario", "", "scenario to run: a builtin name or a JSON spec path")
		listScenarios = flag.Bool("list-scenarios", false, "list builtin scenarios and exit")
		record        = flag.Bool("record", false, "write a schema-versioned result file under -results-dir")
		compare       = flag.Bool("compare", false, "diff this run against the recorded baseline; exit 3 on regression")
		promote       = flag.Bool("promote", false, "make this run the baseline for its fingerprint")
		trials        = flag.Int("trials", 0, "override the spec's trial count")
		noiseFloor    = flag.Float64("noise-floor", 0, "minimum relative noise band for -compare (default 0.25; CI uses a wide one)")
		bandMADs      = flag.Float64("band-mads", 0, "trial-spread multiplier for the noise band (default 5)")
		fingerprint   = flag.String("fingerprint", "", `override the host fingerprint for result/baseline paths (e.g. "ci")`)
		baselineFlag  = flag.String("baseline", "", "explicit baseline file for -compare (default benchmarks/baselines/<fp>/<scenario>.json)")
		resultsDir    = flag.String("results-dir", scenario.DefaultResultsDir, "root for recorded results")
		baselinesDir  = flag.String("baselines-dir", scenario.DefaultBaselinesDir, "root for promoted baselines")
	)
	flag.Parse()

	if *listScenarios {
		for _, s := range scenario.Builtins() {
			fmt.Printf("%-16s %s\n", s.Name, s.Description)
		}
		return
	}
	if *scenarioFlag != "" && *expFlag != "" {
		fmt.Fprintln(os.Stderr, "aimbench: -scenario and -exp are mutually exclusive")
		os.Exit(2)
	}
	if *scenarioFlag != "" {
		os.Exit(runScenario(scenarioOpts{
			target:       *scenarioFlag,
			record:       *record,
			compare:      *compare,
			promote:      *promote,
			trials:       *trials,
			noiseFloor:   *noiseFloor,
			bandMADs:     *bandMADs,
			fingerprint:  *fingerprint,
			baselineFile: *baselineFlag,
			resultsDir:   *resultsDir,
			baselinesDir: *baselinesDir,
		}))
	}
	if *expFlag == "" {
		*expFlag = "all"
	}

	p := bench.Defaults()
	if *metricsDump != "" || *record {
		// One shared registry across all selected experiments; systems
		// started and stopped in sequence accumulate into the same series,
		// and -record embeds the dump in each emitted result file.
		p.Metrics = obs.NewRegistry()
	}
	if *entities > 0 {
		p.Entities = *entities
	}
	if *rate > 0 {
		p.EventRate = *rate
	}
	if *duration > 0 {
		p.Duration = *duration
	}
	if *servers > 0 {
		p.MaxServers = *servers
	}
	if *full {
		p.FullSchema = true
	}

	if *expFlag == "list" {
		for _, e := range experiments {
			fmt.Printf("%-8s %s\n", e.name, e.desc)
		}
		return
	}

	// Validate the whole selection up front: a typo inside a comma list
	// must error out listing the unmatched names, not silently run a
	// partial set.
	selected := strings.Split(*expFlag, ",")
	if *expFlag != "all" {
		var unknown []string
		for _, name := range selected {
			if !knownExperiment(name) {
				unknown = append(unknown, name)
			}
		}
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "aimbench: unknown experiment(s): %s (try -exp list)\n",
				strings.Join(unknown, ", "))
			os.Exit(2)
		}
	}

	schemaName := "compact (114-indicator)"
	if p.FullSchema {
		schemaName = "full (546-indicator)"
	}
	fmt.Printf("aimbench: %d entities/server, %.0f ev/s, %v/point, <=%d servers, %s schema\n",
		p.Entities, p.EventRate, p.Duration, p.MaxServers, schemaName)

	var reporter *bench.Reporter
	if *record {
		reporter = bench.NewReporter(*resultsDir)
	}
	ran := 0
	start := time.Now()
	for _, e := range experiments {
		if *expFlag != "all" && !contains(selected, e.name) {
			continue
		}
		t0 := time.Now()
		tbl, err := e.run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aimbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s took %v)\n", e.name, time.Since(t0).Round(time.Millisecond))
		if reporter != nil {
			path, err := reporter.EmitExperiment(e.name, tbl, p.Metrics)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aimbench: record %s: %v\n", e.name, err)
				os.Exit(1)
			}
			fmt.Printf("recorded %s\n", path)
		}
		ran++
	}
	fmt.Printf("\ntotal: %d experiment(s) in %v\n", ran, time.Since(start).Round(time.Millisecond))

	if *metricsDump != "" {
		out := os.Stdout
		if *metricsDump != "-" {
			f, err := os.Create(*metricsDump)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aimbench: metrics dump: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		w := bufio.NewWriter(out)
		obs.WriteMetrics(w, p.Metrics)
		w.Flush()
	}
}

func knownExperiment(name string) bool {
	for _, e := range experiments {
		if e.name == name {
			return true
		}
	}
	return false
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

type scenarioOpts struct {
	target       string
	record       bool
	compare      bool
	promote      bool
	trials       int
	noiseFloor   float64
	bandMADs     float64
	fingerprint  string
	baselineFile string
	resultsDir   string
	baselinesDir string
}

// runScenario executes the scenario workflow: run, then any of record /
// compare / promote. Returns the process exit code.
func runScenario(o scenarioOpts) int {
	sp, err := resolveSpec(o.target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aimbench: %v\n", err)
		return 2
	}
	if o.trials > 0 {
		sp.Trials = o.trials
	}
	if !o.record && !o.compare && !o.promote {
		// A bare -scenario run still prints its stats; nothing persists.
		fmt.Println("aimbench: note: neither -record, -compare nor -promote given; results are printed only")
	}

	fmt.Printf("aimbench: scenario %s — %d entities, %.0f ev/s, %d clients, %d trial(s), %v window\n",
		sp.Name, sp.Entities, sp.EventRate, sp.Clients, sp.Trials, sp.MeasuredWindow())
	t0 := time.Now()
	res, err := bench.RunScenario(sp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aimbench: scenario %s: %v\n", sp.Name, err)
		return 1
	}
	if o.fingerprint != "" {
		res.Env.Fingerprint = o.fingerprint
	}
	fmt.Printf("ran %d trial(s) in %v on %s\n", sp.Trials, time.Since(t0).Round(time.Millisecond), res.Env.Fingerprint)
	printMetrics(res)

	if o.record {
		path, err := scenario.WriteResult(o.resultsDir, res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aimbench: record: %v\n", err)
			return 1
		}
		fmt.Printf("recorded %s\n", path)
	}

	exit := 0
	if o.compare {
		bp := o.baselineFile
		if bp == "" {
			bp = scenario.BaselinePath(o.baselinesDir, res.Env.Fingerprint, res.Scenario)
		}
		baseline, err := scenario.LoadResult(bp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aimbench: compare: %v\n(no baseline yet? record one with: aimbench -scenario %s -record -promote)\n",
				err, res.Scenario)
			return 1
		}
		rep, err := scenario.Compare(baseline, res, scenario.CompareOptions{
			NoiseFloor: o.noiseFloor, BandMADs: o.bandMADs,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "aimbench: compare: %v\n", err)
			return 1
		}
		rep.Fprint(os.Stdout)
		if rep.Regressions > 0 {
			fmt.Fprintf(os.Stderr, "aimbench: %d metric(s) regressed beyond the noise band (baseline %s)\n",
				rep.Regressions, bp)
			exit = exitRegression
		}
	}

	if o.promote {
		path, err := scenario.Promote(o.baselinesDir, res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aimbench: promote: %v\n", err)
			return 1
		}
		fmt.Printf("promoted baseline %s\n", path)
	}
	return exit
}

// resolveSpec maps the -scenario argument to a spec: a builtin name, or a
// path to a JSON spec file.
func resolveSpec(target string) (*scenario.Spec, error) {
	if s := scenario.Lookup(target); s != nil {
		return s, nil
	}
	if strings.ContainsAny(target, "/.") {
		return scenario.LoadFile(target)
	}
	return nil, fmt.Errorf("unknown scenario %q (try -list-scenarios, or pass a JSON spec path)", target)
}

func printMetrics(res *scenario.Result) {
	names := make([]string, 0, len(res.Metrics))
	for n := range res.Metrics {
		names = append(names, n)
	}
	// Stable order for eyeballing run-over-run.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		m := res.Metrics[n]
		fmt.Printf("  %-24s %10.2f %-5s (MAD %.2f, trials %v)\n", n, m.Median, m.Unit, m.MAD, fmtTrials(m.Trials))
	}
}

func fmtTrials(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.1f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
