// aimbench regenerates the paper's tables and figures (see DESIGN.md §4 for
// the experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// results).
//
// Usage:
//
//	aimbench -exp all
//	aimbench -exp fig9b -duration 3s -entities 50000
//	AIM_FULL=1 aimbench -exp kpi     # full 546-indicator schema
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

type experiment struct {
	name string
	desc string
	run  func(bench.Params) (*bench.Table, error)
}

var experiments = []experiment{
	{"kpi", "Table 4: KPI compliance under the default deployment", bench.KPICompliance},
	{"fig9a", "Fig 9a/10a: partitions (n) x bucket size", bench.Fig9a10a},
	{"fig9b", "Fig 9b/10b: clients (c) sweep, AIM vs baselines", bench.Fig9b10b},
	{"fig9c", "Fig 9c/10c: scale-out with fixed load", bench.Fig9c10c},
	{"fig11", "Fig 11: scalability, load grows with servers", bench.Fig11},
	{"esprate", "§5.1/§5.3: event-rate comparison vs baselines", bench.EventRateComparison},
	{"rules", "§4.4: rule index crossover micro-benchmark", bench.RuleIndexCrossover},
	{"bucket", "§4.5: bucket-size scan ablation", bench.BucketSizeSweep},
	{"batch", "§3.2: shared-scan batch-size ablation", bench.SharedScanBatch},
	{"fused", "§4.7: fused batch plans vs naive shared scan", bench.FusedScanMicro},
	{"steal", "§3.2: fixed assignment vs work-stealing scan", bench.WorkStealingScan},
	{"cow", "§6: differential updates vs copy-on-write", bench.COWvsDelta},
	{"ingest", "batched ingest: wire batch-size sweep over TCP", bench.IngestBatchSweep},
	{"kernels", "scan & apply kernel micro: compares, masked agg, split-phase apply", bench.KernelMicro},
	{"chaos", "fault-tolerance drill: flaky/dead node, strict vs degraded RTA", bench.FaultTolerance},
	{"recover", "durability: recovery time vs archive tail length & checkpoint cadence", bench.RecoveryTime},
	{"replica", "replication: WAL-shipped follower, kill-the-primary failover blackout", bench.ReplicaFailover},
	{"mixed", "instrumented mixed load: freshness & latency histograms", bench.MixedWorkload},
}

func main() {
	var (
		expFlag  = flag.String("exp", "all", "experiment to run (or 'all' / 'list')")
		entities = flag.Uint64("entities", 0, "entities per server (overrides AIM_ENTITIES)")
		rate     = flag.Float64("rate", 0, "event rate per server (overrides AIM_RATE)")
		duration = flag.Duration("duration", 0, "measurement window per point (overrides AIM_DURATION)")
		servers  = flag.Int("servers", 0, "max servers for scale-out (overrides AIM_SERVERS)")
		full     = flag.Bool("full", false, "use the full 546-indicator schema")

		metricsDump = flag.String("metrics-dump", "", `write the Prometheus text exposition of everything the experiments measured to this file after the run ("-" = stdout)`)
	)
	flag.Parse()

	p := bench.Defaults()
	if *metricsDump != "" {
		// One shared registry across all selected experiments; systems
		// started and stopped in sequence accumulate into the same series.
		p.Metrics = obs.NewRegistry()
	}
	if *entities > 0 {
		p.Entities = *entities
	}
	if *rate > 0 {
		p.EventRate = *rate
	}
	if *duration > 0 {
		p.Duration = *duration
	}
	if *servers > 0 {
		p.MaxServers = *servers
	}
	if *full {
		p.FullSchema = true
	}

	if *expFlag == "list" {
		for _, e := range experiments {
			fmt.Printf("%-8s %s\n", e.name, e.desc)
		}
		return
	}

	schemaName := "compact (114-indicator)"
	if p.FullSchema {
		schemaName = "full (546-indicator)"
	}
	fmt.Printf("aimbench: %d entities/server, %.0f ev/s, %v/point, <=%d servers, %s schema\n",
		p.Entities, p.EventRate, p.Duration, p.MaxServers, schemaName)

	selected := strings.Split(*expFlag, ",")
	ran := 0
	start := time.Now()
	for _, e := range experiments {
		if *expFlag != "all" && !contains(selected, e.name) {
			continue
		}
		t0 := time.Now()
		tbl, err := e.run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aimbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s took %v)\n", e.name, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "aimbench: unknown experiment %q (try -exp list)\n", *expFlag)
		os.Exit(2)
	}
	fmt.Printf("\ntotal: %d experiment(s) in %v\n", ran, time.Since(start).Round(time.Millisecond))

	if *metricsDump != "" {
		out := os.Stdout
		if *metricsDump != "-" {
			f, err := os.Create(*metricsDump)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aimbench: metrics dump: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		w := bufio.NewWriter(out)
		obs.WriteMetrics(w, p.Metrics)
		w.Flush()
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
