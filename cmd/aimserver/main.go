// aimserver runs one AIM storage server over TCP, hosting a partition of
// the Analytics Matrix with colocated ESP threads (the paper's preferred
// architecture (b)). Point aimload at one or more aimservers to drive the
// benchmark across processes or machines.
//
// Usage:
//
//	aimserver -addr :7070
//	aimserver -addr :7070 -partitions 5 -esp 1 -bucket 3072 -full -rules 300
//
// All aimservers in a cluster must use identical schema flags.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/netproto"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/schema"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address")
		partitions = flag.Int("partitions", 0, "data partitions / RTA threads (0 = cores - esp - 2)")
		espThreads = flag.Int("esp", 1, "ESP service threads")
		bucket     = flag.Int("bucket", 3072, "ColumnMap bucket size (1 = row store)")
		maxBatch   = flag.Int("batch", 8, "shared-scan query batch cap")
		full       = flag.Bool("full", false, "full 546-indicator schema (default: compact)")
		ruleCount  = flag.Int("rules", workload.DefaultRuleCount, "business rule count (0 = none)")
		ruleIndex  = flag.Bool("ruleindex", false, "use the Fabret-style rule index")
		seed       = flag.Int64("seed", 42, "workload generation seed")
		statsEvery = flag.Duration("stats", 10*time.Second, "stats logging interval (0 = off)")
		debugAddr  = flag.String("debug-addr", "", "observability HTTP listen address for /metrics, /stats, /trace, /debug/pprof (\"\" = off)")

		faultResetEvery = flag.Int("fault-reset-every", 0, "fault injection: reset every connection after N writes (0 = off)")
		faultReadDelay  = flag.Duration("fault-read-delay", 0, "fault injection: delay before every read")
		faultWriteDelay = flag.Duration("fault-write-delay", 0, "fault injection: delay before every write")
		faultDrop       = flag.Bool("fault-drop", false, "fault injection: silently drop all writes")
	)
	flag.Parse()

	var sch *schema.Schema
	var err error
	if *full {
		sch, err = workload.BuildSchema()
	} else {
		sch, err = workload.BuildSmallSchema()
	}
	if err != nil {
		log.Fatalf("aimserver: schema: %v", err)
	}
	dims, err := workload.BuildDimensions(*seed)
	if err != nil {
		log.Fatalf("aimserver: dimensions: %v", err)
	}
	var ruleSet []rules.Rule
	if *ruleCount > 0 {
		ruleSet, err = workload.BuildRules(sch, *ruleCount, *seed)
		if err != nil {
			log.Fatalf("aimserver: rules: %v", err)
		}
	}

	reg := obs.NewRegistry()
	tracer := obs.NewRingTracer(4096)
	node, err := core.NewNode(core.Config{
		Schema:       sch,
		Dims:         dims.Store,
		Partitions:   *partitions,
		ESPThreads:   *espThreads,
		BucketSize:   *bucket,
		Factory:      dims.Factory(sch),
		MaxBatch:     *maxBatch,
		Rules:        ruleSet,
		UseRuleIndex: *ruleIndex,
		Metrics:      reg,
		Tracer:       tracer,
	})
	if err != nil {
		log.Fatalf("aimserver: %v", err)
	}
	scfg := netproto.ServerConfig{Metrics: netproto.NewServerMetrics(reg)}
	if *faultResetEvery > 0 || *faultReadDelay > 0 || *faultWriteDelay > 0 || *faultDrop {
		plan := netproto.NewFaultPlan()
		plan.SetResetEvery(*faultResetEvery)
		plan.SetReadDelay(*faultReadDelay)
		plan.SetWriteDelay(*faultWriteDelay)
		plan.SetDropWrites(*faultDrop)
		scfg.ConnWrap = plan.Wrap
		fmt.Println("aimserver: FAULT INJECTION ACTIVE on all accepted connections")
	}
	srv, err := netproto.ServeWithConfig(*addr, node, sch, scfg)
	if err != nil {
		log.Fatalf("aimserver: listen: %v", err)
	}
	fmt.Printf("aimserver: listening on %s (%d indicators, %d B records, n=%d partitions, s=%d ESP threads, %d rules)\n",
		srv.Addr(), workload.NumIndicators(sch), sch.RecordBytes(),
		node.NumPartitions(), *espThreads, len(ruleSet))

	var dbg *obs.DebugServer
	if *debugAddr != "" {
		dbg, err = obs.Serve(*debugAddr, reg, tracer)
		if err != nil {
			log.Fatalf("aimserver: debug listen: %v", err)
		}
		fmt.Printf("aimserver: debug endpoints on http://%s/{metrics,stats,trace,debug/pprof}\n", dbg.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if *statsEvery > 0 {
		go func() {
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			var last core.NodeStats
			lastAt := time.Now()
			for range tick.C {
				// One snapshot per tick; everything below is derived from it
				// so the logged counters and rates are mutually consistent.
				st := node.Stats()
				now := time.Now()
				dt := now.Sub(lastAt).Seconds()
				if dt <= 0 {
					dt = 1
				}
				evRate := float64(st.EventsProcessed-last.EventsProcessed) / dt
				qRate := float64(st.QueriesServed-last.QueriesServed) / dt
				fmt.Printf("aimserver: records=%d events=%d (%.0f/s) queries=%d (%.1f/s) firings=%d merges=%d\n",
					st.Records, st.EventsProcessed, evRate,
					st.QueriesServed, qRate,
					st.RuleFirings, st.MergedRecords)
				last, lastAt = st, now
			}
		}()
	}
	<-stop
	fmt.Println("aimserver: shutting down")
	if dbg != nil {
		dbg.Close()
	}
	srv.Close()
	node.Stop()
}
