// aimserver runs one AIM storage server over TCP, hosting a partition of
// the Analytics Matrix with colocated ESP threads (the paper's preferred
// architecture (b)). Point aimload at one or more aimservers to drive the
// benchmark across processes or machines.
//
// Usage:
//
//	aimserver -addr :7070
//	aimserver -addr :7070 -partitions 5 -esp 1 -bucket 3072 -full -rules 300
//	aimserver -addr :7070 -data-dir /var/lib/aim -checkpoint-every 10s -recover auto
//	aimserver -addr :7071 -data-dir /var/lib/aim-f -follow 127.0.0.1:7070
//
// All aimservers in a cluster must use identical schema flags. With
// -data-dir, every ingested event is write-ahead-logged to the archive,
// fuzzy checkpoints run in the background, and on start the node recovers
// from checkpoint + archive-tail replay (see -recover for the corruption
// policy).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/archive"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/crashpoint"
	"repro/internal/netproto"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/rules"
	"repro/internal/schema"
	"repro/internal/workload"
)

// openDurable recovers the archive + checkpoint state under dataDir and
// builds the node from it, honoring the -recover policy: strict and salvage
// force one mode; auto tries strict first and falls back to salvage when —
// and only when — validation found corruption.
func openDurable(dataDir, mode string, fsync bool, cfg core.Config, reg *obs.Registry) (*core.StorageNode, *archive.Archive, *checkpoint.Manager, error) {
	walDir := filepath.Join(dataDir, "wal")
	ckptDir := filepath.Join(dataDir, "ckpt")
	openArch := func(rm archive.RecoveryMode) (*archive.Archive, error) {
		return archive.Open(walDir, archive.Options{
			SyncOnWrite: fsync, Recovery: rm, Metrics: reg,
		})
	}
	var arch *archive.Archive
	var err error
	switch mode {
	case "strict":
		arch, err = openArch(archive.Strict)
	case "salvage":
		arch, err = openArch(archive.Salvage)
	case "auto":
		arch, err = openArch(archive.Strict)
		if err != nil && errors.Is(err, archive.ErrCorrupt) {
			log.Printf("aimserver: archive corrupt (%v); retrying in salvage mode", err)
			arch, err = openArch(archive.Salvage)
		}
	default:
		return nil, nil, nil, fmt.Errorf("bad -recover mode %q (want auto, strict, or salvage)", mode)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	if rep := arch.Report(); !rep.Clean() {
		log.Printf("aimserver: archive salvage dropped %d frames (%d B truncated, %d segments quarantined)",
			rep.FramesDropped, rep.BytesTruncated, len(rep.QuarantinedFiles))
	}
	mgr, err := checkpoint.NewManager(ckptDir)
	if err != nil {
		arch.Close()
		return nil, nil, nil, err
	}
	cfg.Archive = arch
	restore := func(lm checkpoint.LoadMode) (*core.StorageNode, *core.RecoveryReport, error) {
		return core.RestoreWithReport(cfg, mgr, lm)
	}
	var node *core.StorageNode
	var rep *core.RecoveryReport
	switch mode {
	case "salvage":
		node, rep, err = restore(checkpoint.Salvage)
	default:
		node, rep, err = restore(checkpoint.Strict)
		if err != nil && mode == "auto" && errors.Is(err, checkpoint.ErrCorrupt) {
			log.Printf("aimserver: checkpoint chain corrupt (%v); retrying in salvage mode", err)
			node, rep, err = restore(checkpoint.Salvage)
		}
	}
	if err != nil {
		arch.Close()
		return nil, nil, nil, err
	}
	fmt.Printf("aimserver: recovered %d records from %d checkpoint file(s), replayed %d archived events past LSN %d in %v\n",
		rep.Records, len(rep.Checkpoint.FilesLoaded), rep.TailEvents, rep.Watermark, rep.Duration.Round(time.Millisecond))
	if !rep.Checkpoint.Clean() {
		log.Printf("aimserver: checkpoint salvage quarantined %d file(s): %v",
			len(rep.Checkpoint.QuarantinedFiles), rep.Checkpoint.QuarantinedFiles)
	}
	return node, arch, mgr, nil
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address")
		partitions = flag.Int("partitions", 0, "data partitions / RTA threads (0 = cores - esp - 2)")
		espThreads = flag.Int("esp", 1, "ESP service threads")
		bucket     = flag.Int("bucket", 3072, "ColumnMap bucket size (1 = row store)")
		maxBatch   = flag.Int("batch", 8, "shared-scan query batch cap")
		full       = flag.Bool("full", false, "full 546-indicator schema (default: compact)")
		ruleCount  = flag.Int("rules", workload.DefaultRuleCount, "business rule count (0 = none)")
		ruleIndex  = flag.Bool("ruleindex", false, "use the Fabret-style rule index")
		seed       = flag.Int64("seed", 42, "workload generation seed")
		statsEvery = flag.Duration("stats", 10*time.Second, "stats logging interval (0 = off)")
		debugAddr  = flag.String("debug-addr", "", "observability HTTP listen address for /metrics, /stats, /trace, /debug/pprof (\"\" = off)")

		ingestBatch  = flag.Int("ingest-batch", 256, "coalesce per-event frames server-side into batches of up to N events (0 or 1 = apply per event)")
		ingestLinger = flag.Duration("ingest-linger", time.Millisecond, "max time a partial server-side ingest batch may wait for more events")

		follow        = flag.String("follow", "", "run as a follower replica: tail this primary aimserver's WAL stream (resumes from the local WAL frontier with -data-dir)")
		replHeartbeat = flag.Duration("repl-heartbeat", 25*time.Millisecond, "replication stream heartbeat interval served to subscribers")

		dataDir   = flag.String("data-dir", "", "durability directory (event archive + checkpoints; \"\" = in-memory only)")
		ckptEvery = flag.Duration("checkpoint-every", 10*time.Second, "background fuzzy-checkpoint interval (0 = no background checkpoints)")
		baseEvery = flag.Int("base-every", 8, "every Nth checkpoint is a full base (drives retention GC)")
		fsync     = flag.Bool("fsync", false, "fsync the archive after every append (durable per event, slower)")
		ckptGC    = flag.Bool("checkpoint-gc", true, "delete superseded checkpoints and truncate the archive below each base")
		recovery  = flag.String("recover", "auto", "recovery mode with -data-dir: auto, strict, or salvage")

		bucketFreeze = flag.Bool("bucket-freeze", false, "enable the tiered main: full buckets unwritten for -cold-after merge epochs freeze into immutable compressed chunks; a delta write thaws its bucket")
		coldAfter    = flag.Int("cold-after", core.DefaultColdAfterEpochs, "with -bucket-freeze: merge epochs a full bucket must go unwritten before it freezes (0 = eager, freeze after a single idle epoch)")

		overload        = flag.Bool("overload", false, "enable overload protection: typed reject-with-retry-after ingest admission, delta watermarks, bounded scan admission")
		queueLen        = flag.Int("esp-queue", 0, "per-ESP-worker request queue capacity (0 = default 4096)")
		queueSoft       = flag.Int("queue-soft", 0, "with -overload: reject fire-and-forget ingest past this ESP queue depth (0 = 7/8 of -esp-queue)")
		deltaSoft       = flag.Int("delta-soft", 0, "with -overload: per-partition delta records past which merges are prioritized (0 = 32768)")
		deltaHard       = flag.Int("delta-hard", 0, "with -overload: per-partition delta records past which ingest rejects (0 = 2x -delta-soft)")
		retryAfter      = flag.Duration("retry-after", 0, "with -overload: backoff hint attached to overload rejections (0 = 2ms)")
		maxPendingQ     = flag.Int("max-pending-queries", 0, "with -overload: reject query submissions past this many pending (0 = submit queue capacity)")
		faultResetEvery = flag.Int("fault-reset-every", 0, "fault injection: reset every connection after N writes (0 = off)")
		faultReadDelay  = flag.Duration("fault-read-delay", 0, "fault injection: delay before every read")
		faultWriteDelay = flag.Duration("fault-write-delay", 0, "fault injection: delay before every write")
		faultDrop       = flag.Bool("fault-drop", false, "fault injection: silently drop all writes")
	)
	flag.Parse()

	if err := crashpoint.ArmFromEnv(); err != nil {
		log.Fatalf("aimserver: %s: %v", crashpoint.EnvVar, err)
	}

	var sch *schema.Schema
	var err error
	if *full {
		sch, err = workload.BuildSchema()
	} else {
		sch, err = workload.BuildSmallSchema()
	}
	if err != nil {
		log.Fatalf("aimserver: schema: %v", err)
	}
	dims, err := workload.BuildDimensions(*seed)
	if err != nil {
		log.Fatalf("aimserver: dimensions: %v", err)
	}
	var ruleSet []rules.Rule
	if *ruleCount > 0 {
		ruleSet, err = workload.BuildRules(sch, *ruleCount, *seed)
		if err != nil {
			log.Fatalf("aimserver: rules: %v", err)
		}
	}

	reg := obs.NewRegistry()
	tracer := obs.NewRingTracer(4096)
	cfg := core.Config{
		Schema:       sch,
		Dims:         dims.Store,
		Partitions:   *partitions,
		ESPThreads:   *espThreads,
		BucketSize:   *bucket,
		Factory:      dims.Factory(sch),
		MaxBatch:     *maxBatch,
		ESPQueueLen:  *queueLen,
		Rules:        ruleSet,
		UseRuleIndex: *ruleIndex,
		Metrics:      reg,
		Tracer:       tracer,
	}
	if *coldAfter < 0 {
		log.Fatalf("aimserver: -cold-after must be >= 0")
	}
	if *bucketFreeze {
		cfg.Tier = core.TierConfig{Enabled: true, ColdAfterEpochs: *coldAfter}
	}
	if *overload {
		cfg.Overload = core.OverloadConfig{
			Enabled:           true,
			ESPQueueSoftLimit: *queueSoft,
			DeltaSoftRecords:  *deltaSoft,
			DeltaHardRecords:  *deltaHard,
			RetryAfter:        *retryAfter,
			MaxPendingQueries: *maxPendingQ,
		}
	}
	var node *core.StorageNode
	var arch *archive.Archive
	var mgr *checkpoint.Manager
	var ckptr *core.Checkpointer
	if *dataDir != "" {
		node, arch, mgr, err = openDurable(*dataDir, *recovery, *fsync, cfg, reg)
		if err != nil {
			log.Fatalf("aimserver: recovery: %v", err)
		}
		if *ckptEvery > 0 {
			ckptr = node.StartCheckpointer(mgr, core.CheckpointerOptions{
				Interval:  *ckptEvery,
				BaseEvery: *baseEvery,
				GC:        *ckptGC,
				OnError:   func(err error) { log.Printf("aimserver: checkpoint: %v", err) },
			})
		}
	} else {
		node, err = core.NewNode(cfg)
		if err != nil {
			log.Fatalf("aimserver: %v", err)
		}
	}
	// Follower mode: tail the primary's WAL stream into this node via the
	// batched apply path. With -data-dir the subscription resumes from the
	// local WAL frontier, so a restarted follower re-ships only what it
	// missed; the Reopen hook redials a bounced primary from the watermark.
	var follower *repl.Follower
	if *follow != "" {
		fromLSN := uint64(0)
		if arch != nil {
			fromLSN = arch.NextLSN()
		}
		follower = repl.NewFollower(node, fromLSN, repl.FollowerConfig{
			Metrics: reg,
			Label:   *follow,
			Reopen: func(from uint64) (repl.Source, error) {
				return netproto.DialReplica(*follow, from, netproto.ReplicaConfig{})
			},
		})
		src, err := netproto.DialReplica(*follow, fromLSN, netproto.ReplicaConfig{})
		if err != nil {
			log.Fatalf("aimserver: follow %s: %v", *follow, err)
		}
		if src.StartLSN() != fromLSN {
			// The primary GC'd the log past our frontier; silently applying
			// from the clamp would hide a hole in the replica.
			log.Fatalf("aimserver: follow %s: primary log starts at LSN %d, local WAL ends at %d — gap; wipe -data-dir and re-seed",
				*follow, src.StartLSN(), fromLSN)
		}
		if err := follower.Start(src); err != nil {
			log.Fatalf("aimserver: follow %s: %v", *follow, err)
		}
		fmt.Printf("aimserver: following %s from LSN %d\n", *follow, fromLSN)
	}
	scfg := netproto.ServerConfig{
		Metrics:       netproto.NewServerMetrics(reg),
		IngestBatch:   *ingestBatch,
		IngestLinger:  *ingestLinger,
		ReplArchive:   arch, // durable servers serve the WAL stream to subscribers
		ReplHeartbeat: *replHeartbeat,
	}
	if follower != nil {
		scfg.OnPromote = func() (uint64, error) {
			sealed, err := follower.Promote()
			if err == nil {
				fmt.Printf("aimserver: promoted at LSN %d; now accepting ingest as primary\n", sealed)
			}
			return sealed, err
		}
	}
	if *faultResetEvery > 0 || *faultReadDelay > 0 || *faultWriteDelay > 0 || *faultDrop {
		plan := netproto.NewFaultPlan()
		plan.SetResetEvery(*faultResetEvery)
		plan.SetReadDelay(*faultReadDelay)
		plan.SetWriteDelay(*faultWriteDelay)
		plan.SetDropWrites(*faultDrop)
		scfg.ConnWrap = plan.Wrap
		fmt.Println("aimserver: FAULT INJECTION ACTIVE on all accepted connections")
	}
	srv, err := netproto.ServeWithConfig(*addr, node, sch, scfg)
	if err != nil {
		log.Fatalf("aimserver: listen: %v", err)
	}
	fmt.Printf("aimserver: listening on %s (%d indicators, %d B records, n=%d partitions, s=%d ESP threads, %d rules)\n",
		srv.Addr(), workload.NumIndicators(sch), sch.RecordBytes(),
		node.NumPartitions(), *espThreads, len(ruleSet))

	var dbg *obs.DebugServer
	if *debugAddr != "" {
		dbg, err = obs.Serve(*debugAddr, reg, tracer)
		if err != nil {
			log.Fatalf("aimserver: debug listen: %v", err)
		}
		fmt.Printf("aimserver: debug endpoints on http://%s/{metrics,stats,trace,debug/pprof}\n", dbg.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if *statsEvery > 0 {
		go func() {
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			var last core.NodeStats
			lastAt := time.Now()
			for range tick.C {
				// One snapshot per tick; everything below is derived from it
				// so the logged counters and rates are mutually consistent.
				st := node.Stats()
				now := time.Now()
				dt := now.Sub(lastAt).Seconds()
				if dt <= 0 {
					dt = 1
				}
				evRate := float64(st.EventsProcessed-last.EventsProcessed) / dt
				qRate := float64(st.QueriesServed-last.QueriesServed) / dt
				fmt.Printf("aimserver: records=%d events=%d (%.0f/s) queries=%d (%.1f/s) firings=%d merges=%d\n",
					st.Records, st.EventsProcessed, evRate,
					st.QueriesServed, qRate,
					st.RuleFirings, st.MergedRecords)
				last, lastAt = st, now
			}
		}()
	}
	<-stop
	// Graceful shutdown: stop accepting traffic, drain the ESP pipeline,
	// then make everything durable (final checkpoint + archive sync) before
	// the process exits — dying mid-write is what the crash harness tests,
	// not what an operator-initiated shutdown should do.
	fmt.Println("aimserver: shutting down")
	if dbg != nil {
		dbg.Close()
	}
	srv.Close()
	if follower != nil {
		follower.Stop()
	}
	if ckptr != nil {
		ckptr.Stop()
	}
	if mgr != nil {
		if err := node.FlushEvents(); err != nil {
			log.Printf("aimserver: drain: %v", err)
		}
		if err := node.Checkpoint(mgr, false); err != nil {
			log.Printf("aimserver: final checkpoint: %v", err)
		}
	}
	node.Stop()
	if arch != nil {
		if err := arch.Close(); err != nil {
			log.Printf("aimserver: archive close: %v", err)
		}
	}
	fmt.Println("aimserver: shutdown complete")
}
