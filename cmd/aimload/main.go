// aimload drives the Huawei benchmark against one or more aimserver
// instances: a fixed-rate CDR stream through the ESP router and/or
// closed-loop RTA clients issuing the Q1–Q7 mix, reporting end-to-end
// throughput and latency like the paper's dedicated driver machines (§5.1).
//
// Usage:
//
//	aimload -servers 127.0.0.1:7070,127.0.0.1:7071 -rate 10000 -clients 8 -duration 30s
//	aimload -servers 127.0.0.1:7070 -clients 0 -rate 100000   # ESP only
//	aimload -servers 127.0.0.1:7070 -rate 0 -clients 16       # RTA only
//
// Schema flags must match the servers'.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/esp"
	"repro/internal/event"
	"repro/internal/netproto"
	"repro/internal/obs"
	"repro/internal/rta"
	"repro/internal/schema"
	"repro/internal/workload"
)

func main() {
	var (
		servers  = flag.String("servers", "127.0.0.1:7070", "comma-separated aimserver addresses")
		entities = flag.Uint64("entities", 20_000, "subscriber population")
		rate     = flag.Float64("rate", 10_000, "event rate (events/second, 0 = no events)")
		clients  = flag.Int("clients", 8, "closed-loop RTA clients (0 = no queries)")
		duration = flag.Duration("duration", 10*time.Second, "measurement window")
		preload  = flag.Bool("preload", true, "materialize every entity with one event first")
		full     = flag.Bool("full", false, "full 546-indicator schema (must match servers)")
		seed     = flag.Int64("seed", 42, "workload seed")

		callTimeout = flag.Duration("call-timeout", netproto.DefaultCallTimeout, "per-RPC deadline (negative = none)")
		retries     = flag.Int("retries", netproto.DefaultMaxRetries, "retry budget for idempotent RPCs")
		degraded    = flag.Bool("degraded", false, "tolerate node failures: accept incomplete RTA results")

		queryDeadline = flag.Duration("query-deadline", 0, "per-query deadline stamped on every RTA query; past-deadline queries are shed server-side (0 = none, implies -degraded semantics for shed partials)")
		spillPolicy   = flag.String("spill-policy", "reject", "full-spill-queue policy: reject (typed overload error), drop-oldest, or block")

		ingestBatch  = flag.Int("ingest-batch", 256, "coalesce outgoing events client-side into wire batches of up to N events (0 or 1 = one frame per event)")
		ingestLinger = flag.Duration("ingest-linger", time.Millisecond, "max time a partial client-side event batch may wait before it is flushed")

		metricsDump = flag.String("metrics-dump", "", `after the run, dump metrics: "local" = this process's client-side registry (Prometheus text on stdout); anything else = a server -debug-addr to fetch /metrics from`)

		promote = flag.String("promote", "", "one-shot: tell this follower aimserver to promote itself (seal its replay and accept ingest), print the sealed LSN, and exit")
	)
	flag.Parse()

	var sch *schema.Schema
	var err error
	if *full {
		sch, err = workload.BuildSchema()
	} else {
		sch, err = workload.BuildSmallSchema()
	}
	if err != nil {
		log.Fatalf("aimload: schema: %v", err)
	}

	// Manual failover: one promote RPC, no load.
	if *promote != "" {
		cli, err := netproto.Dial(*promote, sch)
		if err != nil {
			log.Fatalf("aimload: dial %s: %v", *promote, err)
		}
		defer cli.Close()
		sealed, err := cli.Promote()
		if err != nil {
			log.Fatalf("aimload: promote %s: %v", *promote, err)
		}
		fmt.Printf("aimload: %s promoted, sealed at LSN %d\n", *promote, sealed)
		return
	}

	// The load driver keeps its own registry for the client side of the
	// wire: RPC latencies, retries, reconnects, breaker states and the
	// coordinator's end-to-end query latency.
	reg := obs.NewRegistry()
	var handles []core.Storage
	var conns []*netproto.Client
	ccfg := netproto.ClientConfig{
		CallTimeout: *callTimeout,
		MaxRetries:  *retries,
		Metrics:     netproto.NewClientMetrics(reg, nil),
		EventBatch:  *ingestBatch,
		EventLinger: *ingestLinger,
	}
	for _, addr := range strings.Split(*servers, ",") {
		cli, err := netproto.DialConfig(strings.TrimSpace(addr), sch, ccfg)
		if err != nil {
			log.Fatalf("aimload: dial %s: %v", addr, err)
		}
		defer cli.Close()
		conns = append(conns, cli)
		handles = append(handles, cli)
	}
	pol, err := cluster.ParseSpillPolicy(*spillPolicy)
	if err != nil {
		log.Fatalf("aimload: %v", err)
	}
	cl, err := cluster.NewWithHealth(handles, cluster.HealthConfig{SpillPolicy: pol})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	cl.Instrument(reg)
	router := esp.NewRouter(cl)

	if *preload {
		fmt.Printf("aimload: preloading %d entities ...\n", *entities)
		gen := event.NewGenerator(*entities, *seed)
		var ev event.Event
		for e := uint64(1); e <= *entities; e++ {
			gen.NextFor(&ev, e)
			if err := router.Ingest(ev); err != nil {
				log.Fatalf("aimload: preload: %v", err)
			}
		}
		if err := router.Flush(); err != nil {
			log.Fatalf("aimload: preload flush: %v", err)
		}
	}

	var wg sync.WaitGroup
	var espStats esp.DriverStats
	if *rate > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := &esp.Driver{
				Gen:   event.NewGenerator(*entities, *seed+1),
				Rate:  *rate,
				Sink:  router.Ingest,
				Batch: *ingestBatch,
			}
			var err error
			espStats, err = d.Run(*duration, 0)
			if err != nil {
				log.Printf("aimload: driver: %v", err)
			}
			if err := router.Flush(); err != nil {
				log.Printf("aimload: flush: %v", err)
			}
		}()
	}

	var rtaStats rta.ClientStats
	if *clients > 0 {
		rcfg := rta.Config{Metrics: rta.NewMetrics(reg), QueryTimeout: *queryDeadline}
		if *degraded || *queryDeadline > 0 {
			rcfg.Policy = rta.PolicyDegraded
		}
		coord, err := rta.NewCoordinatorConfig(cl.Nodes(), rcfg)
		if err != nil {
			log.Fatal(err)
		}
		sources := make([]rta.QuerySource, *clients)
		for i := range sources {
			g, err := workload.NewQueryGen(sch, *seed+int64(i)+100)
			if err != nil {
				log.Fatal(err)
			}
			sources[i] = g
		}
		rtaStats = rta.RunClosedLoop(coord, sources, *duration)
	}
	wg.Wait()

	fmt.Printf("\naimload results (%v window, %d servers):\n", *duration, len(handles))
	if *rate > 0 {
		fmt.Printf("  ESP: %d events, %.0f ev/s achieved (target %.0f)\n",
			espStats.Sent, espStats.AchievedRate, *rate)
	}
	if *clients > 0 {
		fmt.Printf("  RTA: %d queries, %.0f q/s, mean %.2fms, p95 %.2fms, max %.2fms, %d errors\n",
			rtaStats.Queries, rtaStats.Throughput,
			float64(rtaStats.MeanLatency.Microseconds())/1000,
			float64(rtaStats.P95Latency.Microseconds())/1000,
			float64(rtaStats.MaxLatency.Microseconds())/1000,
			rtaStats.Errors)
	}
	var reconnects uint64
	for _, c := range conns {
		reconnects += c.Reconnects()
	}
	if reconnects > 0 {
		fmt.Printf("  net: %d reconnect(s) during the run\n", reconnects)
	}

	switch *metricsDump {
	case "":
	case "local":
		fmt.Println()
		w := bufio.NewWriter(os.Stdout)
		obs.WriteMetrics(w, reg)
		w.Flush()
	default:
		url := "http://" + *metricsDump + "/metrics"
		resp, err := http.Get(url)
		if err != nil {
			log.Fatalf("aimload: metrics dump %s: %v", url, err)
		}
		fmt.Println()
		io.Copy(os.Stdout, resp.Body)
		resp.Body.Close()
	}
}
