package aim

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/vec"
)

// Cond is one comparison usable in Where clauses, built with Gt/Lt/Eq/etc.
type Cond struct {
	attr string
	op   vec.CmpOp
	val  float64
	str  *string // set for string-attribute conditions
}

// Gt builds attribute > v.
func Gt(attr string, v float64) Cond { return Cond{attr: attr, op: vec.Gt, val: v} }

// Ge builds attribute >= v.
func Ge(attr string, v float64) Cond { return Cond{attr: attr, op: vec.Ge, val: v} }

// Lt builds attribute < v.
func Lt(attr string, v float64) Cond { return Cond{attr: attr, op: vec.Lt, val: v} }

// Le builds attribute <= v.
func Le(attr string, v float64) Cond { return Cond{attr: attr, op: vec.Le, val: v} }

// Eq builds attribute == v.
func Eq(attr string, v float64) Cond { return Cond{attr: attr, op: vec.Eq, val: v} }

// Ne builds attribute != v.
func Ne(attr string, v float64) Cond { return Cond{attr: attr, op: vec.Ne, val: v} }

// EqStr builds string-attribute == v (dictionary-encoded attributes only).
func EqStr(attr, v string) Cond { return Cond{attr: attr, op: vec.Eq, str: &v} }

// NeStr builds string-attribute != v.
func NeStr(attr, v string) Cond { return Cond{attr: attr, op: vec.Ne, str: &v} }

// QueryBuilder assembles a Query against a schema, resolving attribute
// names and value types.
type QueryBuilder struct {
	sch   *Schema
	q     *Query
	err   error
	nextQ uint64
}

// NewQuery starts a query against the schema.
func NewQuery(sch *Schema) *QueryBuilder {
	return &QueryBuilder{sch: sch, q: &Query{GroupBy: -1}}
}

func (qb *QueryBuilder) attr(name string) int {
	if qb.err != nil {
		return 0
	}
	i, err := qb.sch.AttrIndex(name)
	if err != nil {
		qb.err = err
	}
	return i
}

func (qb *QueryBuilder) pred(c Cond) query.Predicate {
	a := qb.attr(c.attr)
	if qb.err != nil {
		return query.Predicate{}
	}
	if c.str != nil {
		return query.PredString(qb.sch, a, c.op, *c.str)
	}
	if qb.sch.Attrs[a].Type == schema.TypeFloat64 {
		return query.PredFloat(a, c.op, c.val)
	}
	return query.PredInt(a, c.op, int64(c.val))
}

// Where adds one conjunct (AND of the given conditions). Multiple Where
// calls are OR-ed together (DNF).
func (qb *QueryBuilder) Where(conds ...Cond) *QueryBuilder {
	if len(conds) == 0 {
		qb.err = fmt.Errorf("aim: Where needs at least one condition")
		return qb
	}
	conj := make(query.Conjunct, 0, len(conds))
	for _, c := range conds {
		conj = append(conj, qb.pred(c))
	}
	qb.q.Where = append(qb.q.Where, conj)
	return qb
}

// Count projects COUNT(*).
func (qb *QueryBuilder) Count() *QueryBuilder {
	qb.q.Aggs = append(qb.q.Aggs, query.AggExpr{Op: query.OpCount})
	return qb
}

// Sum projects SUM(attr).
func (qb *QueryBuilder) Sum(attr string) *QueryBuilder {
	qb.q.Aggs = append(qb.q.Aggs, query.AggExpr{Op: query.OpSum, Attr: qb.attr(attr)})
	return qb
}

// Avg projects AVG(attr).
func (qb *QueryBuilder) Avg(attr string) *QueryBuilder {
	qb.q.Aggs = append(qb.q.Aggs, query.AggExpr{Op: query.OpAvg, Attr: qb.attr(attr)})
	return qb
}

// Min projects MIN(attr).
func (qb *QueryBuilder) Min(attr string) *QueryBuilder {
	qb.q.Aggs = append(qb.q.Aggs, query.AggExpr{Op: query.OpMin, Attr: qb.attr(attr)})
	return qb
}

// Max projects MAX(attr).
func (qb *QueryBuilder) Max(attr string) *QueryBuilder {
	qb.q.Aggs = append(qb.q.Aggs, query.AggExpr{Op: query.OpMax, Attr: qb.attr(attr)})
	return qb
}

// ArgMax projects the entity id with the maximum attr value.
func (qb *QueryBuilder) ArgMax(attr string) *QueryBuilder {
	qb.q.Aggs = append(qb.q.Aggs, query.AggExpr{Op: query.OpArgMax, Attr: qb.attr(attr)})
	return qb
}

// ArgMin projects the entity id with the minimum attr value.
func (qb *QueryBuilder) ArgMin(attr string) *QueryBuilder {
	qb.q.Aggs = append(qb.q.Aggs, query.AggExpr{Op: query.OpArgMin, Attr: qb.attr(attr)})
	return qb
}

// ArgMinRatio projects the entity id minimizing num/den.
func (qb *QueryBuilder) ArgMinRatio(num, den string) *QueryBuilder {
	qb.q.Aggs = append(qb.q.Aggs, query.AggExpr{
		Op: query.OpArgMinRatio, Attr: qb.attr(num), Attr2: qb.attr(den),
	})
	return qb
}

// GroupBy groups results by an attribute.
func (qb *QueryBuilder) GroupBy(attr string) *QueryBuilder {
	qb.q.GroupBy = qb.attr(attr)
	return qb
}

// GroupByString groups by a dictionary-encoded string attribute, resolving
// group keys back to strings.
func (qb *QueryBuilder) GroupByString(attr string) *QueryBuilder {
	qb.q.GroupBy = qb.attr(attr)
	qb.q.GroupDictNames = true
	return qb
}

// JoinGroup groups by an attribute mapped through a dimension table column
// (e.g. JoinGroup("zip", "RegionInfo", "city") groups by city).
func (qb *QueryBuilder) JoinGroup(attr, table, column string) *QueryBuilder {
	qb.q.GroupBy = qb.attr(attr)
	qb.q.GroupDim = &query.DimJoin{Table: table, Column: column}
	return qb
}

// Ratio appends a derived column dividing projection num by projection den
// (0-based projection indices, in declaration order).
func (qb *QueryBuilder) Ratio(num, den int) *QueryBuilder {
	qb.q.Derived = append(qb.q.Derived, query.Ratio{Num: num, Den: den})
	return qb
}

// Limit caps the number of result rows.
func (qb *QueryBuilder) Limit(n int) *QueryBuilder {
	qb.q.Limit = n
	return qb
}

// Build validates and returns the query.
func (qb *QueryBuilder) Build() (*Query, error) {
	if qb.err != nil {
		return nil, qb.err
	}
	if err := qb.q.Validate(qb.sch); err != nil {
		return nil, err
	}
	return qb.q, nil
}
