package aim

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/esp"
	"repro/internal/rta"
)

// Options configures a System. Only Schema is required; the defaults follow
// the paper's single-server setup (1 storage server, n = 5 partitions,
// s = 1 ESP thread, query batches of 8).
type Options struct {
	// Schema is the Analytics-Matrix schema (required).
	Schema *Schema
	// Dimensions holds dimension tables replicated at every server.
	Dimensions *DimensionStore
	// Servers is the number of storage servers (default 1).
	Servers int
	// PartitionsPerServer is n (default 5).
	PartitionsPerServer int
	// ESPThreadsPerServer is s (default 1).
	ESPThreadsPerServer int
	// BucketSize tunes the ColumnMap (default 3072; 1 = row store).
	BucketSize int
	// MaxBatch caps shared-scan query batches (default 8).
	MaxBatch int
	// Rules is the Business Rule set, replicated at every server.
	Rules []Rule
	// UseRuleIndex enables the Fabret-style rule index.
	UseRuleIndex bool
	// OnFiring receives rule firings; must be cheap and thread-safe.
	OnFiring func(Firing)
	// Factory creates Entity Records for unseen entities (segmentation
	// attributes). Defaults to zeroed records.
	Factory func(uint64) Record
	// FreshnessPause bounds how long the system idles between merge
	// rounds when no queries arrive (default 500µs).
	FreshnessPause time.Duration
}

// System is a running AIM deployment: storage servers, ESP routing and an
// RTA coordinator, all in-process.
type System struct {
	nodes   []*core.StorageNode
	cluster *cluster.Cluster
	router  *esp.Router
	coord   *rta.Coordinator
	nextQID atomic.Uint64
	closed  atomic.Bool
}

// Start boots a System.
func Start(opts Options) (*System, error) {
	if opts.Schema == nil {
		return nil, errors.New("aim: Options.Schema is required")
	}
	servers := opts.Servers
	if servers <= 0 {
		servers = 1
	}
	cfg := core.Config{
		Schema:         opts.Schema,
		Dims:           opts.Dimensions,
		Partitions:     opts.PartitionsPerServer,
		ESPThreads:     opts.ESPThreadsPerServer,
		BucketSize:     opts.BucketSize,
		Factory:        opts.Factory,
		MaxBatch:       opts.MaxBatch,
		Rules:          opts.Rules,
		UseRuleIndex:   opts.UseRuleIndex,
		OnFiring:       opts.OnFiring,
		IdleMergePause: opts.FreshnessPause,
	}
	cl, nodes, err := cluster.NewLocal(servers, cfg)
	if err != nil {
		return nil, err
	}
	coord, err := rta.NewCoordinator(cl.Nodes())
	if err != nil {
		for _, n := range nodes {
			n.Stop()
		}
		return nil, err
	}
	return &System{
		nodes:   nodes,
		cluster: cl,
		router:  esp.NewRouter(cl),
		coord:   coord,
	}, nil
}

// Ingest routes one event to the ESP subsystem asynchronously.
func (s *System) Ingest(ev Event) error { return s.router.Ingest(ev) }

// IngestSync processes one event synchronously and returns the number of
// Business Rules it fired.
func (s *System) IngestSync(ev Event) (int, error) { return s.router.IngestSync(ev) }

// Flush blocks until all ingested events are applied to the Analytics
// Matrix.
func (s *System) Flush() error { return s.router.Flush() }

// Execute runs one ad-hoc RTA query across all storage servers and returns
// the merged, finalized result.
func (s *System) Execute(q *Query) (*Result, error) {
	// Assign a fresh id without mutating the caller's query.
	qq := *q
	qq.ID = s.nextQID.Add(1)
	return s.coord.Execute(&qq)
}

// Get returns a copy of an Entity Record and its modification version.
func (s *System) Get(entityID uint64) (Record, uint64, bool, error) {
	return s.cluster.Get(entityID)
}

// Put stores an Entity Record unconditionally.
func (s *System) Put(rec Record) error { return s.cluster.Put(rec) }

// ConditionalPut stores an Entity Record if its version still matches; it
// returns ErrVersionConflict otherwise.
func (s *System) ConditionalPut(rec Record, expected uint64) error {
	return s.cluster.ConditionalPut(rec, expected)
}

// Stats returns a counter snapshot per storage server.
func (s *System) Stats() []NodeStats {
	out := make([]NodeStats, len(s.nodes))
	for i, n := range s.nodes {
		out[i] = n.Stats()
	}
	return out
}

// Close shuts every storage server down (and the cluster's background
// event-replay drainer, if it ever started).
func (s *System) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.cluster.Close()
	for _, n := range s.nodes {
		n.Stop()
	}
}
