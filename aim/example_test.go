package aim_test

import (
	"fmt"
	"log"
	"time"

	"repro/aim"
)

// Example shows the complete AIM flow: declare an Analytics Matrix with a
// business rule, ingest call events, and answer an ad-hoc analytical query
// on fresh data.
func Example() {
	sch, err := aim.NewSchema().
		Group(aim.GroupSpec{Name: "calls_today", Metric: aim.MetricCount,
			Window: aim.Day(), Aggs: []aim.AggKind{aim.AggCount}}).
		Group(aim.GroupSpec{Name: "cost_week", Metric: aim.MetricCost,
			Window: aim.Week(), Aggs: []aim.AggKind{aim.AggSum}}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	calls, _ := sch.AttrIndex("calls_today_count")

	sys, err := aim.Start(aim.Options{
		Schema:         sch,
		FreshnessPause: 200 * time.Microsecond,
		Rules: []aim.Rule{{
			ID: 1, Action: "loyalty-offer",
			Conjuncts: []aim.RuleConjunct{{
				{Kind: aim.RuleAttr, Attr: calls, Op: aim.RuleGe, Value: 3},
			}},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	base := int64(1_420_070_400_000) // 2015-01-01
	fired := 0
	for i := 0; i < 4; i++ {
		nf, err := sys.IngestSync(aim.Event{
			Caller: 42, Timestamp: base + int64(i)*60_000, Duration: 120, Cost: 0.75,
		})
		if err != nil {
			log.Fatal(err)
		}
		fired += nf
	}

	q, err := aim.NewQuery(sch).
		Where(aim.Ge("calls_today_count", 1)).
		Count().
		Sum("cost_week_sum").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	// Freshness is bounded by the merge cadence; wait for the record to
	// reach the scannable main.
	var res *aim.Result
	for {
		if res, err = sys.Execute(q); err != nil {
			log.Fatal(err)
		}
		if len(res.Rows) > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("subscribers: %.0f, weekly spend: $%.2f, rule firings: %d\n",
		res.Rows[0].Values[0], res.Rows[0].Values[1], fired)
	// Output: subscribers: 1, weekly spend: $3.00, rule firings: 2
}
