// Package aim is the public API of the AIM reproduction: a distributed
// main-memory store that sustains a high-volume event stream (ESP) and
// ad-hoc real-time analytical queries (RTA) on the same data, as described
// in "Analytics in Motion" (SIGMOD 2015).
//
// The three moving parts mirror the paper's architecture (Figure 1):
//
//   - An Analytics Matrix: a huge materialized view with one Entity Record
//     per subscriber, holding hundreds of pre-computed indicators. Declare
//     it with NewSchema (attribute groups = metric × filter × aggregate ×
//     window).
//   - The ESP subsystem: System.Ingest applies each event to the owning
//     Entity Record (single-row transaction) and evaluates the Business
//     Rules against it.
//   - The RTA subsystem: System.Execute scatters an ad-hoc query to every
//     storage server, where batched shared scans over the PAX-layout
//     ColumnMap answer it from a consistent, fresh snapshot.
//
// Minimal usage:
//
//	sch, _ := aim.NewSchema().
//		Group(aim.GroupSpec{Name: "calls_today", Metric: aim.MetricCount,
//			Window: aim.Day(), Aggs: []aim.AggKind{aim.AggCount}}).
//		Build()
//	sys, _ := aim.Start(aim.Options{Schema: sch})
//	defer sys.Close()
//	sys.Ingest(aim.Event{Caller: 42, Timestamp: ts, Duration: 60, Cost: 0.5})
//	q, _ := aim.NewQuery(sch).Count().Build()
//	res, _ := sys.Execute(q)
//
// See the examples/ directory for runnable end-to-end programs and
// DESIGN.md for the system inventory.
package aim
