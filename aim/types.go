package aim

import (
	"repro/internal/core"
	"repro/internal/dimension"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/schema"
)

// Re-exported building blocks. The implementation lives in internal
// packages; these aliases are the supported public names.

// Event is one Call Detail Record.
type Event = event.Event

// EventGenerator produces deterministic synthetic CDR streams.
type EventGenerator = event.Generator

// NewEventGenerator returns a generator over the entity population.
func NewEventGenerator(entities uint64, seed int64) *EventGenerator {
	return event.NewGenerator(entities, seed)
}

// Schema is a compiled Analytics-Matrix schema.
type Schema = schema.Schema

// Record is one Entity Record.
type Record = schema.Record

// SchemaBuilder assembles a Schema from attribute-group specs.
type SchemaBuilder struct{ b *schema.Builder }

// GroupSpec declares one attribute group (metric × filter × window ×
// aggregates).
type GroupSpec = schema.GroupSpec

// StaticSpec declares a segmentation attribute.
type StaticSpec = schema.StaticSpec

// Window describes an aggregation window.
type Window = schema.Window

// Metric, filter, aggregate and type enumerations.
type (
	Metric  = schema.Metric
	Filter  = schema.Filter
	AggKind = schema.AggKind
	Type    = schema.Type
)

// Metric constants.
const (
	MetricCount    = schema.MetricCount
	MetricDuration = schema.MetricDuration
	MetricCost     = schema.MetricCost
)

// Filter constants.
const (
	CallAny          = schema.CallAny
	CallLocal        = schema.CallLocal
	CallLongDistance = schema.CallLongDistance
)

// Aggregate constants.
const (
	AggCount = schema.AggCount
	AggSum   = schema.AggSum
	AggAvg   = schema.AggAvg
	AggMin   = schema.AggMin
	AggMax   = schema.AggMax
)

// Attribute type constants.
const (
	TypeInt64   = schema.TypeInt64
	TypeFloat64 = schema.TypeFloat64
	TypeUint64  = schema.TypeUint64
	// TypeDictString is a dictionary-encoded variable-length string
	// attribute (set with Schema.SetString, filter with EqStr/NeStr,
	// group with GroupByString).
	TypeDictString = schema.TypeDictString
)

// Window constructors.
var (
	Day          = schema.Day
	Week         = schema.Week
	Month        = schema.Month
	LastEvents   = schema.LastEvents
	SlidingHours = schema.SlidingHours
)

// NewSchema starts a schema definition.
func NewSchema() *SchemaBuilder { return &SchemaBuilder{b: schema.NewBuilder()} }

// Group adds an attribute group.
func (sb *SchemaBuilder) Group(spec GroupSpec) *SchemaBuilder {
	sb.b.AddGroup(spec)
	return sb
}

// Static adds a segmentation attribute.
func (sb *SchemaBuilder) Static(spec StaticSpec) *SchemaBuilder {
	sb.b.AddStatic(spec)
	return sb
}

// Build compiles the schema.
func (sb *SchemaBuilder) Build() (*Schema, error) { return sb.b.Build() }

// Dimension tables.
type (
	// DimensionTable is one replicated lookup table.
	DimensionTable = dimension.Table
	// DimensionStore is the set of tables replicated at each server.
	DimensionStore = dimension.Store
)

// NewDimensionTable creates an empty dimension table.
func NewDimensionTable(name string, columns ...string) *DimensionTable {
	return dimension.NewTable(name, columns...)
}

// NewDimensionStore creates an empty dimension store.
func NewDimensionStore() *DimensionStore { return dimension.NewStore() }

// Business rules.
type (
	// Rule is one Business Rule in DNF.
	Rule = rules.Rule
	// RuleConjunct is an AND of rule predicates.
	RuleConjunct = rules.Conjunct
	// RulePredicate compares a record/event reading to a constant.
	RulePredicate = rules.Predicate
	// FiringPolicy bounds rule firings per entity per window.
	FiringPolicy = rules.FiringPolicy
	// Firing reports one rule firing.
	Firing = rules.Firing
)

// Rule predicate LHS kinds.
const (
	RuleAttr              = rules.LHSAttr
	RuleAttrRatio         = rules.LHSAttrRatio
	RuleEventDuration     = rules.LHSEventDuration
	RuleEventCost         = rules.LHSEventCost
	RuleEventLongDistance = rules.LHSEventLongDistance
)

// Rule comparison operators.
const (
	RuleLt = rules.Lt
	RuleLe = rules.Le
	RuleGt = rules.Gt
	RuleGe = rules.Ge
	RuleEq = rules.Eq
	RuleNe = rules.Ne
)

// Query execution.
type (
	// Query is a compiled RTA query.
	Query = query.Query
	// Result is a finalized query result.
	Result = query.Result
	// ResultRow is one result group.
	ResultRow = query.ResultRow
	// GroupKey identifies a result group.
	GroupKey = query.GroupKey
)

// NodeStats snapshots one storage server's counters.
type NodeStats = core.NodeStats

// ErrVersionConflict reports a failed conditional write.
var ErrVersionConflict = core.ErrVersionConflict
