package aim

import (
	"sync"
	"testing"
	"time"
)

func demoSchema(t testing.TB) *Schema {
	t.Helper()
	sch, err := NewSchema().
		Static(StaticSpec{Name: "zip", Type: TypeInt64}).
		Group(GroupSpec{Name: "calls_today", Metric: MetricCount,
			Window: Day(), Aggs: []AggKind{AggCount}}).
		Group(GroupSpec{Name: "dur_today", Metric: MetricDuration,
			Window: Day(), Aggs: []AggKind{AggSum, AggMax}}).
		Group(GroupSpec{Name: "cost_week", Metric: MetricCost,
			Window: Week(), Aggs: []AggKind{AggSum}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func startDemo(t *testing.T, opts Options) (*System, *Schema) {
	t.Helper()
	sch := demoSchema(t)
	opts.Schema = sch
	if opts.BucketSize == 0 {
		opts.BucketSize = 32
	}
	if opts.FreshnessPause == 0 {
		opts.FreshnessPause = 200 * time.Microsecond
	}
	sys, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys, sch
}

const dayMs = 24 * 3600 * 1000

func TestEndToEnd(t *testing.T) {
	sys, sch := startDemo(t, Options{Servers: 2, PartitionsPerServer: 2})
	base := int64(100 * dayMs)
	for i := 0; i < 300; i++ {
		err := sys.Ingest(Event{
			Caller: uint64(i%30) + 1, Callee: 2, Timestamp: base + int64(i),
			Duration: 60, Cost: 0.5, LongDistance: i%3 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	q, err := NewQuery(sch).Count().Sum("dur_today_sum").Build()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := sys.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) == 1 && res.Rows[0].Values[0] == 30 && res.Rows[0].Values[1] == 300*60 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never converged: %+v", res)
		}
		time.Sleep(time.Millisecond)
	}
	// Stats cover both servers.
	var events uint64
	for _, st := range sys.Stats() {
		events += st.EventsProcessed
	}
	if events != 300 {
		t.Fatalf("stats events = %d", events)
	}
}

func TestQueryBuilderShapes(t *testing.T) {
	sys, sch := startDemo(t, Options{})
	base := int64(100 * dayMs)
	for i := 0; i < 50; i++ {
		if _, err := sys.IngestSync(Event{Caller: uint64(i%5) + 1, Timestamp: base + int64(i), Duration: int64(i + 1), Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Filtered, grouped, derived, limited.
	q, err := NewQuery(sch).
		Where(Gt("calls_today_count", 0)).
		Sum("cost_week_sum").Sum("dur_today_sum").
		GroupBy("calls_today_count").
		Ratio(0, 1).
		Limit(3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	waitRows(t, sys, q, 1)

	// ArgMax yields an entity id.
	q2, err := NewQuery(sch).ArgMax("dur_today_max").ArgMinRatio("cost_week_sum", "dur_today_sum").Build()
	if err != nil {
		t.Fatal(err)
	}
	res := waitRows(t, sys, q2, 1)
	if id := res.Rows[0].Values[0]; id < 1 || id > 5 {
		t.Fatalf("argmax entity = %v", id)
	}
}

func waitRows(t *testing.T, sys *System, q *Query, want int) *Result {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := sys.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) >= want {
			return res
		}
		if time.Now().After(deadline) {
			t.Fatalf("no rows for query")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStringAttributes(t *testing.T) {
	sch, err := NewSchema().
		Static(StaticSpec{Name: "plan", Type: TypeDictString}).
		Group(GroupSpec{Name: "calls_today", Metric: MetricCount,
			Window: Day(), Aggs: []AggKind{AggCount}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	plan, _ := sch.AttrIndex("plan")
	factory := func(id uint64) Record {
		rec := sch.NewRecord(id)
		if id%2 == 0 {
			sch.SetString(rec, plan, "contract")
		} else {
			sch.SetString(rec, plan, "prepaid")
		}
		return rec
	}
	sys, err := Start(Options{Schema: sch, Factory: factory, BucketSize: 16,
		FreshnessPause: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	base := int64(100 * dayMs)
	for i := 0; i < 20; i++ {
		if _, err := sys.IngestSync(Event{Caller: uint64(i%10) + 1, Timestamp: base + int64(i), Duration: 10, Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Filter by string.
	q, err := NewQuery(sch).Where(EqStr("plan", "contract")).Count().Build()
	if err != nil {
		t.Fatal(err)
	}
	res := waitRows(t, sys, q, 1)
	if res.Rows[0].Values[0] != 5 {
		t.Fatalf("contract count = %v, want 5", res.Rows[0].Values[0])
	}
	// Group by string names.
	q2, err := NewQuery(sch).Count().GroupByString("plan").Build()
	if err != nil {
		t.Fatal(err)
	}
	res2 := waitRows(t, sys, q2, 2)
	if res2.Rows[0].Key.S != "contract" || res2.Rows[1].Key.S != "prepaid" {
		t.Fatalf("string groups = %+v", res2.Rows)
	}
	// Unknown string matches nothing.
	q3, err := NewQuery(sch).Where(EqStr("plan", "nope")).Count().Build()
	if err != nil {
		t.Fatal(err)
	}
	res3, err := sys.Execute(q3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Rows) != 0 {
		t.Fatalf("unknown plan matched: %+v", res3.Rows)
	}
}

func TestQueryBuilderErrors(t *testing.T) {
	sch := demoSchema(t)
	if _, err := NewQuery(sch).Sum("nope").Build(); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if _, err := NewQuery(sch).Where().Count().Build(); err == nil {
		t.Fatal("empty Where accepted")
	}
	if _, err := NewQuery(sch).Build(); err == nil {
		t.Fatal("projection-less query accepted")
	}
}

func TestRulesAndFirings(t *testing.T) {
	sch := demoSchema(t)
	calls, err := sch.AttrIndex("calls_today_count")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	fired := 0
	sys, err := Start(Options{
		Schema:     sch,
		BucketSize: 32,
		Rules: []Rule{{
			ID: 1, Name: "threshold", Action: "notify",
			Conjuncts: []RuleConjunct{{
				{Kind: RuleAttr, Attr: calls, Op: RuleGe, Value: 2},
				{Kind: RuleEventDuration, Op: RuleGt, Value: 30},
			}},
		}},
		OnFiring: func(Firing) { mu.Lock(); fired++; mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	base := int64(100 * dayMs)
	total := 0
	for i := 0; i < 4; i++ {
		nf, err := sys.IngestSync(Event{Caller: 7, Timestamp: base + int64(i), Duration: 60, Cost: 1})
		if err != nil {
			t.Fatal(err)
		}
		total += nf
	}
	if total != 3 { // events 2,3,4
		t.Fatalf("firings = %d, want 3", total)
	}
	mu.Lock()
	defer mu.Unlock()
	if fired != 3 {
		t.Fatalf("sink saw %d", fired)
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	sys, sch := startDemo(t, Options{Servers: 3})
	rec := sch.NewRecord(99)
	zip, _ := sch.AttrIndex("zip")
	rec.SetInt(zip, 8057)
	if err := sys.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, v, ok, err := sys.Get(99)
	if err != nil || !ok || got.Int(zip) != 8057 {
		t.Fatalf("Get: %v %v %v", ok, err, got)
	}
	if err := sys.ConditionalPut(got, v); err != nil {
		t.Fatal(err)
	}
	if err := sys.ConditionalPut(got, v); err == nil {
		t.Fatal("stale conditional put accepted")
	}
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Options{}); err == nil {
		t.Fatal("Start without schema succeeded")
	}
}
