// Durability: the production features of §7 — the persistent event archive
// (write-ahead log), incremental checkpoints of the Analytics Matrix, and
// crash recovery by checkpoint load + archive tail replay. Also shows the
// archive-backed exact sliding-window computation of footnote 1.
//
// Run with: go run ./examples/durability
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/archive"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/schema"
)

func main() {
	dir, err := os.MkdirTemp("", "aim-durability-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sch, err := schema.NewBuilder().
		AddGroup(schema.GroupSpec{Name: "calls_today", Metric: schema.MetricCount,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggCount}}).
		AddGroup(schema.GroupSpec{Name: "dur_slide24h", Metric: schema.MetricDuration,
			Window: schema.SlidingHours(24, 4), Aggs: []schema.AggKind{schema.AggMin, schema.AggMax}}).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// 1. A node with a write-ahead event archive.
	arch, err := archive.Open(filepath.Join(dir, "wal"), archive.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer arch.Close()
	node, err := core.NewNode(core.Config{Schema: sch, Partitions: 2, Archive: arch})
	if err != nil {
		log.Fatal(err)
	}

	gen := event.NewGenerator(500, 1)
	var ev event.Event
	for i := 0; i < 5_000; i++ {
		gen.Next(&ev)
		if err := node.ProcessEventAsync(ev); err != nil {
			log.Fatal(err)
		}
	}

	// 2. A full checkpoint, more traffic, then an incremental checkpoint.
	mgr, err := checkpoint.NewManager(filepath.Join(dir, "ckpt"))
	if err != nil {
		log.Fatal(err)
	}
	if err := node.Checkpoint(mgr, true); err != nil {
		log.Fatal(err)
	}
	fmt.Println("base checkpoint written (all records)")
	for i := 0; i < 2_000; i++ {
		gen.Next(&ev)
		if err := node.ProcessEventAsync(ev); err != nil {
			log.Fatal(err)
		}
	}
	if err := node.Checkpoint(mgr, false); err != nil {
		log.Fatal(err)
	}
	fmt.Println("incremental checkpoint written (dirty records only)")

	// 3. Unchckpointed tail, then a "crash".
	for i := 0; i < 1_500; i++ {
		gen.Next(&ev)
		if err := node.ProcessEventAsync(ev); err != nil {
			log.Fatal(err)
		}
	}
	if err := node.FlushEvents(); err != nil {
		log.Fatal(err)
	}
	calls := sch.MustAttrIndex("calls_today_count")
	preTotal := sumCalls(node, sch, calls, 500)
	fmt.Printf("pre-crash state: %d calls across all subscribers, %d archived events\n",
		preTotal, arch.Len())
	node.Stop() // crash

	// 4. Recovery: checkpoints + archive tail replay.
	restored, err := core.Restore(core.Config{Schema: sch, Partitions: 2, Archive: arch}, mgr)
	if err != nil {
		log.Fatal(err)
	}
	defer restored.Stop()
	postTotal := sumCalls(restored, sch, calls, 500)
	fmt.Printf("recovered state:  %d calls (match: %v)\n", postTotal, preTotal == postTotal)

	// 5. Exact sliding-window from the archive (footnote 1).
	exact := archive.ExactWindow{
		Metric: schema.MetricDuration, Filter: schema.CallAny,
		WindowMillis: 24 * 3600 * 1000,
	}
	res, err := exact.Compute(arch, 42, gen.Now())
	if err != nil {
		log.Fatal(err)
	}
	rec, _, ok, err := restored.Get(42)
	if err != nil || !ok {
		log.Fatal("entity 42 missing after recovery")
	}
	fmt.Printf("entity 42 sliding 24h: exact min/max from archive = %.0fs/%.0fs, "+
		"materialized approximation = %ds/%ds (count %d)\n",
		res.Min, res.Max,
		rec.Int(sch.MustAttrIndex("dur_slide24h_min")),
		rec.Int(sch.MustAttrIndex("dur_slide24h_max")),
		res.Count)
}

func sumCalls(n *core.StorageNode, sch *schema.Schema, attr int, entities uint64) int64 {
	var total int64
	for e := uint64(1); e <= entities; e++ {
		rec, _, ok, err := n.Get(e)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			total += rec.Int(attr)
		}
	}
	return total
}
