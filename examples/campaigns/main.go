// Campaigns: Business Rule evaluation in the ESP path (§2.2) — the two
// example rules of Table 2 plus a firing policy, driven by a skewed event
// stream. Demonstrates real-time actions triggered per event against the
// freshly updated Entity Record.
//
// Run with: go run ./examples/campaigns
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/aim"
)

func main() {
	sch, err := aim.NewSchema().
		Group(aim.GroupSpec{Name: "calls_today", Metric: aim.MetricCount,
			Window: aim.Day(), Aggs: []aim.AggKind{aim.AggCount}}).
		Group(aim.GroupSpec{Name: "cost_today", Metric: aim.MetricCost,
			Window: aim.Day(), Aggs: []aim.AggKind{aim.AggSum}}).
		Group(aim.GroupSpec{Name: "dur_today", Metric: aim.MetricDuration,
			Window: aim.Day(), Aggs: []aim.AggKind{aim.AggSum}}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	calls, _ := sch.AttrIndex("calls_today_count")
	cost, _ := sch.AttrIndex("cost_today_sum")
	dur, _ := sch.AttrIndex("dur_today_sum")

	// Table 2, rule 1: heavy callers get free minutes — at most once per day.
	freeMinutes := aim.Rule{
		ID: 1, Name: "free-minutes", Action: "inform subscriber: next 10 minutes free",
		Conjuncts: []aim.RuleConjunct{{
			{Kind: aim.RuleAttr, Attr: calls, Op: aim.RuleGt, Value: 20},
			{Kind: aim.RuleAttr, Attr: cost, Op: aim.RuleGt, Value: 100},
			{Kind: aim.RuleEventDuration, Op: aim.RuleGt, Value: 300},
		}},
		Policy: aim.FiringPolicy{Limit: 1, WindowMillis: 24 * 3600 * 1000},
	}
	// Table 2, rule 2: many ultra-short calls look like a pocket-dialing
	// phone — advise enabling the screen lock.
	misuse := aim.Rule{
		ID: 2, Name: "phone-misuse", Action: "advise subscriber: activate screen lock",
		Conjuncts: []aim.RuleConjunct{{
			{Kind: aim.RuleAttr, Attr: calls, Op: aim.RuleGt, Value: 30},
			{Kind: aim.RuleAttrRatio, Attr: dur, Attr2: calls, Op: aim.RuleLt, Value: 10},
		}},
	}

	var mu sync.Mutex
	actions := map[string]int{}
	sys, err := aim.Start(aim.Options{
		Schema: sch,
		Rules:  []aim.Rule{freeMinutes, misuse},
		OnFiring: func(f aim.Firing) {
			mu.Lock()
			actions[f.Action]++
			if actions[f.Action] <= 3 {
				fmt.Printf("  [rule %d fired] entity %d: %s\n", f.RuleID, f.EntityID, f.Action)
			}
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	base := int64(1_420_070_400_000)
	// Subscriber 1: an expensive conference-call day — triggers rule 1 once
	// (the firing policy suppresses repeats).
	for i := 0; i < 30; i++ {
		if _, err := sys.IngestSync(aim.Event{
			Caller: 1, Timestamp: base + int64(i)*60_000, Duration: 900, Cost: 6,
		}); err != nil {
			log.Fatal(err)
		}
	}
	// Subscriber 2: forty 3-second calls — triggers rule 2 repeatedly
	// (no policy attached).
	for i := 0; i < 40; i++ {
		if _, err := sys.IngestSync(aim.Event{
			Caller: 2, Timestamp: base + int64(i)*1000, Duration: 3, Cost: 0.01,
		}); err != nil {
			log.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Println("\naction summary:")
	for action, n := range actions {
		fmt.Printf("  %dx %s\n", n, action)
	}
}
