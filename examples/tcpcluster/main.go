// TCP cluster: the fully distributed deployment of Figure 4 — three storage
// servers behind the binary TCP protocol, an ESP router shipping 64-byte
// CDR frames to the server owning each subscriber, and a stateless RTA node
// scattering queries to all servers and merging the partials.
//
// Everything runs in one process for convenience, but all traffic crosses
// real TCP sockets on localhost.
//
// Run with: go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/esp"
	"repro/internal/event"
	"repro/internal/netproto"
	"repro/internal/query"
	"repro/internal/rta"
	"repro/internal/vec"
	"repro/internal/workload"
)

func main() {
	sch, err := workload.BuildSmallSchema()
	if err != nil {
		log.Fatal(err)
	}
	dims, err := workload.BuildDimensions(1)
	if err != nil {
		log.Fatal(err)
	}

	// Boot three storage servers, each listening on its own port.
	const servers = 3
	var handles []core.Storage
	for i := 0; i < servers; i++ {
		node, err := core.NewNode(core.Config{
			Schema:  sch,
			Dims:    dims.Store,
			Factory: dims.Factory(sch),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Stop()
		srv, err := netproto.Serve("127.0.0.1:0", node, sch)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		cli, err := netproto.Dial(srv.Addr(), sch)
		if err != nil {
			log.Fatal(err)
		}
		defer cli.Close()
		fmt.Printf("storage server %d listening on %s\n", i, srv.Addr())
		handles = append(handles, cli)
	}

	cl, err := cluster.New(handles)
	if err != nil {
		log.Fatal(err)
	}

	// ESP node: route CDRs to the owning server at a fixed rate.
	router := esp.NewRouter(cl)
	driver := &esp.Driver{
		Gen:  event.NewGenerator(20_000, 11),
		Rate: 50_000,
		Sink: router.Ingest,
	}
	st, err := driver.Run(2*time.Second, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := router.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ESP: sent %d events over TCP at %.0f ev/s\n", st.Sent, st.AchievedRate)

	// RTA node: scatter/gather ad-hoc queries.
	coord, err := rta.NewCoordinator(cl.Nodes())
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)

	calls := sch.MustAttrIndex("calls_any_week_count")
	q := &query.Query{
		ID:      1,
		Where:   []query.Conjunct{{query.PredInt(calls, vec.Gt, 2)}},
		Aggs:    []query.AggExpr{{Op: query.OpCount}, {Op: query.OpSum, Attr: sch.MustAttrIndex("cost_any_week_sum")}},
		GroupBy: -1,
	}
	t0 := time.Now()
	res, err := coord.Execute(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RTA query over %d servers in %v\n", servers, time.Since(t0).Round(time.Microsecond))
	for _, row := range res.Rows {
		fmt.Printf("  subscribers with >2 calls this week: %.0f, spend: $%.2f\n",
			row.Values[0], row.Values[1])
	}

	// A dimension-joined group-by, merged across the cluster.
	q5, err := workload.NewQueryGen(sch, 5)
	if err != nil {
		log.Fatal(err)
	}
	res5, err := coord.Execute(q5.Q5(1, 2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q5 (spend by region for one segment): %d regions\n", len(res5.Rows))
	for i, row := range res5.Rows {
		if i == 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %-10s local $%.2f, long-distance $%.2f\n", row.Key.S, row.Values[0], row.Values[1])
	}
}
