// Telco: the Huawei use case end to end — the benchmark's Analytics Matrix
// (segmentation attributes + the metric × filter × window × aggregate
// Cartesian product), replicated dimension tables, a 300-rule campaign set,
// and the paper's seven RTA query templates (Table 5) answered on live data.
//
// Run with: go run ./examples/telco
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/rta"
	"repro/internal/rules"
	"repro/internal/workload"

	"repro/internal/cluster"
)

func main() {
	// The compact variant of the benchmark schema keeps this example
	// snappy; swap in workload.BuildSchema() for the full 546 indicators.
	sch, err := workload.BuildSmallSchema()
	if err != nil {
		log.Fatal(err)
	}
	dims, err := workload.BuildDimensions(1)
	if err != nil {
		log.Fatal(err)
	}
	ruleSet, err := workload.BuildRules(sch, workload.DefaultRuleCount, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schema: %d indicators, %d B records; rules: %d\n",
		workload.NumIndicators(sch), sch.RecordBytes(), len(ruleSet))

	var firings atomic.Uint64
	c, nodes, err := cluster.NewLocal(1, core.Config{
		Schema:   sch,
		Dims:     dims.Store,
		Factory:  dims.Factory(sch),
		Rules:    ruleSet,
		OnFiring: func(rules.Firing) { firings.Add(1) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	// Feed one hour's worth of calls for 10k subscribers.
	const entities, events = 10_000, 100_000
	gen := event.NewGenerator(entities, 7)
	var ev event.Event
	start := time.Now()
	for i := 0; i < events; i++ {
		gen.Next(&ev)
		if err := c.ProcessEventAsync(ev); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.FlushEvents(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ESP: %d events in %v (%.0f ev/s), %d rule firings\n",
		events, time.Since(start).Round(time.Millisecond),
		float64(events)/time.Since(start).Seconds(), firings.Load())

	coord, err := rta.NewCoordinator(c.Nodes())
	if err != nil {
		log.Fatal(err)
	}
	g, err := workload.NewQueryGen(sch, 3)
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let a merge round publish everything

	run := func(name string, q *query.Query) {
		t0 := time.Now()
		res, err := coord.Execute(q)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-3s %6.2fms  %d row(s)", name, float64(time.Since(t0).Microseconds())/1000, len(res.Rows))
		if len(res.Rows) > 0 {
			r := res.Rows[0]
			key := ""
			if r.Key.S != "" {
				key = r.Key.S + ": "
			}
			fmt.Printf("   first: %s%v", key, r.Values)
		}
		fmt.Println()
	}
	run("Q1", g.Q1(1))
	run("Q2", g.Q2(3))
	run("Q3", g.Q3())
	run("Q4", g.Q4(2, 20))
	run("Q5", g.Q5(1, 2))
	run("Q6", g.Q6(0))
	run("Q7", g.Q7(1))

	// Ad-hoc mixed-template load, closed loop with 8 clients for 2 seconds.
	sources := make([]rta.QuerySource, 8)
	for i := range sources {
		src, err := workload.NewQueryGen(sch, int64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		sources[i] = src
	}
	st := rta.RunClosedLoop(coord, sources, 2*time.Second)
	fmt.Printf("RTA closed loop: %.0f q/s, mean %.1fms, p95 %.1fms (%d queries, %d errors)\n",
		st.Throughput,
		float64(st.MeanLatency.Microseconds())/1000,
		float64(st.P95Latency.Microseconds())/1000,
		st.Queries, st.Errors)
}
