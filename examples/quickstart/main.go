// Quickstart: declare a small Analytics Matrix, start an in-process AIM
// system, ingest a burst of call events, and run an ad-hoc analytical query
// against fresh data.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/aim"
)

func main() {
	// 1. Declare the Analytics Matrix: three attribute groups maintained
	// per subscriber by the ESP subsystem.
	sch, err := aim.NewSchema().
		Group(aim.GroupSpec{Name: "calls_today", Metric: aim.MetricCount,
			Window: aim.Day(), Aggs: []aim.AggKind{aim.AggCount}}).
		Group(aim.GroupSpec{Name: "dur_today", Metric: aim.MetricDuration,
			Window: aim.Day(), Aggs: []aim.AggKind{aim.AggSum, aim.AggAvg, aim.AggMax}}).
		Group(aim.GroupSpec{Name: "cost_week", Metric: aim.MetricCost,
			Window: aim.Week(), Aggs: []aim.AggKind{aim.AggSum}}).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Start a single-server system (n = 5 partitions, s = 1 ESP thread).
	sys, err := aim.Start(aim.Options{Schema: sch})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// 3. Ingest a synthetic CDR stream for 1000 subscribers.
	gen := aim.NewEventGenerator(1000, 42)
	var ev aim.Event
	const events = 50_000
	start := time.Now()
	for i := 0; i < events; i++ {
		gen.Next(&ev)
		if err := sys.Ingest(ev); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d events in %v (%.0f events/s)\n",
		events, time.Since(start).Round(time.Millisecond),
		float64(events)/time.Since(start).Seconds())

	// 4. Ad-hoc analytics on fresh data: busy callers' spend this week.
	q, err := aim.NewQuery(sch).
		Where(aim.Gt("calls_today_count", 40)).
		Count().
		Sum("cost_week_sum").
		Avg("dur_today_avg").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	// Freshness is bounded by the merge cadence; poll briefly.
	time.Sleep(5 * time.Millisecond)
	res, err := sys.Execute(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("busy subscribers: %.0f, their weekly spend: $%.2f, avg call: %.0fs\n",
			row.Values[0], row.Values[1], row.Values[2])
	}

	for i, st := range sys.Stats() {
		fmt.Printf("server %d: events=%d scanRounds=%d merged=%d queries=%d records=%d\n",
			i, st.EventsProcessed, st.ScanRounds, st.MergedRecords, st.QueriesServed, st.Records)
	}
}
