// Package repro's root test file exposes one testing.B benchmark per table
// and figure of the paper's evaluation (§5), backed by the harness in
// internal/bench. Run them all with:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the paper-style table once and reports headline
// custom metrics (queries/sec, events/sec, response ms) so `go test -bench`
// output is meaningful on its own. cmd/aimbench prints the same tables with
// more control over parameters.
package repro

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/event"
	"repro/internal/rules"
	"repro/internal/workload"
)

// benchParams returns harness parameters sized for `go test -bench`.
func benchParams(b *testing.B) bench.Params {
	b.Helper()
	p := bench.Defaults()
	// Keep the default bench run brisk; AIM_* env vars scale up.
	if os.Getenv("AIM_ENTITIES") == "" {
		p.Entities = 10_000
	}
	if os.Getenv("AIM_DURATION") == "" {
		p.Duration = 750 * time.Millisecond
	}
	if os.Getenv("AIM_SERVERS") == "" {
		p.MaxServers = 3
	}
	return p
}

// runTableOnce runs a harness experiment once (system-level experiments
// measure fixed-duration windows internally; iterating them b.N times would
// only repeat identical measurements) and logs the table.
func runTableOnce(b *testing.B, name string, fn func(bench.Params) (*bench.Table, error)) *bench.Table {
	b.Helper()
	p := benchParams(b)
	b.ResetTimer()
	tbl, err := fn(p)
	if err != nil {
		b.Fatalf("%s: %v", name, err)
	}
	b.StopTimer()
	b.Log(tbl.String())
	return tbl
}

// lastFloat parses the named column of the last row of a table.
func colFloat(tbl *bench.Table, row int, col string) float64 {
	for i, h := range tbl.Header {
		if h == col {
			if row < 0 {
				row = len(tbl.Rows) + row
			}
			v, _ := strconv.ParseFloat(tbl.Rows[row][i], 64)
			return v
		}
	}
	return 0
}

// BenchmarkKPICompliance reproduces the Table 4 SLA check.
func BenchmarkKPICompliance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := runTableOnce(b, "kpi", bench.KPICompliance)
		for _, row := range tbl.Rows {
			if row[3] == "NO" {
				b.Errorf("KPI %s missed: measured %s (target %s)", row[0], row[2], row[1])
			}
		}
	}
}

// BenchmarkFig9a10aPartitions reproduces Figures 9a and 10a (response time
// and throughput vs partition count and bucket size).
func BenchmarkFig9a10aPartitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := runTableOnce(b, "fig9a", bench.Fig9a10a)
		b.ReportMetric(colFloat(tbl, -2, "rta_qps"), "qps@n=6")
		b.ReportMetric(colFloat(tbl, -2, "resp_ms"), "resp_ms@n=6")
	}
}

// BenchmarkFig9b10bClients reproduces Figures 9b and 10b (client sweep, AIM
// vs System M, System D and the COW engine).
func BenchmarkFig9b10bClients(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := runTableOnce(b, "fig9b", bench.Fig9b10b)
		// Row 3 is AIM at c=8 (the paper's saturation point).
		b.ReportMetric(colFloat(tbl, 3, "rta_qps"), "aim_qps@c=8")
		b.ReportMetric(colFloat(tbl, 3, "resp_ms"), "aim_resp_ms@c=8")
	}
}

// BenchmarkFig9c10cScaleOut reproduces Figures 9c and 10c (fixed load,
// growing server count).
func BenchmarkFig9c10cScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := runTableOnce(b, "fig9c", bench.Fig9c10c)
		b.ReportMetric(colFloat(tbl, 0, "rta_qps"), "qps@1srv")
		b.ReportMetric(colFloat(tbl, -1, "rta_qps"), "qps@max_srv")
	}
}

// BenchmarkFig11Scalability reproduces Figure 11 (servers and load grow
// together; c=8 vs c=12).
func BenchmarkFig11Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := runTableOnce(b, "fig11", bench.Fig11)
		b.ReportMetric(colFloat(tbl, 0, "rta_qps"), "qps@1srv_c8")
		b.ReportMetric(colFloat(tbl, -2, "rta_qps"), "qps@max_c8")
	}
}

// BenchmarkEventRateComparison reproduces the §5.1/§5.3 update-rate table.
func BenchmarkEventRateComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := runTableOnce(b, "esprate", bench.EventRateComparison)
		b.ReportMetric(colFloat(tbl, 0, "ev/s"), "aim_ev/s")
	}
}

// BenchmarkRuleIndexCrossover reproduces the §4.4 micro-benchmark.
func BenchmarkRuleIndexCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := runTableOnce(b, "rules", bench.RuleIndexCrossover)
		b.ReportMetric(colFloat(tbl, -1, "index_speedup"), "speedup@5000rules")
	}
}

// BenchmarkBucketSizeSweep reproduces the §4.5 bucket-size ablation.
func BenchmarkBucketSizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := runTableOnce(b, "bucket", bench.BucketSizeSweep)
		b.ReportMetric(colFloat(tbl, 0, "records/us"), "rowstore_rec/us")
		b.ReportMetric(colFloat(tbl, -2, "records/us"), "pax_rec/us")
	}
}

// BenchmarkSharedScanBatch reproduces the §3.2 shared-scan ablation.
func BenchmarkSharedScanBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := runTableOnce(b, "batch", bench.SharedScanBatch)
		b.ReportMetric(colFloat(tbl, 0, "rta_qps"), "qps@batch1")
		b.ReportMetric(colFloat(tbl, -1, "rta_qps"), "qps@batch32")
	}
}

// BenchmarkCOWvsDelta reproduces the §6 differential-updates vs
// copy-on-write comparison.
func BenchmarkCOWvsDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := runTableOnce(b, "cow", bench.COWvsDelta)
		b.ReportMetric(colFloat(tbl, 0, "ev/s"), "aim_ev/s")
		b.ReportMetric(colFloat(tbl, 1, "ev/s"), "cow_ev/s")
	}
}

// --- Tight micro-benchmarks (true per-op measurement) -----------------------

// BenchmarkUpdateMatrixPerEvent measures the raw UPDATE_MATRIX kernel: one
// event applied to one Entity Record of the full 546-indicator schema.
func BenchmarkUpdateMatrixPerEvent(b *testing.B) {
	sch, err := workload.BuildSchema()
	if err != nil {
		b.Fatal(err)
	}
	dims, err := workload.BuildDimensions(1)
	if err != nil {
		b.Fatal(err)
	}
	rec := dims.Factory(sch)(1)
	gen := event.NewGenerator(1000, 1)
	var ev event.Event
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.NextFor(&ev, 1)
		sch.Apply(rec, &ev)
	}
}

// BenchmarkRuleEvaluation300 measures Algorithm 2 over the benchmark's 300
// rules per event (the paper's default rule-set size).
func BenchmarkRuleEvaluation300(b *testing.B) {
	sch, err := workload.BuildSmallSchema()
	if err != nil {
		b.Fatal(err)
	}
	dims, _ := workload.BuildDimensions(1)
	rs, err := workload.BuildRules(sch, 300, 1)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := rules.NewEngine(sch, rs, false)
	if err != nil {
		b.Fatal(err)
	}
	rec := dims.Factory(sch)(1)
	gen := event.NewGenerator(1000, 1)
	var ev event.Event
	for i := 0; i < 20; i++ {
		gen.NextFor(&ev, 1)
		sch.Apply(rec, &ev)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.NextFor(&ev, 1)
		eng.Evaluate(&ev, rec)
	}
}

// BenchmarkSystemMUpdate measures the structural (uncalibrated) update cost
// of the column-store baseline for comparison with the kernel above.
func BenchmarkSystemMUpdate(b *testing.B) {
	sch, err := workload.BuildSmallSchema()
	if err != nil {
		b.Fatal(err)
	}
	dims, _ := workload.BuildDimensions(1)
	m := baseline.NewSystemM(sch, dims.Store, dims.Factory(sch), baseline.Overheads{})
	gen := event.NewGenerator(5000, 1)
	var ev event.Event
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&ev)
		if err := m.ApplyEvent(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// Silence the unused-import linter when metrics change.
var _ = fmt.Sprintf
