GO ?= go

.PHONY: build test race bench ci

## build: compile every package and the aimbench binary
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: race-detect the concurrent scan/merge paths
race:
	$(GO) test -race ./internal/core/... ./internal/query/...

## bench: fused shared-scan batch microbenchmark (single vs naive vs fused)
bench:
	$(GO) test -bench BenchmarkSharedScanBatch -benchmem -run '^$$' ./internal/query/

## ci: full gate — vet, build, and race-detect the whole tree (incl. chaos tests)
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
