GO ?= go

.PHONY: build test race bench bench-check bench-baseline obs-guard ingest-guard kernel-guard overload-guard crash replica-crash fuzz-smoke ci

## build: compile every package and the aimbench binary
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: race-detect the concurrent scan/merge paths
race:
	$(GO) test -race ./internal/core/... ./internal/query/...

## bench: fused shared-scan batch microbenchmark (single vs naive vs fused)
bench:
	$(GO) test -bench BenchmarkSharedScanBatch -benchmem -run '^$$' ./internal/query/

## bench-check: regression gate — run the smoke and tiered scenarios and compare against the checked-in CI baselines (wide noise band; catches collapses, not drift)
bench-check:
	$(GO) run ./cmd/aimbench -scenario smoke -compare -fingerprint ci -noise-floor 1.5
	$(GO) run ./cmd/aimbench -scenario tiered -compare -fingerprint ci -noise-floor 1.5

## bench-baseline: record + promote scenario baselines for THIS host (run after intentional perf changes)
bench-baseline:
	$(GO) run ./cmd/aimbench -scenario smoke -record -promote
	$(GO) run ./cmd/aimbench -scenario steady -record -promote
	$(GO) run ./cmd/aimbench -scenario tiered -record -promote

## obs-guard: check the metrics layer keeps scan-round overhead within 3%
obs-guard:
	AIM_OBS_GUARD=1 $(GO) test -run TestMetricsOverheadGuard -v ./internal/query/

## ingest-guard: check batched ingest over TCP is no slower than per-event
ingest-guard:
	AIM_INGEST_GUARD=1 $(GO) test -run TestIngestBatchGuard -v ./internal/bench/

## kernel-guard: check scan compares stay closure-free and split-phase apply beats eager
kernel-guard:
	AIM_KERNEL_GUARD=1 $(GO) test -run TestKernelGuard -v ./internal/bench/

## overload-guard: overload drill — drive an admission-controlled node at 2x capacity and saturation; fails on silent event loss, delta past the hard watermark, missing typed sheds, or no recovery
overload-guard:
	AIM_OVERLOAD_GUARD=1 $(GO) test -run TestOverloadGuard -v ./internal/bench/

## crash: crash-injection campaign — kill aimserver at 100 random points, verify every recovery
crash:
	AIM_CRASH_KILLS=100 $(GO) test -run TestCrashRecoveryRandomKillPoints -v -timeout 30m ./internal/crashharness/

## replica-crash: failover campaign — kill the primary 50 times under live ingest, verify the promoted follower record for record
replica-crash:
	AIM_REPL_KILLS=50 $(GO) test -run TestReplicaFailoverKillCampaign -v -timeout 30m ./internal/crashharness/

## fuzz-smoke: 10s of fuzzing per durability decoder (archive frames, checkpoint files, event codec) and per compressed-chunk kernel family
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzOpenSegment -fuzztime 10s ./internal/archive/
	$(GO) test -run '^$$' -fuzz FuzzReadFile -fuzztime 10s ./internal/checkpoint/
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 10s ./internal/event/
	$(GO) test -run '^$$' -fuzz FuzzChunkKernels -fuzztime 10s ./internal/vec/

## ci: full gate — vet, build, race-detect the whole tree, metrics overhead guard, crash + fuzz smoke
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	AIM_OBS_GUARD=1 $(GO) test -run TestMetricsOverheadGuard ./internal/query/
	AIM_INGEST_GUARD=1 $(GO) test -run TestIngestBatchGuard ./internal/bench/
	AIM_KERNEL_GUARD=1 $(GO) test -run TestKernelGuard ./internal/bench/
	AIM_OVERLOAD_GUARD=1 $(GO) test -run TestOverloadGuard ./internal/bench/
	$(MAKE) bench-check
	$(MAKE) fuzz-smoke
	$(MAKE) crash
	$(MAKE) replica-crash
