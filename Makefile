GO ?= go

.PHONY: build test race bench

## build: compile every package and the aimbench binary
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: race-detect the concurrent scan/merge paths
race:
	$(GO) test -race ./internal/core/... ./internal/query/...

## bench: fused shared-scan batch microbenchmark (single vs naive vs fused)
bench:
	$(GO) test -bench BenchmarkSharedScanBatch -benchmem -run '^$$' ./internal/query/
