GO ?= go

.PHONY: build test race bench obs-guard ci

## build: compile every package and the aimbench binary
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: race-detect the concurrent scan/merge paths
race:
	$(GO) test -race ./internal/core/... ./internal/query/...

## bench: fused shared-scan batch microbenchmark (single vs naive vs fused)
bench:
	$(GO) test -bench BenchmarkSharedScanBatch -benchmem -run '^$$' ./internal/query/

## obs-guard: check the metrics layer keeps scan-round overhead within 3%
obs-guard:
	AIM_OBS_GUARD=1 $(GO) test -run TestMetricsOverheadGuard -v ./internal/query/

## ci: full gate — vet, build, race-detect the whole tree, metrics overhead guard
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	AIM_OBS_GUARD=1 $(GO) test -run TestMetricsOverheadGuard ./internal/query/
