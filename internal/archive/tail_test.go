package archive

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/event"
)

// TestReadFromTailsAcrossLiveRotation drives a tailing reader (the
// log-shipping path) against an archive that is being appended to and
// rotated concurrently: every committed event must arrive exactly once, in
// LSN order, and the reader must never observe an uncommitted frame.
func TestReadFromTailsAcrossLiveRotation(t *testing.T) {
	a, err := Open(t.TempDir(), Options{SegmentEvents: 8}) // rotate often
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const total = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			ev := mkEvent(uint64(i%5)+1, int64(i), int64(i), 1, false)
			if _, err := a.Append(&ev); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()

	var got []event.Event
	cursor := uint64(0)
	for len(got) < total {
		evs, frontier, err := a.ReadFrom(cursor, 7) // odd batch to straddle segments
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", cursor, err)
		}
		if cursor+uint64(len(evs)) > frontier {
			t.Fatalf("read past the committed frontier: cursor=%d batch=%d frontier=%d", cursor, len(evs), frontier)
		}
		for i, ev := range evs {
			if ev.Duration != int64(cursor)+int64(i) {
				t.Fatalf("lsn %d carries duration %d", cursor+uint64(i), ev.Duration)
			}
		}
		got = append(got, evs...)
		cursor += uint64(len(evs))
	}
	wg.Wait()
	if cursor != total {
		t.Fatalf("cursor = %d, want %d", cursor, total)
	}
	// Caught up: an empty batch with frontier == cursor.
	evs, frontier, err := a.ReadFrom(cursor, 64)
	if err != nil || len(evs) != 0 || frontier != total {
		t.Fatalf("caught-up read: evs=%d frontier=%d err=%v", len(evs), frontier, err)
	}
}

// TestReplayTailsAcrossLiveRotation covers the same live-tail scenario via
// incremental Replay(fromLSN) calls — the catch-up path a follower uses
// before switching to ReadFrom polling.
func TestReplayTailsAcrossLiveRotation(t *testing.T) {
	a, err := Open(t.TempDir(), Options{SegmentEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const total = 150
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			ev := mkEvent(1, int64(i), int64(i), 1, false)
			if _, err := a.Append(&ev); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()

	seen := make([]bool, total)
	cursor := uint64(0)
	for int(cursor) < total {
		next := cursor
		err := a.Replay(cursor, func(lsn uint64, ev event.Event) error {
			if lsn != next {
				t.Fatalf("replay out of order: lsn %d, want %d", lsn, next)
			}
			if ev.Duration != int64(lsn) {
				t.Fatalf("lsn %d carries duration %d", lsn, ev.Duration)
			}
			if seen[lsn] {
				t.Fatalf("lsn %d delivered twice", lsn)
			}
			seen[lsn] = true
			next++
			return nil
		})
		if err != nil {
			t.Fatalf("replay from %d: %v", cursor, err)
		}
		cursor = next
	}
	wg.Wait()
	for lsn, ok := range seen {
		if !ok {
			t.Fatalf("lsn %d never delivered", lsn)
		}
	}
}

// TestReadFromStopsCleanlyAtSalvagedTornTail crashes a tail frame, reopens
// in Salvage, and checks a tailing reader delivers exactly the surviving
// prefix and then reports caught-up — no error, no torn frame surfaced —
// and that events appended after the salvage flow through seamlessly.
func TestReadFromStopsCleanlyAtSalvagedTornTail(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{SegmentEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ev := mkEvent(1, int64(i), int64(i), 1, false)
		if _, err := a.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last frame mid-way (a crash during the final write).
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	sort.Strings(names)
	last := names[len(names)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-frameSizeV2/2); err != nil {
		t.Fatal(err)
	}

	a, err = Open(dir, Options{Recovery: Salvage})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.NextLSN() != 19 {
		t.Fatalf("salvaged NextLSN = %d, want 19", a.NextLSN())
	}

	cursor := uint64(0)
	for {
		evs, frontier, err := a.ReadFrom(cursor, 8)
		if err != nil {
			t.Fatalf("ReadFrom(%d) after salvage: %v", cursor, err)
		}
		if len(evs) == 0 {
			if frontier != 19 {
				t.Fatalf("frontier = %d, want 19", frontier)
			}
			break
		}
		for i, ev := range evs {
			if ev.Duration != int64(cursor)+int64(i) {
				t.Fatalf("lsn %d carries duration %d", cursor+uint64(i), ev.Duration)
			}
		}
		cursor += uint64(len(evs))
	}
	if cursor != 19 {
		t.Fatalf("tailed %d events, want the 19 surviving ones", cursor)
	}

	// The log keeps going after salvage; the tail picks the new events up.
	ev := mkEvent(2, 100, 100, 1, false)
	if _, err := a.Append(&ev); err != nil {
		t.Fatal(err)
	}
	evs, frontier, err := a.ReadFrom(cursor, 8)
	if err != nil || len(evs) != 1 || frontier != 20 || evs[0].Caller != 2 {
		t.Fatalf("post-salvage tail: evs=%v frontier=%d err=%v", evs, frontier, err)
	}
}

// TestReadFromBelowRetentionFloor checks the typed gap error when a
// follower asks for log that checkpoint GC already removed.
func TestReadFromBelowRetentionFloor(t *testing.T) {
	a, err := Open(t.TempDir(), Options{SegmentEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 12; i++ {
		ev := mkEvent(1, int64(i), int64(i), 1, false)
		if _, err := a.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.TruncateBelow(8); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.ReadFrom(0, 8); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadFrom below floor: err = %v, want ErrTruncated", err)
	}
	// Reading at the floor still works.
	evs, _, err := a.ReadFrom(8, 8)
	if err != nil || len(evs) != 4 {
		t.Fatalf("ReadFrom at floor: evs=%d err=%v", len(evs), err)
	}
}
