package archive

import (
	"math"

	"repro/internal/event"
	"repro/internal/schema"
)

// ExactWindow is the archive-backed exact sliding-window aggregation the
// paper's footnote 1 describes: when the materialized sliding-window
// approximation is not enough (e.g. all top-N values fell off the window),
// the archive of recent events recomputes the true aggregate.
type ExactWindow struct {
	// Metric and Filter select the aggregated event property, with the
	// same semantics as schema attribute groups.
	Metric schema.Metric
	Filter schema.Filter
	// WindowMillis is the exact sliding-window width.
	WindowMillis int64
}

// Result holds the exact aggregates over the window.
type Result struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Compute reads the entity's history from the archive and aggregates the
// events inside (now-WindowMillis, now].
func (w ExactWindow) Compute(a *Archive, entityID uint64, now int64) (Result, error) {
	evs, err := a.EntityHistory(entityID, now-w.WindowMillis+1, now)
	if err != nil {
		return Result{}, err
	}
	res := Result{Min: math.Inf(1), Max: math.Inf(-1)}
	for i := range evs {
		if !w.match(&evs[i]) {
			continue
		}
		v := w.value(&evs[i])
		res.Count++
		res.Sum += v
		if v < res.Min {
			res.Min = v
		}
		if v > res.Max {
			res.Max = v
		}
	}
	if res.Count == 0 {
		res.Min, res.Max = 0, 0
	}
	return res, nil
}

func (w ExactWindow) match(ev *event.Event) bool {
	switch w.Filter {
	case schema.CallLocal:
		return !ev.LongDistance
	case schema.CallLongDistance:
		return ev.LongDistance
	default:
		return true
	}
}

func (w ExactWindow) value(ev *event.Event) float64 {
	switch w.Metric {
	case schema.MetricDuration:
		return float64(ev.Duration)
	case schema.MetricCost:
		return ev.Cost
	default:
		return 1
	}
}
