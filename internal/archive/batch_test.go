package archive

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/crashpoint"
	"repro/internal/event"
)

// TestAppendBatchMatchesPerEventAppend checks a group append is
// indistinguishable from per-event appends on replay: same dense LSNs, same
// events, same per-entity index, including when the batch spans a segment
// rotation.
func TestAppendBatchMatchesPerEventAppend(t *testing.T) {
	evs := make([]event.Event, 40)
	for i := range evs {
		evs[i] = mkEvent(uint64(i%5)+1, int64(i), int64(i), 1, false)
	}

	dirA, dirB := t.TempDir(), t.TempDir()
	a, err := Open(dirA, Options{SegmentEvents: 16}) // batch crosses 2 rotations
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(dirB, Options{SegmentEvents: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	first, appended, err := a.AppendBatch(evs)
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 || appended != len(evs) {
		t.Fatalf("first LSN = %d appended = %d, want 0 and %d", first, appended, len(evs))
	}
	for i := range evs {
		lsn, err := b.Append(&evs[i])
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("per-event lsn = %d, want %d", lsn, i)
		}
	}
	if a.Len() != b.Len() || a.NextLSN() != b.NextLSN() {
		t.Fatalf("batch Len=%d NextLSN=%d, per-event Len=%d NextLSN=%d",
			a.Len(), a.NextLSN(), b.Len(), b.NextLSN())
	}

	collect := func(ar *Archive) []event.Event {
		var out []event.Event
		next := uint64(0)
		err := ar.Replay(0, func(lsn uint64, ev event.Event) error {
			if lsn != next {
				t.Fatalf("replay lsn = %d, want %d", lsn, next)
			}
			next++
			out = append(out, ev)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	gotA, gotB := collect(a), collect(b)
	if len(gotA) != len(evs) {
		t.Fatalf("replayed %d events, want %d", len(gotA), len(evs))
	}
	for i := range gotA {
		if gotA[i] != gotB[i] || gotA[i] != evs[i] {
			t.Fatalf("event %d: batch %+v, per-event %+v, want %+v", i, gotA[i], gotB[i], evs[i])
		}
	}
	for caller := uint64(1); caller <= 5; caller++ {
		ha, err := a.EntityHistory(caller, 0, int64(len(evs)))
		if err != nil {
			t.Fatal(err)
		}
		hb, err := b.EntityHistory(caller, 0, int64(len(evs)))
		if err != nil {
			t.Fatal(err)
		}
		if len(ha) != len(hb) || len(ha) != 8 {
			t.Fatalf("entity %d: batch index %d, per-event index %d, want 8", caller, len(ha), len(hb))
		}
	}
}

// TestAppendBatchEmptyAndSingle covers the degenerate batch sizes: an empty
// batch is a no-op and a 1-event batch behaves exactly like Append.
func TestAppendBatchEmptyAndSingle(t *testing.T) {
	a, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, appended, err := a.AppendBatch(nil); err != nil || appended != 0 {
		t.Fatalf("empty batch: appended=%d err=%v", appended, err)
	}
	if a.Len() != 0 {
		t.Fatalf("Len after empty batch = %d", a.Len())
	}
	ev := mkEvent(7, 1, 2, 3, true)
	first, appended, err := a.AppendBatch([]event.Event{ev})
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 || appended != 1 || a.Len() != 1 || a.NextLSN() != 1 {
		t.Fatalf("single-event batch: first=%d appended=%d Len=%d NextLSN=%d",
			first, appended, a.Len(), a.NextLSN())
	}
}

// TestTornGroupAppendSalvages simulates a crash mid-way through the LAST
// frame of a group append — the state the archive.append.batch-torn kill
// point exposes — and checks Salvage recovery truncates to the whole-event
// boundary: every fully-written frame of the batch survives, only the torn
// final frame is dropped.
func TestTornGroupAppendSalvages(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Arm the batch-torn point with a hook that records the segment size at
	// the instant the kill would fire (the prefix write has landed, the
	// remainder of the last frame has not), instead of dying.
	if err := crashpoint.Arm(crashpoint.ArchiveAppendBatchTorn); err != nil {
		t.Fatal(err)
	}
	defer crashpoint.Disarm()
	var tornSize int64 = -1
	crashpoint.SetHook(func(name string) {
		if name != crashpoint.ArchiveAppendBatchTorn {
			return
		}
		segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
		if len(segs) != 1 {
			t.Errorf("segments at torn point: %v", segs)
			return
		}
		fi, err := os.Stat(segs[0])
		if err != nil {
			t.Error(err)
			return
		}
		tornSize = fi.Size()
	})

	evs := make([]event.Event, 10)
	for i := range evs {
		evs[i] = mkEvent(uint64(i)+1, int64(i), 10, 1, false)
	}
	if _, _, err := a.AppendBatch(evs); err != nil {
		t.Fatal(err)
	}
	a.Close()
	if tornSize < 0 {
		t.Fatal("batch-torn crashpoint never fired")
	}

	// Rewind the segment to the crash instant and recover.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	if err := os.Truncate(segs[0], tornSize); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict open of torn group append: err = %v, want ErrCorrupt", err)
	}
	b, err := Open(dir, Options{Recovery: Salvage})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Len() != len(evs)-1 || b.NextLSN() != uint64(len(evs)-1) {
		t.Fatalf("after salvage Len=%d NextLSN=%d, want %d", b.Len(), b.NextLSN(), len(evs)-1)
	}
	rep := b.Report()
	if rep.FramesDropped != 1 || rep.Clean() {
		t.Fatalf("salvage report = %+v", rep)
	}
	// The surviving prefix replays intact and appending resumes densely.
	next := uint64(0)
	if err := b.Replay(0, func(lsn uint64, ev event.Event) error {
		if lsn != next || ev != evs[lsn] {
			t.Fatalf("replay lsn %d: got %+v", lsn, ev)
		}
		next++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	lsn, err := b.Append(&evs[len(evs)-1])
	if err != nil {
		t.Fatal(err)
	}
	if lsn != uint64(len(evs)-1) {
		t.Fatalf("append after salvage lsn = %d", lsn)
	}
}
