// Package archive implements AIM's persistent event archive — a production
// feature the paper describes (§7, and footnote 1: the archive of recent
// events is consulted when all top-N values of a sliding window expire, and
// it backs durability together with incremental checkpointing).
//
// The archive is an append-only log of fixed-size CDR frames, segmented
// into files of a configurable event capacity. Every appended event gets a
// monotonically increasing log sequence number (LSN = its position in the
// log), which the checkpoint/recovery machinery uses as the replay
// watermark. Each segment carries an in-memory per-entity index (rebuilt on
// open) so per-entity history scans — the exact-sliding-window path — do
// not read unrelated events.
package archive

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/event"
)

// frameSize is the on-disk record: the 64 B event frame plus its LSN.
const frameSize = event.WireSize + 8

// DefaultSegmentEvents is the default segment capacity.
const DefaultSegmentEvents = 1 << 16

// Archive is an append-only, segmented event log.
type Archive struct {
	dir         string
	segmentCap  int
	mu          sync.Mutex
	segments    []*segment
	active      *segment
	nextLSN     uint64
	syncOnWrite bool
}

type segment struct {
	path     string
	firstLSN uint64
	n        int
	file     *os.File // nil when sealed
	// byEntity maps caller entity -> frame ordinals within the segment.
	byEntity map[uint64][]int32
}

// Options configures an Archive.
type Options struct {
	// SegmentEvents caps events per segment file (default 65536).
	SegmentEvents int
	// SyncOnWrite fsyncs after every append (durable but slow); when
	// false, durability is bounded by Sync/rotation (the paper's
	// "zero-copy logging" trades the same bound).
	SyncOnWrite bool
}

// Open creates or recovers an archive in dir.
func Open(dir string, opts Options) (*Archive, error) {
	if opts.SegmentEvents <= 0 {
		opts.SegmentEvents = DefaultSegmentEvents
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	a := &Archive{dir: dir, segmentCap: opts.SegmentEvents, syncOnWrite: opts.SyncOnWrite}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		seg, err := openSegment(name)
		if err != nil {
			return nil, err
		}
		a.segments = append(a.segments, seg)
		a.nextLSN = seg.firstLSN + uint64(seg.n)
	}
	// Reopen the last segment for appends if it has room.
	if n := len(a.segments); n > 0 && a.segments[n-1].n < a.segmentCap {
		last := a.segments[n-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("archive: reopen %s: %w", last.path, err)
		}
		last.file = f
		a.active = last
	}
	return a, nil
}

// openSegment reads a sealed segment and rebuilds its entity index.
func openSegment(path string) (*segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	if len(data)%frameSize != 0 {
		// A torn tail write: keep the complete prefix (crash recovery).
		data = data[:len(data)/frameSize*frameSize]
	}
	seg := &segment{path: path, byEntity: make(map[uint64][]int32)}
	for i := 0; i*frameSize < len(data); i++ {
		off := i * frameSize
		lsn := binary.LittleEndian.Uint64(data[off:])
		if i == 0 {
			seg.firstLSN = lsn
		}
		caller := binary.LittleEndian.Uint64(data[off+8:]) // Event.Caller is frame word 0
		seg.byEntity[caller] = append(seg.byEntity[caller], int32(i))
		seg.n++
	}
	return seg, nil
}

// Append logs one event and returns its LSN.
func (a *Archive) Append(ev *event.Event) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active == nil || a.active.n >= a.segmentCap {
		if err := a.rotateLocked(); err != nil {
			return 0, err
		}
	}
	lsn := a.nextLSN
	var buf [frameSize]byte
	binary.LittleEndian.PutUint64(buf[:], lsn)
	ev.Encode(buf[8:])
	if _, err := a.active.file.Write(buf[:]); err != nil {
		return 0, fmt.Errorf("archive: append: %w", err)
	}
	if a.syncOnWrite {
		if err := a.active.file.Sync(); err != nil {
			return 0, fmt.Errorf("archive: sync: %w", err)
		}
	}
	a.active.byEntity[ev.Caller] = append(a.active.byEntity[ev.Caller], int32(a.active.n))
	a.active.n++
	a.nextLSN++
	return lsn, nil
}

// rotateLocked seals the active segment and starts a new one.
func (a *Archive) rotateLocked() error {
	if a.active != nil {
		if err := a.active.file.Sync(); err != nil {
			return fmt.Errorf("archive: seal sync: %w", err)
		}
		if err := a.active.file.Close(); err != nil {
			return fmt.Errorf("archive: seal close: %w", err)
		}
		a.active.file = nil
	}
	path := filepath.Join(a.dir, fmt.Sprintf("seg-%016d.log", a.nextLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("archive: rotate: %w", err)
	}
	seg := &segment{path: path, firstLSN: a.nextLSN, file: f, byEntity: make(map[uint64][]int32)}
	a.segments = append(a.segments, seg)
	a.active = seg
	return nil
}

// Sync flushes the active segment to disk.
func (a *Archive) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active != nil && a.active.file != nil {
		return a.active.file.Sync()
	}
	return nil
}

// Close syncs and closes the archive.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active != nil && a.active.file != nil {
		if err := a.active.file.Sync(); err != nil {
			return err
		}
		if err := a.active.file.Close(); err != nil {
			return err
		}
		a.active.file = nil
		a.active = nil
	}
	return nil
}

// NextLSN returns the LSN the next Append will get.
func (a *Archive) NextLSN() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nextLSN
}

// Len returns the number of archived events.
func (a *Archive) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, s := range a.segments {
		n += s.n
	}
	return n
}

// readFrame reads one frame of a segment (from disk; segments are the
// durable copy, no payload cache is kept).
func (s *segment) readFrame(ordinal int) (uint64, event.Event, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return 0, event.Event{}, err
	}
	defer f.Close()
	var buf [frameSize]byte
	if _, err := f.ReadAt(buf[:], int64(ordinal)*frameSize); err != nil {
		return 0, event.Event{}, err
	}
	lsn := binary.LittleEndian.Uint64(buf[:])
	var ev event.Event
	if err := ev.Decode(buf[8:]); err != nil {
		return 0, ev, err
	}
	return lsn, ev, nil
}

// Replay invokes fn for every archived event with LSN >= fromLSN, in LSN
// order. This is the recovery tail-replay path.
func (a *Archive) Replay(fromLSN uint64, fn func(lsn uint64, ev event.Event) error) error {
	a.mu.Lock()
	segs := append([]*segment(nil), a.segments...)
	a.mu.Unlock()
	for _, s := range segs {
		if s.firstLSN+uint64(s.n) <= fromLSN {
			continue
		}
		data, err := os.ReadFile(s.path)
		if err != nil {
			return fmt.Errorf("archive: replay %s: %w", s.path, err)
		}
		if len(data) > s.n*frameSize {
			data = data[:s.n*frameSize]
		}
		for i := 0; i*frameSize < len(data); i++ {
			off := i * frameSize
			lsn := binary.LittleEndian.Uint64(data[off:])
			if lsn < fromLSN {
				continue
			}
			var ev event.Event
			if err := ev.Decode(data[off+8:]); err != nil {
				return err
			}
			if err := fn(lsn, ev); err != nil {
				return err
			}
		}
	}
	return nil
}

// EntityHistory returns the archived events of one entity with timestamps
// in [fromTs, toTs], in log order — the exact-sliding-window lookup path.
func (a *Archive) EntityHistory(entityID uint64, fromTs, toTs int64) ([]event.Event, error) {
	a.mu.Lock()
	segs := append([]*segment(nil), a.segments...)
	a.mu.Unlock()
	var out []event.Event
	for _, s := range segs {
		ordinals := s.byEntity[entityID]
		for _, ord := range ordinals {
			_, ev, err := s.readFrame(int(ord))
			if err != nil {
				return nil, fmt.Errorf("archive: history: %w", err)
			}
			if ev.Timestamp >= fromTs && ev.Timestamp <= toTs {
				out = append(out, ev)
			}
		}
	}
	return out, nil
}
