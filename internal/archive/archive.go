// Package archive implements AIM's persistent event archive — a production
// feature the paper describes (§7, and footnote 1: the archive of recent
// events is consulted when all top-N values of a sliding window expire, and
// it backs durability together with incremental checkpointing).
//
// The archive is an append-only log of fixed-size CDR frames, segmented
// into files of a configurable event capacity. Every appended event gets a
// monotonically increasing log sequence number (LSN = its position in the
// log), which the checkpoint/recovery machinery uses as the replay
// watermark. Each segment carries an in-memory per-entity index (rebuilt on
// open) so per-entity history scans — the exact-sliding-window path — do
// not read unrelated events.
//
// On-disk format revisions:
//
//	v1 (legacy): no header; frames of [lsn u64 | 64 B event].
//	v2:          16 B header [magic "AIMSEG2\0" | firstLSN u64], then
//	             frames of [lsn u64 | 64 B event | crc32c u32], the CRC
//	             covering the preceding 72 bytes.
//
// The reader accepts both; the writer only produces v2. Recovery runs in
// one of two modes: Strict fails on any inconsistency, Salvage truncates a
// torn tail at the last valid frame, quarantines unreachable segments, and
// reports exactly what it dropped.
package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/crashpoint"
	"repro/internal/event"
	"repro/internal/obs"
)

const (
	// frameSizeV1 is the legacy on-disk record: 64 B event frame plus LSN.
	frameSizeV1 = event.WireSize + 8
	// frameSizeV2 adds a CRC32C over the LSN+payload.
	frameSizeV2 = event.WireSize + 12
	// headerSizeV2 is the v2 segment header: magic + firstLSN.
	headerSizeV2 = 16
	// crcOffset is where the frame CRC lives within a v2 frame.
	crcOffset = event.WireSize + 8
)

var segMagic = [8]byte{'A', 'I', 'M', 'S', 'E', 'G', '2', 0}

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DefaultSegmentEvents is the default segment capacity.
const DefaultSegmentEvents = 1 << 16

// RecoveryMode selects how Open treats on-disk inconsistencies.
type RecoveryMode int

const (
	// Strict fails on any checksum mismatch, torn tail, or LSN gap. A
	// cleanly shut down archive always opens in Strict.
	Strict RecoveryMode = iota
	// Salvage truncates a torn tail at the last valid frame, quarantines
	// segments beyond the valid prefix (renamed *.quarantine, never
	// deleted), and records what it dropped in the RecoveryReport.
	Salvage
)

func (m RecoveryMode) String() string {
	if m == Salvage {
		return "salvage"
	}
	return "strict"
}

// ErrCorrupt is wrapped by every corruption error Strict recovery returns,
// so callers can decide to retry with Salvage.
var ErrCorrupt = errors.New("archive: corrupt")

// RecoveryReport says what Open found and (in Salvage mode) dropped.
type RecoveryReport struct {
	Mode RecoveryMode
	// Segments is the number of live segments after recovery.
	Segments int
	// FramesDropped counts frames lost to tail truncation (whole or torn).
	FramesDropped int
	// BytesTruncated is how many bytes Salvage cut from torn segments.
	BytesTruncated int64
	// QuarantinedFiles are segments renamed aside (unreachable after a
	// mid-log truncation or unreadable headers).
	QuarantinedFiles []string
}

// Clean reports whether recovery found nothing to repair.
func (r RecoveryReport) Clean() bool {
	return r.FramesDropped == 0 && r.BytesTruncated == 0 && len(r.QuarantinedFiles) == 0
}

// Archive is an append-only, segmented event log.
type Archive struct {
	dir         string
	segmentCap  int
	mu          sync.Mutex
	segments    []*segment
	active      *segment
	nextLSN     uint64
	syncOnWrite bool
	report      RecoveryReport

	met archiveMetrics
}

type segment struct {
	path     string
	firstLSN uint64
	n        int
	file     *os.File // nil when sealed
	v1       bool     // legacy frame layout (no header, no CRC)
	// byEntity maps caller entity -> frame ordinals within the segment.
	byEntity map[uint64][]int32
}

func (s *segment) frameSize() int {
	if s.v1 {
		return frameSizeV1
	}
	return frameSizeV2
}

func (s *segment) dataOff() int {
	if s.v1 {
		return 0
	}
	return headerSizeV2
}

// archiveMetrics are the archive's obs instruments; all fields are nil (and
// therefore free) when Options.Metrics is nil.
type archiveMetrics struct {
	fsync       *obs.Histogram
	segments    *obs.Gauge
	salvFrames  *obs.Counter
	salvSegs    *obs.Counter
	gcSegments  *obs.Counter
	appendBytes *obs.Counter
}

// Options configures an Archive.
type Options struct {
	// SegmentEvents caps events per segment file (default 65536).
	SegmentEvents int
	// SyncOnWrite fsyncs after every append (durable but slow); when
	// false, durability is bounded by Sync/rotation (the paper's
	// "zero-copy logging" trades the same bound).
	SyncOnWrite bool
	// Recovery selects Strict (default) or Salvage handling of on-disk
	// inconsistencies at Open.
	Recovery RecoveryMode
	// Metrics, when set, registers the archive's instruments (fsync
	// latency, segment count, salvage drops) on the registry.
	Metrics *obs.Registry
	// MetricsLabel adds a node="<label>" constant label to every metric.
	MetricsLabel string
}

func label(l, name string) string {
	if l == "" {
		return name
	}
	return obs.Label(name, "node", l)
}

// Open creates or recovers an archive in dir.
func Open(dir string, opts Options) (*Archive, error) {
	if opts.SegmentEvents <= 0 {
		opts.SegmentEvents = DefaultSegmentEvents
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	a := &Archive{
		dir:         dir,
		segmentCap:  opts.SegmentEvents,
		syncOnWrite: opts.SyncOnWrite,
		report:      RecoveryReport{Mode: opts.Recovery},
	}
	if reg := opts.Metrics; reg != nil {
		a.met = archiveMetrics{
			fsync: reg.LatencyHistogram(label(opts.MetricsLabel, "aim_archive_fsync_seconds"),
				"Latency of archive segment fsyncs."),
			segments: reg.Gauge(label(opts.MetricsLabel, "aim_archive_segments"),
				"Live archive segment files."),
			salvFrames: reg.Counter(label(opts.MetricsLabel, "aim_archive_salvage_frames_dropped_total"),
				"Frames dropped by Salvage recovery (torn tails and quarantined segments)."),
			salvSegs: reg.Counter(label(opts.MetricsLabel, "aim_archive_salvage_segments_dropped_total"),
				"Whole segments quarantined by Salvage recovery."),
			gcSegments: reg.Counter(label(opts.MetricsLabel, "aim_archive_segments_gc_total"),
				"Segments removed by checkpoint-driven archive truncation."),
			appendBytes: reg.Counter(label(opts.MetricsLabel, "aim_archive_append_bytes_total"),
				"Bytes appended to the archive."),
		}
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	sort.Strings(names)
	// Drop zero-length segments in any mode: a crash between segment
	// creation and the header write leaves an empty file that holds no
	// committed frames, would read as a bogus LSN gap, and whose name
	// collides with the next rotation.
	live := names[:0]
	for _, name := range names {
		if segBytes(name) == 0 {
			if err := os.Remove(name); err != nil {
				return nil, fmt.Errorf("archive: remove empty segment: %w", err)
			}
			continue
		}
		live = append(live, name)
	}
	names = live
	if err := a.recoverSegments(names, opts.Recovery); err != nil {
		return nil, err
	}
	// Reopen the last segment for appends if it is v2 and has room. A
	// trailing v1 segment stays sealed; the next append rotates into a
	// fresh v2 segment so formats never mix within one file.
	if n := len(a.segments); n > 0 {
		last := a.segments[n-1]
		if !last.v1 && last.n < a.segmentCap {
			f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("archive: reopen %s: %w", last.path, err)
			}
			last.file = f
			a.active = last
		}
	}
	a.met.segments.Set(int64(len(a.segments)))
	return a, nil
}

// recoverSegments validates the segment chain in order, enforcing frame
// checksums and LSN contiguity, repairing (Salvage) or rejecting (Strict)
// anything inconsistent.
func (a *Archive) recoverSegments(names []string, mode RecoveryMode) error {
	var expect uint64
	haveExpect := false
	for i, name := range names {
		seg, truncAt, dropped, err := parseSegment(name)
		bad := err != nil
		if !bad && haveExpect && seg.firstLSN != expect {
			err = fmt.Errorf("%w: %s: LSN gap (starts at %d, want %d)", ErrCorrupt, name, seg.firstLSN, expect)
			bad = true
		}
		if bad {
			if mode == Strict {
				return err
			}
			// Salvage: the valid log ends here. Quarantine this segment
			// and every later one.
			return a.quarantineFrom(names[i:], dropped+countFrames(names[i+1:]))
		}
		if truncAt >= 0 {
			// Torn tail within this segment.
			if mode == Strict {
				return fmt.Errorf("%w: %s: torn tail (%d trailing bytes)", ErrCorrupt, name, segBytes(name)-truncAt)
			}
			cut := segBytes(name) - truncAt
			if truncAt == 0 {
				// The whole file is a torn tail (a headerless fragment):
				// keeping a zero-length shell would collide with the next
				// rotation, so remove it outright.
				if err := os.Remove(name); err != nil {
					return fmt.Errorf("archive: salvage remove %s: %w", name, err)
				}
			} else {
				if err := os.Truncate(name, truncAt); err != nil {
					return fmt.Errorf("archive: salvage truncate %s: %w", name, err)
				}
				a.segments = append(a.segments, seg)
				a.nextLSN = seg.firstLSN + uint64(seg.n)
			}
			a.report.BytesTruncated += cut
			a.report.FramesDropped += dropped
			a.met.salvFrames.Add(uint64(dropped))
			a.report.Segments = len(a.segments)
			// Segments beyond a truncated one are past the end of the log.
			return a.quarantineFrom(names[i+1:], countFrames(names[i+1:]))
		}
		a.segments = append(a.segments, seg)
		a.nextLSN = seg.firstLSN + uint64(seg.n)
		expect, haveExpect = a.nextLSN, true
	}
	a.report.Segments = len(a.segments)
	return nil
}

// quarantineFrom renames the given segment files aside and accounts them in
// the recovery report. Files are renamed, never deleted, so an operator can
// inspect what Salvage dropped.
func (a *Archive) quarantineFrom(names []string, frames int) error {
	for _, name := range names {
		q := name + ".quarantine"
		if err := os.Rename(name, q); err != nil {
			return fmt.Errorf("archive: quarantine %s: %w", name, err)
		}
		a.report.QuarantinedFiles = append(a.report.QuarantinedFiles, q)
		a.met.salvSegs.Inc()
	}
	a.report.FramesDropped += frames
	a.met.salvFrames.Add(uint64(frames))
	a.report.Segments = len(a.segments)
	return syncDir(a.dir)
}

// countFrames estimates (upper bound) how many frames live in the given
// segment files, for salvage drop reporting.
func countFrames(names []string) int {
	total := 0
	for _, name := range names {
		sz := segBytes(name)
		if sz > headerSizeV2 {
			total += int((sz - headerSizeV2 + frameSizeV2 - 1) / frameSizeV2)
		}
	}
	return total
}

func segBytes(name string) int64 {
	fi, err := os.Stat(name)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// parseSegment reads one segment and rebuilds its entity index. It returns
// truncAt >= 0 (a byte offset) when the file has a torn but salvageable
// tail, with dropped = the number of frames beyond the valid prefix. A
// non-nil error means the segment is unusable from the start.
func parseSegment(path string) (seg *segment, truncAt int64, dropped int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, -1, 0, fmt.Errorf("archive: %w", err)
	}
	seg = &segment{path: path, byEntity: make(map[uint64][]int32)}
	if len(data) >= 8 && [8]byte(data[:8]) == segMagic {
		return parseV2(seg, data)
	}
	return parseV1(seg, data)
}

func parseV2(seg *segment, data []byte) (*segment, int64, int, error) {
	if len(data) < headerSizeV2 {
		return nil, -1, 0, fmt.Errorf("%w: %s: short header", ErrCorrupt, seg.path)
	}
	seg.firstLSN = binary.LittleEndian.Uint64(data[8:])
	body := data[headerSizeV2:]
	total := (len(body) + frameSizeV2 - 1) / frameSizeV2 // frames incl. a torn tail
	for i := 0; (i+1)*frameSizeV2 <= len(body); i++ {
		f := body[i*frameSizeV2:]
		want := binary.LittleEndian.Uint32(f[crcOffset:])
		if crc32.Checksum(f[:crcOffset], castagnoli) != want {
			return seg, int64(headerSizeV2 + i*frameSizeV2), total - i, nil
		}
		lsn := binary.LittleEndian.Uint64(f)
		if lsn != seg.firstLSN+uint64(i) {
			return seg, int64(headerSizeV2 + i*frameSizeV2), total - i, nil
		}
		caller := binary.LittleEndian.Uint64(f[8:]) // Event.Caller is frame word 0
		seg.byEntity[caller] = append(seg.byEntity[caller], int32(i))
		seg.n++
	}
	if seg.n*frameSizeV2 != len(body) {
		// Torn partial frame at the tail (all complete frames were valid).
		return seg, int64(headerSizeV2 + seg.n*frameSizeV2), total - seg.n, nil
	}
	return seg, -1, 0, nil
}

func parseV1(seg *segment, data []byte) (*segment, int64, int, error) {
	seg.v1 = true
	for i := 0; (i+1)*frameSizeV1 <= len(data); i++ {
		off := i * frameSizeV1
		lsn := binary.LittleEndian.Uint64(data[off:])
		if i == 0 {
			seg.firstLSN = lsn
		} else if lsn != seg.firstLSN+uint64(i) {
			// v1 has no checksums; a broken LSN chain is the only tell.
			return seg, int64(off), (len(data)-off+frameSizeV1-1)/frameSizeV1, nil
		}
		caller := binary.LittleEndian.Uint64(data[off+8:])
		seg.byEntity[caller] = append(seg.byEntity[caller], int32(i))
		seg.n++
	}
	if seg.n*frameSizeV1 != len(data) {
		return seg, int64(seg.n * frameSizeV1), 1, nil
	}
	return seg, -1, 0, nil
}

// Report returns what recovery found (and repaired) at Open.
func (a *Archive) Report() RecoveryReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.report
}

// Append logs one event and returns its LSN.
func (a *Archive) Append(ev *event.Event) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active == nil || a.active.n >= a.segmentCap {
		if err := a.rotateLocked(); err != nil {
			return 0, err
		}
	}
	lsn := a.nextLSN
	var buf [frameSizeV2]byte
	binary.LittleEndian.PutUint64(buf[:], lsn)
	ev.Encode(buf[8:])
	binary.LittleEndian.PutUint32(buf[crcOffset:], crc32.Checksum(buf[:crcOffset], castagnoli))
	if err := a.writeFrame(buf[:]); err != nil {
		return 0, fmt.Errorf("archive: append: %w", err)
	}
	a.met.appendBytes.Add(frameSizeV2)
	if a.syncOnWrite {
		crashpoint.Hit(crashpoint.ArchiveAppendBeforeSync)
		if err := a.syncFile(a.active.file); err != nil {
			return 0, fmt.Errorf("archive: sync: %w", err)
		}
	}
	a.active.byEntity[ev.Caller] = append(a.active.byEntity[ev.Caller], int32(a.active.n))
	a.active.n++
	a.nextLSN++
	return lsn, nil
}

// AppendBatch logs a batch of events as one group append — one buffered
// write per touched segment (batches split across a rotation) plus at most
// one fsync when SyncOnWrite — and returns the LSN of the first event plus
// how many leading events were appended to the per-event durability standard
// (the write succeeded and, when SyncOnWrite, the frames landed on an
// fsynced segment). On error callers must re-log only evs[appended:]:
// re-logging the appended prefix would duplicate it in the WAL, and a
// crash-recovery replay would then apply those events twice. As with a
// single Append whose write succeeded but whose sync failed, frames beyond
// the reported prefix may still survive a lucky crash — that residual
// at-most-one-write window is unchanged from the per-event path.
//
// Per-event durability semantics are preserved: every event still gets its
// own CRC-framed slot and consecutive LSN, so a crash mid-group tears at
// most the trailing frame of the write and Salvage recovery truncates to a
// whole-event boundary exactly as it does for single appends.
func (a *Archive) AppendBatch(evs []event.Event) (uint64, int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	first := a.nextLSN
	written := 0 // events whose frames were written into segment files
	synced := 0  // events on segments sealed (fsynced) by a mid-batch rotation
	for i := 0; i < len(evs); {
		if a.active == nil || a.active.n >= a.segmentCap {
			if err := a.rotateLocked(); err != nil {
				return first, a.appendedCount(written, synced), err
			}
			synced = written
		}
		chunk := evs[i:min(i+a.segmentCap-a.active.n, len(evs))]
		buf := make([]byte, len(chunk)*frameSizeV2)
		for k := range chunk {
			f := buf[k*frameSizeV2:]
			binary.LittleEndian.PutUint64(f, a.nextLSN+uint64(k))
			chunk[k].Encode(f[8:])
			binary.LittleEndian.PutUint32(f[crcOffset:], crc32.Checksum(f[:crcOffset], castagnoli))
		}
		if err := a.writeGroup(buf); err != nil {
			return first, a.appendedCount(written, synced), fmt.Errorf("archive: append batch: %w", err)
		}
		a.met.appendBytes.Add(uint64(len(buf)))
		for k := range chunk {
			a.active.byEntity[chunk[k].Caller] = append(a.active.byEntity[chunk[k].Caller], int32(a.active.n))
			a.active.n++
		}
		a.nextLSN += uint64(len(chunk))
		written += len(chunk)
		i += len(chunk)
	}
	if a.syncOnWrite && a.active != nil {
		crashpoint.Hit(crashpoint.ArchiveAppendBeforeSync)
		if err := a.syncFile(a.active.file); err != nil {
			return first, synced, fmt.Errorf("archive: sync: %w", err)
		}
	}
	return first, written, nil
}

// appendedCount converts a group append's write/sync progress into the
// prefix length AppendBatch reports on error: without SyncOnWrite a
// successful write is exactly as durable as a successful single Append; with
// it only events whose segment was already sealed have been fsynced when the
// batch aborts early.
func (a *Archive) appendedCount(written, synced int) int {
	if a.syncOnWrite {
		return synced
	}
	return written
}

// writeGroup writes one chunk of a group append. Single-frame chunks take
// the writeFrame path (sharing its torn-write kill point); with crashpoints
// armed a multi-frame chunk goes out in two writes split mid-way through
// its LAST frame, with a kill point between them, so the harness can
// manufacture a group append whose whole-frame prefix is durable and whose
// tail frame is torn.
func (a *Archive) writeGroup(buf []byte) error {
	if len(buf) == frameSizeV2 {
		return a.writeFrame(buf)
	}
	crashpoint.Hit(crashpoint.ArchiveAppendBeforeWrite)
	if crashpoint.Enabled() {
		cut := len(buf) - frameSizeV2/2
		if _, err := a.active.file.Write(buf[:cut]); err != nil {
			return err
		}
		crashpoint.Hit(crashpoint.ArchiveAppendBatchTorn)
		_, err := a.active.file.Write(buf[cut:])
		return err
	}
	_, err := a.active.file.Write(buf)
	return err
}

// writeFrame writes one frame. With crashpoints armed the frame goes out in
// two halves with a kill point between them, so the harness can manufacture
// genuinely torn tails; otherwise it is a single write.
func (a *Archive) writeFrame(buf []byte) error {
	crashpoint.Hit(crashpoint.ArchiveAppendBeforeWrite)
	if crashpoint.Enabled() {
		half := len(buf) / 2
		if _, err := a.active.file.Write(buf[:half]); err != nil {
			return err
		}
		crashpoint.Hit(crashpoint.ArchiveAppendTorn)
		_, err := a.active.file.Write(buf[half:])
		return err
	}
	_, err := a.active.file.Write(buf)
	return err
}

// rotateLocked seals the active segment and starts a new one. A nil
// active.file means a previous rotation sealed the segment but failed to
// open its successor; the retry skips straight to the open so a transient
// failure does not wedge the archive.
func (a *Archive) rotateLocked() error {
	if a.active != nil && a.active.file != nil {
		if err := a.syncFile(a.active.file); err != nil {
			return fmt.Errorf("archive: seal sync: %w", err)
		}
		if err := a.active.file.Close(); err != nil {
			return fmt.Errorf("archive: seal close: %w", err)
		}
		a.active.file = nil
	}
	path := filepath.Join(a.dir, fmt.Sprintf("seg-%016d.log", a.nextLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("archive: rotate: %w", err)
	}
	crashpoint.Hit(crashpoint.ArchiveRotateAfterCreate)
	var hdr [headerSizeV2]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], a.nextLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("archive: rotate header: %w", err)
	}
	if err := syncDir(a.dir); err != nil {
		f.Close()
		return err
	}
	seg := &segment{path: path, firstLSN: a.nextLSN, file: f, byEntity: make(map[uint64][]int32)}
	a.segments = append(a.segments, seg)
	a.active = seg
	a.met.segments.Set(int64(len(a.segments)))
	return nil
}

// syncFile fsyncs f, feeding the fsync-latency histogram.
func (a *Archive) syncFile(f *os.File) error {
	var t0 time.Time
	if a.met.fsync != nil {
		t0 = time.Now()
	}
	err := f.Sync()
	a.met.fsync.ObserveSince(t0)
	return err
}

// syncDir makes directory-entry changes (creates, renames, removes)
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("archive: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("archive: sync dir: %w", err)
	}
	return nil
}

// Sync flushes the active segment to disk.
func (a *Archive) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active != nil && a.active.file != nil {
		return a.syncFile(a.active.file)
	}
	return nil
}

// Close syncs and closes the archive.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active != nil && a.active.file != nil {
		if err := a.syncFile(a.active.file); err != nil {
			return err
		}
		if err := a.active.file.Close(); err != nil {
			return err
		}
		a.active.file = nil
		a.active = nil
	}
	return nil
}

// NextLSN returns the LSN the next Append will get.
func (a *Archive) NextLSN() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nextLSN
}

// Len returns the number of archived events.
func (a *Archive) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, s := range a.segments {
		n += s.n
	}
	return n
}

// FirstLSN returns the LSN of the oldest retained event (0 when empty).
func (a *Archive) FirstLSN() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.segments) == 0 {
		return a.nextLSN
	}
	return a.segments[0].firstLSN
}

// TruncateBelow removes whole sealed segments every frame of which has
// LSN < lsn — the checkpoint-retention GC: once a base checkpoint holds
// state through its watermark, the archive below it is dead weight. The
// newest segment is always kept (even if fully below the watermark) so the
// archive's next-LSN survives restarts. Returns the number of segments
// removed.
func (a *Archive) TruncateBelow(lsn uint64) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	removed := 0
	for len(a.segments) > 1 {
		s := a.segments[0]
		if s.file != nil || s.firstLSN+uint64(s.n) > lsn {
			break
		}
		if err := os.Remove(s.path); err != nil {
			return removed, fmt.Errorf("archive: truncate: %w", err)
		}
		a.segments = a.segments[1:]
		removed++
		a.met.gcSegments.Inc()
		crashpoint.Hit(crashpoint.ArchiveTruncateMid)
	}
	a.met.segments.Set(int64(len(a.segments)))
	if removed > 0 {
		if err := syncDir(a.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// readFrame reads one frame of a segment (from disk; segments are the
// durable copy, no payload cache is kept).
func (s *segment) readFrame(ordinal int) (uint64, event.Event, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return 0, event.Event{}, err
	}
	defer f.Close()
	buf := make([]byte, s.frameSize())
	if _, err := f.ReadAt(buf, int64(s.dataOff()+ordinal*s.frameSize())); err != nil {
		return 0, event.Event{}, err
	}
	if !s.v1 {
		want := binary.LittleEndian.Uint32(buf[crcOffset:])
		if crc32.Checksum(buf[:crcOffset], castagnoli) != want {
			return 0, event.Event{}, fmt.Errorf("%w: %s: frame %d checksum", ErrCorrupt, s.path, ordinal)
		}
	}
	lsn := binary.LittleEndian.Uint64(buf)
	var ev event.Event
	if err := ev.Decode(buf[8:]); err != nil {
		return 0, ev, err
	}
	return lsn, ev, nil
}

// segSnap is an immutable view of one segment's committed extent, taken
// under the archive lock so Replay/ReadFrom can run concurrently with
// appends (a live append mutates segment.n; a tailing reader must only see
// the frame count that was committed when it looked).
type segSnap struct {
	path     string
	firstLSN uint64
	n        int
	v1       bool
}

// snapshotSegments captures the committed extent of every segment.
func (a *Archive) snapshotSegments() []segSnap {
	a.mu.Lock()
	defer a.mu.Unlock()
	segs := make([]segSnap, len(a.segments))
	for i, s := range a.segments {
		segs[i] = segSnap{path: s.path, firstLSN: s.firstLSN, n: s.n, v1: s.v1}
	}
	return segs
}

// Replay invokes fn for every archived event with LSN >= fromLSN, in LSN
// order. This is the recovery tail-replay path, also safe to call against a
// live archive (log-shipping catch-up): the per-segment committed frame
// count is snapshotted under the lock, so frames appended — or torn —
// after the snapshot are never surfaced. Frame checksums are re-verified
// (the file may have rotted since Open).
func (a *Archive) Replay(fromLSN uint64, fn func(lsn uint64, ev event.Event) error) error {
	for _, s := range a.snapshotSegments() {
		if s.firstLSN+uint64(s.n) <= fromLSN {
			continue
		}
		data, err := os.ReadFile(s.path)
		if err != nil {
			return fmt.Errorf("archive: replay %s: %w", s.path, err)
		}
		fs, off := frameSizeV2, headerSizeV2
		if s.v1 {
			fs, off = frameSizeV1, 0
		}
		if len(data) > off+s.n*fs {
			data = data[:off+s.n*fs]
		}
		for i := 0; off+(i+1)*fs <= len(data); i++ {
			f := data[off+i*fs:]
			if !s.v1 {
				want := binary.LittleEndian.Uint32(f[crcOffset:])
				if crc32.Checksum(f[:crcOffset], castagnoli) != want {
					return fmt.Errorf("%w: %s: frame %d checksum during replay", ErrCorrupt, s.path, i)
				}
			}
			lsn := binary.LittleEndian.Uint64(f)
			if lsn < fromLSN {
				continue
			}
			var ev event.Event
			if err := ev.Decode(f[8:]); err != nil {
				return err
			}
			if err := fn(lsn, ev); err != nil {
				return err
			}
		}
	}
	return nil
}

// ErrTruncated reports a ReadFrom below the retention floor: the requested
// LSN was garbage-collected by checkpoint-driven truncation, so the log can
// no longer serve it. A follower hitting this must bootstrap from a
// checkpoint instead of the log.
var ErrTruncated = errors.New("archive: read below retention floor")

// ReadFrom reads up to max committed events starting at fromLSN, in LSN
// order, re-verifying frame checksums. It returns the events plus the
// archive's committed frontier (the next LSN a future append will get) as
// observed at read time — the pair a log-shipping tail loop needs: an empty
// batch with frontier == fromLSN means the reader is caught up.
//
// ReadFrom is safe against concurrent appends and rotations: the segment
// extent is snapshotted under the archive lock, and only frames below the
// committed count are read, so a torn tail (in-flight or crash-truncated
// write) is never surfaced — a tailing follower stops cleanly at the last
// committed frame. One call reads from a single segment; callers loop to
// cross segment boundaries (the returned batch simply ends early).
//
// Reading below FirstLSN returns ErrTruncated: retention GC removed the
// segment and the log cannot serve the gap.
func (a *Archive) ReadFrom(fromLSN uint64, max int) ([]event.Event, uint64, error) {
	if max <= 0 {
		max = 1
	}
	a.mu.Lock()
	frontier := a.nextLSN
	if fromLSN >= frontier {
		a.mu.Unlock()
		return nil, frontier, nil
	}
	var path string
	var firstLSN uint64
	var n int
	var v1 bool
	found := false
	for _, s := range a.segments {
		if s.firstLSN <= fromLSN && fromLSN < s.firstLSN+uint64(s.n) {
			path, firstLSN, n, v1, found = s.path, s.firstLSN, s.n, s.v1, true
			break
		}
	}
	a.mu.Unlock()
	if !found {
		return nil, frontier, fmt.Errorf("%w: lsn %d (floor %d)", ErrTruncated, fromLSN, a.FirstLSN())
	}
	fs, off := frameSizeV2, headerSizeV2
	if v1 {
		fs, off = frameSizeV1, 0
	}
	ord := int(fromLSN - firstLSN)
	count := min(max, n-ord)
	f, err := os.Open(path)
	if err != nil {
		return nil, frontier, fmt.Errorf("archive: read %s: %w", path, err)
	}
	defer f.Close()
	buf := make([]byte, count*fs)
	if _, err := f.ReadAt(buf, int64(off+ord*fs)); err != nil {
		return nil, frontier, fmt.Errorf("archive: read %s: %w", path, err)
	}
	evs := make([]event.Event, count)
	for i := 0; i < count; i++ {
		fr := buf[i*fs:]
		if !v1 {
			want := binary.LittleEndian.Uint32(fr[crcOffset:])
			if crc32.Checksum(fr[:crcOffset], castagnoli) != want {
				return nil, frontier, fmt.Errorf("%w: %s: frame %d checksum during read", ErrCorrupt, path, ord+i)
			}
		}
		if lsn := binary.LittleEndian.Uint64(fr); lsn != fromLSN+uint64(i) {
			return nil, frontier, fmt.Errorf("%w: %s: frame %d has lsn %d, want %d", ErrCorrupt, path, ord+i, lsn, fromLSN+uint64(i))
		}
		if err := evs[i].Decode(fr[8:]); err != nil {
			return nil, frontier, err
		}
	}
	return evs, frontier, nil
}

// EntityHistory returns the archived events of one entity with timestamps
// in [fromTs, toTs], in log order — the exact-sliding-window lookup path.
func (a *Archive) EntityHistory(entityID uint64, fromTs, toTs int64) ([]event.Event, error) {
	a.mu.Lock()
	segs := append([]*segment(nil), a.segments...)
	a.mu.Unlock()
	var out []event.Event
	for _, s := range segs {
		ordinals := s.byEntity[entityID]
		for _, ord := range ordinals {
			_, ev, err := s.readFrame(int(ord))
			if err != nil {
				return nil, fmt.Errorf("archive: history: %w", err)
			}
			if ev.Timestamp >= fromTs && ev.Timestamp <= toTs {
				out = append(out, ev)
			}
		}
	}
	return out, nil
}
