package archive

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/event"
	"repro/internal/schema"
)

func mkEvent(caller uint64, ts, dur int64, cost float64, ld bool) event.Event {
	return event.Event{Caller: caller, Callee: 1, Timestamp: ts, Duration: dur, Cost: cost, LongDistance: ld}
}

func TestAppendAssignsSequentialLSNs(t *testing.T) {
	a, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 100; i++ {
		ev := mkEvent(uint64(i%7)+1, int64(i), 10, 1, false)
		lsn, err := a.Append(&ev)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if a.Len() != 100 || a.NextLSN() != 100 {
		t.Fatalf("Len=%d NextLSN=%d", a.Len(), a.NextLSN())
	}
}

func TestReplayFromWatermark(t *testing.T) {
	a, err := Open(t.TempDir(), Options{SegmentEvents: 16}) // force rotations
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 50; i++ {
		ev := mkEvent(1, int64(i), int64(i), 1, false)
		if _, err := a.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	err = a.Replay(37, func(lsn uint64, ev event.Event) error {
		got = append(got, lsn)
		if ev.Duration != int64(lsn) {
			t.Fatalf("lsn %d carries duration %d", lsn, ev.Duration)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 13 || got[0] != 37 || got[12] != 49 {
		t.Fatalf("replayed %v", got)
	}
}

func TestReopenRecoversStateAndKeepsAppending(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{SegmentEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ev := mkEvent(uint64(i%3)+1, int64(i), 10, 1, false)
		if _, err := a.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := Open(dir, Options{SegmentEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Len() != 20 || b.NextLSN() != 20 {
		t.Fatalf("after reopen Len=%d NextLSN=%d", b.Len(), b.NextLSN())
	}
	ev := mkEvent(9, 100, 10, 1, false)
	lsn, err := b.Append(&ev)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 20 {
		t.Fatalf("append after reopen lsn = %d", lsn)
	}
	count := 0
	if err := b.Replay(0, func(uint64, event.Event) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 21 {
		t.Fatalf("replayed %d events", count)
	}
}

func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ev := mkEvent(1, int64(i), 10, 1, false)
		if _, err := a.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	// Simulate a crash mid-write: truncate to a non-frame boundary.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	fi, _ := os.Stat(segs[0])
	if err := os.Truncate(segs[0], fi.Size()-10); err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Len() != 4 {
		t.Fatalf("after torn tail Len = %d, want 4", b.Len())
	}
	// The archive accepts new appends and LSNs stay dense.
	ev := mkEvent(2, 9, 10, 1, false)
	lsn, err := b.Append(&ev)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Fatalf("post-recovery lsn = %d", lsn)
	}
}

func TestEntityHistory(t *testing.T) {
	a, err := Open(t.TempDir(), Options{SegmentEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 20; i++ {
		ev := mkEvent(uint64(i%2)+1, int64(i*100), int64(i), 1, i%4 == 0)
		if _, err := a.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	// Entity 1 owns even i; history over ts in [400, 1200].
	evs, err := a.EntityHistory(1, 400, 1200)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{4, 6, 8, 10, 12}
	if len(evs) != len(want) {
		t.Fatalf("history %d events, want %d", len(evs), len(want))
	}
	for i, ev := range evs {
		if ev.Duration != want[i] {
			t.Fatalf("event %d duration %d, want %d", i, ev.Duration, want[i])
		}
	}
	if evs, _ := a.EntityHistory(999, 0, 1<<40); len(evs) != 0 {
		t.Fatal("unknown entity has history")
	}
}

// TestExactWindowVsApproximateSliding verifies the paper's footnote-1 flow:
// the materialized sliding window is an approximation; the archive
// recomputes exact aggregates, and the two agree when sub-window boundaries
// align with the query time.
func TestExactWindowVsApproximateSliding(t *testing.T) {
	a, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	sch, err := schema.NewBuilder().AddGroup(schema.GroupSpec{
		Name: "dur24h", Metric: schema.MetricDuration, Filter: schema.CallAny,
		Window: schema.SlidingHours(24, 4),
		Aggs:   []schema.AggKind{schema.AggSum, schema.AggCount, schema.AggMin, schema.AggMax},
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := sch.NewRecord(1)
	sub := int64(6 * 3600 * 1000)
	base := int64(100*24*3600*1000) + 1 // just after a sub-window boundary
	durs := []int64{100, 50, 300, 200, 75}
	var last int64
	for i, d := range durs {
		ts := base + int64(i)*sub // one event per sub-window: first falls out
		ev := mkEvent(1, ts, d, 1, false)
		if _, err := a.Append(&ev); err != nil {
			t.Fatal(err)
		}
		sch.Apply(rec, &ev)
		last = ts
	}
	exact := ExactWindow{Metric: schema.MetricDuration, Filter: schema.CallAny, WindowMillis: 24 * 3600 * 1000}
	res, err := exact.Compute(a, 1, last)
	if err != nil {
		t.Fatal(err)
	}
	// Window covers the last 4 events: 50+300+200+75.
	if res.Count != 4 || res.Sum != 625 || res.Min != 50 || res.Max != 300 {
		t.Fatalf("exact = %+v", res)
	}
	// The materialized approximation agrees here (aligned boundaries).
	if got := rec.Int(sch.MustAttrIndex("dur24h_sum")); got != 625 {
		t.Fatalf("approximate sliding sum = %d, want 625", got)
	}
	if got := rec.Int(sch.MustAttrIndex("dur24h_min")); got != 50 {
		t.Fatalf("approximate sliding min = %d", got)
	}
	// Empty window reads zeros.
	empty, err := exact.Compute(a, 1, last+48*3600*1000)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Count != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Fatalf("empty window = %+v", empty)
	}
	// Filters restrict the history.
	ld := ExactWindow{Metric: schema.MetricCost, Filter: schema.CallLongDistance, WindowMillis: 1 << 50}
	res2, err := ld.Compute(a, 1, last)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Count != 0 {
		t.Fatalf("long-distance count = %d, want 0 (all events local)", res2.Count)
	}
}
