package archive

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/event"
	"repro/internal/schema"
)

func mkEvent(caller uint64, ts, dur int64, cost float64, ld bool) event.Event {
	return event.Event{Caller: caller, Callee: 1, Timestamp: ts, Duration: dur, Cost: cost, LongDistance: ld}
}

func TestAppendAssignsSequentialLSNs(t *testing.T) {
	a, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 100; i++ {
		ev := mkEvent(uint64(i%7)+1, int64(i), 10, 1, false)
		lsn, err := a.Append(&ev)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if a.Len() != 100 || a.NextLSN() != 100 {
		t.Fatalf("Len=%d NextLSN=%d", a.Len(), a.NextLSN())
	}
}

func TestReplayFromWatermark(t *testing.T) {
	a, err := Open(t.TempDir(), Options{SegmentEvents: 16}) // force rotations
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 50; i++ {
		ev := mkEvent(1, int64(i), int64(i), 1, false)
		if _, err := a.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	err = a.Replay(37, func(lsn uint64, ev event.Event) error {
		got = append(got, lsn)
		if ev.Duration != int64(lsn) {
			t.Fatalf("lsn %d carries duration %d", lsn, ev.Duration)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 13 || got[0] != 37 || got[12] != 49 {
		t.Fatalf("replayed %v", got)
	}
}

func TestReopenRecoversStateAndKeepsAppending(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{SegmentEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ev := mkEvent(uint64(i%3)+1, int64(i), 10, 1, false)
		if _, err := a.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := Open(dir, Options{SegmentEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Len() != 20 || b.NextLSN() != 20 {
		t.Fatalf("after reopen Len=%d NextLSN=%d", b.Len(), b.NextLSN())
	}
	ev := mkEvent(9, 100, 10, 1, false)
	lsn, err := b.Append(&ev)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 20 {
		t.Fatalf("append after reopen lsn = %d", lsn)
	}
	count := 0
	if err := b.Replay(0, func(uint64, event.Event) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 21 {
		t.Fatalf("replayed %d events", count)
	}
}

func TestTornTailStrictVsSalvage(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ev := mkEvent(1, int64(i), 10, 1, false)
		if _, err := a.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	// Simulate a crash mid-write: truncate to a non-frame boundary.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	fi, _ := os.Stat(segs[0])
	if err := os.Truncate(segs[0], fi.Size()-10); err != nil {
		t.Fatal(err)
	}
	// Strict refuses the torn tail.
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict open of torn tail: err = %v, want ErrCorrupt", err)
	}
	// Salvage truncates it at the last valid frame and reports the drop.
	b, err := Open(dir, Options{Recovery: Salvage})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Len() != 4 {
		t.Fatalf("after torn tail Len = %d, want 4", b.Len())
	}
	rep := b.Report()
	if rep.FramesDropped != 1 || rep.BytesTruncated == 0 || rep.Clean() {
		t.Fatalf("salvage report = %+v", rep)
	}
	// The archive accepts new appends and LSNs stay dense.
	ev := mkEvent(2, 9, 10, 1, false)
	lsn, err := b.Append(&ev)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Fatalf("post-recovery lsn = %d", lsn)
	}
	b.Close()
	// The repaired archive reopens cleanly under Strict.
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Len() != 5 || !c.Report().Clean() {
		t.Fatalf("after repair Len=%d report=%+v", c.Len(), c.Report())
	}
}

func TestBitFlipDetectedByFrameCRC(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		ev := mkEvent(uint64(i)+1, int64(i), 10, 1, false)
		if _, err := a.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	// Flip one payload byte in frame 5 (past the header + 5 frames).
	f, err := os.OpenFile(segs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(headerSizeV2 + 5*frameSizeV2 + 20)
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict open of bit-flipped frame: %v", err)
	}
	s, err := Open(dir, Options{Recovery: Salvage})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 5 {
		t.Fatalf("salvaged Len = %d, want 5 (frames 0..4)", s.Len())
	}
	if rep := s.Report(); rep.FramesDropped != 3 {
		t.Fatalf("report = %+v, want 3 frames dropped", rep)
	}
}

func TestSalvageQuarantinesUnreachableSegments(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{SegmentEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ { // 3 segments
		ev := mkEvent(1, int64(i), int64(i), 1, false)
		if _, err := a.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) != 3 {
		t.Fatalf("segments: %v", segs)
	}
	// Corrupt the MIDDLE segment's first frame: everything after it is
	// unreachable (the LSN chain is broken).
	f, _ := os.OpenFile(segs[1], os.O_RDWR, 0)
	f.WriteAt([]byte{0xAA}, headerSizeV2+3)
	f.Close()
	s, err := Open(dir, Options{Recovery: Salvage})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 8 {
		t.Fatalf("salvaged Len = %d, want 8 (first segment only)", s.Len())
	}
	rep := s.Report()
	if len(rep.QuarantinedFiles) != 1 || rep.FramesDropped != 16 {
		t.Fatalf("report = %+v", rep)
	}
	q, _ := filepath.Glob(filepath.Join(dir, "*.quarantine"))
	if len(q) != 1 {
		t.Fatalf("quarantined files on disk: %v", q)
	}
	// Replay covers exactly the surviving prefix and appends continue at 8.
	n := 0
	if err := s.Replay(0, func(uint64, event.Event) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("replayed %d", n)
	}
	ev := mkEvent(1, 99, 1, 1, false)
	if lsn, err := s.Append(&ev); err != nil || lsn != 8 {
		t.Fatalf("append after salvage: lsn=%d err=%v", lsn, err)
	}
}

func TestLegacyV1SegmentsStillReadable(t *testing.T) {
	dir := t.TempDir()
	// Hand-write a v1 segment: headerless 72 B frames.
	var buf []byte
	for i := 0; i < 6; i++ {
		frame := make([]byte, frameSizeV1)
		ev := mkEvent(uint64(i%2)+1, int64(i*100), int64(i), 1, false)
		putUint64(frame, uint64(i))
		ev.Encode(frame[8:])
		buf = append(buf, frame...)
	}
	path := filepath.Join(dir, "seg-0000000000000000.log")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Len() != 6 || a.NextLSN() != 6 {
		t.Fatalf("v1 reopen Len=%d NextLSN=%d", a.Len(), a.NextLSN())
	}
	// Appending does NOT extend the v1 file: a fresh v2 segment is rotated
	// in so formats never mix within one file.
	ev := mkEvent(5, 1000, 9, 1, false)
	lsn, err := a.Append(&ev)
	if err != nil || lsn != 6 {
		t.Fatalf("append after v1: lsn=%d err=%v", lsn, err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) != 2 {
		t.Fatalf("segments after v1 append: %v", segs)
	}
	n := 0
	if err := a.Replay(0, func(uint64, event.Event) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("replayed %d across v1+v2", n)
	}
	// Entity history spans both formats.
	evs, err := a.EntityHistory(1, 0, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("entity 1 history = %d events", len(evs))
	}
}

func TestTruncateBelowKeepsTailAndLSNs(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{SegmentEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ { // 5 segments
		ev := mkEvent(1, int64(i), int64(i), 1, false)
		if _, err := a.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := a.TruncateBelow(20) // segments [0,8) and [8,16) die
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed %d segments", removed)
	}
	if a.FirstLSN() != 16 || a.NextLSN() != 40 {
		t.Fatalf("FirstLSN=%d NextLSN=%d", a.FirstLSN(), a.NextLSN())
	}
	// Replay from the watermark still works.
	n := 0
	if err := a.Replay(20, func(uint64, event.Event) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("replayed %d", n)
	}
	// Truncating everything keeps the newest segment so next-LSN survives
	// a reopen even when all its frames are below the watermark.
	if _, err := a.TruncateBelow(1 << 60); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.NextLSN() != 40 {
		t.Fatalf("NextLSN after full truncate + reopen = %d", b.NextLSN())
	}
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func TestEntityHistory(t *testing.T) {
	a, err := Open(t.TempDir(), Options{SegmentEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 20; i++ {
		ev := mkEvent(uint64(i%2)+1, int64(i*100), int64(i), 1, i%4 == 0)
		if _, err := a.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	// Entity 1 owns even i; history over ts in [400, 1200].
	evs, err := a.EntityHistory(1, 400, 1200)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{4, 6, 8, 10, 12}
	if len(evs) != len(want) {
		t.Fatalf("history %d events, want %d", len(evs), len(want))
	}
	for i, ev := range evs {
		if ev.Duration != want[i] {
			t.Fatalf("event %d duration %d, want %d", i, ev.Duration, want[i])
		}
	}
	if evs, _ := a.EntityHistory(999, 0, 1<<40); len(evs) != 0 {
		t.Fatal("unknown entity has history")
	}
}

// TestExactWindowVsApproximateSliding verifies the paper's footnote-1 flow:
// the materialized sliding window is an approximation; the archive
// recomputes exact aggregates, and the two agree when sub-window boundaries
// align with the query time.
func TestExactWindowVsApproximateSliding(t *testing.T) {
	a, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	sch, err := schema.NewBuilder().AddGroup(schema.GroupSpec{
		Name: "dur24h", Metric: schema.MetricDuration, Filter: schema.CallAny,
		Window: schema.SlidingHours(24, 4),
		Aggs:   []schema.AggKind{schema.AggSum, schema.AggCount, schema.AggMin, schema.AggMax},
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := sch.NewRecord(1)
	sub := int64(6 * 3600 * 1000)
	base := int64(100*24*3600*1000) + 1 // just after a sub-window boundary
	durs := []int64{100, 50, 300, 200, 75}
	var last int64
	for i, d := range durs {
		ts := base + int64(i)*sub // one event per sub-window: first falls out
		ev := mkEvent(1, ts, d, 1, false)
		if _, err := a.Append(&ev); err != nil {
			t.Fatal(err)
		}
		sch.Apply(rec, &ev)
		last = ts
	}
	exact := ExactWindow{Metric: schema.MetricDuration, Filter: schema.CallAny, WindowMillis: 24 * 3600 * 1000}
	res, err := exact.Compute(a, 1, last)
	if err != nil {
		t.Fatal(err)
	}
	// Window covers the last 4 events: 50+300+200+75.
	if res.Count != 4 || res.Sum != 625 || res.Min != 50 || res.Max != 300 {
		t.Fatalf("exact = %+v", res)
	}
	// The materialized approximation agrees here (aligned boundaries).
	if got := rec.Int(sch.MustAttrIndex("dur24h_sum")); got != 625 {
		t.Fatalf("approximate sliding sum = %d, want 625", got)
	}
	if got := rec.Int(sch.MustAttrIndex("dur24h_min")); got != 50 {
		t.Fatalf("approximate sliding min = %d", got)
	}
	// Empty window reads zeros.
	empty, err := exact.Compute(a, 1, last+48*3600*1000)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Count != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Fatalf("empty window = %+v", empty)
	}
	// Filters restrict the history.
	ld := ExactWindow{Metric: schema.MetricCost, Filter: schema.CallLongDistance, WindowMillis: 1 << 50}
	res2, err := ld.Compute(a, 1, last)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Count != 0 {
		t.Fatalf("long-distance count = %d, want 0 (all events local)", res2.Count)
	}
}
