package archive

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/event"
)

// fuzzSeedSegment builds a real segment on disk and returns its bytes, so
// the corpus starts from well-formed input the mutator can corrupt.
func fuzzSeedSegment(f *testing.F, events int) []byte {
	f.Helper()
	dir := f.TempDir()
	a, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < events; i++ {
		ev := event.Event{Caller: uint64(i + 1), Timestamp: int64(i), Cost: 0.5}
		if _, err := a.Append(&ev); err != nil {
			f.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		f.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(names) == 0 {
		f.Fatalf("no segment produced: %v", err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzOpenSegment feeds arbitrary bytes to the segment parser through both
// recovery modes. Opening must never panic; whatever Salvage accepts must
// replay cleanly end to end.
func FuzzOpenSegment(f *testing.F) {
	f.Add(fuzzSeedSegment(f, 5))
	f.Add([]byte("AIMSEG2\x00\x00\x00\x00\x00\x00\x00\x00\x00")) // empty v2
	f.Add(make([]byte, frameSizeV1*2))                           // headerless v1
	f.Add([]byte{})
	f.Add([]byte("AIMSEG2"))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, mode := range []RecoveryMode{Strict, Salvage} {
			dir := t.TempDir()
			seg := filepath.Join(dir, "seg-0000000000000000.log")
			if err := os.WriteFile(seg, data, 0o644); err != nil {
				t.Fatal(err)
			}
			a, err := Open(dir, Options{Recovery: mode})
			if err != nil {
				if mode == Salvage {
					t.Fatalf("salvage open must repair anything: %v", err)
				}
				continue
			}
			// Everything the parser accepted must be readable: Replay
			// re-verifies frame CRCs, so corruption the parser let through
			// would surface here.
			n := 0
			err = a.Replay(0, func(_ uint64, _ event.Event) error { n++; return nil })
			if err != nil {
				t.Fatalf("mode %v accepted a segment it cannot replay: %v", mode, err)
			}
			if n != a.Len() {
				t.Fatalf("mode %v: Len()=%d but replay yielded %d", mode, a.Len(), n)
			}
			if _, err := a.EntityHistory(1, 0, 1<<60); err != nil {
				t.Fatalf("entity history: %v", err)
			}
			// The archive must stay appendable after any recovery outcome.
			ev := event.Event{Caller: 99}
			if _, err := a.Append(&ev); err != nil {
				t.Fatalf("append after %v recovery: %v", mode, err)
			}
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
		}
	})
}
