package delta

import "sort"

// MVDelta is the multi-versioned delta the paper's conclusion proposes as
// the stepping stone from AIM's storage layer to a general OLTP/OLAP engine
// (§7: "making the delta multi-versioned seems sufficient. Multi-versioned
// deltas would, in addition, allow us to maintain multiple Analytics
// Matrices because ESP could use atomic transactions to update the involved
// Entity Records all at once").
//
// Each entity keeps a small newest-first version chain. Writers assign
// monotonically increasing versions (one PutBatch = one atomic version for
// several entities); readers pick a snapshot version and use GetAsOf, which
// ignores anything newer. Truncate garbage-collects versions that no live
// reader can need. Like Delta, an MVDelta is single-writer and externally
// synchronized.
type MVDelta struct {
	m       map[uint64][]versioned
	newest  uint64
	entries int
}

type versioned struct {
	version uint64
	rec     []uint64
}

// NewMV returns an empty multi-versioned delta.
func NewMV(sizeHint int) *MVDelta {
	return &MVDelta{m: make(map[uint64][]versioned, sizeHint)}
}

// Len returns the number of distinct entities.
func (d *MVDelta) Len() int { return len(d.m) }

// Versions returns the total number of stored record versions.
func (d *MVDelta) Versions() int { return d.entries }

// Newest returns the highest version ever written.
func (d *MVDelta) Newest() uint64 { return d.newest }

// Put stores rec as the entity's state at the given version. Versions must
// not decrease per entity; equal versions overwrite in place (a transaction
// touching the same entity twice).
func (d *MVDelta) Put(entityID, version uint64, rec []uint64) {
	if version > d.newest {
		d.newest = version
	}
	chain := d.m[entityID]
	if len(chain) > 0 {
		head := &chain[0]
		if head.version == version {
			if len(head.rec) == len(rec) {
				copy(head.rec, rec)
				return
			}
			head.rec = append([]uint64(nil), rec...)
			return
		}
		if head.version > version {
			// Out-of-order write: keep chains sorted by inserting in place.
			d.insertSorted(entityID, version, rec)
			return
		}
	}
	cp := make([]uint64, len(rec))
	copy(cp, rec)
	d.m[entityID] = append([]versioned{{version: version, rec: cp}}, chain...)
	d.entries++
}

func (d *MVDelta) insertSorted(entityID, version uint64, rec []uint64) {
	chain := d.m[entityID]
	i := sort.Search(len(chain), func(i int) bool { return chain[i].version <= version })
	if i < len(chain) && chain[i].version == version {
		if len(chain[i].rec) == len(rec) {
			copy(chain[i].rec, rec)
		} else {
			chain[i].rec = append([]uint64(nil), rec...)
		}
		return
	}
	cp := make([]uint64, len(rec))
	copy(cp, rec)
	chain = append(chain, versioned{})
	copy(chain[i+1:], chain[i:])
	chain[i] = versioned{version: version, rec: cp}
	d.m[entityID] = chain
	d.entries++
}

// PutBatch atomically stores several records at one version — the
// multi-record single-row-transaction generalization. It returns the
// version used (newest+1).
func (d *MVDelta) PutBatch(recs map[uint64][]uint64) uint64 {
	v := d.newest + 1
	for id, rec := range recs {
		d.Put(id, v, rec)
	}
	return v
}

// Get copies the newest version into dst.
func (d *MVDelta) Get(entityID uint64, dst []uint64) (uint64, bool) {
	chain, ok := d.m[entityID]
	if !ok || len(chain) == 0 {
		return 0, false
	}
	copy(dst, chain[0].rec)
	return chain[0].version, true
}

// GetAsOf copies the newest version with version <= maxVersion into dst —
// the snapshot-read primitive.
func (d *MVDelta) GetAsOf(entityID, maxVersion uint64, dst []uint64) (uint64, bool) {
	chain, ok := d.m[entityID]
	if !ok {
		return 0, false
	}
	// Chains are newest-first; find the first entry <= maxVersion.
	i := sort.Search(len(chain), func(i int) bool { return chain[i].version <= maxVersion })
	if i == len(chain) {
		return 0, false
	}
	copy(dst, chain[i].rec)
	return chain[i].version, true
}

// Truncate drops versions that no reader at or above minReaderVersion can
// observe: for each entity, every version older than the newest version
// <= minReaderVersion.
func (d *MVDelta) Truncate(minReaderVersion uint64) {
	for id, chain := range d.m {
		i := sort.Search(len(chain), func(i int) bool { return chain[i].version <= minReaderVersion })
		// chain[i] is the version a reader at minReaderVersion sees; all
		// entries after it are unreachable.
		if i < len(chain)-1 {
			d.entries -= len(chain) - (i + 1)
			d.m[id] = chain[:i+1]
		}
	}
}

// IterateNewest calls fn with every entity's newest record (the merge-step
// view). fn must not retain the slice.
func (d *MVDelta) IterateNewest(fn func(entityID uint64, version uint64, rec []uint64)) {
	for id, chain := range d.m {
		if len(chain) > 0 {
			fn(id, chain[0].version, chain[0].rec)
		}
	}
}

// Reset discards everything but keeps the table allocated.
func (d *MVDelta) Reset() {
	clear(d.m)
	d.entries = 0
}
