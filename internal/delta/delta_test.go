package delta

import (
	"testing"
	"testing/quick"
)

func TestPutGetOverwrite(t *testing.T) {
	d := New(4)
	if d.Len() != 0 {
		t.Fatalf("fresh delta Len = %d", d.Len())
	}
	d.Put(1, []uint64{1, 10, 20})
	d.Put(2, []uint64{2, 30, 40})
	d.Put(1, []uint64{1, 11, 21}) // overwrite in place
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	dst := make([]uint64, 3)
	if !d.Get(1, dst) {
		t.Fatal("Get(1) missed")
	}
	if dst[1] != 11 || dst[2] != 21 {
		t.Fatalf("Get(1) = %v", dst)
	}
	if d.Get(99, dst) {
		t.Fatal("Get(99) hit")
	}
	if !d.Contains(2) || d.Contains(3) {
		t.Fatal("Contains wrong")
	}
}

func TestGetCopiesOut(t *testing.T) {
	d := New(1)
	d.Put(1, []uint64{1, 5})
	dst := make([]uint64, 2)
	d.Get(1, dst)
	dst[1] = 99
	again := make([]uint64, 2)
	d.Get(1, again)
	if again[1] != 5 {
		t.Fatal("Get returned aliased storage")
	}
}

func TestPutCopiesIn(t *testing.T) {
	d := New(1)
	src := []uint64{1, 5}
	d.Put(1, src)
	src[1] = 99
	dst := make([]uint64, 2)
	d.Get(1, dst)
	if dst[1] != 5 {
		t.Fatal("Put retained caller storage")
	}
}

func TestIterateAndReset(t *testing.T) {
	d := New(4)
	for e := uint64(1); e <= 5; e++ {
		d.Put(e, []uint64{e, e * 2})
	}
	seen := map[uint64]uint64{}
	d.Iterate(func(id uint64, rec []uint64) { seen[id] = rec[1] })
	if len(seen) != 5 {
		t.Fatalf("Iterate saw %d entries", len(seen))
	}
	for e := uint64(1); e <= 5; e++ {
		if seen[e] != e*2 {
			t.Fatalf("entity %d value %d", e, seen[e])
		}
	}
	d.Reset()
	if d.Len() != 0 {
		t.Fatalf("Len after Reset = %d", d.Len())
	}
	count := 0
	d.Iterate(func(uint64, []uint64) { count++ })
	if count != 0 {
		t.Fatal("Iterate after Reset yielded entries")
	}
	// Reusable after reset.
	d.Put(7, []uint64{7, 1})
	if d.Len() != 1 {
		t.Fatal("delta unusable after Reset")
	}
}

// TestQuickLastWriteWins property-tests that the delta always returns the
// most recent record for every key.
func TestQuickLastWriteWins(t *testing.T) {
	f := func(writes []struct {
		ID  uint8
		Val uint64
	}) bool {
		d := New(0)
		want := map[uint64]uint64{}
		for _, w := range writes {
			id := uint64(w.ID)
			d.Put(id, []uint64{id, w.Val})
			want[id] = w.Val
		}
		if d.Len() != len(want) {
			return false
		}
		dst := make([]uint64, 2)
		for id, v := range want {
			if !d.Get(id, dst) || dst[1] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPutOwnedTransfersOwnership(t *testing.T) {
	d := New(2)
	rec := []uint64{1, 5, 7}
	scratch := d.PutOwned(1, rec)
	if len(scratch) != 3 {
		t.Fatalf("scratch len = %d, want 3", len(scratch))
	}
	// The delta stores rec by reference: no copy-out buffer sees stale data.
	dst := make([]uint64, 3)
	if !d.Get(1, dst) || dst[1] != 5 {
		t.Fatalf("Get(1) = %v", dst)
	}
	// Overwriting returns the displaced same-width slice as the next
	// scratch — the zero-copy swap the batched ESP apply path relies on.
	rec2 := []uint64{1, 6, 8}
	scratch2 := d.PutOwned(1, rec2)
	if &scratch2[0] != &rec[0] {
		t.Fatal("PutOwned did not return the displaced storage")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	d.Get(1, dst)
	if dst[1] != 6 || dst[2] != 8 {
		t.Fatalf("after swap Get(1) = %v", dst)
	}
	// A width change cannot reuse the displaced slice; a fresh one comes back.
	wide := []uint64{1, 1, 2, 3}
	if got := d.PutOwned(1, wide); len(got) != 4 {
		t.Fatalf("widened scratch len = %d, want 4", len(got))
	}
}

func TestPutOwnedSetsFirstPutTimestamp(t *testing.T) {
	d := New(1)
	if d.FirstPutNanos() != 0 {
		t.Fatal("fresh delta has a FirstPut time")
	}
	d.PutOwned(1, []uint64{1, 2})
	if d.FirstPutNanos() == 0 {
		t.Fatal("PutOwned did not stamp FirstPut")
	}
}
