// Package delta implements the indexed delta store of AIM's differential
// update design (§3.1, §4.6).
//
// A Delta accumulates whole Entity Records keyed by entity id. Because it is
// indexed (a hash map rather than an append log), the merge step needs no
// sorting: a single pass over the delta replaces the corresponding records
// in the main ColumnMap (the paper's refinement of Krueger et al.'s
// differential updates).
//
// A Delta is written by exactly one ESP thread; the merging RTA thread reads
// it only after it has been sealed by the partition's delta-switch protocol
// (see internal/core), so the Delta itself needs no locking. Hot entities
// overwrite their own entry in place, which is the automatic "compaction"
// the paper notes favours skewed workloads.
package delta

import "time"

// Delta is an in-memory, indexed store of pending record versions.
type Delta struct {
	m map[uint64][]uint64
	// firstPut is the wall clock (unix nanos) of the first Put after the
	// last Reset — the age of the oldest unmerged record, which is what the
	// paper's data-freshness metric (t_fresh, §2.1) measures. Written only
	// by the owning ESP thread; the RTA thread reads it after the delta is
	// sealed, ordered by the delta-switch protocol's atomics.
	firstPut int64
}

// New returns an empty delta with capacity for sizeHint entries.
func New(sizeHint int) *Delta {
	return &Delta{m: make(map[uint64][]uint64, sizeHint)}
}

// Len returns the number of distinct entities in the delta.
func (d *Delta) Len() int { return len(d.m) }

// Get copies the pending record for entityID into dst and reports whether
// one exists. dst must be at least as long as the stored record.
func (d *Delta) Get(entityID uint64, dst []uint64) bool {
	rec, ok := d.m[entityID]
	if !ok {
		return false
	}
	copy(dst, rec)
	return true
}

// Slot returns one slot of the pending record for entityID without copying
// the rest; the storage layer uses it for version checks.
func (d *Delta) Slot(entityID uint64, slot int) (uint64, bool) {
	rec, ok := d.m[entityID]
	if !ok || slot >= len(rec) {
		return 0, false
	}
	return rec[slot], true
}

// Contains reports whether the delta holds a pending record for entityID.
func (d *Delta) Contains(entityID uint64) bool {
	_, ok := d.m[entityID]
	return ok
}

// Put stores rec as the pending version for entityID, overwriting any prior
// version in place (reusing its storage when the widths match).
func (d *Delta) Put(entityID uint64, rec []uint64) {
	if d.firstPut == 0 {
		d.firstPut = time.Now().UnixNano()
	}
	if old, ok := d.m[entityID]; ok && len(old) == len(rec) {
		copy(old, rec)
		return
	}
	cp := make([]uint64, len(rec))
	copy(cp, rec)
	d.m[entityID] = cp
}

// PutOwned stores rec by reference — zero copies — and transfers ownership
// of the slice to the delta. It returns a same-width slice the caller may
// reuse as its next scratch buffer: the displaced prior version when one
// exists (its contents are garbage to the delta now), else a fresh
// allocation. The ESP hot path (Partition.ApplyEvent/ApplyEventBatch) swaps
// its scratch record through here, turning the per-event record copy of Put
// into a pointer exchange.
func (d *Delta) PutOwned(entityID uint64, rec []uint64) []uint64 {
	if d.firstPut == 0 {
		d.firstPut = time.Now().UnixNano()
	}
	old, ok := d.m[entityID]
	d.m[entityID] = rec
	if ok && len(old) == len(rec) {
		return old
	}
	return make([]uint64, len(rec))
}

// Iterate calls fn for every pending record. The record slice is the
// delta's internal storage; fn must not retain or mutate it. Iteration
// order is unspecified.
func (d *Delta) Iterate(fn func(entityID uint64, rec []uint64)) {
	for id, rec := range d.m {
		fn(id, rec)
	}
}

// FirstPutNanos returns the unix-nano timestamp of the oldest pending
// record (0 when the delta is empty / freshly reset).
func (d *Delta) FirstPutNanos() int64 { return d.firstPut }

// Reset discards all pending records but keeps the allocated table so the
// pre-allocated double-delta scheme stays cheap.
func (d *Delta) Reset() {
	clear(d.m)
	d.firstPut = 0
}
