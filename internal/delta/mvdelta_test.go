package delta

import (
	"testing"
	"testing/quick"
)

func TestMVPutGetNewest(t *testing.T) {
	d := NewMV(4)
	d.Put(1, 10, []uint64{1, 100})
	d.Put(1, 20, []uint64{1, 200})
	d.Put(2, 15, []uint64{2, 999})
	dst := make([]uint64, 2)
	v, ok := d.Get(1, dst)
	if !ok || v != 20 || dst[1] != 200 {
		t.Fatalf("Get = v%d %v ok=%v", v, dst, ok)
	}
	if d.Len() != 2 || d.Versions() != 3 || d.Newest() != 20 {
		t.Fatalf("Len=%d Versions=%d Newest=%d", d.Len(), d.Versions(), d.Newest())
	}
	if _, ok := d.Get(3, dst); ok {
		t.Fatal("missing entity hit")
	}
}

func TestMVGetAsOfSnapshotRead(t *testing.T) {
	d := NewMV(4)
	d.Put(1, 10, []uint64{1, 100})
	d.Put(1, 20, []uint64{1, 200})
	d.Put(1, 30, []uint64{1, 300})
	dst := make([]uint64, 2)
	cases := []struct {
		asOf    uint64
		wantV   uint64
		wantVal uint64
		ok      bool
	}{
		{5, 0, 0, false},
		{10, 10, 100, true},
		{15, 10, 100, true},
		{20, 20, 200, true},
		{29, 20, 200, true},
		{30, 30, 300, true},
		{99, 30, 300, true},
	}
	for _, c := range cases {
		v, ok := d.GetAsOf(1, c.asOf, dst)
		if ok != c.ok {
			t.Fatalf("asOf %d: ok=%v", c.asOf, ok)
		}
		if ok && (v != c.wantV || dst[1] != c.wantVal) {
			t.Fatalf("asOf %d: v=%d val=%d, want v=%d val=%d", c.asOf, v, dst[1], c.wantV, c.wantVal)
		}
	}
}

func TestMVSameVersionOverwrites(t *testing.T) {
	d := NewMV(1)
	d.Put(1, 10, []uint64{1, 100})
	d.Put(1, 10, []uint64{1, 111})
	if d.Versions() != 1 {
		t.Fatalf("Versions = %d", d.Versions())
	}
	dst := make([]uint64, 2)
	if _, ok := d.Get(1, dst); !ok || dst[1] != 111 {
		t.Fatalf("overwrite lost: %v", dst)
	}
}

func TestMVOutOfOrderInsert(t *testing.T) {
	d := NewMV(1)
	d.Put(1, 30, []uint64{1, 300})
	d.Put(1, 10, []uint64{1, 100}) // late write of an older version
	d.Put(1, 20, []uint64{1, 200})
	dst := make([]uint64, 2)
	if v, ok := d.GetAsOf(1, 25, dst); !ok || v != 20 || dst[1] != 200 {
		t.Fatalf("asOf 25 after out-of-order inserts: v=%d val=%d", v, dst[1])
	}
	if v, ok := d.Get(1, dst); !ok || v != 30 {
		t.Fatalf("newest = %d", v)
	}
	// Overwrite an interior version.
	d.Put(1, 20, []uint64{1, 222})
	if _, ok := d.GetAsOf(1, 20, dst); !ok || dst[1] != 222 {
		t.Fatalf("interior overwrite lost: %v", dst[1])
	}
}

func TestMVPutBatchAtomicVersion(t *testing.T) {
	d := NewMV(4)
	d.Put(1, 5, []uint64{1, 50})
	v := d.PutBatch(map[uint64][]uint64{
		1: {1, 60},
		2: {2, 70},
	})
	if v != 6 {
		t.Fatalf("batch version = %d", v)
	}
	dst := make([]uint64, 2)
	// A reader at version 5 sees neither batch write.
	if _, ok := d.GetAsOf(2, 5, dst); ok {
		t.Fatal("snapshot 5 sees batch write")
	}
	if vv, ok := d.GetAsOf(1, 5, dst); !ok || vv != 5 || dst[1] != 50 {
		t.Fatalf("snapshot 5 entity 1: v=%d val=%d", vv, dst[1])
	}
	// A reader at the batch version sees both atomically.
	if _, ok := d.GetAsOf(1, 6, dst); !ok || dst[1] != 60 {
		t.Fatal("batch write invisible at its version")
	}
	if _, ok := d.GetAsOf(2, 6, dst); !ok || dst[1] != 70 {
		t.Fatal("batch write invisible at its version")
	}
}

func TestMVTruncate(t *testing.T) {
	d := NewMV(2)
	for v := uint64(1); v <= 5; v++ {
		d.Put(1, v*10, []uint64{1, v})
	}
	if d.Versions() != 5 {
		t.Fatalf("Versions = %d", d.Versions())
	}
	// Oldest live reader is at 35: versions 10 and 20 become unreachable
	// (30 is the newest <= 35 and must survive).
	d.Truncate(35)
	if d.Versions() != 3 {
		t.Fatalf("after Truncate Versions = %d, want 3", d.Versions())
	}
	dst := make([]uint64, 2)
	if v, ok := d.GetAsOf(1, 35, dst); !ok || v != 30 {
		t.Fatalf("reader at 35 sees v%d", v)
	}
	if _, ok := d.GetAsOf(1, 15, dst); ok {
		t.Fatal("truncated version still visible")
	}
	// Reset empties everything.
	d.Reset()
	if d.Len() != 0 || d.Versions() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestMVIterateNewest(t *testing.T) {
	d := NewMV(4)
	d.Put(1, 1, []uint64{1, 10})
	d.Put(1, 2, []uint64{1, 20})
	d.Put(2, 1, []uint64{2, 30})
	seen := map[uint64]uint64{}
	d.IterateNewest(func(id, v uint64, rec []uint64) { seen[id] = rec[1] })
	if len(seen) != 2 || seen[1] != 20 || seen[2] != 30 {
		t.Fatalf("IterateNewest = %v", seen)
	}
}

// TestQuickMVSnapshotMonotone property-tests that for any write sequence,
// GetAsOf(v) returns the record with the greatest version <= v.
func TestQuickMVSnapshotMonotone(t *testing.T) {
	f := func(versions []uint16) bool {
		d := NewMV(1)
		applied := map[uint64]uint64{} // version -> value
		for i, v16 := range versions {
			v := uint64(v16)%100 + 1
			d.Put(1, v, []uint64{1, uint64(i + 1000)})
			applied[v] = uint64(i + 1000)
		}
		dst := make([]uint64, 2)
		for asOf := uint64(0); asOf <= 101; asOf++ {
			var bestV, bestVal uint64
			found := false
			for v, val := range applied {
				if v <= asOf && (!found || v > bestV) {
					bestV, bestVal, found = v, val, true
				}
			}
			gotV, ok := d.GetAsOf(1, asOf, dst)
			if ok != found {
				return false
			}
			if found && (gotV != bestV || dst[1] != bestVal) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
