package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dimension"
	"repro/internal/schema"
)

// Dimension cardinalities for the benchmark (small, static tables as in
// §3.4).
const (
	NumZips              = 1000
	NumCities            = 50
	NumRegions           = 10
	NumCountries         = 5
	NumSubscriptionTypes = 5
	NumCategories        = 5
	NumValueTypes        = 8
)

// Dimensions bundles the replicated dimension tables plus the consistent
// zip → region/country mapping the record factory needs.
type Dimensions struct {
	Store *dimension.Store

	// zipRegion[z] / zipCountry[z] give the region/country ids of zip
	// 1000+z, keeping inlined attributes consistent with RegionInfo.
	zipRegion  []uint64
	zipCountry []uint64
}

// BuildDimensions generates the benchmark dimension tables deterministically
// from seed.
func BuildDimensions(seed int64) (*Dimensions, error) {
	rng := rand.New(rand.NewSource(seed))
	d := &Dimensions{
		Store:      dimension.NewStore(),
		zipRegion:  make([]uint64, NumZips),
		zipCountry: make([]uint64, NumZips),
	}

	region := dimension.NewTable("Region", "name")
	for r := uint64(0); r < NumRegions; r++ {
		if err := region.Insert(r, fmt.Sprintf("region-%02d", r)); err != nil {
			return nil, err
		}
	}
	country := dimension.NewTable("Country", "name")
	for c := uint64(0); c < NumCountries; c++ {
		if err := country.Insert(c, fmt.Sprintf("country-%d", c)); err != nil {
			return nil, err
		}
	}

	// Each city belongs to one region; each region to one country; each
	// zip to one city. RegionInfo inlines the whole hierarchy per zip.
	cityRegion := make([]uint64, NumCities)
	for c := range cityRegion {
		cityRegion[c] = uint64(rng.Intn(NumRegions))
	}
	regionCountry := make([]uint64, NumRegions)
	for r := range regionCountry {
		regionCountry[r] = uint64(rng.Intn(NumCountries))
	}
	regionInfo := dimension.NewTable("RegionInfo", "city", "region", "country")
	for z := 0; z < NumZips; z++ {
		city := uint64(rng.Intn(NumCities))
		reg := cityRegion[city]
		cty := regionCountry[reg]
		d.zipRegion[z] = reg
		d.zipCountry[z] = cty
		if err := regionInfo.Insert(ZipKey(z),
			fmt.Sprintf("city-%02d", city),
			fmt.Sprintf("region-%02d", reg),
			fmt.Sprintf("country-%d", cty)); err != nil {
			return nil, err
		}
	}

	subs := dimension.NewTable("SubscriptionType", "name")
	for s := uint64(0); s < NumSubscriptionTypes; s++ {
		if err := subs.Insert(s, fmt.Sprintf("sub-%d", s)); err != nil {
			return nil, err
		}
	}
	cat := dimension.NewTable("Category", "name")
	for c := uint64(0); c < NumCategories; c++ {
		if err := cat.Insert(c, fmt.Sprintf("cat-%d", c)); err != nil {
			return nil, err
		}
	}
	vt := dimension.NewTable("CellValueType", "name")
	for v := uint64(0); v < NumValueTypes; v++ {
		if err := vt.Insert(v, fmt.Sprintf("vt-%d", v)); err != nil {
			return nil, err
		}
	}

	d.Store.Add(region)
	d.Store.Add(country)
	d.Store.Add(regionInfo)
	d.Store.Add(subs)
	d.Store.Add(cat)
	d.Store.Add(vt)
	return d, nil
}

// ZipKey maps a zip ordinal to its dimension key (zips start at 1000).
func ZipKey(ordinal int) uint64 { return uint64(1000 + ordinal) }

// Factory returns a record factory that populates the segmentation
// attributes deterministically from the entity id, consistently with the
// dimension hierarchy (an entity's region_id is the region of its zip).
func (d *Dimensions) Factory(sch *schema.Schema) func(uint64) schema.Record {
	zip := sch.MustAttrIndex("zip")
	regionID := sch.MustAttrIndex("region_id")
	countryID := sch.MustAttrIndex("country_id")
	sub := sch.MustAttrIndex("subscription_type")
	cat := sch.MustAttrIndex("category")
	vt := sch.MustAttrIndex("value_type")
	return func(entityID uint64) schema.Record {
		rec := sch.NewRecord(entityID)
		h := entityID * 0xBF58476D1CE4E5B9
		z := int((h >> 16) % NumZips)
		rec.SetInt(zip, int64(ZipKey(z)))
		rec.SetInt(regionID, int64(d.zipRegion[z]))
		rec.SetInt(countryID, int64(d.zipCountry[z]))
		rec.SetInt(sub, int64((h>>40)%NumSubscriptionTypes))
		rec.SetInt(cat, int64((h>>48)%NumCategories))
		rec.SetInt(vt, int64((h>>56)%NumValueTypes))
		return rec
	}
}
