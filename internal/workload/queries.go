package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/vec"
)

// QueryGen generates random instances of the seven RTA query templates of
// Table 5, with parameters drawn uniformly from the published ranges:
// α∈[0,2], β∈[2,5], γ∈[2,10], δ∈[20,150], t∈SubscriptionTypes,
// cat∈Categories, cty∈Countries, v∈CellValueTypes.
type QueryGen struct {
	sch *schema.Schema
	rng *rand.Rand
	id  uint64

	// resolved attribute indices
	callsLocalWeek int
	durAnyWeekSum  int
	callsAnyWeek   int
	costAnyWeekMax int
	durLocalWeek   int
	costAnyWeek    int
	costLocalWeek  int
	costLDWeek     int
	durLocalDayMax int
	durLocalWkMax  int
	durLDDayMax    int
	durLDWkMax     int
	zip            int
	regionID       int
	countryID      int
	subType        int
	category       int
	valueType      int
}

// NewQueryGen builds a generator over a schema produced by BuildSchema or
// BuildSmallSchema.
func NewQueryGen(sch *schema.Schema, seed int64) (*QueryGen, error) {
	g := &QueryGen{sch: sch, rng: rand.New(rand.NewSource(seed))}
	var err error
	attr := func(name string) int {
		if err != nil {
			return 0
		}
		var i int
		i, err = sch.AttrIndex(name)
		return i
	}
	g.callsLocalWeek = attr("calls_local_week_count")
	g.durAnyWeekSum = attr("dur_any_week_sum")
	g.callsAnyWeek = attr("calls_any_week_count")
	g.costAnyWeekMax = attr("cost_any_week_max")
	g.durLocalWeek = attr("dur_local_week_sum")
	g.costAnyWeek = attr("cost_any_week_sum")
	g.costLocalWeek = attr("cost_local_week_sum")
	g.costLDWeek = attr("cost_longdist_week_sum")
	g.durLocalDayMax = attr("dur_local_day_max")
	g.durLocalWkMax = attr("dur_local_week_max")
	g.durLDDayMax = attr("dur_longdist_day_max")
	g.durLDWkMax = attr("dur_longdist_week_max")
	g.zip = attr("zip")
	g.regionID = attr("region_id")
	g.countryID = attr("country_id")
	g.subType = attr("subscription_type")
	g.category = attr("category")
	g.valueType = attr("value_type")
	if err != nil {
		return nil, fmt.Errorf("workload: schema missing benchmark attribute: %w", err)
	}
	return g, nil
}

func (g *QueryGen) nextID() uint64 {
	g.id++
	return g.id
}

// Next returns a random query drawn uniformly from the seven templates.
func (g *QueryGen) Next() *query.Query {
	switch g.rng.Intn(7) + 1 {
	case 1:
		return g.Q1(int64(g.rng.Intn(3)))
	case 2:
		return g.Q2(int64(2 + g.rng.Intn(4)))
	case 3:
		return g.Q3()
	case 4:
		return g.Q4(int64(2+g.rng.Intn(9)), int64(20+g.rng.Intn(131)))
	case 5:
		return g.Q5(int64(g.rng.Intn(NumSubscriptionTypes)), int64(g.rng.Intn(NumCategories)))
	case 6:
		return g.Q6(int64(g.rng.Intn(NumCountries)))
	default:
		return g.Q7(int64(g.rng.Intn(NumValueTypes)))
	}
}

// Q1: SELECT AVG(total_duration_this_week) FROM AnalyticsMatrix
// WHERE number_of_local_calls_this_week > α.
func (g *QueryGen) Q1(alpha int64) *query.Query {
	return &query.Query{
		ID:       g.nextID(),
		Template: 1,
		Where:    []query.Conjunct{{query.PredInt(g.callsLocalWeek, vec.Gt, alpha)}},
		Aggs:     []query.AggExpr{{Op: query.OpAvg, Attr: g.durAnyWeekSum}},
		GroupBy:  -1,
	}
}

// Q2: SELECT MAX(most_expensive_call_this_week) FROM AnalyticsMatrix
// WHERE total_number_of_calls_this_week > β.
func (g *QueryGen) Q2(beta int64) *query.Query {
	return &query.Query{
		ID:       g.nextID(),
		Template: 2,
		Where:    []query.Conjunct{{query.PredInt(g.callsAnyWeek, vec.Gt, beta)}},
		Aggs:     []query.AggExpr{{Op: query.OpMax, Attr: g.costAnyWeekMax}},
		GroupBy:  -1,
	}
}

// Q3: SELECT SUM(total_cost_this_week)/SUM(total_duration_this_week) AS
// cost_ratio FROM AnalyticsMatrix GROUP BY number_of_calls_this_week
// LIMIT 100.
func (g *QueryGen) Q3() *query.Query {
	return &query.Query{
		ID:       g.nextID(),
		Template: 3,
		Aggs: []query.AggExpr{
			{Op: query.OpSum, Attr: g.costAnyWeek},
			{Op: query.OpSum, Attr: g.durAnyWeekSum},
		},
		GroupBy: g.callsAnyWeek,
		Derived: []query.Ratio{{Num: 0, Den: 1}},
		Limit:   100,
	}
}

// Q4: SELECT city, AVG(number_of_local_calls_this_week),
// SUM(total_duration_of_local_calls_this_week) FROM AnalyticsMatrix,
// RegionInfo WHERE local calls > γ AND local duration > δ AND zip join
// GROUP BY city.
func (g *QueryGen) Q4(gamma, delta int64) *query.Query {
	return &query.Query{
		ID:       g.nextID(),
		Template: 4,
		Where: []query.Conjunct{{
			query.PredInt(g.callsLocalWeek, vec.Gt, gamma),
			query.PredInt(g.durLocalWeek, vec.Gt, delta),
		}},
		Aggs: []query.AggExpr{
			{Op: query.OpAvg, Attr: g.callsLocalWeek},
			{Op: query.OpSum, Attr: g.durLocalWeek},
		},
		GroupBy:  g.zip,
		GroupDim: &query.DimJoin{Table: "RegionInfo", Column: "city"},
	}
}

// Q5: SELECT region, SUM(local cost this week), SUM(long-distance cost this
// week) FROM AnalyticsMatrix (joins inlined) WHERE subscription_type = t AND
// category = cat GROUP BY region.
func (g *QueryGen) Q5(t, cat int64) *query.Query {
	return &query.Query{
		ID:       g.nextID(),
		Template: 5,
		Where: []query.Conjunct{{
			query.PredInt(g.subType, vec.Eq, t),
			query.PredInt(g.category, vec.Eq, cat),
		}},
		Aggs: []query.AggExpr{
			{Op: query.OpSum, Attr: g.costLocalWeek},
			{Op: query.OpSum, Attr: g.costLDWeek},
		},
		GroupBy:  g.regionID,
		GroupDim: &query.DimJoin{Table: "Region", Column: "name"},
	}
}

// Q6: report the entity-ids of the records with the longest call this day
// and this week for local and long-distance calls, for a specific country.
func (g *QueryGen) Q6(country int64) *query.Query {
	return &query.Query{
		ID:       g.nextID(),
		Template: 6,
		Where:    []query.Conjunct{{query.PredInt(g.countryID, vec.Eq, country)}},
		Aggs: []query.AggExpr{
			{Op: query.OpArgMax, Attr: g.durLocalDayMax},
			{Op: query.OpArgMax, Attr: g.durLocalWkMax},
			{Op: query.OpArgMax, Attr: g.durLDDayMax},
			{Op: query.OpArgMax, Attr: g.durLDWkMax},
		},
		GroupBy: -1,
	}
}

// Q7: report the entity-ids of the records with the smallest flat rate
// (cost of calls divided by duration of calls this week) for a specific
// value type.
func (g *QueryGen) Q7(valueType int64) *query.Query {
	return &query.Query{
		ID:       g.nextID(),
		Template: 7,
		Where:    []query.Conjunct{{query.PredInt(g.valueType, vec.Eq, valueType)}},
		Aggs: []query.AggExpr{
			{Op: query.OpArgMinRatio, Attr: g.costAnyWeek, Attr2: g.durAnyWeekSum},
		},
		GroupBy: -1,
	}
}
