package workload

import (
	"testing"

	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/schema"
)

func TestBuildSchemaHas546Indicators(t *testing.T) {
	sch, err := BuildSchema()
	if err != nil {
		t.Fatal(err)
	}
	if got := NumIndicators(sch); got != 546 {
		t.Fatalf("indicators = %d, want 546", got)
	}
	// Entity records are on the order of the paper's 3 KB.
	if sch.RecordBytes() < 3*1024 {
		t.Fatalf("record bytes = %d, want >= 3 KiB", sch.RecordBytes())
	}
	t.Logf("record: %d slots = %d bytes", sch.Slots, sch.RecordBytes())
}

func TestBuildSmallSchema(t *testing.T) {
	sch, err := BuildSmallSchema()
	if err != nil {
		t.Fatal(err)
	}
	if got := NumIndicators(sch); got != 3*4*9+6 {
		t.Fatalf("small indicators = %d, want %d", got, 3*4*9+6)
	}
}

func TestDimensionsConsistency(t *testing.T) {
	dims, err := BuildDimensions(42)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := dims.Store.Table("RegionInfo")
	if err != nil {
		t.Fatal(err)
	}
	if ri.Len() != NumZips {
		t.Fatalf("RegionInfo rows = %d", ri.Len())
	}
	// Every zip's region string must match the region table's name for the
	// id recorded in zipRegion.
	region, _ := dims.Store.Table("Region")
	for z := 0; z < NumZips; z += 97 {
		got, ok := ri.Lookup(ZipKey(z), "region")
		if !ok {
			t.Fatalf("zip %d missing region", z)
		}
		want, _ := region.Lookup(dims.zipRegion[z], "name")
		if got != want {
			t.Fatalf("zip %d region %q != region table %q", z, got, want)
		}
	}
	// Determinism.
	dims2, _ := BuildDimensions(42)
	for z := 0; z < NumZips; z += 211 {
		if dims.zipCountry[z] != dims2.zipCountry[z] {
			t.Fatal("dimension generation not deterministic")
		}
	}
}

func TestFactoryStaticsConsistentWithDims(t *testing.T) {
	sch, err := BuildSmallSchema()
	if err != nil {
		t.Fatal(err)
	}
	dims, err := BuildDimensions(7)
	if err != nil {
		t.Fatal(err)
	}
	factory := dims.Factory(sch)
	zip := sch.MustAttrIndex("zip")
	regionID := sch.MustAttrIndex("region_id")
	countryID := sch.MustAttrIndex("country_id")
	for e := uint64(1); e <= 500; e += 13 {
		rec := factory(e)
		if rec.EntityID() != e {
			t.Fatalf("entity %d", e)
		}
		z := int(rec.Int(zip)) - 1000
		if z < 0 || z >= NumZips {
			t.Fatalf("zip ordinal %d out of range", z)
		}
		if uint64(rec.Int(regionID)) != dims.zipRegion[z] {
			t.Fatalf("entity %d region %d != zip's region %d", e, rec.Int(regionID), dims.zipRegion[z])
		}
		if uint64(rec.Int(countryID)) != dims.zipCountry[z] {
			t.Fatalf("entity %d country inconsistent", e)
		}
		// Deterministic.
		rec2 := factory(e)
		for i := range rec {
			if rec[i] != rec2[i] {
				t.Fatal("factory not deterministic")
			}
		}
	}
}

func TestBuildRulesShape(t *testing.T) {
	sch, err := BuildSchema()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := BuildRules(sch, DefaultRuleCount, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 300 {
		t.Fatalf("rules = %d", len(rs))
	}
	withPolicy := 0
	for _, r := range rs {
		if err := r.Validate(sch); err != nil {
			t.Fatalf("rule %d invalid: %v", r.ID, err)
		}
		if len(r.Conjuncts) < 1 || len(r.Conjuncts) > 10 {
			t.Fatalf("rule %d has %d conjuncts", r.ID, len(r.Conjuncts))
		}
		for _, c := range r.Conjuncts {
			if len(c) < 1 || len(c) > 10 {
				t.Fatalf("rule %d conjunct with %d predicates", r.ID, len(c))
			}
		}
		if r.Policy.Limit > 0 {
			withPolicy++
		}
	}
	if withPolicy == 0 || withPolicy == len(rs) {
		t.Fatalf("firing-policy mix degenerate: %d/300", withPolicy)
	}
	// The engine accepts the full set, with and without index.
	if _, err := rules.NewEngine(sch, rs, false); err != nil {
		t.Fatal(err)
	}
	if _, err := rules.NewEngine(sch, rs, true); err != nil {
		t.Fatal(err)
	}
}

func TestQueryGenAllTemplatesValid(t *testing.T) {
	sch, err := BuildSchema()
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewQueryGen(sch, 3)
	if err != nil {
		t.Fatal(err)
	}
	qs := []*query.Query{
		g.Q1(1), g.Q2(3), g.Q3(), g.Q4(5, 100), g.Q5(1, 2), g.Q6(0), g.Q7(3),
	}
	for i, q := range qs {
		if err := q.Validate(sch); err != nil {
			t.Fatalf("Q%d invalid: %v", i+1, err)
		}
	}
	if qs[2].Limit != 100 {
		t.Fatal("Q3 must carry LIMIT 100")
	}
	if qs[3].GroupDim == nil || qs[3].GroupDim.Column != "city" {
		t.Fatal("Q4 must group by city via RegionInfo")
	}
	// Next covers all templates and produces unique ids.
	seen := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		q := g.Next()
		if err := q.Validate(sch); err != nil {
			t.Fatalf("Next() produced invalid query: %v", err)
		}
		if seen[q.ID] {
			t.Fatal("duplicate query id")
		}
		seen[q.ID] = true
	}
	// QueryGen works on the small schema too (examples use it).
	small, _ := BuildSmallSchema()
	if _, err := NewQueryGen(small, 1); err != nil {
		t.Fatalf("small schema query gen: %v", err)
	}
}

func TestSchemaAppliesFullEventPath(t *testing.T) {
	sch, err := BuildSchema()
	if err != nil {
		t.Fatal(err)
	}
	dims, _ := BuildDimensions(1)
	factory := dims.Factory(sch)
	rec := factory(77)
	gen := event.NewGenerator(1000, 9)
	var ev event.Event
	for i := 0; i < 100; i++ {
		gen.NextFor(&ev, 77)
		sch.Apply(rec, &ev)
	}
	calls := sch.MustAttrIndex("calls_any_quarter_count")
	if rec.Int(calls) != 100 {
		t.Fatalf("quarter call count = %d, want 100", rec.Int(calls))
	}
	local := sch.MustAttrIndex("calls_local_quarter_count")
	ld := sch.MustAttrIndex("calls_longdist_quarter_count")
	if rec.Int(local)+rec.Int(ld) != 100 {
		t.Fatalf("local %d + longdist %d != 100", rec.Int(local), rec.Int(ld))
	}
	var _ schema.Record = rec
}
