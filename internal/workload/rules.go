package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/rules"
	"repro/internal/schema"
)

// DefaultRuleCount is the benchmark's rule-set size (§5).
const DefaultRuleCount = 300

// BuildRules generates n Business Rules over the benchmark schema,
// deterministically from seed. Matching the published shape, each rule has
// 1–10 conjuncts of 1–10 predicates each, over day/week indicators and
// event properties; roughly a quarter of the rules carry a firing policy.
// Predicate constants are drawn from coarse grids so predicates repeat
// across rules (the sharing a rule index exploits).
func BuildRules(sch *schema.Schema, n int, seed int64) ([]rules.Rule, error) {
	rng := rand.New(rand.NewSource(seed))
	attrPool := []struct {
		name string
		// scale spaces predicate constants so thresholds are plausible
		// for the attribute (counts vs durations vs costs).
		scale float64
	}{
		{"calls_any_day_count", 5},
		{"calls_any_week_count", 10},
		{"calls_local_week_count", 8},
		{"calls_longdist_week_count", 5},
		{"dur_any_day_sum", 600},
		{"dur_any_week_sum", 2000},
		{"dur_local_week_avg", 120},
		{"cost_any_day_sum", 10},
		{"cost_any_week_sum", 25},
		{"cost_longdist_week_max", 5},
	}
	type pooled struct {
		attr  int
		scale float64
	}
	pool := make([]pooled, len(attrPool))
	for i, a := range attrPool {
		idx, err := sch.AttrIndex(a.name)
		if err != nil {
			return nil, fmt.Errorf("workload: rule attribute: %w", err)
		}
		pool[i] = pooled{attr: idx, scale: a.scale}
	}
	// Campaign rules should fire rarely (the paper's examples trigger on
	// exceptional behaviour like ">20 calls today AND >$100 spent"), so
	// predicates are dominated by high-threshold Gt/Ge comparisons with a
	// sprinkling of low-threshold Lt/Le ones.
	highOp := func(rng *rand.Rand) rules.CmpOp {
		if rng.Intn(2) == 0 {
			return rules.Gt
		}
		return rules.Ge
	}
	lowOp := func(rng *rand.Rand) rules.CmpOp {
		if rng.Intn(2) == 0 {
			return rules.Lt
		}
		return rules.Le
	}

	out := make([]rules.Rule, n)
	for i := range out {
		nConj := 1 + rng.Intn(10)
		conjs := make([]rules.Conjunct, nConj)
		for c := range conjs {
			nPred := 1 + rng.Intn(10)
			preds := make(rules.Conjunct, nPred)
			for p := range preds {
				switch rng.Intn(8) {
				case 0: // event duration predicate (90th+ percentile)
					preds[p] = rules.Predicate{
						Kind: rules.LHSEventDuration, Op: highOp(rng),
						Value: float64(3+rng.Intn(10)) * 120,
					}
				case 1: // event cost predicate
					preds[p] = rules.Predicate{
						Kind: rules.LHSEventCost, Op: highOp(rng),
						Value: float64(2 + rng.Intn(10)),
					}
				default: // record attribute predicate (coarse value grid)
					a := pool[rng.Intn(len(pool))]
					if rng.Intn(5) == 0 {
						preds[p] = rules.Predicate{
							Kind: rules.LHSAttr, Attr: a.attr, Op: lowOp(rng),
							Value: float64(1+rng.Intn(3)) * a.scale / 20,
						}
					} else {
						preds[p] = rules.Predicate{
							Kind: rules.LHSAttr, Attr: a.attr, Op: highOp(rng),
							Value: float64(3+rng.Intn(10)) * a.scale,
						}
					}
				}
			}
			conjs[c] = preds
		}
		r := rules.Rule{
			ID:        i + 1,
			Name:      fmt.Sprintf("campaign-%03d", i+1),
			Action:    fmt.Sprintf("action-%03d", i+1),
			Conjuncts: conjs,
		}
		if rng.Intn(4) == 0 {
			r.Policy = rules.FiringPolicy{
				Limit:        1 + rng.Intn(3),
				WindowMillis: 24 * 3600 * 1000,
			}
		}
		out[i] = r
	}
	return out, nil
}
