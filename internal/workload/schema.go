// Package workload defines the Huawei benchmark of §5: the 546-indicator
// Analytics Matrix schema, the replicated dimension tables, the 300-rule
// Business Rule set (1–10 conjuncts × 1–10 predicates), and the seven
// parameterized RTA query templates of Table 5 with their published
// parameter ranges.
//
// Everything is generated deterministically from seeds so experiments are
// reproducible; see DESIGN.md for the substitution notes (the benchmark in
// the paper is itself synthetic, co-designed with the customer).
package workload

import (
	"fmt"

	"repro/internal/schema"
)

// Static segmentation attributes inlined into every Entity Record (§2.1,
// §3.4: dimension keys are denormalized into the record so joins are local).
var staticAttrs = []schema.StaticSpec{
	{Name: "zip", Type: schema.TypeInt64},
	{Name: "region_id", Type: schema.TypeInt64},
	{Name: "country_id", Type: schema.TypeInt64},
	{Name: "subscription_type", Type: schema.TypeInt64},
	{Name: "category", Type: schema.TypeInt64},
	{Name: "value_type", Type: schema.TypeInt64},
}

// windowSpec names one aggregation window of the benchmark schema.
type windowSpec struct {
	name string
	win  schema.Window
}

// fullWindows is the benchmark's 20-window set: 6 tumbling, 10 event-count,
// 4 sliding. Together with 3 filters and the per-metric aggregate sets this
// yields 3 × 20 × (1 + 4 + 4) = 540 event-driven indicators, plus the 6
// segmentation attributes above = 546 indicators, matching §5.
func fullWindows() []windowSpec {
	return []windowSpec{
		{"hour", schema.Window{Kind: schema.WindowTumbling, DurationMillis: 3600 * 1000}},
		{"day", schema.Day()},
		{"week", schema.Week()},
		{"2weeks", schema.Window{Kind: schema.WindowTumbling, DurationMillis: 14 * 24 * 3600 * 1000}},
		{"month", schema.Month()},
		{"quarter", schema.Window{Kind: schema.WindowTumbling, DurationMillis: 90 * 24 * 3600 * 1000}},
		{"last5", schema.LastEvents(5)},
		{"last10", schema.LastEvents(10)},
		{"last20", schema.LastEvents(20)},
		{"last30", schema.LastEvents(30)},
		{"last50", schema.LastEvents(50)},
		{"last100", schema.LastEvents(100)},
		{"last200", schema.LastEvents(200)},
		{"last300", schema.LastEvents(300)},
		{"last500", schema.LastEvents(500)},
		{"last1000", schema.LastEvents(1000)},
		{"slide12h", schema.SlidingHours(12, 4)},
		{"slide24h", schema.SlidingHours(24, 4)},
		{"slide7d", schema.SlidingHours(7*24, 7)},
		{"slide30d", schema.SlidingHours(30*24, 6)},
	}
}

// smallWindows is a compact window set for tests and examples.
func smallWindows() []windowSpec {
	return []windowSpec{
		{"day", schema.Day()},
		{"week", schema.Week()},
		{"last10", schema.LastEvents(10)},
		{"slide24h", schema.SlidingHours(24, 4)},
	}
}

var filters = []struct {
	name string
	f    schema.Filter
}{
	{"any", schema.CallAny},
	{"local", schema.CallLocal},
	{"longdist", schema.CallLongDistance},
}

// buildSchema assembles the Cartesian-product schema over the given windows.
func buildSchema(windows []windowSpec) (*schema.Schema, error) {
	b := schema.NewBuilder()
	for _, st := range staticAttrs {
		b.AddStatic(st)
	}
	valueAggs := []schema.AggKind{schema.AggSum, schema.AggAvg, schema.AggMin, schema.AggMax}
	for _, f := range filters {
		for _, w := range windows {
			b.AddGroup(schema.GroupSpec{
				Name:   fmt.Sprintf("calls_%s_%s", f.name, w.name),
				Metric: schema.MetricCount, Filter: f.f, Window: w.win,
				Aggs: []schema.AggKind{schema.AggCount},
			})
			b.AddGroup(schema.GroupSpec{
				Name:   fmt.Sprintf("dur_%s_%s", f.name, w.name),
				Metric: schema.MetricDuration, Filter: f.f, Window: w.win,
				Aggs: valueAggs,
			})
			b.AddGroup(schema.GroupSpec{
				Name:   fmt.Sprintf("cost_%s_%s", f.name, w.name),
				Metric: schema.MetricCost, Filter: f.f, Window: w.win,
				Aggs: valueAggs,
			})
		}
	}
	return b.Build()
}

// BuildSchema returns the full benchmark schema: 546 indicators (540
// event-driven aggregates + 6 segmentation attributes), as in §5.
func BuildSchema() (*schema.Schema, error) { return buildSchema(fullWindows()) }

// BuildSmallSchema returns a reduced schema (3 filters × 4 windows = 108
// aggregate indicators + 6 statics) for tests and examples where the full
// 546-indicator record would be needlessly heavy.
func BuildSmallSchema() (*schema.Schema, error) { return buildSchema(smallWindows()) }

// NumIndicators reports the number of indicator columns of a schema built by
// this package (visible attributes minus the two builtins).
func NumIndicators(sch *schema.Schema) int { return sch.NumAttrs() - 2 }
