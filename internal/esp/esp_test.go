package esp

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/rules"
	"repro/internal/schema"
)

func espSchema(t testing.TB) *schema.Schema {
	t.Helper()
	sch, err := schema.NewBuilder().
		AddGroup(schema.GroupSpec{Name: "calls_today", Metric: schema.MetricCount,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggCount}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func localCluster(t *testing.T, sch *schema.Schema, n int) (*cluster.Cluster, []*core.StorageNode) {
	t.Helper()
	c, nodes, err := cluster.NewLocal(n, core.Config{
		Schema: sch, Partitions: 2, BucketSize: 32,
		IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Stop()
		}
	})
	return c, nodes
}

func TestRouterIngest(t *testing.T) {
	sch := espSchema(t)
	c, nodes := localCluster(t, sch, 2)
	r := NewRouter(c)
	for i := 0; i < 100; i++ {
		if err := r.Ingest(event.Event{Caller: uint64(i%10) + 1, Timestamp: int64(i + 1), Duration: 1, Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, n := range nodes {
		total += n.Stats().EventsProcessed
	}
	if total != 100 {
		t.Fatalf("processed %d", total)
	}
	if _, err := r.IngestSync(event.Event{Caller: 3, Timestamp: 1000, Duration: 1, Cost: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestDriverFixedRate(t *testing.T) {
	sch := espSchema(t)
	c, _ := localCluster(t, sch, 1)
	gen := event.NewGenerator(100, 5)
	d := &Driver{Gen: gen, Rate: 5000, Sink: NewRouter(c).Ingest}
	st, err := d.Run(200*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent == 0 {
		t.Fatal("no events sent")
	}
	// Achieved rate should be near the 5000/s target (allow wide slack for
	// CI noise, but it must not be unthrottled).
	if st.AchievedRate > 12000 || st.AchievedRate < 1000 {
		t.Fatalf("achieved rate %.0f ev/s, want ~5000", st.AchievedRate)
	}
}

func TestDriverExactCount(t *testing.T) {
	sch := espSchema(t)
	c, nodes := localCluster(t, sch, 1)
	gen := event.NewGenerator(100, 5)
	d := &Driver{Gen: gen, Sink: NewRouter(c).Ingest}
	st, err := d.Run(0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 500 {
		t.Fatalf("sent %d, want 500", st.Sent)
	}
	if err := c.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	if got := nodes[0].Stats().EventsProcessed; got != 500 {
		t.Fatalf("processed %d", got)
	}
}

func TestDriverValidation(t *testing.T) {
	d := &Driver{}
	if _, err := d.Run(time.Millisecond, 0); err == nil {
		t.Fatal("driver without Gen/Sink ran")
	}
}

func TestGetPutProcessor(t *testing.T) {
	sch := espSchema(t)
	calls := sch.MustAttrIndex("calls_today_count")
	node, err := core.NewNode(core.Config{Schema: sch, Partitions: 2, BucketSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Stop)

	eng, err := rules.NewEngine(sch, []rules.Rule{{
		ID: 1, Action: "hit",
		Conjuncts: []rules.Conjunct{{{Kind: rules.LHSAttr, Attr: calls, Op: rules.Ge, Value: 3}}},
	}}, false)
	if err != nil {
		t.Fatal(err)
	}
	p := NewGetPutProcessor(sch, node, eng, nil)

	totalFirings := 0
	for i := 0; i < 5; i++ {
		nf, err := p.Process(event.Event{Caller: 9, Timestamp: 100*24*3600*1000 + int64(i), Duration: 10, Cost: 1})
		if err != nil {
			t.Fatal(err)
		}
		totalFirings += nf
	}
	if totalFirings != 3 {
		t.Fatalf("firings = %d, want 3", totalFirings)
	}
	rec, _, ok, err := node.Get(9)
	if err != nil || !ok {
		t.Fatalf("Get: %v %v", ok, err)
	}
	if rec.Int(calls) != 5 {
		t.Fatalf("calls = %d, want 5", rec.Int(calls))
	}
}
