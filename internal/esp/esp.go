// Package esp implements AIM's Event Stream Processing nodes (§2.2, §4.2):
// event ingestion and routing to the owning storage server, a fixed-rate
// event source driver for the benchmark, and the architecture-(a) processor
// that performs UPDATE_MATRIX and rule evaluation at the ESP node through
// the storage Get/Put interface with conditional-write retries.
//
// In the paper's preferred deployment (architecture (b), which our
// StorageNode implements), events are shipped to the storage server and
// processed by its colocated ESP threads; the Router below covers that
// path. The GetPutProcessor covers the fully separated deployment (a).
package esp

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/rules"
	"repro/internal/schema"
)

// Router ingests events and forwards each to the storage server owning the
// caller entity (architecture (b): 64 B events cross the wire, not 3 KB
// records).
type Router struct {
	cluster *cluster.Cluster
}

// NewRouter returns a router over the cluster.
func NewRouter(c *cluster.Cluster) *Router { return &Router{cluster: c} }

// Ingest routes one event asynchronously.
func (r *Router) Ingest(ev event.Event) error { return r.cluster.ProcessEventAsync(ev) }

// IngestSync routes one event and waits for processing; it returns the
// number of rule firings.
func (r *Router) IngestSync(ev event.Event) (int, error) { return r.cluster.ProcessEvent(ev) }

// Flush waits until all routed events are processed.
func (r *Router) Flush() error { return r.cluster.FlushEvents() }

// DriverStats reports what a fixed-rate run achieved.
type DriverStats struct {
	// Sent is the number of events handed to the router.
	Sent int
	// Duration is the wall-clock time of the run.
	Duration time.Duration
	// AchievedRate is events per second actually sustained.
	AchievedRate float64
	// TargetRate echoes the configured rate (0 = unthrottled).
	TargetRate float64
}

// Driver replays a synthetic event stream at a fixed rate, the role of the
// paper's dedicated event-generator machine (§5.1).
type Driver struct {
	// Gen produces the events.
	Gen *event.Generator
	// Rate is the target rate in events/second; 0 means as fast as possible.
	Rate float64
	// Sink receives the events (usually Router.Ingest).
	Sink func(event.Event) error
	// Batch is the pacing granularity: events are emitted in groups of this
	// size between rate checks (default 64). Aligning it with a downstream
	// coalescing buffer (e.g. the TCP client's EventBatch) makes the driver
	// emit exactly one wire batch per pacing round.
	Batch int
}

// Run sends events for the given duration (or exactly count events if
// count > 0) and returns the achieved statistics.
func (d *Driver) Run(duration time.Duration, count int) (DriverStats, error) {
	if d.Gen == nil || d.Sink == nil {
		return DriverStats{}, errors.New("esp: driver needs Gen and Sink")
	}
	start := time.Now()
	var ev event.Event
	sent := 0
	// Pace in small batches to keep timer overhead negligible at high rates.
	batch := d.Batch
	if batch <= 0 {
		batch = 64
	}
	for {
		if count > 0 && sent >= count {
			break
		}
		if count <= 0 && time.Since(start) >= duration {
			break
		}
		n := batch
		if count > 0 && count-sent < n {
			n = count - sent
		}
		for i := 0; i < n; i++ {
			d.Gen.Next(&ev)
			if err := d.Sink(ev); err != nil {
				return DriverStats{}, fmt.Errorf("esp: sink: %w", err)
			}
		}
		sent += n
		if d.Rate > 0 {
			// Sleep until the pace catches up with the target rate.
			want := time.Duration(float64(sent) / d.Rate * float64(time.Second))
			if ahead := want - time.Since(start); ahead > 0 {
				time.Sleep(ahead)
			}
		}
	}
	elapsed := time.Since(start)
	return DriverStats{
		Sent:         sent,
		Duration:     elapsed,
		AchievedRate: float64(sent) / elapsed.Seconds(),
		TargetRate:   d.Rate,
	}, nil
}

// GetPutProcessor implements architecture (a): the ESP node fetches the
// Entity Record over the storage interface, applies the event locally,
// writes it back with a conditional write, and evaluates the Business Rules
// — restarting the single-row transaction on version conflicts (§4.6
// footnote 8).
type GetPutProcessor struct {
	sch     *schema.Schema
	storage core.Storage
	engine  *rules.Engine
	factory func(uint64) schema.Record
	// MaxRetries bounds conditional-write restarts (default 10).
	MaxRetries int
}

// NewGetPutProcessor builds the processor. engine may be nil (no rules);
// factory may be nil (bare records).
func NewGetPutProcessor(sch *schema.Schema, storage core.Storage, engine *rules.Engine, factory func(uint64) schema.Record) *GetPutProcessor {
	if factory == nil {
		factory = sch.NewRecord
	}
	return &GetPutProcessor{sch: sch, storage: storage, engine: engine, factory: factory, MaxRetries: 10}
}

// Process applies one event end to end and returns the rule firing count.
func (p *GetPutProcessor) Process(ev event.Event) (int, error) {
	for attempt := 0; attempt <= p.MaxRetries; attempt++ {
		rec, version, found, err := p.storage.Get(ev.Caller)
		if err != nil {
			return 0, err
		}
		if !found {
			rec = p.factory(ev.Caller)
			version = 0
		}
		p.sch.Apply(rec, &ev)
		if err := p.storage.ConditionalPut(rec, version); err != nil {
			if errors.Is(err, core.ErrVersionConflict) {
				continue // restart the single-row transaction
			}
			return 0, err
		}
		if p.engine == nil {
			return 0, nil
		}
		return len(p.engine.Evaluate(&ev, rec)), nil
	}
	return 0, fmt.Errorf("esp: entity %d: conditional write kept conflicting after %d retries", ev.Caller, p.MaxRetries)
}
