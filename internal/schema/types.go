// Package schema defines the Analytics Matrix schema: the set of maintained
// indicators (attributes), their grouping into attribute groups, and the
// compiled update kernel that applies one CDR event to an Entity Record.
//
// The design mirrors §2.1 and §4.3 of the AIM paper: an indicator is a point
// in the Cartesian product of event metrics (count, duration, cost), call
// filters (any, local, long-distance), aggregation functions (count, sum,
// avg, min, max) and aggregation windows (tumbling, event-count tumbling,
// sliding). Interdependent indicators over the same metric and window form an
// attribute group with a single update function that is composed once from
// small building blocks and thereafter called through a function value with
// no per-event schema interpretation — the Go analogue of the paper's
// templated C++ kernel.
//
// Entity Records are flat []uint64 slot arrays. Visible attributes (the
// scannable Analytics-Matrix columns) occupy the leading slots; hidden
// bookkeeping slots (window epochs, aggregation primitives) follow. All
// values are 8-byte slots holding either an int64/uint64 or a float64 bit
// pattern, so the ColumnMap can scan any column without type dispatch.
package schema

import "fmt"

// Type is the logical type of a visible attribute value.
type Type uint8

const (
	// TypeInt64 marks a slot holding a signed 64-bit integer.
	TypeInt64 Type = iota
	// TypeFloat64 marks a slot holding an IEEE-754 double bit pattern.
	TypeFloat64
	// TypeUint64 marks a slot holding an unsigned 64-bit integer (entity ids).
	TypeUint64
	// TypeDictString marks a slot holding a dictionary code for a
	// variable-length string attribute (see Dict).
	TypeDictString
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeInt64:
		return "int64"
	case TypeFloat64:
		return "float64"
	case TypeUint64:
		return "uint64"
	case TypeDictString:
		return "dictstring"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Metric selects which event property an attribute group aggregates.
type Metric uint8

const (
	// MetricCount aggregates the constant 1 per matching event.
	MetricCount Metric = iota
	// MetricDuration aggregates the call duration in seconds.
	MetricDuration
	// MetricCost aggregates the call cost in dollars.
	MetricCost
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricCount:
		return "count"
	case MetricDuration:
		return "duration"
	case MetricCost:
		return "cost"
	default:
		return fmt.Sprintf("Metric(%d)", uint8(m))
	}
}

// kind returns the value kind the metric produces.
func (m Metric) kind() Type {
	if m == MetricCost {
		return TypeFloat64
	}
	return TypeInt64
}

// Filter restricts which events an attribute group observes.
type Filter uint8

const (
	// CallAny matches every event.
	CallAny Filter = iota
	// CallLocal matches local calls only.
	CallLocal
	// CallLongDistance matches long-distance calls only.
	CallLongDistance
)

// String implements fmt.Stringer.
func (f Filter) String() string {
	switch f {
	case CallAny:
		return "any"
	case CallLocal:
		return "local"
	case CallLongDistance:
		return "longdist"
	default:
		return fmt.Sprintf("Filter(%d)", uint8(f))
	}
}

// AggKind is an aggregation function over a metric within a window.
type AggKind uint8

const (
	// AggCount counts matching events.
	AggCount AggKind = iota
	// AggSum sums the metric.
	AggSum
	// AggAvg is the running average (sum/count), materialized as float64.
	AggAvg
	// AggMin is the minimum metric value seen in the window.
	AggMin
	// AggMax is the maximum metric value seen in the window.
	AggMax
)

// String implements fmt.Stringer.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(a))
	}
}

// resultType returns the visible type of the aggregate given the metric.
func (a AggKind) resultType(m Metric) Type {
	switch a {
	case AggCount:
		return TypeInt64
	case AggAvg:
		return TypeFloat64
	default:
		return m.kind()
	}
}

// WindowKind selects the aggregation-window semantics of a group.
type WindowKind uint8

const (
	// WindowTumbling resets aggregates whenever the event timestamp crosses
	// a window boundary (e.g. "today", "this week").
	WindowTumbling WindowKind = iota
	// WindowTumblingCount resets aggregates every Count matching events
	// ("since the last N events").
	WindowTumblingCount
	// WindowSliding approximates a sliding window of DurationMillis using
	// Sub tumbling sub-windows merged on write (see DESIGN.md §2).
	WindowSliding
)

// Window describes an aggregation window.
type Window struct {
	Kind WindowKind
	// DurationMillis is the window width for time-based windows.
	DurationMillis int64
	// Count is the window width for event-count windows.
	Count int64
	// Sub is the number of sub-windows for sliding windows (>= 2).
	Sub int
}

// Common window constructors matching the paper's examples.

// Day returns a tumbling one-day window ("today").
func Day() Window { return Window{Kind: WindowTumbling, DurationMillis: 24 * 3600 * 1000} }

// Week returns a tumbling seven-day window ("this week").
func Week() Window { return Window{Kind: WindowTumbling, DurationMillis: 7 * 24 * 3600 * 1000} }

// Month returns a tumbling 30-day window ("this month").
func Month() Window { return Window{Kind: WindowTumbling, DurationMillis: 30 * 24 * 3600 * 1000} }

// LastEvents returns an event-count tumbling window ("since the last n events").
func LastEvents(n int64) Window { return Window{Kind: WindowTumblingCount, Count: n} }

// SlidingHours returns a sliding window of h hours approximated by sub
// tumbling sub-windows.
func SlidingHours(h int64, sub int) Window {
	return Window{Kind: WindowSliding, DurationMillis: h * 3600 * 1000, Sub: sub}
}

// String implements fmt.Stringer.
func (w Window) String() string {
	switch w.Kind {
	case WindowTumbling:
		return fmt.Sprintf("tumbling(%dms)", w.DurationMillis)
	case WindowTumblingCount:
		return fmt.Sprintf("last(%d events)", w.Count)
	case WindowSliding:
		return fmt.Sprintf("sliding(%dms/%d)", w.DurationMillis, w.Sub)
	default:
		return fmt.Sprintf("Window(kind=%d)", uint8(w.Kind))
	}
}

// validate reports whether the window parameters are usable.
func (w Window) validate() error {
	switch w.Kind {
	case WindowTumbling:
		if w.DurationMillis <= 0 {
			return fmt.Errorf("schema: tumbling window needs positive duration, got %d", w.DurationMillis)
		}
	case WindowTumblingCount:
		if w.Count <= 0 {
			return fmt.Errorf("schema: event-count window needs positive count, got %d", w.Count)
		}
	case WindowSliding:
		if w.DurationMillis <= 0 {
			return fmt.Errorf("schema: sliding window needs positive duration, got %d", w.DurationMillis)
		}
		if w.Sub < 2 {
			return fmt.Errorf("schema: sliding window needs >= 2 sub-windows, got %d", w.Sub)
		}
		if w.DurationMillis%int64(w.Sub) != 0 {
			return fmt.Errorf("schema: sliding window duration %d not divisible by %d sub-windows", w.DurationMillis, w.Sub)
		}
	default:
		return fmt.Errorf("schema: unknown window kind %d", uint8(w.Kind))
	}
	return nil
}
