package schema

import (
	"math"

	"repro/internal/event"
)

// Aggregation primitives maintained per group (per sub-window for sliding
// windows). Visible aggregates are materialized from these; the ingest phase
// touches only primitives, so materialization can be deferred and batched
// (see Schema.ApplyIngest).
const (
	pCount = iota // number of matching events in the window
	pSum          // sum of the metric
	pMin          // minimum metric value
	pMax          // maximum metric value
	numPrims
)

// layoutGroup assigns hidden slots to g starting at slot next and returns
// the next free slot.
func layoutGroup(g *Group, next int) int {
	g.epochSlot = next
	next++
	g.primSets = 1
	g.subEpochAt = -1
	if g.Spec.Window.Kind == WindowSliding {
		g.primSets = g.Spec.Window.Sub
		g.subEpochAt = next
		next += g.Spec.Window.Sub
	}
	need := [numPrims]bool{pCount: true} // count doubles as the emptiness marker
	for _, a := range g.Spec.Aggs {
		switch a {
		case AggSum, AggAvg:
			need[pSum] = true
		case AggMin:
			need[pMin] = true
		case AggMax:
			need[pMax] = true
		}
	}
	for p := 0; p < numPrims; p++ {
		if need[p] {
			g.primAt[p] = next
			next += g.primSets
		} else {
			g.primAt[p] = -1
		}
	}
	return next
}

// arith is the type-specialized arithmetic a group kernel instantiates over.
// The implementations are zero-size structs used as generic type parameters,
// so every call below is statically dispatched and inlinable — the Go
// analogue of the paper's templated building blocks (§4.3), without the
// per-event closure calls of a function-pointer bundle.
type arith interface {
	add(a, b uint64) uint64
	less(a, b uint64) bool
	toFloat(a uint64) float64
	minIdentity() uint64
	maxIdentity() uint64
}

// intArith interprets slot bits as int64.
type intArith struct{}

func (intArith) add(a, b uint64) uint64  { return uint64(int64(a) + int64(b)) }
func (intArith) less(a, b uint64) bool   { return int64(a) < int64(b) }
func (intArith) toFloat(a uint64) float64 { return float64(int64(a)) }
func (intArith) minIdentity() uint64     { return uint64(math.MaxInt64) }
func (intArith) maxIdentity() uint64     { return 1 << 63 } // math.MinInt64

// floatArith interprets slot bits as IEEE-754 float64.
type floatArith struct{}

func (floatArith) add(a, b uint64) uint64 {
	return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
}
func (floatArith) less(a, b uint64) bool {
	return math.Float64frombits(a) < math.Float64frombits(b)
}
func (floatArith) toFloat(a uint64) float64 { return math.Float64frombits(a) }
func (floatArith) minIdentity() uint64      { return math.Float64bits(math.Inf(1)) }
func (floatArith) maxIdentity() uint64      { return math.Float64bits(math.Inf(-1)) }

// groupKernel is the compiled kernel for one attribute group, specialized by
// arithmetic type. Its ingest methods roll the window epoch and update the
// primitives in straight-line code; its materialize methods are pure
// idempotent functions of the primitives (plus rec[SlotLastTimestamp] for
// sliding validity), which is what makes deferred materialization
// byte-identical to the eager per-event path.
type groupKernel[A arith] struct {
	metric Metric
	filter Filter

	countAt, sumAt, minAt, maxAt int
	hasSum, hasMin, hasMax       bool

	epochSlot  int
	subEpochAt int
	primSets   int

	dur   int64  // tumbling: window duration (ms)
	n     uint64 // tumbling-count: window size in events
	sub   int64  // sliding: number of sub-windows
	width int64  // sliding: sub-window width (ms)

	visSlots []int
	aggs     []AggKind
}

func (k *groupKernel[A]) value(ev *event.Event) uint64 {
	switch k.metric {
	case MetricCount:
		return 1
	case MetricDuration:
		return uint64(ev.Duration)
	default: // MetricCost
		return math.Float64bits(ev.Cost)
	}
}

func (k *groupKernel[A]) match(ev *event.Event) bool {
	switch k.filter {
	case CallAny:
		return true
	case CallLocal:
		return !ev.LongDistance
	default: // CallLongDistance
		return ev.LongDistance
	}
}

// reset restores one primitive set to the aggregation identities.
func (k *groupKernel[A]) reset(rec []uint64, set int) {
	var ar A
	rec[k.countAt+set] = 0
	if k.hasSum {
		rec[k.sumAt+set] = 0 // 0 and +0.0 share the zero bit pattern
	}
	if k.hasMin {
		rec[k.minAt+set] = ar.minIdentity()
	}
	if k.hasMax {
		rec[k.maxAt+set] = ar.maxIdentity()
	}
}

// apply folds one matching event's metric value into a primitive set. The
// hasSum/hasMin/hasMax branches test compile-time-constant fields and
// predict perfectly; there are no indirect calls.
func (k *groupKernel[A]) apply(rec []uint64, set int, v uint64) {
	var ar A
	rec[k.countAt+set]++
	if k.hasSum {
		rec[k.sumAt+set] = ar.add(rec[k.sumAt+set], v)
	}
	if k.hasMin && ar.less(v, rec[k.minAt+set]) {
		rec[k.minAt+set] = v
	}
	if k.hasMax && ar.less(rec[k.maxAt+set], v) {
		rec[k.maxAt+set] = v
	}
}

// ingestTumbling is the ingest phase for time-tumbling windows. It reports
// whether the stored primitives changed.
func (k *groupKernel[A]) ingestTumbling(rec []uint64, ev *event.Event) bool {
	epoch := uint64(ev.Timestamp / k.dur)
	changed := false
	if rec[k.epochSlot] != epoch {
		rec[k.epochSlot] = epoch
		k.reset(rec, 0)
		changed = true
	}
	if k.match(ev) {
		k.apply(rec, 0, k.value(ev))
		changed = true
	}
	return changed
}

// ingestCount is the ingest phase for event-count tumbling windows.
func (k *groupKernel[A]) ingestCount(rec []uint64, ev *event.Event) bool {
	if !k.match(ev) {
		return false
	}
	if rec[k.epochSlot] >= k.n {
		k.reset(rec, 0)
		rec[k.epochSlot] = 0
	}
	k.apply(rec, 0, k.value(ev))
	rec[k.epochSlot]++
	return true
}

// ingestSliding is the ingest phase for sliding windows. It always reports
// changed: the set of live sub-windows depends on the event timestamp, so
// visible values can move even when no primitive was touched.
func (k *groupKernel[A]) ingestSliding(rec []uint64, ev *event.Event) bool {
	subIdx := ev.Timestamp / k.width
	j := int(subIdx % k.sub)
	if rec[k.subEpochAt+j] != uint64(subIdx) {
		rec[k.subEpochAt+j] = uint64(subIdx)
		k.reset(rec, j)
	}
	if k.match(ev) {
		k.apply(rec, j, k.value(ev))
	}
	return true
}

// materializeFixed publishes the visible aggregates of a single-set window
// (tumbling or tumbling-count) from its primitives.
func (k *groupKernel[A]) materializeFixed(rec []uint64) {
	var sum, mn, mx uint64
	total := rec[k.countAt]
	if k.hasSum {
		sum = rec[k.sumAt]
	}
	if k.hasMin {
		mn = rec[k.minAt]
	}
	if k.hasMax {
		mx = rec[k.maxAt]
	}
	k.emit(rec, total, sum, mn, mx)
}

// materializeSliding folds the live sub-windows — those whose epoch lies in
// (subIdx-sub, subIdx] for the record's last event time — and publishes the
// visible aggregates.
func (k *groupKernel[A]) materializeSliding(rec []uint64) {
	var ar A
	subIdx := int64(rec[SlotLastTimestamp]) / k.width
	lo := subIdx - k.sub
	var total, sum uint64
	mn, mx := ar.minIdentity(), ar.maxIdentity()
	for set := 0; set < k.primSets; set++ {
		e := int64(rec[k.subEpochAt+set])
		if e <= lo || e > subIdx {
			continue
		}
		total += rec[k.countAt+set]
		if k.hasSum {
			sum = ar.add(sum, rec[k.sumAt+set])
		}
		if k.hasMin && ar.less(rec[k.minAt+set], mn) {
			mn = rec[k.minAt+set]
		}
		if k.hasMax && ar.less(mx, rec[k.maxAt+set]) {
			mx = rec[k.maxAt+set]
		}
	}
	k.emit(rec, total, sum, mn, mx)
}

// emit writes the visible aggregate slots from folded primitives.
func (k *groupKernel[A]) emit(rec []uint64, total, sum, mn, mx uint64) {
	var ar A
	for i, a := range k.aggs {
		slot := k.visSlots[i]
		switch a {
		case AggCount:
			rec[slot] = total
		case AggSum:
			rec[slot] = sum
		case AggAvg:
			if total == 0 {
				rec[slot] = 0
			} else {
				rec[slot] = math.Float64bits(ar.toFloat(sum) / float64(total))
			}
		case AggMin:
			if total == 0 {
				rec[slot] = 0
			} else {
				rec[slot] = mn
			}
		case AggMax:
			if total == 0 {
				rec[slot] = 0
			} else {
				rec[slot] = mx
			}
		}
	}
}

// compileGroup builds g.ingest and g.materialize, selecting the arithmetic
// specialization by the metric's value type.
func compileGroup(g *Group) {
	if g.Spec.Metric.kind() == TypeFloat64 {
		bindKernel[floatArith](g)
	} else {
		bindKernel[intArith](g)
	}
}

func bindKernel[A arith](g *Group) {
	k := &groupKernel[A]{
		metric:     g.Spec.Metric,
		filter:     g.Spec.Filter,
		countAt:    g.primAt[pCount],
		sumAt:      g.primAt[pSum],
		minAt:      g.primAt[pMin],
		maxAt:      g.primAt[pMax],
		hasSum:     g.primAt[pSum] >= 0,
		hasMin:     g.primAt[pMin] >= 0,
		hasMax:     g.primAt[pMax] >= 0,
		epochSlot:  g.epochSlot,
		subEpochAt: g.subEpochAt,
		primSets:   g.primSets,
		visSlots:   g.visSlots,
		aggs:       g.Spec.Aggs,
	}
	switch g.Spec.Window.Kind {
	case WindowTumbling:
		k.dur = g.Spec.Window.DurationMillis
		g.ingest = k.ingestTumbling
		g.materialize = k.materializeFixed
	case WindowTumblingCount:
		k.n = uint64(g.Spec.Window.Count)
		g.ingest = k.ingestCount
		g.materialize = k.materializeFixed
	case WindowSliding:
		k.sub = int64(g.Spec.Window.Sub)
		k.width = g.Spec.Window.DurationMillis / k.sub
		g.ingest = k.ingestSliding
		g.materialize = k.materializeSliding
	}
}
