package schema

import (
	"math"

	"repro/internal/event"
)

// Aggregation primitives maintained per group (per sub-window for sliding
// windows). Visible aggregates are materialized from these after each
// update, which keeps one uniform kernel shape for all window kinds.
const (
	pCount = iota // number of matching events in the window
	pSum          // sum of the metric
	pMin          // minimum metric value
	pMax          // maximum metric value
	numPrims
)

// layoutGroup assigns hidden slots to g starting at slot next and returns
// the next free slot.
func layoutGroup(g *Group, next int) int {
	g.epochSlot = next
	next++
	g.primSets = 1
	g.subEpochAt = -1
	if g.Spec.Window.Kind == WindowSliding {
		g.primSets = g.Spec.Window.Sub
		g.subEpochAt = next
		next += g.Spec.Window.Sub
	}
	need := [numPrims]bool{pCount: true} // count doubles as the emptiness marker
	for _, a := range g.Spec.Aggs {
		switch a {
		case AggSum, AggAvg:
			need[pSum] = true
		case AggMin:
			need[pMin] = true
		case AggMax:
			need[pMax] = true
		}
	}
	for p := 0; p < numPrims; p++ {
		if need[p] {
			g.primAt[p] = next
			next += g.primSets
		} else {
			g.primAt[p] = -1
		}
	}
	return next
}

// kernelOps bundles the type-specialized arithmetic a group kernel needs.
// The right ops are selected once at compile time, so the per-event path
// performs no type dispatch — the Go analogue of the paper's templated
// building blocks (§4.3).
type kernelOps struct {
	add         func(a, b uint64) uint64
	less        func(a, b uint64) bool
	toFloat     func(a uint64) float64
	minIdentity uint64
	maxIdentity uint64
}

var intOps = kernelOps{
	add:         func(a, b uint64) uint64 { return uint64(int64(a) + int64(b)) },
	less:        func(a, b uint64) bool { return int64(a) < int64(b) },
	toFloat:     func(a uint64) float64 { return float64(int64(a)) },
	minIdentity: uint64(math.MaxInt64),
	maxIdentity: 1 << 63, // bit pattern of math.MinInt64
}

var floatOps = kernelOps{
	add: func(a, b uint64) uint64 {
		return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
	},
	less: func(a, b uint64) bool {
		return math.Float64frombits(a) < math.Float64frombits(b)
	},
	toFloat:     func(a uint64) float64 { return math.Float64frombits(a) },
	minIdentity: math.Float64bits(math.Inf(1)),
	maxIdentity: math.Float64bits(math.Inf(-1)),
}

// compileGroup builds g.update from the building blocks: an event extractor
// (metric × filter), window maintenance, primitive application, and visible
// materialization.
func compileGroup(g *Group) {
	ops := intOps
	if g.Spec.Metric.kind() == TypeFloat64 {
		ops = floatOps
	}

	// Building block 1: metric extraction.
	var value func(ev *event.Event) uint64
	switch g.Spec.Metric {
	case MetricCount:
		value = func(*event.Event) uint64 { return 1 }
	case MetricDuration:
		value = func(ev *event.Event) uint64 { return uint64(ev.Duration) }
	case MetricCost:
		value = func(ev *event.Event) uint64 { return math.Float64bits(ev.Cost) }
	}

	// Building block 2: event filter.
	var match func(ev *event.Event) bool
	switch g.Spec.Filter {
	case CallAny:
		match = func(*event.Event) bool { return true }
	case CallLocal:
		match = func(ev *event.Event) bool { return !ev.LongDistance }
	case CallLongDistance:
		match = func(ev *event.Event) bool { return ev.LongDistance }
	}

	countAt, sumAt, minAt, maxAt := g.primAt[pCount], g.primAt[pSum], g.primAt[pMin], g.primAt[pMax]

	// Building block 3: reset one primitive set to aggregation identities.
	reset := func(rec []uint64, set int) {
		rec[countAt+set] = 0
		if sumAt >= 0 {
			rec[sumAt+set] = 0 // 0 and +0.0 share the zero bit pattern
		}
		if minAt >= 0 {
			rec[minAt+set] = ops.minIdentity
		}
		if maxAt >= 0 {
			rec[maxAt+set] = ops.maxIdentity
		}
	}

	// Building block 4: apply one matching event to a primitive set.
	apply := func(rec []uint64, set int, v uint64) {
		rec[countAt+set]++
		if sumAt >= 0 {
			rec[sumAt+set] = ops.add(rec[sumAt+set], v)
		}
		if minAt >= 0 && ops.less(v, rec[minAt+set]) {
			rec[minAt+set] = v
		}
		if maxAt >= 0 && ops.less(rec[maxAt+set], v) {
			rec[maxAt+set] = v
		}
	}

	// Building block 5: materialize the visible aggregates. For sliding
	// windows, valid is the per-set validity predicate for the current
	// event time; for tumbling windows every group has exactly one set.
	materialize := func(rec []uint64, valid func(set int) bool) {
		var total uint64
		var sum uint64
		mn, mx := ops.minIdentity, ops.maxIdentity
		for set := 0; set < g.primSets; set++ {
			if valid != nil && !valid(set) {
				continue
			}
			total += rec[countAt+set]
			if sumAt >= 0 {
				sum = ops.add(sum, rec[sumAt+set])
			}
			if minAt >= 0 && ops.less(rec[minAt+set], mn) {
				mn = rec[minAt+set]
			}
			if maxAt >= 0 && ops.less(mx, rec[maxAt+set]) {
				mx = rec[maxAt+set]
			}
		}
		for i, a := range g.Spec.Aggs {
			slot := g.visSlots[i]
			switch a {
			case AggCount:
				rec[slot] = total
			case AggSum:
				rec[slot] = sum
			case AggAvg:
				if total == 0 {
					rec[slot] = 0
				} else {
					rec[slot] = math.Float64bits(ops.toFloat(sum) / float64(total))
				}
			case AggMin:
				if total == 0 {
					rec[slot] = 0
				} else {
					rec[slot] = mn
				}
			case AggMax:
				if total == 0 {
					rec[slot] = 0
				} else {
					rec[slot] = mx
				}
			}
		}
	}

	epochSlot := g.epochSlot
	switch g.Spec.Window.Kind {
	case WindowTumbling:
		dur := g.Spec.Window.DurationMillis
		g.update = func(rec []uint64, ev *event.Event) {
			epoch := uint64(ev.Timestamp / dur)
			changed := false
			if rec[epochSlot] != epoch {
				rec[epochSlot] = epoch
				reset(rec, 0)
				changed = true
			}
			if match(ev) {
				apply(rec, 0, value(ev))
				changed = true
			}
			if changed {
				materialize(rec, nil)
			}
		}

	case WindowTumblingCount:
		n := uint64(g.Spec.Window.Count)
		g.update = func(rec []uint64, ev *event.Event) {
			if !match(ev) {
				return
			}
			if rec[epochSlot] >= n {
				reset(rec, 0)
				rec[epochSlot] = 0
			}
			apply(rec, 0, value(ev))
			rec[epochSlot]++
			materialize(rec, nil)
		}

	case WindowSliding:
		sub := int64(g.Spec.Window.Sub)
		width := g.Spec.Window.DurationMillis / sub
		subEpochAt := g.subEpochAt
		g.update = func(rec []uint64, ev *event.Event) {
			subIdx := ev.Timestamp / width
			j := int(subIdx % sub)
			if rec[subEpochAt+j] != uint64(subIdx) {
				rec[subEpochAt+j] = uint64(subIdx)
				reset(rec, j)
			}
			if match(ev) {
				apply(rec, j, value(ev))
			}
			// A sub-window is live iff its epoch lies in (subIdx-sub, subIdx].
			lo := subIdx - sub
			materialize(rec, func(set int) bool {
				e := int64(rec[subEpochAt+set])
				return e > lo && e <= subIdx
			})
		}
	}
}
