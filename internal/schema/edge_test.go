package schema

import (
	"strings"
	"testing"

	"repro/internal/event"
)

func TestCustomAttrNames(t *testing.T) {
	s, err := NewBuilder().AddGroup(GroupSpec{
		Name: "ignored", Metric: MetricCost, Window: Day(),
		Aggs:      []AggKind{AggSum, AggMax},
		AttrNames: []string{"total_cost_today", "most_expensive_call_today"},
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AttrIndex("total_cost_today"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AttrIndex("most_expensive_call_today"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AttrIndex("ignored_sum"); err == nil {
		t.Fatal("generated name exists despite override")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid spec")
		}
	}()
	NewBuilder().AddGroup(GroupSpec{Name: "bad", Metric: MetricCost, Window: Day()}).MustBuild()
}

func TestMonthAndHourWindows(t *testing.T) {
	s := NewBuilder().AddGroup(GroupSpec{
		Name: "cost_month", Metric: MetricCost, Window: Month(),
		Aggs: []AggKind{AggSum},
	}).MustBuild()
	rec := s.NewRecord(1)
	monthMs := int64(30 * 24 * 3600 * 1000)
	base := 10 * monthMs
	s.Apply(rec, &event.Event{Caller: 1, Timestamp: base, Cost: 5})
	s.Apply(rec, &event.Event{Caller: 1, Timestamp: base + monthMs - 1, Cost: 3})
	if got := rec.Float(s.MustAttrIndex("cost_month_sum")); got != 8 {
		t.Fatalf("month sum = %v", got)
	}
	s.Apply(rec, &event.Event{Caller: 1, Timestamp: base + monthMs, Cost: 1})
	if got := rec.Float(s.MustAttrIndex("cost_month_sum")); got != 1 {
		t.Fatalf("month sum after rollover = %v", got)
	}
}

func TestGroupUpdateDirect(t *testing.T) {
	s := NewBuilder().AddGroup(GroupSpec{
		Name: "calls", Metric: MetricCount, Window: Day(),
		Aggs: []AggKind{AggCount},
	}).MustBuild()
	rec := s.NewRecord(1)
	ev := &event.Event{Caller: 1, Timestamp: 100 * 24 * 3600 * 1000}
	s.Groups[0].Update(rec, ev)
	if rec.Int(s.MustAttrIndex("calls_count")) != 1 {
		t.Fatal("direct group update failed")
	}
}

func TestStringerCoverage(t *testing.T) {
	cases := []string{
		TypeInt64.String(), TypeFloat64.String(), TypeUint64.String(), TypeDictString.String(),
		Type(99).String(),
		MetricCount.String(), MetricDuration.String(), MetricCost.String(), Metric(99).String(),
		CallAny.String(), CallLocal.String(), CallLongDistance.String(), Filter(99).String(),
		AggCount.String(), AggSum.String(), AggAvg.String(), AggMin.String(), AggMax.String(), AggKind(99).String(),
		Day().String(), LastEvents(5).String(), SlidingHours(24, 4).String(),
		Window{Kind: WindowKind(9)}.String(),
	}
	for _, s := range cases {
		if s == "" {
			t.Fatal("empty Stringer output")
		}
	}
	if !strings.Contains(Day().String(), "tumbling") {
		t.Fatalf("Day window string: %s", Day().String())
	}
}

func TestRecordUintAndSetters(t *testing.T) {
	s := NewBuilder().AddStatic(StaticSpec{Name: "x", Type: TypeUint64}).MustBuild()
	rec := s.NewRecord(5)
	xi := s.MustAttrIndex("x")
	rec[xi] = 77
	if rec.Uint(xi) != 77 {
		t.Fatal("Uint accessor")
	}
	rec.SetFloat(xi, 1.5)
	if rec.Float(xi) != 1.5 {
		t.Fatal("SetFloat/Float")
	}
	if rec.Value(xi, TypeFloat64) != 1.5 {
		t.Fatal("Value float")
	}
	rec.SetInt(xi, -3)
	if rec.Value(xi, TypeInt64) != -3 {
		t.Fatal("Value int")
	}
	if rec.Value(SlotEntityID, TypeUint64) != 5 {
		t.Fatal("Value uint")
	}
	if EncodedSize(4) != 32 {
		t.Fatal("EncodedSize")
	}
	if numBuiltin != 2 {
		t.Fatal("builtin count drifted")
	}
}
