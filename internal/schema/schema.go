package schema

import (
	"fmt"
	mathbits "math/bits"

	"repro/internal/event"
)

// Builtin visible attribute slots present in every Analytics Matrix.
const (
	// SlotEntityID is the visible slot holding the entity id (uint64).
	SlotEntityID = 0
	// SlotLastTimestamp is the visible slot holding the timestamp of the
	// last event applied to the record (int64 milliseconds).
	SlotLastTimestamp = 1
	// numBuiltin is the number of builtin visible attributes.
	numBuiltin = 2
)

// Attr describes one visible Analytics-Matrix attribute (a scannable column).
type Attr struct {
	// Name is the unique attribute name, e.g. "calls_this_week_count".
	Name string
	// Type is the logical value type of the column.
	Type Type
	// Slot is the record slot (== column index) of the attribute.
	Slot int
	// Group is the index of the owning attribute group in Schema.Groups,
	// or -1 for builtin attributes.
	Group int
	// Agg is the aggregate the attribute materializes (meaningful only when
	// Group >= 0).
	Agg AggKind
}

// GroupSpec declares one attribute group for the Builder: a metric and a
// filter aggregated under a window by one or more aggregation functions.
type GroupSpec struct {
	// Name is the base name; attribute names default to Name + "_" + agg.
	Name string
	// Metric selects the aggregated event property.
	Metric Metric
	// Filter restricts which events the group observes.
	Filter Filter
	// Window is the aggregation window.
	Window Window
	// Aggs lists the aggregates to materialize; duplicates are rejected.
	Aggs []AggKind
	// AttrNames optionally overrides the generated attribute names; if set
	// it must be parallel to Aggs.
	AttrNames []string
}

// Group is a compiled attribute group. Its update function applies a single
// event to the group's slots in an Entity Record.
type Group struct {
	Spec GroupSpec

	// visSlots[i] is the visible slot of Spec.Aggs[i].
	visSlots []int
	// Hidden bookkeeping (see update.go for the layout).
	epochSlot  int    // tumbling: window index; count: events-in-window
	subEpochAt int    // sliding: first of Sub sub-epoch slots
	primAt     [4]int // base slot per primitive (count,sum,min,max); -1 if absent
	primSets   int    // 1 for tumbling/count windows, Sub for sliding

	// Split-phase kernels (see update.go). ingest rolls the window and
	// updates hidden primitives, reporting whether they changed;
	// materialize publishes the visible aggregate slots from the
	// primitives. materialize is pure and idempotent — running it once
	// after a run of ingests yields the same bytes as running it after
	// every ingest.
	ingest      func(rec []uint64, ev *event.Event) bool
	materialize func(rec []uint64)
}

// Update applies ev to the group's portion of rec: ingest followed by
// materialize when anything visible could have moved.
func (g *Group) Update(rec []uint64, ev *event.Event) {
	if g.ingest(rec, ev) {
		g.materialize(rec)
	}
}

// Ingest runs only the group's ingest phase (epoch roll + primitive
// update), reporting whether the stored primitives changed. Callers that
// defer materialization must call Materialize before the record becomes
// visible to readers.
func (g *Group) Ingest(rec []uint64, ev *event.Event) bool { return g.ingest(rec, ev) }

// Materialize publishes the group's visible aggregates from its primitives
// (and rec's last-event timestamp, for sliding validity).
func (g *Group) Materialize(rec []uint64) { g.materialize(rec) }

// Schema is a compiled Analytics-Matrix schema.
type Schema struct {
	// Attrs are the visible attributes, in slot order. Attrs[i].Slot == i.
	Attrs []Attr
	// Groups are the compiled attribute groups.
	Groups []Group
	// Slots is the total number of record slots (visible + hidden).
	Slots int
	// VersionSlot is the hidden slot holding the record's modification
	// version, used by the storage layer's conditional writes (§4.6,
	// footnote 8). It travels with the record through delta and main.
	VersionSlot int

	byName map[string]int
	dicts  map[int]*Dict // per-attribute dictionaries for TypeDictString
}

// StaticSpec declares a segmentation attribute (§2.1): a visible column that
// is not event-driven — e.g. a dimension foreign key like zip or
// subscription type — set when the Entity Record is created and updatable
// only through explicit Puts.
type StaticSpec struct {
	Name string
	Type Type
}

// Builder accumulates group specs and compiles them into a Schema.
type Builder struct {
	statics []StaticSpec
	specs   []GroupSpec
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddGroup appends a group spec. It returns the builder for chaining.
func (b *Builder) AddGroup(spec GroupSpec) *Builder {
	b.specs = append(b.specs, spec)
	return b
}

// AddStatic appends a segmentation-attribute spec. Static attributes are
// laid out before all event-driven attributes.
func (b *Builder) AddStatic(spec StaticSpec) *Builder {
	b.statics = append(b.statics, spec)
	return b
}

// NumGroups returns the number of group specs added so far.
func (b *Builder) NumGroups() int { return len(b.specs) }

// Build validates all specs, lays out record slots, compiles the per-group
// update functions and returns the resulting Schema.
func (b *Builder) Build() (*Schema, error) {
	s := &Schema{byName: make(map[string]int), dicts: make(map[int]*Dict)}
	s.Attrs = append(s.Attrs,
		Attr{Name: "entity_id", Type: TypeUint64, Slot: SlotEntityID, Group: -1},
		Attr{Name: "last_timestamp", Type: TypeInt64, Slot: SlotLastTimestamp, Group: -1},
	)

	// Static segmentation attributes come first, in declaration order.
	for _, st := range b.statics {
		slot := len(s.Attrs)
		s.Attrs = append(s.Attrs, Attr{
			Name: st.Name, Type: st.Type, Slot: slot, Group: -1,
		})
		if st.Type == TypeDictString {
			s.dicts[slot] = NewDict()
		}
	}

	// First pass: visible attributes, in declaration order.
	for gi, spec := range b.specs {
		if err := spec.Window.validate(); err != nil {
			return nil, fmt.Errorf("group %q: %w", spec.Name, err)
		}
		if len(spec.Aggs) == 0 {
			return nil, fmt.Errorf("schema: group %q has no aggregates", spec.Name)
		}
		if spec.AttrNames != nil && len(spec.AttrNames) != len(spec.Aggs) {
			return nil, fmt.Errorf("schema: group %q: %d names for %d aggregates",
				spec.Name, len(spec.AttrNames), len(spec.Aggs))
		}
		seen := make(map[AggKind]bool, len(spec.Aggs))
		g := Group{Spec: spec}
		for ai, agg := range spec.Aggs {
			if seen[agg] {
				return nil, fmt.Errorf("schema: group %q: duplicate aggregate %v", spec.Name, agg)
			}
			seen[agg] = true
			if agg == AggMin || agg == AggMax {
				if spec.Metric == MetricCount {
					return nil, fmt.Errorf("schema: group %q: %v over the count metric is meaningless", spec.Name, agg)
				}
			}
			name := fmt.Sprintf("%s_%s", spec.Name, agg)
			if spec.AttrNames != nil {
				name = spec.AttrNames[ai]
			}
			slot := len(s.Attrs)
			s.Attrs = append(s.Attrs, Attr{
				Name:  name,
				Type:  agg.resultType(spec.Metric),
				Slot:  slot,
				Group: gi,
				Agg:   agg,
			})
			g.visSlots = append(g.visSlots, slot)
		}
		s.Groups = append(s.Groups, g)
	}

	for i, a := range s.Attrs {
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate attribute name %q", a.Name)
		}
		s.byName[a.Name] = i
	}

	// Second pass: hidden slots and kernel compilation.
	next := len(s.Attrs)
	for gi := range s.Groups {
		g := &s.Groups[gi]
		next = layoutGroup(g, next)
		compileGroup(g)
	}
	s.VersionSlot = next
	next++
	s.Slots = next
	return s, nil
}

// MustBuild is Build but panics on error; intended for static schemas in
// tests and examples.
func (b *Builder) MustBuild() *Schema {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// NumAttrs returns the number of visible attributes (scannable columns).
func (s *Schema) NumAttrs() int { return len(s.Attrs) }

// AttrIndex returns the slot of the named visible attribute, or an error.
func (s *Schema) AttrIndex(name string) (int, error) {
	i, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("schema: unknown attribute %q", name)
	}
	return i, nil
}

// MustAttrIndex is AttrIndex but panics on unknown names.
func (s *Schema) MustAttrIndex(name string) int {
	i, err := s.AttrIndex(name)
	if err != nil {
		panic(err)
	}
	return i
}

// RecordBytes returns the record size in bytes (all slots).
func (s *Schema) RecordBytes() int { return s.Slots * 8 }

// NewRecord allocates a fresh Entity Record for the given entity.
func (s *Schema) NewRecord(entityID uint64) Record {
	rec := make(Record, s.Slots)
	rec[SlotEntityID] = entityID
	return rec
}

// Apply applies one event to rec: it stamps the last-event timestamp and
// runs every attribute group's update (ingest + materialize). This is the
// body of the paper's UPDATE_MATRIX inner loop (Algorithm 1, steps 4-5).
func (s *Schema) Apply(rec Record, ev *event.Event) {
	rec[SlotLastTimestamp] = uint64(ev.Timestamp)
	for i := range s.Groups {
		s.Groups[i].Update(rec, ev)
	}
}

// ApplyIngest applies one event's ingest phase only: the last-event
// timestamp is stamped and every group's primitives are updated, but no
// visible aggregate is published. dirty, when non-nil, must hold
// GroupMaskWords() words; the bit of each group whose primitives changed is
// OR-ed in, so a caller can batch several ingests and then materialize only
// what moved. The record must not be read through visible aggregate slots
// until MaterializeAll (or MaterializeDirty covering all dirty groups) has
// run.
func (s *Schema) ApplyIngest(rec Record, ev *event.Event, dirty []uint64) {
	rec[SlotLastTimestamp] = uint64(ev.Timestamp)
	if dirty == nil {
		for i := range s.Groups {
			s.Groups[i].ingest(rec, ev)
		}
		return
	}
	for i := range s.Groups {
		if s.Groups[i].ingest(rec, ev) {
			dirty[i>>6] |= 1 << uint(i&63)
		}
	}
}

// MaterializeAll publishes every group's visible aggregates.
func (s *Schema) MaterializeAll(rec Record) {
	for i := range s.Groups {
		s.Groups[i].materialize(rec)
	}
}

// MaterializeDirty materializes every group whose dirty bit is set —
// restricted to sel when sel is non-nil — and clears the bits it consumed.
// Bits outside sel stay set, so a later call (typically with sel == nil,
// before the record is stored) finishes the job.
func (s *Schema) MaterializeDirty(rec Record, dirty []uint64, sel *GroupSet) {
	for wi := range dirty {
		w := dirty[wi]
		if sel != nil {
			w &= sel.bits[wi]
		}
		if w == 0 {
			continue
		}
		dirty[wi] &^= w
		base := wi * 64
		for w != 0 {
			b := mathbits.TrailingZeros64(w)
			s.Groups[base+b].materialize(rec)
			w &= w - 1
		}
	}
}

// GroupMaskWords returns the number of 64-bit words a dirty-group bitmask
// for this schema needs.
func (s *Schema) GroupMaskWords() int { return (len(s.Groups) + 63) / 64 }

// GroupSet is a bitset over a schema's attribute groups, used to scope lazy
// materialization to the groups a reader (e.g. the Business Rule set)
// actually consumes.
type GroupSet struct {
	bits []uint64
}

// GroupSetForAttrs returns the set of groups owning the given visible
// attribute slots. Builtin and static attributes (which no group
// materializes) are ignored; out-of-range slots are ignored too, since rule
// validation already rejects them.
func (s *Schema) GroupSetForAttrs(attrs []int) *GroupSet {
	gs := &GroupSet{bits: make([]uint64, s.GroupMaskWords())}
	for _, a := range attrs {
		if a < 0 || a >= len(s.Attrs) {
			continue
		}
		if gi := s.Attrs[a].Group; gi >= 0 {
			gs.bits[gi>>6] |= 1 << uint(gi&63)
		}
	}
	return gs
}

// Len reports the number of groups in the set.
func (gs *GroupSet) Len() int {
	n := 0
	for _, w := range gs.bits {
		n += mathbits.OnesCount64(w)
	}
	return n
}
