package schema

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Record is an Entity Record: one row of the Analytics Matrix, stored as a
// flat slice of 8-byte slots. The leading Schema.NumAttrs() slots are the
// visible columns; the rest is window/aggregate bookkeeping.
type Record []uint64

// EntityID returns the record's entity id.
func (r Record) EntityID() uint64 { return r[SlotEntityID] }

// LastTimestamp returns the timestamp of the last applied event, in
// milliseconds since the Unix epoch.
func (r Record) LastTimestamp() int64 { return int64(r[SlotLastTimestamp]) }

// Int returns the slot at attribute index i interpreted as int64.
func (r Record) Int(i int) int64 { return int64(r[i]) }

// Uint returns the slot at attribute index i interpreted as uint64.
func (r Record) Uint(i int) uint64 { return r[i] }

// Float returns the slot at attribute index i interpreted as float64.
func (r Record) Float(i int) float64 { return math.Float64frombits(r[i]) }

// SetInt stores an int64 into slot i.
func (r Record) SetInt(i int, v int64) { r[i] = uint64(v) }

// SetFloat stores a float64 into slot i.
func (r Record) SetFloat(i int, v float64) { r[i] = math.Float64bits(v) }

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	c := make(Record, len(r))
	copy(c, r)
	return c
}

// Value returns the slot at attribute index i as a float64 regardless of the
// attribute's logical type, using t to pick the conversion. Query aggregation
// uses this to work in float64 space.
func (r Record) Value(i int, t Type) float64 {
	switch t {
	case TypeFloat64:
		return math.Float64frombits(r[i])
	case TypeUint64, TypeDictString:
		return float64(r[i])
	default:
		return float64(int64(r[i]))
	}
}

// EncodedSize returns the wire size of a record with n slots.
func EncodedSize(n int) int { return n * 8 }

// EncodeRecord writes rec into dst in little-endian slot order and returns
// the number of bytes written. dst must be at least EncodedSize(len(rec)).
func EncodeRecord(rec Record, dst []byte) int {
	for i, w := range rec {
		binary.LittleEndian.PutUint64(dst[i*8:], w)
	}
	return len(rec) * 8
}

// DecodeRecord parses a record of n slots from src.
func DecodeRecord(src []byte, n int) (Record, error) {
	if len(src) < n*8 {
		return nil, fmt.Errorf("schema: short record frame: %d < %d bytes", len(src), n*8)
	}
	rec := make(Record, n)
	for i := range rec {
		rec[i] = binary.LittleEndian.Uint64(src[i*8:])
	}
	return rec, nil
}
