package schema

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/event"
)

// --- Seed oracle -----------------------------------------------------------
//
// oracleCompile is the closure-based group kernel this package shipped with
// before the split-phase rewrite, kept verbatim as the equivalence oracle:
// one update function per group doing ingest + eager materialize.

type oracleOps struct {
	add         func(a, b uint64) uint64
	less        func(a, b uint64) bool
	toFloat     func(a uint64) float64
	minIdentity uint64
	maxIdentity uint64
}

var oracleIntOps = oracleOps{
	add:         func(a, b uint64) uint64 { return uint64(int64(a) + int64(b)) },
	less:        func(a, b uint64) bool { return int64(a) < int64(b) },
	toFloat:     func(a uint64) float64 { return float64(int64(a)) },
	minIdentity: uint64(math.MaxInt64),
	maxIdentity: 1 << 63,
}

var oracleFloatOps = oracleOps{
	add: func(a, b uint64) uint64 {
		return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
	},
	less: func(a, b uint64) bool {
		return math.Float64frombits(a) < math.Float64frombits(b)
	},
	toFloat:     func(a uint64) float64 { return math.Float64frombits(a) },
	minIdentity: math.Float64bits(math.Inf(1)),
	maxIdentity: math.Float64bits(math.Inf(-1)),
}

func oracleCompile(g *Group) func(rec []uint64, ev *event.Event) {
	ops := oracleIntOps
	if g.Spec.Metric.kind() == TypeFloat64 {
		ops = oracleFloatOps
	}
	var value func(ev *event.Event) uint64
	switch g.Spec.Metric {
	case MetricCount:
		value = func(*event.Event) uint64 { return 1 }
	case MetricDuration:
		value = func(ev *event.Event) uint64 { return uint64(ev.Duration) }
	case MetricCost:
		value = func(ev *event.Event) uint64 { return math.Float64bits(ev.Cost) }
	}
	var match func(ev *event.Event) bool
	switch g.Spec.Filter {
	case CallAny:
		match = func(*event.Event) bool { return true }
	case CallLocal:
		match = func(ev *event.Event) bool { return !ev.LongDistance }
	case CallLongDistance:
		match = func(ev *event.Event) bool { return ev.LongDistance }
	}
	countAt, sumAt, minAt, maxAt := g.primAt[pCount], g.primAt[pSum], g.primAt[pMin], g.primAt[pMax]
	reset := func(rec []uint64, set int) {
		rec[countAt+set] = 0
		if sumAt >= 0 {
			rec[sumAt+set] = 0
		}
		if minAt >= 0 {
			rec[minAt+set] = ops.minIdentity
		}
		if maxAt >= 0 {
			rec[maxAt+set] = ops.maxIdentity
		}
	}
	apply := func(rec []uint64, set int, v uint64) {
		rec[countAt+set]++
		if sumAt >= 0 {
			rec[sumAt+set] = ops.add(rec[sumAt+set], v)
		}
		if minAt >= 0 && ops.less(v, rec[minAt+set]) {
			rec[minAt+set] = v
		}
		if maxAt >= 0 && ops.less(rec[maxAt+set], v) {
			rec[maxAt+set] = v
		}
	}
	materialize := func(rec []uint64, valid func(set int) bool) {
		var total uint64
		var sum uint64
		mn, mx := ops.minIdentity, ops.maxIdentity
		for set := 0; set < g.primSets; set++ {
			if valid != nil && !valid(set) {
				continue
			}
			total += rec[countAt+set]
			if sumAt >= 0 {
				sum = ops.add(sum, rec[sumAt+set])
			}
			if minAt >= 0 && ops.less(rec[minAt+set], mn) {
				mn = rec[minAt+set]
			}
			if maxAt >= 0 && ops.less(mx, rec[maxAt+set]) {
				mx = rec[maxAt+set]
			}
		}
		for i, a := range g.Spec.Aggs {
			slot := g.visSlots[i]
			switch a {
			case AggCount:
				rec[slot] = total
			case AggSum:
				rec[slot] = sum
			case AggAvg:
				if total == 0 {
					rec[slot] = 0
				} else {
					rec[slot] = math.Float64bits(ops.toFloat(sum) / float64(total))
				}
			case AggMin:
				if total == 0 {
					rec[slot] = 0
				} else {
					rec[slot] = mn
				}
			case AggMax:
				if total == 0 {
					rec[slot] = 0
				} else {
					rec[slot] = mx
				}
			}
		}
	}
	epochSlot := g.epochSlot
	switch g.Spec.Window.Kind {
	case WindowTumbling:
		dur := g.Spec.Window.DurationMillis
		return func(rec []uint64, ev *event.Event) {
			epoch := uint64(ev.Timestamp / dur)
			changed := false
			if rec[epochSlot] != epoch {
				rec[epochSlot] = epoch
				reset(rec, 0)
				changed = true
			}
			if match(ev) {
				apply(rec, 0, value(ev))
				changed = true
			}
			if changed {
				materialize(rec, nil)
			}
		}
	case WindowTumblingCount:
		n := uint64(g.Spec.Window.Count)
		return func(rec []uint64, ev *event.Event) {
			if !match(ev) {
				return
			}
			if rec[epochSlot] >= n {
				reset(rec, 0)
				rec[epochSlot] = 0
			}
			apply(rec, 0, value(ev))
			rec[epochSlot]++
			materialize(rec, nil)
		}
	default: // WindowSliding
		sub := int64(g.Spec.Window.Sub)
		width := g.Spec.Window.DurationMillis / sub
		subEpochAt := g.subEpochAt
		return func(rec []uint64, ev *event.Event) {
			subIdx := ev.Timestamp / width
			j := int(subIdx % sub)
			if rec[subEpochAt+j] != uint64(subIdx) {
				rec[subEpochAt+j] = uint64(subIdx)
				reset(rec, j)
			}
			if match(ev) {
				apply(rec, j, value(ev))
			}
			lo := subIdx - sub
			materialize(rec, func(set int) bool {
				e := int64(rec[subEpochAt+set])
				return e > lo && e <= subIdx
			})
		}
	}
}

// oracleApply is the seed Schema.Apply: timestamp stamp + every group's
// closure-based update.
func oracleApply(s *Schema, updates []func([]uint64, *event.Event), rec Record, ev *event.Event) {
	rec[SlotLastTimestamp] = uint64(ev.Timestamp)
	for _, u := range updates {
		u(rec, ev)
	}
}

// --- Fixtures --------------------------------------------------------------

// equivSchema covers all three window kinds crossed with all metrics
// (int-count, int-duration, float-cost), full and partial aggregate sets.
func equivSchema(t *testing.T) *Schema {
	t.Helper()
	b := NewBuilder()
	windows := []struct {
		name string
		win  Window
	}{
		{"hour", Window{Kind: WindowTumbling, DurationMillis: 3600 * 1000}},
		{"last5", LastEvents(5)},
		{"slide4h", SlidingHours(4, 4)},
	}
	for _, w := range windows {
		b.AddGroup(GroupSpec{
			Name: "calls_" + w.name, Metric: MetricCount, Filter: CallAny,
			Window: w.win, Aggs: []AggKind{AggCount},
		})
		b.AddGroup(GroupSpec{
			Name: "dur_" + w.name, Metric: MetricDuration, Filter: CallLocal,
			Window: w.win, Aggs: []AggKind{AggSum, AggAvg, AggMin, AggMax},
		})
		b.AddGroup(GroupSpec{
			Name: "cost_" + w.name, Metric: MetricCost, Filter: CallLongDistance,
			Window: w.win, Aggs: []AggKind{AggSum, AggMin},
		})
	}
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomEvent(rng *rand.Rand, ts int64) event.Event {
	return event.Event{
		Caller:       1,
		Timestamp:    ts,
		Duration:     int64(rng.Intn(3600)),
		Cost:         float64(rng.Intn(1000)) / 16,
		LongDistance: rng.Intn(3) == 0,
	}
}

func recBytes(rec Record) []byte {
	var buf bytes.Buffer
	for _, w := range rec {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], w)
		buf.Write(b[:])
	}
	return buf.Bytes()
}

// --- Tests -----------------------------------------------------------------

// TestSplitPhaseMatchesSeedPerEvent proves the split-phase Update (ingest +
// materialize-if-changed) is byte-identical to the seed closure kernel after
// every single event, across tumbling, tumbling-count, and sliding windows.
func TestSplitPhaseMatchesSeedPerEvent(t *testing.T) {
	sch := equivSchema(t)
	updates := make([]func([]uint64, *event.Event), len(sch.Groups))
	for i := range sch.Groups {
		updates[i] = oracleCompile(&sch.Groups[i])
	}
	recSeed := sch.NewRecord(1)
	recNew := sch.NewRecord(1)
	rng := rand.New(rand.NewSource(99))
	ts := int64(1_700_000_000_000)
	for i := 0; i < 5000; i++ {
		ts += int64(rng.Intn(45 * 60 * 1000)) // jumps across sub-window and window edges
		ev := randomEvent(rng, ts)
		oracleApply(sch, updates, recSeed, &ev)
		sch.Apply(recNew, &ev)
		if !bytes.Equal(recBytes(recSeed), recBytes(recNew)) {
			t.Fatalf("event %d: split-phase record diverged from seed kernel\nseed: %v\nnew:  %v", i, recSeed, recNew)
		}
	}
}

// TestDeferredMaterializeMatchesSeed proves that running only ingest for a
// run of events and materializing once at the end produces the same bytes
// the seed kernel reaches after the same run — the contract
// Partition.ApplyEventBatch relies on.
func TestDeferredMaterializeMatchesSeed(t *testing.T) {
	sch := equivSchema(t)
	updates := make([]func([]uint64, *event.Event), len(sch.Groups))
	for i := range sch.Groups {
		updates[i] = oracleCompile(&sch.Groups[i])
	}
	recSeed := sch.NewRecord(1)
	recNew := sch.NewRecord(1)
	dirty := make([]uint64, sch.GroupMaskWords())
	rng := rand.New(rand.NewSource(100))
	ts := int64(1_700_000_000_000)
	for round := 0; round < 400; round++ {
		runLen := 1 + rng.Intn(8)
		for e := 0; e < runLen; e++ {
			ts += int64(rng.Intn(45 * 60 * 1000))
			ev := randomEvent(rng, ts)
			oracleApply(sch, updates, recSeed, &ev)
			sch.ApplyIngest(recNew, &ev, dirty)
		}
		sch.MaterializeDirty(recNew, dirty, nil)
		for _, w := range dirty {
			if w != 0 {
				t.Fatalf("round %d: dirty bits survived a full MaterializeDirty", round)
			}
		}
		if !bytes.Equal(recBytes(recSeed), recBytes(recNew)) {
			t.Fatalf("round %d (run of %d): deferred materialize diverged from seed kernel", round, runLen)
		}
	}
}

// TestLazyRuleScopedMaterialize proves that materializing only a selected
// GroupSet mid-run keeps those groups' visible slots byte-identical to the
// seed kernel after every event (what rule evaluation observes), while a
// final full materialize restores whole-record identity.
func TestLazyRuleScopedMaterialize(t *testing.T) {
	sch := equivSchema(t)
	updates := make([]func([]uint64, *event.Event), len(sch.Groups))
	for i := range sch.Groups {
		updates[i] = oracleCompile(&sch.Groups[i])
	}
	// Rules "read" one attribute from every window kind, int and float.
	readAttrs := []int{
		sch.MustAttrIndex("calls_hour_count"),
		sch.MustAttrIndex("dur_last5_sum"),
		sch.MustAttrIndex("cost_slide4h_min"),
	}
	sel := sch.GroupSetForAttrs(readAttrs)
	if sel.Len() != 3 {
		t.Fatalf("GroupSetForAttrs: %d groups, want 3", sel.Len())
	}
	recSeed := sch.NewRecord(1)
	recNew := sch.NewRecord(1)
	dirty := make([]uint64, sch.GroupMaskWords())
	rng := rand.New(rand.NewSource(101))
	ts := int64(1_700_000_000_000)
	for round := 0; round < 300; round++ {
		runLen := 1 + rng.Intn(8)
		for e := 0; e < runLen; e++ {
			ts += int64(rng.Intn(45 * 60 * 1000))
			ev := randomEvent(rng, ts)
			oracleApply(sch, updates, recSeed, &ev)
			sch.ApplyIngest(recNew, &ev, dirty)
			sch.MaterializeDirty(recNew, dirty, sel)
			// Every attribute a rule could read must match the seed state
			// after this very event.
			for _, a := range readAttrs {
				if recNew[a] != recSeed[a] {
					t.Fatalf("round %d event %d: rule-read attr %d diverged (got %#x want %#x)",
						round, e, a, recNew[a], recSeed[a])
				}
			}
		}
		sch.MaterializeDirty(recNew, dirty, nil)
		if !bytes.Equal(recBytes(recSeed), recBytes(recNew)) {
			t.Fatalf("round %d: record diverged after final materialize", round)
		}
	}
}
