package schema

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

// testSchema builds a small schema exercising every metric, filter, agg and
// window kind.
func testSchema(t *testing.T) *Schema {
	t.Helper()
	b := NewBuilder()
	b.AddGroup(GroupSpec{
		Name: "calls_today", Metric: MetricCount, Filter: CallAny,
		Window: Day(), Aggs: []AggKind{AggCount},
	})
	b.AddGroup(GroupSpec{
		Name: "dur_today", Metric: MetricDuration, Filter: CallAny,
		Window: Day(), Aggs: []AggKind{AggSum, AggAvg, AggMin, AggMax},
	})
	b.AddGroup(GroupSpec{
		Name: "cost_week", Metric: MetricCost, Filter: CallAny,
		Window: Week(), Aggs: []AggKind{AggSum, AggMax},
	})
	b.AddGroup(GroupSpec{
		Name: "local_calls_week", Metric: MetricCount, Filter: CallLocal,
		Window: Week(), Aggs: []AggKind{AggCount},
	})
	b.AddGroup(GroupSpec{
		Name: "ld_cost_last10", Metric: MetricCost, Filter: CallLongDistance,
		Window: LastEvents(10), Aggs: []AggKind{AggSum},
	})
	b.AddGroup(GroupSpec{
		Name: "dur_sliding24h", Metric: MetricDuration, Filter: CallAny,
		Window: SlidingHours(24, 4), Aggs: []AggKind{AggSum, AggCount},
	})
	s, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

func ev(ts, dur int64, cost float64, ld bool) *event.Event {
	return &event.Event{Caller: 1, Callee: 2, Timestamp: ts, Duration: dur, Cost: cost, LongDistance: ld}
}

const dayMs = 24 * 3600 * 1000

func TestBuilderLayout(t *testing.T) {
	s := testSchema(t)
	if got := s.Attrs[0].Name; got != "entity_id" {
		t.Fatalf("attr 0 = %q, want entity_id", got)
	}
	if s.NumAttrs() != 2+1+4+2+1+1+2 {
		t.Fatalf("NumAttrs = %d, want 13", s.NumAttrs())
	}
	if s.Slots <= s.NumAttrs() {
		t.Fatalf("Slots = %d must exceed visible attrs %d (hidden bookkeeping)", s.Slots, s.NumAttrs())
	}
	for i, a := range s.Attrs {
		if a.Slot != i {
			t.Fatalf("attr %d has slot %d", i, a.Slot)
		}
		if j := s.MustAttrIndex(a.Name); j != i {
			t.Fatalf("AttrIndex(%q) = %d, want %d", a.Name, j, i)
		}
	}
	if _, err := s.AttrIndex("nope"); err == nil {
		t.Fatal("AttrIndex on unknown name should fail")
	}
}

func TestBuilderRejectsBadSpecs(t *testing.T) {
	cases := []GroupSpec{
		{Name: "noaggs", Metric: MetricCost, Window: Day()},
		{Name: "dup", Metric: MetricCost, Window: Day(), Aggs: []AggKind{AggSum, AggSum}},
		{Name: "mincount", Metric: MetricCount, Window: Day(), Aggs: []AggKind{AggMin}},
		{Name: "badwin", Metric: MetricCost, Window: Window{Kind: WindowTumbling}, Aggs: []AggKind{AggSum}},
		{Name: "badslide", Metric: MetricCost, Window: Window{Kind: WindowSliding, DurationMillis: 100, Sub: 1}, Aggs: []AggKind{AggSum}},
		{Name: "badcount", Metric: MetricCost, Window: Window{Kind: WindowTumblingCount}, Aggs: []AggKind{AggSum}},
		{Name: "badnames", Metric: MetricCost, Window: Day(), Aggs: []AggKind{AggSum}, AttrNames: []string{"a", "b"}},
	}
	for _, spec := range cases {
		if _, err := NewBuilder().AddGroup(spec).Build(); err == nil {
			t.Errorf("spec %q: Build succeeded, want error", spec.Name)
		}
	}
	// Duplicate attribute names across groups.
	b := NewBuilder()
	b.AddGroup(GroupSpec{Name: "x", Metric: MetricCost, Window: Day(), Aggs: []AggKind{AggSum}})
	b.AddGroup(GroupSpec{Name: "x", Metric: MetricCost, Window: Week(), Aggs: []AggKind{AggSum}})
	if _, err := b.Build(); err == nil {
		t.Error("duplicate names across groups should fail")
	}
}

func TestTumblingAggregation(t *testing.T) {
	s := testSchema(t)
	rec := s.NewRecord(42)
	if rec.EntityID() != 42 {
		t.Fatalf("EntityID = %d", rec.EntityID())
	}
	base := int64(100 * dayMs)
	s.Apply(rec, ev(base+1000, 60, 1.5, false))
	s.Apply(rec, ev(base+2000, 120, 2.5, true))
	s.Apply(rec, ev(base+3000, 30, 0.5, false))

	get := func(name string) int { return s.MustAttrIndex(name) }
	if n := rec.Int(get("calls_today_count")); n != 3 {
		t.Errorf("calls_today_count = %d, want 3", n)
	}
	if d := rec.Int(get("dur_today_sum")); d != 210 {
		t.Errorf("dur_today_sum = %d, want 210", d)
	}
	if a := rec.Float(get("dur_today_avg")); a != 70 {
		t.Errorf("dur_today_avg = %v, want 70", a)
	}
	if m := rec.Int(get("dur_today_min")); m != 30 {
		t.Errorf("dur_today_min = %d, want 30", m)
	}
	if m := rec.Int(get("dur_today_max")); m != 120 {
		t.Errorf("dur_today_max = %d, want 120", m)
	}
	if c := rec.Float(get("cost_week_sum")); math.Abs(c-4.5) > 1e-9 {
		t.Errorf("cost_week_sum = %v, want 4.5", c)
	}
	if c := rec.Float(get("cost_week_max")); c != 2.5 {
		t.Errorf("cost_week_max = %v, want 2.5", c)
	}
	if n := rec.Int(get("local_calls_week_count")); n != 2 {
		t.Errorf("local_calls_week_count = %d, want 2", n)
	}
	if rec.LastTimestamp() != base+3000 {
		t.Errorf("LastTimestamp = %d", rec.LastTimestamp())
	}
}

func TestTumblingWindowReset(t *testing.T) {
	s := testSchema(t)
	rec := s.NewRecord(1)
	base := int64(100 * dayMs)
	s.Apply(rec, ev(base, 60, 1, false))
	s.Apply(rec, ev(base+1000, 60, 1, false))
	// Next day: daily aggregates reset, weekly persist (same week).
	s.Apply(rec, ev(base+dayMs, 10, 2, false))
	if n := rec.Int(s.MustAttrIndex("calls_today_count")); n != 1 {
		t.Errorf("after day rollover calls_today_count = %d, want 1", n)
	}
	if d := rec.Int(s.MustAttrIndex("dur_today_sum")); d != 10 {
		t.Errorf("after day rollover dur_today_sum = %d, want 10", d)
	}
	if m := rec.Int(s.MustAttrIndex("dur_today_min")); m != 10 {
		t.Errorf("after day rollover dur_today_min = %d, want 10", m)
	}
	if c := rec.Float(s.MustAttrIndex("cost_week_sum")); math.Abs(c-4) > 1e-9 {
		t.Errorf("cost_week_sum = %v, want 4 (week did not roll)", c)
	}
}

func TestEventCountWindow(t *testing.T) {
	s := testSchema(t)
	rec := s.NewRecord(1)
	idx := s.MustAttrIndex("ld_cost_last10_sum")
	base := int64(100 * dayMs)
	// 10 long-distance events of $1 fill the window.
	for i := 0; i < 10; i++ {
		s.Apply(rec, ev(base+int64(i), 10, 1, true))
	}
	if c := rec.Float(idx); c != 10 {
		t.Fatalf("after 10 events sum = %v, want 10", c)
	}
	// Local events don't count toward the long-distance window.
	s.Apply(rec, ev(base+100, 10, 1, false))
	if c := rec.Float(idx); c != 10 {
		t.Fatalf("local event changed LD window: %v", c)
	}
	// The 11th matching event starts a fresh window.
	s.Apply(rec, ev(base+200, 10, 2, true))
	if c := rec.Float(idx); c != 2 {
		t.Fatalf("after window rollover sum = %v, want 2", c)
	}
}

func TestSlidingWindow(t *testing.T) {
	s := testSchema(t)
	rec := s.NewRecord(1)
	sumIdx := s.MustAttrIndex("dur_sliding24h_sum")
	cntIdx := s.MustAttrIndex("dur_sliding24h_count")
	sub := int64(6 * 3600 * 1000) // 24h / 4 sub-windows
	base := int64(100 * dayMs)

	s.Apply(rec, ev(base, 100, 1, false))
	s.Apply(rec, ev(base+sub, 200, 1, false))
	s.Apply(rec, ev(base+2*sub, 300, 1, false))
	if d := rec.Int(sumIdx); d != 600 {
		t.Fatalf("sliding sum = %d, want 600", d)
	}
	// Advance two more sub-windows: the first event (at base) falls out.
	s.Apply(rec, ev(base+4*sub, 50, 1, false))
	if d := rec.Int(sumIdx); d != 550 {
		t.Fatalf("sliding sum after expiry = %d, want 550", d)
	}
	if n := rec.Int(cntIdx); n != 3 {
		t.Fatalf("sliding count = %d, want 3", n)
	}
	// A long gap expires everything but the newest event.
	s.Apply(rec, ev(base+100*sub, 7, 1, false))
	if d := rec.Int(sumIdx); d != 7 {
		t.Fatalf("sliding sum after gap = %d, want 7", d)
	}
}

func TestMinMaxEmptyWindowReadsZero(t *testing.T) {
	s := testSchema(t)
	rec := s.NewRecord(1)
	if m := rec.Int(s.MustAttrIndex("dur_today_min")); m != 0 {
		t.Fatalf("fresh record min = %d, want 0", m)
	}
	base := int64(100 * dayMs)
	s.Apply(rec, ev(base, 60, 1, false))
	// Day rolls over with an event whose group filter matches: min resets
	// then re-applies, so it tracks only the new day.
	s.Apply(rec, ev(base+dayMs, 90, 1, false))
	if m := rec.Int(s.MustAttrIndex("dur_today_min")); m != 90 {
		t.Fatalf("min after rollover = %d, want 90", m)
	}
}

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema(t)
	rec := s.NewRecord(7)
	base := int64(100 * dayMs)
	s.Apply(rec, ev(base, 60, 1.25, true))
	buf := make([]byte, EncodedSize(len(rec)))
	n := EncodeRecord(rec, buf)
	if n != len(buf) {
		t.Fatalf("EncodeRecord wrote %d, want %d", n, len(buf))
	}
	got, err := DecodeRecord(buf, len(rec))
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	for i := range rec {
		if got[i] != rec[i] {
			t.Fatalf("slot %d: got %x want %x", i, got[i], rec[i])
		}
	}
	if _, err := DecodeRecord(buf[:8], len(rec)); err == nil {
		t.Fatal("DecodeRecord on short buffer should fail")
	}
}

func TestRecordClone(t *testing.T) {
	s := testSchema(t)
	rec := s.NewRecord(7)
	c := rec.Clone()
	c[SlotEntityID] = 99
	if rec.EntityID() != 7 {
		t.Fatal("Clone aliases original storage")
	}
}

// TestQuickCountSumInvariant property-tests the core kernel invariant: after
// any event sequence, count equals the number of matching events and sum
// equals the sum of their durations.
func TestQuickCountSumInvariant(t *testing.T) {
	s, err := NewBuilder().AddGroup(GroupSpec{
		Name: "g", Metric: MetricDuration, Filter: CallLocal,
		Window: Month(), Aggs: []AggKind{AggCount, AggSum, AggMin, AggMax, AggAvg},
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	cnt := s.MustAttrIndex("g_count")
	sum := s.MustAttrIndex("g_sum")
	mn := s.MustAttrIndex("g_min")
	mx := s.MustAttrIndex("g_max")
	av := s.MustAttrIndex("g_avg")

	f := func(durs []uint16, ldMask []bool) bool {
		rec := s.NewRecord(1)
		base := int64(100 * dayMs)
		var wantCount, wantSum int64
		wantMin, wantMax := int64(math.MaxInt64), int64(math.MinInt64)
		for i, d16 := range durs {
			d := int64(d16) + 1
			ld := i < len(ldMask) && ldMask[i]
			s.Apply(rec, ev(base+int64(i), d, 1, ld))
			if !ld {
				wantCount++
				wantSum += d
				if d < wantMin {
					wantMin = d
				}
				if d > wantMax {
					wantMax = d
				}
			}
		}
		if rec.Int(cnt) != wantCount || rec.Int(sum) != wantSum {
			return false
		}
		if wantCount == 0 {
			return rec.Int(mn) == 0 && rec.Int(mx) == 0 && rec.Float(av) == 0
		}
		if rec.Int(mn) != wantMin || rec.Int(mx) != wantMax {
			return false
		}
		return math.Abs(rec.Float(av)-float64(wantSum)/float64(wantCount)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSlidingNeverExceedsTotal property-tests that a sliding-window sum
// never exceeds the all-time sum and is always non-negative.
func TestQuickSlidingNeverExceedsTotal(t *testing.T) {
	s, err := NewBuilder().
		AddGroup(GroupSpec{Name: "slide", Metric: MetricDuration, Filter: CallAny,
			Window: SlidingHours(4, 4), Aggs: []AggKind{AggSum}}).
		AddGroup(GroupSpec{Name: "all", Metric: MetricDuration, Filter: CallAny,
			Window: Window{Kind: WindowTumbling, DurationMillis: math.MaxInt64 / 2}, Aggs: []AggKind{AggSum}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	slideIdx := s.MustAttrIndex("slide_sum")
	allIdx := s.MustAttrIndex("all_sum")
	f := func(steps []uint32) bool {
		rec := s.NewRecord(1)
		ts := int64(100 * dayMs)
		for _, st := range steps {
			ts += int64(st % 7_200_000) // jumps up to 2h
			s.Apply(rec, ev(ts, int64(st%1000)+1, 1, false))
			if rec.Int(slideIdx) < 0 || rec.Int(slideIdx) > rec.Int(allIdx) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
