package schema

import "repro/internal/vec"

// ColHints maps the record layout to per-slot compression hints for the
// cold tier (columnmap.SetColHints). Visible attributes carry their value
// type so the chunk encoder can pick order-correct frame-of-reference
// bases; hidden slots (window primitives, the version slot) stay on the
// unsigned default, which always round-trips bit-exactly.
func (s *Schema) ColHints() []vec.Hint {
	hints := make([]vec.Hint, s.Slots)
	for _, a := range s.Attrs {
		switch a.Type {
		case TypeInt64:
			hints[a.Slot] = vec.HintInt
		case TypeFloat64:
			hints[a.Slot] = vec.HintFloat
		default:
			hints[a.Slot] = vec.HintUint
		}
	}
	return hints
}
