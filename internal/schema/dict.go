package schema

import "sync"

// Dict is an order-preserving-free string dictionary backing
// dictionary-encoded attributes. The production AIM system's PAX layout
// supports variable-length data (§7); in this reproduction, string-valued
// segmentation attributes are interned into per-attribute dictionaries so
// Entity Records stay fixed-size 8-byte slots and scans keep their
// columnar kernels — codes compare with the integer Eq/Ne kernels.
//
// A Dict takes concurrent readers and writers: interning happens on the
// ESP path while scans resolve codes.
type Dict struct {
	mu     sync.RWMutex
	toCode map[string]uint64
	toStr  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{toCode: make(map[string]uint64)}
}

// Code interns s and returns its code. Codes are dense, starting at 0.
func (d *Dict) Code(s string) uint64 {
	d.mu.RLock()
	c, ok := d.toCode[s]
	d.mu.RUnlock()
	if ok {
		return c
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.toCode[s]; ok {
		return c
	}
	c = uint64(len(d.toStr))
	d.toCode[s] = c
	d.toStr = append(d.toStr, s)
	return c
}

// Lookup returns the code of s without interning.
func (d *Dict) Lookup(s string) (uint64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, ok := d.toCode[s]
	return c, ok
}

// String resolves a code back to its string.
func (d *Dict) String(code uint64) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if code >= uint64(len(d.toStr)) {
		return "", false
	}
	return d.toStr[code], true
}

// Len returns the number of distinct interned strings.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.toStr)
}

// --- schema integration ------------------------------------------------------

// Dict returns the dictionary of a TypeDictString attribute, or nil.
func (s *Schema) Dict(attr int) *Dict {
	return s.dicts[attr]
}

// SetString interns v in the attribute's dictionary and stores its code in
// the record. The attribute must be TypeDictString.
func (s *Schema) SetString(rec Record, attr int, v string) {
	rec[attr] = s.dicts[attr].Code(v)
}

// GetString resolves the record's dictionary code for the attribute.
func (s *Schema) GetString(rec Record, attr int) (string, bool) {
	d := s.dicts[attr]
	if d == nil {
		return "", false
	}
	return d.String(rec[attr])
}
