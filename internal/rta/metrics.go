package rta

import (
	"repro/internal/obs"
)

// Metrics instruments a Coordinator's scatter/gather path. A nil *Metrics
// is a no-op, so coordinators built without observability pay nothing.
type Metrics struct {
	latency  *obs.Histogram
	queries  *obs.Counter
	failures *obs.Counter
	degraded *obs.Counter
	retries         *obs.Counter
	nodeErrs        *obs.Counter
	replicaPartials *obs.Counter
	shedPartials    *obs.Counter
}

// NewMetrics registers the coordinator instruments on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		latency: reg.LatencyHistogram("aim_rta_query_seconds",
			"End-to-end coordinator query latency: scatter, gather, merge, finalize."),
		queries: reg.Counter("aim_rta_queries_total",
			"Queries executed by the coordinator (including failed ones)."),
		failures: reg.Counter("aim_rta_query_failures_total",
			"Queries that failed outright (strict policy or zero coverage)."),
		degraded: reg.Counter("aim_rta_degraded_results_total",
			"Queries answered from a subset of storage nodes (Result.Incomplete)."),
		retries: reg.Counter("aim_rta_partial_retries_total",
			"Per-node partials re-submitted after a first failure."),
		nodeErrs: reg.Counter("aim_rta_node_errors_total",
			"Per-node scatter/gather failures after retry."),
		replicaPartials: reg.Counter("aim_rta_replica_partials_total",
			"Per-shard partials answered by follower replicas instead of primaries."),
		shedPartials: reg.Counter("aim_rta_shed_partials_total",
			"Per-shard partials refused by storage-node load shedding (scan admission or deadline eviction)."),
	}
}
