package rta

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/schema"
)

func rtaSchema(t testing.TB) *schema.Schema {
	t.Helper()
	sch, err := schema.NewBuilder().
		AddGroup(schema.GroupSpec{Name: "calls_today", Metric: schema.MetricCount,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggCount}}).
		AddGroup(schema.GroupSpec{Name: "dur_today", Metric: schema.MetricDuration,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggSum}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func setup(t *testing.T, nodes int) (*Coordinator, *cluster.Cluster, *schema.Schema) {
	t.Helper()
	sch := rtaSchema(t)
	c, ns, err := cluster.NewLocal(nodes, core.Config{
		Schema: sch, Partitions: 2, BucketSize: 32,
		IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, n := range ns {
			n.Stop()
		}
	})
	coord, err := NewCoordinator(c.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	return coord, c, sch
}

func feed(t *testing.T, c *cluster.Cluster, events int, entities uint64) {
	t.Helper()
	for i := 0; i < events; i++ {
		ev := event.Event{
			Caller: uint64(i)%entities + 1, Timestamp: 100*24*3600*1000 + int64(i),
			Duration: 10, Cost: 1,
		}
		if err := c.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushEvents(); err != nil {
		t.Fatal(err)
	}
}

func waitSum(t *testing.T, coord *Coordinator, q *query.Query, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		res, err := coord.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) > 0 && res.Rows[0].Values[0] == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("coordinator never saw %v", want)
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(nil); err == nil {
		t.Fatal("empty backend list accepted")
	}
}

func TestScatterGatherMergesAcrossNodes(t *testing.T) {
	coord, c, sch := setup(t, 3)
	feed(t, c, 300, 60)
	calls := sch.MustAttrIndex("calls_today_count")
	q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	waitSum(t, coord, q, 300)

	// A group-by across nodes merges groups correctly: group by calls
	// count; all 60 entities saw exactly 5 events.
	q2 := &query.Query{ID: 2, Aggs: []query.AggExpr{{Op: query.OpCount}}, GroupBy: calls}
	res, err := coord.Execute(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Key.I != 5 || res.Rows[0].Values[0] != 60 {
		t.Fatalf("group-by across nodes = %+v", res.Rows)
	}
}

func TestCoordinatorPropagatesErrors(t *testing.T) {
	coord, _, _ := setup(t, 2)
	bad := &query.Query{ID: 1, GroupBy: -1} // no aggregates
	if _, err := coord.Execute(bad); err == nil {
		t.Fatal("invalid query did not error")
	}
}

type fixedSource struct{ q func() *query.Query }

func (s fixedSource) Next() *query.Query { return s.q() }

func TestRunClosedLoop(t *testing.T) {
	coord, c, sch := setup(t, 2)
	feed(t, c, 200, 40)
	calls := sch.MustAttrIndex("calls_today_count")
	var id uint64
	src := fixedSource{q: func() *query.Query {
		id++
		return &query.Query{ID: id, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	}}
	sources := []QuerySource{src, src, src, src}
	st := RunClosedLoop(coord, sources, 100*time.Millisecond)
	if st.Queries == 0 {
		t.Fatal("no queries completed")
	}
	if st.Errors != 0 {
		t.Fatalf("%d errors", st.Errors)
	}
	if st.Throughput <= 0 || st.MeanLatency <= 0 || st.P95Latency < st.MeanLatency/2 || st.MaxLatency < st.P95Latency {
		t.Fatalf("implausible stats: %+v", st)
	}
}
