// External test package: the tests drive the coordinator through cluster,
// and cluster itself imports rta (it implements rta.Backends), so an
// in-package test would be an import cycle. The dot-import keeps the
// existing unqualified references compiling.
package rta_test

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/schema"

	. "repro/internal/rta"
)

func rtaSchema(t testing.TB) *schema.Schema {
	t.Helper()
	sch, err := schema.NewBuilder().
		AddGroup(schema.GroupSpec{Name: "calls_today", Metric: schema.MetricCount,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggCount}}).
		AddGroup(schema.GroupSpec{Name: "dur_today", Metric: schema.MetricDuration,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggSum}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func setup(t *testing.T, nodes int) (*Coordinator, *cluster.Cluster, *schema.Schema) {
	t.Helper()
	sch := rtaSchema(t)
	c, ns, err := cluster.NewLocal(nodes, core.Config{
		Schema: sch, Partitions: 2, BucketSize: 32,
		IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, n := range ns {
			n.Stop()
		}
	})
	coord, err := NewCoordinator(c.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	return coord, c, sch
}

func feed(t *testing.T, c *cluster.Cluster, events int, entities uint64) {
	t.Helper()
	for i := 0; i < events; i++ {
		ev := event.Event{
			Caller: uint64(i)%entities + 1, Timestamp: 100*24*3600*1000 + int64(i),
			Duration: 10, Cost: 1,
		}
		if err := c.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushEvents(); err != nil {
		t.Fatal(err)
	}
}

func waitSum(t *testing.T, coord *Coordinator, q *query.Query, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		res, err := coord.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) > 0 && res.Rows[0].Values[0] == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("coordinator never saw %v", want)
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(nil); err == nil {
		t.Fatal("empty backend list accepted")
	}
}

func TestScatterGatherMergesAcrossNodes(t *testing.T) {
	coord, c, sch := setup(t, 3)
	feed(t, c, 300, 60)
	calls := sch.MustAttrIndex("calls_today_count")
	q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	waitSum(t, coord, q, 300)

	// A group-by across nodes merges groups correctly: group by calls
	// count; all 60 entities saw exactly 5 events.
	q2 := &query.Query{ID: 2, Aggs: []query.AggExpr{{Op: query.OpCount}}, GroupBy: calls}
	res, err := coord.Execute(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Key.I != 5 || res.Rows[0].Values[0] != 60 {
		t.Fatalf("group-by across nodes = %+v", res.Rows)
	}
}

func TestCoordinatorPropagatesErrors(t *testing.T) {
	coord, _, _ := setup(t, 2)
	bad := &query.Query{ID: 1, GroupBy: -1} // no aggregates
	if _, err := coord.Execute(bad); err == nil {
		t.Fatal("invalid query did not error")
	}
}

// faultyBackend wraps a real storage node, failing query submission while
// `down` is set. Everything else passes through.
type faultyBackend struct {
	core.Storage
	down    atomic.Bool
	queries atomic.Int64 // submissions attempted (incl. retries)
}

var errBackendDown = errors.New("test: backend down")

func (b *faultyBackend) SubmitQueryAsync(q *query.Query) (<-chan core.QueryResponse, error) {
	b.queries.Add(1)
	if b.down.Load() {
		return nil, errBackendDown
	}
	return b.Storage.SubmitQueryAsync(q)
}

func (b *faultyBackend) SubmitQuery(q *query.Query) (*query.Partial, error) {
	b.queries.Add(1)
	if b.down.Load() {
		return nil, errBackendDown
	}
	return b.Storage.SubmitQuery(q)
}

// setupFaulty builds a 3-node cluster whose first backend can be failed.
func setupFaulty(t *testing.T, cfg Config) (*Coordinator, *faultyBackend, *cluster.Cluster, *schema.Schema) {
	t.Helper()
	sch := rtaSchema(t)
	c, ns, err := cluster.NewLocal(3, core.Config{
		Schema: sch, Partitions: 2, BucketSize: 32,
		IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		for _, n := range ns {
			n.Stop()
		}
	})
	backends := append([]core.Storage(nil), c.Nodes()...)
	faulty := &faultyBackend{Storage: backends[0]}
	backends[0] = faulty
	coord, err := NewCoordinatorConfig(backends, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return coord, faulty, c, sch
}

func TestStrictPolicyReturnsTypedNodeFailure(t *testing.T) {
	coord, faulty, c, sch := setupFaulty(t, Config{Policy: PolicyStrict})
	feed(t, c, 300, 60)
	calls := sch.MustAttrIndex("calls_today_count")
	q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	waitSum(t, coord, q, 300)

	faulty.down.Store(true)
	before := faulty.queries.Load()
	_, err := coord.Execute(q)
	if !errors.Is(err, ErrNodeFailure) {
		t.Fatalf("strict execute with down node = %v, want ErrNodeFailure", err)
	}
	var nfe *NodeFailureError
	if !errors.As(err, &nfe) || nfe.Failed != 1 || nfe.Total != 3 {
		t.Fatalf("NodeFailureError = %+v", err)
	}
	if !errors.Is(err, errBackendDown) {
		t.Fatalf("underlying cause lost: %v", err)
	}
	// The failed partial was retried once before giving up.
	if got := faulty.queries.Load() - before; got != 2 {
		t.Fatalf("failed backend saw %d submissions, want 2 (initial + one retry)", got)
	}
}

func TestDegradedPolicyReturnsIncompletePartial(t *testing.T) {
	coord, faulty, c, sch := setupFaulty(t, Config{Policy: PolicyDegraded})
	feed(t, c, 300, 60)
	calls := sch.MustAttrIndex("calls_today_count")
	q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	waitSum(t, coord, q, 300)

	faulty.down.Store(true)
	res, err := coord.Execute(q)
	if err != nil {
		t.Fatalf("degraded execute: %v", err)
	}
	if !res.Incomplete || res.CoveredNodes != 2 || res.TotalNodes != 3 {
		t.Fatalf("degraded result coverage = %d/%d incomplete=%v",
			res.CoveredNodes, res.TotalNodes, res.Incomplete)
	}
	if len(res.Rows) == 0 || res.Rows[0].Values[0] >= 300 || res.Rows[0].Values[0] <= 0 {
		t.Fatalf("degraded sum should cover a strict subset, got %+v", res.Rows)
	}

	// Recovery: the next execute is complete again.
	faulty.down.Store(false)
	res, err = coord.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete || res.CoveredNodes != 3 {
		t.Fatalf("recovered result still degraded: %d/%d", res.CoveredNodes, res.TotalNodes)
	}
}

func TestDegradedPolicyZeroCoverageIsAnError(t *testing.T) {
	sch := rtaSchema(t)
	c, ns, err := cluster.NewLocal(1, core.Config{
		Schema: sch, Partitions: 1, BucketSize: 32,
		IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		ns[0].Stop()
	})
	faulty := &faultyBackend{Storage: c.Nodes()[0]}
	faulty.down.Store(true)
	coord, err := NewCoordinatorConfig([]core.Storage{faulty}, Config{Policy: PolicyDegraded})
	if err != nil {
		t.Fatal(err)
	}
	calls := sch.MustAttrIndex("calls_today_count")
	q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	if _, err := coord.Execute(q); !errors.Is(err, ErrNodeFailure) {
		t.Fatalf("zero-coverage degraded execute = %v, want ErrNodeFailure", err)
	}
}

// TestExecuteDrainsChannelsOnSubmitFailure exercises the scatter path where
// one backend refuses submission: every other channel must still be
// gathered, leaving no stuck goroutines behind.
func TestExecuteDrainsChannelsOnSubmitFailure(t *testing.T) {
	coord, faulty, c, sch := setupFaulty(t, Config{Policy: PolicyStrict, DisableRetry: true})
	feed(t, c, 100, 20)
	calls := sch.MustAttrIndex("calls_today_count")
	faulty.down.Store(true)

	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		q := &query.Query{ID: uint64(i + 1), Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
		if _, err := coord.Execute(q); err == nil {
			t.Fatal("execute with down backend succeeded")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+3 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after 100 failed executes",
				before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

type fixedSource struct{ q func() *query.Query }

func (s fixedSource) Next() *query.Query { return s.q() }

func TestRunClosedLoop(t *testing.T) {
	coord, c, sch := setup(t, 2)
	feed(t, c, 200, 40)
	calls := sch.MustAttrIndex("calls_today_count")
	var id atomic.Uint64
	src := fixedSource{q: func() *query.Query {
		return &query.Query{ID: id.Add(1), Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	}}
	sources := []QuerySource{src, src, src, src}
	st := RunClosedLoop(coord, sources, 100*time.Millisecond)
	if st.Queries == 0 {
		t.Fatal("no queries completed")
	}
	if st.Errors != 0 {
		t.Fatalf("%d errors", st.Errors)
	}
	if st.Throughput <= 0 || st.MeanLatency <= 0 || st.P95Latency < st.MeanLatency/2 || st.MaxLatency < st.P95Latency {
		t.Fatalf("implausible stats: %+v", st)
	}
}
