// Package rta implements AIM's Real-Time Analytics processing nodes (§2.3,
// §4.2): stateless, lightweight coordinators that scatter each query to all
// storage servers, merge the partial results, and deliver the final result —
// plus the closed-loop client machinery the benchmark uses to generate RTA
// load (§5).
package rta

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/query"
)

// Coordinator is one stateless RTA processing node. It holds handles to
// every storage server; Execute fans a query out to all of them
// asynchronously and merges the partials (the "merge partial results"
// responsibility of Figure 4).
type Coordinator struct {
	backends []core.Storage
}

// NewCoordinator returns a coordinator over the given storage servers.
func NewCoordinator(backends []core.Storage) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, errors.New("rta: coordinator needs at least one storage server")
	}
	return &Coordinator{backends: backends}, nil
}

// Execute scatters q to every storage server, gathers and merges the
// partials, and finalizes the result.
func (c *Coordinator) Execute(q *query.Query) (*query.Result, error) {
	chans := make([]<-chan core.QueryResponse, len(c.backends))
	for i, b := range c.backends {
		ch, err := b.SubmitQueryAsync(q)
		if err != nil {
			return nil, err
		}
		chans[i] = ch
	}
	merged := query.NewPartial(q)
	var firstErr error
	for _, ch := range chans {
		r := <-ch
		if r.Err != nil {
			if firstErr == nil {
				firstErr = r.Err
			}
			continue
		}
		merged.Merge(r.Partial, q)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return merged.Finalize(q), nil
}

// QuerySource yields the queries a closed-loop client sends; the workload
// package's QueryGen satisfies it via an adapter in the caller.
type QuerySource interface {
	Next() *query.Query
}

// ClientStats aggregates closed-loop client measurements.
type ClientStats struct {
	// Queries is the number of completed queries.
	Queries int
	// Duration is the measured wall-clock window.
	Duration time.Duration
	// Throughput is queries per second over the window.
	Throughput float64
	// MeanLatency is the average end-to-end response time.
	MeanLatency time.Duration
	// P95Latency is the 95th-percentile response time.
	P95Latency time.Duration
	// MaxLatency is the worst response time.
	MaxLatency time.Duration
	// Errors counts failed queries.
	Errors int
}

// RunClosedLoop drives the coordinator with clients concurrent closed-loop
// clients for the given duration (§5: "RTA clients work in a closed loop
// and submit only one query at a time"), each drawing queries from its own
// source. It returns aggregate throughput and latency statistics.
func RunClosedLoop(coord *Coordinator, sources []QuerySource, duration time.Duration) ClientStats {
	type sample struct {
		lat time.Duration
		err bool
	}
	var mu sync.Mutex
	var samples []sample

	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for _, src := range sources {
		wg.Add(1)
		go func(src QuerySource) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				q := src.Next()
				t0 := time.Now()
				_, err := coord.Execute(q)
				lat := time.Since(t0)
				mu.Lock()
				samples = append(samples, sample{lat: lat, err: err != nil})
				mu.Unlock()
			}
		}(src)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := ClientStats{Duration: elapsed}
	if len(samples) == 0 {
		return st
	}
	lats := make([]time.Duration, 0, len(samples))
	var sum time.Duration
	for _, s := range samples {
		if s.err {
			st.Errors++
			continue
		}
		lats = append(lats, s.lat)
		sum += s.lat
	}
	st.Queries = len(lats)
	if st.Queries == 0 {
		return st
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	st.Throughput = float64(st.Queries) / elapsed.Seconds()
	st.MeanLatency = sum / time.Duration(st.Queries)
	st.P95Latency = lats[(len(lats)*95)/100]
	if idx := len(lats) - 1; idx >= 0 {
		st.MaxLatency = lats[idx]
	}
	return st
}
