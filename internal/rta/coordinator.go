// Package rta implements AIM's Real-Time Analytics processing nodes (§2.3,
// §4.2): stateless, lightweight coordinators that scatter each query to all
// storage servers, merge the partial results, and deliver the final result —
// plus the closed-loop client machinery the benchmark uses to generate RTA
// load (§5).
package rta

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/query"
)

// Policy selects how Execute treats storage-node failures.
type Policy int

const (
	// PolicyStrict (the default) fails the whole query with a typed
	// *NodeFailureError when any node's partial is missing after retries.
	PolicyStrict Policy = iota
	// PolicyDegraded returns the merged result of the surviving nodes,
	// marked Result.Incomplete with CoveredNodes/TotalNodes set, as long
	// as at least one node answered.
	PolicyDegraded
)

// ErrNodeFailure is the sentinel matched by errors.Is against the
// *NodeFailureError a strict coordinator returns.
var ErrNodeFailure = errors.New("rta: storage node failure")

// NodeFailureError reports a scatter/gather that lost one or more nodes.
type NodeFailureError struct {
	// Failed / Total count the storage servers that produced no partial
	// vs. all servers the query was scattered to.
	Failed, Total int
	// Err is the first underlying node error.
	Err error
}

func (e *NodeFailureError) Error() string {
	return fmt.Sprintf("rta: %d/%d storage nodes failed: %v", e.Failed, e.Total, e.Err)
}

func (e *NodeFailureError) Unwrap() error        { return e.Err }
func (e *NodeFailureError) Is(target error) bool { return target == ErrNodeFailure }

// Config tunes a Coordinator's failure handling.
type Config struct {
	// Policy selects strict vs. degraded gather (default strict).
	Policy Policy
	// DisableRetry skips the single re-submission a failed partial
	// normally gets before the policy applies.
	DisableRetry bool
	// QueryTimeout, when positive, stamps each executed query with an
	// absolute deadline (unless the query already carries one). Storage
	// nodes evict past-deadline queries from their shared-scan batches
	// with a typed deadline error, so under overload analytics sheds
	// before ingest (graceful degradation; pair with PolicyDegraded to
	// keep partial coverage).
	QueryTimeout time.Duration
	// Metrics, when set, instruments Execute (see NewMetrics). Nil
	// disables instrumentation at zero cost.
	Metrics *Metrics
}

// HandleInfo describes the handle a Backends provider picked for a shard.
type HandleInfo struct {
	// Replica marks a handle served by a follower replica rather than the
	// shard's primary.
	Replica bool
	// LagEvents is the follower's replication lag at pick time (0 for a
	// primary).
	LagEvents uint64
}

// Backends provides the coordinator's per-shard scan handles. A static
// node list satisfies it trivially; the cluster implements it with
// freshness-bounded follower routing: a shard's scan goes to a follower
// replica when one is healthy and within the configured lag bound, and
// falls back to (or away from) the primary as breakers open and close.
// Handle is called per shard per attempt, so a retry after a node failure
// may be re-routed to a different handle.
type Backends interface {
	NumShards() int
	Handle(shard int) (core.Storage, HandleInfo)
}

// staticBackends adapts a fixed handle list (one primary per shard).
type staticBackends []core.Storage

func (s staticBackends) NumShards() int { return len(s) }
func (s staticBackends) Handle(shard int) (core.Storage, HandleInfo) {
	return s[shard], HandleInfo{}
}

// Coordinator is one stateless RTA processing node. It holds handles to
// every storage server; Execute fans a query out to all of them
// asynchronously and merges the partials (the "merge partial results"
// responsibility of Figure 4).
type Coordinator struct {
	backends Backends
	cfg      Config
}

// NewCoordinator returns a strict coordinator over the given storage
// servers.
func NewCoordinator(backends []core.Storage) (*Coordinator, error) {
	return NewCoordinatorConfig(backends, Config{})
}

// NewCoordinatorConfig returns a coordinator with explicit failure policy.
func NewCoordinatorConfig(backends []core.Storage, cfg Config) (*Coordinator, error) {
	for i, b := range backends {
		if b == nil {
			return nil, fmt.Errorf("rta: backend %d is nil", i)
		}
	}
	return NewCoordinatorBackends(staticBackends(backends), cfg)
}

// NewCoordinatorBackends returns a coordinator over a dynamic handle
// provider (replica-aware routing).
func NewCoordinatorBackends(backends Backends, cfg Config) (*Coordinator, error) {
	if backends == nil || backends.NumShards() == 0 {
		return nil, errors.New("rta: coordinator needs at least one storage server")
	}
	return &Coordinator{backends: backends, cfg: cfg}, nil
}

// Execute scatters q to every storage server, gathers and merges the
// partials, and finalizes the result. Every submitted channel is always
// drained — even when another backend fails — so no response goroutine or
// channel leaks. A failed partial is retried once with a fresh submission
// (a reconnecting TCP handle redials under the hood); what the remaining
// failures mean is the Policy's call: strict queries fail with a
// *NodeFailureError, degraded queries return the surviving nodes' merge
// marked Incomplete.
func (c *Coordinator) Execute(q *query.Query) (*query.Result, error) {
	m := c.cfg.Metrics
	if m != nil {
		t0 := time.Now()
		defer m.latency.ObserveSince(t0)
		m.queries.Inc()
	}
	if c.cfg.QueryTimeout > 0 && q.Deadline == 0 {
		// Shallow copy: the caller's query must not come back mutated (it
		// may be reused, and the stamp must be per-execution).
		qq := *q
		qq.Deadline = time.Now().Add(c.cfg.QueryTimeout).UnixNano()
		q = &qq
	}
	total := c.backends.NumShards()
	chans := make([]<-chan core.QueryResponse, total)
	errs := make([]error, total)
	replica := make([]bool, total)
	for i := 0; i < total; i++ {
		b, info := c.backends.Handle(i)
		replica[i] = info.Replica
		ch, err := b.SubmitQueryAsync(q)
		if err != nil {
			// Keep scattering: the other nodes' channels must still be
			// submitted and drained.
			errs[i] = err
			continue
		}
		chans[i] = ch
	}
	merged := query.NewPartial(q)
	covered, replicaServed := 0, 0
	for i, ch := range chans {
		if ch == nil {
			continue
		}
		r := <-ch
		if r.Err != nil {
			errs[i] = r.Err
			continue
		}
		merged.Merge(r.Partial, q)
		covered++
		if replica[i] {
			replicaServed++
		}
	}
	if !c.cfg.DisableRetry {
		for i, err := range errs {
			if err == nil {
				continue
			}
			if errors.Is(err, core.ErrDeadline) || errors.Is(err, core.ErrOverloaded) {
				// The node shed this partial on purpose (deadline eviction
				// or scan admission). Retrying adds load to an overloaded
				// node for a query that is already late — let the policy
				// decide what the missing partial means instead.
				if m != nil {
					m.shedPartials.Inc()
				}
				continue
			}
			if m != nil {
				m.retries.Inc()
			}
			// Re-pick the handle: a replica-aware provider may route the
			// retry away from the handle that just failed (primary breaker
			// opened mid-query, or a follower was promoted).
			b, info := c.backends.Handle(i)
			p, rerr := b.SubmitQuery(q)
			if rerr != nil {
				errs[i] = rerr
				continue
			}
			errs[i] = nil
			merged.Merge(p, q)
			covered++
			if info.Replica {
				replicaServed++
			}
		}
	}
	var firstErr error
	failed := 0
	for _, err := range errs {
		if err == nil {
			continue
		}
		failed++
		if firstErr == nil {
			firstErr = err
		}
	}
	if m != nil {
		m.nodeErrs.Add(uint64(failed))
	}
	if failed > 0 && (c.cfg.Policy == PolicyStrict || covered == 0) {
		if m != nil {
			m.failures.Inc()
		}
		return nil, &NodeFailureError{Failed: failed, Total: total, Err: firstErr}
	}
	res := merged.Finalize(q)
	res.CoveredNodes, res.TotalNodes = covered, total
	res.Incomplete = covered < total
	res.ReplicaShards = replicaServed
	if m != nil {
		if res.Incomplete {
			m.degraded.Inc()
		}
		if replicaServed > 0 {
			m.replicaPartials.Add(uint64(replicaServed))
		}
	}
	return res, nil
}

// QuerySource yields the queries a closed-loop client sends; the workload
// package's QueryGen satisfies it via an adapter in the caller.
type QuerySource interface {
	Next() *query.Query
}

// ClientStats aggregates closed-loop client measurements.
type ClientStats struct {
	// Queries is the number of completed queries.
	Queries int
	// Duration is the measured wall-clock window.
	Duration time.Duration
	// Throughput is queries per second over the window.
	Throughput float64
	// MeanLatency is the average end-to-end response time.
	MeanLatency time.Duration
	// P95Latency is the 95th-percentile response time.
	P95Latency time.Duration
	// MaxLatency is the worst response time.
	MaxLatency time.Duration
	// Errors counts failed queries.
	Errors int
}

// RunClosedLoop drives the coordinator with clients concurrent closed-loop
// clients for the given duration (§5: "RTA clients work in a closed loop
// and submit only one query at a time"), each drawing queries from its own
// source. It returns aggregate throughput and latency statistics.
func RunClosedLoop(coord *Coordinator, sources []QuerySource, duration time.Duration) ClientStats {
	type sample struct {
		lat time.Duration
		err bool
	}
	var mu sync.Mutex
	var samples []sample

	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for _, src := range sources {
		wg.Add(1)
		go func(src QuerySource) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				q := src.Next()
				t0 := time.Now()
				_, err := coord.Execute(q)
				lat := time.Since(t0)
				mu.Lock()
				samples = append(samples, sample{lat: lat, err: err != nil})
				mu.Unlock()
				if err != nil {
					// A shed query (scan admission or deadline eviction)
					// fails near-instantly; re-submitting immediately would
					// spin the closed loop against a node that asked for
					// less scan pressure. Honor the retry hint instead.
					if retry, ok := core.RetryAfterHint(err); ok {
						time.Sleep(retry)
					} else if errors.Is(err, core.ErrOverloaded) || errors.Is(err, core.ErrDeadline) {
						time.Sleep(time.Millisecond)
					}
				}
			}
		}(src)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := ClientStats{Duration: elapsed}
	if len(samples) == 0 {
		return st
	}
	lats := make([]time.Duration, 0, len(samples))
	var sum time.Duration
	for _, s := range samples {
		if s.err {
			st.Errors++
			continue
		}
		lats = append(lats, s.lat)
		sum += s.lat
	}
	st.Queries = len(lats)
	if st.Queries == 0 {
		return st
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	st.Throughput = float64(st.Queries) / elapsed.Seconds()
	st.MeanLatency = sum / time.Duration(st.Queries)
	st.P95Latency = lats[(len(lats)*95)/100]
	if idx := len(lats) - 1; idx >= 0 {
		st.MaxLatency = lats[idx]
	}
	return st
}
