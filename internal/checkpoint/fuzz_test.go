package checkpoint

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedCkpt builds a real sealed v2 checkpoint file and returns its bytes.
func fuzzSeedCkpt(f *testing.F) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.ckpt")
	w, err := NewWriter(path, 4, 42)
	if err != nil {
		f.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := w.Add([]uint64{i, i * 2, i * 3, i * 4}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// fuzzSeedV1 hand-crafts a legacy v1 checkpoint file (no CRCs, no trailer).
func fuzzSeedV1() []byte {
	buf := make([]byte, headerSizeV1+2*8)
	copy(buf, magicV1[:])
	binary.LittleEndian.PutUint32(buf[8:], 2)    // slots
	binary.LittleEndian.PutUint64(buf[12:], 7)   // watermark
	binary.LittleEndian.PutUint64(buf[20:], 1)   // count
	binary.LittleEndian.PutUint64(buf[28:], 11)  // rec slot 0
	binary.LittleEndian.PutUint64(buf[36:], 22)  // rec slot 1
	return buf
}

// FuzzReadFile feeds arbitrary bytes to the checkpoint reader (both the v1
// and v2 paths). It must never panic and never hand the callback a record
// of the wrong width; corrupt inputs must fail with ErrCorrupt, not be
// silently mis-parsed.
func FuzzReadFile(f *testing.F) {
	f.Add(fuzzSeedCkpt(f))
	f.Add(fuzzSeedV1())
	f.Add([]byte{})
	f.Add(magicV2[:])
	f.Add(magicV1[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "000001-base.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var widths []int
		wm, err := ReadFile(path, func(rec []uint64) error {
			widths = append(widths, len(rec))
			return nil
		})
		if err != nil {
			return // rejected — fine, as long as it didn't panic
		}
		_ = wm
		for i := 1; i < len(widths); i++ {
			if widths[i] != widths[0] {
				t.Fatalf("record widths differ: %d vs %d", widths[0], widths[i])
			}
		}
		// A file ReadFile accepts must also load through the Manager in
		// both modes without panicking.
		mgr, err := NewManager(filepath.Dir(path))
		if err != nil {
			t.Fatal(err)
		}
		if len(widths) > 0 {
			if _, _, _, err := mgr.LoadWithReport(widths[0], Strict); err != nil {
				t.Fatalf("manager strict load of a valid file: %v", err)
			}
		}
	})
}
