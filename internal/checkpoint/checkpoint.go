// Package checkpoint implements AIM's incremental checkpointing (§7): the
// Analytics Matrix is periodically snapshotted to disk — a full base
// checkpoint followed by increments containing only the Entity Records
// dirtied since the previous checkpoint — together with an event-archive
// watermark (LSN). Recovery loads base + increments (later wins per entity)
// and replays the archive tail beyond the watermark.
//
// File format (little endian):
//
//	magic   "AIMCKPT1"            8 B
//	slots   u32                   record width
//	wmark   u64                   archive watermark (next LSN at snapshot)
//	count   u64                   number of records (patched on Close)
//	records count × slots × 8 B
//
// Files are written to a temp name and renamed on Close, so a crashed
// checkpoint never becomes visible.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

var magic = [8]byte{'A', 'I', 'M', 'C', 'K', 'P', 'T', '1'}

const headerSize = 8 + 4 + 8 + 8
const countOffset = 8 + 4 + 8

// Writer streams one checkpoint file.
type Writer struct {
	f     *os.File
	w     *bufio.Writer
	path  string
	tmp   string
	slots int
	count uint64
}

// NewWriter creates a checkpoint file at path (via a temp file).
func NewWriter(path string, slots int, watermark uint64) (*Writer, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	w := &Writer{f: f, w: bufio.NewWriterSize(f, 1<<20), path: path, tmp: tmp, slots: slots}
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], uint32(slots))
	binary.LittleEndian.PutUint64(hdr[12:], watermark)
	// count is patched on Close
	if _, err := w.w.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return w, nil
}

// Add appends one record.
func (w *Writer) Add(rec []uint64) error {
	if len(rec) != w.slots {
		return fmt.Errorf("checkpoint: record has %d slots, want %d", len(rec), w.slots)
	}
	var buf [8]byte
	for _, word := range rec {
		binary.LittleEndian.PutUint64(buf[:], word)
		if _, err := w.w.Write(buf[:]); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	w.count++
	return nil
}

// Count returns the number of records added so far.
func (w *Writer) Count() uint64 { return w.count }

// Close patches the record count, fsyncs, and publishes the file.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		w.abort()
		return fmt.Errorf("checkpoint: %w", err)
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], w.count)
	if _, err := w.f.WriteAt(cnt[:], countOffset); err != nil {
		w.abort()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.abort()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		return fmt.Errorf("checkpoint: publish: %w", err)
	}
	return nil
}

func (w *Writer) abort() {
	w.f.Close()
	os.Remove(w.tmp)
}

// ReadFile loads one checkpoint file, invoking fn per record. It returns
// the file's watermark.
func ReadFile(path string, fn func(rec []uint64) error) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	if len(data) < headerSize || string(data[:8]) != string(magic[:]) {
		return 0, fmt.Errorf("checkpoint: %s: bad header", path)
	}
	slots := int(binary.LittleEndian.Uint32(data[8:]))
	watermark := binary.LittleEndian.Uint64(data[12:])
	count := binary.LittleEndian.Uint64(data[countOffset:])
	need := headerSize + int(count)*slots*8
	if len(data) < need {
		return 0, fmt.Errorf("checkpoint: %s: truncated (%d < %d bytes)", path, len(data), need)
	}
	off := headerSize
	for i := uint64(0); i < count; i++ {
		rec := make([]uint64, slots)
		for s := 0; s < slots; s++ {
			rec[s] = binary.LittleEndian.Uint64(data[off:])
			off += 8
		}
		if err := fn(rec); err != nil {
			return 0, err
		}
	}
	return watermark, nil
}

// Manager names and sequences the checkpoint files of one storage node.
type Manager struct {
	dir string
}

// NewManager prepares (creating if needed) a checkpoint directory.
func NewManager(dir string) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Manager{dir: dir}, nil
}

// files returns the published checkpoint files in sequence order.
func (m *Manager) files() ([]string, error) {
	names, err := filepath.Glob(filepath.Join(m.dir, "*.ckpt"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// nextSeq returns the next file sequence number.
func (m *Manager) nextSeq() (int, error) {
	names, err := m.files()
	if err != nil {
		return 0, err
	}
	return len(names) + 1, nil
}

// Create opens a new checkpoint file; full selects base vs incremental
// naming (the distinction matters only for humans and compaction).
func (m *Manager) Create(slots int, watermark uint64, full bool) (*Writer, error) {
	seq, err := m.nextSeq()
	if err != nil {
		return nil, err
	}
	kind := "incr"
	if full {
		kind = "base"
	}
	path := filepath.Join(m.dir, fmt.Sprintf("%06d-%s.ckpt", seq, kind))
	return NewWriter(path, slots, watermark)
}

// HasBase reports whether a base checkpoint exists.
func (m *Manager) HasBase() (bool, error) {
	names, err := m.files()
	if err != nil {
		return false, err
	}
	for _, n := range names {
		if strings.HasSuffix(n, "-base.ckpt") {
			return true, nil
		}
	}
	return false, nil
}

// Load replays base + increments in order; the newest version of each
// entity wins. It returns the surviving records and the newest watermark.
func (m *Manager) Load(slots int) (map[uint64][]uint64, uint64, error) {
	names, err := m.files()
	if err != nil {
		return nil, 0, err
	}
	recs := make(map[uint64][]uint64)
	var watermark uint64
	for _, name := range names {
		wm, err := ReadFile(name, func(rec []uint64) error {
			recs[rec[0]] = rec // slot 0 = entity id
			return nil
		})
		if err != nil {
			return nil, 0, err
		}
		if wm > watermark {
			watermark = wm
		}
	}
	return recs, watermark, nil
}

// Compact rewrites the directory as a single base checkpoint containing the
// merged state, then removes the old files.
func (m *Manager) Compact(slots int) error {
	recs, watermark, err := m.Load(slots)
	if err != nil {
		return err
	}
	old, err := m.files()
	if err != nil {
		return err
	}
	w, err := m.Create(slots, watermark, true)
	if err != nil {
		return err
	}
	// Deterministic order for reproducible files.
	ids := make([]uint64, 0, len(recs))
	for id := range recs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := w.Add(recs[id]); err != nil {
			w.abort()
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	for _, name := range old {
		if err := os.Remove(name); err != nil {
			return fmt.Errorf("checkpoint: compact cleanup: %w", err)
		}
	}
	return nil
}
