// Package checkpoint implements AIM's incremental checkpointing (§7): the
// Analytics Matrix is periodically snapshotted to disk — a full base
// checkpoint followed by increments containing only the Entity Records
// dirtied since the previous checkpoint — together with an event-archive
// watermark (LSN). Recovery loads base + increments (later wins per entity)
// and replays the archive tail beyond the watermark.
//
// File format revision 2 (little endian):
//
//	magic   "AIMCKPT2"             8 B
//	slots   u32                    record width
//	wmark   u64                    archive watermark (next LSN at snapshot)
//	records count × (slots×8 B + crc32c u32)   per-record CRC over the payload
//	trailer "AIMCKEND" 8 B | count u64 | crc32c u32 over all preceding bytes
//
// The sealed trailer replaces revision 1's patched count field: a file
// without a valid trailer was never completely written. Revision 1 files
// ("AIMCKPT1", count in the header, no checksums) are still readable.
//
// Files are written to a temp name and renamed on Close, so a crashed
// checkpoint never becomes visible; Manager garbage-collects orphaned
// *.tmp files left behind by a crash.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/crashpoint"
)

var (
	magicV1   = [8]byte{'A', 'I', 'M', 'C', 'K', 'P', 'T', '1'}
	magicV2   = [8]byte{'A', 'I', 'M', 'C', 'K', 'P', 'T', '2'}
	sealMagic = [8]byte{'A', 'I', 'M', 'C', 'K', 'E', 'N', 'D'}
)

const (
	headerSize    = 8 + 4 + 8 // magic + slots + watermark
	headerSizeV1  = headerSize + 8
	countOffsetV1 = headerSize
	trailerSize   = 8 + 8 + 4 // seal magic + count + file CRC

	// maxSlots bounds the record width a reader will accept, so corrupt or
	// adversarial headers cannot trigger huge allocations.
	maxSlots = 1 << 16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a checkpoint file that fails validation: bad magic, a
// record CRC mismatch, a truncated payload, or a missing seal trailer.
// Callers test with errors.Is.
var ErrCorrupt = errors.New("corrupt checkpoint")

// Writer streams one revision-2 checkpoint file.
type Writer struct {
	f       *os.File
	w       *bufio.Writer
	path    string
	tmp     string
	slots   int
	count   uint64
	bytes   uint64
	fileCRC uint32 // running CRC over every byte written so far
}

// NewWriter creates a checkpoint file at path (via a temp file).
func NewWriter(path string, slots int, watermark uint64) (*Writer, error) {
	if slots <= 0 || slots > maxSlots {
		return nil, fmt.Errorf("checkpoint: invalid record width %d", slots)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	w := &Writer{f: f, w: bufio.NewWriterSize(f, 1<<20), path: path, tmp: tmp, slots: slots}
	var hdr [headerSize]byte
	copy(hdr[:8], magicV2[:])
	binary.LittleEndian.PutUint32(hdr[8:], uint32(slots))
	binary.LittleEndian.PutUint64(hdr[12:], watermark)
	if err := w.write(hdr[:]); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	return w, nil
}

func (w *Writer) write(b []byte) error {
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	w.fileCRC = crc32.Update(w.fileCRC, castagnoli, b)
	w.bytes += uint64(len(b))
	return nil
}

// Add appends one record with its CRC.
func (w *Writer) Add(rec []uint64) error {
	if len(rec) != w.slots {
		return fmt.Errorf("checkpoint: record has %d slots, want %d", len(rec), w.slots)
	}
	buf := make([]byte, len(rec)*8+4)
	for i, word := range rec {
		binary.LittleEndian.PutUint64(buf[i*8:], word)
	}
	binary.LittleEndian.PutUint32(buf[len(rec)*8:], crc32.Checksum(buf[:len(rec)*8], castagnoli))
	if err := w.write(buf); err != nil {
		return err
	}
	w.count++
	crashpoint.Hit(crashpoint.CheckpointAddRecord)
	return nil
}

// Count returns the number of records added so far.
func (w *Writer) Count() uint64 { return w.count }

// Bytes returns the number of payload bytes written so far (records + header).
func (w *Writer) Bytes() uint64 { return w.bytes }

// Close seals the file with the trailer, fsyncs, and publishes it.
func (w *Writer) Close() error {
	crashpoint.Hit(crashpoint.CheckpointCloseBeforeSeal)
	var tr [trailerSize]byte
	copy(tr[:8], sealMagic[:])
	binary.LittleEndian.PutUint64(tr[8:], w.count)
	// The trailer CRC covers everything before its own field, including the
	// seal magic and count.
	if err := w.write(tr[:16]); err != nil {
		w.abort()
		return err
	}
	binary.LittleEndian.PutUint32(tr[16:], w.fileCRC)
	if err := w.write(tr[16:]); err != nil {
		w.abort()
		return err
	}
	if err := w.w.Flush(); err != nil {
		w.abort()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.abort()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	crashpoint.Hit(crashpoint.CheckpointCloseBeforeRename)
	if err := os.Rename(w.tmp, w.path); err != nil {
		return fmt.Errorf("checkpoint: publish: %w", err)
	}
	if err := syncDir(filepath.Dir(w.path)); err != nil {
		return err
	}
	crashpoint.Hit(crashpoint.CheckpointCloseAfterRename)
	return nil
}

func (w *Writer) abort() {
	w.f.Close()
	os.Remove(w.tmp)
}

// Abort discards the checkpoint without publishing it.
func (w *Writer) Abort() { w.abort() }

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}

// ReadFile loads one checkpoint file (either revision), invoking fn per
// record. It returns the file's watermark. Any validation failure wraps
// ErrCorrupt.
func ReadFile(path string, fn func(rec []uint64) error) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	return readBytes(path, data, fn)
}

func readBytes(path string, data []byte, fn func(rec []uint64) error) (uint64, error) {
	if len(data) < headerSize {
		return 0, fmt.Errorf("checkpoint: %s: short header: %w", path, ErrCorrupt)
	}
	switch {
	case string(data[:8]) == string(magicV2[:]):
		return readV2(path, data, fn)
	case string(data[:8]) == string(magicV1[:]):
		return readV1(path, data, fn)
	default:
		return 0, fmt.Errorf("checkpoint: %s: bad magic: %w", path, ErrCorrupt)
	}
}

func readV2(path string, data []byte, fn func(rec []uint64) error) (uint64, error) {
	slots := int(binary.LittleEndian.Uint32(data[8:]))
	watermark := binary.LittleEndian.Uint64(data[12:])
	if slots <= 0 || slots > maxSlots {
		return 0, fmt.Errorf("checkpoint: %s: record width %d: %w", path, slots, ErrCorrupt)
	}
	if len(data) < headerSize+trailerSize {
		return 0, fmt.Errorf("checkpoint: %s: unsealed: %w", path, ErrCorrupt)
	}
	tr := data[len(data)-trailerSize:]
	if string(tr[:8]) != string(sealMagic[:]) {
		return 0, fmt.Errorf("checkpoint: %s: missing seal trailer: %w", path, ErrCorrupt)
	}
	count := binary.LittleEndian.Uint64(tr[8:])
	fileCRC := binary.LittleEndian.Uint32(tr[16:])
	if crc32.Checksum(data[:len(data)-4], castagnoli) != fileCRC {
		return 0, fmt.Errorf("checkpoint: %s: file checksum mismatch: %w", path, ErrCorrupt)
	}
	recSize := slots*8 + 4
	body := len(data) - headerSize - trailerSize
	if count != uint64(body)/uint64(recSize) || body%recSize != 0 {
		return 0, fmt.Errorf("checkpoint: %s: count %d does not match body size %d: %w",
			path, count, body, ErrCorrupt)
	}
	off := headerSize
	for i := uint64(0); i < count; i++ {
		payload := data[off : off+slots*8]
		want := binary.LittleEndian.Uint32(data[off+slots*8:])
		if crc32.Checksum(payload, castagnoli) != want {
			return 0, fmt.Errorf("checkpoint: %s: record %d checksum mismatch: %w",
				path, i, ErrCorrupt)
		}
		rec := make([]uint64, slots)
		for s := 0; s < slots; s++ {
			rec[s] = binary.LittleEndian.Uint64(payload[s*8:])
		}
		off += recSize
		if err := fn(rec); err != nil {
			return 0, err
		}
	}
	return watermark, nil
}

// readV1 reads the legacy revision-1 format (count in header, no checksums).
func readV1(path string, data []byte, fn func(rec []uint64) error) (uint64, error) {
	if len(data) < headerSizeV1 {
		return 0, fmt.Errorf("checkpoint: %s: short header: %w", path, ErrCorrupt)
	}
	slots := int(binary.LittleEndian.Uint32(data[8:]))
	watermark := binary.LittleEndian.Uint64(data[12:])
	count := binary.LittleEndian.Uint64(data[countOffsetV1:])
	if slots <= 0 || slots > maxSlots {
		return 0, fmt.Errorf("checkpoint: %s: record width %d: %w", path, slots, ErrCorrupt)
	}
	body := uint64(len(data) - headerSizeV1)
	if count > body/uint64(slots*8) {
		return 0, fmt.Errorf("checkpoint: %s: truncated (%d records do not fit in %d bytes): %w",
			path, count, body, ErrCorrupt)
	}
	off := headerSizeV1
	for i := uint64(0); i < count; i++ {
		rec := make([]uint64, slots)
		for s := 0; s < slots; s++ {
			rec[s] = binary.LittleEndian.Uint64(data[off:])
			off += 8
		}
		if err := fn(rec); err != nil {
			return 0, err
		}
	}
	return watermark, nil
}

// LoadMode selects how Manager.LoadWithReport treats corrupt files.
type LoadMode int

const (
	// Strict fails on the first corrupt checkpoint file.
	Strict LoadMode = iota
	// Salvage drops the first corrupt file and every later one (increments
	// after a hole cannot be applied safely), quarantines them, and resumes
	// from the last valid file's watermark with a longer archive replay.
	Salvage
)

func (m LoadMode) String() string {
	if m == Salvage {
		return "salvage"
	}
	return "strict"
}

// LoadReport describes what a load used and what, if anything, it dropped.
type LoadReport struct {
	Mode             LoadMode
	FilesLoaded      []string
	QuarantinedFiles []string
	Records          int
	Watermark        uint64
}

// Clean reports whether the load dropped nothing.
func (r *LoadReport) Clean() bool { return len(r.QuarantinedFiles) == 0 }

// Manager names and sequences the checkpoint files of one storage node.
type Manager struct {
	dir string
}

// NewManager prepares (creating if needed) a checkpoint directory and
// removes orphaned *.tmp files left behind by a crash mid-checkpoint.
func NewManager(dir string) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	tmps, err := filepath.Glob(filepath.Join(dir, "*.ckpt.tmp"))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	for _, t := range tmps {
		if err := os.Remove(t); err != nil {
			return nil, fmt.Errorf("checkpoint: gc tmp: %w", err)
		}
	}
	return &Manager{dir: dir}, nil
}

// Dir returns the managed directory.
func (m *Manager) Dir() string { return m.dir }

// files returns the published checkpoint files in sequence order.
func (m *Manager) files() ([]string, error) {
	names, err := filepath.Glob(filepath.Join(m.dir, "*.ckpt"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// seqOf parses the sequence number out of "NNNNNN-kind.ckpt"; -1 if the
// name does not match.
func seqOf(name string) int {
	base := filepath.Base(name)
	i := strings.IndexByte(base, '-')
	if i <= 0 {
		return -1
	}
	n, err := strconv.Atoi(base[:i])
	if err != nil {
		return -1
	}
	return n
}

// nextSeq returns one past the highest existing sequence number, so GC'd
// holes never cause a new file to sort before surviving ones.
func (m *Manager) nextSeq() (int, error) {
	names, err := m.files()
	if err != nil {
		return 0, err
	}
	max := 0
	for _, n := range names {
		if s := seqOf(n); s > max {
			max = s
		}
	}
	return max + 1, nil
}

// Create opens a new checkpoint file; full selects base vs incremental
// naming (recovery falls back to the newest base, GC deletes below it).
func (m *Manager) Create(slots int, watermark uint64, full bool) (*Writer, error) {
	seq, err := m.nextSeq()
	if err != nil {
		return nil, err
	}
	kind := "incr"
	if full {
		kind = "base"
	}
	path := filepath.Join(m.dir, fmt.Sprintf("%06d-%s.ckpt", seq, kind))
	return NewWriter(path, slots, watermark)
}

// HasBase reports whether a base checkpoint exists.
func (m *Manager) HasBase() (bool, error) {
	names, err := m.files()
	if err != nil {
		return false, err
	}
	for _, n := range names {
		if strings.HasSuffix(n, "-base.ckpt") {
			return true, nil
		}
	}
	return false, nil
}

// Load replays base + increments in order with Strict validation; the
// newest version of each entity wins. It returns the surviving records and
// the newest watermark.
func (m *Manager) Load(slots int) (map[uint64][]uint64, uint64, error) {
	recs, wm, _, err := m.LoadWithReport(slots, Strict)
	return recs, wm, err
}

// LoadWithReport replays base + increments in order. In Salvage mode a
// corrupt file and everything after it are quarantined (renamed with a
// .quarantine suffix) and the load resumes from the last valid prefix.
func (m *Manager) LoadWithReport(slots int, mode LoadMode) (map[uint64][]uint64, uint64, *LoadReport, error) {
	names, err := m.files()
	if err != nil {
		return nil, 0, nil, err
	}
	rep := &LoadReport{Mode: mode}
	recs := make(map[uint64][]uint64)
	var watermark uint64
	for i, name := range names {
		// Stage each file so a corrupt one contributes nothing.
		var staged [][]uint64
		wm, err := ReadFile(name, func(rec []uint64) error {
			if len(rec) != slots {
				return fmt.Errorf("checkpoint: %s: record width %d, want %d: %w",
					name, len(rec), slots, ErrCorrupt)
			}
			staged = append(staged, rec)
			return nil
		})
		if err != nil {
			if mode == Strict || !errors.Is(err, ErrCorrupt) {
				return nil, 0, nil, err
			}
			// Salvage: this file and all later ones are unusable — an
			// increment after a hole could double-apply or lose updates.
			for _, q := range names[i:] {
				if qerr := os.Rename(q, q+".quarantine"); qerr != nil {
					return nil, 0, nil, fmt.Errorf("checkpoint: quarantine: %w", qerr)
				}
				rep.QuarantinedFiles = append(rep.QuarantinedFiles, q)
			}
			if err := syncDir(m.dir); err != nil {
				return nil, 0, nil, err
			}
			break
		}
		for _, rec := range staged {
			recs[rec[0]] = rec // slot 0 = entity id
		}
		if wm > watermark {
			watermark = wm
		}
		rep.FilesLoaded = append(rep.FilesLoaded, name)
	}
	rep.Records = len(recs)
	rep.Watermark = watermark
	return recs, watermark, rep, nil
}

// GC deletes checkpoint files superseded by the newest base: every file
// with a lower sequence number. It returns how many files were removed and
// the newest base's watermark (0 if no base exists) — the archive can be
// truncated below that LSN once GC succeeds.
func (m *Manager) GC() (removed int, baseWatermark uint64, err error) {
	names, err := m.files()
	if err != nil {
		return 0, 0, err
	}
	baseIdx := -1
	for i, n := range names {
		if strings.HasSuffix(n, "-base.ckpt") {
			baseIdx = i
		}
	}
	if baseIdx < 0 {
		return 0, 0, nil
	}
	baseWatermark, err = ReadFile(names[baseIdx], func([]uint64) error { return nil })
	if err != nil {
		// A corrupt newest base must stay recoverable via older files.
		return 0, 0, err
	}
	for _, n := range names[:baseIdx] {
		if err := os.Remove(n); err != nil {
			return removed, baseWatermark, fmt.Errorf("checkpoint: gc: %w", err)
		}
		removed++
	}
	if removed > 0 {
		if err := syncDir(m.dir); err != nil {
			return removed, baseWatermark, err
		}
	}
	return removed, baseWatermark, nil
}

// Compact rewrites the directory as a single base checkpoint containing the
// merged state, then removes the old files.
func (m *Manager) Compact(slots int) error {
	recs, watermark, err := m.Load(slots)
	if err != nil {
		return err
	}
	old, err := m.files()
	if err != nil {
		return err
	}
	w, err := m.Create(slots, watermark, true)
	if err != nil {
		return err
	}
	// Deterministic order for reproducible files.
	ids := make([]uint64, 0, len(recs))
	for id := range recs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := w.Add(recs[id]); err != nil {
			w.abort()
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	for _, name := range old {
		if err := os.Remove(name); err != nil {
			return fmt.Errorf("checkpoint: compact cleanup: %w", err)
		}
	}
	return nil
}
