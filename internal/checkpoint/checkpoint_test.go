package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
)

func mkRec(entity uint64, v uint64) []uint64 { return []uint64{entity, v, v * 2} }

func TestWriterReaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "one.ckpt")
	w, err := NewWriter(path, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 5; e++ {
		if err := w.Add(mkRec(e, e*10)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got [][]uint64
	wm, err := ReadFile(path, func(rec []uint64) error {
		cp := append([]uint64(nil), rec...)
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if wm != 42 || len(got) != 5 {
		t.Fatalf("wm=%d records=%d", wm, len(got))
	}
	if got[2][0] != 3 || got[2][1] != 30 || got[2][2] != 60 {
		t.Fatalf("record 2 = %v", got[2])
	}
}

func TestWriterValidatesArity(t *testing.T) {
	w, err := NewWriter(filepath.Join(t.TempDir(), "x.ckpt"), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]uint64{1}); err == nil {
		t.Fatal("short record accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadFileRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path, func([]uint64) error { return nil }); err == nil {
		t.Fatal("bad header accepted")
	}
	// Truncated payload.
	w, _ := NewWriter(path, 2, 1)
	w.Add([]uint64{1, 2})
	w.Add([]uint64{2, 3})
	w.Close()
	fi, _ := os.Stat(path)
	os.Truncate(path, fi.Size()-8)
	if _, err := ReadFile(path, func([]uint64) error { return nil }); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestCrashedCheckpointInvisible(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.Create(2, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	w.Add([]uint64{1, 2})
	// No Close: simulates a crash mid-checkpoint.
	recs, wm, err := m.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || wm != 0 {
		t.Fatalf("unpublished checkpoint visible: %d recs", len(recs))
	}
	w.abort()
}

func TestManagerIncrementalLoadLatestWins(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if has, _ := m.HasBase(); has {
		t.Fatal("empty dir has base")
	}
	// Base: entities 1..4 at version 1.
	w, err := m.Create(3, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 4; e++ {
		w.Add(mkRec(e, 1))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if has, _ := m.HasBase(); !has {
		t.Fatal("base not detected")
	}
	// Increment: entity 2 updated, entity 9 new.
	w2, err := m.Create(3, 200, false)
	if err != nil {
		t.Fatal(err)
	}
	w2.Add(mkRec(2, 5))
	w2.Add(mkRec(9, 1))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	recs, wm, err := m.Load(3)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 200 {
		t.Fatalf("watermark = %d", wm)
	}
	if len(recs) != 5 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[2][1] != 5 {
		t.Fatalf("entity 2 version = %d, want increment's 5", recs[2][1])
	}
	if recs[1][1] != 1 || recs[9][1] != 1 {
		t.Fatal("base/new entities wrong")
	}
}

func TestCompact(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w, err := m.Create(3, uint64(100+i), i == 0)
		if err != nil {
			t.Fatal(err)
		}
		w.Add(mkRec(uint64(i+1), uint64(i)))
		w.Add(mkRec(42, uint64(i))) // rewritten every time
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Compact(3); err != nil {
		t.Fatal(err)
	}
	files, _ := m.files()
	if len(files) != 1 {
		t.Fatalf("after compact: %v", files)
	}
	recs, wm, err := m.Load(3)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 102 || len(recs) != 4 {
		t.Fatalf("wm=%d recs=%d", wm, len(recs))
	}
	if recs[42][1] != 2 {
		t.Fatalf("entity 42 version = %d", recs[42][1])
	}
}
