package checkpoint

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func mkRec(entity uint64, v uint64) []uint64 { return []uint64{entity, v, v * 2} }

func TestWriterReaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "one.ckpt")
	w, err := NewWriter(path, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 5; e++ {
		if err := w.Add(mkRec(e, e*10)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got [][]uint64
	wm, err := ReadFile(path, func(rec []uint64) error {
		cp := append([]uint64(nil), rec...)
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if wm != 42 || len(got) != 5 {
		t.Fatalf("wm=%d records=%d", wm, len(got))
	}
	if got[2][0] != 3 || got[2][1] != 30 || got[2][2] != 60 {
		t.Fatalf("record 2 = %v", got[2])
	}
}

func TestWriterValidatesArity(t *testing.T) {
	w, err := NewWriter(filepath.Join(t.TempDir(), "x.ckpt"), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]uint64{1}); err == nil {
		t.Fatal("short record accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadFileRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path, func([]uint64) error { return nil }); err == nil {
		t.Fatal("bad header accepted")
	}
	// Truncated payload.
	w, _ := NewWriter(path, 2, 1)
	w.Add([]uint64{1, 2})
	w.Add([]uint64{2, 3})
	w.Close()
	fi, _ := os.Stat(path)
	os.Truncate(path, fi.Size()-8)
	if _, err := ReadFile(path, func([]uint64) error { return nil }); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestCrashedCheckpointInvisible(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.Create(2, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	w.Add([]uint64{1, 2})
	// No Close: simulates a crash mid-checkpoint.
	recs, wm, err := m.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || wm != 0 {
		t.Fatalf("unpublished checkpoint visible: %d recs", len(recs))
	}
	w.abort()
}

func TestManagerIncrementalLoadLatestWins(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if has, _ := m.HasBase(); has {
		t.Fatal("empty dir has base")
	}
	// Base: entities 1..4 at version 1.
	w, err := m.Create(3, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 4; e++ {
		w.Add(mkRec(e, 1))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if has, _ := m.HasBase(); !has {
		t.Fatal("base not detected")
	}
	// Increment: entity 2 updated, entity 9 new.
	w2, err := m.Create(3, 200, false)
	if err != nil {
		t.Fatal(err)
	}
	w2.Add(mkRec(2, 5))
	w2.Add(mkRec(9, 1))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	recs, wm, err := m.Load(3)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 200 {
		t.Fatalf("watermark = %d", wm)
	}
	if len(recs) != 5 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[2][1] != 5 {
		t.Fatalf("entity 2 version = %d, want increment's 5", recs[2][1])
	}
	if recs[1][1] != 1 || recs[9][1] != 1 {
		t.Fatal("base/new entities wrong")
	}
}

func TestNewManagerRemovesOrphanedTmpFiles(t *testing.T) {
	dir := t.TempDir()
	// A crash mid-checkpoint leaves the temp file behind.
	orphan := filepath.Join(dir, "000003-incr.ckpt.tmp")
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewManager(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned tmp survived Open: %v", err)
	}
}

func TestNextSeqSurvivesGCHoles(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w, _ := m.Create(2, uint64(i), i == 2) // last one is the base
		w.Add([]uint64{1, uint64(i)})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if removed, wm, err := m.GC(); err != nil || removed != 2 || wm != 2 {
		t.Fatalf("GC: removed=%d wm=%d err=%v", removed, wm, err)
	}
	// The next file must sort AFTER the surviving base, not collide with
	// the freed low sequence numbers.
	w, _ := m.Create(2, 9, false)
	w.Add([]uint64{1, 99})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := m.files()
	if len(files) != 2 || seqOf(files[1]) != 4 {
		t.Fatalf("files after GC+create: %v", files)
	}
	recs, wm, err := m.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 9 || recs[1][1] != 99 {
		t.Fatalf("latest-wins broken after GC: wm=%d recs=%v", wm, recs)
	}
}

func TestRecordCRCDetectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ckpt")
	w, _ := NewWriter(path, 3, 7)
	for e := uint64(1); e <= 4; e++ {
		w.Add(mkRec(e, e))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	data[headerSize+10] ^= 0x01 // flip a bit in record 0's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path, func([]uint64) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip not detected: %v", err)
	}
}

func TestUnsealedFileRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ckpt")
	w, _ := NewWriter(path, 2, 1)
	w.Add([]uint64{1, 2})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop the trailer off: simulates a rename racing a missing fsync.
	fi, _ := os.Stat(path)
	os.Truncate(path, fi.Size()-trailerSize)
	if _, err := ReadFile(path, func([]uint64) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unsealed file accepted: %v", err)
	}
}

func TestSalvageDropsCorruptSuffix(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// base(wm=100) + incr(wm=200) + incr(wm=300)
	for i, wm := range []uint64{100, 200, 300} {
		w, _ := m.Create(3, wm, i == 0)
		w.Add(mkRec(uint64(i+1), wm))
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	files, _ := m.files()
	// Corrupt the middle increment.
	data, _ := os.ReadFile(files[1])
	data[headerSize+3] ^= 0xFF
	os.WriteFile(files[1], data, 0o644)

	// Strict refuses.
	if _, _, err := m.Load(3); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict load of corrupt chain: %v", err)
	}
	// Salvage keeps the base, quarantines the corrupt increment AND the
	// later valid one (it cannot be applied over a hole).
	recs, wm, rep, err := m.LoadWithReport(3, Salvage)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 100 || len(recs) != 1 || recs[1] == nil {
		t.Fatalf("salvage: wm=%d recs=%v", wm, recs)
	}
	if len(rep.QuarantinedFiles) != 2 || rep.Clean() {
		t.Fatalf("report = %+v", rep)
	}
	q, _ := filepath.Glob(filepath.Join(m.Dir(), "*.quarantine"))
	if len(q) != 2 {
		t.Fatalf("quarantined on disk: %v", q)
	}
	// A later load sees only the surviving prefix.
	recs2, wm2, err := m.Load(3)
	if err != nil || wm2 != 100 || len(recs2) != 1 {
		t.Fatalf("reload after salvage: wm=%d recs=%d err=%v", wm2, len(recs2), err)
	}
}

func TestReadV1LegacyFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.ckpt")
	// Hand-craft a v1 file: magic, slots=2, wm=77, count=2, records.
	buf := make([]byte, headerSizeV1+2*2*8)
	copy(buf, magicV1[:])
	binary.LittleEndian.PutUint32(buf[8:], 2)
	binary.LittleEndian.PutUint64(buf[12:], 77)
	binary.LittleEndian.PutUint64(buf[countOffsetV1:], 2)
	binary.LittleEndian.PutUint64(buf[headerSizeV1:], 5)
	binary.LittleEndian.PutUint64(buf[headerSizeV1+8:], 50)
	binary.LittleEndian.PutUint64(buf[headerSizeV1+16:], 6)
	binary.LittleEndian.PutUint64(buf[headerSizeV1+24:], 60)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	var got [][]uint64
	wm, err := ReadFile(path, func(rec []uint64) error {
		got = append(got, append([]uint64(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if wm != 77 || len(got) != 2 || got[1][0] != 6 || got[1][1] != 60 {
		t.Fatalf("v1 read: wm=%d got=%v", wm, got)
	}
}

func TestCompact(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w, err := m.Create(3, uint64(100+i), i == 0)
		if err != nil {
			t.Fatal(err)
		}
		w.Add(mkRec(uint64(i+1), uint64(i)))
		w.Add(mkRec(42, uint64(i))) // rewritten every time
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Compact(3); err != nil {
		t.Fatal(err)
	}
	files, _ := m.files()
	if len(files) != 1 {
		t.Fatalf("after compact: %v", files)
	}
	recs, wm, err := m.Load(3)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 102 || len(recs) != 4 {
		t.Fatalf("wm=%d recs=%d", wm, len(recs))
	}
	if recs[42][1] != 2 {
		t.Fatalf("entity 42 version = %d", recs[42][1])
	}
}
