package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// procStart anchors the process uptime gauge.
var procStart = time.Now()

var (
	buildOnce sync.Once
	goVersion string
	gitSHA    string
	gitDirty  bool
)

func loadBuildInfo() {
	buildOnce.Do(func() {
		goVersion = runtime.Version()
		gitSHA = "unknown"
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				gitSHA = s.Value
			case "vcs.modified":
				gitDirty = s.Value == "true"
			}
		}
	})
}

// GoVersion returns the toolchain version baked into this binary.
func GoVersion() string {
	loadBuildInfo()
	return goVersion
}

// GitSHA returns the VCS revision baked into this binary ("unknown" when the
// build carried no VCS stamp, e.g. `go test` binaries), with a "-dirty"
// suffix when the working tree was modified.
func GitSHA() string {
	loadBuildInfo()
	if gitDirty {
		return gitSHA + "-dirty"
	}
	return gitSHA
}

// registerMu serializes RegisterBuildInfo so the uptime GaugeFunc (whose
// registration appends callbacks rather than deduplicating) is added at most
// once per registry.
var registerMu sync.Mutex

// RegisterBuildInfo registers the build-identity and process-liveness
// metrics on reg: the conventional aim_build_info gauge (constant 1, with
// the identity in its labels) and aim_process_uptime_seconds. Idempotent per
// registry; obs.Serve calls it so every debug endpoint exposes them, and the
// scenario harness embeds the same identity in result files. Nil-safe.
func RegisterBuildInfo(reg *Registry) {
	if reg == nil {
		return
	}
	registerMu.Lock()
	defer registerMu.Unlock()
	name := fmt.Sprintf(`aim_build_info{go_version=%q,git_sha=%q}`, GoVersion(), GitSHA())
	reg.Gauge(name, "Build identity: constant 1, the identity lives in the labels.").Set(1)
	if _, ok := reg.Find("aim_process_uptime_seconds"); !ok {
		reg.GaugeFunc("aim_process_uptime_seconds",
			"Seconds since this process started.",
			func() float64 { return time.Since(procStart).Seconds() })
	}
}
