// Package obs is the zero-dependency observability substrate shared by every
// layer of the AIM reproduction: a metrics registry of atomic counters,
// gauges and fixed-bucket log-scale latency histograms, lightweight trace
// hooks with a ring-buffer span recorder, and a debug HTTP server exposing
// Prometheus text format, JSON stats, recent spans and net/http/pprof.
//
// Design constraints (these are load-bearing for the paper's hot paths):
//
//   - Recording is allocation-free: counters and histograms are fixed arrays
//     of atomics; Observe/Add never take a lock and never allocate.
//   - Every mutating method is nil-receiver safe, so instrumented code paths
//     cost a single predictable branch when observability is disabled.
//   - Registration is idempotent by full metric name, so several components
//     (or several storage nodes sharing one registry under distinct node
//     labels) can wire themselves up independently.
//
// Metric names follow the Prometheus convention aim_<layer>_<name>_<unit>
// and may carry constant labels inline: `aim_rpc_seconds{op="get"}`. The
// exposition writer understands the inline-label form and merges histogram
// `le` labels into it.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v          atomic.Uint64
	name, help string
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Nil-safe.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count. Nil-safe (0).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v          atomic.Int64
	name, help string
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d. Nil-safe.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value. Nil-safe (0).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// funcMetric is a pull-based metric: its value is the sum of the registered
// callbacks, evaluated at collection time. Registering the same name again
// appends another callback, which is how per-node gauges aggregate when
// several storage nodes share one registry.
type funcMetric struct {
	name, help string
	counter    bool // exposition TYPE: counter vs gauge
	mu         sync.Mutex
	fns        []func() float64
}

func (f *funcMetric) value() float64 {
	f.mu.Lock()
	fns := f.fns
	f.mu.Unlock()
	var sum float64
	for _, fn := range fns {
		sum += fn()
	}
	return sum
}

// Registry holds named metrics. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	order   []string
	metrics map[string]any // *Counter | *Gauge | *Histogram | *funcMetric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// register returns the existing metric under name (which must be assignable
// to the caller's expectation) or stores and returns fresh.
func (r *Registry) register(name string, fresh any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	r.metrics[name] = fresh
	r.order = append(r.order, name)
	sort.Strings(r.order)
	return fresh
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, &Counter{name: name, help: help})
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T, not counter", name, m))
	}
	return c
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, &Gauge{name: name, help: help})
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T, not gauge", name, m))
	}
	return g
}

// GaugeFunc registers a pull-based gauge. Registering the same name again
// adds fn to the set; the exposed value is the sum of all registered
// callbacks (so per-node callbacks aggregate on a shared registry).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.addFunc(name, help, false, fn)
}

// CounterFunc is GaugeFunc with counter exposition semantics, for monotonic
// values owned by another subsystem (e.g. spill-queue totals).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.addFunc(name, help, true, fn)
}

func (r *Registry) addFunc(name, help string, counter bool, fn func() float64) {
	m := r.register(name, &funcMetric{name: name, help: help, counter: counter})
	f, ok := m.(*funcMetric)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T, not func", name, m))
	}
	f.mu.Lock()
	f.fns = append(f.fns, fn)
	f.mu.Unlock()
}

// Histogram registers (or returns the existing) raw-unit histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.histogram(name, help, false)
}

// LatencyHistogram registers a histogram that records time.Durations
// (stored as nanoseconds, exposed in seconds). Name it *_seconds.
func (r *Registry) LatencyHistogram(name, help string) *Histogram {
	return r.histogram(name, help, true)
}

func (r *Registry) histogram(name, help string, isTime bool) *Histogram {
	m := r.register(name, &Histogram{name: name, help: help, isTime: isTime})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T, not histogram", name, m))
	}
	return h
}

// MetricSnapshot is one metric's state at Snapshot time.
type MetricSnapshot struct {
	Name string
	Kind string // "counter" | "gauge" | "histogram"
	// Value is the scalar for counters/gauges/funcs; for histograms it is
	// the observation count.
	Value float64
	// Hist is set for histograms only.
	Hist *HistSnapshot
}

// Snapshot returns a point-in-time view of every metric, sorted by name.
// Individual metrics are read atomically; the set as a whole is not a
// transaction (concurrent writers keep writing), which is fine for the
// monitoring uses this registry serves.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make([]any, len(names))
	for i, n := range names {
		metrics[i] = r.metrics[n]
	}
	r.mu.Unlock()

	out := make([]MetricSnapshot, 0, len(names))
	for i, name := range names {
		switch m := metrics[i].(type) {
		case *Counter:
			out = append(out, MetricSnapshot{Name: name, Kind: "counter", Value: float64(m.Value())})
		case *Gauge:
			out = append(out, MetricSnapshot{Name: name, Kind: "gauge", Value: float64(m.Value())})
		case *funcMetric:
			kind := "gauge"
			if m.counter {
				kind = "counter"
			}
			out = append(out, MetricSnapshot{Name: name, Kind: kind, Value: m.value()})
		case *Histogram:
			s := m.Snapshot()
			out = append(out, MetricSnapshot{Name: name, Kind: "histogram", Value: float64(s.Count), Hist: &s})
		}
	}
	return out
}

// Find returns the snapshot of one metric by full name.
func (r *Registry) Find(name string) (MetricSnapshot, bool) {
	for _, s := range r.Snapshot() {
		if s.Name == name {
			return s, true
		}
	}
	return MetricSnapshot{}, false
}

// Label appends a constant label to a metric name, composing with labels
// already present: Label(`x{a="1"}`, "node", "0") = `x{a="1",node="0"}`.
func Label(name, key, value string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + `,` + key + `="` + value + `"}`
	}
	return name + `{` + key + `="` + value + `"}`
}

// splitName separates a full metric name into its base name and the inner
// label text (without braces), e.g. `x{a="1"}` -> ("x", `a="1"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}
