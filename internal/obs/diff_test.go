package obs

import (
	"strings"
	"testing"
	"time"
)

func TestDeltaSnapshot(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	h := reg.LatencyHistogram("h_seconds", "")

	c.Add(10)
	g.Set(5)
	h.ObserveDuration(time.Millisecond)
	h.ObserveDuration(2 * time.Millisecond)
	before := reg.Snapshot()

	c.Add(7)
	g.Set(9)
	h.ObserveDuration(40 * time.Millisecond)
	// A metric born inside the window passes through whole.
	reg.Counter("late_total", "").Add(3)
	after := reg.Snapshot()

	d := DeltaSnapshot(before, after)
	if m, ok := FindSnapshot(d, "c_total"); !ok || m.Value != 7 {
		t.Fatalf("counter delta = %v, want 7", m.Value)
	}
	if m, ok := FindSnapshot(d, "g"); !ok || m.Value != 9 {
		t.Fatalf("gauge delta keeps after-value, got %v want 9", m.Value)
	}
	if m, ok := FindSnapshot(d, "late_total"); !ok || m.Value != 3 {
		t.Fatalf("late counter = %v, want 3", m.Value)
	}
	m, ok := FindSnapshot(d, "h_seconds")
	if !ok || m.Hist == nil || m.Hist.Count != 1 {
		t.Fatalf("hist delta count = %+v, want 1 observation", m.Hist)
	}
	// The one windowed observation was 40ms; the delta quantile must land in
	// its log2 bucket, far above the 1–2ms warmup observations.
	if p := m.Hist.QuantileDuration(0.5); p < 16*time.Millisecond || p > 128*time.Millisecond {
		t.Fatalf("delta p50 = %v, want ~40ms bucket", p)
	}
}

func TestDeltaSnapshotClampsRacingWriters(t *testing.T) {
	// A "before" taken after "after" (simulating counter reads racing) must
	// clamp, never go negative.
	a := []MetricSnapshot{{Name: "c_total", Kind: "counter", Value: 5}}
	b := []MetricSnapshot{{Name: "c_total", Kind: "counter", Value: 3}}
	d := DeltaSnapshot(a, b)
	if d[0].Value != 0 {
		t.Fatalf("clamped delta = %v, want 0", d[0].Value)
	}
}

func TestMergeHistogramsAcrossLabels(t *testing.T) {
	reg := NewRegistry()
	reg.LatencyHistogram(`lag_seconds{follower="a"}`, "").ObserveDuration(time.Millisecond)
	reg.LatencyHistogram(`lag_seconds{follower="b"}`, "").ObserveDuration(time.Millisecond)
	reg.LatencyHistogram("other_seconds", "").ObserveDuration(time.Millisecond)
	m := MergeHistograms(reg.Snapshot(), "lag_seconds")
	if m.Count != 2 {
		t.Fatalf("merged count = %d, want 2", m.Count)
	}
	if !m.IsTime {
		t.Fatal("merged snapshot lost IsTime")
	}
}

func TestSumCounters(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`ev_total{node="0"}`, "").Add(4)
	reg.Counter(`ev_total{node="1"}`, "").Add(6)
	reg.Counter("unrelated_total", "").Add(99)
	if got := SumCounters(reg.Snapshot(), "ev_total"); got != 10 {
		t.Fatalf("SumCounters = %v, want 10", got)
	}
}

func TestRegisterBuildInfoIdempotent(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	RegisterBuildInfo(reg)
	found := 0
	for _, m := range reg.Snapshot() {
		if strings.HasPrefix(m.Name, "aim_build_info{") {
			found++
			if m.Value != 1 {
				t.Fatalf("aim_build_info = %v, want 1", m.Value)
			}
			if !strings.Contains(m.Name, `go_version="`) || !strings.Contains(m.Name, `git_sha="`) {
				t.Fatalf("aim_build_info labels missing: %s", m.Name)
			}
		}
	}
	if found != 1 {
		t.Fatalf("aim_build_info series count = %d, want 1", found)
	}
	up, ok := reg.Find("aim_process_uptime_seconds")
	if !ok || up.Value < 0 {
		t.Fatalf("uptime gauge: found=%v value=%v", ok, up.Value)
	}
	// Double registration must not double the uptime value (GaugeFunc sums
	// its callbacks; RegisterBuildInfo must have added exactly one).
	time.Sleep(10 * time.Millisecond)
	up2, _ := reg.Find("aim_process_uptime_seconds")
	if up2.Value > 2*time.Since(procStart).Seconds() {
		t.Fatalf("uptime %v looks double-registered", up2.Value)
	}
}
