package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram. Buckets are
// log2-spaced: bucket i counts observations v with bits.Len64(v) == i, i.e.
// 2^(i-1) <= v < 2^i (bucket 0 counts v == 0). For latency histograms the
// raw unit is nanoseconds, so the range spans 1ns .. ~9 minutes before the
// top bucket saturates — ample for every latency this system produces.
const NumBuckets = 40

// Histogram is a fixed-bucket log-scale histogram. Observe is lock-free,
// allocation-free and O(1); Snapshot returns a consistent-enough copy for
// quantile estimation. The zero value is NOT usable — histograms come from
// Registry.Histogram / Registry.LatencyHistogram.
type Histogram struct {
	name, help string
	isTime     bool // raw unit is nanoseconds; expose as seconds
	count      atomic.Uint64
	sum        atomic.Uint64
	buckets    [NumBuckets]atomic.Uint64
}

// bucketFor maps a raw value to its bucket index.
func bucketFor(v uint64) int {
	i := bits.Len64(v)
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// bucketUpper is the exclusive upper bound of bucket i in raw units.
func bucketUpper(i int) uint64 {
	if i >= 63 {
		return math.MaxUint64
	}
	return uint64(1) << i
}

// Observe records one raw-unit observation. Nil-safe.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bucketFor(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration (for latency histograms). Nil-safe.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// ObserveSince records the time elapsed since t0. Nil-safe.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.ObserveDuration(time.Since(t0))
	}
}

// Count returns the number of observations. Nil-safe (0).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot copies the histogram state. Buckets are read individually
// atomically; a snapshot taken mid-Observe may be off by the in-flight
// observation, which quantile estimation tolerates.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.IsTime = h.isTime
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [NumBuckets]uint64
	IsTime  bool
}

// Quantile estimates the q-quantile (0 < q <= 1) in raw units, with linear
// interpolation inside the containing log2 bucket. Returns 0 for an empty
// snapshot.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := float64(cum)
		cum += c
		if float64(cum) >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(uint64(1) << (i - 1))
			}
			hi := float64(bucketUpper(i))
			frac := (rank - prev) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return uint64(lo + frac*(hi-lo))
		}
	}
	return bucketUpper(NumBuckets - 1)
}

// QuantileDuration is Quantile for latency histograms.
func (s *HistSnapshot) QuantileDuration(q float64) time.Duration {
	return time.Duration(s.Quantile(q))
}

// Mean returns the average observation in raw units (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
