package obs

import "strings"

// Snapshot arithmetic: the scenario harness measures a bounded window of a
// live system by snapshotting the registry at the window edges and diffing.
// Counters and histograms subtract (the window's activity); gauges keep the
// after-value (an instantaneous reading has no meaningful delta).

// DeltaSnapshot returns after-minus-before, metric by metric. Metrics only
// present in after pass through unchanged (they were registered inside the
// window, so their whole state is window activity). Metrics only present in
// before are dropped. Counter and histogram subtraction clamps at zero so a
// racing writer can never produce a negative window.
func DeltaSnapshot(before, after []MetricSnapshot) []MetricSnapshot {
	prev := make(map[string]MetricSnapshot, len(before))
	for _, m := range before {
		prev[m.Name] = m
	}
	out := make([]MetricSnapshot, 0, len(after))
	for _, m := range after {
		b, ok := prev[m.Name]
		if !ok || m.Kind == "gauge" {
			out = append(out, m)
			continue
		}
		switch m.Kind {
		case "counter":
			m.Value = subClamp(m.Value, b.Value)
		case "histogram":
			if m.Hist != nil && b.Hist != nil {
				d := subHist(*m.Hist, *b.Hist)
				m.Hist = &d
				m.Value = float64(d.Count)
			}
		}
		out = append(out, m)
	}
	return out
}

func subClamp(a, b float64) float64 {
	if a <= b {
		return 0
	}
	return a - b
}

// subHist subtracts b from a bucket by bucket, clamping at zero.
func subHist(a, b HistSnapshot) HistSnapshot {
	d := HistSnapshot{IsTime: a.IsTime}
	if a.Count > b.Count {
		d.Count = a.Count - b.Count
	}
	if a.Sum > b.Sum {
		d.Sum = a.Sum - b.Sum
	}
	for i := range a.Buckets {
		if a.Buckets[i] > b.Buckets[i] {
			d.Buckets[i] = a.Buckets[i] - b.Buckets[i]
		}
	}
	return d
}

// FindSnapshot looks a metric up by full name (including inline labels) in a
// snapshot slice.
func FindSnapshot(snaps []MetricSnapshot, name string) (MetricSnapshot, bool) {
	for _, m := range snaps {
		if m.Name == name {
			return m, true
		}
	}
	return MetricSnapshot{}, false
}

// SumCounters sums every counter whose base name (labels stripped) equals
// base — the cross-node total when per-node series carry {node="i"} labels.
func SumCounters(snaps []MetricSnapshot, base string) float64 {
	var sum float64
	for _, m := range snaps {
		if b, _ := splitName(m.Name); b == base && m.Hist == nil {
			sum += m.Value
		}
	}
	return sum
}

// SumSeries sums every non-histogram series with the given base name whose
// label set contains labelPair (a literal `key="value"` fragment; empty
// matches everything) — e.g. the cold-tier bytes across nodes from
// aim_core_main_bytes{node="i",tier="cold"}.
func SumSeries(snaps []MetricSnapshot, base, labelPair string) float64 {
	var sum float64
	for _, m := range snaps {
		if m.Hist != nil {
			continue
		}
		b, labels := splitName(m.Name)
		if b != base {
			continue
		}
		if labelPair != "" && !strings.Contains(labels, labelPair) {
			continue
		}
		sum += m.Value
	}
	return sum
}

// MergeHistograms merges every histogram whose base name (labels stripped)
// equals base into one snapshot — e.g. the per-follower staleness series
// aim_repl_staleness_seconds{follower="…"} folded into one distribution.
func MergeHistograms(snaps []MetricSnapshot, base string) HistSnapshot {
	var out HistSnapshot
	for _, m := range snaps {
		if m.Hist == nil {
			continue
		}
		if b, _ := splitName(m.Name); b != base {
			continue
		}
		out.IsTime = m.Hist.IsTime
		out.Count += m.Hist.Count
		out.Sum += m.Hist.Sum
		for i := range m.Hist.Buckets {
			out.Buckets[i] += m.Hist.Buckets[i]
		}
	}
	return out
}
