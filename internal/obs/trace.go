package obs

import (
	"sync"
	"time"
)

// SpanKind classifies a recorded span.
type SpanKind uint8

const (
	// SpanScanRound is one shared-scan round (coordinator dispatch through
	// partial gathering). A = batch size, B = queries answered.
	SpanScanRound SpanKind = iota
	// SpanMergeStep is one partition merge step. A = partition index,
	// B = records merged.
	SpanMergeStep
	// SpanDeltaSwitch is the delta-switch handshake (Appendix A's two-flag
	// protocol). A = partition index, B = sealed delta length.
	SpanDeltaSwitch
	// SpanRPC is one client RPC attempt. A = wire message type, B = 0 on
	// success / 1 on error.
	SpanRPC
	// SpanRuleEval is one (sampled) business-rule evaluation. A = firings.
	SpanRuleEval
)

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	switch k {
	case SpanScanRound:
		return "scan_round"
	case SpanMergeStep:
		return "merge_step"
	case SpanDeltaSwitch:
		return "delta_switch"
	case SpanRPC:
		return "rpc"
	case SpanRuleEval:
		return "rule_eval"
	}
	return "unknown"
}

// Span is one completed trace span. Spans are recorded post-hoc (start +
// duration) so the hot path pays two clock reads and one ring write, never
// an allocation.
type Span struct {
	Kind  SpanKind
	Start time.Time
	Dur   time.Duration
	// A and B are kind-specific payloads (see the SpanKind docs).
	A, B int64
}

// Tracer receives completed spans. Implementations must be cheap and safe
// for concurrent use; the hot paths call Record inline.
type Tracer interface {
	Record(s Span)
}

// RingTracer keeps the most recent spans in a fixed ring buffer. It is the
// default Tracer wired behind the /trace debug endpoint.
type RingTracer struct {
	mu   sync.Mutex
	buf  []Span
	next uint64 // total spans ever recorded; next%len(buf) is the write slot
}

// NewRingTracer returns a tracer retaining the last capacity spans
// (minimum 16).
func NewRingTracer(capacity int) *RingTracer {
	if capacity < 16 {
		capacity = 16
	}
	return &RingTracer{buf: make([]Span, capacity)}
}

// Record stores s, evicting the oldest span once the ring is full. Nil-safe.
func (t *RingTracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf[t.next%uint64(len(t.buf))] = s
	t.next++
	t.mu.Unlock()
}

// Len reports how many spans are currently retained.
func (t *RingTracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.buf)) {
		return int(t.next)
	}
	return len(t.buf)
}

// Total reports how many spans were ever recorded (including evicted ones).
func (t *RingTracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Snapshot returns the retained spans oldest-first.
func (t *RingTracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.buf))
	if t.next <= n {
		out := make([]Span, t.next)
		copy(out, t.buf[:t.next])
		return out
	}
	out := make([]Span, 0, n)
	start := t.next % n
	out = append(out, t.buf[start:]...)
	out = append(out, t.buf[:start]...)
	return out
}
