package obs_test

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/workload"
)

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(body), nil
}

// TestMetricsEndToEnd drives a real storage node (events + queries), then
// scrapes the debug server and checks the Prometheus exposition parses and
// contains populated series from the storage and query layers — including
// the freshness histogram, the metric the whole layer exists for.
func TestMetricsEndToEnd(t *testing.T) {
	sch, err := workload.BuildSmallSchema()
	if err != nil {
		t.Fatal(err)
	}
	dims, err := workload.BuildDimensions(7)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tracer := obs.NewRingTracer(256)
	node, err := core.NewNode(core.Config{
		Schema:     sch,
		Dims:       dims.Store,
		Partitions: 1,
		ESPThreads: 1,
		BucketSize: 32,
		Factory:    dims.Factory(sch),
		MaxBatch:   4,
		Metrics:    reg,
		Tracer:     tracer,
		// Aggressive tiering so the scrape below sees a populated cold tier:
		// with 200 entities in 32-record buckets, full buckets freeze as soon
		// as merges go idle.
		Tier: core.TierConfig{Enabled: true, ColdAfterEpochs: 0, MaxFreezePerStep: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	const entities = 200
	gen := event.NewGenerator(entities, 7)
	var ev event.Event
	for e := uint64(1); e <= entities; e++ {
		gen.NextFor(&ev, e)
		if _, err := node.ProcessEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	qgen, err := workload.NewQueryGen(sch, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := node.SubmitQuery(qgen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	// The freshness histogram fills when a merge step publishes a sealed
	// delta; keep trickling events until one lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m, ok := reg.Find("aim_core_freshness_seconds"); ok && m.Hist != nil && m.Hist.Count > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no freshness observation within 5s")
		}
		gen.Next(&ev)
		if _, err := node.ProcessEvent(ev); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}

	// Let idle merge rounds age buckets into the cold tier so the tier
	// gauges scrape non-zero.
	for node.TierStats().ColdBuckets == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no buckets froze within deadline: %+v", node.TierStats())
		}
		time.Sleep(time.Millisecond)
	}

	srv, err := obs.Serve("127.0.0.1:0", reg, tracer)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body, err := httpGet("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}

	// Every non-comment line must be `name[{labels}] value` with a valid
	// float value.
	series := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		name := line[:sp]
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in line %q: %v", line, err)
		}
		series[name] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	mustPositive := []string{
		"aim_core_events_total",
		"aim_core_freshness_seconds_count",
		"aim_core_merged_records_total",
		"aim_core_scan_rounds_total",
		"aim_core_queries_served_total",
		"aim_query_rounds_total",
		"aim_query_scan_round_seconds_count",
		"aim_core_event_apply_seconds_count",
		// Per-worker ESP queue capacity: the overload runbook reads depth
		// against capacity, so both gauges must be exported per worker.
		`aim_core_esp_queue_capacity{worker="0"}`,
		// Tier observability: the capacity-planning runbook reads the
		// hot/cold byte split, chunk census and compression ratio.
		`aim_core_main_bytes{tier="hot"}`,
		`aim_core_main_bytes{tier="cold"}`,
		"aim_core_cold_chunks",
		"aim_core_cold_compression_ratio",
		"aim_core_bucket_freezes_total",
	}
	for _, name := range mustPositive {
		if series[name] <= 0 {
			t.Errorf("series %s missing or zero (got %v)", name, series[name])
		}
	}
	// Queue depth is usually zero at scrape time (the worker drains fast);
	// it must still be present in the exposition, and the watermark state
	// gauge must be exported even with overload protection off.
	for _, name := range []string{
		`aim_core_esp_queue_depth{worker="0"}`,
		"aim_core_delta_watermark_state",
		// Thaws may legitimately be zero at scrape time (nothing rewrote a
		// frozen record), but the counter must be exported.
		"aim_core_bucket_thaws_total",
	} {
		if _, ok := series[name]; !ok {
			t.Errorf("series %s missing from exposition", name)
		}
	}
	// Histogram invariants on the freshness series: the +Inf bucket equals
	// the count and the sum is positive.
	inf := series[`aim_core_freshness_seconds_bucket{le="+Inf"}`]
	if inf != series["aim_core_freshness_seconds_count"] {
		t.Errorf("freshness +Inf bucket %v != count %v", inf, series["aim_core_freshness_seconds_count"])
	}
	if series["aim_core_freshness_seconds_sum"] <= 0 {
		t.Errorf("freshness sum not positive: %v", series["aim_core_freshness_seconds_sum"])
	}
	if tracer.Len() == 0 {
		t.Error("tracer recorded no spans during the workload")
	}
}
