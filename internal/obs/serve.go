package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// DebugServer is the debug HTTP endpoint of one process: Prometheus text
// exposition at /metrics, a JSON summary at /stats, recent trace spans at
// /trace, and the standard net/http/pprof handlers under /debug/pprof/.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the debug endpoint on addr (e.g. "127.0.0.1:0"). tracer may
// be nil (the /trace endpoint then reports an empty span list).
func Serve(addr string, reg *Registry, tracer *RingTracer) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	// Every debug endpoint carries the build identity and process uptime.
	RegisterBuildInfo(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		bw := bufio.NewWriter(w)
		WriteMetrics(bw, reg)
		bw.Flush()
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(StatsJSON(reg))
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(traceJSON(tracer))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go d.srv.Serve(ln)
	return d, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the endpoint down.
func (d *DebugServer) Close() error { return d.srv.Close() }

// WriteMetrics writes the registry in Prometheus text exposition format.
func WriteMetrics(w *bufio.Writer, reg *Registry) {
	lastFamily := ""
	for _, m := range reg.Snapshot() {
		base, labels := splitName(m.Name)
		if base != lastFamily {
			help := helpFor(reg, m.Name)
			if help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", base, help)
			}
			typ := m.Kind
			if typ == "histogram" {
				// exposed as the three derived series of a histogram family
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
			lastFamily = base
		}
		if m.Hist == nil {
			fmt.Fprintf(w, "%s %s\n", m.Name, formatFloat(m.Value))
			continue
		}
		writeHistogram(w, base, labels, m.Hist)
	}
}

// writeHistogram emits the cumulative _bucket/_sum/_count series for one
// histogram, converting nanosecond bounds to seconds for latency histograms.
// Empty leading/trailing buckets are elided (cumulative counts stay valid).
func writeHistogram(w *bufio.Writer, base, labels string, s *HistSnapshot) {
	highest := -1
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			highest = i
			break
		}
	}
	var cum uint64
	for i := 0; i <= highest; i++ {
		cum += s.Buckets[i]
		if s.Buckets[i] == 0 {
			continue
		}
		le := boundLabel(bucketUpper(i), s.IsTime)
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", base, labelPrefix(labels), le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labelPrefix(labels), s.Count)
	sum := float64(s.Sum)
	if s.IsTime {
		sum /= 1e9
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", base, labelSuffix(labels), formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", base, labelSuffix(labels), s.Count)
}

func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func labelSuffix(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func boundLabel(upper uint64, isTime bool) string {
	if !isTime {
		return strconv.FormatUint(upper, 10)
	}
	return strconv.FormatFloat(float64(upper)/1e9, 'g', -1, 64)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func helpFor(reg *Registry, name string) string {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	switch m := reg.metrics[name].(type) {
	case *Counter:
		return m.help
	case *Gauge:
		return m.help
	case *Histogram:
		return m.help
	case *funcMetric:
		return m.help
	}
	return ""
}

// HistJSON is the JSON shape of one histogram in /stats.
type HistJSON struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// StatsJSON renders the registry as a flat name -> value JSON map; scalars
// map to numbers, histograms to HistJSON objects (latency values in
// seconds).
func StatsJSON(reg *Registry) map[string]any {
	out := make(map[string]any)
	for _, m := range reg.Snapshot() {
		if m.Hist == nil {
			out[m.Name] = m.Value
			continue
		}
		scale := 1.0
		if m.Hist.IsTime {
			scale = 1e-9
		}
		out[m.Name] = HistJSON{
			Count: m.Hist.Count,
			Sum:   float64(m.Hist.Sum) * scale,
			Mean:  m.Hist.Mean() * scale,
			P50:   float64(m.Hist.Quantile(0.50)) * scale,
			P95:   float64(m.Hist.Quantile(0.95)) * scale,
			P99:   float64(m.Hist.Quantile(0.99)) * scale,
		}
	}
	return out
}

// spanJSON is the JSON shape of one span in /trace.
type spanJSON struct {
	Kind  string  `json:"kind"`
	Start string  `json:"start"`
	DurUS float64 `json:"dur_us"`
	A     int64   `json:"a"`
	B     int64   `json:"b"`
}

func traceJSON(t *RingTracer) []spanJSON {
	spans := t.Snapshot()
	out := make([]spanJSON, len(spans))
	for i, s := range spans {
		out[i] = spanJSON{
			Kind:  s.Kind.String(),
			Start: s.Start.Format(time.RFC3339Nano),
			DurUS: float64(s.Dur.Nanoseconds()) / 1e3,
			A:     s.A,
			B:     s.B,
		}
	}
	return out
}
