package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("aim_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("aim_test_total", "again"); c2 != c {
		t.Fatalf("re-registration returned a different counter")
	}

	g := r.Gauge("aim_test_gauge", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *RingTracer
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.ObserveSince(time.Now())
	tr.Record(Span{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Len() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("nil histogram snapshot must be empty")
	}
}

func TestRegisterTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("aim_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	r.Gauge("aim_x", "")
}

func TestFuncMetricAggregates(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("aim_depth", "", func() float64 { return 2 })
	r.GaugeFunc("aim_depth", "", func() float64 { return 3 })
	s, ok := r.Find("aim_depth")
	if !ok || s.Value != 5 {
		t.Fatalf("func metric = %+v, want sum 5", s)
	}
	if s.Kind != "gauge" {
		t.Fatalf("kind = %q, want gauge", s.Kind)
	}
	r.CounterFunc("aim_spilled_total", "", func() float64 { return 9 })
	s, _ = r.Find("aim_spilled_total")
	if s.Kind != "counter" || s.Value != 9 {
		t.Fatalf("counter func = %+v", s)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1 << 38, NumBuckets - 1},
		{math.MaxUint64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Boundary invariant: every v lands in a bucket whose bounds contain it.
	for i := 1; i < NumBuckets-1; i++ {
		lo := uint64(1) << (i - 1)
		hi := bucketUpper(i)
		for _, v := range []uint64{lo, hi - 1} {
			if b := bucketFor(v); b != i {
				t.Errorf("v=%d: bucket %d, want %d (bounds [%d,%d))", v, b, i, lo, hi)
			}
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("aim_vals", "")
	// 1000 observations of 100 -> every quantile inside [64,128).
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := s.Quantile(q)
		if v < 64 || v >= 128 {
			t.Errorf("Quantile(%v) = %d, want within [64,128)", q, v)
		}
	}
	if s.Mean() != 100 {
		t.Errorf("Mean = %v, want 100", s.Mean())
	}

	// Bimodal: 90 fast (≈8), 10 slow (≈1<<20). p50 must sit in the fast
	// bucket, p99 in the slow bucket.
	h2 := r.Histogram("aim_bimodal", "")
	for i := 0; i < 90; i++ {
		h2.Observe(8)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(1 << 20)
	}
	s2 := h2.Snapshot()
	if p50 := s2.Quantile(0.50); p50 >= 16 {
		t.Errorf("p50 = %d, want < 16", p50)
	}
	if p99 := s2.Quantile(0.99); p99 < 1<<19 {
		t.Errorf("p99 = %d, want >= %d", p99, 1<<19)
	}
	if s2.Quantile(1.0) < s2.Quantile(0.5) {
		t.Error("quantiles must be monotone")
	}
}

func TestLatencyHistogramDuration(t *testing.T) {
	r := NewRegistry()
	h := r.LatencyHistogram("aim_lat_seconds", "")
	h.ObserveDuration(3 * time.Millisecond)
	h.ObserveDuration(-time.Second) // clamps to 0
	s := h.Snapshot()
	if !s.IsTime {
		t.Fatal("latency histogram must mark IsTime")
	}
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if d := s.QuantileDuration(0.99); d < time.Millisecond || d > 8*time.Millisecond {
		t.Fatalf("p99 = %v, want ~3ms (log2 bucket)", d)
	}
}

func TestLabelAndSplitName(t *testing.T) {
	if got := Label("aim_x", "node", "0"); got != `aim_x{node="0"}` {
		t.Fatalf("Label = %q", got)
	}
	composed := Label(`aim_x{op="get"}`, "node", "1")
	if composed != `aim_x{op="get",node="1"}` {
		t.Fatalf("Label composed = %q", composed)
	}
	base, labels := splitName(composed)
	if base != "aim_x" || labels != `op="get",node="1"` {
		t.Fatalf("splitName = %q / %q", base, labels)
	}
	base, labels = splitName("aim_plain")
	if base != "aim_plain" || labels != "" {
		t.Fatalf("splitName plain = %q / %q", base, labels)
	}
}

// TestRegistryConcurrency hammers one registry from parallel writers while
// readers snapshot; run under -race this is the registry stress test.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup

	// Snapshot readers: a bounded number of full snapshot + exposition
	// passes, yielding between passes so writers make progress even on a
	// single-CPU box under the race detector.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				for _, s := range r.Snapshot() {
					_ = s.Value
				}
				var sb strings.Builder
				WriteMetrics(bufio.NewWriter(&sb), r)
				runtime.Gosched()
			}
		}()
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("aim_stress_total", "")
			g := r.Gauge("aim_stress_gauge", "")
			h := r.LatencyHistogram("aim_stress_seconds", "")
			r.GaugeFunc("aim_stress_fn", "", func() float64 { return 1 })
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(uint64(i))
			}
		}(w)
	}
	wg.Wait()

	s, ok := r.Find("aim_stress_total")
	if !ok || s.Value != writers*perWriter {
		t.Fatalf("counter = %v, want %d", s.Value, writers*perWriter)
	}
	hs, _ := r.Find("aim_stress_seconds")
	if hs.Hist == nil || hs.Hist.Count != writers*perWriter {
		t.Fatalf("histogram count = %+v, want %d", hs.Hist, writers*perWriter)
	}
}

func TestRingTracer(t *testing.T) {
	tr := NewRingTracer(16)
	for i := 0; i < 40; i++ {
		tr.Record(Span{Kind: SpanMergeStep, A: int64(i)})
	}
	if tr.Len() != 16 {
		t.Fatalf("Len = %d, want 16", tr.Len())
	}
	if tr.Total() != 40 {
		t.Fatalf("Total = %d, want 40", tr.Total())
	}
	spans := tr.Snapshot()
	if len(spans) != 16 {
		t.Fatalf("snapshot len = %d", len(spans))
	}
	for i, s := range spans {
		if s.A != int64(24+i) {
			t.Fatalf("span %d has A=%d, want %d (oldest-first)", i, s.A, 24+i)
		}
	}
	// Concurrent Record is safe.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(Span{Kind: SpanRPC})
			}
		}()
	}
	wg.Wait()
}

func TestWriteMetricsExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("aim_events_total", "events applied").Add(3)
	r.Gauge(`aim_delta_len{node="0"}`, "delta length").Set(12)
	h := r.LatencyHistogram(`aim_scan_seconds{node="0"}`, "scan latency")
	h.ObserveDuration(2 * time.Millisecond)
	h.ObserveDuration(2 * time.Millisecond)

	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	WriteMetrics(bw, r)
	bw.Flush()
	out := sb.String()

	for _, want := range []string{
		"# TYPE aim_events_total counter",
		"aim_events_total 3",
		"# TYPE aim_delta_len gauge",
		`aim_delta_len{node="0"} 12`,
		"# TYPE aim_scan_seconds histogram",
		`aim_scan_seconds_bucket{node="0",le="+Inf"} 2`,
		`aim_scan_seconds_count{node="0"} 2`,
		"# HELP aim_events_total events applied",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Sum converted ns -> seconds.
	if !strings.Contains(out, `aim_scan_seconds_sum{node="0"} 0.004`) {
		t.Errorf("sum not in seconds:\n%s", out)
	}
	// Every non-comment line must be name{labels} value.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestStatsJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("aim_c", "").Add(2)
	h := r.LatencyHistogram("aim_h_seconds", "")
	h.ObserveDuration(time.Millisecond)
	m := StatsJSON(r)
	if m["aim_c"] != float64(2) {
		t.Fatalf("aim_c = %v", m["aim_c"])
	}
	hj, ok := m["aim_h_seconds"].(HistJSON)
	if !ok || hj.Count != 1 {
		t.Fatalf("aim_h_seconds = %#v", m["aim_h_seconds"])
	}
	if hj.P99 <= 0 || hj.P99 > 0.01 {
		t.Fatalf("p99 = %v, want ~1ms in seconds", hj.P99)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("aim_served_total", "").Inc()
	tr := NewRingTracer(16)
	tr.Record(Span{Kind: SpanScanRound, Start: time.Now(), Dur: time.Millisecond, A: 4, B: 4})

	d, err := Serve("127.0.0.1:0", r, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) string {
		resp, err := httpGet("http://" + d.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}
	if body := get("/metrics"); !strings.Contains(body, "aim_served_total 1") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/stats"); !strings.Contains(body, `"aim_served_total":1`) {
		t.Errorf("/stats missing counter:\n%s", body)
	}
	if body := get("/trace"); !strings.Contains(body, `"scan_round"`) {
		t.Errorf("/trace missing span:\n%s", body)
	}
}

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
