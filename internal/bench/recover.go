package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/archive"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/event"
)

// RecoveryTime measures crash-recovery time as a function of the archive
// tail length past the newest checkpoint: the same total event history is
// laid down each time, with a full fuzzy checkpoint taken earlier or later
// in the stream (or never). Recovery cost = load checkpoint records + replay
// the tail, so the sweep isolates how checkpoint cadence buys down restart
// time — the operational knob behind aimserver's -checkpoint-every.
func RecoveryTime(p Params) (*Table, error) {
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	total := int(p.Entities)
	if total > 200_000 {
		total = 200_000
	}
	if total < 20_000 {
		total = 20_000
	}
	t := &Table{
		Title:  "Recovery time vs archive tail length (total history fixed)",
		Header: []string{"history_ev", "ckpt_records", "tail_ev", "recover_ms", "replay_ev/s"},
	}
	// Tail fractions of the total history; 1.0 = no checkpoint at all
	// (cold replay of the whole archive).
	for _, frac := range []float64{0, 0.05, 0.25, 0.5, 1.0} {
		tail := int(float64(total) * frac)
		rep, err := runRecoveryPoint(p, w, total, tail)
		if err != nil {
			return nil, fmt.Errorf("bench: recover (tail %d): %w", tail, err)
		}
		evPerSec := float64(0)
		if rep.TailEvents > 0 && rep.Duration > 0 {
			evPerSec = float64(rep.TailEvents) / rep.Duration.Seconds()
		}
		t.AddRow(total, rep.Records, rep.TailEvents, ms(rep.Duration),
			fmt.Sprintf("%.0f", evPerSec))
	}
	t.Note("recover_ms = checkpoint load + archive tail replay (RestoreWithReport)")
	t.Note("tail 100%% = no checkpoint: cold replay bounds the worst-case restart")
	return t, nil
}

// runRecoveryPoint ingests `total` durable events with a full checkpoint
// taken after total-tail of them, shuts the node down, then measures a
// strict restore.
func runRecoveryPoint(p Params, w *Workload, total, tail int) (*core.RecoveryReport, error) {
	dir, err := os.MkdirTemp("", "aim-recover-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	arch, err := archive.Open(filepath.Join(dir, "wal"), archive.Options{})
	if err != nil {
		return nil, err
	}
	mgr, err := checkpoint.NewManager(filepath.Join(dir, "ckpt"))
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Schema:     w.Schema,
		Dims:       w.Dims.Store,
		Factory:    w.Dims.Factory(w.Schema),
		Partitions: p.Partitions,
		ESPThreads: p.ESPThreads,
		BucketSize: p.BucketSize,
		Archive:    arch,
	}
	node, err := core.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	gen := event.NewGenerator(p.Entities, p.Seed)
	feed := func(n int) error {
		var ev event.Event
		for i := 0; i < n; i++ {
			gen.Next(&ev)
			if err := node.ProcessEventAsync(ev); err != nil {
				return err
			}
		}
		return node.FlushEvents()
	}
	if err := feed(total - tail); err != nil {
		return nil, err
	}
	if tail < total {
		if _, err := node.FuzzyCheckpoint(mgr, true); err != nil {
			return nil, err
		}
	}
	if err := feed(tail); err != nil {
		return nil, err
	}
	node.Stop()
	if err := arch.Close(); err != nil {
		return nil, err
	}

	// Reopen and measure the restore, exactly the aimserver startup path.
	arch2, err := archive.Open(filepath.Join(dir, "wal"), archive.Options{Recovery: archive.Strict})
	if err != nil {
		return nil, err
	}
	cfg.Archive = arch2
	node2, rep, err := core.RestoreWithReport(cfg, mgr, checkpoint.Strict)
	if err != nil {
		return nil, err
	}
	node2.Stop()
	if err := arch2.Close(); err != nil {
		return nil, err
	}
	return rep, nil
}
