package bench

import (
	"strings"
	"testing"
	"time"
)

// tinyParams keeps harness smoke tests fast.
func tinyParams() Params {
	p := Defaults()
	p.Entities = 500
	p.EventRate = 2000
	p.Duration = 60 * time.Millisecond
	p.MaxServers = 2
	p.Clients = 2
	p.Rules = 20
	return p
}

func TestDefaultsEnvOverrides(t *testing.T) {
	t.Setenv("AIM_ENTITIES", "123")
	t.Setenv("AIM_RATE", "456")
	t.Setenv("AIM_SERVERS", "2")
	t.Setenv("AIM_DURATION", "250ms")
	t.Setenv("AIM_FULL", "1")
	p := Defaults()
	if p.Entities != 123 || p.EventRate != 456 || p.MaxServers != 2 ||
		p.Duration != 250*time.Millisecond || !p.FullSchema {
		t.Fatalf("env overrides not applied: %+v", p)
	}
}

func TestBuildWorkload(t *testing.T) {
	p := tinyParams()
	w, err := BuildWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Rules) != 20 {
		t.Fatalf("rules = %d", len(w.Rules))
	}
	if w.Schema.NumAttrs() < 100 {
		t.Fatalf("schema too small: %d attrs", w.Schema.NumAttrs())
	}
	p.FullSchema = true
	w2, err := BuildWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Schema.NumAttrs() <= w.Schema.NumAttrs() {
		t.Fatal("full schema not larger than compact")
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "bb"}}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("xyz", "w")
	tbl.Note("hello %d", 7)
	out := tbl.String()
	for _, want := range []string{"== T ==", "a    bb", "1    2.50", "xyz  w", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestStartSystemAndRunMixed(t *testing.T) {
	p := tinyParams()
	w, err := BuildWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := StartSystem(p, w, 2, p.Entities)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	if got := sys.Stats().Records; got != int(p.Entities) {
		t.Fatalf("preloaded %d records, want %d", got, p.Entities)
	}
	res, err := RunMixed(sys, p, p.Entities, p.EventRate, p.Clients)
	if err != nil {
		t.Fatal(err)
	}
	if res.RTA.Queries == 0 {
		t.Fatal("no queries completed")
	}
	if res.ESP.Sent == 0 {
		t.Fatal("no events driven")
	}
	if res.RTA.Errors != 0 {
		t.Fatalf("%d query errors", res.RTA.Errors)
	}
}

// TestExperimentsSmoke runs every experiment once at tiny scale and checks
// the tables are well-formed.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is slow")
	}
	p := tinyParams()
	exps := []struct {
		name string
		run  func(Params) (*Table, error)
		rows int // minimum expected rows
	}{
		{"kpi", KPICompliance, 6},
		{"fig9c", Fig9c10c, 2},
		{"esprate", EventRateComparison, 6},
		{"bucket", BucketSizeSweep, 5},
		{"fused", FusedScanMicro, 4},
		{"cow", COWvsDelta, 2},
	}
	for _, e := range exps {
		tbl, err := e.run(p)
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if len(tbl.Rows) < e.rows {
			t.Fatalf("%s: %d rows, want >= %d\n%s", e.name, len(tbl.Rows), e.rows, tbl.String())
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Header) {
				t.Fatalf("%s: ragged row %v", e.name, row)
			}
		}
	}
}
