package bench

import (
	"time"

	"repro/internal/obs"
)

// histRow adds one histogram's count/mean/p50/p95/p99 (in ms) to t, looked
// up by full metric name. Missing or empty histograms are skipped.
func histRow(t *Table, reg *obs.Registry, label, name string) {
	m, ok := reg.Find(name)
	if !ok || m.Hist == nil || m.Hist.Count == 0 {
		return
	}
	s := m.Hist
	t.AddRow(label, s.Count,
		ms(time.Duration(s.Mean())),
		ms(s.QuantileDuration(0.50)),
		ms(s.QuantileDuration(0.95)),
		ms(s.QuantileDuration(0.99)))
}

// MixedWorkload runs the default mixed load (event stream + closed-loop
// RTA clients) on one fully instrumented storage server and reports what
// the observability layer measured: data freshness (age of the oldest
// unmerged delta record at merge time, the paper's t_fresh from §2.1),
// per-event apply latency, shared-scan round latency and end-to-end RTA
// query latency.
func MixedWorkload(p Params) (*Table, error) {
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	pp := p
	if pp.Metrics == nil {
		pp.Metrics = obs.NewRegistry()
	}
	reg := pp.Metrics
	sys, err := StartSystem(pp, w, 1, p.Entities)
	if err != nil {
		return nil, err
	}
	res, err := RunMixed(sys, pp, p.Entities, p.EventRate, p.Clients)
	sys.Stop()
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Mixed workload, instrumented: latency & freshness histograms",
		Header: []string{"metric", "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms"},
	}
	histRow(t, reg, "freshness (t_fresh)", "aim_core_freshness_seconds")
	histRow(t, reg, "event apply", "aim_core_event_apply_seconds")
	histRow(t, reg, "rule eval", "aim_esp_rule_eval_seconds")
	histRow(t, reg, "scan round", "aim_query_scan_round_seconds")
	histRow(t, reg, "rta query (e2e)", "aim_rta_query_seconds")
	histRow(t, reg, "delta switch wait", "aim_core_switch_wait_seconds")
	histRow(t, reg, "esp park", "aim_core_esp_park_seconds")
	t.Note("load: %.0f ev/s driven (%.0f achieved), %d RTA clients at %.0f q/s",
		p.EventRate, res.ESP.AchievedRate, p.Clients, res.RTA.Throughput)
	t.Note("freshness = age of a sealed delta's oldest record when the merge publishes it (§2.1 t_fresh)")
	t.Note("event apply is 1-in-16 sampled; scan round is per shared-scan round over all partitions")
	return t, nil
}
