package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/esp"
	"repro/internal/event"
	"repro/internal/netproto"
	"repro/internal/schema"
)

// ingestPoint measures single-node ingest throughput over real TCP with one
// client-side coalescing setting. Rules are off and the schema is a minimal
// one-group matrix so the measurement isolates the ingest path itself
// (framing, syscalls, ESP dispatch, per-event Get/Put) — the costs batching
// amortizes — rather than indicator-maintenance work that is identical per
// event across batch sizes.
func ingestPoint(p Params, sch *schema.Schema, batch int) (evs int, rate float64, coalesced uint64, err error) {
	node, err := core.NewNode(core.Config{
		Schema:     sch,
		Partitions: p.Partitions,
		ESPThreads: p.ESPThreads,
		BucketSize: p.BucketSize,
		MaxBatch:   p.MaxBatch,
		Metrics:    p.Metrics,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer node.Stop()
	// Server-side coalescing stays off: the sweep isolates the client knob,
	// so batch=1 really is one frame and one apply per event.
	srv, err := netproto.Serve("127.0.0.1:0", node, sch)
	if err != nil {
		return 0, 0, 0, err
	}
	defer srv.Close()
	cli, err := netproto.DialConfig(srv.Addr(), sch, netproto.ClientConfig{
		EventBatch: batch,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer cli.Close()

	d := &esp.Driver{
		Gen:   event.NewGenerator(p.Entities, p.Seed+1),
		Rate:  0, // unthrottled: measure what the pipeline sustains
		Sink:  cli.ProcessEventAsync,
		Batch: batch,
	}
	start := time.Now()
	st, err := d.Run(p.Duration, 0)
	if err != nil {
		return 0, 0, 0, err
	}
	// The clock stops only after every event is applied, so slow apply paths
	// cannot hide behind deep queues.
	if err := cli.FlushEvents(); err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start)
	stats := node.Stats()
	if stats.EventsProcessed != uint64(st.Sent) {
		return 0, 0, 0, fmt.Errorf("bench: ingest point batch=%d: sent %d events but node processed %d",
			batch, st.Sent, stats.EventsProcessed)
	}
	return st.Sent, float64(st.Sent) / elapsed.Seconds(), stats.CoalescedPuts, nil
}

// IngestBatchSweep regenerates the batched-ingest ablation: single-node
// event throughput over TCP as the client-side wire batch grows from 1
// (per-event frames, the seed behaviour) through the default 256 to 1024.
// The speedup column is relative to batch=1.
func IngestBatchSweep(p Params) (*Table, error) {
	sch, err := schema.NewBuilder().
		AddGroup(schema.GroupSpec{Name: "calls_today", Metric: schema.MetricCount,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggCount}}).
		Build()
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		Title: fmt.Sprintf("Batched ingest: wire batch sweep, 1 node over TCP (%v/point, %d entities, minimal schema, rules off)",
			p.Duration, p.Entities),
		Header: []string{"batch", "events", "ev_per_s", "speedup", "coalesced_puts"},
	}
	var base float64
	for _, batch := range []int{1, 16, 64, 256, 1024} {
		evs, rate, coalesced, err := ingestPoint(p, sch, batch)
		if err != nil {
			return nil, err
		}
		if batch == 1 {
			base = rate
		}
		speedup := 0.0
		if base > 0 {
			speedup = rate / base
		}
		tbl.AddRow(batch, evs, fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.2fx", speedup), coalesced)
	}
	tbl.Note("batch=1 sends one 73 B frame per event; batch=N coalesces N events into one frame and one caller-grouped apply pass")
	return tbl, nil
}
