package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/esp"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/rta"
	"repro/internal/workload"
)

// System is a started benchmark deployment.
type System struct {
	Cluster *cluster.Cluster
	Nodes   []*core.StorageNode
	Coord   *rta.Coordinator
	Router  *esp.Router
	// Registry is the shared observability registry (p.Metrics, or a
	// private one when p.Metrics was nil) that every layer reports into.
	Registry *obs.Registry
	wl       *Workload
}

// StartSystem boots `servers` storage nodes configured from p/w and
// preloads `entities` Entity Records by replaying one event per entity.
func StartSystem(p Params, w *Workload, servers int, entities uint64) (*System, error) {
	reg := p.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cfg := core.Config{
		Schema:      w.Schema,
		Dims:        w.Dims.Store,
		Partitions:  p.Partitions,
		ESPThreads:  p.ESPThreads,
		BucketSize:  p.BucketSize,
		Factory:     w.Dims.Factory(w.Schema),
		MaxBatch:    p.MaxBatch,
		ESPQueueLen: p.ESPQueueLen,
		Overload:    p.Overload,
		Tier:        p.Tier,
		Rules:       w.Rules,
		Metrics:     reg,
		Archive:     p.Archive,
	}
	cl, nodes, err := cluster.NewLocal(servers, cfg)
	if err != nil {
		return nil, err
	}
	cl.Instrument(reg)
	s := &System{Cluster: cl, Nodes: nodes, Registry: reg, wl: w}
	s.Router = esp.NewRouter(cl)
	rcfg := rta.Config{Metrics: rta.NewMetrics(reg), QueryTimeout: p.QueryTimeout}
	if p.DegradedRTA {
		rcfg.Policy = rta.PolicyDegraded
	}
	s.Coord, err = rta.NewCoordinatorConfig(cl.Nodes(), rcfg)
	if err != nil {
		s.Stop()
		return nil, err
	}
	// Preload: materialize every entity with one event so scans touch the
	// full population. With admission control on, a preload burst can
	// outrun the spill queue; honor the retry-after hints instead of
	// failing the boot.
	gen := event.NewGenerator(entities, p.Seed)
	var ev event.Event
	for e := uint64(1); e <= entities; e++ {
		gen.NextFor(&ev, e)
		for {
			err := s.Router.Ingest(ev)
			if err == nil {
				break
			}
			if retry, ok := core.RetryAfterHint(err); ok {
				time.Sleep(retry)
				continue
			}
			s.Stop()
			return nil, err
		}
	}
	if err := s.Router.Flush(); err != nil {
		s.Stop()
		return nil, err
	}
	// Let merge rounds publish the preload into every main; scheduling on a
	// loaded box can take more than one round, so poll rather than sleep a
	// fixed beat.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Records < int(entities) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	return s, nil
}

// Stop shuts all nodes down.
func (s *System) Stop() {
	for _, n := range s.Nodes {
		n.Stop()
	}
}

// Stats sums the per-node counters.
func (s *System) Stats() core.NodeStats {
	var out core.NodeStats
	for _, n := range s.Nodes {
		st := n.Stats()
		out.EventsProcessed += st.EventsProcessed
		out.RuleFirings += st.RuleFirings
		out.ScanRounds += st.ScanRounds
		out.MergedRecords += st.MergedRecords
		out.QueriesServed += st.QueriesServed
		out.Records += st.Records
	}
	return out
}

// MixedResult reports one mixed-load measurement.
type MixedResult struct {
	RTA rta.ClientStats
	ESP esp.DriverStats
}

// RunMixed drives the benchmark's mixed load against a started system:
// a fixed-rate event stream plus `clients` closed-loop RTA clients issuing
// the uniform Q1–Q7 mix, both for p.Duration.
func RunMixed(s *System, p Params, entities uint64, rate float64, clients int) (MixedResult, error) {
	sources := make([]rta.QuerySource, clients)
	for i := range sources {
		g, err := workload.NewQueryGen(s.wl.Schema, p.Seed+int64(i)+1)
		if err != nil {
			return MixedResult{}, err
		}
		sources[i] = g
	}
	driver := &esp.Driver{
		Gen:  event.NewGenerator(entities, p.Seed+999),
		Rate: rate,
		Sink: s.Router.Ingest,
	}

	var wg sync.WaitGroup
	var espStats esp.DriverStats
	var espErr error
	if rate != 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			espStats, espErr = driver.Run(p.Duration, 0)
		}()
	}
	var rtaStats rta.ClientStats
	if clients > 0 {
		rtaStats = rta.RunClosedLoop(s.Coord, sources, p.Duration)
	}
	wg.Wait()
	if espErr != nil {
		return MixedResult{}, fmt.Errorf("bench: event driver: %w", espErr)
	}
	return MixedResult{RTA: rtaStats, ESP: espStats}, nil
}

// ms converts a duration to milliseconds for table output.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
