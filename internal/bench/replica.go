package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/archive"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/netproto"
	"repro/internal/query"
	"repro/internal/repl"
	"repro/internal/rta"
	"repro/internal/schema"
)

// ReplicaFailover measures the WAL-shipping replication story end to end:
// a durable TCP primary with one follower replica tailing its log over the
// wire, live ingest plus degraded-policy RTA queries throughout, and a
// primary kill mid-run. Three phases are reported — healthy (replica offloads
// scans), failover (the blackout window while the breaker opens and the
// follower is sealed, topped up and promoted), and promoted (the follower
// serving as the new primary) — along with the promotion latency, the
// longest RTA outage, and a zero-acked-loss check against the follower WAL.
func ReplicaFailover(p Params) (*Table, error) {
	sch, err := schema.NewBuilder().
		AddGroup(schema.GroupSpec{Name: "calls_today", Metric: schema.MetricCount,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggCount}}).
		Build()
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "aim-replica-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	parch, err := archive.Open(filepath.Join(dir, "pwal"), archive.Options{})
	if err != nil {
		return nil, err
	}
	defer parch.Close()
	pnode, err := core.NewNode(core.Config{
		Schema: sch, Partitions: 2, BucketSize: p.BucketSize,
		Archive: parch, IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		return nil, err
	}
	defer pnode.Stop()
	srv, err := netproto.ServeWithConfig("127.0.0.1:0", pnode, sch, netproto.ServerConfig{
		ReplArchive: parch, ReplHeartbeat: 5 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	cli, err := netproto.DialConfig(srv.Addr(), sch, netproto.ClientConfig{
		CallTimeout: time.Second, MaxRetries: -1, DisableReconnect: true,
	})
	if err != nil {
		return nil, err
	}
	defer cli.Close()

	farch, err := archive.Open(filepath.Join(dir, "fwal"), archive.Options{})
	if err != nil {
		return nil, err
	}
	defer farch.Close()
	fnode, err := core.NewNode(core.Config{
		Schema: sch, Partitions: 2, BucketSize: p.BucketSize,
		Archive: farch, IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		return nil, err
	}
	defer fnode.Stop()
	follower := repl.NewFollower(fnode, 0, repl.FollowerConfig{
		ReopenBackoff: 2 * time.Millisecond,
		Reopen: func(from uint64) (repl.Source, error) {
			return netproto.DialReplica(srv.Addr(), from, netproto.ReplicaConfig{})
		},
	})
	src, err := netproto.DialReplica(srv.Addr(), 0, netproto.ReplicaConfig{})
	if err != nil {
		return nil, err
	}
	if err := follower.Start(src); err != nil {
		return nil, err
	}
	defer follower.Stop()

	cl, err := cluster.NewWithOptions([]core.Storage{cli}, cluster.Options{
		Health: cluster.HealthConfig{
			FailureThreshold: 3, ProbeInterval: 50 * time.Millisecond,
			RetryQueue: 1 << 16, RetryInterval: 5 * time.Millisecond,
		},
		Batch: cluster.BatchConfig{MaxEvents: 64, Linger: time.Millisecond},
		Replicas: cluster.ReplicaConfig{
			AutoPromote: true, PromoteAfter: 100 * time.Millisecond,
			CheckInterval: 5 * time.Millisecond,
			ReplayTail: func(_ int, fromLSN uint64, emit func(evs []event.Event) error) error {
				// In-process "salvage": the primary's archive object survives
				// the kill the way its on-disk WAL would.
				return repl.ReplayArchiveTail(parch, fromLSN, 256, emit)
			},
		},
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	if err := cl.AttachFollower(0, follower); err != nil {
		return nil, err
	}
	coord, err := rta.NewCoordinatorBackends(cl, rta.Config{Policy: rta.PolicyDegraded})
	if err != nil {
		return nil, err
	}

	window := p.Duration
	if window < 300*time.Millisecond {
		window = 300 * time.Millisecond
	}
	tbl := &Table{
		Title:  "Replica failover: 1 primary + 1 WAL-shipped follower over TCP (window " + window.String() + "/phase)",
		Header: []string{"phase", "ingest_ev_s", "rta_qps", "rta_ok", "rta_partial", "rta_err", "replica_served"},
	}

	calls := sch.MustAttrIndex("calls_today_count")
	var qid, totalSent uint64
	var lastQueryOK time.Time
	var longestGap time.Duration
	runPhase := func(name string, until func() bool) {
		var sent, qOK, qPartial, qErr, replicaServed int
		start := time.Now()
		for !until() {
			for i := 0; i < 64; i++ {
				ev := event.Event{
					Caller:    totalSent%997 + 1,
					Timestamp: 100*24*3600*1000 + int64(totalSent),
					Duration:  5, Cost: 1,
				}
				if err := cl.ProcessEventAsync(ev); err == nil {
					sent++
				}
				totalSent++
			}
			qid++
			res, err := coord.Execute(&query.Query{
				ID: qid, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1,
			})
			now := time.Now()
			switch {
			case err != nil:
				qErr++
			case res.Incomplete:
				qPartial++
			default:
				qOK++
			}
			if err == nil {
				if !lastQueryOK.IsZero() && now.Sub(lastQueryOK) > longestGap {
					longestGap = now.Sub(lastQueryOK)
				}
				lastQueryOK = now
				if res.ReplicaShards > 0 {
					replicaServed++
				}
			}
			time.Sleep(time.Millisecond)
		}
		el := time.Since(start).Seconds()
		queries := qOK + qPartial + qErr
		tbl.AddRow(name, int(float64(sent)/el), fmt.Sprintf("%.0f", float64(queries)/el),
			qOK, qPartial, qErr, replicaServed)
	}

	healthyEnd := time.Now().Add(window)
	runPhase("healthy", func() bool { return !time.Now().Before(healthyEnd) })

	// Kill the primary: the listener and every conn die; the follower's
	// stream drops and its redials are refused, exactly like a dead host
	// whose disk (the WAL) survives.
	ackedAtKill := parch.NextLSN()
	killAt := time.Now()
	srv.Close()
	failoverDeadline := time.Now().Add(15 * time.Second)
	runPhase("failover", func() bool {
		return cl.Promotions() > 0 || time.Now().After(failoverDeadline)
	})
	if cl.Promotions() == 0 {
		return nil, fmt.Errorf("bench: no auto-promotion within 15s (follower err: %v)", follower.Err())
	}
	promoteLatency := time.Since(killAt)

	promotedEnd := time.Now().Add(window)
	runPhase("promoted", func() bool { return !time.Now().Before(promotedEnd) })

	// Zero-acked-loss check: everything the primary durably logged before
	// the kill must be in the promoted follower's own WAL.
	if err := cl.FlushEvents(); err != nil {
		return nil, fmt.Errorf("bench: post-failover flush: %w", err)
	}
	if err := fnode.FlushEvents(); err != nil {
		return nil, err
	}
	if got := farch.NextLSN(); got < ackedAtKill {
		return nil, fmt.Errorf("bench: acked-event loss: primary logged %d events, promoted WAL holds %d",
			ackedAtKill, got)
	}
	tbl.Note("failover blackout: promotion %.0f ms after the kill; longest gap between successful RTA queries %.0f ms",
		float64(promoteLatency.Microseconds())/1000, float64(longestGap.Microseconds())/1000)
	tbl.Note("zero-loss: %d events acked by the primary before the kill, %d on the promoted follower's WAL after top-up + spill replay",
		ackedAtKill, farch.NextLSN())
	return tbl, nil
}
