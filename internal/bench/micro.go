package bench

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/esp"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/rta"
	"repro/internal/rules"
	"repro/internal/schema"
	"repro/internal/workload"
)

// namedEngine pairs a baseline engine with a display label.
type namedEngine struct {
	label  string
	engine baseline.Engine
}

// buildBaselines constructs the three comparison engines preloaded with one
// event per entity (matching the AIM preload). No update overheads are
// attached — these instances serve the read-only RTA comparison.
func buildBaselines(p Params, w *Workload) ([]namedEngine, error) {
	factory := w.Dims.Factory(w.Schema)
	indexed := []int{
		w.Schema.MustAttrIndex("subscription_type"),
		w.Schema.MustAttrIndex("category"),
		w.Schema.MustAttrIndex("country_id"),
		w.Schema.MustAttrIndex("value_type"),
	}
	cow := baseline.NewCOWEngine(w.Schema, w.Dims.Store, factory, 16, 2048)
	engines := []namedEngine{
		{label: "System M", engine: baseline.NewSystemM(w.Schema, w.Dims.Store, factory, baseline.Overheads{})},
		{label: "System D", engine: baseline.NewSystemD(w.Schema, w.Dims.Store, factory, indexed, baseline.Overheads{})},
		{label: "HyPer-COW", engine: cow},
	}
	var ev event.Event
	for _, e := range engines {
		gen := event.NewGenerator(p.Entities, p.Seed)
		for ent := uint64(1); ent <= p.Entities; ent++ {
			gen.NextFor(&ev, ent)
			if err := e.engine.ApplyEvent(ev); err != nil {
				return nil, err
			}
		}
	}
	cow.RefreshSnapshot()
	return engines, nil
}

// buildMixedBaselines constructs preloaded engines with the calibrated
// per-update overheads, for the mixed-load (updates + queries) comparison.
func buildMixedBaselines(p Params, w *Workload) ([]namedEngine, error) {
	factory := w.Dims.Factory(w.Schema)
	indexed := []int{w.Schema.MustAttrIndex("subscription_type")}
	cow := baseline.NewCOWEngine(w.Schema, w.Dims.Store, factory, 16, 2048)
	cow.Ov = baseline.CalibratedHyPer()
	engines := []namedEngine{
		{label: "System M", engine: baseline.NewSystemM(w.Schema, w.Dims.Store, factory, baseline.CalibratedSystemM())},
		{label: "System D", engine: baseline.NewSystemD(w.Schema, w.Dims.Store, factory, indexed, baseline.CalibratedSystemD())},
		{label: "HyPer-COW", engine: cow},
	}
	// Overheads only bite per ApplyEvent, so disable them for the preload
	// and restore the calibrated values afterwards.
	var ev event.Event
	for _, e := range engines {
		setOverhead(e.engine, baseline.Overheads{})
		gen := event.NewGenerator(p.Entities, p.Seed)
		for ent := uint64(1); ent <= p.Entities; ent++ {
			gen.NextFor(&ev, ent)
			if err := e.engine.ApplyEvent(ev); err != nil {
				return nil, err
			}
		}
	}
	setOverhead(engines[0].engine, baseline.CalibratedSystemM())
	setOverhead(engines[1].engine, baseline.CalibratedSystemD())
	setOverhead(engines[2].engine, baseline.CalibratedHyPer())
	cow.RefreshSnapshot()
	return engines, nil
}

// setOverhead adjusts an engine's overhead model in place.
func setOverhead(e baseline.Engine, ov baseline.Overheads) {
	switch eng := e.(type) {
	case *baseline.SystemM:
		eng.SetOverheads(ov)
	case *baseline.SystemD:
		eng.SetOverheads(ov)
	case *baseline.COWEngine:
		eng.Ov = ov
	}
}

// runBaselineMixed drives updates as fast as the engine sustains them while
// `clients` closed-loop query clients run, returning the query stats and
// the achieved event rate.
func runBaselineMixed(e baseline.Engine, w *Workload, clients int, p Params) (rta.ClientStats, float64) {
	done := make(chan struct{})
	var evRate float64
	go func() {
		defer close(done)
		gen := event.NewGenerator(p.Entities, p.Seed+600)
		var ev event.Event
		n := 0
		start := time.Now()
		for time.Since(start) < p.Duration {
			gen.Next(&ev)
			if e.ApplyEvent(ev) != nil {
				return
			}
			n++
		}
		evRate = float64(n) / time.Since(start).Seconds()
	}()
	st := runBaselineClosedLoop(e, w, clients, p)
	<-done
	return st, evRate
}

// runBaselineClosedLoop mirrors rta.RunClosedLoop against a baseline engine.
func runBaselineClosedLoop(e baseline.Engine, w *Workload, clients int, p Params) rta.ClientStats {
	var mu sync.Mutex
	var lats []time.Duration
	errs := 0
	deadline := time.Now().Add(p.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			src, err := workload.NewQueryGen(w.Schema, seed)
			if err != nil {
				return
			}
			for time.Now().Before(deadline) {
				q := src.Next()
				t0 := time.Now()
				_, err := e.RunQuery(q)
				lat := time.Since(t0)
				mu.Lock()
				if err != nil {
					errs++
				} else {
					lats = append(lats, lat)
				}
				mu.Unlock()
			}
		}(p.Seed + int64(c) + 500)
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := rta.ClientStats{Duration: elapsed, Errors: errs, Queries: len(lats)}
	if len(lats) == 0 {
		return st
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	st.Throughput = float64(len(lats)) / elapsed.Seconds()
	st.MeanLatency = sum / time.Duration(len(lats))
	st.P95Latency = lats[(len(lats)*95)/100]
	st.MaxLatency = lats[len(lats)-1]
	return st
}

// EventRateComparison reproduces the §5.1/§5.3 update-rate comparison: the
// maximum sustainable event-processing rate of AIM (both architecture
// options) and the baselines with their calibrated commercial overheads.
func EventRateComparison(p Params) (*Table, error) {
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Event processing rate: AIM vs baselines (paper §5.1/§5.3)",
		Header: []string{"system", "events", "ev/s"},
	}

	// AIM, architecture (b): colocated ESP threads, pipelined events.
	sys, err := StartSystem(p, w, 1, p.Entities)
	if err != nil {
		return nil, err
	}
	n := int(p.EventRate * p.Duration.Seconds() * 4)
	if n < 20_000 {
		n = 20_000
	}
	gen := event.NewGenerator(p.Entities, p.Seed+3)
	var ev event.Event
	start := time.Now()
	for i := 0; i < n; i++ {
		gen.Next(&ev)
		if err := sys.Router.Ingest(ev); err != nil {
			sys.Stop()
			return nil, err
		}
	}
	if err := sys.Router.Flush(); err != nil {
		sys.Stop()
		return nil, err
	}
	el := time.Since(start)
	t.AddRow("AIM (colocated ESP)", n, float64(n)/el.Seconds())

	// AIM, architecture (a): update at the ESP node via Get/ConditionalPut.
	var eng *rules.Engine
	if len(w.Rules) > 0 {
		eng, err = rules.NewEngine(w.Schema, w.Rules, false)
		if err != nil {
			sys.Stop()
			return nil, err
		}
	}
	proc := esp.NewGetPutProcessor(w.Schema, sys.Nodes[0], eng, w.Dims.Factory(w.Schema))
	nA := n / 10
	start = time.Now()
	for i := 0; i < nA; i++ {
		gen.Next(&ev)
		if _, err := proc.Process(ev); err != nil {
			sys.Stop()
			return nil, err
		}
	}
	el = time.Since(start)
	t.AddRow("AIM (separate ESP, Get/Put)", nA, float64(nA)/el.Seconds())
	sys.Stop()

	// AIM without the 300-rule evaluation, to isolate the storage kernel.
	pNoRules := p
	pNoRules.Rules = 0
	wNoRules, err := BuildWorkload(pNoRules)
	if err != nil {
		return nil, err
	}
	sysNR, err := StartSystem(pNoRules, wNoRules, 1, p.Entities)
	if err != nil {
		return nil, err
	}
	gen = event.NewGenerator(p.Entities, p.Seed+5)
	start = time.Now()
	for i := 0; i < n; i++ {
		gen.Next(&ev)
		if err := sysNR.Router.Ingest(ev); err != nil {
			sysNR.Stop()
			return nil, err
		}
	}
	if err := sysNR.Router.Flush(); err != nil {
		sysNR.Stop()
		return nil, err
	}
	el = time.Since(start)
	sysNR.Stop()
	t.AddRow("AIM (colocated, no rules)", n, float64(n)/el.Seconds())

	// Baselines with calibrated commercial overheads (the structural
	// substrate is real; the overheads model the engine machinery our
	// reproduction does not pay — see DESIGN.md §3).
	factory := w.Dims.Factory(w.Schema)
	indexed := []int{w.Schema.MustAttrIndex("subscription_type")}
	cow := baseline.NewCOWEngine(w.Schema, w.Dims.Store, factory, 16, 2048)
	cow.Ov = baseline.CalibratedHyPer()
	updEngines := []namedEngine{
		{label: "HyPer-COW (calibrated)", engine: cow},
		{label: "System D (calibrated)", engine: baseline.NewSystemD(w.Schema, w.Dims.Store, factory, indexed, baseline.CalibratedSystemD())},
		{label: "System M (calibrated)", engine: baseline.NewSystemM(w.Schema, w.Dims.Store, factory, baseline.CalibratedSystemM())},
	}
	for _, e := range updEngines {
		gen := event.NewGenerator(p.Entities, p.Seed+4)
		deadline := time.Now().Add(p.Duration)
		start := time.Now()
		count := 0
		for time.Now().Before(deadline) {
			gen.Next(&ev)
			if err := e.engine.ApplyEvent(ev); err != nil {
				return nil, err
			}
			count++
		}
		el := time.Since(start)
		t.AddRow(e.label, count, float64(count)/el.Seconds())
	}
	t.Note("paper: AIM ~100k ev/s on 10 servers; HyPer ~5.5k; System D ~200; System M ~100")
	t.Note("System M/D rates follow the calibrated overheads in internal/baseline (see DESIGN.md)")
	return t, nil
}

// RuleIndexCrossover reproduces the §4.4 micro-benchmark: straight-forward
// Algorithm 2 vs the Fabret-style rule index across rule-set sizes. The
// paper found the index starts paying off around 1000 rules.
func RuleIndexCrossover(p Params) (*Table, error) {
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Rule evaluation: straight-forward (Alg. 2) vs rule index (§4.4)",
		Header: []string{"rules", "straight_ns/ev", "indexed_ns/ev", "index_speedup"},
	}
	// A populated record so predicates see realistic values.
	rec := w.Dims.Factory(w.Schema)(1)
	gen := event.NewGenerator(p.Entities, p.Seed)
	var ev event.Event
	for i := 0; i < 50; i++ {
		gen.NextFor(&ev, 1)
		w.Schema.Apply(rec, &ev)
	}
	const probes = 2000
	events := make([]event.Event, probes)
	for i := range events {
		gen.NextFor(&events[i], 1)
	}
	for _, nRules := range []int{10, 50, 100, 300, 1000, 2000, 5000} {
		rs, err := workload.BuildRules(w.Schema, nRules, p.Seed)
		if err != nil {
			return nil, err
		}
		straight := timeRuleEval(w.Schema, rs, false, rec, events)
		indexed := timeRuleEval(w.Schema, rs, true, rec, events)
		t.AddRow(nRules, float64(straight.Nanoseconds())/probes,
			float64(indexed.Nanoseconds())/probes,
			float64(straight)/float64(indexed))
	}
	t.Note("paper: index pays off for rule sets of about 1000 and above")
	return t, nil
}

func timeRuleEval(sch *schema.Schema, rs []rules.Rule, useIndex bool, rec schema.Record, events []event.Event) time.Duration {
	eng, err := rules.NewEngine(sch, rs, useIndex)
	if err != nil {
		panic(err)
	}
	start := time.Now()
	for i := range events {
		eng.Evaluate(&events[i], rec)
	}
	return time.Since(start)
}

// BucketSizeSweep reproduces the §4.5 ablation: scan speed of one partition
// as the ColumnMap bucket size moves from row store (1) to pure column
// store (= all records).
func BucketSizeSweep(p Params) (*Table, error) {
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "ColumnMap bucket size: row store -> PAX -> column store (§4.5)",
		Header: []string{"bucket", "scan_ms", "records/us"},
	}
	entities := p.Entities
	g, err := workload.NewQueryGen(w.Schema, p.Seed)
	if err != nil {
		return nil, err
	}
	q := g.Q1(0)
	var ev event.Event
	for _, bs := range []int{1, 32, 512, 3072, int(entities)} {
		part := core.NewPartition(w.Schema, bs, w.Dims.Factory(w.Schema))
		gen := event.NewGenerator(entities, p.Seed)
		for e := uint64(1); e <= entities; e++ {
			gen.NextFor(&ev, e)
			part.ApplyEvent(&ev)
		}
		part.MergeStep()
		ex := query.NewExecutor(w.Schema, w.Dims.Store)
		var best time.Duration
		for r := 0; r < 5; r++ {
			partial := query.NewPartial(q)
			t0 := time.Now()
			for _, b := range part.ScanSnapshot() {
				if err := ex.ProcessBucket(b, q, partial); err != nil {
					return nil, err
				}
			}
			if d := time.Since(t0); r == 0 || d < best {
				best = d
			}
		}
		label := strconv.Itoa(bs)
		if bs == int(entities) {
			label = "all"
		}
		t.AddRow(label, ms(best), float64(entities)/float64(best.Microseconds()))
	}
	t.Note("paper: bucket size has little impact once large enough to fill SIMD lanes")
	return t, nil
}

// WorkStealingScan reproduces the §3.2 design-space ablation: the fixed
// thread-partition assignment AIM chose vs work-stealing chunk assignment,
// measured as the wall-clock time of one shared scan of a whole partition's
// buckets for a batch of queries.
func WorkStealingScan(p Params) (*Table, error) {
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Scan scheduling: fixed assignment vs work stealing (§3.2)",
		Header: []string{"workers", "scan_ms", "records/us"},
	}
	part := core.NewPartition(w.Schema, 512, w.Dims.Factory(w.Schema))
	gen := event.NewGenerator(p.Entities, p.Seed)
	var ev event.Event
	for e := uint64(1); e <= p.Entities; e++ {
		gen.NextFor(&ev, e)
		part.ApplyEvent(&ev)
	}
	part.MergeStep()
	g, err := workload.NewQueryGen(w.Schema, p.Seed)
	if err != nil {
		return nil, err
	}
	queries := []*query.Query{g.Q1(0), g.Q2(2), g.Q3(), g.Q7(1)}
	buckets := part.ScanSnapshot()
	for _, workers := range []int{1, 2, 4, 8} {
		var best time.Duration
		for r := 0; r < 5; r++ {
			t0 := time.Now()
			if _, err := query.ScanShared(w.Schema, w.Dims.Store, buckets, queries, workers); err != nil {
				return nil, err
			}
			if d := time.Since(t0); r == 0 || d < best {
				best = d
			}
		}
		t.AddRow(workers, ms(best), float64(p.Entities)/float64(best.Microseconds()))
	}
	t.Note("workers=1 equals the fixed single-thread-per-partition scan; gains need multiple cores")
	return t, nil
}

// COWvsDelta reproduces the §6 comparison the paper sketches: differential
// updates (AIM) vs copy-on-write snapshots under the same mixed load
// (unthrottled events + closed-loop query clients).
func COWvsDelta(p Params) (*Table, error) {
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Differential updates (AIM) vs copy-on-write snapshots under mixed load, equal freshness",
		Header: []string{"system", "ev/s", "resp_ms", "rta_qps", "freshness"},
	}

	// AIM: events paced at the benchmark rate, concurrent closed-loop
	// clients (the standard mixed load).
	sys, err := StartSystem(p, w, 1, p.Entities)
	if err != nil {
		return nil, err
	}
	res, err := RunMixed(sys, p, p.Entities, p.EventRate, p.Clients)
	sys.Stop()
	if err != nil {
		return nil, err
	}
	t.AddRow("AIM (delta+main)", res.ESP.AchievedRate, ms(res.RTA.MeanLatency), res.RTA.Throughput, "~1 scan round")

	// COW engine under the same mixed load, including rule evaluation and
	// a snapshot cadence matching AIM's freshness (a refresh roughly every
	// millisecond of event traffic): the structural cost of delivering the
	// paper's t_fresh with fork-style snapshots.
	factory := w.Dims.Factory(w.Schema)
	snapEvery := int(p.EventRate / 1000)
	if snapEvery < 1 {
		snapEvery = 1
	}
	cow := baseline.NewCOWEngine(w.Schema, w.Dims.Store, factory, 16, snapEvery)
	eng, err := rules.NewEngine(w.Schema, w.Rules, false)
	if err != nil {
		return nil, err
	}
	cow.Rules = eng
	var ev event.Event
	gen := event.NewGenerator(p.Entities, p.Seed)
	for e := uint64(1); e <= p.Entities; e++ {
		gen.NextFor(&ev, e)
		if err := cow.ApplyEvent(ev); err != nil {
			return nil, err
		}
	}
	cow.RefreshSnapshot()
	cowDone := make(chan struct{})
	var cowStats2 esp.DriverStats
	go func() {
		defer close(cowDone)
		d := &esp.Driver{
			Gen:  event.NewGenerator(p.Entities, p.Seed+78),
			Rate: p.EventRate,
			Sink: cow.ApplyEvent,
		}
		cowStats2, _ = d.Run(p.Duration, 0)
	}()
	cowStats := runBaselineClosedLoop(cow, w, p.Clients, p)
	<-cowDone
	t.AddRow("COW snapshots", cowStats2.AchievedRate, ms(cowStats.MeanLatency), cowStats.Throughput,
		fmt.Sprintf("%d events", snapEvery))
	t.Note("pages copied by COW: %d; paper: COW TCO 2-3x the differential-update design", cow.PagesCopied())
	return t, nil
}

// FusedScanMicro measures the fused batch-plan scan against the naive
// shared scan (per-query predicate re-evaluation) and against batch
// independent single-query passes, over one preloaded partition. The
// batches cycle through the seven Table-5 templates with random parameters,
// matching the mix a node's coordinator batches under concurrent clients.
func FusedScanMicro(p Params) (*Table, error) {
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fused shared-scan batch plans: one round over one partition",
		Header: []string{"batch", "preds", "dedup", "single_ms", "naive_ms", "fused_ms", "speedup"},
	}
	part := core.NewPartition(w.Schema, 0, w.Dims.Factory(w.Schema))
	gen := event.NewGenerator(p.Entities, p.Seed)
	var ev event.Event
	for e := uint64(1); e <= p.Entities; e++ {
		gen.NextFor(&ev, e)
		part.ApplyEvent(&ev)
	}
	part.MergeStep()
	buckets := part.ScanSnapshot()
	qg, err := workload.NewQueryGen(w.Schema, p.Seed)
	if err != nil {
		return nil, err
	}
	for _, size := range []int{1, 4, 8, 16} {
		queries := make([]*query.Query, size)
		occurrences := 0
		for i := range queries {
			queries[i] = qg.Next()
			for _, c := range queries[i].Where {
				occurrences += len(c)
			}
		}
		plan, err := query.CompileBatch(w.Schema, queries)
		if err != nil {
			return nil, err
		}
		partials := make([]*query.Partial, size)
		for qi, q := range queries {
			partials[qi] = query.NewPartial(q)
		}
		reset := func() {
			for qi, q := range queries {
				partials[qi].Reset(q)
			}
		}
		best := func(round func() error) (time.Duration, error) {
			var b time.Duration
			for r := 0; r < 5; r++ {
				reset()
				t0 := time.Now()
				if err := round(); err != nil {
					return 0, err
				}
				if d := time.Since(t0); r == 0 || d < b {
					b = d
				}
			}
			return b, nil
		}
		ex := query.NewExecutor(w.Schema, w.Dims.Store)
		single, err := best(func() error {
			for qi, q := range queries {
				for _, b := range buckets {
					if err := ex.ProcessBucket(b, q, partials[qi]); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		naive, err := best(func() error {
			for _, b := range buckets {
				for qi, q := range queries {
					if err := ex.ProcessBucket(b, q, partials[qi]); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		fused, err := best(func() error {
			for _, b := range buckets {
				if err := ex.ProcessBucketBatch(b, plan, partials); err != nil {
					return err
				}
			}
			plan.FoldDuplicates(partials)
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(size, plan.NumPredicates(),
			fmt.Sprintf("%dq/%dp", plan.NumDuplicates(), occurrences-plan.NumPredicates()),
			ms(single), ms(naive), ms(fused),
			fmt.Sprintf("%.2fx", float64(single)/float64(fused)))
	}
	t.Note("speedup = batch independent single-query passes vs one fused pass; dedup = duplicate queries / shared predicate occurrences")
	return t, nil
}
