package bench

import (
	"os"
	"testing"
	"time"

	"repro/internal/core"
)

// TestOverloadGuard is the overload drill CI runs via `make overload-guard`:
// an admission-controlled system is first calibrated (unthrottled ingest
// measures its capacity), then driven at 2x that capacity with closed-loop
// deadline-stamped RTA clients. The guard fails if any event is silently
// lost, the delta exceeds the hard watermark, analytics does not shed, the
// ingest path's availability collapses below the floor, or the node does not
// recover to the OK watermark state once the load stops. Gated behind
// AIM_OVERLOAD_GUARD=1 because it is load-sensitive by design.
func TestOverloadGuard(t *testing.T) {
	if os.Getenv("AIM_OVERLOAD_GUARD") != "1" {
		t.Skip("set AIM_OVERLOAD_GUARD=1 to run the overload drill")
	}
	const (
		deltaSoft = 2_000
		deltaHard = 8_000
		queueLen  = 512
	)
	p := Defaults()
	p.Entities = 8_000
	p.Rules = 100
	p.Clients = 4
	p.Duration = 600 * time.Millisecond
	p.Partitions = 2
	p.ESPThreads = 1
	p.ESPQueueLen = queueLen
	p.Overload = core.OverloadConfig{
		Enabled:           true,
		DeltaSoftRecords:  deltaSoft,
		DeltaHardRecords:  deltaHard,
		MaxPendingQueries: 2,
	}
	p.QueryTimeout = 8 * time.Millisecond
	p.DegradedRTA = true
	p.Metrics = nil
	w, err := BuildWorkload(p)
	if err != nil {
		t.Fatal(err)
	}

	// Calibrate: an unthrottled run with no RTA load measures what the node
	// actually applies per second on this machine.
	cal, err := StartSystem(p, w, 1, p.Entities)
	if err != nil {
		t.Fatal(err)
	}
	calPoint, err := runOverloadPoint(cal, p, p.Entities, 0, 0)
	cal.Stop()
	if err != nil {
		t.Fatal(err)
	}
	capacity := calPoint.appliedRate
	if capacity <= 0 {
		t.Fatalf("calibration measured no capacity (applied %.0f ev/s)", capacity)
	}
	t.Logf("calibrated capacity: %.0f ev/s (offered %.0f, rejected %.1f%%)",
		capacity, calPoint.offeredRate, calPoint.rejectedPct)

	// The drill, phase A: 2x the saturated-apply capacity plus the full RTA
	// client mix. A healthy admission path keeps availability high here —
	// the paced stream may even fit entirely (merge throughput exceeds the
	// saturated rate because rejections are not burning the ingest path).
	sys, err := StartSystem(p, w, 1, p.Entities)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	pt, err := runOverloadPoint(sys, p, p.Entities, 2*capacity, p.Clients)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("drill 2x: offered %.0f ev/s, applied %.0f ev/s, rejected %.1f%%, availability %.2f, peak delta %d, scan sheds %.0f, lost %.0f",
		pt.offeredRate, pt.appliedRate, pt.rejectedPct, pt.availability, pt.peakDelta, pt.scanSheds, pt.lost)

	// Phase B: full saturation (unthrottled driver) on the same system, so
	// the ingest admission path itself provably engages with typed errors
	// regardless of how fast this machine is.
	sat, err := runOverloadPoint(sys, p, p.Entities, 0, p.Clients)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("drill sat: offered %.0f ev/s, applied %.0f ev/s, rejected %.1f%%, peak delta %d, scan sheds %.0f, lost %.0f",
		sat.offeredRate, sat.appliedRate, sat.rejectedPct, sat.peakDelta, sat.scanSheds, sat.lost)

	// Invariant 1: zero silent loss — every offered event was either applied
	// or rejected with a typed error the caller saw. Exact, not approximate.
	if pt.lost != 0 || sat.lost != 0 {
		t.Errorf("silent event loss: 2x lost %.0f, saturated lost %.0f, want exactly 0", pt.lost, sat.lost)
	}
	// Invariant 2: the hard watermark bounds delta memory in both phases.
	// The admission check runs before enqueue, so events already in the ESP
	// queue may land after the delta crosses the line — allow exactly that
	// much overshoot.
	limit := int64(deltaHard + queueLen)
	if pt.peakDelta > limit || sat.peakDelta > limit {
		t.Errorf("peak pending delta (2x %d, saturated %d) exceeds hard watermark + queue slack %d",
			pt.peakDelta, sat.peakDelta, limit)
	}
	// Invariant 3: analytics sheds first — scan admission / deadline
	// eviction engaged while the ingest path kept running.
	if pt.scanSheds+sat.scanSheds == 0 {
		t.Error("no scan sheds under overload: analytics did not degrade before ingest")
	}
	// Invariant 4: under saturation, ingest admission rejects with typed
	// errors instead of blocking or dropping.
	if sat.rejectedPct == 0 {
		t.Error("saturated ingest saw no typed rejections: admission control never engaged")
	}
	// Invariant 5: availability floor at 2x offered load. The steady-state
	// acceptance ratio is at worst ~0.5 when 2x genuinely overloads; 0.25
	// leaves room for scheduler noise without letting a collapse pass.
	if pt.availability < 0.25 {
		t.Errorf("ingest availability %.2f at 2x capacity, below floor 0.25", pt.availability)
	}
	// Invariant 6: recovery — once the load stops and the final flush has
	// drained, merges must bring every partition back under the soft
	// watermark (state 0) without intervention.
	deadline := time.Now().Add(5 * time.Second)
	for {
		state := 0
		for _, n := range sys.Nodes {
			if s := n.WatermarkState(); s > state {
				state = s
			}
		}
		if state == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watermark state still %d five seconds after load stopped", state)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
