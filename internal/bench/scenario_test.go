package bench

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// gateSpec is a deliberately tiny scenario so the gate test stays fast: the
// point is the machinery (record → baseline → compare → breach), not the
// numbers.
func gateSpec() *scenario.Spec {
	return &scenario.Spec{
		Name:       "gate-test",
		Entities:   512,
		Rules:      8,
		BucketSize: 256,
		EventRate:  3000,
		Clients:    1,
		Seed:       7,
		Warmup:     scenario.Duration(100 * time.Millisecond),
		Trials:     2,
		Phases: []scenario.Phase{
			{Name: "steady", Duration: scenario.Duration(300 * time.Millisecond)},
		},
	}
}

// TestScenarioCompareGateCatchesSlowdown is the acceptance drill for the
// benchmark observatory: record a baseline, inject an artificial hot-path
// slowdown through the test hook, re-run, and assert the compare gate fails
// with the ingest-rate metric flagged.
func TestScenarioCompareGateCatchesSlowdown(t *testing.T) {
	base, err := RunScenario(gateSpec())
	if err != nil {
		t.Fatal(err)
	}
	if base.SchemaVersion != scenario.SchemaVersion || base.Kind != "scenario" {
		t.Fatalf("result envelope wrong: %+v", base)
	}
	m := base.Metrics["ingest_events_per_sec"]
	if m == nil || len(m.Trials) != 2 || m.Median <= 0 {
		t.Fatalf("ingest metric not recorded: %+v", m)
	}
	if base.Metrics["rta_qps"] == nil || base.Metrics["rta_p95_ms"] == nil {
		t.Fatalf("rta metrics missing: %v", metricNames(base))
	}
	if len(base.Obs) == 0 {
		t.Fatal("obs registry dump missing from result")
	}
	if _, ok := base.Obs["aim_process_uptime_seconds"]; !ok {
		t.Fatal("build-info/uptime metrics not embedded in result obs dump")
	}
	if base.Env.Fingerprint == "" || base.Env.GoVersion == "" || base.Env.GitSHA == "" {
		t.Fatalf("env fingerprint incomplete: %+v", base.Env)
	}

	// Promote the baseline to disk and reload it — the gate must work on
	// the persisted artifact, not the in-memory struct.
	dir := t.TempDir()
	bp, err := scenario.Promote(filepath.Join(dir, "baselines"), base)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := scenario.LoadResult(bp)
	if err != nil {
		t.Fatal(err)
	}

	// Inject the slowdown: 1ms per event caps the driver near 1000 ev/s
	// against a 3000 ev/s target — far outside any reasonable noise band.
	SlowdownPerEvent.Store(int64(time.Millisecond))
	defer SlowdownPerEvent.Store(0)
	slow, err := RunScenario(gateSpec())
	if err != nil {
		t.Fatal(err)
	}
	if slow.Metrics["ingest_events_per_sec"].Median > 0.6*baseline.Metrics["ingest_events_per_sec"].Median {
		t.Fatalf("slowdown hook ineffective: baseline %.0f ev/s, slow %.0f ev/s",
			baseline.Metrics["ingest_events_per_sec"].Median, slow.Metrics["ingest_events_per_sec"].Median)
	}

	rep, err := scenario.Compare(baseline, slow, scenario.CompareOptions{NoiseFloor: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions == 0 {
		var sb strings.Builder
		rep.Fprint(&sb)
		t.Fatalf("compare gate did not fail under injected slowdown:\n%s", sb.String())
	}
	flagged := false
	for _, d := range rep.Deltas {
		if d.Name == "ingest_events_per_sec" && d.Regression {
			flagged = true
		}
	}
	if !flagged {
		t.Fatalf("ingest_events_per_sec not among the flagged regressions: %+v", rep.Deltas)
	}
	// And the regression table must actually say so.
	var sb strings.Builder
	rep.Fprint(&sb)
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("report missing REGRESSION verdict:\n%s", sb.String())
	}
}

// TestScenarioReplicaToggle runs a miniature replica scenario and checks the
// follower lag/staleness series land in both the gating metrics and the obs
// dump.
func TestScenarioReplicaToggle(t *testing.T) {
	sp := &scenario.Spec{
		Name:       "replica-mini",
		Entities:   256,
		Rules:      4,
		BucketSize: 128,
		EventRate:  2000,
		Clients:    1,
		Replicas:   1,
		Seed:       11,
		Warmup:     scenario.Duration(80 * time.Millisecond),
		Trials:     1,
		Phases: []scenario.Phase{
			{Name: "steady", Duration: scenario.Duration(250 * time.Millisecond)},
		},
	}
	res, err := RunScenario(sp)
	if err != nil {
		t.Fatal(err)
	}
	re := res.Metrics["repl_events_per_sec"]
	if re == nil || re.Median <= 0 {
		t.Fatalf("follower applied no events: %+v", metricNames(res))
	}
	found := false
	for name := range res.Obs {
		if strings.HasPrefix(name, `aim_repl_staleness_seconds{follower="f0"}`) {
			found = true
		}
	}
	if !found {
		t.Fatal("follower staleness series missing from obs dump")
	}
}

// TestScenarioPhaseEnvelopeAndSkew exercises the burst envelope, hot-key
// skew and reconnect churn paths in one short run — the shape knobs must not
// crash and the churn counter must land in the dump.
func TestScenarioPhaseEnvelopeAndSkew(t *testing.T) {
	sp := &scenario.Spec{
		Name:           "shapes-mini",
		Entities:       256,
		Rules:          4,
		BucketSize:     128,
		EventRate:      2000,
		Clients:        2,
		HotKeyFraction: 0.7,
		HotKeySetSize:  8,
		IngestBatchMix: []int{1, 32},
		Seed:           13,
		Warmup:         scenario.Duration(60 * time.Millisecond),
		Trials:         1,
		Phases: []scenario.Phase{
			{Name: "steady", Duration: scenario.Duration(120 * time.Millisecond)},
			{Name: "burst", Duration: scenario.Duration(100 * time.Millisecond), RateFactor: 3},
			{Name: "storm", Duration: scenario.Duration(150 * time.Millisecond),
				ReconnectEvery: scenario.Duration(50 * time.Millisecond)},
		},
	}
	res, err := RunScenario(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["ingest_events_per_sec"].Median <= 0 {
		t.Fatal("no events ingested")
	}
	rc, ok := res.Obs["aim_scenario_client_reconnects_total"].(float64)
	if !ok || rc < 2 {
		t.Fatalf("reconnect churn counter = %v, want >= 2", res.Obs["aim_scenario_client_reconnects_total"])
	}
}

// TestReporterEmitsExperimentResults covers the -exp -record bridge: a
// table run lands as a schema-versioned experiment result file.
func TestReporterEmitsExperimentResults(t *testing.T) {
	dir := t.TempDir()
	rep := NewReporter(dir)
	tbl := &Table{Title: "t", Header: []string{"a"}}
	tbl.AddRow(1)
	reg := obs.NewRegistry()
	reg.Counter("x_total", "").Add(3)
	path, err := rep.EmitExperiment("fused", tbl, reg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scenario.LoadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != "experiment" || got.Scenario != "exp-fused" {
		t.Fatalf("envelope: %+v", got)
	}
	if got.Table == nil || got.Table.Rows[0][0] != "1" {
		t.Fatalf("table lost: %+v", got.Table)
	}
	if got.Obs["x_total"].(float64) != 3 {
		t.Fatalf("obs dump lost: %v", got.Obs)
	}
}

func metricNames(r *scenario.Result) []string {
	names := make([]string, 0, len(r.Metrics))
	for n := range r.Metrics {
		names = append(names, n)
	}
	return names
}
