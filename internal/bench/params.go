// Package bench is the benchmark harness that regenerates the paper's
// tables and figures (§5). Every experiment is a function returning a Table
// whose rows mirror the series the paper plots; cmd/aimbench prints them and
// bench_test.go exposes them as testing.B benchmarks.
//
// Defaults are laptop-scale (the paper used 12 servers and 10–100M
// entities; see DESIGN.md §3). Environment variables scale them up:
//
//	AIM_ENTITIES  entities per storage server   (default 20000)
//	AIM_RATE      events/second per server      (default 10000)
//	AIM_DURATION  measurement window per point  (default 1.5s)
//	AIM_SERVERS   max servers for scale-out     (default 4)
//	AIM_FULL      "1" = full 546-indicator schema (default small schema)
package bench

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/schema"
	"repro/internal/workload"
)

// Params configures one experiment run.
type Params struct {
	// Entities is the subscriber population per storage server.
	Entities uint64
	// EventRate is the driven event rate per server (events/second).
	EventRate float64
	// Duration is the measurement window per data point.
	Duration time.Duration
	// Clients is the closed-loop RTA client count (the paper's c).
	Clients int
	// Partitions is n, the RTA threads / partitions per server.
	Partitions int
	// ESPThreads is s, the ESP service loops per server.
	ESPThreads int
	// BucketSize is the ColumnMap bucket size.
	BucketSize int
	// MaxBatch caps shared-scan batches.
	MaxBatch int
	// ESPQueueLen is the per-ESP-worker request queue capacity (0 = the
	// core default).
	ESPQueueLen int
	// Overload configures storage-node admission control (zero = off,
	// legacy blocking behavior).
	Overload core.OverloadConfig
	// Tier configures the ColumnMap compressed cold tier (zero = off, every
	// bucket stays a flat hot slab).
	Tier core.TierConfig
	// QueryTimeout stamps RTA queries with a deadline so storage nodes can
	// evict them from scan rounds under overload (0 = no deadlines).
	QueryTimeout time.Duration
	// DegradedRTA selects the coordinator's degraded gather policy, letting
	// queries return partial coverage when nodes shed instead of failing.
	DegradedRTA bool
	// MaxServers bounds the scale-out experiments.
	MaxServers int
	// Rules is the Business Rule count.
	Rules int
	// FullSchema selects the 546-indicator schema over the compact one.
	FullSchema bool
	// Seed makes runs reproducible.
	Seed int64
	// Metrics, when set, is the shared observability registry every layer
	// of the started system registers its instruments on (per-node series
	// get {node="i"} labels). Nil keeps the system uninstrumented.
	Metrics *obs.Registry
	// Archive, when set, write-ahead-logs every ingested event on the
	// storage node so follower replicas can tail it. Only meaningful for
	// single-server systems (all nodes would share one log otherwise); the
	// scenario runner uses it for replica-toggle scenarios.
	Archive *archive.Archive
}

// Defaults returns laptop-scale parameters, honouring the AIM_* overrides.
func Defaults() Params {
	p := Params{
		Entities:   20_000,
		EventRate:  10_000,
		Duration:   1500 * time.Millisecond,
		Clients:    8,
		Partitions: 0, // 0 = the paper's rule: cores - s - 2, floored at 1
		ESPThreads: 1,
		BucketSize: 3072,
		MaxBatch:   8,
		MaxServers: 4,
		Rules:      workload.DefaultRuleCount,
		Seed:       42,
	}
	if v, ok := envInt("AIM_ENTITIES"); ok {
		p.Entities = uint64(v)
	}
	if v, ok := envInt("AIM_RATE"); ok {
		p.EventRate = float64(v)
	}
	if v, ok := envInt("AIM_SERVERS"); ok {
		p.MaxServers = v
	}
	if v := os.Getenv("AIM_DURATION"); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			p.Duration = d
		}
	}
	if os.Getenv("AIM_FULL") == "1" {
		p.FullSchema = true
	}
	return p
}

func envInt(name string) (int, bool) {
	v := os.Getenv(name)
	if v == "" {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Workload bundles the benchmark fixtures built from Params.
type Workload struct {
	Schema *schema.Schema
	Dims   *workload.Dimensions
	Rules  []rules.Rule
}

// BuildWorkload constructs the schema, dimensions and rule set.
func BuildWorkload(p Params) (*Workload, error) {
	var sch *schema.Schema
	var err error
	if p.FullSchema {
		sch, err = workload.BuildSchema()
	} else {
		sch, err = workload.BuildSmallSchema()
	}
	if err != nil {
		return nil, fmt.Errorf("bench: schema: %w", err)
	}
	dims, err := workload.BuildDimensions(p.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: dimensions: %w", err)
	}
	var rs []rules.Rule
	if p.Rules > 0 {
		rs, err = workload.BuildRules(sch, p.Rules, p.Seed)
		if err != nil {
			return nil, fmt.Errorf("bench: rules: %w", err)
		}
	}
	return &Workload{Schema: sch, Dims: dims, Rules: rs}, nil
}
