package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a titled grid with a header row,
// printed in the column-aligned style of the paper's result tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote printed under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}
