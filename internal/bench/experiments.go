package bench

import (
	"fmt"
	"time"

	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/vec"
	"repro/internal/workload"
)

// Fig9a10a reproduces Figures 9a and 10a: RTA response time and throughput
// for different partition counts (n = RTA server threads) and ColumnMap
// bucket sizes, on a single storage server under full mixed load.
func Fig9a10a(p Params) (*Table, error) {
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 9a/10a: RTA performance vs partitions (n) and Bucket Size",
		Header: []string{"partitions", "bucket", "resp_ms", "p95_ms", "rta_qps", "esp_ev/s"},
	}
	buckets := []struct {
		label string
		size  int
	}{
		{"1024", 1024},
		{"3072", 3072},
		{"all", int(p.Entities)}, // pure column store
	}
	for _, n := range []int{1, 2, 4, 5, 6} {
		for _, b := range buckets {
			pp := p
			pp.Partitions = n
			pp.BucketSize = b.size
			sys, err := StartSystem(pp, w, 1, p.Entities)
			if err != nil {
				return nil, err
			}
			res, err := RunMixed(sys, pp, p.Entities, p.EventRate, p.Clients)
			sys.Stop()
			if err != nil {
				return nil, err
			}
			t.AddRow(n, b.label, ms(res.RTA.MeanLatency), ms(res.RTA.P95Latency),
				res.RTA.Throughput, res.ESP.AchievedRate)
		}
	}
	t.Note("paper: best at n = cores - s - 2; bucket size minor once >= 32; 'all' = pure column store")
	return t, nil
}

// Fig9b10b reproduces Figures 9b and 10b: RTA response time and throughput
// as the closed-loop client count c grows, for AIM under mixed load and for
// the baseline systems (whose RTA performance the paper measured without
// concurrent event processing).
func Fig9b10b(p Params) (*Table, error) {
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 9b/10b: RTA performance vs closed-loop clients (c), AIM vs baselines",
		Header: []string{"system", "clients", "resp_ms", "rta_qps"},
	}
	clientSteps := []int{1, 2, 4, 8, 12, 16}

	for _, c := range clientSteps {
		sys, err := StartSystem(p, w, 1, p.Entities)
		if err != nil {
			return nil, err
		}
		res, err := RunMixed(sys, p, p.Entities, p.EventRate, c)
		sys.Stop()
		if err != nil {
			return nil, err
		}
		t.AddRow("AIM", c, ms(res.RTA.MeanLatency), res.RTA.Throughput)
	}

	engines, err := buildBaselines(p, w)
	if err != nil {
		return nil, err
	}
	for _, e := range engines {
		for _, c := range clientSteps {
			st := runBaselineClosedLoop(e.engine, w, c, p)
			t.AddRow(e.label+" (read-only)", c, ms(st.MeanLatency), st.Throughput)
		}
	}
	// The structural point of the paper: the baselines cannot carry the
	// event stream and the query load together. Re-measure at c=8 with a
	// concurrent update thread (calibrated overheads for M/D).
	mixed, err := buildMixedBaselines(p, w)
	if err != nil {
		return nil, err
	}
	for _, e := range mixed {
		st, evRate := runBaselineMixed(e.engine, w, 8, p)
		t.AddRow(e.label+" (mixed)", 8, ms(st.MeanLatency), st.Throughput)
		t.Note("%s sustained %.0f ev/s while serving queries", e.label, evRate)
	}
	t.Note("AIM measured under concurrent %v ev/s; baseline read-only rows match the paper's isolated measurement", p.EventRate)
	t.Note("paper: AIM beats all baselines by >= 2.5x in RTA response time and throughput")
	return t, nil
}

// Fig9c10c reproduces Figures 9c and 10c: scale-out — a fixed total load
// spread over a growing number of storage servers.
func Fig9c10c(p Params) (*Table, error) {
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 9c/10c: scale-out, fixed load over 1..N storage servers",
		Header: []string{"servers", "resp_ms", "rta_qps", "esp_ev/s"},
	}
	for s := 1; s <= p.MaxServers; s++ {
		sys, err := StartSystem(p, w, s, p.Entities)
		if err != nil {
			return nil, err
		}
		res, err := RunMixed(sys, p, p.Entities, p.EventRate, p.Clients)
		sys.Stop()
		if err != nil {
			return nil, err
		}
		t.AddRow(s, ms(res.RTA.MeanLatency), res.RTA.Throughput, res.ESP.AchievedRate)
	}
	t.Note("paper: near-linear throughput increase and response-time decrease")
	return t, nil
}

// Fig11 reproduces Figure 11: scalability — servers and load grow together
// (per added server: +Entities subscribers, +EventRate events/s), with the
// paper's c=8 and c=12 client settings.
func Fig11(p Params) (*Table, error) {
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig 11: scalability, load grows with servers",
		Header: []string{"servers", "entities", "ev/s", "clients", "resp_ms", "rta_qps"},
	}
	for s := 1; s <= p.MaxServers; s++ {
		entities := p.Entities * uint64(s)
		rate := p.EventRate * float64(s)
		for _, c := range []int{8, 12} {
			sys, err := StartSystem(p, w, s, entities)
			if err != nil {
				return nil, err
			}
			res, err := RunMixed(sys, p, entities, rate, c)
			sys.Stop()
			if err != nil {
				return nil, err
			}
			t.AddRow(s, entities, rate, c, ms(res.RTA.MeanLatency), res.RTA.Throughput)
		}
	}
	t.Note("paper: roughly flat lines; more clients trade response time for throughput")
	return t, nil
}

// SharedScanBatch is the §3.2 ablation: query throughput as the shared-scan
// batch cap grows, under a heavy closed-loop client load. MaxBatch = 1 is
// the thread-per-query-like regime.
func SharedScanBatch(p Params) (*Table, error) {
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: shared-scan batch size (c = 32 clients)",
		Header: []string{"max_batch", "resp_ms", "rta_qps"},
	}
	for _, mb := range []int{1, 2, 4, 8, 16, 32} {
		pp := p
		pp.MaxBatch = mb
		sys, err := StartSystem(pp, w, 1, p.Entities)
		if err != nil {
			return nil, err
		}
		res, err := RunMixed(sys, pp, p.Entities, p.EventRate, 32)
		sys.Stop()
		if err != nil {
			return nil, err
		}
		t.AddRow(mb, ms(res.RTA.MeanLatency), res.RTA.Throughput)
	}
	t.Note("shared scans amortize one pass over many queries (SharedDB-style)")
	return t, nil
}

// KPICompliance reproduces the Table 4 check: under the default deployment
// and load, measure every KPI the SLA defines.
func KPICompliance(p Params) (*Table, error) {
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	sys, err := StartSystem(p, w, 1, p.Entities)
	if err != nil {
		return nil, err
	}
	defer sys.Stop()

	// t_ESP: synchronous per-event processing latency.
	gen := event.NewGenerator(p.Entities, p.Seed+1000)
	var worstESP, sumESP time.Duration
	const espProbes = 200
	for i := 0; i < espProbes; i++ {
		var ev event.Event
		gen.Next(&ev)
		t0 := time.Now()
		if _, err := sys.Cluster.ProcessEvent(ev); err != nil {
			return nil, err
		}
		d := time.Since(t0)
		sumESP += d
		if d > worstESP {
			worstESP = d
		}
	}

	// t_fresh: time until an ingested event becomes visible to queries.
	fresh, err := measureFreshness(sys, w, p)
	if err != nil {
		return nil, err
	}

	// Mixed load for f_ESP / t_RTA / f_RTA.
	res, err := RunMixed(sys, p, p.Entities, p.EventRate, p.Clients)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Table 4: KPI compliance (scaled load)",
		Header: []string{"kpi", "target", "measured", "met"},
	}
	t.AddRow("t_ESP (max, ms)", "10", ms(worstESP), pass(ms(worstESP) <= 10))
	t.AddRow("t_ESP (mean, ms)", "-", ms(sumESP/espProbes), "-")
	t.AddRow("f_ESP (ev/s)", fmt.Sprintf("%.0f", p.EventRate),
		fmt.Sprintf("%.0f", res.ESP.AchievedRate), pass(res.ESP.AchievedRate >= 0.95*p.EventRate))
	t.AddRow("t_RTA (mean, ms)", "100", ms(res.RTA.MeanLatency), pass(ms(res.RTA.MeanLatency) <= 100))
	t.AddRow("f_RTA (q/s)", "100", fmt.Sprintf("%.0f", res.RTA.Throughput), pass(res.RTA.Throughput >= 100))
	t.AddRow("t_fresh (ms)", "1000", ms(fresh), pass(fresh <= time.Second))
	return t, nil
}

func pass(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// measureFreshness ingests a marker event for a fresh entity and polls a
// count query until the entity becomes visible.
func measureFreshness(sys *System, w *Workload, p Params) (time.Duration, error) {
	marker := p.Entities + 777_000_001
	calls := w.Schema.MustAttrIndex("calls_any_week_count")
	id := w.Schema.MustAttrIndex("entity_id")
	q := &query.Query{
		ID:      1,
		Where:   []query.Conjunct{{query.PredInt(id, vec.Eq, int64(marker))}},
		Aggs:    []query.AggExpr{{Op: query.OpSum, Attr: calls}},
		GroupBy: -1,
	}
	start := time.Now()
	gen := event.NewGenerator(p.Entities, p.Seed+31)
	var ev event.Event
	gen.NextFor(&ev, marker)
	if err := sys.Router.Ingest(ev); err != nil {
		return 0, err
	}
	deadline := start.Add(10 * time.Second)
	for time.Now().Before(deadline) {
		res, err := sys.Coord.Execute(q)
		if err != nil {
			return 0, err
		}
		if len(res.Rows) > 0 && res.Rows[0].Values[0] >= 1 {
			return time.Since(start), nil
		}
	}
	return 0, fmt.Errorf("bench: marker event never became visible")
}

// Ensure the workload query generator satisfies the RTA client interface.
var _ interface{ Next() *query.Query } = (*workload.QueryGen)(nil)
