package bench

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/netproto"
	"repro/internal/query"
	"repro/internal/rta"
	"repro/internal/schema"
)

// FaultTolerance is the chaos drill (beyond the paper, which assumes a
// lossless Infiniband fabric): 3 TCP storage servers with faults injected
// on one node's links — resets, delays, then full dial refusal — measuring
// what the ESP pipeline and the strict vs. degraded RTA gather policies
// deliver in each phase, and that the cluster converges after healing.
func FaultTolerance(p Params) (*Table, error) {
	sch, err := schema.NewBuilder().
		AddGroup(schema.GroupSpec{Name: "calls_today", Metric: schema.MetricCount,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggCount}}).
		Build()
	if err != nil {
		return nil, err
	}
	plan := netproto.NewFaultPlan()

	var nodes []*core.StorageNode
	var servers []*netproto.Server
	var clients []*netproto.Client
	var handles []core.Storage
	defer func() {
		for _, c := range clients {
			c.Close()
		}
		for _, s := range servers {
			s.Close()
		}
		for _, n := range nodes {
			n.Stop()
		}
	}()
	for i := 0; i < 3; i++ {
		node, err := core.NewNode(core.Config{
			Schema: sch, Partitions: 2, BucketSize: p.BucketSize,
			IdleMergePause: 200 * time.Microsecond,
		})
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, node)
		srv, err := netproto.Serve("127.0.0.1:0", node, sch)
		if err != nil {
			return nil, err
		}
		servers = append(servers, srv)
		cfg := netproto.ClientConfig{
			CallTimeout: time.Second,
			MaxRetries:  4,
			BackoffBase: 2 * time.Millisecond,
			BackoffMax:  20 * time.Millisecond,
		}
		if i == 0 {
			cfg.Dialer = plan.Dialer()
		}
		cli, err := netproto.DialConfig(srv.Addr(), sch, cfg)
		if err != nil {
			return nil, err
		}
		clients = append(clients, cli)
		handles = append(handles, cli)
	}
	cl, err := cluster.NewWithHealth(handles, cluster.HealthConfig{
		FailureThreshold: 3, ProbeInterval: 20 * time.Millisecond,
		RetryQueue: 1 << 16, RetryInterval: 5 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	strict, err := rta.NewCoordinator(handles)
	if err != nil {
		return nil, err
	}
	degraded, err := rta.NewCoordinatorConfig(handles, rta.Config{Policy: rta.PolicyDegraded})
	if err != nil {
		return nil, err
	}
	calls := sch.MustAttrIndex("calls_today_count")
	var qid uint64
	nextQuery := func() *query.Query {
		qid++
		return &query.Query{ID: qid, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	}

	window := p.Duration / 4
	if window < 200*time.Millisecond {
		window = 200 * time.Millisecond
	}
	phases := []struct {
		name  string
		apply func()
	}{
		{"healthy", func() { plan.Heal() }},
		{"flaky", func() { plan.SetResetEvery(3); plan.SetReadDelay(time.Millisecond); plan.ResetAll() }},
		{"dead", func() { plan.Heal(); plan.SetFailDial(true); plan.ResetAll() }},
		{"healed", func() { plan.Heal() }},
	}

	tbl := &Table{
		Title:  "Fault tolerance: 1 of 3 TCP nodes faulty (window " + window.String() + "/phase)",
		Header: []string{"phase", "ev_sent", "ev_refused", "strict_ok", "strict_err", "deg_ok", "deg_partial", "deg_err", "deg_p95_ms"},
	}

	totalSent := 0
	for _, ph := range phases {
		ph.apply()
		var sent, refused int
		var strictOK, strictErr, degOK, degPartial, degErr int
		var lats []time.Duration
		deadline := time.Now().Add(window)
		for time.Now().Before(deadline) {
			// A small event burst through the router path...
			for i := 0; i < 64; i++ {
				ev := event.Event{
					Caller:    uint64(totalSent%997) + 1,
					Timestamp: 100*24*3600*1000 + int64(totalSent),
					Duration:  5, Cost: 1,
				}
				if err := cl.ProcessEventAsync(ev); err != nil {
					refused++
				} else {
					sent++
				}
				totalSent++
			}
			// ...then one query under each policy.
			if _, err := strict.Execute(nextQuery()); err != nil {
				strictErr++
			} else {
				strictOK++
			}
			t0 := time.Now()
			res, err := degraded.Execute(nextQuery())
			lats = append(lats, time.Since(t0))
			switch {
			case err != nil:
				degErr++
			case res.Incomplete:
				degPartial++
			default:
				degOK++
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var p95 float64
		if len(lats) > 0 {
			p95 = float64(lats[(len(lats)*95)/100].Microseconds()) / 1000
		}
		tbl.AddRow(ph.name, sent, refused, strictOK, strictErr, degOK, degPartial, degErr, p95)
	}

	// Convergence: after healing, every accepted event must land.
	plan.Heal()
	flushDeadline := time.Now().Add(30 * time.Second)
	for {
		err := cl.FlushEvents()
		if err == nil {
			break
		}
		if time.Now().After(flushDeadline) {
			return nil, fmt.Errorf("bench: cluster never recovered after heal: %w", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var processed uint64
	for _, n := range nodes {
		processed += n.Stats().EventsProcessed
	}
	h := cl.Health(0)
	tbl.Note("after heal: %d/%d accepted events processed (spilled %d, replayed %d, dropped %d)",
		processed, totalSent, h.Spilled, h.Replayed, h.Dropped)
	if processed != uint64(totalSent)-uint64(h.Dropped) {
		return nil, errors.New("bench: event loss after heal")
	}
	return tbl, nil
}
