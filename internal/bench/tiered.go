package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/workload"
)

// tieredAgingRounds is how many hot-write/merge rounds the sweep runs after
// the initial load: enough for every cold bucket to age past the freeze
// threshold while the hot prefix keeps getting restamped.
const tieredAgingRounds = 8

// TieredSweep measures the cold tier's capacity/latency trade: resident
// bytes per entity and shared-scan latency of a flat (all-hot) partition
// versus a tiered one at several hot fractions, plus the all-cold extreme.
// Hot entities are a prefix of the population, so their write traffic stays
// confined to a few buckets and the rest of the matrix ages out and freezes
// — the skew the tier is built for. The scan runs the seven Huawei RTA
// templates over the full population, so the penalty column prices direct
// predicate/aggregate evaluation on compressed chunks (with decompression
// fallback where no kernel applies) against flat slab scans.
func TieredSweep(p Params) (*Table, error) {
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	entities := p.Entities
	bucket := p.BucketSize
	// The sweep needs several full buckets to have anything to freeze; at
	// smoke scale shrink the bucket rather than the population.
	if uint64(bucket)*4 > entities {
		bucket = int(entities / 4)
		if bucket < 64 {
			bucket = 64
		}
	}
	// Trim to a whole number of buckets: a partial tail bucket can never
	// freeze, and at sweep scale (a handful of buckets) its fixed hot cost
	// would swamp the capacity ratio the sweep exists to measure. At
	// production entity counts (thousands of buckets) the tail is noise.
	entities -= entities % uint64(bucket)

	qgen, err := workload.NewQueryGen(w.Schema, p.Seed)
	if err != nil {
		return nil, err
	}
	queries := []*query.Query{
		qgen.Q1(1), qgen.Q2(3), qgen.Q3(), qgen.Q4(4, 60), qgen.Q5(1, 1), qgen.Q6(2), qgen.Q7(0),
	}

	// build loads the full population, then runs aging rounds in which only
	// the hot prefix is rewritten. With ColdAfterEpochs=2 the cold remainder
	// freezes mid-sweep and the state at return is the steady state: buckets
	// the hot prefix touches stay hot, everything else is compressed.
	build := func(tiered bool, hotFrac float64) (*core.Partition, error) {
		part := core.NewPartition(w.Schema, bucket, w.Dims.Factory(w.Schema))
		if tiered {
			part.EnableTiering(core.TierConfig{Enabled: true, ColdAfterEpochs: 2, MaxFreezePerStep: -1})
		}
		gen := event.NewGenerator(entities, p.Seed)
		var ev event.Event
		// Merge once per bucket's worth of entities: delta iteration permutes
		// rids within a merge batch, so bucket-sized batches keep the hot
		// prefix aligned to whole buckets instead of smearing it across all.
		for e := uint64(1); e <= entities; e++ {
			gen.NextFor(&ev, e)
			part.ApplyEvent(&ev)
			if e%uint64(bucket) == 0 {
				part.MergeStep()
			}
		}
		part.MergeStep()
		part.MergeStep() // flush the sealed delta from the step above
		hot := uint64(float64(entities) * hotFrac)
		for r := 0; r < tieredAgingRounds; r++ {
			for e := uint64(1); e <= hot; e++ {
				gen.NextFor(&ev, e)
				part.ApplyEvent(&ev)
			}
			part.MergeStep()
		}
		return part, nil
	}

	scanMs := func(part *core.Partition) (float64, error) {
		var scanErr error
		d := timeBest(5, func() {
			if _, err := query.ScanShared(w.Schema, w.Dims.Store, part.ScanSnapshot(),
				queries, 1); err != nil {
				scanErr = err
			}
		})
		return float64(d.Microseconds()) / 1e3, scanErr
	}

	t := &Table{
		Title:  "Tiered compressed main: entities per GB and cold-scan penalty vs flat",
		Header: []string{"config", "bytes/entity", "entities/GB", "capacity", "scan_ms", "penalty", "cold_ratio"},
	}

	flat, err := build(false, 0)
	if err != nil {
		return nil, err
	}
	flatBytes := float64(flat.Main().MemoryBytes()) / float64(entities)
	flatScan, err := scanMs(flat)
	if err != nil {
		return nil, err
	}
	t.AddRow("flat (all hot)", fmt.Sprintf("%.0f", flatBytes),
		fmt.Sprintf("%.2fM", (1<<30)/flatBytes/1e6), "1.00x",
		fmt.Sprintf("%.2f", flatScan), "1.00x", "-")

	for _, hotFrac := range []float64{0.25, 0.10, 0.02, 0} {
		part, err := build(true, hotFrac)
		if err != nil {
			return nil, err
		}
		ts := part.Main().Tier()
		if ts.ColdBuckets == 0 {
			return nil, fmt.Errorf("bench: tiered sweep hot=%.2f froze nothing (%+v)", hotFrac, ts)
		}
		bytesPerEnt := float64(part.Main().MemoryBytes()) / float64(entities)
		scan, err := scanMs(part)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("tiered %.0f%% hot", hotFrac*100)
		if hotFrac == 0 {
			label = "tiered all cold"
		}
		t.AddRow(label, fmt.Sprintf("%.0f", bytesPerEnt),
			fmt.Sprintf("%.2fM", (1<<30)/bytesPerEnt/1e6),
			fmt.Sprintf("%.2fx", flatBytes/bytesPerEnt),
			fmt.Sprintf("%.2f", scan),
			fmt.Sprintf("%.2fx", scan/flatScan),
			fmt.Sprintf("%.1fx", ts.CompressionRatio()))
	}
	t.Note("%d entities, bucket %d, %d aging rounds, ColdAfterEpochs=2; scan = Q1-Q7 shared scan, best of 5", entities, bucket, tieredAgingRounds)
	t.Note("capacity = flat bytes/entity over tiered; penalty = tiered scan time over flat")
	return t, nil
}
