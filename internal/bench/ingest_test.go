package bench

import (
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/schema"
)

// TestIngestBatchGuard asserts the batched ingest path actually pays off:
// over real TCP, the default wire batch (256) must sustain at least the
// per-event throughput. It is load-sensitive, so it only runs when
// AIM_INGEST_GUARD=1 (see `make ingest-guard`); CI machines under noisy
// neighbours should not fail the suite on a scheduling hiccup.
func TestIngestBatchGuard(t *testing.T) {
	if os.Getenv("AIM_INGEST_GUARD") != "1" {
		t.Skip("set AIM_INGEST_GUARD=1 to run the ingest throughput guard")
	}
	p := Defaults()
	p.Entities = 5_000
	p.Duration = 400 * time.Millisecond
	sch, err := schema.NewBuilder().
		AddGroup(schema.GroupSpec{Name: "calls_today", Metric: schema.MetricCount,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggCount}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	best := func(batch int) float64 {
		// Best of 3: the guard compares pipeline shapes, not scheduler luck.
		var top float64
		for i := 0; i < 3; i++ {
			_, rate, _, err := ingestPoint(p, sch, batch)
			if err != nil {
				t.Fatalf("batch=%d: %v", batch, err)
			}
			if rate > top {
				top = rate
			}
		}
		return top
	}
	perEvent := best(1)
	batched := best(256)
	t.Logf("per-event %.0f ev/s, batched %.0f ev/s (%.2fx)", perEvent, batched, batched/perEvent)
	if batched < perEvent {
		t.Fatalf("batched ingest slower than per-event: %.0f < %.0f ev/s", batched, perEvent)
	}
}

// TestIngestBatchSweepSmoke checks the experiment produces a well-formed
// table at tiny scale.
func TestIngestBatchSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep smoke test is slow")
	}
	p := tinyParams()
	tbl, err := IngestBatchSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("%d rows, want 5\n%s", len(tbl.Rows), tbl.String())
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("ragged row %v", row)
		}
		if n, err := strconv.Atoi(row[1]); err != nil || n <= 0 {
			t.Fatalf("no events delivered in row %v", row)
		}
	}
}
