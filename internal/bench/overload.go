package bench

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/esp"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/rta"
	"repro/internal/workload"
)

// OverloadSweep measures the admission-control stack end to end: a fresh
// overload-protected system per row is driven at a multiple of the base
// event rate while closed-loop RTA clients run with a per-query deadline.
// The table shows where typed shedding engages (ingest rejections, scan
// sheds), that the delta high-watermark bounds memory, and that ingest
// availability degrades gracefully instead of collapsing — the paper's
// "event processing is the SLA" ordering: analytics sheds first, ingest
// sheds last, nothing is lost silently.
func OverloadSweep(p Params) (*Table, error) {
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Overload sweep: admission control and shedding vs offered load",
		Header: []string{"load_x", "offered_ev/s", "applied_ev/s", "rejected_%",
			"avail", "peak_delta", "rta_qps", "scan_sheds", "lost"},
	}
	base := p.EventRate
	if base <= 0 {
		base = 10_000
	}
	for _, factor := range []float64{0.5, 1, 2, 4, 8} {
		pp := p
		pp.Metrics = nil // fresh registry per row so counters are per-run
		pp.Overload = core.OverloadConfig{
			Enabled:          true,
			DeltaSoftRecords: 2_000,
			DeltaHardRecords: 8_000,
			// Leave one query slot per client short so scan admission
			// visibly engages at the higher factors.
			MaxPendingQueries: maxInt(1, p.Clients-1),
		}
		pp.ESPQueueLen = 512
		pp.QueryTimeout = 8 * time.Millisecond
		pp.DegradedRTA = true
		sys, err := StartSystem(pp, w, 1, p.Entities)
		if err != nil {
			return nil, err
		}
		row, err := runOverloadPoint(sys, pp, p.Entities, base*factor, p.Clients)
		sys.Stop()
		if err != nil {
			return nil, err
		}
		t.AddRow(factor, row.offeredRate, row.appliedRate, row.rejectedPct,
			row.availability, row.peakDelta, row.rtaQPS, row.scanSheds, row.lost)
	}
	t.Note("lost must be 0 at every factor: offered == applied + rejected exactly after the final flush")
	t.Note("availability = accepted/offered; rejections are typed ErrOverloaded with a retry-after hint, not silent drops")
	return t, nil
}

type overloadPoint struct {
	offeredRate  float64
	appliedRate  float64
	rejectedPct  float64
	availability float64
	peakDelta    int64
	rtaQPS       float64
	scanSheds    float64
	lost         float64
}

// runOverloadPoint drives one measured window at the given offered rate with
// a rejection-tolerant sink, sampling the delta high-watermark throughout,
// and settles the zero-silent-loss ledger after a final flush.
func runOverloadPoint(s *System, p Params, entities uint64, rate float64, clients int) (overloadPoint, error) {
	before := s.Registry.Snapshot()
	var offered, rejected uint64
	sink := func(ev event.Event) error {
		atomic.AddUint64(&offered, 1)
		err := s.Router.Ingest(ev)
		if err != nil && errors.Is(err, core.ErrOverloaded) {
			// Typed admission rejection: the caller keeps the event; for
			// the sweep we count it instead of retrying so the row shows
			// the raw shed fraction at this offered rate.
			atomic.AddUint64(&rejected, 1)
			return nil
		}
		return err
	}
	driver := &esp.Driver{
		Gen:  event.NewGenerator(entities, p.Seed+999),
		Rate: rate,
		Sink: sink,
	}

	// Sample the watermark quantity while the load runs: the peak pending
	// delta is the memory bound the hard watermark is supposed to enforce.
	var peak int64
	sampleDone := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampleDone:
				return
			case <-tick.C:
				for _, n := range s.Nodes {
					if v := n.MaxPendingDelta(); v > peak {
						peak = v
					}
				}
			}
		}
	}()

	sources := make([]rta.QuerySource, clients)
	for i := range sources {
		g, err := workload.NewQueryGen(s.wl.Schema, p.Seed+int64(i)+1)
		if err != nil {
			close(sampleDone)
			sampleWG.Wait()
			return overloadPoint{}, err
		}
		sources[i] = g
	}

	var wg sync.WaitGroup
	var espErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, espErr = driver.Run(p.Duration, 0)
	}()
	var rtaStats rta.ClientStats
	if clients > 0 {
		rtaStats = rta.RunClosedLoop(s.Coord, sources, p.Duration)
	}
	wg.Wait()
	close(sampleDone)
	sampleWG.Wait()
	if espErr != nil {
		return overloadPoint{}, espErr
	}
	// Settle the ledger: everything accepted must reach the delta before
	// counting applied events, or in-flight events would read as lost.
	if err := s.Router.Flush(); err != nil {
		return overloadPoint{}, err
	}
	delta := obs.DeltaSnapshot(before, s.Registry.Snapshot())
	applied := obs.SumCounters(delta, "aim_core_events_total")
	sheds := obs.SumCounters(delta, "aim_query_scan_rejections_total")

	secs := p.Duration.Seconds()
	off, rej := float64(offered), float64(rejected)
	pt := overloadPoint{
		offeredRate: off / secs,
		appliedRate: applied / secs,
		peakDelta:   peak,
		rtaQPS:      rtaStats.Throughput,
		scanSheds:   sheds,
		lost:        off - rej - applied,
	}
	if off > 0 {
		pt.rejectedPct = 100 * rej / off
		pt.availability = (off - rej) / off
	}
	return pt, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
