package bench

import (
	"repro/internal/obs"
	"repro/internal/scenario"
)

// Reporter routes experiment output through the scenario result schema, so
// `aimbench -exp … -record` leaves the same timestamped, fingerprinted,
// schema-versioned files under benchmarks/results/ as scenario runs do —
// experiments just carry a rendered table and the registry dump instead of
// multi-trial gating metrics.
type Reporter struct {
	// Dir is the results root (scenario.DefaultResultsDir normally).
	Dir string
	env scenario.Env
}

// NewReporter captures the environment once for all emissions of a run.
func NewReporter(dir string) *Reporter {
	if dir == "" {
		dir = scenario.DefaultResultsDir
	}
	return &Reporter{Dir: dir, env: scenario.CaptureEnv()}
}

// EmitExperiment writes one experiment's table (plus the shared registry
// dump, when the run was instrumented) as an "experiment"-kind result file
// named exp-<name>, returning the path.
func (r *Reporter) EmitExperiment(name string, tbl *Table, reg *obs.Registry) (string, error) {
	res := scenario.NewResult("experiment", "exp-"+name, r.env)
	res.Table = &scenario.TableDump{
		Title:  tbl.Title,
		Header: tbl.Header,
		Rows:   tbl.Rows,
		Notes:  tbl.Notes,
	}
	if reg != nil {
		res.Obs = obs.StatsJSON(reg)
	}
	return scenario.WriteResult(r.Dir, res)
}
