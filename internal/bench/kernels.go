package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/event"
	"repro/internal/vec"
	"repro/internal/workload"
)

// timeBest runs f rounds times and returns the fastest wall-clock duration —
// the standard noise filter on a shared host.
func timeBest(rounds int, f func()) time.Duration {
	var best time.Duration
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); r == 0 || d < best {
			best = d
		}
	}
	return best
}

const (
	kernelCols  = 1 << 16 // column length for scan-kernel micro rows
	kernelReps  = 32      // kernel invocations per timed round
	applyEvents = 100_000 // events per apply-kernel micro row
)

// cmpKernelNs measures one compare kernel, cycling all six operators so a
// row reflects the average specialized loop, in ns per element.
func cmpKernelNs(run func(op vec.CmpOp)) float64 {
	ops := []vec.CmpOp{vec.Lt, vec.Le, vec.Gt, vec.Ge, vec.Eq, vec.Ne}
	d := timeBest(3, func() {
		for r := 0; r < kernelReps; r++ {
			run(ops[r%len(ops)])
		}
	})
	return float64(d.Nanoseconds()) / float64(kernelCols*kernelReps)
}

// maskAtDensity fills mask over n records with approximately the given bit
// density, deterministically.
func maskAtDensity(n int, density float64, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	mask := make([]uint64, vec.MaskWords(n))
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			mask[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return mask
}

// KernelMicro measures the scan and apply kernels this repo's single-core
// throughput hangs on (§4.7.1's SIMD substitute and the UPDATE_MATRIX inner
// loop): specialized branchless compares, density-adaptive masked
// aggregation, split-phase attribute-group apply, and full-schema TCP ingest
// on a deliberately apply-bound hot-key configuration.
func KernelMicro(p Params) (*Table, error) {
	t := &Table{
		Title:  "Scan & apply kernels (compact 114-indicator schema where applicable)",
		Header: []string{"kernel", "config", "value", "note"},
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// --- Compare kernels: specialized branchless full-word loops.
	icol := make([]uint64, kernelCols)
	fcol := make([]uint64, kernelCols)
	for i := range icol {
		icol[i] = uint64(rng.Int63n(1000))
		fcol[i] = math.Float64bits(float64(rng.Int63n(1000)) / 8)
	}
	mask := make([]uint64, vec.MaskWords(kernelCols))
	intNs := cmpKernelNs(func(op vec.CmpOp) { vec.CmpInt(icol, kernelCols, op, 500, mask) })
	uintNs := cmpKernelNs(func(op vec.CmpOp) { vec.CmpUint(icol, kernelCols, op, 500, mask) })
	floatNs := cmpKernelNs(func(op vec.CmpOp) { vec.CmpFloat(fcol, kernelCols, op, 62.5, mask) })
	t.AddRow("CmpInt", "6 ops avg", fmt.Sprintf("%.3f ns/elem", intNs), "reference")
	t.AddRow("CmpUint", "6 ops avg", fmt.Sprintf("%.3f ns/elem", uintNs), fmt.Sprintf("%.2fx CmpInt", uintNs/intNs))
	t.AddRow("CmpFloat", "6 ops avg", fmt.Sprintf("%.3f ns/elem", floatNs), fmt.Sprintf("%.2fx CmpInt", floatNs/intNs))

	// --- Compressed-chunk kernels: predicate evaluation directly on the
	// cold tier's encodings, priced against the raw CmpInt reference above.
	// The FOR and dict rows are the hot cases (narrow ranges and enums);
	// RLE compares by run, so its per-element cost collapses on long runs.
	forCol := make([]uint64, kernelCols)
	dictCol := make([]uint64, kernelCols)
	rleCol := make([]uint64, kernelCols)
	for i := range forCol {
		forCol[i] = uint64(rng.Int63n(1000))
		dictCol[i] = uint64(rng.Intn(16)) * 977
		rleCol[i] = uint64(i / 512)
	}
	chunks := []struct {
		name string
		ch   vec.Chunk
	}{
		{"for", vec.Compress(forCol, kernelCols, vec.HintInt)},
		{"dict", vec.Compress(dictCol, kernelCols, vec.HintInt)},
		{"rle", vec.Compress(rleCol, kernelCols, vec.HintInt)},
	}
	for _, c := range chunks {
		if got := c.ch.Enc.String(); got != c.name {
			return nil, fmt.Errorf("bench: %s column compressed as %s", c.name, got)
		}
		ch := c.ch
		ns := cmpKernelNs(func(op vec.CmpOp) { vec.CmpChunkInt(&ch, kernelCols, op, 500, mask) })
		t.AddRow("CmpChunkInt", c.name+" enc", fmt.Sprintf("%.3f ns/elem", ns),
			fmt.Sprintf("%.2fx CmpInt", ns/intNs))
	}
	aggMask := maskAtDensity(kernelCols, 0.25, p.Seed)
	for _, c := range chunks {
		ch := c.ch
		var sink int64
		d := timeBest(3, func() {
			for r := 0; r < kernelReps; r++ {
				sink += vec.SumIntChunk(&ch, aggMask)
			}
		})
		_ = sink
		t.AddRow("SumIntChunk", c.name+" enc, density 25%",
			fmt.Sprintf("%.3f ns/elem", float64(d.Nanoseconds())/float64(kernelCols*kernelReps)),
			"masked sum without materializing")
	}

	// --- Masked aggregation: density-adaptive sparse walk vs dense select.
	for _, density := range []float64{0.02, 0.25, 0.60, 0.95} {
		m := maskAtDensity(kernelCols, density, p.Seed+int64(density*100))
		var sinkI int64
		var sinkF float64
		d := timeBest(3, func() {
			for r := 0; r < kernelReps; r++ {
				sinkI += vec.SumInt(icol, m)
				sinkF += vec.SumFloat(fcol, m)
			}
		})
		_ = sinkI
		_ = sinkF
		perElem := float64(d.Nanoseconds()) / float64(2*kernelCols*kernelReps)
		t.AddRow("SumInt+SumFloat", fmt.Sprintf("density %.0f%%", density*100),
			fmt.Sprintf("%.3f ns/elem", perElem), "per column element, not per set bit")
	}

	// --- Apply kernels: split-phase attribute-group updates, 114 indicators.
	sch, err := workload.BuildSmallSchema()
	if err != nil {
		return nil, err
	}
	evs := make([]event.Event, applyEvents)
	gen := event.NewGenerator(1, p.Seed)
	for i := range evs {
		gen.NextFor(&evs[i], 1)
	}
	rec := sch.NewRecord(1)
	for i := 0; i < 64; i++ { // warm the window state
		sch.Apply(rec, &evs[i])
	}
	eager := timeBest(3, func() {
		for i := range evs {
			sch.Apply(rec, &evs[i])
		}
	})
	eagerNs := float64(eager.Nanoseconds()) / applyEvents
	t.AddRow("apply eager", "ingest+materialize per event",
		fmt.Sprintf("%.0f ns/event", eagerNs), "the seed per-event semantics")

	ingestOnly := timeBest(3, func() {
		for i := range evs {
			sch.ApplyIngest(rec, &evs[i], nil)
		}
	})
	sch.MaterializeAll(rec)
	ingestNs := float64(ingestOnly.Nanoseconds()) / applyEvents
	t.AddRow("apply ingest-only", "epoch roll + primitives",
		fmt.Sprintf("%.0f ns/event", ingestNs), "lower bound for long runs")

	dirty := make([]uint64, sch.GroupMaskWords())
	for _, runLen := range []int{4, 16} {
		runLen := runLen
		d := timeBest(3, func() {
			for i := 0; i+runLen <= len(evs); i += runLen {
				for j := 0; j < runLen; j++ {
					sch.ApplyIngest(rec, &evs[i+j], dirty)
				}
				sch.MaterializeDirty(rec, dirty, nil)
			}
		})
		perEvent := float64(d.Nanoseconds()) / float64((applyEvents/runLen)*runLen)
		t.AddRow(fmt.Sprintf("apply run=%d", runLen), "deferred materialize per run",
			fmt.Sprintf("%.0f ns/event", perEvent),
			fmt.Sprintf("%.2fx eager", eagerNs/perEvent))
	}

	// --- Full-schema TCP ingest: uniform vs apply-bound hot-key entities.
	// With 64 entities a 1024-event wire batch coalesces into ~16-event
	// same-caller runs, so the deferred-materialize path actually engages;
	// the uniform row keeps the BENCH_4 comparison point.
	type cfg struct {
		label    string
		entities uint64
		batch    int
	}
	cfgs := []cfg{
		{"uniform", p.Entities, 256},
		{"hot-key", 64, 1024},
	}
	for _, c := range cfgs {
		pc := p
		pc.Entities = c.entities
		var bestRate float64
		var bestCoal uint64
		for r := 0; r < 3; r++ {
			_, rate, coal, err := ingestPoint(pc, sch, c.batch)
			if err != nil {
				return nil, err
			}
			if rate > bestRate {
				bestRate, bestCoal = rate, coal
			}
		}
		t.AddRow("tcp ingest 114-ind", fmt.Sprintf("%s, %d entities, batch %d", c.label, c.entities, c.batch),
			fmt.Sprintf("%.0f ev/s", bestRate), fmt.Sprintf("coalesced_puts=%d", bestCoal))
	}
	t.Note("compare/agg rows: %d-element columns, best of 3; apply rows: %d events, rules off", kernelCols, applyEvents)
	return t, nil
}
