package bench

import (
	"math"
	"math/rand"
	"os"
	"testing"

	"repro/internal/event"
	"repro/internal/vec"
	"repro/internal/workload"
)

// TestKernelGuard gates the hot-kernel regressions this PR's rewrite fixed:
//
//  1. CmpUint and CmpFloat must stay in the same league as CmpInt per
//     element. The closure-dispatching kernels they replaced ran 3.9-4.7x
//     CmpInt, so the 2x band catches that class of regression with plenty
//     of headroom for the shared 1-core VM's ~30% noise (see BENCH_3).
//  2. Split-phase batched apply (ingest per event + one materialize per
//     run) must not be slower than eager per-event apply on coalesced
//     runs — if it is, the deferred-materialize plumbing has broken.
//
// Timing-sensitive, so it only runs under AIM_KERNEL_GUARD=1
// (`make kernel-guard`).
func TestKernelGuard(t *testing.T) {
	if os.Getenv("AIM_KERNEL_GUARD") != "1" {
		t.Skip("set AIM_KERNEL_GUARD=1 to run the kernel regression guard")
	}

	// --- Compare kernels, interleaved best-of-5 so frequency drift hits all
	// three the same way.
	const n = 1 << 16
	rng := rand.New(rand.NewSource(1))
	icol := make([]uint64, n)
	fcol := make([]uint64, n)
	for i := range icol {
		icol[i] = uint64(rng.Int63n(1000))
		fcol[i] = math.Float64bits(float64(rng.Int63n(1000)) / 8)
	}
	mask := make([]uint64, vec.MaskWords(n))
	var intBest, uintBest, floatBest float64
	for round := 0; round < 5; round++ {
		intNs := cmpKernelNs(func(op vec.CmpOp) { vec.CmpInt(icol, n, op, 500, mask) })
		uintNs := cmpKernelNs(func(op vec.CmpOp) { vec.CmpUint(icol, n, op, 500, mask) })
		floatNs := cmpKernelNs(func(op vec.CmpOp) { vec.CmpFloat(fcol, n, op, 62.5, mask) })
		if round == 0 || intNs < intBest {
			intBest = intNs
		}
		if round == 0 || uintNs < uintBest {
			uintBest = uintNs
		}
		if round == 0 || floatNs < floatBest {
			floatBest = floatNs
		}
	}
	t.Logf("CmpInt %.3f ns/elem, CmpUint %.3f (%.2fx), CmpFloat %.3f (%.2fx)",
		intBest, uintBest, uintBest/intBest, floatBest, floatBest/intBest)
	const cmpBand = 2.0
	if uintBest > cmpBand*intBest {
		t.Errorf("CmpUint %.3f ns/elem is %.2fx CmpInt (%.3f): per-element dispatch has crept back in",
			uintBest, uintBest/intBest, intBest)
	}
	if floatBest > cmpBand*intBest {
		t.Errorf("CmpFloat %.3f ns/elem is %.2fx CmpInt (%.3f): per-element dispatch has crept back in",
			floatBest, floatBest/intBest, intBest)
	}

	// --- Compressed-chunk compares: scanning the cold tier's FOR and dict
	// encodings in place must stay within the tiered scan-penalty budget.
	// The end-to-end bound is <=2x (gated by the tiered scenario baseline);
	// at kernel grain we allow 3x CmpInt so scheduler noise on the shared
	// host can't flake the guard, while still catching the regression class
	// where per-element decode falls back to dispatch or materialization
	// (those run >5x).
	forCol := make([]uint64, n)
	dictCol := make([]uint64, n)
	for i := range forCol {
		forCol[i] = uint64(rng.Int63n(1000))
		dictCol[i] = uint64(rng.Intn(16)) * 977
	}
	forCh := vec.Compress(forCol, n, vec.HintInt)
	dictCh := vec.Compress(dictCol, n, vec.HintInt)
	if forCh.Enc != vec.EncFOR || dictCh.Enc != vec.EncDict {
		t.Fatalf("guard columns compressed as %v/%v, want for/dict", forCh.Enc, dictCh.Enc)
	}
	var forBest, dictBest float64
	for round := 0; round < 5; round++ {
		forNs := cmpKernelNs(func(op vec.CmpOp) { vec.CmpChunkInt(&forCh, n, op, 500, mask) })
		dictNs := cmpKernelNs(func(op vec.CmpOp) { vec.CmpChunkInt(&dictCh, n, op, 500, mask) })
		if round == 0 || forNs < forBest {
			forBest = forNs
		}
		if round == 0 || dictNs < dictBest {
			dictBest = dictNs
		}
	}
	t.Logf("CmpChunkInt for %.3f ns/elem (%.2fx), dict %.3f (%.2fx)",
		forBest, forBest/intBest, dictBest, dictBest/intBest)
	const chunkBand = 3.0
	if forBest > chunkBand*intBest {
		t.Errorf("CmpChunkInt/for %.3f ns/elem is %.2fx CmpInt (%.3f): packed-code compare loop regressed",
			forBest, forBest/intBest, intBest)
	}
	if dictBest > chunkBand*intBest {
		t.Errorf("CmpChunkInt/dict %.3f ns/elem is %.2fx CmpInt (%.3f): dictionary bitmap probe regressed",
			dictBest, dictBest/intBest, intBest)
	}

	// --- Split-phase apply on the 114-indicator schema: a deferred run of
	// 16 must beat eager per-event apply. The true gain is ~2x; requiring
	// only parity keeps the guard flake-free under a noisy scheduler.
	sch, err := workload.BuildSmallSchema()
	if err != nil {
		t.Fatal(err)
	}
	const nev = 50_000
	evs := make([]event.Event, nev)
	gen := event.NewGenerator(1, 42)
	for i := range evs {
		gen.NextFor(&evs[i], 1)
	}
	rec := sch.NewRecord(1)
	dirty := make([]uint64, sch.GroupMaskWords())
	var eagerBest, runBest float64
	for round := 0; round < 3; round++ {
		eager := timeBest(1, func() {
			for i := range evs {
				sch.Apply(rec, &evs[i])
			}
		})
		deferred := timeBest(1, func() {
			const runLen = 16
			for i := 0; i+runLen <= len(evs); i += runLen {
				for j := 0; j < runLen; j++ {
					sch.ApplyIngest(rec, &evs[i+j], dirty)
				}
				sch.MaterializeDirty(rec, dirty, nil)
			}
		})
		e := float64(eager.Nanoseconds()) / nev
		d := float64(deferred.Nanoseconds()) / nev
		if round == 0 || e < eagerBest {
			eagerBest = e
		}
		if round == 0 || d < runBest {
			runBest = d
		}
	}
	t.Logf("apply eager %.0f ns/event, deferred run=16 %.0f ns/event (%.2fx)",
		eagerBest, runBest, eagerBest/runBest)
	if runBest > eagerBest {
		t.Errorf("deferred batched apply (%.0f ns/event) slower than eager per-event (%.0f): split-phase path regressed",
			runBest, eagerBest)
	}
}

// TestKernelMicroSmoke checks the kernels experiment produces a well-formed
// table at tiny scale.
func TestKernelMicroSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel micro smoke is slow")
	}
	p := tinyParams()
	tbl, err := KernelMicro(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 10 {
		t.Fatalf("%d rows, want at least 10\n%s", len(tbl.Rows), tbl.String())
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("ragged row %v", row)
		}
	}
}
