package bench

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/esp"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/rta"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// SlowdownPerEvent is a test hook: when positive, every event handed to the
// ingest sink first sleeps this many nanoseconds, simulating a hot-path
// slowdown. The scenario gate test uses it to prove the compare mode fails
// on a real regression; it must stay zero in production runs.
var SlowdownPerEvent atomic.Int64

// RunScenario executes one declarative load scenario against a freshly
// started system per trial: preload, warmup, then the phase envelope as the
// measurement window. Per-trial metrics come from registry snapshots diffed
// across the window (warmup and preload excluded), aggregated into
// median+MAD stats in a schema-versioned scenario.Result.
func RunScenario(sp *scenario.Spec) (*scenario.Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	p := paramsFromSpec(sp)
	w, err := BuildWorkload(p)
	if err != nil {
		return nil, err
	}
	res := scenario.NewResult("scenario", sp.Name, scenario.CaptureEnv())
	res.Spec = sp
	res.Trials = sp.Trials

	trials := make(map[string][]float64)
	var lastReg *obs.Registry
	for t := 0; t < sp.Trials; t++ {
		tp := p
		tp.Seed = p.Seed + int64(t)*7919 // distinct event streams per trial
		vals, reg, err := runScenarioTrial(sp, tp, w)
		if err != nil {
			return nil, fmt.Errorf("scenario %s trial %d: %w", sp.Name, t, err)
		}
		for name, v := range vals {
			trials[name] = append(trials[name], v)
		}
		lastReg = reg
	}
	for name, vals := range trials {
		unit, dir := metricMeta(name)
		res.AddMetric(name, unit, dir, vals)
	}
	if lastReg != nil {
		res.Obs = obs.StatsJSON(lastReg)
	}
	return res, nil
}

// paramsFromSpec maps the declarative spec onto the harness Params.
func paramsFromSpec(sp *scenario.Spec) Params {
	p := Defaults()
	p.Entities = sp.Entities
	p.EventRate = sp.EventRate
	p.Clients = sp.Clients
	p.Rules = sp.Rules
	p.FullSchema = sp.FullSchema
	if sp.Partitions > 0 {
		p.Partitions = sp.Partitions
	}
	if sp.ESPThreads > 0 {
		p.ESPThreads = sp.ESPThreads
	}
	if sp.BucketSize > 0 {
		p.BucketSize = sp.BucketSize
	}
	if sp.MaxBatch > 0 {
		p.MaxBatch = sp.MaxBatch
	}
	if sp.Seed != 0 {
		p.Seed = sp.Seed
	}
	if sp.OverloadProtect {
		p.Overload = core.OverloadConfig{
			Enabled:           true,
			DeltaSoftRecords:  sp.DeltaSoftRecords,
			DeltaHardRecords:  sp.DeltaHardRecords,
			MaxPendingQueries: sp.MaxPendingQueries,
		}
		if sp.ESPQueueLen > 0 {
			p.ESPQueueLen = sp.ESPQueueLen
		}
	}
	if sp.TierFreeze {
		// MaxFreezePerStep stays 0 → the core default freeze budget per merge
		// step; scenarios tune aggressiveness through TierColdAfter alone.
		p.Tier = core.TierConfig{Enabled: true, ColdAfterEpochs: sp.TierColdAfter}
	}
	if d := sp.QueryDeadline.D(); d > 0 {
		p.QueryTimeout = d
		p.DegradedRTA = true
	}
	return p
}

// trialSystem is one trial's deployment plus its replica attachments.
type trialSystem struct {
	sys       *System
	reg       *obs.Registry
	followers []*repl.Follower
	fnodes    []*core.StorageNode
	arch      *archive.Archive
	dir       string
}

func (ts *trialSystem) stop() {
	for _, f := range ts.followers {
		f.Stop()
	}
	for _, n := range ts.fnodes {
		n.Stop()
	}
	if ts.sys != nil {
		ts.sys.Stop()
	}
	if ts.arch != nil {
		ts.arch.Close()
	}
	if ts.dir != "" {
		os.RemoveAll(ts.dir)
	}
}

func startTrialSystem(sp *scenario.Spec, p Params, w *Workload) (*trialSystem, error) {
	ts := &trialSystem{reg: obs.NewRegistry()}
	obs.RegisterBuildInfo(ts.reg)
	p.Metrics = ts.reg
	if sp.Replicas > 0 {
		dir, err := os.MkdirTemp("", "aim-scenario-*")
		if err != nil {
			return nil, err
		}
		ts.dir = dir
		ts.arch, err = archive.Open(dir, archive.Options{})
		if err != nil {
			ts.stop()
			return nil, err
		}
		p.Archive = ts.arch
	}
	sys, err := StartSystem(p, w, 1, sp.Entities)
	if err != nil {
		ts.stop()
		return nil, err
	}
	ts.sys = sys
	for i := 0; i < sp.Replicas; i++ {
		fnode, err := core.NewNode(core.Config{
			Schema:     w.Schema,
			Dims:       w.Dims.Store,
			Partitions: p.Partitions,
			ESPThreads: p.ESPThreads,
			BucketSize: p.BucketSize,
			Factory:    w.Dims.Factory(w.Schema),
			MaxBatch:   p.MaxBatch,
			Rules:      w.Rules,
		})
		if err != nil {
			ts.stop()
			return nil, err
		}
		ts.fnodes = append(ts.fnodes, fnode)
		f := repl.NewFollower(fnode, 0, repl.FollowerConfig{
			Metrics: ts.reg, Label: fmt.Sprintf("f%d", i),
		})
		if err := f.Start(repl.NewArchiveSource(ts.arch, 0, repl.ArchiveSourceConfig{})); err != nil {
			ts.stop()
			return nil, err
		}
		ts.followers = append(ts.followers, f)
	}
	return ts, nil
}

// runScenarioTrial boots a fresh system, warms it up, runs the phase
// envelope, and extracts the trial's metric values from the windowed
// registry delta.
func runScenarioTrial(sp *scenario.Spec, p Params, w *Workload) (map[string]float64, *obs.Registry, error) {
	ts, err := startTrialSystem(sp, p, w)
	if err != nil {
		return nil, nil, err
	}
	defer ts.stop()

	// Warmup at the steady shape, then drain so nothing smears into the
	// measured window.
	warm := scenario.Phase{Name: "warmup", Duration: sp.Warmup, RateFactor: 1, ClientFactor: 1}
	if err := runPhase(ts, sp, p, warm, 0); err != nil {
		return nil, nil, err
	}
	if err := ts.sys.Router.Flush(); err != nil {
		return nil, nil, err
	}

	before := ts.reg.Snapshot()
	t0 := time.Now()
	for i, ph := range sp.Phases {
		if err := runPhase(ts, sp, p, ph, i+1); err != nil {
			return nil, nil, err
		}
	}
	// The drain is part of the window: a system that falls behind pays for
	// it in achieved rate, which is exactly the regression signal.
	if err := ts.sys.Router.Flush(); err != nil {
		return nil, nil, err
	}
	waitFollowersCaughtUp(ts, 2*time.Second)
	window := time.Since(t0)
	after := ts.reg.Snapshot()

	delta := obs.DeltaSnapshot(before, after)
	return extractTrialMetrics(sp, delta, window), ts.reg, nil
}

func waitFollowersCaughtUp(ts *trialSystem, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for _, f := range ts.followers {
		for f.Lag() > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
}

// runPhase drives one phase: the ingest driver mix and the closed-loop RTA
// clients run concurrently for the phase duration. phaseIdx seeds the
// generators so every phase (and warmup, idx 0) draws a distinct stream.
func runPhase(ts *trialSystem, sp *scenario.Spec, p Params, ph scenario.Phase, phaseIdx int) error {
	rate := sp.EventRate * ph.RateFactor
	clients := scaleClients(sp.Clients, ph.ClientFactor)

	mix := sp.IngestBatchMix
	if len(mix) == 0 {
		mix = []int{0} // one driver at the default pacing
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(mix))
	if rate > 0 {
		for di, batch := range mix {
			wg.Add(1)
			go func(di, batch int) {
				defer wg.Done()
				seed := p.Seed + int64(phaseIdx)*100 + int64(di) + 999
				driver := &esp.Driver{
					Gen:   event.NewGenerator(sp.Entities, seed),
					Rate:  rate / float64(len(mix)),
					Sink:  ingestSink(ts.sys, sp, seed),
					Batch: batch,
				}
				if _, err := driver.Run(ph.Duration.D(), 0); err != nil {
					errs <- err
				}
			}(di, batch)
		}
	}

	var rtaErr error
	if clients > 0 {
		if ph.ReconnectEvery > 0 {
			rtaErr = runReconnectStorm(ts, sp, p, ph, clients, phaseIdx)
		} else {
			sources, err := querySources(ts.sys, p, clients, phaseIdx)
			if err != nil {
				rtaErr = err
			} else {
				rta.RunClosedLoop(ts.sys.Coord, sources, ph.Duration.D())
			}
		}
	} else if rate == 0 {
		time.Sleep(ph.Duration.D())
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return fmt.Errorf("phase %s: driver: %w", ph.Name, err)
	}
	if rtaErr != nil {
		return fmt.Errorf("phase %s: rta: %w", ph.Name, rtaErr)
	}
	return nil
}

// runReconnectStorm tears the whole closed-loop client set down and rebuilds
// it every ReconnectEvery for the phase duration — client churn against the
// coordinator. Reconnect counts land on the registry so they show up in the
// result's obs dump.
func runReconnectStorm(ts *trialSystem, sp *scenario.Spec, p Params, ph scenario.Phase, clients, phaseIdx int) error {
	reconnects := ts.reg.Counter("aim_scenario_client_reconnects_total",
		"RTA client set teardown/rebuild cycles driven by reconnect-storm phases.")
	deadline := time.Now().Add(ph.Duration.D())
	gen := 0
	for time.Now().Before(deadline) {
		seg := time.Until(deadline)
		if every := ph.ReconnectEvery.D(); seg > every {
			seg = every
		}
		sources, err := querySources(ts.sys, p, clients, phaseIdx*1000+gen)
		if err != nil {
			return err
		}
		rta.RunClosedLoop(ts.sys.Coord, sources, seg)
		reconnects.Add(uint64(clients))
		gen++
	}
	return nil
}

func querySources(s *System, p Params, clients, salt int) ([]rta.QuerySource, error) {
	sources := make([]rta.QuerySource, clients)
	for i := range sources {
		g, err := workload.NewQueryGen(s.wl.Schema, p.Seed+int64(salt)*31+int64(i)+1)
		if err != nil {
			return nil, err
		}
		sources[i] = g
	}
	return sources, nil
}

func scaleClients(base int, factor float64) int {
	if base <= 0 {
		return 0
	}
	c := int(math.Ceil(float64(base) * factor))
	if c < 1 && factor > 0 {
		c = 1
	}
	return c
}

// ingestSink wraps the router with the spec's caller-skew rewrite and the
// slowdown test hook. Each driver gets its own closure (the skew RNG is not
// safe for concurrent use). Typed admission-control rejections are absorbed
// into the offered/rejected counters instead of aborting the driver: a
// shedding system is the phenomenon overload scenarios measure, and the
// counter pair is what lets the result prove no event was lost silently
// (offered == rejected + applied once the final flush drains).
func ingestSink(s *System, sp *scenario.Spec, seed int64) func(event.Event) error {
	skew := callerSkew(sp, seed)
	offered := s.Registry.Counter("aim_scenario_events_offered_total",
		"Events the scenario drivers handed to the ingest sink.")
	rejected := s.Registry.Counter("aim_scenario_ingest_rejections_total",
		"Offered events refused by admission control (typed overload errors).")
	return func(ev event.Event) error {
		if d := SlowdownPerEvent.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		if skew != nil {
			ev.Caller = skew()
		}
		offered.Inc()
		err := s.Router.Ingest(ev)
		if err != nil && errors.Is(err, core.ErrOverloaded) {
			rejected.Inc()
			return nil
		}
		return err
	}
}

// callerSkew returns the spec's caller redraw: Zipf over the population, or
// hot-set routing, or nil for the generator's uniform draw.
func callerSkew(sp *scenario.Spec, seed int64) func() uint64 {
	switch {
	case sp.ZipfS > 1:
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		z := rand.NewZipf(rng, sp.ZipfS, 1, sp.Entities-1)
		return func() uint64 { return z.Uint64() + 1 }
	case sp.HotKeyFraction > 0:
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		hot, frac, n := sp.HotKeySetSize, sp.HotKeyFraction, sp.Entities
		return func() uint64 {
			if rng.Float64() < frac {
				return 1 + uint64(rng.Int63n(int64(hot)))
			}
			return 1 + uint64(rng.Int63n(int64(n)))
		}
	}
	return nil
}

// extractTrialMetrics reduces the windowed registry delta to the comparable
// metric surface. Every value is computed from the same delta, so warmup and
// preload activity is excluded by construction.
func extractTrialMetrics(sp *scenario.Spec, delta []obs.MetricSnapshot, window time.Duration) map[string]float64 {
	ws := window.Seconds()
	out := map[string]float64{
		"ingest_events_per_sec": obs.SumCounters(delta, "aim_core_events_total") / ws,
	}
	if sp.Clients > 0 {
		out["rta_qps"] = obs.SumCounters(delta, "aim_rta_queries_total") / ws
		out["rta_errors"] = obs.SumCounters(delta, "aim_rta_query_failures_total")
		if h := obs.MergeHistograms(delta, "aim_rta_query_seconds"); h.Count > 0 {
			out["rta_p50_ms"] = histMS(h, 0.50)
			out["rta_p95_ms"] = histMS(h, 0.95)
		}
	}
	if h := obs.MergeHistograms(delta, "aim_core_freshness_seconds"); h.Count > 0 {
		out["fresh_p95_ms"] = histMS(h, 0.95)
	}
	if h := obs.MergeHistograms(delta, "aim_core_event_apply_seconds"); h.Count > 0 {
		out["apply_p95_us"] = float64(h.QuantileDuration(0.95).Nanoseconds()) / 1e3
	}
	if h := obs.MergeHistograms(delta, "aim_query_scan_round_seconds"); h.Count > 0 {
		out["scan_round_p95_ms"] = histMS(h, 0.95)
	}
	if sp.Replicas > 0 {
		out["repl_events_per_sec"] = obs.SumCounters(delta, "aim_repl_events_total") / ws
		if h := obs.MergeHistograms(delta, "aim_repl_staleness_seconds"); h.Count > 0 {
			out["repl_staleness_p95_ms"] = histMS(h, 0.95)
		}
	}
	if sp.TierFreeze {
		// The freeze/thaw counters are windowed (counter delta); the byte and
		// ratio series are gauges, so they read as the end-of-window state —
		// exactly the steady-state tier split the scenario is gating.
		out["bucket_freezes"] = obs.SumCounters(delta, "aim_core_bucket_freezes_total")
		out["bucket_thaws"] = obs.SumCounters(delta, "aim_core_bucket_thaws_total")
		out["main_bytes_hot"] = obs.SumSeries(delta, "aim_core_main_bytes", `tier="hot"`)
		out["main_bytes_cold"] = obs.SumSeries(delta, "aim_core_main_bytes", `tier="cold"`)
		out["cold_chunks"] = obs.SumSeries(delta, "aim_core_cold_chunks", "")
		if out["cold_chunks"] > 0 {
			out["cold_compression_ratio"] = obs.SumSeries(delta, "aim_core_cold_compression_ratio", "")
		}
	}
	if sp.OverloadProtect {
		offered := obs.SumCounters(delta, "aim_scenario_events_offered_total")
		shed := obs.SumCounters(delta, "aim_scenario_ingest_rejections_total")
		applied := obs.SumCounters(delta, "aim_core_events_total")
		out["ingest_offered_per_sec"] = offered / ws
		out["ingest_rejections"] = shed
		// The window ends with a flush, so every offered event has either
		// been applied or rejected back to its driver. Anything else is a
		// silent loss — the one number that must be exactly zero.
		out["lost_events"] = offered - shed - applied
		if offered > 0 {
			out["ingest_availability"] = (offered - shed) / offered
		}
		out["scan_sheds"] = obs.SumCounters(delta, "aim_query_scan_rejections_total")
	}
	return out
}

func histMS(h obs.HistSnapshot, q float64) float64 {
	return float64(h.QuantileDuration(q).Nanoseconds()) / 1e6
}

// metricMeta maps a metric name to its display unit and better-direction.
func metricMeta(name string) (unit, dir string) {
	switch name {
	case "ingest_events_per_sec", "repl_events_per_sec", "ingest_offered_per_sec":
		return "ev/s", scenario.HigherIsBetter
	case "rta_qps":
		return "q/s", scenario.HigherIsBetter
	case "rta_errors", "ingest_rejections", "lost_events", "scan_sheds":
		return "count", scenario.LowerIsBetter
	case "ingest_availability":
		return "frac", scenario.HigherIsBetter
	case "bucket_freezes", "bucket_thaws", "cold_chunks":
		// Churn volume: informative shape signals, neither direction is a
		// regression on its own (the latency/throughput series gate those).
		return "count", scenario.HigherIsBetter
	case "cold_compression_ratio":
		return "x", scenario.HigherIsBetter
	case "main_bytes_hot", "main_bytes_cold":
		return "B", scenario.LowerIsBetter
	case "apply_p95_us":
		return "us", scenario.LowerIsBetter
	default: // *_ms latency/staleness quantiles
		return "ms", scenario.LowerIsBetter
	}
}
