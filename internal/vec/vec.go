// Package vec provides the vectorized scan kernels the AIM query engine runs
// over ColumnMap buckets: branch-minimized predicate evaluation producing
// word-packed bitmasks, bitmask combination, and masked aggregation.
//
// This is the Go substitute for the paper's SSE/AVX SIMD scan (§4.7.1). The
// structure is identical — filter a column into a bitmask, combine masks with
// AND/OR per the WHERE clause, then aggregate under the mask — but the lanes
// are the 64 bits of a machine word rather than SIMD register lanes. The
// comparison loops are unrolled 8-wide and compile to conditional-move/set
// instructions, avoiding the per-record branch mispredictions the paper
// calls out.
package vec

import (
	"math"
	"math/bits"
)

// CmpOp is a comparison operator for predicate kernels.
type CmpOp uint8

const (
	Lt CmpOp = iota // <
	Le              // <=
	Gt              // >
	Ge              // >=
	Eq              // ==
	Ne              // !=
)

// String implements fmt.Stringer.
func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "=="
	case Ne:
		return "!="
	default:
		return "?"
	}
}

// MaskWords returns the number of 64-bit words needed for an n-record mask.
func MaskWords(n int) int { return (n + 63) / 64 }

// FillMask sets the first n bits of mask and clears any tail bits in the
// last word, so masks for short buckets compose correctly.
func FillMask(mask []uint64, n int) {
	full := n / 64
	for i := 0; i < full; i++ {
		mask[i] = ^uint64(0)
	}
	if rem := n % 64; rem > 0 {
		mask[full] = (uint64(1) << rem) - 1
		full++
	}
	for i := full; i < len(mask); i++ {
		mask[i] = 0
	}
}

// ZeroMask clears mask.
func ZeroMask(mask []uint64) {
	for i := range mask {
		mask[i] = 0
	}
}

// And sets dst &= src element-wise.
func And(dst, src []uint64) {
	for i := range dst {
		dst[i] &= src[i]
	}
}

// AndNot sets dst &^= src element-wise (clears the dst bits set in src).
func AndNot(dst, src []uint64) {
	for i := range dst {
		dst[i] &^= src[i]
	}
}

// CopyMask copies src into dst; the slices must have equal length.
func CopyMask(dst, src []uint64) {
	copy(dst, src)
}

// Or sets dst |= src element-wise.
func Or(dst, src []uint64) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

// Count returns the number of set bits in the mask.
func Count(mask []uint64) int64 {
	var n int64
	for _, w := range mask {
		n += int64(bits.OnesCount64(w))
	}
	return n
}

// CmpInt evaluates `int64(col[i]) op v` for the first n records of col and
// writes the result bitmask into mask (1 bit per record, little-endian bit
// order within each word). mask must have MaskWords(n) words.
//
// Each operator gets its own specialized full-word loop: the comparison is
// a branchless bool-to-bit in straight-line code (no per-element function
// call), which the compiler turns into SETcc/shift sequences — the scalar
// analogue of the paper's SIMD compare-into-mask.
func CmpInt(col []uint64, n int, op CmpOp, v int64, mask []uint64) {
	w := 0
	i := 0
	for ; i+64 <= n; i += 64 {
		c := col[i : i+64 : i+64]
		var m uint64
		switch op {
		case Lt:
			for j := 0; j < 64; j++ {
				m |= b2u(int64(c[j]) < v) << uint(j)
			}
		case Le:
			for j := 0; j < 64; j++ {
				m |= b2u(int64(c[j]) <= v) << uint(j)
			}
		case Gt:
			for j := 0; j < 64; j++ {
				m |= b2u(int64(c[j]) > v) << uint(j)
			}
		case Ge:
			for j := 0; j < 64; j++ {
				m |= b2u(int64(c[j]) >= v) << uint(j)
			}
		case Eq:
			for j := 0; j < 64; j++ {
				m |= b2u(int64(c[j]) == v) << uint(j)
			}
		case Ne:
			for j := 0; j < 64; j++ {
				m |= b2u(int64(c[j]) != v) << uint(j)
			}
		}
		mask[w] = m
		w++
	}
	if i < n {
		var m uint64
		for j := 0; i+j < n; j++ {
			if cmpIntOne(int64(col[i+j]), op, v) {
				m |= 1 << uint(j)
			}
		}
		mask[w] = m
		w++
	}
	for ; w < len(mask); w++ {
		mask[w] = 0
	}
}

// b2u converts a bool to 0/1 without a branch (compiles to SETcc).
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func cmpIntOne(a int64, op CmpOp, v int64) bool {
	switch op {
	case Lt:
		return a < v
	case Le:
		return a <= v
	case Gt:
		return a > v
	case Ge:
		return a >= v
	case Eq:
		return a == v
	default:
		return a != v
	}
}

// CmpUint is CmpInt for unsigned column interpretation (entity ids). Like
// CmpInt, each operator gets its own specialized branchless full-word loop.
func CmpUint(col []uint64, n int, op CmpOp, v uint64, mask []uint64) {
	w := 0
	i := 0
	for ; i+64 <= n; i += 64 {
		c := col[i : i+64 : i+64]
		var m uint64
		switch op {
		case Lt:
			for j := 0; j < 64; j++ {
				m |= b2u(c[j] < v) << uint(j)
			}
		case Le:
			for j := 0; j < 64; j++ {
				m |= b2u(c[j] <= v) << uint(j)
			}
		case Gt:
			for j := 0; j < 64; j++ {
				m |= b2u(c[j] > v) << uint(j)
			}
		case Ge:
			for j := 0; j < 64; j++ {
				m |= b2u(c[j] >= v) << uint(j)
			}
		case Eq:
			for j := 0; j < 64; j++ {
				m |= b2u(c[j] == v) << uint(j)
			}
		case Ne:
			for j := 0; j < 64; j++ {
				m |= b2u(c[j] != v) << uint(j)
			}
		}
		mask[w] = m
		w++
	}
	if i < n {
		var m uint64
		for j := 0; i+j < n; j++ {
			if cmpUintOne(col[i+j], op, v) {
				m |= 1 << uint(j)
			}
		}
		mask[w] = m
		w++
	}
	for ; w < len(mask); w++ {
		mask[w] = 0
	}
}

func cmpUintOne(a uint64, op CmpOp, v uint64) bool {
	switch op {
	case Lt:
		return a < v
	case Le:
		return a <= v
	case Gt:
		return a > v
	case Ge:
		return a >= v
	case Eq:
		return a == v
	default:
		return a != v
	}
}

// CmpFloat evaluates `float64bits(col[i]) op v` into mask with specialized
// branchless full-word loops per operator. IEEE-754 semantics hold: a NaN
// column value satisfies only Ne and fails every ordered comparison and Eq.
//
// Float compares (UCOMISD + flag materialization) are slower than integer
// ones, so the word loop accumulates into four independent lanes to break
// the serial OR chain — this is what keeps CmpFloat within ~1.2x of CmpInt
// per element.
func CmpFloat(col []uint64, n int, op CmpOp, v float64, mask []uint64) {
	w := 0
	i := 0
	for ; i+64 <= n; i += 64 {
		c := col[i : i+64 : i+64]
		var m0, m1, m2, m3 uint64
		switch op {
		case Lt:
			for j := 0; j < 64; j += 4 {
				m0 |= b2u(math.Float64frombits(c[j]) < v) << uint(j)
				m1 |= b2u(math.Float64frombits(c[j+1]) < v) << uint(j+1)
				m2 |= b2u(math.Float64frombits(c[j+2]) < v) << uint(j+2)
				m3 |= b2u(math.Float64frombits(c[j+3]) < v) << uint(j+3)
			}
		case Le:
			for j := 0; j < 64; j += 4 {
				m0 |= b2u(math.Float64frombits(c[j]) <= v) << uint(j)
				m1 |= b2u(math.Float64frombits(c[j+1]) <= v) << uint(j+1)
				m2 |= b2u(math.Float64frombits(c[j+2]) <= v) << uint(j+2)
				m3 |= b2u(math.Float64frombits(c[j+3]) <= v) << uint(j+3)
			}
		case Gt:
			for j := 0; j < 64; j += 4 {
				m0 |= b2u(math.Float64frombits(c[j]) > v) << uint(j)
				m1 |= b2u(math.Float64frombits(c[j+1]) > v) << uint(j+1)
				m2 |= b2u(math.Float64frombits(c[j+2]) > v) << uint(j+2)
				m3 |= b2u(math.Float64frombits(c[j+3]) > v) << uint(j+3)
			}
		case Ge:
			for j := 0; j < 64; j += 4 {
				m0 |= b2u(math.Float64frombits(c[j]) >= v) << uint(j)
				m1 |= b2u(math.Float64frombits(c[j+1]) >= v) << uint(j+1)
				m2 |= b2u(math.Float64frombits(c[j+2]) >= v) << uint(j+2)
				m3 |= b2u(math.Float64frombits(c[j+3]) >= v) << uint(j+3)
			}
		case Eq:
			for j := 0; j < 64; j += 4 {
				m0 |= b2u(math.Float64frombits(c[j]) == v) << uint(j)
				m1 |= b2u(math.Float64frombits(c[j+1]) == v) << uint(j+1)
				m2 |= b2u(math.Float64frombits(c[j+2]) == v) << uint(j+2)
				m3 |= b2u(math.Float64frombits(c[j+3]) == v) << uint(j+3)
			}
		case Ne:
			for j := 0; j < 64; j += 4 {
				m0 |= b2u(math.Float64frombits(c[j]) != v) << uint(j)
				m1 |= b2u(math.Float64frombits(c[j+1]) != v) << uint(j+1)
				m2 |= b2u(math.Float64frombits(c[j+2]) != v) << uint(j+2)
				m3 |= b2u(math.Float64frombits(c[j+3]) != v) << uint(j+3)
			}
		}
		mask[w] = m0 | m1 | m2 | m3
		w++
	}
	if i < n {
		var m uint64
		for j := 0; i+j < n; j++ {
			if cmpFloatOne(math.Float64frombits(col[i+j]), op, v) {
				m |= 1 << uint(j)
			}
		}
		mask[w] = m
		w++
	}
	for ; w < len(mask); w++ {
		mask[w] = 0
	}
}

func cmpFloatOne(a float64, op CmpOp, v float64) bool {
	switch op {
	case Lt:
		return a < v
	case Le:
		return a <= v
	case Gt:
		return a > v
	case Ge:
		return a >= v
	case Eq:
		return a == v
	default:
		return a != v
	}
}
