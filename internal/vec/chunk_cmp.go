package vec

import "math"

// Compressed-chunk predicate kernels: evaluate `col[i] op v` into a bitmask
// directly over the chunk encoding, without materializing the column. Each
// returns false when the shape is unsupported for direct evaluation (a FOR
// chunk whose hint disagrees with the query's type domain — the order-based
// range shortcuts would be wrong), in which case the caller decompresses
// into a pooled scratch column and runs the raw kernel.
//
// FOR is the interesting case: with base b and code c, `b+c op v` becomes an
// unsigned code-domain compare `c op v-b` once v is inside [Base,
// Base+MaxCode]; outside that range the answer is constant and the kernel
// short-circuits to a fill or zero without touching the payload. One set of
// specialized unsigned loops therefore serves both int64 and uint64 columns.
// Dict chunks run the typed compare once per dictionary entry into a small
// code-match bitmap, then map the packed codes through it; RLE runs the
// typed compare once per run and fills mask ranges.

// CmpChunkInt evaluates `int64(value) op v` over the first n records of the
// chunk. Returns false if the shape needs materialization.
func CmpChunkInt(ch *Chunk, n int, op CmpOp, v int64, mask []uint64) bool {
	switch ch.Enc {
	case EncRaw:
		CmpInt(ch.Words, n, op, v, mask)
	case EncConst:
		constMask(cmpIntOne(int64(ch.Base), op, v), n, mask)
	case EncFOR:
		if ch.Hint != HintInt {
			return false
		}
		lo := int64(ch.Base)
		hi := lo + int64(ch.MaxCode)
		if done := forShortcut(n, op, v < lo, v > hi, v == lo, v == hi, mask); done {
			return true
		}
		cmpPackedCodes(ch.Packed, n, ch.Width, op, uint64(v)-ch.Base, mask)
	case EncDict:
		cmpDict(ch, n, func(dv uint64) bool { return cmpIntOne(int64(dv), op, v) }, mask)
	case EncRLE:
		cmpRLE(ch, n, func(dv uint64) bool { return cmpIntOne(int64(dv), op, v) }, mask)
	}
	return true
}

// CmpChunkUint is CmpChunkInt for unsigned column interpretation.
func CmpChunkUint(ch *Chunk, n int, op CmpOp, v uint64, mask []uint64) bool {
	switch ch.Enc {
	case EncRaw:
		CmpUint(ch.Words, n, op, v, mask)
	case EncConst:
		constMask(cmpUintOne(ch.Base, op, v), n, mask)
	case EncFOR:
		if ch.Hint != HintUint {
			return false
		}
		lo := ch.Base
		hi := lo + ch.MaxCode
		if done := forShortcut(n, op, v < lo, v > hi, v == lo, v == hi, mask); done {
			return true
		}
		cmpPackedCodes(ch.Packed, n, ch.Width, op, v-lo, mask)
	case EncDict:
		cmpDict(ch, n, func(dv uint64) bool { return cmpUintOne(dv, op, v) }, mask)
	case EncRLE:
		cmpRLE(ch, n, func(dv uint64) bool { return cmpUintOne(dv, op, v) }, mask)
	}
	return true
}

// CmpChunkFloat evaluates the IEEE-754 compare over float64 bit patterns.
// FOR chunks report unsupported: the encoder never produces them for
// HintFloat columns, and on a hint mismatch the order shortcuts don't apply.
func CmpChunkFloat(ch *Chunk, n int, op CmpOp, v float64, mask []uint64) bool {
	switch ch.Enc {
	case EncRaw:
		CmpFloat(ch.Words, n, op, v, mask)
	case EncConst:
		constMask(cmpFloatOne(math.Float64frombits(ch.Base), op, v), n, mask)
	case EncFOR:
		return false
	case EncDict:
		cmpDict(ch, n, func(dv uint64) bool { return cmpFloatOne(math.Float64frombits(dv), op, v) }, mask)
	case EncRLE:
		cmpRLE(ch, n, func(dv uint64) bool { return cmpFloatOne(math.Float64frombits(dv), op, v) }, mask)
	}
	return true
}

// constMask fills or zeroes the first n mask bits (tail bits cleared).
func constMask(match bool, n int, mask []uint64) {
	if match {
		FillMask(mask, n)
	} else {
		ZeroMask(mask)
	}
}

// forShortcut resolves the compare when v lies outside or on the edge of the
// chunk's [lo, hi] value range, so the packed-code loop only ever runs with
// an in-range unsigned operand. Returns true when the mask was written.
func forShortcut(n int, op CmpOp, below, above, atLo, atHi bool, mask []uint64) bool {
	switch op {
	case Lt:
		if below || atLo { // no value < v
			ZeroMask(mask)
			return true
		}
		if above { // every value < v
			FillMask(mask, n)
			return true
		}
	case Le:
		if below {
			ZeroMask(mask)
			return true
		}
		if above || atHi {
			FillMask(mask, n)
			return true
		}
	case Gt:
		if above || atHi {
			ZeroMask(mask)
			return true
		}
		if below {
			FillMask(mask, n)
			return true
		}
	case Ge:
		if above {
			ZeroMask(mask)
			return true
		}
		if below || atLo {
			FillMask(mask, n)
			return true
		}
	case Eq:
		if below || above {
			ZeroMask(mask)
			return true
		}
	case Ne:
		if below || above {
			FillMask(mask, n)
			return true
		}
	}
	return false
}

// decodeBlock unpacks the next count codes (<= 64) starting at packed word
// wp into buf, returning the advanced word index. Sequential word-shift
// decode: no per-element division, one AND + one shift per code. Whole
// words are consumed except possibly in a final short block.
func decodeBlock(packed []uint64, wp, per int, w uint, vm uint64, buf *[64]uint64, count int) int {
	idx := 0
	for idx < count {
		word := packed[wp]
		wp++
		for s := 0; s < per && idx < count; s++ {
			buf[idx] = word & vm
			word >>= w
			idx++
		}
	}
	return wp
}

// cmpPackedCodes runs the unsigned compare `code op cv` over bit-packed
// codes — the FOR analogue of CmpUint. Each 64-record block is shift-decoded
// into a stack buffer and pushed through the raw branchless compare loop, so
// the whole block stays in registers/L1 and the operator switch costs one
// branch per block, not per element.
func cmpPackedCodes(packed []uint64, n int, width uint8, op CmpOp, cv uint64, mask []uint64) {
	w := uint(width)
	per := int(64 / w)
	vm := uint64(1)<<w - 1
	var buf [64]uint64
	var mw [1]uint64
	wi, wp := 0, 0
	i := 0
	for ; i+64 <= n; i += 64 {
		wp = decodeBlock(packed, wp, per, w, vm, &buf, 64)
		CmpUint(buf[:], 64, op, cv, mw[:])
		mask[wi] = mw[0]
		wi++
	}
	if i < n {
		rem := n - i
		decodeBlock(packed, wp, per, w, vm, &buf, rem)
		CmpUint(buf[:rem], rem, op, cv, mw[:])
		mask[wi] = mw[0]
		wi++
	}
	for ; wi < len(mask); wi++ {
		mask[wi] = 0
	}
}

// cmpDict evaluates the typed compare once per dictionary entry into a
// code-match bitmap (MaxDictSize/64 words), then maps the packed code stream
// through it — per record the loop is one decode plus one bitmap probe,
// independent of operator and type.
func cmpDict(ch *Chunk, n int, match func(v uint64) bool, mask []uint64) {
	var mb [MaxDictSize / 64]uint64
	for ci, dv := range ch.Dict {
		if match(dv) {
			mb[ci>>6] |= 1 << uint(ci&63)
		}
	}
	w := uint(ch.Width)
	per := int(64 / w)
	vm := uint64(1)<<w - 1
	var buf [64]uint64
	wi, wp := 0, 0
	i := 0
	for ; i+64 <= n; i += 64 {
		wp = decodeBlock(ch.Packed, wp, per, w, vm, &buf, 64)
		var m uint64
		for j := 0; j < 64; j++ {
			c := buf[j]
			m |= (mb[c>>6] >> (c & 63) & 1) << uint(j)
		}
		mask[wi] = m
		wi++
	}
	if i < n {
		rem := n - i
		decodeBlock(ch.Packed, wp, per, w, vm, &buf, rem)
		var m uint64
		for j := 0; j < rem; j++ {
			c := buf[j]
			m |= (mb[c>>6] >> (c & 63) & 1) << uint(j)
		}
		mask[wi] = m
		wi++
	}
	for ; wi < len(mask); wi++ {
		mask[wi] = 0
	}
}

// cmpRLE evaluates the typed compare once per run and fills the matching
// runs' bit ranges — O(runs), not O(records).
func cmpRLE(ch *Chunk, n int, match func(v uint64) bool, mask []uint64) {
	ZeroMask(mask)
	start := 0
	for ri, dv := range ch.Vals {
		if start >= n {
			break
		}
		end := int(ch.Ends[ri])
		if end > n {
			end = n
		}
		if match(dv) {
			maskSetRange(mask, start, end)
		}
		start = end
	}
}
