package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveCmpInt(col []uint64, n int, op CmpOp, v int64) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		a := int64(col[i])
		switch op {
		case Lt:
			out[i] = a < v
		case Le:
			out[i] = a <= v
		case Gt:
			out[i] = a > v
		case Ge:
			out[i] = a >= v
		case Eq:
			out[i] = a == v
		case Ne:
			out[i] = a != v
		}
	}
	return out
}

func maskBit(mask []uint64, i int) bool { return mask[i/64]&(1<<uint(i%64)) != 0 }

func TestCmpIntMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200, 1000} {
		col := make([]uint64, n)
		for i := range col {
			col[i] = uint64(rng.Int63n(100) - 50)
		}
		mask := make([]uint64, MaskWords(n))
		for op := Lt; op <= Ne; op++ {
			v := rng.Int63n(100) - 50
			CmpInt(col, n, op, v, mask)
			want := naiveCmpInt(col, n, op, v)
			for i := 0; i < n; i++ {
				if maskBit(mask, i) != want[i] {
					t.Fatalf("n=%d op=%v i=%d: mask=%v want=%v", n, op, i, maskBit(mask, i), want[i])
				}
			}
			// Tail bits beyond n must be clear.
			for i := n; i < len(mask)*64; i++ {
				if maskBit(mask, i) {
					t.Fatalf("n=%d op=%v: tail bit %d set", n, op, i)
				}
			}
		}
	}
}

func TestCmpFloatAndUint(t *testing.T) {
	col := []uint64{math.Float64bits(1.5), math.Float64bits(-2.0), math.Float64bits(3.25)}
	mask := make([]uint64, 1)
	CmpFloat(col, 3, Gt, 0, mask)
	if mask[0] != 0b101 {
		t.Fatalf("CmpFloat Gt 0 mask = %b, want 101", mask[0])
	}
	ucol := []uint64{10, 20, 30}
	CmpUint(ucol, 3, Eq, 20, mask)
	if mask[0] != 0b010 {
		t.Fatalf("CmpUint Eq 20 mask = %b, want 010", mask[0])
	}
}

func TestMaskOps(t *testing.T) {
	a := make([]uint64, 2)
	b := make([]uint64, 2)
	FillMask(a, 70)
	if a[0] != ^uint64(0) || a[1] != (1<<6)-1 {
		t.Fatalf("FillMask(70) = %x %x", a[0], a[1])
	}
	if Count(a) != 70 {
		t.Fatalf("Count = %d, want 70", Count(a))
	}
	FillMask(b, 1)
	And(a, b)
	if Count(a) != 1 {
		t.Fatalf("after And, Count = %d, want 1", Count(a))
	}
	FillMask(b, 70)
	Or(a, b)
	if Count(a) != 70 {
		t.Fatalf("after Or, Count = %d, want 70", Count(a))
	}
	ZeroMask(a)
	if Count(a) != 0 {
		t.Fatalf("after ZeroMask, Count = %d", Count(a))
	}
	FillMask(a, 0)
	if Count(a) != 0 {
		t.Fatalf("FillMask(0) Count = %d", Count(a))
	}
}

func TestMaskedAggregates(t *testing.T) {
	neg3 := int64(-3)
	col := []uint64{5, uint64(neg3), 10, 7}
	mask := []uint64{0b1011} // records 0,1,3
	if s := SumInt(col, mask); s != 9 {
		t.Fatalf("SumInt = %d, want 9", s)
	}
	if mn, ok := MinInt(col, mask); !ok || mn != -3 {
		t.Fatalf("MinInt = %d,%v", mn, ok)
	}
	if mx, ok := MaxInt(col, mask); !ok || mx != 7 {
		t.Fatalf("MaxInt = %d,%v", mx, ok)
	}
	if _, ok := MinInt(col, []uint64{0}); ok {
		t.Fatal("MinInt on empty mask should report !ok")
	}

	fcol := []uint64{math.Float64bits(1.5), math.Float64bits(2.5), math.Float64bits(-1)}
	fmask := []uint64{0b101}
	if s := SumFloat(fcol, fmask); s != 0.5 {
		t.Fatalf("SumFloat = %v, want 0.5", s)
	}
	if mn, ok := MinFloat(fcol, fmask); !ok || mn != -1 {
		t.Fatalf("MinFloat = %v,%v", mn, ok)
	}
	if mx, ok := MaxFloat(fcol, fmask); !ok || mx != 1.5 {
		t.Fatalf("MaxFloat = %v,%v", mx, ok)
	}
	if _, ok := MaxFloat(fcol, []uint64{0}); ok {
		t.Fatal("MaxFloat on empty mask should report !ok")
	}
}

func TestForEachOrder(t *testing.T) {
	mask := []uint64{1 << 3, 1 << 0}
	var got []int
	ForEach(mask, func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 3 || got[1] != 64 {
		t.Fatalf("ForEach = %v, want [3 64]", got)
	}
}

// TestQuickSumMatchesNaive property-tests that masked SumInt equals a naive
// filtered sum for random columns and thresholds.
func TestQuickSumMatchesNaive(t *testing.T) {
	f := func(vals []int32, threshold int32) bool {
		n := len(vals)
		col := make([]uint64, n)
		var want int64
		for i, v := range vals {
			col[i] = uint64(int64(v))
			if int64(v) > int64(threshold) {
				want += int64(v)
			}
		}
		mask := make([]uint64, MaskWords(n))
		CmpInt(col, n, Gt, int64(threshold), mask)
		return SumInt(col, mask) == want && Count(mask) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
