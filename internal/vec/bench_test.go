package vec

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the scan kernels (§4.7.1): the word-packed bitmask
// path vs per-record loops. Note that the Go compiler already emits
// branchless code (SETcc/CMOV) for the simple per-record loops below, so —
// unlike the 2015 C++/SSE setting the paper describes — the bitmask kernels
// do not win on a single compare-aggregate pass; their payoff is mask reuse
// across a query's aggregates and O(n/64) DNF combination (BenchmarkMaskCombine).

func benchColumn(n int) []uint64 {
	rng := rand.New(rand.NewSource(7))
	col := make([]uint64, n)
	for i := range col {
		col[i] = uint64(rng.Int63n(1000))
	}
	return col
}

func BenchmarkCmpIntVectorized(b *testing.B) {
	const n = 3072 // one ColumnMap bucket
	col := benchColumn(n)
	mask := make([]uint64, MaskWords(n))
	b.SetBytes(n * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CmpInt(col, n, Gt, 500, mask)
	}
}

// BenchmarkCmpIntScalarBranchy is the naive per-record comparison with a
// data-dependent branch — the baseline the bitmask kernel replaces.
func BenchmarkCmpIntScalarBranchy(b *testing.B) {
	const n = 3072
	col := benchColumn(n)
	out := make([]bool, n)
	b.SetBytes(n * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			if int64(col[j]) > 500 {
				out[j] = true
			} else {
				out[j] = false
			}
		}
	}
}

func BenchmarkFilterThenSum(b *testing.B) {
	const n = 3072
	col := benchColumn(n)
	vals := benchColumn(n)
	mask := make([]uint64, MaskWords(n))
	b.SetBytes(2 * n * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CmpInt(col, n, Gt, 500, mask)
		_ = SumInt(vals, mask)
	}
}

// BenchmarkFilterThenSumScalar fuses filter and sum with a branch per
// record, for comparison with the two-phase masked kernel.
func BenchmarkFilterThenSumScalar(b *testing.B) {
	const n = 3072
	col := benchColumn(n)
	vals := benchColumn(n)
	b.SetBytes(2 * n * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		for j := 0; j < n; j++ {
			if int64(col[j]) > 500 {
				sum += int64(vals[j])
			}
		}
		_ = sum
	}
}

func BenchmarkMaskCombine(b *testing.B) {
	const n = 3072
	m1 := make([]uint64, MaskWords(n))
	m2 := make([]uint64, MaskWords(n))
	FillMask(m1, n)
	FillMask(m2, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		And(m1, m2)
		Or(m1, m2)
	}
}
