// Compressed column chunks: the storage format of the cold tier.
//
// When the main ages a bucket out of the hot tier (internal/columnmap), each
// of its columns is compressed independently into a Chunk. The encoding is
// chosen per column per chunk by exact cost in 64-bit words over one analysis
// pass: Const for all-equal columns, frame-of-reference (FOR) bit-packing for
// narrow ranges, dictionary for low-cardinality columns, run-length for long
// runs, and a raw copy when nothing wins. The scan kernels in chunk_cmp.go /
// chunk_agg.go evaluate predicates and masked aggregates over these shapes
// directly, so cold buckets are scanned in place without materializing.
package vec

import "math/bits"

// Hint tells the encoder how a column's 64-bit patterns are interpreted.
// FOR needs it to pick the base in the right order domain (signed vs
// unsigned); the compare kernels refuse a FOR chunk whose hint disagrees
// with the query's type and let the caller fall back to decompression.
type Hint uint8

const (
	// HintUint treats values as unsigned (entity ids, dict codes, opaque
	// slots). The safe default: every encoding it produces round-trips
	// bit-exactly regardless of the true type.
	HintUint Hint = iota
	// HintInt treats values as signed int64.
	HintInt
	// HintFloat treats values as float64 bit patterns. FOR is disabled
	// (mantissa entropy defeats it and the compare translation would be
	// order-broken); Const/Dict/RLE/Raw all remain bit-exact.
	HintFloat
)

// Enc identifies a chunk encoding.
type Enc uint8

const (
	EncRaw   Enc = iota // verbatim copy of the column
	EncConst            // every value identical (Base)
	EncFOR              // Base + bit-packed code, code width 1..32 bits
	EncDict             // bit-packed code into a value table
	EncRLE              // run values + cumulative run ends
)

// String implements fmt.Stringer for bench tables and logs.
func (e Enc) String() string {
	switch e {
	case EncRaw:
		return "raw"
	case EncConst:
		return "const"
	case EncFOR:
		return "for"
	case EncDict:
		return "dict"
	case EncRLE:
		return "rle"
	default:
		return "?"
	}
}

// NumEnc is the number of chunk encodings (for per-encoding stats arrays).
const NumEnc = 5

// MaxDictSize caps the dictionary: a column with more distinct values
// overflows the dictionary candidate and falls through to FOR/RLE/raw. 256
// keeps the compare kernels' code-match bitmap at four words.
const MaxDictSize = 256

// Chunk is one immutable compressed column of a frozen bucket.
type Chunk struct {
	Enc   Enc
	Hint  Hint
	N     int    // record count
	Width uint8  // FOR/Dict code width in bits: 1, 2, 4, 8, 16 or 32
	Base  uint64 // Const: the value; FOR: the minimum value (hint domain)
	// MaxCode is the largest FOR code (the value range); the compare
	// kernels use Base..Base+MaxCode for out-of-range short circuits.
	MaxCode uint64
	Packed  []uint64 // FOR/Dict bit-packed codes
	Dict    []uint64 // Dict value table, codes in first-appearance order
	Vals    []uint64 // RLE run values
	Ends    []uint32 // RLE cumulative run end indices; Ends[len-1] == N
	Words   []uint64 // Raw verbatim values
}

// Bytes returns the compressed payload size (excluding struct overhead).
func (ch *Chunk) Bytes() int64 {
	return int64(8*(len(ch.Packed)+len(ch.Dict)+len(ch.Vals)+len(ch.Words)) +
		4*len(ch.Ends))
}

// widthFor returns the smallest supported power-of-two bit width that holds
// maxCode, or 0 if maxCode needs more than 32 bits. Power-of-two widths mean
// codes never straddle a word boundary, so decode is one shift and mask.
func widthFor(maxCode uint64) uint8 {
	switch b := bits.Len64(maxCode); {
	case b <= 1:
		return 1
	case b <= 2:
		return 2
	case b <= 4:
		return 4
	case b <= 8:
		return 8
	case b <= 16:
		return 16
	case b <= 32:
		return 32
	}
	return 0
}

// packedWords returns the word count for n codes of the given width.
func packedWords(n int, width uint8) int {
	per := 64 / int(width)
	return (n + per - 1) / per
}

// Compress analyzes col[:n] in one pass and returns the cheapest encoding by
// exact cost in 64-bit words. Ties prefer the shape with the fastest direct
// scan kernel (Const > FOR > Dict > RLE > Raw). The result owns its memory:
// the caller may reuse or release col afterwards.
func Compress(col []uint64, n int, hint Hint) Chunk {
	if n == 0 {
		return Chunk{Enc: EncConst, Hint: hint}
	}
	col = col[:n]
	first := col[0]
	runs := 1
	minU, maxU := first, first
	distinct := map[uint64]uint32{first: 0}
	dictOK := true
	prev := first
	for _, v := range col[1:] {
		if v != prev {
			runs++
			prev = v
		}
		if v < minU {
			minU = v
		}
		if v > maxU {
			maxU = v
		}
		if dictOK {
			if _, ok := distinct[v]; !ok {
				if len(distinct) >= MaxDictSize {
					dictOK = false
				} else {
					distinct[v] = uint32(len(distinct))
				}
			}
		}
	}
	if minU == maxU {
		return Chunk{Enc: EncConst, Hint: hint, N: n, Base: first}
	}

	// FOR candidate: base and range in the hint's order domain. The uint64
	// subtraction is exact mod 2^64, and a signed range always fits uint64,
	// so eligibility is just the bit length of the difference.
	var forWidth uint8
	var forBase, forRange uint64
	switch hint {
	case HintInt:
		minS, maxS := int64(first), int64(first)
		for _, v := range col[1:] {
			if sv := int64(v); sv < minS {
				minS = sv
			} else if sv > maxS {
				maxS = sv
			}
		}
		forBase, forRange = uint64(minS), uint64(maxS)-uint64(minS)
		forWidth = widthFor(forRange)
	case HintUint:
		forBase, forRange = minU, maxU-minU
		forWidth = widthFor(forRange)
	}

	bestCost, bestEnc := n, EncRaw
	if forWidth != 0 {
		if c := packedWords(n, forWidth) + 2; c < bestCost {
			bestCost, bestEnc = c, EncFOR
		}
	}
	var dictWidth uint8
	if dictOK {
		dictWidth = widthFor(uint64(len(distinct) - 1))
		if c := packedWords(n, dictWidth) + len(distinct) + 2; c < bestCost {
			bestCost, bestEnc = c, EncDict
		}
	}
	if c := runs + (runs+1)/2 + 2; c < bestCost {
		bestEnc = EncRLE
	}

	switch bestEnc {
	case EncFOR:
		packed := make([]uint64, packedWords(n, forWidth))
		per := 64 / uint(forWidth)
		for i, v := range col {
			k := uint(i)
			packed[k/per] |= (v - forBase) << (k % per * uint(forWidth))
		}
		return Chunk{Enc: EncFOR, Hint: hint, N: n, Width: forWidth,
			Base: forBase, MaxCode: forRange, Packed: packed}
	case EncDict:
		dict := make([]uint64, len(distinct))
		for v, c := range distinct {
			dict[c] = v
		}
		packed := make([]uint64, packedWords(n, dictWidth))
		per := 64 / uint(dictWidth)
		for i, v := range col {
			k := uint(i)
			packed[k/per] |= uint64(distinct[v]) << (k % per * uint(dictWidth))
		}
		return Chunk{Enc: EncDict, Hint: hint, N: n, Width: dictWidth,
			Dict: dict, Packed: packed}
	case EncRLE:
		vals := make([]uint64, 0, runs)
		ends := make([]uint32, 0, runs)
		cur := col[0]
		for i := 1; i < n; i++ {
			if col[i] != cur {
				vals = append(vals, cur)
				ends = append(ends, uint32(i))
				cur = col[i]
			}
		}
		vals = append(vals, cur)
		ends = append(ends, uint32(n))
		return Chunk{Enc: EncRLE, Hint: hint, N: n, Vals: vals, Ends: ends}
	default:
		w := make([]uint64, n)
		copy(w, col)
		return Chunk{Enc: EncRaw, Hint: hint, N: n, Words: w}
	}
}

// Decompress materializes the chunk into dst (grown if needed) and returns
// the n-value slice. Decode is sign-agnostic: FOR adds Base + code mod 2^64,
// recovering the original bits for every hint.
func Decompress(ch *Chunk, dst []uint64) []uint64 {
	if cap(dst) < ch.N {
		dst = make([]uint64, ch.N)
	}
	dst = dst[:ch.N]
	switch ch.Enc {
	case EncRaw:
		copy(dst, ch.Words)
	case EncConst:
		for i := range dst {
			dst[i] = ch.Base
		}
	case EncFOR:
		per := 64 / uint(ch.Width)
		vm := uint64(1)<<ch.Width - 1
		for i := range dst {
			k := uint(i)
			dst[i] = ch.Base + ch.Packed[k/per]>>(k%per*uint(ch.Width))&vm
		}
	case EncDict:
		per := 64 / uint(ch.Width)
		vm := uint64(1)<<ch.Width - 1
		for i := range dst {
			k := uint(i)
			dst[i] = ch.Dict[ch.Packed[k/per]>>(k%per*uint(ch.Width))&vm]
		}
	case EncRLE:
		start := 0
		for ri, v := range ch.Vals {
			end := int(ch.Ends[ri])
			for i := start; i < end; i++ {
				dst[i] = v
			}
			start = end
		}
	}
	return dst
}

// ChunkValue returns record i's value — the random-access path used by
// point gathers (Get on a frozen bucket).
func ChunkValue(ch *Chunk, i int) uint64 {
	switch ch.Enc {
	case EncConst:
		return ch.Base
	case EncFOR:
		per := 64 / uint(ch.Width)
		k := uint(i)
		vm := uint64(1)<<ch.Width - 1
		return ch.Base + ch.Packed[k/per]>>(k%per*uint(ch.Width))&vm
	case EncDict:
		per := 64 / uint(ch.Width)
		k := uint(i)
		vm := uint64(1)<<ch.Width - 1
		return ch.Dict[ch.Packed[k/per]>>(k%per*uint(ch.Width))&vm]
	case EncRLE:
		lo, hi := 0, len(ch.Ends)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if int(ch.Ends[mid]) <= i {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return ch.Vals[lo]
	default:
		return ch.Words[i]
	}
}

// maskSetRange sets mask bits [from, to).
func maskSetRange(mask []uint64, from, to int) {
	if from >= to {
		return
	}
	fw, lw := from/64, (to-1)/64
	fb := uint(from % 64)
	lbits := uint((to-1)%64) + 1
	if fw == lw {
		mask[fw] |= (^uint64(0) << fb) & (^uint64(0) >> (64 - lbits))
		return
	}
	mask[fw] |= ^uint64(0) << fb
	for i := fw + 1; i < lw; i++ {
		mask[i] = ^uint64(0)
	}
	mask[lw] |= ^uint64(0) >> (64 - lbits)
}

// maskCountRange counts set mask bits in [from, to).
func maskCountRange(mask []uint64, from, to int) int64 {
	if from >= to {
		return 0
	}
	fw, lw := from/64, (to-1)/64
	fb := uint(from % 64)
	lbits := uint((to-1)%64) + 1
	if fw == lw {
		w := mask[fw] >> fb << fb
		w = w << (64 - lbits) >> (64 - lbits)
		return int64(bits.OnesCount64(w))
	}
	n := int64(bits.OnesCount64(mask[fw] >> fb))
	for i := fw + 1; i < lw; i++ {
		n += int64(bits.OnesCount64(mask[i]))
	}
	n += int64(bits.OnesCount64(mask[lw] << (64 - lbits)))
	return n
}

// maskAnyRange reports whether any mask bit in [from, to) is set.
func maskAnyRange(mask []uint64, from, to int) bool {
	if from >= to {
		return false
	}
	fw, lw := from/64, (to-1)/64
	fb := uint(from % 64)
	lbits := uint((to-1)%64) + 1
	if fw == lw {
		return mask[fw]>>fb<<fb<<(64-lbits) != 0
	}
	if mask[fw]>>fb != 0 {
		return true
	}
	for i := fw + 1; i < lw; i++ {
		if mask[i] != 0 {
			return true
		}
	}
	return mask[lw]<<(64-lbits) != 0
}
