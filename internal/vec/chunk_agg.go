package vec

import (
	"math"
	"math/bits"
)

// Masked aggregation over compressed chunks. Every kernel is bit-exact with
// its raw counterpart in agg.go:
//
//   - integer sums use mod-2^64 identities (k repeated adds of v == k*v, and
//     FOR's Base+code recovers the original bits), so Const and RLE runs
//     multiply instead of walking;
//   - float sums add selected values sequentially in ascending record order —
//     exactly the raw kernel's evaluation order — because float addition is
//     not associative and "equivalent" reassociations would drift;
//   - min/max decode per set bit and apply the identical strict compare, so
//     NaN never wins and ties resolve the same way.
//
// All five encodings are supported; nothing here needs the decompression
// fallback.

// SumIntChunk sums int64-typed chunk values under the mask.
func SumIntChunk(ch *Chunk, mask []uint64) int64 {
	switch ch.Enc {
	case EncRaw:
		return SumInt(ch.Words, mask)
	case EncConst:
		return int64(ch.Base) * Count(mask)
	case EncFOR:
		per := 64 / uint(ch.Width)
		vm := uint64(1)<<ch.Width - 1
		var sum int64
		for wi, w := range mask {
			base := wi * 64
			for w != 0 {
				k := uint(base + bits.TrailingZeros64(w))
				sum += int64(ch.Base + ch.Packed[k/per]>>(k%per*uint(ch.Width))&vm)
				w &= w - 1
			}
		}
		return sum
	case EncDict:
		per := 64 / uint(ch.Width)
		vm := uint64(1)<<ch.Width - 1
		var sum int64
		for wi, w := range mask {
			base := wi * 64
			for w != 0 {
				k := uint(base + bits.TrailingZeros64(w))
				sum += int64(ch.Dict[ch.Packed[k/per]>>(k%per*uint(ch.Width))&vm])
				w &= w - 1
			}
		}
		return sum
	default: // EncRLE
		var sum int64
		start := 0
		for ri, v := range ch.Vals {
			end := int(ch.Ends[ri])
			sum += int64(v) * maskCountRange(mask, start, end)
			start = end
		}
		return sum
	}
}

// SumFloatChunk sums float64-typed chunk values under the mask, preserving
// the raw kernel's sequential add order. Returns ok=false for FOR chunks
// (never produced for float columns; a hint-mismatched chunk falls back).
func SumFloatChunk(ch *Chunk, mask []uint64) (float64, bool) {
	switch ch.Enc {
	case EncRaw:
		return SumFloat(ch.Words, mask), true
	case EncConst:
		v := math.Float64frombits(ch.Base)
		var sum float64
		for i := Count(mask); i > 0; i-- {
			sum += v
		}
		return sum, true
	case EncFOR:
		return 0, false
	case EncDict:
		per := 64 / uint(ch.Width)
		vm := uint64(1)<<ch.Width - 1
		var sum float64
		for wi, w := range mask {
			base := wi * 64
			for w != 0 {
				k := uint(base + bits.TrailingZeros64(w))
				sum += math.Float64frombits(ch.Dict[ch.Packed[k/per]>>(k%per*uint(ch.Width))&vm])
				w &= w - 1
			}
		}
		return sum, true
	default: // EncRLE
		var sum float64
		start := 0
		for ri, rv := range ch.Vals {
			end := int(ch.Ends[ri])
			v := math.Float64frombits(rv)
			for i := maskCountRange(mask, start, end); i > 0; i-- {
				sum += v
			}
			start = end
		}
		return sum, true
	}
}

// MinIntChunk returns the minimum int64 chunk value under the mask and
// whether any bit was set.
func MinIntChunk(ch *Chunk, mask []uint64) (int64, bool) {
	if ch.Enc == EncRaw {
		return MinInt(ch.Words, mask)
	}
	mn := int64(math.MaxInt64)
	any := false
	chunkWalkInt(ch, mask, func(v int64) {
		if v < mn {
			mn = v
		}
		any = true
	})
	return mn, any
}

// MaxIntChunk returns the maximum int64 chunk value under the mask and
// whether any bit was set.
func MaxIntChunk(ch *Chunk, mask []uint64) (int64, bool) {
	if ch.Enc == EncRaw {
		return MaxInt(ch.Words, mask)
	}
	mx := int64(math.MinInt64)
	any := false
	chunkWalkInt(ch, mask, func(v int64) {
		if v > mx {
			mx = v
		}
		any = true
	})
	return mx, any
}

// MinFloatChunk returns the minimum float64 chunk value under the mask and
// whether any bit was set; ok=false for FOR chunks.
func MinFloatChunk(ch *Chunk, mask []uint64) (float64, bool, bool) {
	if ch.Enc == EncFOR {
		return 0, false, false
	}
	if ch.Enc == EncRaw {
		v, any := MinFloat(ch.Words, mask)
		return v, any, true
	}
	mn := math.Inf(1)
	any := false
	chunkWalkInt(ch, mask, func(bv int64) {
		if v := math.Float64frombits(uint64(bv)); v < mn {
			mn = v
		}
		any = true
	})
	return mn, any, true
}

// MaxFloatChunk returns the maximum float64 chunk value under the mask and
// whether any bit was set; ok=false for FOR chunks.
func MaxFloatChunk(ch *Chunk, mask []uint64) (float64, bool, bool) {
	if ch.Enc == EncFOR {
		return 0, false, false
	}
	if ch.Enc == EncRaw {
		v, any := MaxFloat(ch.Words, mask)
		return v, any, true
	}
	mx := math.Inf(-1)
	any := false
	chunkWalkInt(ch, mask, func(bv int64) {
		if v := math.Float64frombits(uint64(bv)); v > mx {
			mx = v
		}
		any = true
	})
	return mx, any, true
}

// chunkWalkInt invokes fn with the decoded value of every set mask bit in
// ascending record order (Const and RLE visit once per distinct stretch,
// which is order-equivalent for order-insensitive folds like min/max).
func chunkWalkInt(ch *Chunk, mask []uint64, fn func(v int64)) {
	switch ch.Enc {
	case EncConst:
		if anyMask(mask) {
			fn(int64(ch.Base))
		}
	case EncFOR:
		per := 64 / uint(ch.Width)
		vm := uint64(1)<<ch.Width - 1
		for wi, w := range mask {
			base := wi * 64
			for w != 0 {
				k := uint(base + bits.TrailingZeros64(w))
				fn(int64(ch.Base + ch.Packed[k/per]>>(k%per*uint(ch.Width))&vm))
				w &= w - 1
			}
		}
	case EncDict:
		per := 64 / uint(ch.Width)
		vm := uint64(1)<<ch.Width - 1
		for wi, w := range mask {
			base := wi * 64
			for w != 0 {
				k := uint(base + bits.TrailingZeros64(w))
				fn(int64(ch.Dict[ch.Packed[k/per]>>(k%per*uint(ch.Width))&vm]))
				w &= w - 1
			}
		}
	case EncRLE:
		start := 0
		for ri, v := range ch.Vals {
			end := int(ch.Ends[ri])
			if maskAnyRange(mask, start, end) {
				fn(int64(v))
			}
			start = end
		}
	case EncRaw:
		for wi, w := range mask {
			base := wi * 64
			for w != 0 {
				fn(int64(ch.Words[base+bits.TrailingZeros64(w)]))
				w &= w - 1
			}
		}
	}
}

// anyMask reports whether any mask bit is set.
func anyMask(mask []uint64) bool {
	for _, w := range mask {
		if w != 0 {
			return true
		}
	}
	return false
}
