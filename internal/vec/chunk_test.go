package vec

import (
	"math"
	"math/rand"
	"testing"
)

// chunkShape generates a column with a characteristic value distribution so
// every encoding (and the raw fallback) gets exercised.
type chunkShape struct {
	name string
	gen  func(r *rand.Rand, n int) []uint64
}

var chunkShapes = []chunkShape{
	{"const", func(r *rand.Rand, n int) []uint64 {
		v := r.Uint64()
		col := make([]uint64, n)
		for i := range col {
			col[i] = v
		}
		return col
	}},
	{"smallrange", func(r *rand.Rand, n int) []uint64 {
		base := r.Uint64()
		col := make([]uint64, n)
		for i := range col {
			col[i] = base + uint64(r.Intn(1000))
		}
		return col
	}},
	{"negatives", func(r *rand.Rand, n int) []uint64 {
		col := make([]uint64, n)
		for i := range col {
			col[i] = uint64(int64(r.Intn(2000) - 1000))
		}
		return col
	}},
	{"lowcard", func(r *rand.Rand, n int) []uint64 {
		vals := make([]uint64, 7)
		for i := range vals {
			vals[i] = r.Uint64()
		}
		col := make([]uint64, n)
		for i := range col {
			col[i] = vals[r.Intn(len(vals))]
		}
		return col
	}},
	{"runs", func(r *rand.Rand, n int) []uint64 {
		col := make([]uint64, n)
		v := r.Uint64()
		for i := range col {
			if r.Intn(40) == 0 {
				v = r.Uint64()
			}
			col[i] = v
		}
		return col
	}},
	{"random", func(r *rand.Rand, n int) []uint64 {
		col := make([]uint64, n)
		for i := range col {
			col[i] = r.Uint64()
		}
		return col
	}},
	{"straddle63", func(r *rand.Rand, n int) []uint64 {
		// Values around 2^63: unsigned range is tiny, signed range is huge.
		col := make([]uint64, n)
		for i := range col {
			col[i] = 1<<63 - 32 + uint64(r.Intn(64))
		}
		return col
	}},
	{"floats", func(r *rand.Rand, n int) []uint64 {
		col := make([]uint64, n)
		for i := range col {
			switch r.Intn(10) {
			case 0:
				col[i] = math.Float64bits(math.NaN())
			case 1:
				col[i] = math.Float64bits(math.Inf(1 - 2*r.Intn(2)))
			case 2:
				col[i] = math.Float64bits(math.Copysign(0, -1))
			default:
				col[i] = math.Float64bits(float64(r.Intn(100)) / 10)
			}
		}
		return col
	}},
}

var chunkSizes = []int{1, 5, 63, 64, 65, 127, 192, 1000, 3072}

// operand values that probe in-range, out-of-range and edge cases.
func cmpOperands(col []uint64) []uint64 {
	ops := []uint64{0, 1, ^uint64(0), 1 << 63, math.Float64bits(1.5), math.Float64bits(math.NaN())}
	ops = append(ops, col[0], col[len(col)/2], col[len(col)-1])
	mn, mx := col[0], col[0]
	for _, v := range col {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return append(ops, mn, mn-1, mx, mx+1)
}

// TestChunkRoundTrip: Decompress and ChunkValue recover the exact bit
// patterns for every shape, size and hint.
func TestChunkRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, sh := range chunkShapes {
		for _, n := range chunkSizes {
			col := sh.gen(r, n)
			for _, hint := range []Hint{HintUint, HintInt, HintFloat} {
				ch := Compress(col, n, hint)
				if ch.N != n {
					t.Fatalf("%s/%d hint %d: N=%d", sh.name, n, hint, ch.N)
				}
				got := Decompress(&ch, nil)
				for i := range col {
					if got[i] != col[i] {
						t.Fatalf("%s/%d hint %d enc %v: decompress[%d]=%#x want %#x",
							sh.name, n, hint, ch.Enc, i, got[i], col[i])
					}
					if v := ChunkValue(&ch, i); v != col[i] {
						t.Fatalf("%s/%d hint %d enc %v: value[%d]=%#x want %#x",
							sh.name, n, hint, ch.Enc, i, v, col[i])
					}
				}
			}
		}
	}
}

// TestChunkEncodingChoice pins the cost model's picks on canonical shapes.
func TestChunkEncodingChoice(t *testing.T) {
	n := 1024
	constant := make([]uint64, n)
	for i := range constant {
		constant[i] = 7
	}
	if ch := Compress(constant, n, HintUint); ch.Enc != EncConst {
		t.Errorf("constant column: got %v want const", ch.Enc)
	}
	narrow := make([]uint64, n)
	for i := range narrow {
		narrow[i] = 1_000_000 + uint64(i%512)
	}
	if ch := Compress(narrow, n, HintUint); ch.Enc != EncFOR {
		t.Errorf("narrow-range column: got %v want for", ch.Enc)
	}
	// High-cardinality wide values but only 3 distinct: dictionary.
	lowcard := make([]uint64, n)
	vals := []uint64{1 << 60, 3 << 50, 9 << 40}
	for i := range lowcard {
		lowcard[i] = vals[i%3]
	}
	if ch := Compress(lowcard, n, HintUint); ch.Enc != EncDict {
		t.Errorf("low-cardinality column: got %v want dict", ch.Enc)
	}
	// Two long runs of wide values: RLE beats dict's packed code stream? No —
	// dict costs n/64 words for 1-bit codes; RLE costs ~3 words. RLE wins.
	runs := make([]uint64, n)
	for i := range runs {
		if i >= n/2 {
			runs[i] = 1 << 61
		} else {
			runs[i] = 5 << 33
		}
	}
	if ch := Compress(runs, n, HintUint); ch.Enc != EncRLE {
		t.Errorf("two-run column: got %v want rle", ch.Enc)
	}
	r := rand.New(rand.NewSource(9))
	random := make([]uint64, n)
	for i := range random {
		random[i] = r.Uint64()
	}
	if ch := Compress(random, n, HintUint); ch.Enc != EncRaw {
		t.Errorf("random column: got %v want raw", ch.Enc)
	}
	// Dictionary overflow: >MaxDictSize distinct wide values must not pick
	// dict (and must still round-trip via raw).
	over := make([]uint64, n)
	for i := range over {
		over[i] = r.Uint64()>>1 | 1<<62
	}
	ch := Compress(over, n, HintUint)
	if ch.Enc == EncDict {
		t.Errorf("dict overflow: picked dict for %d distinct values", n)
	}
	got := Decompress(&ch, nil)
	for i := range over {
		if got[i] != over[i] {
			t.Fatalf("dict-overflow roundtrip[%d]", i)
		}
	}
}

// TestChunkCmpBitExact: compressed compare kernels produce masks identical to
// the raw kernels — including zeroed tail bits past n and untouched extra
// mask words — for every shape × hint × operator × operand. Unsupported
// shapes must report false, never a wrong mask.
func TestChunkCmpBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, sh := range chunkShapes {
		for _, n := range chunkSizes {
			col := sh.gen(r, n)
			// One spare word past the mask proper catches stray writes.
			words := MaskWords(n) + 1
			want := make([]uint64, words)
			got := make([]uint64, words)
			for _, hint := range []Hint{HintUint, HintInt, HintFloat} {
				ch := Compress(col, n, hint)
				for op := Lt; op <= Ne; op++ {
					for _, v := range cmpOperands(col) {
						for i := range got {
							got[i] = ^uint64(0) // dirty — kernels must overwrite
							want[i] = ^uint64(0)
						}
						var ok bool
						switch hint {
						case HintInt:
							CmpInt(col, n, op, int64(v), want)
							ok = CmpChunkInt(&ch, n, op, int64(v), got)
						case HintUint:
							CmpUint(col, n, op, v, want)
							ok = CmpChunkUint(&ch, n, op, v, got)
						case HintFloat:
							f := math.Float64frombits(v)
							CmpFloat(col, n, op, f, want)
							ok = CmpChunkFloat(&ch, n, op, f, got)
						}
						if !ok {
							continue // fallback path; covered by decompress test
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("%s/%d hint %d enc %v op %v v=%#x: mask word %d = %#x want %#x",
									sh.name, n, hint, ch.Enc, op, v, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// feqBits: bit-exact for every real value (±0 stay distinct), with any NaN
// equal to any NaN. Which NaN payload survives an addition chain depends on
// operand order, and the compiler may legally allocate operands differently
// between builds (-race does), so payload equality is not a testable property.
func feqBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) || (math.IsNaN(a) && math.IsNaN(b))
}

// TestChunkAggBitExact: masked chunk aggregates equal the raw kernels bit for
// bit (float sums must match exactly, not approximately; NaN payloads exempt
// — see feqBits) under masks of varying density.
func TestChunkAggBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	densities := []float64{0, 0.02, 0.5, 0.97, 1}
	for _, sh := range chunkShapes {
		for _, n := range chunkSizes {
			col := sh.gen(r, n)
			words := MaskWords(n)
			mask := make([]uint64, words)
			for _, d := range densities {
				for i := 0; i < n; i++ {
					if r.Float64() < d {
						mask[i/64] |= 1 << uint(i%64)
					} else {
						mask[i/64] &^= 1 << uint(i%64)
					}
				}
				for _, hint := range []Hint{HintUint, HintInt, HintFloat} {
					ch := Compress(col, n, hint)
					if gotS := SumIntChunk(&ch, mask); gotS != SumInt(col, mask) {
						t.Fatalf("%s/%d d=%v enc %v: SumInt %d want %d",
							sh.name, n, d, ch.Enc, gotS, SumInt(col, mask))
					}
					if got, ok := SumFloatChunk(&ch, mask); ok {
						want := SumFloat(col, mask)
						if !feqBits(got, want) {
							t.Fatalf("%s/%d d=%v enc %v: SumFloat %v want %v",
								sh.name, n, d, ch.Enc, got, want)
						}
					} else if ch.Enc != EncFOR {
						t.Fatalf("%s/%d enc %v: SumFloat unsupported", sh.name, n, ch.Enc)
					}
					gv, ga := MinIntChunk(&ch, mask)
					wv, wa := MinInt(col, mask)
					if gv != wv || ga != wa {
						t.Fatalf("%s/%d d=%v enc %v: MinInt (%d,%v) want (%d,%v)",
							sh.name, n, d, ch.Enc, gv, ga, wv, wa)
					}
					gv, ga = MaxIntChunk(&ch, mask)
					wv, wa = MaxInt(col, mask)
					if gv != wv || ga != wa {
						t.Fatalf("%s/%d d=%v enc %v: MaxInt (%d,%v) want (%d,%v)",
							sh.name, n, d, ch.Enc, gv, ga, wv, wa)
					}
					if gf, gany, ok := MinFloatChunk(&ch, mask); ok {
						wf, wany := MinFloat(col, mask)
						if !feqBits(gf, wf) || gany != wany {
							t.Fatalf("%s/%d d=%v enc %v: MinFloat (%v,%v) want (%v,%v)",
								sh.name, n, d, ch.Enc, gf, gany, wf, wany)
						}
					}
					if gf, gany, ok := MaxFloatChunk(&ch, mask); ok {
						wf, wany := MaxFloat(col, mask)
						if !feqBits(gf, wf) || gany != wany {
							t.Fatalf("%s/%d d=%v enc %v: MaxFloat (%v,%v) want (%v,%v)",
								sh.name, n, d, ch.Enc, gf, gany, wf, wany)
						}
					}
				}
			}
		}
	}
}

// TestChunkCmpShortN: compare kernels honour n < ch.N (mask sized for n).
func TestChunkCmpShortN(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	col := chunkShapes[4].gen(r, 300) // runs
	ch := Compress(col, 300, HintUint)
	for _, n := range []int{1, 64, 65, 299} {
		want := make([]uint64, MaskWords(n))
		got := make([]uint64, MaskWords(n))
		CmpUint(col, n, Le, col[n/2], want)
		if !CmpChunkUint(&ch, n, Le, col[n/2], got) {
			t.Fatalf("n=%d: unsupported", n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d word %d: %#x want %#x", n, i, got[i], want[i])
			}
		}
	}
}

// FuzzChunkKernels cross-checks compress/scan against the raw kernels on
// arbitrary byte-derived columns.
func FuzzChunkKernels(f *testing.F) {
	f.Add(int64(1), 100, uint8(0))
	f.Add(int64(99), 65, uint8(1))
	f.Add(int64(7), 3072, uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, n int, shape uint8) {
		if n <= 0 || n > 4096 {
			return
		}
		r := rand.New(rand.NewSource(seed))
		col := chunkShapes[int(shape)%len(chunkShapes)].gen(r, n)
		for _, hint := range []Hint{HintUint, HintInt, HintFloat} {
			ch := Compress(col, n, hint)
			got := Decompress(&ch, nil)
			for i := range col {
				if got[i] != col[i] {
					t.Fatalf("roundtrip[%d] enc %v", i, ch.Enc)
				}
			}
			mask := make([]uint64, MaskWords(n))
			for i := 0; i < n; i += 1 + r.Intn(3) {
				mask[i/64] |= 1 << uint(i%64)
			}
			if s := SumIntChunk(&ch, mask); s != SumInt(col, mask) {
				t.Fatalf("SumInt enc %v: %d want %d", ch.Enc, s, SumInt(col, mask))
			}
			v := col[r.Intn(n)]
			op := CmpOp(r.Intn(6))
			want := make([]uint64, MaskWords(n))
			gotM := make([]uint64, MaskWords(n))
			CmpUint(col, n, op, v, want)
			if CmpChunkUint(&ch, n, op, v, gotM) {
				for i := range want {
					if gotM[i] != want[i] {
						t.Fatalf("cmp enc %v op %v word %d", ch.Enc, op, i)
					}
				}
			}
		}
	})
}
