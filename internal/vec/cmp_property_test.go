package vec

import (
	"math"
	"math/rand"
	"testing"
)

// allOps enumerates every compare operator.
var allOps = []CmpOp{Lt, Le, Gt, Ge, Eq, Ne}

// propWidths covers full words, sub-word tails, and empty input.
var propWidths = []int{0, 1, 7, 63, 64, 65, 100, 127, 128, 191, 1024 + 17}

// specialFloats are the IEEE-754 edge values every float column draws from.
var specialFloats = []float64{
	math.NaN(), math.Inf(1), math.Inf(-1),
	0.0, math.Copysign(0, -1),
	1.5, -1.5, math.MaxFloat64, math.SmallestNonzeroFloat64,
}

func checkMask(t *testing.T, kind string, op CmpOp, n int, mask []uint64, ref func(i int) bool) {
	t.Helper()
	for i := 0; i < n; i++ {
		got := mask[i/64]>>(uint(i)%64)&1 == 1
		if want := ref(i); got != want {
			t.Fatalf("%s %v n=%d bit %d: got %v want %v", kind, op, n, i, got, want)
		}
	}
	// Tail bits past n and trailing words must be zero so masks compose.
	for i := n; i < len(mask)*64; i++ {
		if mask[i/64]>>(uint(i)%64)&1 == 1 {
			t.Fatalf("%s %v n=%d: stray bit %d set past n", kind, op, n, i)
		}
	}
}

// TestCmpKernelsMatchScalarReference checks every specialized word-loop
// against the scalar one-element reference for all six operators, all three
// types, across widths including non-multiple-of-64 tails.
func TestCmpKernelsMatchScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range propWidths {
		words := MaskWords(n)
		if words == 0 {
			words = 1 // exercise trailing-word zeroing even for n=0
		}
		mask := make([]uint64, words+1) // one extra word: must come back zero
		for i := range mask {
			mask[i] = ^uint64(0) // pre-poison
		}

		icol := make([]uint64, n)
		ucol := make([]uint64, n)
		fcol := make([]uint64, n)
		for i := 0; i < n; i++ {
			// Small domains force plenty of Eq/Ne hits.
			icol[i] = uint64(rng.Int63n(16) - 8)
			ucol[i] = uint64(rng.Intn(16))
			fcol[i] = math.Float64bits(specialFloats[rng.Intn(len(specialFloats))])
		}
		iv := int64(rng.Int63n(16) - 8)
		uv := uint64(rng.Intn(16))
		fv := specialFloats[rng.Intn(len(specialFloats))]

		for _, op := range allOps {
			op := op
			CmpInt(icol, n, op, iv, mask)
			checkMask(t, "int", op, n, mask, func(i int) bool { return cmpIntOne(int64(icol[i]), op, iv) })

			CmpUint(ucol, n, op, uv, mask)
			checkMask(t, "uint", op, n, mask, func(i int) bool { return cmpUintOne(ucol[i], op, uv) })

			CmpFloat(fcol, n, op, fv, mask)
			checkMask(t, "float", op, n, mask, func(i int) bool {
				return cmpFloatOne(math.Float64frombits(fcol[i]), op, fv)
			})
		}
	}
}

// TestCmpFloatNaN pins the IEEE-754 contract: a NaN operand — on either
// side — satisfies Ne and fails every other operator.
func TestCmpFloatNaN(t *testing.T) {
	nan := math.Float64bits(math.NaN())
	// NaN in the column at a full-word position and in the scalar tail.
	n := 70
	col := make([]uint64, n)
	for i := range col {
		col[i] = math.Float64bits(1.0)
	}
	col[3] = nan  // word-loop position
	col[67] = nan // tail position
	mask := make([]uint64, MaskWords(n))
	for _, op := range allOps {
		CmpFloat(col, n, op, 1.0, mask)
		for _, i := range []int{3, 67} {
			got := mask[i/64]>>(uint(i)%64)&1 == 1
			want := op == Ne
			if got != want {
				t.Fatalf("NaN column value, op %v, bit %d: got %v want %v", op, i, got, want)
			}
		}
	}
	// NaN as the comparison constant: every lane is Ne-only.
	for i := range col {
		col[i] = math.Float64bits(float64(i))
	}
	for _, op := range allOps {
		CmpFloat(col, n, op, math.NaN(), mask)
		want := int64(0)
		if op == Ne {
			want = int64(n)
		}
		if got := Count(mask); got != want {
			t.Fatalf("NaN constant, op %v: %d bits set, want %d", op, got, want)
		}
	}
}

// FuzzCmpKernels drives all three kernels with fuzz-chosen seeds, widths,
// and comparison constants against the scalar references.
func FuzzCmpKernels(f *testing.F) {
	f.Add(int64(1), uint(65), uint64(3))
	f.Add(int64(99), uint(128), math.Float64bits(math.NaN()))
	f.Add(int64(-7), uint(1), uint64(1)<<63)
	f.Fuzz(func(t *testing.T, seed int64, width uint, vbits uint64) {
		n := int(width % 300)
		rng := rand.New(rand.NewSource(seed))
		col := make([]uint64, n)
		for i := range col {
			if rng.Intn(4) == 0 {
				col[i] = vbits // force equality hits
			} else {
				col[i] = rng.Uint64()
			}
		}
		mask := make([]uint64, MaskWords(n))
		fv := math.Float64frombits(vbits)
		for _, op := range allOps {
			op := op
			CmpInt(col, n, op, int64(vbits), mask)
			checkMask(t, "int", op, n, mask, func(i int) bool { return cmpIntOne(int64(col[i]), op, int64(vbits)) })
			CmpUint(col, n, op, vbits, mask)
			checkMask(t, "uint", op, n, mask, func(i int) bool { return cmpUintOne(col[i], op, vbits) })
			CmpFloat(col, n, op, fv, mask)
			checkMask(t, "float", op, n, mask, func(i int) bool {
				return cmpFloatOne(math.Float64frombits(col[i]), op, fv)
			})
		}
	})
}

// TestAggDensityAdaptive checks the density-adaptive aggregation kernels
// against naive references across the sparse/dense crossover, including the
// partial last word where the dense path must not run past the column.
func TestAggDensityAdaptive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 64, 65, 200, 1024 + 63} {
		for _, density := range []float64{0, 0.05, 0.2, 0.3, 0.6, 1.0} {
			icol := make([]uint64, n)
			fcol := make([]uint64, n)
			mask := make([]uint64, MaskWords(n))
			for i := 0; i < n; i++ {
				icol[i] = uint64(rng.Int63n(2000) - 1000)
				fcol[i] = math.Float64bits(float64(rng.Int63n(2000)-1000) / 8)
				if rng.Float64() < density {
					mask[i/64] |= 1 << (uint(i) % 64)
				}
			}
			var wantSumI int64
			var wantSumF float64
			wantMinI, wantMaxI := int64(math.MaxInt64), int64(math.MinInt64)
			wantMinF, wantMaxF := math.Inf(1), math.Inf(-1)
			anyWant := false
			for i := 0; i < n; i++ {
				if mask[i/64]>>(uint(i)%64)&1 == 0 {
					continue
				}
				anyWant = true
				wantSumI += int64(icol[i])
				wantSumF += math.Float64frombits(fcol[i])
				if v := int64(icol[i]); v < wantMinI {
					wantMinI = v
				}
				if v := int64(icol[i]); v > wantMaxI {
					wantMaxI = v
				}
				if v := math.Float64frombits(fcol[i]); v < wantMinF {
					wantMinF = v
				}
				if v := math.Float64frombits(fcol[i]); v > wantMaxF {
					wantMaxF = v
				}
			}
			if got := SumInt(icol, mask); got != wantSumI {
				t.Fatalf("SumInt n=%d density=%.2f: got %d want %d", n, density, got, wantSumI)
			}
			if got := SumFloat(fcol, mask); got != wantSumF {
				t.Fatalf("SumFloat n=%d density=%.2f: got %v want %v (must be bit-identical)", n, density, got, wantSumF)
			}
			if got, any := MinInt(icol, mask); any != anyWant || (any && got != wantMinI) {
				t.Fatalf("MinInt n=%d density=%.2f: got %d,%v want %d,%v", n, density, got, any, wantMinI, anyWant)
			}
			if got, any := MaxInt(icol, mask); any != anyWant || (any && got != wantMaxI) {
				t.Fatalf("MaxInt n=%d density=%.2f: got %d,%v want %d,%v", n, density, got, any, wantMaxI, anyWant)
			}
			if got, any := MinFloat(fcol, mask); any != anyWant || (any && got != wantMinF) {
				t.Fatalf("MinFloat n=%d density=%.2f: got %v,%v want %v,%v", n, density, got, any, wantMinF, anyWant)
			}
			if got, any := MaxFloat(fcol, mask); any != anyWant || (any && got != wantMaxF) {
				t.Fatalf("MaxFloat n=%d density=%.2f: got %v,%v want %v,%v", n, density, got, any, wantMaxF, anyWant)
			}
		}
	}
}

// TestIndices checks the index-slab builder across densities, widths, and
// slab reuse.
func TestIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var slab []int32 // reused across cases, as the executor does
	for _, n := range []int{0, 1, 63, 64, 65, 500} {
		for _, density := range []float64{0, 0.1, 0.5, 1.0} {
			mask := make([]uint64, MaskWords(n))
			var want []int32
			for i := 0; i < n; i++ {
				if rng.Float64() < density {
					mask[i/64] |= 1 << (uint(i) % 64)
					want = append(want, int32(i))
				}
			}
			slab = Indices(mask, slab)
			if len(slab) != len(want) {
				t.Fatalf("Indices n=%d density=%.2f: %d indices, want %d", n, density, len(slab), len(want))
			}
			for k := range want {
				if slab[k] != want[k] {
					t.Fatalf("Indices n=%d density=%.2f: [%d]=%d want %d", n, density, k, slab[k], want[k])
				}
			}
		}
	}
}
