package vec

import (
	"math"
	"math/bits"
)

// denseCutoff is the per-word popcount at which the masked aggregation
// kernels switch from the TrailingZeros64 bit-walk (O(popcount) per word,
// ideal for selective predicates) to the unrolled select-under-mask loop
// (O(64) straight-line, no data-dependent branches, ideal for permissive
// predicates). The crossover sits where the bit-walk's serial
// dependent-chain cost overtakes the dense loop's fixed cost; 16/64 is
// conservative enough that neither regime regresses on either side.
const denseCutoff = 16

// SumInt returns the sum of int64-typed column values whose mask bit is set.
//
// Density-adaptive: sparse words walk set bits, dense words run a branchless
// select-under-mask loop (`v & -(bit)` keeps the value or yields the
// additive identity 0).
func SumInt(col []uint64, mask []uint64) int64 {
	var sum int64
	for wi, w := range mask {
		base := wi * 64
		if bits.OnesCount64(w) >= denseCutoff && base+64 <= len(col) {
			c := col[base : base+64 : base+64]
			var s0, s1, s2, s3 int64
			for j := 0; j < 64; j += 4 {
				s0 += int64(c[j]) & -int64(w>>uint(j)&1)
				s1 += int64(c[j+1]) & -int64(w>>uint(j+1)&1)
				s2 += int64(c[j+2]) & -int64(w>>uint(j+2)&1)
				s3 += int64(c[j+3]) & -int64(w>>uint(j+3)&1)
			}
			sum += s0 + s1 + s2 + s3
			continue
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			sum += int64(col[base+b])
			w &= w - 1
		}
	}
	return sum
}

// SumFloat returns the sum of float64-typed column values under the mask.
//
// The dense path masks the bit pattern to +0.0 for unselected lanes, which
// is exact: x + 0.0 == x for every x the running sum can hold (the sum
// starts at +0.0 and IEEE round-to-nearest never produces -0.0 from it), so
// the result is bit-identical to the sparse walk.
func SumFloat(col []uint64, mask []uint64) float64 {
	var sum float64
	for wi, w := range mask {
		base := wi * 64
		if bits.OnesCount64(w) >= denseCutoff && base+64 <= len(col) {
			c := col[base : base+64 : base+64]
			for j := 0; j < 64; j += 4 {
				sum += math.Float64frombits(c[j] & -(w >> uint(j) & 1))
				sum += math.Float64frombits(c[j+1] & -(w >> uint(j+1) & 1))
				sum += math.Float64frombits(c[j+2] & -(w >> uint(j+2) & 1))
				sum += math.Float64frombits(c[j+3] & -(w >> uint(j+3) & 1))
			}
			continue
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			sum += math.Float64frombits(col[base+b])
			w &= w - 1
		}
	}
	return sum
}

// MinInt returns the minimum int64 column value under the mask and whether
// any bit was set. Dense words select the comparison identity for
// unselected lanes, keeping the loop branch-free (the compares compile to
// CMOV).
func MinInt(col []uint64, mask []uint64) (int64, bool) {
	mn := int64(math.MaxInt64)
	any := false
	for wi, w := range mask {
		base := wi * 64
		if bits.OnesCount64(w) >= denseCutoff && base+64 <= len(col) {
			c := col[base : base+64 : base+64]
			for j := 0; j < 64; j++ {
				m := -(w >> uint(j) & 1)
				if v := int64(c[j]&m | uint64(math.MaxInt64)&^m); v < mn {
					mn = v
				}
			}
			any = true
			continue
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if v := int64(col[base+b]); v < mn {
				mn = v
			}
			any = true
			w &= w - 1
		}
	}
	return mn, any
}

// MaxInt returns the maximum int64 column value under the mask and whether
// any bit was set.
func MaxInt(col []uint64, mask []uint64) (int64, bool) {
	mx := int64(math.MinInt64)
	any := false
	for wi, w := range mask {
		base := wi * 64
		if bits.OnesCount64(w) >= denseCutoff && base+64 <= len(col) {
			c := col[base : base+64 : base+64]
			for j := 0; j < 64; j++ {
				m := -(w >> uint(j) & 1)
				if v := int64(c[j]&m | (1<<63)&^m); v > mx {
					mx = v
				}
			}
			any = true
			continue
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if v := int64(col[base+b]); v > mx {
				mx = v
			}
			any = true
			w &= w - 1
		}
	}
	return mx, any
}

// MinFloat returns the minimum float64 column value under the mask and
// whether any bit was set. NaN values never win a comparison, matching the
// sparse walk exactly.
func MinFloat(col []uint64, mask []uint64) (float64, bool) {
	mn := math.Inf(1)
	any := false
	posInf := math.Float64bits(math.Inf(1))
	for wi, w := range mask {
		base := wi * 64
		if bits.OnesCount64(w) >= denseCutoff && base+64 <= len(col) {
			c := col[base : base+64 : base+64]
			for j := 0; j < 64; j++ {
				m := -(w >> uint(j) & 1)
				if v := math.Float64frombits(c[j]&m | posInf&^m); v < mn {
					mn = v
				}
			}
			any = true
			continue
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if v := math.Float64frombits(col[base+b]); v < mn {
				mn = v
			}
			any = true
			w &= w - 1
		}
	}
	return mn, any
}

// MaxFloat returns the maximum float64 column value under the mask and
// whether any bit was set.
func MaxFloat(col []uint64, mask []uint64) (float64, bool) {
	mx := math.Inf(-1)
	any := false
	negInf := math.Float64bits(math.Inf(-1))
	for wi, w := range mask {
		base := wi * 64
		if bits.OnesCount64(w) >= denseCutoff && base+64 <= len(col) {
			c := col[base : base+64 : base+64]
			for j := 0; j < 64; j++ {
				m := -(w >> uint(j) & 1)
				if v := math.Float64frombits(c[j]&m | negInf&^m); v > mx {
					mx = v
				}
			}
			any = true
			continue
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if v := math.Float64frombits(col[base+b]); v > mx {
				mx = v
			}
			any = true
			w &= w - 1
		}
	}
	return mx, any
}

// ForEach invokes fn with the record index of every set mask bit, in
// ascending order. Hot paths should prefer Indices, which materializes the
// index list without a per-bit indirect call.
func ForEach(mask []uint64, fn func(i int)) {
	for wi, w := range mask {
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(base + b)
			w &= w - 1
		}
	}
}

// Indices appends the record index of every set mask bit to dst[:0] in
// ascending order and returns the filled slice (reusing dst's backing array
// when it is large enough). It replaces the ForEach closure on per-record
// paths: the group-by executor iterates the returned slab with a plain
// range loop. Dense words use a branchless conditional append; sparse words
// walk set bits.
func Indices(mask []uint64, dst []int32) []int32 {
	need := int(Count(mask))
	// One slack element lets the dense path's unconditional store run past
	// the last set bit without bounds trouble.
	if cap(dst) < need+1 {
		dst = make([]int32, need+1)
	}
	dst = dst[:need+1]
	k := 0
	for wi, w := range mask {
		base := int32(wi * 64)
		if bits.OnesCount64(w) >= denseCutoff {
			for j := 0; j < 64; j++ {
				dst[k] = base + int32(j)
				k += int(w >> uint(j) & 1)
			}
			continue
		}
		for w != 0 {
			dst[k] = base + int32(bits.TrailingZeros64(w))
			k++
			w &= w - 1
		}
	}
	return dst[:k]
}
