package vec

import (
	"math"
	"math/bits"
)

// SumInt returns the sum of int64-typed column values whose mask bit is set.
func SumInt(col []uint64, mask []uint64) int64 {
	var sum int64
	for wi, w := range mask {
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			sum += int64(col[base+b])
			w &= w - 1
		}
	}
	return sum
}

// SumFloat returns the sum of float64-typed column values under the mask.
func SumFloat(col []uint64, mask []uint64) float64 {
	var sum float64
	for wi, w := range mask {
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			sum += math.Float64frombits(col[base+b])
			w &= w - 1
		}
	}
	return sum
}

// MinInt returns the minimum int64 column value under the mask and whether
// any bit was set.
func MinInt(col []uint64, mask []uint64) (int64, bool) {
	mn := int64(math.MaxInt64)
	any := false
	for wi, w := range mask {
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if v := int64(col[base+b]); v < mn {
				mn = v
			}
			any = true
			w &= w - 1
		}
	}
	return mn, any
}

// MaxInt returns the maximum int64 column value under the mask and whether
// any bit was set.
func MaxInt(col []uint64, mask []uint64) (int64, bool) {
	mx := int64(math.MinInt64)
	any := false
	for wi, w := range mask {
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if v := int64(col[base+b]); v > mx {
				mx = v
			}
			any = true
			w &= w - 1
		}
	}
	return mx, any
}

// MinFloat returns the minimum float64 column value under the mask and
// whether any bit was set.
func MinFloat(col []uint64, mask []uint64) (float64, bool) {
	mn := math.Inf(1)
	any := false
	for wi, w := range mask {
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if v := math.Float64frombits(col[base+b]); v < mn {
				mn = v
			}
			any = true
			w &= w - 1
		}
	}
	return mn, any
}

// MaxFloat returns the maximum float64 column value under the mask and
// whether any bit was set.
func MaxFloat(col []uint64, mask []uint64) (float64, bool) {
	mx := math.Inf(-1)
	any := false
	for wi, w := range mask {
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if v := math.Float64frombits(col[base+b]); v > mx {
				mx = v
			}
			any = true
			w &= w - 1
		}
	}
	return mx, any
}

// ForEach invokes fn with the record index of every set mask bit, in
// ascending order. The query engine uses it for group-by and top-k scans.
func ForEach(mask []uint64, fn func(i int)) {
	for wi, w := range mask {
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(base + b)
			w &= w - 1
		}
	}
}
