package crashpoint

import "testing"

func TestDisarmedHitIsNoop(t *testing.T) {
	Disarm()
	Hit("anything") // must not die
	if Enabled() {
		t.Fatal("enabled after Disarm")
	}
}

func TestCountdownFiresOnNthHit(t *testing.T) {
	defer Disarm()
	if err := Arm("p.one:3,p.two"); err != nil {
		t.Fatal(err)
	}
	var fired []string
	SetHook(func(name string) { fired = append(fired, name) })
	Hit("p.one")
	Hit("p.one")
	if len(fired) != 0 {
		t.Fatalf("fired early: %v", fired)
	}
	Hit("p.two")
	Hit("p.one")
	Hit("p.one") // already fired and removed: no-op
	if len(fired) != 2 || fired[0] != "p.two" || fired[1] != "p.one" {
		t.Fatalf("fired = %v", fired)
	}
	Hit("p.unknown") // never armed: no-op
}

func TestArmRejectsBadCounts(t *testing.T) {
	defer Disarm()
	if err := Arm("p:x"); err == nil {
		t.Fatal("bad count accepted")
	}
	if err := Arm("p:0"); err == nil {
		t.Fatal("zero count accepted")
	}
	if err := Arm(""); err != nil || Enabled() {
		t.Fatal("empty spec must disarm")
	}
}

func TestPointsListedAndNamed(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Points() {
		if p == "" || seen[p] {
			t.Fatalf("bad or duplicate point %q", p)
		}
		seen[p] = true
	}
	if !seen[ArchiveAppendTorn] || !seen[CheckpointCloseBeforeRename] {
		t.Fatal("expected points missing from Points()")
	}
}
