// Package crashpoint provides named fault points for crash-injection
// testing of the durability subsystem. A production process never arms any
// point, so every Hit call folds to a single atomic load and an untaken
// branch; the crash harness arms points via the AIM_CRASHPOINTS environment
// variable (or Arm) and the process kills itself — os.Exit, not a panic, so
// no deferred cleanup runs, exactly like a power failure as far as the
// on-disk state is concerned.
//
// Spec syntax (comma separated):
//
//	AIM_CRASHPOINTS="archive.append.torn:3"      // die on the 3rd hit
//	AIM_CRASHPOINTS="checkpoint.close.before-rename"  // die on the 1st hit
//
// Tests inside this module can install a hook instead of dying, turning a
// kill point into an error-injection point.
package crashpoint

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// EnvVar names the environment variable ArmFromEnv reads.
const EnvVar = "AIM_CRASHPOINTS"

// ExitCode is the status a crashpoint kill exits with, distinguishable from
// ordinary fatal errors (1) and flag misuse (2).
const ExitCode = 86

// The kill points compiled into the durability subsystem. The harness
// iterates Points() to pick random ones; keep this list in sync with the
// Hit call sites.
const (
	ArchiveAppendBeforeWrite    = "archive.append.before-write"
	ArchiveAppendTorn           = "archive.append.torn"       // fires mid-frame: leaves a torn tail
	ArchiveAppendBatchTorn      = "archive.append.batch-torn" // fires mid-last-frame of a group append
	ArchiveAppendBeforeSync     = "archive.append.before-sync"
	ArchiveRotateAfterCreate    = "archive.rotate.after-create"
	ArchiveTruncateMid          = "archive.truncate.mid" // between segment removals during GC
	CheckpointAddRecord         = "checkpoint.add-record"
	CheckpointCloseBeforeSeal   = "checkpoint.close.before-seal" // records flushed, trailer not written
	CheckpointCloseBeforeRename = "checkpoint.close.before-rename"
	CheckpointCloseAfterRename  = "checkpoint.close.after-rename" // published, retention GC not yet run
	CoreBucketFreeze            = "core.bucket-freeze"            // merge step about to freeze cold buckets
)

// Points returns every compiled-in kill point name.
func Points() []string {
	return []string{
		ArchiveAppendBeforeWrite,
		ArchiveAppendTorn,
		ArchiveAppendBatchTorn,
		ArchiveAppendBeforeSync,
		ArchiveRotateAfterCreate,
		ArchiveTruncateMid,
		CheckpointAddRecord,
		CheckpointCloseBeforeSeal,
		CheckpointCloseBeforeRename,
		CheckpointCloseAfterRename,
		CoreBucketFreeze,
	}
}

var (
	armed  atomic.Bool
	mu     sync.Mutex
	points map[string]int    // remaining hits until the point fires
	hook   func(name string) // test hook; nil = kill the process
)

// Arm installs the given spec ("name[:count],name2[:count2]"). count is the
// 1-based hit that fires (default 1). An empty spec disarms everything.
func Arm(spec string) error {
	mu.Lock()
	defer mu.Unlock()
	points = make(map[string]int)
	spec = strings.TrimSpace(spec)
	if spec == "" {
		armed.Store(false)
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, count := part, 1
		if i := strings.LastIndexByte(part, ':'); i >= 0 {
			n, err := strconv.Atoi(part[i+1:])
			if err != nil || n < 1 {
				return fmt.Errorf("crashpoint: bad count in %q", part)
			}
			name, count = part[:i], n
		}
		points[name] = count
	}
	armed.Store(len(points) > 0)
	return nil
}

// ArmFromEnv arms from AIM_CRASHPOINTS; a missing/empty variable is a no-op.
func ArmFromEnv() error {
	if spec := os.Getenv(EnvVar); spec != "" {
		return Arm(spec)
	}
	return nil
}

// Disarm clears every armed point and hook.
func Disarm() {
	mu.Lock()
	points = nil
	hook = nil
	armed.Store(false)
	mu.Unlock()
}

// SetHook replaces process death with a callback (for in-process tests).
// The hook runs with no locks held.
func SetHook(f func(name string)) {
	mu.Lock()
	hook = f
	mu.Unlock()
}

// Enabled reports whether any point is armed. Hot paths that need extra
// work to expose a point (e.g. splitting a write in two) gate on it.
func Enabled() bool { return armed.Load() }

// Hit fires the named point if it is armed and its countdown reaches zero.
// When disarmed (the production state) it costs one atomic load.
func Hit(name string) {
	if !armed.Load() {
		return
	}
	hitSlow(name)
}

func hitSlow(name string) {
	mu.Lock()
	rem, ok := points[name]
	if !ok {
		mu.Unlock()
		return
	}
	rem--
	if rem > 0 {
		points[name] = rem
		mu.Unlock()
		return
	}
	delete(points, name)
	if len(points) == 0 && hook == nil {
		armed.Store(false)
	}
	h := hook
	mu.Unlock()
	if h != nil {
		h(name)
		return
	}
	fmt.Fprintf(os.Stderr, "crashpoint: killing process at %q\n", name)
	os.Exit(ExitCode)
}
