package event

import (
	"bytes"
	"math"
	"testing"
)

// FuzzDecode hammers the wire codec with arbitrary frames. Decoding must
// never panic, and any frame that decodes must survive an
// encode-decode roundtrip (NaN costs compared bitwise-insensitively: any
// NaN is as good as another).
func FuzzDecode(f *testing.F) {
	var buf [WireSize]byte
	seed := Event{Caller: 7, Callee: 3, Timestamp: 123456, Duration: 60, Cost: 1.25, LongDistance: true}
	seed.Encode(buf[:])
	f.Add(buf[:])
	f.Add(make([]byte, WireSize))
	f.Add([]byte("short"))
	nan := seed
	nan.Cost = math.NaN()
	nan.Encode(buf[:])
	f.Add(buf[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		var e Event
		if err := e.Decode(data); err != nil {
			if len(data) >= WireSize {
				t.Fatalf("decode rejected a full frame: %v", err)
			}
			return
		}
		var enc [WireSize]byte
		if n := e.Encode(enc[:]); n != WireSize {
			t.Fatalf("encode returned %d, want %d", n, WireSize)
		}
		var e2 Event
		if err := e2.Decode(enc[:]); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		var enc2 [WireSize]byte
		e2.Encode(enc2[:])
		if !bytes.Equal(enc[:], enc2[:]) {
			t.Fatalf("roundtrip unstable:\n  first  %x\n  second %x", enc, enc2)
		}
		sameCost := e.Cost == e2.Cost || (math.IsNaN(e.Cost) && math.IsNaN(e2.Cost))
		if e.Caller != e2.Caller || e.Callee != e2.Callee || e.Timestamp != e2.Timestamp ||
			e.Duration != e2.Duration || !sameCost || e.LongDistance != e2.LongDistance {
			t.Fatalf("roundtrip changed the event: %+v vs %+v", e, e2)
		}
	})
}
