package event

import "math/rand"

// Generator produces a deterministic synthetic CDR stream with the shape the
// AIM benchmark requires (§5): callers drawn uniformly from the entity
// population, realistic call durations and costs, and a configurable
// long-distance fraction. A Generator is not safe for concurrent use; create
// one per producing goroutine with distinct seeds.
type Generator struct {
	rng *rand.Rand

	// Entities is the number of subscribers; callers are drawn uniformly
	// from [1, Entities].
	Entities uint64
	// LongDistanceFraction is the probability that a call is long-distance.
	LongDistanceFraction float64
	// MaxDuration is the maximum call duration in seconds (exclusive).
	MaxDuration int64
	// CostPerSecond prices calls; long-distance calls cost 3x.
	CostPerSecond float64

	// now is the generator's logical clock in milliseconds. Each event
	// advances it by StepMillis so runs are reproducible.
	now        int64
	StepMillis int64
}

// NewGenerator returns a generator over the given entity population, seeded
// deterministically.
func NewGenerator(entities uint64, seed int64) *Generator {
	return &Generator{
		rng:                  rand.New(rand.NewSource(seed)),
		Entities:             entities,
		LongDistanceFraction: 0.3,
		MaxDuration:          3600,
		CostPerSecond:        0.002,
		now:                  1_420_070_400_000, // 2015-01-01T00:00:00Z, the paper's era
		StepMillis:           1,
	}
}

// Now returns the generator's current logical time in milliseconds.
func (g *Generator) Now() int64 { return g.now }

// SetNow sets the generator's logical clock.
func (g *Generator) SetNow(ms int64) { g.now = ms }

// Next fills e with the next synthetic event and advances the logical clock.
func (g *Generator) Next(e *Event) {
	e.Caller = 1 + uint64(g.rng.Int63n(int64(g.Entities)))
	e.Callee = 1 + uint64(g.rng.Int63n(int64(g.Entities)))
	e.Timestamp = g.now
	// Call durations are roughly exponential with a two-minute mean —
	// most calls are short, the tail reaches MaxDuration.
	e.Duration = 1 + int64(g.rng.ExpFloat64()*120)
	if e.Duration > g.MaxDuration {
		e.Duration = g.MaxDuration
	}
	e.LongDistance = g.rng.Float64() < g.LongDistanceFraction
	cost := float64(e.Duration) * g.CostPerSecond
	if e.LongDistance {
		cost *= 3
	}
	// Round to cents so aggregates are stable across runs and platforms.
	e.Cost = float64(int64(cost*100+0.5)) / 100
	g.now += g.StepMillis
}

// NextFor is like Next but forces the caller entity, which is useful for
// tests that need a known entity to receive a known number of events.
func (g *Generator) NextFor(e *Event, caller uint64) {
	g.Next(e)
	e.Caller = caller
}
