// Package event defines the Call Detail Record (CDR) event model used by the
// AIM system: the in-memory representation, a fixed-size binary wire codec,
// and a deterministic synthetic event generator.
//
// Events are the paper's 64-byte CDRs (§4.2): each one describes a single
// phone call placed by a subscriber (the Entity) and is the unit of work for
// the ESP subsystem.
package event

import (
	"encoding/binary"
	"fmt"
)

// WireSize is the fixed encoded size of an Event in bytes. The paper quotes
// 64 B events on the wire; we use the same fixed frame.
const WireSize = 64

// Event is a single Call Detail Record.
type Event struct {
	// Caller is the entity-id of the subscriber that placed the call. All
	// Analytics-Matrix indicators are maintained per caller.
	Caller uint64
	// Callee is the entity-id (or external number hash) of the receiver.
	Callee uint64
	// Timestamp is the call start time in milliseconds since the Unix epoch.
	Timestamp int64
	// Duration is the call duration in seconds.
	Duration int64
	// Cost is the call cost in dollars.
	Cost float64
	// LongDistance reports whether the call was long-distance (false = local).
	LongDistance bool
}

// flag bits in the encoded flags word.
const flagLongDistance = 1 << 0

// Encode writes the event into dst, which must be at least WireSize bytes,
// and returns the number of bytes written.
func (e *Event) Encode(dst []byte) int {
	_ = dst[WireSize-1] // bounds check hint
	binary.LittleEndian.PutUint64(dst[0:], e.Caller)
	binary.LittleEndian.PutUint64(dst[8:], e.Callee)
	binary.LittleEndian.PutUint64(dst[16:], uint64(e.Timestamp))
	binary.LittleEndian.PutUint64(dst[24:], uint64(e.Duration))
	binary.LittleEndian.PutUint64(dst[32:], floatBits(e.Cost))
	var flags uint64
	if e.LongDistance {
		flags |= flagLongDistance
	}
	binary.LittleEndian.PutUint64(dst[40:], flags)
	// Bytes 48..63 are reserved padding to keep the frame at 64 B like the
	// paper's CDRs; they are zeroed so frames are deterministic.
	for i := 48; i < WireSize; i++ {
		dst[i] = 0
	}
	return WireSize
}

// Decode parses an event from src, which must hold at least WireSize bytes.
func (e *Event) Decode(src []byte) error {
	if len(src) < WireSize {
		return fmt.Errorf("event: short frame: %d < %d bytes", len(src), WireSize)
	}
	e.Caller = binary.LittleEndian.Uint64(src[0:])
	e.Callee = binary.LittleEndian.Uint64(src[8:])
	e.Timestamp = int64(binary.LittleEndian.Uint64(src[16:]))
	e.Duration = int64(binary.LittleEndian.Uint64(src[24:]))
	e.Cost = floatFrom(binary.LittleEndian.Uint64(src[32:]))
	flags := binary.LittleEndian.Uint64(src[40:])
	e.LongDistance = flags&flagLongDistance != 0
	return nil
}

// String implements fmt.Stringer for debugging output.
func (e *Event) String() string {
	kind := "local"
	if e.LongDistance {
		kind = "long-distance"
	}
	return fmt.Sprintf("CDR{caller=%d callee=%d ts=%d dur=%ds cost=$%.2f %s}",
		e.Caller, e.Callee, e.Timestamp, e.Duration, e.Cost, kind)
}
