package event

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := Event{Caller: 7, Callee: 9, Timestamp: 123456789, Duration: 42, Cost: 1.25, LongDistance: true}
	var buf [WireSize]byte
	if n := in.Encode(buf[:]); n != WireSize {
		t.Fatalf("Encode wrote %d bytes, want %d", n, WireSize)
	}
	var out Event
	if err := out.Decode(buf[:]); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: got %+v want %+v", out, in)
	}
}

func TestDecodeShortFrame(t *testing.T) {
	var e Event
	if err := e.Decode(make([]byte, WireSize-1)); err == nil {
		t.Fatal("Decode on short frame should fail")
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(caller, callee uint64, ts, dur int64, cost float64, ld bool) bool {
		in := Event{Caller: caller, Callee: callee, Timestamp: ts, Duration: dur, Cost: cost, LongDistance: ld}
		var buf [WireSize]byte
		in.Encode(buf[:])
		var out Event
		if err := out.Decode(buf[:]); err != nil {
			return false
		}
		// NaN cost compares unequal to itself; compare bit patterns instead.
		return out.Caller == in.Caller && out.Callee == in.Callee &&
			out.Timestamp == in.Timestamp && out.Duration == in.Duration &&
			floatBits(out.Cost) == floatBits(in.Cost) && out.LongDistance == in.LongDistance
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(1000, 42)
	g2 := NewGenerator(1000, 42)
	for i := 0; i < 100; i++ {
		var a, b Event
		g1.Next(&a)
		g2.Next(&b)
		if a != b {
			t.Fatalf("event %d differs between same-seed generators: %v vs %v", i, a, b)
		}
	}
}

func TestGeneratorBounds(t *testing.T) {
	g := NewGenerator(50, 7)
	ld := 0
	var prevTS int64
	for i := 0; i < 2000; i++ {
		var e Event
		g.Next(&e)
		if e.Caller < 1 || e.Caller > 50 {
			t.Fatalf("caller %d out of [1,50]", e.Caller)
		}
		if e.Duration < 1 || e.Duration > g.MaxDuration {
			t.Fatalf("duration %d out of bounds", e.Duration)
		}
		if e.Cost < 0 {
			t.Fatalf("negative cost %v", e.Cost)
		}
		if e.Timestamp <= prevTS && i > 0 {
			t.Fatalf("timestamps not strictly increasing: %d then %d", prevTS, e.Timestamp)
		}
		prevTS = e.Timestamp
		if e.LongDistance {
			ld++
		}
	}
	if ld == 0 || ld == 2000 {
		t.Fatalf("long-distance fraction degenerate: %d/2000", ld)
	}
}

func TestGeneratorNextFor(t *testing.T) {
	g := NewGenerator(50, 7)
	var e Event
	g.NextFor(&e, 33)
	if e.Caller != 33 {
		t.Fatalf("NextFor caller = %d, want 33", e.Caller)
	}
}
