// Package dimension implements the small, relatively static Dimension Tables
// of the AIM design (§3.4): lookup tables such as RegionInfo or
// SubscriptionType that RTA queries join against.
//
// Following the paper's placement decision, dimension tables are replicated
// at every storage node and their keys are inlined into Entity Records as
// static attributes, so joins reduce to local hash lookups during group-by.
// Tables are immutable after construction (Freeze), which makes replication
// a pointer copy and concurrent reads trivially safe.
package dimension

import (
	"fmt"
	"sort"
)

// Table is a single dimension table: rows keyed by a uint64 surrogate key,
// with named string columns.
type Table struct {
	name    string
	columns []string
	rows    map[uint64][]string
	frozen  bool
}

// NewTable creates an empty table with the given column names.
func NewTable(name string, columns ...string) *Table {
	return &Table{name: name, columns: columns, rows: make(map[uint64][]string)}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the column names.
func (t *Table) Columns() []string { return t.columns }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Insert adds a row. It fails after Freeze, on duplicate keys, or on arity
// mismatch.
func (t *Table) Insert(key uint64, values ...string) error {
	if t.frozen {
		return fmt.Errorf("dimension: table %q is frozen", t.name)
	}
	if len(values) != len(t.columns) {
		return fmt.Errorf("dimension: table %q: %d values for %d columns", t.name, len(values), len(t.columns))
	}
	if _, dup := t.rows[key]; dup {
		return fmt.Errorf("dimension: table %q: duplicate key %d", t.name, key)
	}
	row := make([]string, len(values))
	copy(row, values)
	t.rows[key] = row
	return nil
}

// Freeze marks the table immutable; subsequent Inserts fail.
func (t *Table) Freeze() { t.frozen = true }

// Lookup returns the value of column col for the given key.
func (t *Table) Lookup(key uint64, col string) (string, bool) {
	row, ok := t.rows[key]
	if !ok {
		return "", false
	}
	for i, c := range t.columns {
		if c == col {
			return row[i], true
		}
	}
	return "", false
}

// Keys returns all row keys in ascending order.
func (t *Table) Keys() []uint64 {
	out := make([]uint64, 0, len(t.rows))
	for k := range t.rows {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KeysWhere returns the keys whose column col equals value, in ascending
// order. Query generators use this to translate name-valued parameters
// (e.g. a country name) into inlined-key filters.
func (t *Table) KeysWhere(col, value string) []uint64 {
	var out []uint64
	ci := -1
	for i, c := range t.columns {
		if c == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		return nil
	}
	for k, row := range t.rows {
		if row[ci] == value {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DistinctValues returns the distinct values of col in sorted order.
func (t *Table) DistinctValues(col string) []string {
	seen := map[string]bool{}
	ci := -1
	for i, c := range t.columns {
		if c == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		return nil
	}
	for _, row := range t.rows {
		seen[row[ci]] = true
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Store is a named collection of dimension tables as replicated at each
// storage node.
type Store struct {
	tables map[string]*Table
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{tables: make(map[string]*Table)} }

// Add registers a table, freezing it.
func (s *Store) Add(t *Table) {
	t.Freeze()
	s.tables[t.Name()] = t
}

// Table returns the named table, or an error.
func (s *Store) Table(name string) (*Table, error) {
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("dimension: unknown table %q", name)
	}
	return t, nil
}

// Names returns the registered table names in sorted order.
func (s *Store) Names() []string {
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
