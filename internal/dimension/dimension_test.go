package dimension

import "testing"

func regionTable(t *testing.T) *Table {
	t.Helper()
	rt := NewTable("RegionInfo", "city", "region", "country")
	rows := [][2]interface{}{}
	_ = rows
	data := []struct {
		zip     uint64
		city    string
		region  string
		country string
	}{
		{1000, "Zurich", "ZH", "CH"},
		{1001, "Winterthur", "ZH", "CH"},
		{2000, "Geneva", "GE", "CH"},
		{3000, "Munich", "BY", "DE"},
	}
	for _, d := range data {
		if err := rt.Insert(d.zip, d.city, d.region, d.country); err != nil {
			t.Fatal(err)
		}
	}
	return rt
}

func TestLookup(t *testing.T) {
	rt := regionTable(t)
	if got, ok := rt.Lookup(1000, "city"); !ok || got != "Zurich" {
		t.Fatalf("Lookup(1000,city) = %q,%v", got, ok)
	}
	if got, ok := rt.Lookup(3000, "country"); !ok || got != "DE" {
		t.Fatalf("Lookup(3000,country) = %q,%v", got, ok)
	}
	if _, ok := rt.Lookup(9999, "city"); ok {
		t.Fatal("Lookup on missing key succeeded")
	}
	if _, ok := rt.Lookup(1000, "nope"); ok {
		t.Fatal("Lookup on missing column succeeded")
	}
	if rt.Len() != 4 {
		t.Fatalf("Len = %d", rt.Len())
	}
}

func TestInsertValidation(t *testing.T) {
	rt := regionTable(t)
	if err := rt.Insert(1000, "Dup", "X", "Y"); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if err := rt.Insert(5000, "short"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	rt.Freeze()
	if err := rt.Insert(6000, "a", "b", "c"); err == nil {
		t.Fatal("insert after Freeze accepted")
	}
}

func TestKeysAndDistinct(t *testing.T) {
	rt := regionTable(t)
	keys := rt.Keys()
	if len(keys) != 4 || keys[0] != 1000 || keys[3] != 3000 {
		t.Fatalf("Keys = %v", keys)
	}
	ch := rt.KeysWhere("country", "CH")
	if len(ch) != 3 || ch[0] != 1000 || ch[2] != 2000 {
		t.Fatalf("KeysWhere(CH) = %v", ch)
	}
	if got := rt.KeysWhere("nope", "x"); got != nil {
		t.Fatalf("KeysWhere on bad column = %v", got)
	}
	regions := rt.DistinctValues("region")
	if len(regions) != 3 || regions[0] != "BY" {
		t.Fatalf("DistinctValues(region) = %v", regions)
	}
	if got := rt.DistinctValues("nope"); got != nil {
		t.Fatalf("DistinctValues on bad column = %v", got)
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	s.Add(regionTable(t))
	s.Add(NewTable("Category", "name"))
	if got := s.Names(); len(got) != 2 || got[0] != "Category" || got[1] != "RegionInfo" {
		t.Fatalf("Names = %v", got)
	}
	tab, err := s.Table("RegionInfo")
	if err != nil || tab.Name() != "RegionInfo" {
		t.Fatalf("Table: %v %v", tab, err)
	}
	if _, err := s.Table("missing"); err == nil {
		t.Fatal("Table(missing) succeeded")
	}
	// Add froze the table.
	if err := tab.Insert(7000, "a", "b", "c"); err == nil {
		t.Fatal("insert into frozen store table accepted")
	}
}
