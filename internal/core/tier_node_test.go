package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/schema"
)

// TestPartitionTieredSnapshotParity drives the merge-step aging hook
// directly and checks the checkpoint read path (SnapshotRecords) and point
// reads over frozen buckets against a flat oracle, including a thaw cycle.
func TestPartitionTieredSnapshotParity(t *testing.T) {
	sch := testSchema(t)
	zip := sch.MustAttrIndex("zip")
	p := NewPartition(sch, 4, nil)
	p.EnableTiering(TierConfig{Enabled: true, ColdAfterEpochs: 0, MaxFreezePerStep: -1})

	oracle := make(map[uint64]int64)
	for e := uint64(1); e <= 32; e++ {
		rec := sch.NewRecord(e)
		rec.SetInt(zip, int64(8000+e))
		p.Put(rec)
		oracle[e] = int64(8000 + e)
	}
	p.MergeStep()
	p.MergeStep() // second step sees every bucket an epoch old: all freeze
	ts := p.Main().Tier()
	if ts.ColdBuckets != 8 || ts.Freezes != 8 {
		t.Fatalf("expected all 8 full buckets frozen, got %+v", ts)
	}

	checkAll := func(label string) {
		t.Helper()
		seen := make(map[uint64]int64)
		if err := p.SnapshotRecords(false, func(rec schema.Record) error {
			seen[rec.EntityID()] = rec.Int(zip)
			return nil
		}); err != nil {
			t.Fatalf("%s: SnapshotRecords: %v", label, err)
		}
		if len(seen) != len(oracle) {
			t.Fatalf("%s: snapshot has %d records, want %d", label, len(seen), len(oracle))
		}
		buf := make(schema.Record, sch.Slots)
		for e, want := range oracle {
			if seen[e] != want {
				t.Fatalf("%s: snapshot entity %d zip %d, want %d", label, e, seen[e], want)
			}
			if _, ok := p.Get(e, buf); !ok || buf.Int(zip) != want {
				t.Fatalf("%s: Get entity %d -> ok=%v zip=%d, want %d", label, e, ok, buf.Int(zip), want)
			}
		}
	}
	checkAll("all-cold")

	// A delta write to a frozen record must thaw its bucket and land.
	rec := sch.NewRecord(5)
	rec.SetInt(zip, 9999)
	p.Put(rec)
	oracle[5] = 9999
	p.MergeStep()
	if ts := p.Main().Tier(); ts.Thaws == 0 {
		t.Fatalf("write to frozen record did not thaw: %+v", ts)
	}
	checkAll("after-thaw")
}

// TestNodeTieredPipeline runs the full event→merge→freeze→scan pipeline on
// a tiered node: analytic query results must stay exact while buckets
// freeze, and a second ingest wave must thaw and stay correct while
// concurrent queries hammer the scan threads (the -race churn check).
func TestNodeTieredPipeline(t *testing.T) {
	n := newTestNode(t, Config{
		Partitions: 3,
		BucketSize: 8,
		Tier:       TierConfig{Enabled: true, ColdAfterEpochs: 0, MaxFreezePerStep: -1},
	})
	sch := n.Schema()
	calls := sch.MustAttrIndex("calls_today_count")
	q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}

	const events, callers = 600, 96
	for i := 0; i < events; i++ {
		if err := n.ProcessEventAsync(mkEvent(uint64(i%callers)+1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	waitForSum(t, n, q, events)

	// Idle merge-only rounds keep ticking epochs; with ColdAfterEpochs 0
	// every full bucket goes cold as soon as ingest pauses.
	deadline := time.Now().Add(5 * time.Second)
	for n.TierStats().ColdBuckets == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no buckets froze: %+v", n.TierStats())
		}
		time.Sleep(time.Millisecond)
	}
	if ts := n.TierStats(); ts.CompressionRatio() <= 1 {
		t.Fatalf("cold tier did not compress: %+v", ts)
	}
	waitForSum(t, n, q, events) // scan over compressed chunks stays exact

	// Second wave thaws buckets while queries run concurrently.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p, err := n.SubmitQuery(q)
			if err != nil {
				t.Errorf("query during churn: %v", err)
				return
			}
			res := p.Finalize(q)
			if len(res.Rows) > 0 {
				if got := res.Rows[0].Values[0]; got < events || got > 2*events {
					t.Errorf("churn scan saw %v, want within [%d,%d]", got, events, 2*events)
					return
				}
			}
		}
	}()
	for i := 0; i < events; i++ {
		if err := n.ProcessEventAsync(mkEvent(uint64(i%callers)+1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	waitForSum(t, n, q, 2*events)
	close(stop)
	wg.Wait()

	ts := n.TierStats()
	if ts.Freezes == 0 || ts.Thaws == 0 {
		t.Fatalf("expected freeze and thaw churn, got %+v", ts)
	}
}
