package core

import (
	"errors"
	"fmt"

	"repro/internal/archive"
	"repro/internal/checkpoint"
	"repro/internal/event"
	"repro/internal/schema"
)

// Durability glue: the event archive acts as the write-ahead log of the
// Analytics Matrix, incremental checkpoints bound its replay tail, and
// Restore rebuilds a node from checkpoint + tail (§7: "a persistent event
// archive ... incremental checkpointing and zero-copy logging").

// archiveEvent logs ev before it enters the ESP pipeline (when the node is
// configured with an archive).
func (n *StorageNode) archiveEvent(ev *event.Event) error {
	if n.cfg.Archive == nil {
		return nil
	}
	_, err := n.cfg.Archive.Append(ev)
	return err
}

// enqueueEvent hands an event to its ESP worker without archiving (the
// recovery replay path).
func (n *StorageNode) enqueueEvent(ev event.Event, resp chan espResponse) {
	n.workerForEntity(ev.Caller).ch <- espRequest{kind: kindEvent, ev: ev, resp: resp}
}

// Checkpoint snapshots the node's Entity Records into a new checkpoint
// file. full=true writes every record; full=false writes only records
// dirtied since the last checkpoint (requires the archive, which recovery
// needs for the replay tail anyway). The caller must not ingest events
// concurrently: the flush that precedes the snapshot is the quiesce point
// that makes the watermark exact.
func (n *StorageNode) Checkpoint(mgr *checkpoint.Manager, full bool) error {
	if n.stopped.Load() {
		return ErrStopped
	}
	if !full && n.cfg.Archive == nil {
		return errors.New("core: incremental checkpoints require Config.Archive")
	}
	if err := n.FlushEvents(); err != nil {
		return err
	}
	var watermark uint64
	if n.cfg.Archive != nil {
		if err := n.cfg.Archive.Sync(); err != nil {
			return err
		}
		watermark = n.cfg.Archive.NextLSN()
	}
	w, err := mgr.Create(n.cfg.Schema.Slots, watermark, full)
	if err != nil {
		return err
	}
	for i, p := range n.parts {
		part := p
		resp := make(chan espResponse, 1)
		n.workers[i%len(n.workers)].ch <- espRequest{
			kind: kindExec,
			fn: func() error {
				return part.SnapshotRecords(!full, func(rec schema.Record) error {
					return w.Add(rec)
				})
			},
			resp: resp,
		}
		if r := <-resp; r.err != nil {
			return fmt.Errorf("core: checkpoint partition %d: %w", i, r.err)
		}
	}
	return w.Close()
}

// Restore builds a storage node from the newest checkpoint chain in mgr and
// replays the archive tail beyond the checkpoint watermark through the
// normal ESP path. cfg.Archive must be the same archive the original node
// logged to (or nil to skip the tail replay).
func Restore(cfg Config, mgr *checkpoint.Manager) (*StorageNode, error) {
	if cfg.Schema == nil {
		return nil, errors.New("core: Restore needs Config.Schema")
	}
	recs, watermark, err := mgr.Load(cfg.Schema.Slots)
	if err != nil {
		return nil, err
	}
	n, err := NewNode(cfg)
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if err := n.Put(rec); err != nil {
			n.Stop()
			return nil, err
		}
	}
	if cfg.Archive != nil {
		err := cfg.Archive.Replay(watermark, func(_ uint64, ev event.Event) error {
			n.enqueueEvent(ev, nil)
			return nil
		})
		if err != nil {
			n.Stop()
			return nil, err
		}
	}
	if err := n.FlushEvents(); err != nil {
		n.Stop()
		return nil, err
	}
	return n, nil
}

// ensure the archive import is used even if Config.Archive is the only
// reference site in this file.
var _ = (*archive.Archive)(nil)
