package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/archive"
	"repro/internal/checkpoint"
	"repro/internal/event"
	"repro/internal/schema"
)

// Durability glue: the event archive acts as the write-ahead log of the
// Analytics Matrix, incremental checkpoints bound its replay tail, and
// Restore rebuilds a node from checkpoint + tail (§7: "a persistent event
// archive ... incremental checkpointing and zero-copy logging").
//
// Checkpoints are FUZZY: ingest keeps flowing while the snapshot is taken.
// Correctness hangs on two orderings:
//
//  1. Producers make archive-append + worker-enqueue atomic under
//     ingestMu.RLock (see StorageNode.submitEvent).
//  2. The checkpointer takes ingestMu.Lock, reads the next LSN as the
//     watermark W, and enqueues one capture barrier per ESP worker before
//     unlocking. Worker queues are FIFO, so when a barrier runs, its worker
//     has applied every event with LSN < W and no event with LSN >= W.
//
// The barriers memcpy the partition records on the ESP thread (cheap);
// streaming to disk happens afterwards on the checkpointer's thread while
// events keep flowing. Direct Put/ConditionalPut calls are not WAL'd — only
// event ingest is — so records written that way are durable only once a
// later checkpoint captures them.

// CheckpointStats describes one completed checkpoint.
type CheckpointStats struct {
	Full      bool
	Records   uint64
	Bytes     uint64
	Watermark uint64
	Duration  time.Duration
}

// Checkpoint snapshots the node's Entity Records into a new checkpoint
// file. full=true writes every record; full=false writes only records
// dirtied since the last checkpoint (requires the archive, which recovery
// needs for the replay tail anyway). The snapshot is fuzzy: events may be
// ingested concurrently, and the resulting file is consistent with an exact
// archive watermark.
func (n *StorageNode) Checkpoint(mgr *checkpoint.Manager, full bool) error {
	_, err := n.FuzzyCheckpoint(mgr, full)
	return err
}

// FuzzyCheckpoint is Checkpoint with stats. Checkpoints are serialized;
// concurrent callers queue behind each other.
func (n *StorageNode) FuzzyCheckpoint(mgr *checkpoint.Manager, full bool) (CheckpointStats, error) {
	var st CheckpointStats
	if n.stopped.Load() {
		return st, ErrStopped
	}
	if !full && n.cfg.Archive == nil {
		return st, errors.New("core: incremental checkpoints require Config.Archive")
	}
	n.ckptMu.Lock()
	defer n.ckptMu.Unlock()
	if n.forceFull.Load() {
		full = true
	}
	t0 := time.Now()
	slots := n.cfg.Schema.Slots

	// Pin the watermark and plant one capture barrier per worker while no
	// producer can append/enqueue.
	captures := make([][]uint64, len(n.workers))
	resps := make([]chan espResponse, len(n.workers))
	n.ingestMu.Lock()
	var watermark uint64
	if n.cfg.Archive != nil {
		watermark = n.cfg.Archive.NextLSN()
	}
	for i, w := range n.workers {
		i, w := i, w
		resps[i] = make(chan espResponse, 1)
		w.ch <- espRequest{
			kind: kindExec,
			fn: func() error {
				for _, p := range w.parts {
					err := p.SnapshotRecords(!full, func(rec schema.Record) error {
						captures[i] = append(captures[i], rec...)
						return nil
					})
					if err != nil {
						return err
					}
				}
				return nil
			},
			resp: resps[i],
		}
	}
	n.ingestMu.Unlock()

	fail := func(err error) (CheckpointStats, error) {
		// An incremental capture clears the dirty sets; if this checkpoint
		// does not land, those entities would be skipped forever, so the
		// next one must be full.
		if !full {
			n.forceFull.Store(true)
		}
		n.met.ckptFailures.Inc()
		return st, err
	}

	var barrierErr error
	for i := range resps {
		if r := <-resps[i]; r.err != nil && barrierErr == nil {
			barrierErr = fmt.Errorf("core: checkpoint capture (worker %d): %w", i, r.err)
		}
	}
	if barrierErr != nil {
		return fail(barrierErr)
	}

	// The WAL must be durable up to the watermark before a checkpoint
	// referencing it is published.
	if n.cfg.Archive != nil {
		if err := n.cfg.Archive.Sync(); err != nil {
			return fail(err)
		}
	}
	w, err := mgr.Create(slots, watermark, full)
	if err != nil {
		return fail(err)
	}
	for _, buf := range captures {
		for off := 0; off < len(buf); off += slots {
			if err := w.Add(buf[off : off+slots]); err != nil {
				w.Abort()
				return fail(err)
			}
		}
	}
	st = CheckpointStats{
		Full:      full,
		Records:   w.Count(),
		Bytes:     w.Bytes(),
		Watermark: watermark,
	}
	if err := w.Close(); err != nil {
		return fail(err)
	}
	n.forceFull.Store(false)
	st.Duration = time.Since(t0)
	n.met.ckptTotal.Inc()
	n.met.ckptRecords.Add(st.Records)
	n.met.ckptBytes.Add(st.Bytes)
	n.met.ckptDuration.ObserveSince(t0)
	return st, nil
}

// CheckpointerOptions configures the background checkpoint loop.
type CheckpointerOptions struct {
	// Interval between checkpoints (default 10s).
	Interval time.Duration
	// BaseEvery makes every Nth checkpoint a full base (default 8); the
	// first checkpoint of an empty directory is always a base.
	BaseEvery int
	// GC enables retention: after each base lands, checkpoint files below
	// it are deleted and archive segments below its watermark truncated.
	GC bool
	// OnError, when set, receives checkpoint/GC errors (the loop keeps
	// running); otherwise errors are only counted in the node's metrics.
	OnError func(error)
}

// Checkpointer runs periodic fuzzy checkpoints in the background.
type Checkpointer struct {
	n    *StorageNode
	mgr  *checkpoint.Manager
	opts CheckpointerOptions
	seq  uint64
	quit chan struct{}
	done chan struct{}
}

// StartCheckpointer launches the background checkpoint loop.
func (n *StorageNode) StartCheckpointer(mgr *checkpoint.Manager, opts CheckpointerOptions) *Checkpointer {
	if opts.Interval <= 0 {
		opts.Interval = 10 * time.Second
	}
	if opts.BaseEvery <= 0 {
		opts.BaseEvery = 8
	}
	c := &Checkpointer{
		n:    n,
		mgr:  mgr,
		opts: opts,
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go c.run()
	return c
}

func (c *Checkpointer) run() {
	defer close(c.done)
	ticker := time.NewTicker(c.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := c.RunOnce(); err != nil && !errors.Is(err, ErrStopped) {
				if c.opts.OnError != nil {
					c.opts.OnError(err)
				}
			}
		case <-c.quit:
			return
		}
	}
}

// RunOnce takes one checkpoint now (also used by the shutdown path for the
// final checkpoint) and runs retention GC when a base lands.
func (c *Checkpointer) RunOnce() error {
	full := c.seq%uint64(c.opts.BaseEvery) == 0
	if !full {
		if has, err := c.mgr.HasBase(); err == nil && !has {
			full = true
		}
	}
	st, err := c.n.FuzzyCheckpoint(c.mgr, full)
	if err != nil {
		return err
	}
	c.seq++
	if st.Full && c.opts.GC {
		if _, baseWM, err := c.mgr.GC(); err != nil {
			return fmt.Errorf("core: checkpoint gc: %w", err)
		} else if c.n.cfg.Archive != nil && baseWM > 0 {
			if _, err := c.n.cfg.Archive.TruncateBelow(baseWM); err != nil {
				return fmt.Errorf("core: archive gc: %w", err)
			}
		}
	}
	return nil
}

// Stop halts the loop (without a final checkpoint; call RunOnce first for
// that).
func (c *Checkpointer) Stop() {
	select {
	case <-c.quit:
	default:
		close(c.quit)
	}
	<-c.done
}

// RecoveryReport describes one node recovery end to end.
type RecoveryReport struct {
	// Checkpoint is what the checkpoint load used and quarantined.
	Checkpoint *checkpoint.LoadReport
	// Archive is what archive recovery repaired at Open (copied from the
	// archive's own report; zero when Config.Archive is nil).
	Archive archive.RecoveryReport
	// Records is how many Entity Records the checkpoint chain restored.
	Records int
	// Watermark is the LSN the archive tail replay started from.
	Watermark uint64
	// TailEvents is how many archived events were replayed beyond the
	// watermark.
	TailEvents int
	// Duration is the wall-clock recovery time.
	Duration time.Duration
}

// Restore builds a storage node from the newest checkpoint chain in mgr and
// replays the archive tail beyond the checkpoint watermark through the
// normal ESP path, with Strict validation everywhere.
func Restore(cfg Config, mgr *checkpoint.Manager) (*StorageNode, error) {
	n, _, err := RestoreWithReport(cfg, mgr, checkpoint.Strict)
	return n, err
}

// RestoreWithReport is Restore with a selectable corruption policy for the
// checkpoint chain (the archive's policy was chosen when cfg.Archive was
// opened) and a full report of what recovery used, dropped, and replayed.
// cfg.Archive must be the same archive the original node logged to (or nil
// to skip the tail replay).
func RestoreWithReport(cfg Config, mgr *checkpoint.Manager, mode checkpoint.LoadMode) (*StorageNode, *RecoveryReport, error) {
	if cfg.Schema == nil {
		return nil, nil, errors.New("core: Restore needs Config.Schema")
	}
	t0 := time.Now()
	recs, watermark, lrep, err := mgr.LoadWithReport(cfg.Schema.Slots, mode)
	if err != nil {
		return nil, nil, err
	}
	rep := &RecoveryReport{Checkpoint: lrep, Records: len(recs), Watermark: watermark}
	if cfg.Archive != nil {
		rep.Archive = cfg.Archive.Report()
		// The replay tail must actually exist: if retention truncated the
		// archive above the watermark we fell back to, events are missing
		// and the rebuilt matrix would silently lose updates.
		if first := cfg.Archive.FirstLSN(); first > watermark && cfg.Archive.NextLSN() > watermark {
			return nil, rep, fmt.Errorf(
				"core: archive starts at LSN %d but checkpoint watermark is %d: replay tail is gone",
				first, watermark)
		}
	}
	n, err := NewNode(cfg)
	if err != nil {
		return nil, rep, err
	}
	for _, rec := range recs {
		if err := n.Put(rec); err != nil {
			n.Stop()
			return nil, rep, err
		}
	}
	if cfg.Archive != nil {
		// Replay the tail in batches: each chunk is one channel send per
		// worker and one caller-coalesced apply pass instead of per-event
		// costs, which directly shortens recovery downtime.
		const replayBatch = 256
		batch := make([]event.Event, 0, replayBatch)
		err := cfg.Archive.Replay(watermark, func(_ uint64, ev event.Event) error {
			rep.TailEvents++
			batch = append(batch, ev)
			if len(batch) == replayBatch {
				n.enqueueBatch(batch)
				batch = make([]event.Event, 0, replayBatch)
			}
			return nil
		})
		if err != nil {
			n.Stop()
			return nil, rep, err
		}
		if len(batch) > 0 {
			n.enqueueBatch(batch)
		}
	}
	if err := n.FlushEvents(); err != nil {
		n.Stop()
		return nil, rep, err
	}
	rep.Duration = time.Since(t0)
	n.met.recovery.ObserveDuration(rep.Duration)
	return n, rep, nil
}
