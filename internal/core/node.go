package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/dimension"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/schema"
)

// ErrStopped is returned for operations against a stopped node.
var ErrStopped = errors.New("core: storage node stopped")

// Config configures a StorageNode. The defaults reproduce the paper's
// single-server setup: n = 5 RTA threads/partitions, s = 1 ESP thread,
// query batches capped at 8 (§5.2, §5.3).
type Config struct {
	// Schema is the Analytics Matrix schema (required).
	Schema *schema.Schema
	// Dims holds the node's replicated dimension tables (may be nil).
	Dims *dimension.Store
	// Partitions is n: the number of data partitions == RTA scan threads.
	Partitions int
	// ESPThreads is s: the number of ESP service loops.
	ESPThreads int
	// BucketSize is the ColumnMap bucket size (records per bucket).
	BucketSize int
	// Factory creates records for unseen entities (may be nil).
	Factory RecordFactory
	// MaxBatch caps the shared-scan query batch size.
	MaxBatch int
	// Rules is the replicated Business Rule set evaluated per event.
	Rules []rules.Rule
	// UseRuleIndex selects the Fabret-style rule index over Algorithm 2.
	UseRuleIndex bool
	// OnFiring receives rule firings (the action sink); may be nil. It is
	// called from ESP goroutines and must be cheap and thread-safe.
	OnFiring func(rules.Firing)
	// IdleMergePause is how long the scan coordinator waits for queries
	// before running a merge-only round, bounding data freshness.
	IdleMergePause time.Duration
	// ESPQueueLen is the per-worker event queue capacity.
	ESPQueueLen int
	// Overload configures admission control, delta watermarks and scan
	// shedding. The zero value disables all of it (legacy blocking
	// behavior); see OverloadConfig.
	Overload OverloadConfig
	// Tier configures the compressed cold tier of the ColumnMap mains. The
	// zero value keeps every bucket hot (flat behavior); see TierConfig.
	Tier TierConfig
	// Archive, when set, write-ahead-logs every ingested event and enables
	// incremental checkpoints and crash recovery (see durability.go).
	Archive *archive.Archive
	// Metrics is the registry the node registers its instruments on. nil
	// creates a private registry (reachable via Metrics()) so NodeStats —
	// a view over the registry — always works.
	Metrics *obs.Registry
	// MetricsLabel, when non-empty, adds a node="<label>" constant label to
	// every metric so several nodes can share one registry.
	MetricsLabel string
	// Tracer receives scan-round / merge-step / delta-switch spans; may be
	// nil.
	Tracer obs.Tracer
}

func (c *Config) setDefaults() error {
	if c.Schema == nil {
		return errors.New("core: Config.Schema is required")
	}
	if c.ESPThreads <= 0 {
		c.ESPThreads = 1
	}
	if c.Partitions <= 0 {
		// The paper's allocation rule (§4.8): n = cores - s - 2 (two cores
		// for communication), but at least one partition.
		c.Partitions = runtime.NumCPU() - c.ESPThreads - 2
		if c.Partitions < 1 {
			c.Partitions = 1
		}
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.IdleMergePause <= 0 {
		c.IdleMergePause = 500 * time.Microsecond
	}
	if c.ESPQueueLen <= 0 {
		c.ESPQueueLen = 4096
	}
	c.Overload.setDefaults(c.ESPQueueLen, 4*c.MaxBatch)
	c.Tier.setDefaults()
	return nil
}

// QueryResponse delivers a node-level merged partial (or an error) for one
// submitted query.
type QueryResponse struct {
	Partial *query.Partial
	Err     error
}

type submission struct {
	q    *query.Query
	resp chan QueryResponse
}

type scanBatch struct {
	queries []*submission
	// plan is the fused batch plan compiled once per round by the
	// coordinator and shared read-only by every scan thread.
	plan  *query.BatchPlan
	done  chan []*query.Partial // one slice per scan thread, parallel to queries
	errCh chan error
}

// NodeStats is a snapshot of a node's counters.
type NodeStats struct {
	EventsProcessed uint64
	RuleFirings     uint64
	ScanRounds      uint64
	MergedRecords   uint64
	QueriesServed   uint64
	// CoalescedPuts counts record copies the batched ingest path saved by
	// grouping consecutive same-caller events into one Get/Put pair.
	CoalescedPuts uint64
	Records       int
}

// StorageNode is one AIM storage server: it hosts Partitions data
// partitions, ESPThreads ESP service loops, one RTA scan thread per
// partition, and a coordinator that batches incoming queries and starts all
// scan threads simultaneously (intra-node consistency, §4.8).
type StorageNode struct {
	cfg     Config
	parts   []*Partition
	workers []*espWorker

	submitCh chan *submission
	scanChs  []chan *scanBatch
	stopCh   chan struct{}
	wg       sync.WaitGroup
	stopped  atomic.Bool

	// ingestMu orders event ingest against the fuzzy-checkpoint barrier:
	// producers hold the read side across archive-append + worker-enqueue
	// (making the pair atomic), the checkpointer takes the write side to pin
	// a watermark W with every event below W already queued ahead of the
	// capture barrier and no event at/above W queued behind it.
	ingestMu sync.RWMutex
	// ckptMu serializes checkpoints (one fuzzy snapshot at a time).
	ckptMu sync.Mutex
	// forceFull is set when an incremental checkpoint fails after the
	// capture barrier cleared the dirty sets; the next checkpoint must be
	// full or it would miss those entities.
	forceFull atomic.Bool

	reg *obs.Registry
	met nodeMetrics
}

// NewNode builds and starts a storage node.
func NewNode(cfg Config) (*StorageNode, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	n := &StorageNode{
		cfg:      cfg,
		submitCh: make(chan *submission, 4*cfg.MaxBatch),
		stopCh:   make(chan struct{}),
	}
	n.reg = cfg.Metrics
	if n.reg == nil {
		n.reg = obs.NewRegistry()
	}
	n.met = newNodeMetrics(n.reg, cfg.MetricsLabel)
	for i := 0; i < cfg.Partitions; i++ {
		p := NewPartition(cfg.Schema, cfg.BucketSize, cfg.Factory)
		if cfg.Archive != nil {
			p.EnableDirtyTracking()
		}
		if cfg.Tier.Enabled {
			p.EnableTiering(cfg.Tier)
		}
		n.parts = append(n.parts, p)
	}
	n.instrumentPartitions(n.reg, cfg.MetricsLabel, cfg.Tracer)
	for i := 0; i < cfg.ESPThreads; i++ {
		w := newESPWorker(n, cfg.ESPQueueLen)
		if len(cfg.Rules) > 0 {
			eng, err := rules.NewEngine(cfg.Schema, cfg.Rules, cfg.UseRuleIndex)
			if err != nil {
				return nil, err
			}
			w.engine = eng
			// Groups the rule set reads, computed once: the batched apply
			// path materializes only these on intermediate records.
			w.ruleGroups = cfg.Schema.GroupSetForAttrs(eng.ReadAttrs())
		}
		n.workers = append(n.workers, w)
	}
	// Partition i is served by ESP worker i mod s (§4.8, Figure 8).
	for i, p := range n.parts {
		n.workers[i%len(n.workers)].attach(p)
	}
	n.instrumentWorkers(n.reg, cfg.MetricsLabel)
	for _, w := range n.workers {
		n.wg.Add(1)
		go func(w *espWorker) {
			defer n.wg.Done()
			w.run()
		}(w)
	}
	// One RTA scan thread per partition.
	n.scanChs = make([]chan *scanBatch, cfg.Partitions)
	for i := range n.scanChs {
		n.scanChs[i] = make(chan *scanBatch)
		n.wg.Add(1)
		go func(idx int) {
			defer n.wg.Done()
			n.scanLoop(idx)
		}(i)
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.coordinatorLoop()
	}()
	return n, nil
}

// partitionFor maps an entity id to its partition (the node-local hash h_i
// of §4.8).
func (n *StorageNode) partitionFor(entityID uint64) *Partition {
	h := entityID * 0x9E3779B97F4A7C15
	return n.parts[(h>>32)%uint64(len(n.parts))]
}

// workerIndexFor maps an entity id to the index of the ESP worker serving
// its partition.
func (n *StorageNode) workerIndexFor(entityID uint64) int {
	h := entityID * 0x9E3779B97F4A7C15
	pi := int((h >> 32) % uint64(len(n.parts)))
	return pi % len(n.workers)
}

// workerForEntity returns the ESP worker serving the entity's partition.
func (n *StorageNode) workerForEntity(entityID uint64) *espWorker {
	return n.workers[n.workerIndexFor(entityID)]
}

// --- ESP-facing API ---------------------------------------------------------

// ProcessEventAsync enqueues an event for processing. Without overload
// protection it blocks only when the responsible ESP queue is full
// (backpressure); with Config.Overload.Enabled it instead rejects with a
// typed *OverloadedError once the queue passes the soft limit or the
// partition's delta passes the hard watermark.
func (n *StorageNode) ProcessEventAsync(ev event.Event) error {
	if n.stopped.Load() {
		return ErrStopped
	}
	if err := n.admitEvent(ev.Caller); err != nil {
		return err
	}
	return n.submitEvent(ev, nil)
}

// ProcessEvent processes an event synchronously and returns the number of
// rule firings it caused.
func (n *StorageNode) ProcessEvent(ev event.Event) (int, error) {
	if n.stopped.Load() {
		return 0, ErrStopped
	}
	resp := make(chan espResponse, 1)
	if err := n.submitEvent(ev, resp); err != nil {
		return 0, err
	}
	r := <-resp
	return r.firings, r.err
}

// submitEvent archives (when configured) and enqueues one event. With an
// archive, append + enqueue happen under ingestMu's read side so the pair
// is atomic with respect to the fuzzy-checkpoint watermark pin.
func (n *StorageNode) submitEvent(ev event.Event, resp chan espResponse) error {
	if n.cfg.Archive == nil {
		n.workerForEntity(ev.Caller).ch <- espRequest{kind: kindEvent, ev: ev, resp: resp}
		return nil
	}
	n.ingestMu.RLock()
	defer n.ingestMu.RUnlock()
	if _, err := n.cfg.Archive.Append(&ev); err != nil {
		return err
	}
	n.workerForEntity(ev.Caller).ch <- espRequest{kind: kindEvent, ev: ev, resp: resp}
	return nil
}

// BatchProcessor is the optional batched-ingest extension of Storage:
// handles that implement it accept many fire-and-forget events in one call
// (one wire frame, one WAL group append, one channel send per worker).
// StorageNode and netproto.Client both implement it.
type BatchProcessor interface {
	ProcessEventBatch(evs []event.Event) error
}

// PartialBatchError reports a batch ingest that stopped partway: the first
// Applied events were durably logged and handed to the ESP workers, the rest
// were not ingested at all. Callers must re-submit only the un-applied
// suffix — re-submitting the whole batch would log the prefix twice, and a
// crash-recovery replay would then apply those events twice.
type PartialBatchError struct {
	Applied int
	Err     error
}

func (e *PartialBatchError) Error() string {
	return fmt.Sprintf("core: batch ingest stopped after %d events: %v", e.Applied, e.Err)
}

func (e *PartialBatchError) Unwrap() error { return e.Err }

// ProcessBatch delivers evs through one ProcessEventBatch call when the
// handle supports it, else per event. It returns how many leading events
// were durably handed off along with the first error: a batch-capable
// handle fails all-or-nothing (0 on error) unless the error is a
// *PartialBatchError carrying the ingested prefix length; the per-event
// fallback stops at the failing event. Callers relinquish ownership of
// evs[:delivered] either way and own the retry of the suffix.
func ProcessBatch(st Storage, evs []event.Event) (int, error) {
	if bp, ok := st.(BatchProcessor); ok {
		if err := bp.ProcessEventBatch(evs); err != nil {
			var pe *PartialBatchError
			if errors.As(err, &pe) {
				return pe.Applied, err
			}
			return 0, err
		}
		return len(evs), nil
	}
	for i := range evs {
		if err := st.ProcessEventAsync(evs[i]); err != nil {
			return i, err
		}
	}
	return len(evs), nil
}

// ProcessEventBatch ingests a batch of fire-and-forget events, taking
// ownership of evs. Semantics match len(evs) ProcessEventAsync calls —
// same matrix state, same rule firings, same archive contents — but the
// batch pays one archive group append and one channel send per worker
// instead of per event.
func (n *StorageNode) ProcessEventBatch(evs []event.Event) error {
	if len(evs) == 0 {
		return nil
	}
	if n.stopped.Load() {
		return ErrStopped
	}
	// Admission runs before the WAL append so a rejected batch is
	// all-or-nothing: nothing logged, nothing enqueued, caller owns the
	// whole batch again.
	if err := n.admitBatch(evs); err != nil {
		return err
	}
	n.met.ingestBatch.Observe(uint64(len(evs)))
	if n.cfg.Archive == nil {
		n.enqueueBatch(evs)
		return nil
	}
	n.ingestMu.RLock()
	defer n.ingestMu.RUnlock()
	if _, appended, err := n.cfg.Archive.AppendBatch(evs); err != nil {
		if appended > 0 {
			// The prefix is durably in the WAL: apply it now so matrix state
			// matches what a crash-recovery replay would reconstruct, and
			// report the boundary so the caller respills only the suffix.
			n.enqueueBatch(evs[:appended:appended])
			return &PartialBatchError{Applied: appended, Err: err}
		}
		return err
	}
	n.enqueueBatch(evs)
	return nil
}

// enqueueBatch hands evs to the ESP workers, bucketed per worker with
// arrival order preserved inside each bucket. Takes ownership of evs.
func (n *StorageNode) enqueueBatch(evs []event.Event) {
	if len(n.workers) == 1 {
		n.workers[0].ch <- espRequest{kind: kindBatch, evs: evs}
		return
	}
	buckets := make([][]event.Event, len(n.workers))
	for i := range evs {
		wi := n.workerIndexFor(evs[i].Caller)
		buckets[wi] = append(buckets[wi], evs[i])
	}
	for wi, b := range buckets {
		if len(b) > 0 {
			n.workers[wi].ch <- espRequest{kind: kindBatch, evs: b}
		}
	}
}

// FlushEvents blocks until every event enqueued before the call has been
// processed.
func (n *StorageNode) FlushEvents() error {
	if n.stopped.Load() {
		return ErrStopped
	}
	resps := make([]chan espResponse, len(n.workers))
	for i, w := range n.workers {
		resps[i] = make(chan espResponse, 1)
		w.ch <- espRequest{kind: kindSync, resp: resps[i]}
	}
	for _, c := range resps {
		<-c
	}
	return nil
}

// Get returns a copy of the entity's freshest record and its version.
func (n *StorageNode) Get(entityID uint64) (schema.Record, uint64, bool, error) {
	if n.stopped.Load() {
		return nil, 0, false, ErrStopped
	}
	resp := make(chan espResponse, 1)
	n.workerForEntity(entityID).ch <- espRequest{kind: kindGet, entity: entityID, resp: resp}
	r := <-resp
	return r.rec, r.version, r.found, nil
}

// Put stores rec unconditionally.
func (n *StorageNode) Put(rec schema.Record) error {
	if n.stopped.Load() {
		return ErrStopped
	}
	resp := make(chan espResponse, 1)
	n.workerForEntity(rec.EntityID()).ch <- espRequest{kind: kindPut, rec: rec.Clone(), resp: resp}
	<-resp
	return nil
}

// ConditionalPut stores rec if the entity is still at the expected version.
func (n *StorageNode) ConditionalPut(rec schema.Record, expected uint64) error {
	if n.stopped.Load() {
		return ErrStopped
	}
	resp := make(chan espResponse, 1)
	n.workerForEntity(rec.EntityID()).ch <- espRequest{kind: kindCondPut, rec: rec.Clone(), version: expected, resp: resp}
	r := <-resp
	return r.err
}

// --- RTA-facing API ---------------------------------------------------------

// SubmitQueryAsync queues q for the next shared-scan batch and returns a
// channel that will deliver the node-level merged partial (§4.2's
// asynchronous RTA protocol). With Config.Overload.Enabled the pending
// pool is bounded: past MaxPendingQueries the submission is rejected with
// a typed *OverloadedError instead of queued, so analytics sheds load
// before it can pile onto a saturated node.
func (n *StorageNode) SubmitQueryAsync(q *query.Query) (<-chan QueryResponse, error) {
	if n.stopped.Load() {
		return nil, ErrStopped
	}
	if err := q.Validate(n.cfg.Schema); err != nil {
		return nil, err
	}
	if ol := &n.cfg.Overload; ol.Enabled && len(n.submitCh) >= ol.MaxPendingQueries {
		n.met.rejectScan.Inc()
		return nil, &OverloadedError{RetryAfter: ol.RetryAfter, Reason: "scan-admission"}
	}
	s := &submission{q: q, resp: make(chan QueryResponse, 1)}
	select {
	case n.submitCh <- s:
		return s.resp, nil
	case <-n.stopCh:
		return nil, ErrStopped
	}
}

// SubmitQuery runs q and waits for the node-level partial.
func (n *StorageNode) SubmitQuery(q *query.Query) (*query.Partial, error) {
	ch, err := n.SubmitQueryAsync(q)
	if err != nil {
		return nil, err
	}
	r := <-ch
	return r.Partial, r.Err
}

// coordinatorLoop batches submissions and drives scan rounds. Every round
// starts all scan threads on the same batch simultaneously and ends with
// each partition's merge step, so RTA queries always see a consistent
// snapshot and data freshness is bounded by the round duration plus
// IdleMergePause.
func (n *StorageNode) coordinatorLoop() {
	timer := time.NewTimer(n.cfg.IdleMergePause)
	defer timer.Stop()
	for {
		batch, ok := n.collectBatch(timer)
		if !ok {
			return // stopping
		}
		n.runRound(batch)
	}
}

// collectBatch waits for at least one query or the idle pause, then drains
// up to the batch limit without blocking. ok=false means shutdown; an empty
// batch with ok=true is a merge-only round.
//
// Past the delta soft watermark the coordinator sheds scan concurrency:
// the idle pause shrinks so merge-only rounds come sooner, and the batch
// cap halves so each round spends less time scanning and more of the
// round budget merging — delta growth slows before the hard watermark
// starts rejecting ingest.
func (n *StorageNode) collectBatch(timer *time.Timer) ([]*submission, bool) {
	pause, limit := n.cfg.IdleMergePause, n.cfg.MaxBatch
	if n.watermarkState() >= watermarkSoft {
		pause /= 8
		if pause <= 0 {
			pause = time.Microsecond
		}
		limit = (limit + 1) / 2
		n.met.shedRounds.Inc()
	}
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	timer.Reset(pause)
	var batch []*submission
	select {
	case s := <-n.submitCh:
		batch = append(batch, s)
	case <-timer.C:
		return batch, true // empty merge-only round
	case <-n.stopCh:
		return nil, false
	}
	for len(batch) < limit {
		select {
		case s := <-n.submitCh:
			batch = append(batch, s)
		default:
			return batch, true
		}
	}
	return batch, true
}

// runRound compiles the batch into one fused plan, distributes it to every
// scan thread, gathers their per-partition partials, merges them and answers
// the submitters.
func (n *StorageNode) runRound(batch []*submission) {
	batch = n.evictExpired(batch)
	t0 := time.Now()
	queries := make([]*query.Query, len(batch))
	for i, s := range batch {
		queries[i] = s.q
	}
	plan, err := query.CompileBatch(n.cfg.Schema, queries)
	if err != nil {
		// Unreachable for validated submissions; fail the batch rather than
		// stall the merge cadence for long.
		n.failBatch(batch, err)
		return
	}
	sb := &scanBatch{
		queries: batch,
		plan:    plan,
		done:    make(chan []*query.Partial, len(n.scanChs)),
		errCh:   make(chan error, len(n.scanChs)),
	}
	for _, ch := range n.scanChs {
		select {
		case ch <- sb:
		case <-n.stopCh:
			n.failBatch(batch, ErrStopped)
			return
		}
	}
	merged := make([]*query.Partial, len(batch))
	for i, s := range batch {
		merged[i] = query.NewPartial(s.q)
	}
	var firstErr error
	for range n.scanChs {
		select {
		case partials := <-sb.done:
			for i, p := range partials {
				merged[i].Merge(p, batch[i].q)
			}
		case err := <-sb.errCh:
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	n.met.scanRounds.Inc()
	if len(batch) > 0 {
		d := time.Since(t0)
		n.met.scan.ObserveRound(plan, d)
		if n.cfg.Tracer != nil {
			n.cfg.Tracer.Record(obs.Span{
				Kind:  obs.SpanScanRound,
				Start: t0,
				Dur:   d,
				A:     int64(len(batch)),
				B:     int64(len(batch) - plan.NumDuplicates()),
			})
		}
	}
	for i, s := range batch {
		if firstErr != nil {
			s.resp <- QueryResponse{Err: firstErr}
		} else {
			s.resp <- QueryResponse{Partial: merged[i]}
			n.met.queriesServed.Inc()
		}
	}
}

func (n *StorageNode) failBatch(batch []*submission, err error) {
	for _, s := range batch {
		s.resp <- QueryResponse{Err: err}
	}
}

// evictExpired answers every submission whose Deadline already passed with
// a typed ErrDeadline and returns the still-live remainder. Evicted
// queries never enter the fused plan, so a round's scan budget is spent
// only on queries whose submitters are still waiting.
func (n *StorageNode) evictExpired(batch []*submission) []*submission {
	deadlined := false
	for _, s := range batch {
		if s.q.Deadline > 0 {
			deadlined = true
			break
		}
	}
	if !deadlined {
		return batch
	}
	now := time.Now().UnixNano()
	live := batch[:0]
	for _, s := range batch {
		if s.q.Deadline > 0 && s.q.Deadline <= now {
			n.met.rejectDeadline.Inc()
			s.resp <- QueryResponse{Err: fmt.Errorf("%w: query %d", ErrDeadline, s.q.ID)}
			continue
		}
		live = append(live, s)
	}
	return live
}

// scanLoop is one RTA thread (Figure 6): scan step over the partition's
// main for the whole batch, then merge step.
//
// The thread pools its partials across rounds: the coordinator finishes
// merging a round's partials before it dispatches the next round, so the
// pool entries are free for reuse by the time the next batch arrives. With
// the executor's pooled mask slab this makes steady-state scan rounds
// allocation-free for non-grouped queries.
func (n *StorageNode) scanLoop(idx int) {
	p := n.parts[idx]
	ex := query.NewExecutor(n.cfg.Schema, n.cfg.Dims)
	pool := make([]*query.Partial, 0, n.cfg.MaxBatch)
	for {
		var sb *scanBatch
		select {
		case sb = <-n.scanChs[idx]:
		case <-n.stopCh:
			return
		}
		for len(pool) < len(sb.queries) {
			pool = append(pool, &query.Partial{})
		}
		partials := pool[:len(sb.queries)]
		for i, s := range sb.queries {
			partials[i].Reset(s.q)
		}
		var scanErr error
		if len(sb.queries) > 0 {
			// Shared scan (Algorithm 5): buckets outer, the fused batch
			// plan answering every query inside.
			for _, bucket := range p.ScanSnapshot() {
				if err := ex.ProcessBucketBatch(bucket, sb.plan, partials); err != nil {
					scanErr = fmt.Errorf("core: partition %d: %w", idx, err)
					break
				}
			}
			if scanErr == nil {
				sb.plan.FoldDuplicates(partials)
			}
		}
		merged := p.MergeStep()
		n.met.mergedRecords.Add(uint64(merged))
		if scanErr != nil {
			sb.errCh <- scanErr
			continue
		}
		sb.done <- partials
	}
}

// Stats returns a snapshot of the node's counters. It is a view over the
// node's metrics registry, which holds the only copy of these counts.
func (n *StorageNode) Stats() NodeStats {
	records := 0
	for _, p := range n.parts {
		records += p.Main().Len()
	}
	return NodeStats{
		EventsProcessed: n.met.events.Value(),
		RuleFirings:     n.met.firings.Value(),
		ScanRounds:      n.met.scanRounds.Value(),
		MergedRecords:   n.met.mergedRecords.Value(),
		QueriesServed:   n.met.queriesServed.Value(),
		CoalescedPuts:   n.met.coalescedPuts.Value(),
		Records:         records,
	}
}

// Metrics returns the registry the node's instruments live on (the one from
// Config.Metrics, or the node's private registry).
func (n *StorageNode) Metrics() *obs.Registry { return n.reg }

// NumPartitions returns n (the partition / RTA thread count).
func (n *StorageNode) NumPartitions() int { return len(n.parts) }

// Schema returns the node's schema.
func (n *StorageNode) Schema() *schema.Schema { return n.cfg.Schema }

// Stop shuts the node down: ESP workers drain their queues, in-flight scan
// rounds finish, and subsequent API calls fail with ErrStopped.
func (n *StorageNode) Stop() {
	if n.stopped.Swap(true) {
		return
	}
	for _, w := range n.workers {
		close(w.stop)
	}
	for _, w := range n.workers {
		<-w.done
	}
	close(n.stopCh)
	n.wg.Wait()
	// Fail any submissions that raced with shutdown.
	for {
		select {
		case s := <-n.submitCh:
			s.resp <- QueryResponse{Err: ErrStopped}
		default:
			return
		}
	}
}
