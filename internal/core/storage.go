package core

import (
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/schema"
)

// Storage is the Get/Put/Scan interface of an AIM storage server (§4.2).
// It is implemented by *StorageNode (in-process) and by netproto.Client
// (TCP), so the ESP router and the RTA coordinator work identically against
// colocated and remote storage — the paper's architecture options (a)/(b).
type Storage interface {
	// ProcessEventAsync enqueues an event for ESP processing (update matrix
	// + rule evaluation) with backpressure.
	ProcessEventAsync(ev event.Event) error
	// ProcessEvent processes one event synchronously and returns the rule
	// firing count.
	ProcessEvent(ev event.Event) (int, error)
	// FlushEvents blocks until previously enqueued events are processed.
	FlushEvents() error
	// Get returns a copy of the entity's freshest record and its version.
	Get(entityID uint64) (schema.Record, uint64, bool, error)
	// Put stores a record unconditionally.
	Put(rec schema.Record) error
	// ConditionalPut stores a record if the version still matches.
	ConditionalPut(rec schema.Record, expected uint64) error
	// SubmitQueryAsync enqueues a query for the next shared-scan batch.
	SubmitQueryAsync(q *query.Query) (<-chan QueryResponse, error)
	// SubmitQuery runs a query and waits for the server-level partial.
	SubmitQuery(q *query.Query) (*query.Partial, error)
}

var _ Storage = (*StorageNode)(nil)
