package core

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/archive"
	"repro/internal/event"
	"repro/internal/rules"
)

// TestBatchedIngestMatchesPerEvent is the equivalence contract of the
// batched ingest pipeline: feeding the same stream through
// ProcessEventBatch (caller-coalesced apply + group WAL appends) must leave
// exactly the per-event end state — identical matrix records (modulo the
// version slot, whose intermediate stamps legitimately differ), identical
// rule-firing counts (rules are evaluated per event against the
// intermediate record either way), and byte-identical archive contents.
func TestBatchedIngestMatchesPerEvent(t *testing.T) {
	sch := testSchema(t)
	calls := sch.MustAttrIndex("calls_today_count")
	rule := []rules.Rule{{
		ID: 1, Action: "alert",
		Conjuncts: []rules.Conjunct{{{Kind: rules.LHSAttr, Attr: calls, Op: rules.Ge, Value: 3}}},
	}}

	// Timestamps advance across several day windows, so per-caller apply
	// order is observable through window rollovers, not just firing counts.
	const nEvents = 2000
	const nEntities = 41
	rng := rand.New(rand.NewSource(7))
	evs := make([]event.Event, nEvents)
	for i := range evs {
		evs[i] = event.Event{
			Caller:       uint64(rng.Intn(nEntities)) + 1,
			Callee:       uint64(rng.Intn(nEntities)) + 1,
			Timestamp:    100*dayMs + int64(i)*(dayMs/300),
			Duration:     int64(rng.Intn(600)),
			Cost:         float64(rng.Intn(100)) / 10,
			LongDistance: rng.Intn(4) == 0,
		}
	}

	run := func(batched bool) (*StorageNode, *archive.Archive, uint64) {
		arch, err := archive.Open(t.TempDir(), archive.Options{SegmentEvents: 128})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { arch.Close() })
		var firings atomic.Uint64
		n := newTestNode(t, Config{
			Schema:     sch,
			Partitions: 3,
			ESPThreads: 2,
			Rules:      rule,
			Archive:    arch,
			OnFiring:   func(rules.Firing) { firings.Add(1) },
		})
		if batched {
			// Ragged batch sizes exercise partial runs, single-event batches,
			// and batches spanning archive segment rotations.
			sizes := rand.New(rand.NewSource(11))
			for i := 0; i < len(evs); {
				j := min(i+1+sizes.Intn(200), len(evs))
				batch := make([]event.Event, j-i)
				copy(batch, evs[i:j]) // the node owns the slice it is handed
				if err := n.ProcessEventBatch(batch); err != nil {
					t.Fatal(err)
				}
				i = j
			}
		} else {
			for i := range evs {
				if err := n.ProcessEventAsync(evs[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := n.FlushEvents(); err != nil {
			t.Fatal(err)
		}
		return n, arch, firings.Load()
	}

	ref, refArch, refFirings := run(false)
	got, gotArch, gotFirings := run(true)

	if gotFirings != refFirings || got.Stats().RuleFirings != ref.Stats().RuleFirings {
		t.Fatalf("firings: batched %d (stats %d), per-event %d (stats %d)",
			gotFirings, got.Stats().RuleFirings, refFirings, ref.Stats().RuleFirings)
	}
	if got.Stats().EventsProcessed != ref.Stats().EventsProcessed {
		t.Fatalf("events processed: batched %d, per-event %d",
			got.Stats().EventsProcessed, ref.Stats().EventsProcessed)
	}
	if got.Stats().CoalescedPuts == 0 {
		t.Fatal("batched run coalesced no puts")
	}

	// Matrix equivalence: every entity's record matches slot for slot,
	// ignoring only the version stamp.
	vslot := sch.VersionSlot
	for e := uint64(1); e <= nEntities; e++ {
		refRec, _, refOK, err := ref.Get(e)
		if err != nil {
			t.Fatal(err)
		}
		gotRec, _, gotOK, err := got.Get(e)
		if err != nil {
			t.Fatal(err)
		}
		if refOK != gotOK {
			t.Fatalf("entity %d: batched present=%v, per-event present=%v", e, gotOK, refOK)
		}
		if !refOK {
			continue
		}
		for s := range refRec {
			if s == vslot {
				continue
			}
			if refRec[s] != gotRec[s] {
				t.Fatalf("entity %d slot %d: batched %d, per-event %d", e, s, gotRec[s], refRec[s])
			}
		}
	}

	// Archive equivalence: group appends must log the same events at the
	// same LSNs as per-event appends.
	if gotArch.NextLSN() != refArch.NextLSN() {
		t.Fatalf("NextLSN: batched %d, per-event %d", gotArch.NextLSN(), refArch.NextLSN())
	}
	refLog := make([]event.Event, 0, nEvents)
	if err := refArch.Replay(0, func(_ uint64, ev event.Event) error {
		refLog = append(refLog, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	i := 0
	if err := gotArch.Replay(0, func(lsn uint64, ev event.Event) error {
		if ev != refLog[i] {
			t.Fatalf("archive LSN %d: batched %+v, per-event %+v", lsn, ev, refLog[i])
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if i != nEvents {
		t.Fatalf("batched archive replayed %d events, want %d", i, nEvents)
	}
}
