package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/archive"
	"repro/internal/event"
)

// partialStub is a BatchProcessor that always stops partway, for exercising
// ProcessBatch's partial-prefix accounting.
type partialStub struct {
	Storage
	applied int
}

var errStub = errors.New("stub: node failed mid-batch")

func (s *partialStub) ProcessEventBatch(evs []event.Event) error {
	return &PartialBatchError{Applied: s.applied, Err: errStub}
}

// TestProcessBatchPartialError checks ProcessBatch surfaces a batch-capable
// handle's partial progress: the delivered count is the applied prefix, not
// zero, so callers respill only the un-ingested suffix.
func TestProcessBatchPartialError(t *testing.T) {
	evs := make([]event.Event, 5)
	delivered, err := ProcessBatch(&partialStub{applied: 3}, evs)
	if delivered != 3 {
		t.Fatalf("delivered = %d, want 3", delivered)
	}
	var pe *PartialBatchError
	if !errors.As(err, &pe) || pe.Applied != 3 || !errors.Is(err, errStub) {
		t.Fatalf("err = %v, want PartialBatchError{Applied: 3} wrapping errStub", err)
	}
}

// TestProcessEventBatchPartialAppend drives the real partial path: a group
// WAL append that fails at a mid-batch segment rotation. The durably logged
// prefix must be applied to the matrix (matching what crash recovery would
// replay) and reported, so that respilling only the suffix reconstructs the
// exact stream with no event logged or applied twice.
func TestProcessEventBatchPartialAppend(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "arch")
	arch, err := archive.Open(dir, archive.Options{SegmentEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { arch.Close() })
	n := newTestNode(t, Config{Partitions: 2, Archive: arch})

	mk := func(i int) event.Event {
		return event.Event{Caller: uint64(i) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
	}
	// Two per-event appends leave room for 2 more events in the active
	// segment, so a 6-event batch must rotate after its first chunk.
	for i := 0; i < 2; i++ {
		if err := n.ProcessEventAsync(mk(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Hide the archive directory: the open segment file keeps accepting the
	// first chunk, but the rotation cannot create its successor.
	moved := dir + ".off"
	if err := os.Rename(dir, moved); err != nil {
		t.Fatal(err)
	}
	batch := make([]event.Event, 6)
	for i := range batch {
		batch[i] = mk(2 + i)
	}
	delivered, err := ProcessBatch(n, batch)
	if err == nil {
		t.Fatal("batch spanning a broken rotation reported success")
	}
	var pe *PartialBatchError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PartialBatchError", err)
	}
	if delivered != 2 || pe.Applied != 2 {
		t.Fatalf("delivered = %d, Applied = %d, want 2 (the segment's remaining room)", delivered, pe.Applied)
	}
	if err := os.Rename(moved, dir); err != nil {
		t.Fatal(err)
	}

	// The logged prefix was applied; the suffix was not.
	if err := n.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats().EventsProcessed; got != 4 {
		t.Fatalf("processed %d events after partial batch, want 4", got)
	}

	// Respill exactly the reported suffix, like the cluster layer would.
	if err := n.ProcessEventBatch(batch[delivered:]); err != nil {
		t.Fatalf("suffix redelivery: %v", err)
	}
	if err := n.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats().EventsProcessed; got != 8 {
		t.Fatalf("processed %d events after redelivery, want 8", got)
	}

	// The WAL holds the exact stream once: dense LSNs, no duplicates.
	next := uint64(0)
	if err := arch.Replay(0, func(lsn uint64, ev event.Event) error {
		if lsn != next || ev != mk(int(lsn)) {
			t.Fatalf("replay lsn %d (want %d): got %+v", lsn, next, ev)
		}
		next++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if next != 8 {
		t.Fatalf("archive replayed %d events, want 8", next)
	}
}
