package core

import "repro/internal/columnmap"

// TierConfig configures the compressed cold tier of each partition's
// ColumnMap main. Full buckets no record of which has been written for
// ColdAfterEpochs merge epochs freeze into immutable per-column compressed
// chunks; the shared scan evaluates predicates and aggregates over the
// chunks in place, and a delta write to a frozen record thaws its bucket
// back hot before the merge applies it. Freezing rides the merge step, so
// it runs on the partition's single writer thread and never stalls ingest.
type TierConfig struct {
	// Enabled turns the cold tier on. Off (the zero value), every bucket
	// stays a flat hot slab.
	Enabled bool
	// ColdAfterEpochs is how many merge epochs a full bucket must go
	// unwritten before it freezes. 0 (aggressive) freezes any full bucket
	// untouched by the current epoch's merge; <0 selects the default.
	ColdAfterEpochs int
	// MaxFreezePerStep caps how many buckets one merge step may compress,
	// bounding the merge-side latency spike. 0 selects the default; <0
	// removes the cap.
	MaxFreezePerStep int
}

// DefaultColdAfterEpochs is the aging threshold used when
// TierConfig.ColdAfterEpochs is negative: with merge steps landing every
// few milliseconds under load, 64 epochs keeps actively-updated buckets
// from thrash-freezing while still demoting idle regions quickly.
const DefaultColdAfterEpochs = 64

// DefaultMaxFreezePerStep bounds per-merge-step compression work.
const DefaultMaxFreezePerStep = 4

func (c *TierConfig) setDefaults() {
	if c.ColdAfterEpochs < 0 {
		c.ColdAfterEpochs = DefaultColdAfterEpochs
	}
	if c.MaxFreezePerStep == 0 {
		c.MaxFreezePerStep = DefaultMaxFreezePerStep
	} else if c.MaxFreezePerStep < 0 {
		c.MaxFreezePerStep = 0 // columnmap convention: 0 = unlimited
	}
}

// EnableTiering switches the partition's main to tiered aging: merge steps
// advance the epoch clock and freeze aged buckets. Must be called before
// the partition serves traffic (it installs the schema's compression
// hints).
func (p *Partition) EnableTiering(cfg TierConfig) {
	cfg.setDefaults()
	p.tier = cfg
	p.main.SetColHints(p.sch.ColHints())
}

// TierStats sums the hot/cold tier statistics across the node's mains.
// Safe from any goroutine.
func (n *StorageNode) TierStats() columnmap.TierStats {
	var sum columnmap.TierStats
	for _, p := range n.parts {
		ts := p.main.Tier()
		sum.HotBuckets += ts.HotBuckets
		sum.ColdBuckets += ts.ColdBuckets
		sum.HotBytes += ts.HotBytes
		sum.ColdBytes += ts.ColdBytes
		sum.ColdRawBytes += ts.ColdRawBytes
		sum.ColdChunks += ts.ColdChunks
		sum.ColdRecords += ts.ColdRecords
		sum.Freezes += ts.Freezes
		sum.Thaws += ts.Thaws
		for e := range ts.EncChunks {
			sum.EncChunks[e] += ts.EncChunks[e]
		}
	}
	return sum
}
