package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/query"
)

// TestMixedWorkloadStress runs the full mixed workload — concurrent event
// producers, closed-loop query clients, Get/Put traffic — against one node
// and verifies exact end-state accounting. Run with -race to exercise every
// synchronization path at once.
func TestMixedWorkloadStress(t *testing.T) {
	n := newTestNode(t, Config{Partitions: 3, ESPThreads: 2, IdleMergePause: 200 * time.Microsecond})
	sch := n.Schema()
	calls := sch.MustAttrIndex("calls_today_count")

	const (
		producers   = 4
		perProducer = 2500
		entities    = 64
		queriers    = 3
	)
	var wg sync.WaitGroup
	stopQueries := make(chan struct{})
	errCh := make(chan error, producers+queriers+1)

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				ev := mkEvent(uint64((p*perProducer+i)%entities)+1, int64(p*perProducer+i))
				if err := n.ProcessEventAsync(ev); err != nil {
					errCh <- err
					return
				}
			}
		}(p)
	}
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(qid int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stopQueries:
					return
				default:
				}
				i++
				qq := &query.Query{ID: uint64(qid*1_000_000 + i),
					Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
				if _, err := n.SubmitQuery(qq); err != nil {
					errCh <- err
					return
				}
			}
		}(q)
	}
	// A Get/Put client running alongside.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			e := uint64(i%entities) + 1
			if _, _, _, err := n.Get(e); err != nil {
				errCh <- err
				return
			}
		}
	}()

	// Wait for producers, then stop queriers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	producersDone := make(chan struct{})
	go func() {
		// Producers finish when all events are queued; FlushEvents then
		// drains them.
		for n.Stats().EventsProcessed < producers*perProducer {
			select {
			case <-done:
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
		close(producersDone)
	}()
	select {
	case <-producersDone:
	case <-time.After(60 * time.Second):
		t.Fatal("producers timed out")
	}
	close(stopQueries)
	<-done
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if err := n.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	// Exact accounting: every event counted once.
	deadline := time.Now().Add(5 * time.Second)
	for {
		q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
		p, err := n.SubmitQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		rows := p.Finalize(q).Rows
		if len(rows) > 0 && rows[0].Values[0] == producers*perProducer {
			break
		}
		if time.Now().After(deadline) {
			got := float64(-1)
			if len(rows) > 0 {
				got = rows[0].Values[0]
			}
			t.Fatalf("final sum = %v, want %d", got, producers*perProducer)
		}
		time.Sleep(time.Millisecond)
	}
	st := n.Stats()
	if st.EventsProcessed != producers*perProducer {
		t.Fatalf("EventsProcessed = %d", st.EventsProcessed)
	}
	if st.Records != entities {
		t.Fatalf("Records = %d, want %d", st.Records, entities)
	}
}

// TestHotEntityCompaction exercises the paper's observation that hot-spot
// entities are automatically "compacted" in the delta: many updates to one
// entity between merges must merge as a single record.
func TestHotEntityCompaction(t *testing.T) {
	sch := testSchema(t)
	p := NewPartition(sch, 16, nil)
	for i := 0; i < 1000; i++ {
		ev := mkEvent(7, int64(i))
		p.ApplyEvent(&ev)
	}
	if p.DeltaLen() != 1 {
		t.Fatalf("delta holds %d entries for one hot entity", p.DeltaLen())
	}
	if merged := p.MergeStep(); merged != 1 {
		t.Fatalf("merged %d records, want 1 (compacted)", merged)
	}
	buf := make([]uint64, sch.Slots)
	if _, ok := p.Get(7, buf); !ok {
		t.Fatal("hot entity lost")
	}
	calls := sch.MustAttrIndex("calls_today_count")
	if int64(buf[calls]) != 1000 {
		t.Fatalf("calls = %d, want 1000", buf[calls])
	}
}
