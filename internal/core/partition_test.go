package core

import (
	"errors"
	"runtime"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/schema"
	"repro/internal/vec"

	"repro/internal/query"
)

const dayMs = 24 * 3600 * 1000

func testSchema(t testing.TB) *schema.Schema {
	t.Helper()
	sch, err := schema.NewBuilder().
		AddStatic(schema.StaticSpec{Name: "zip", Type: schema.TypeInt64}).
		AddGroup(schema.GroupSpec{Name: "calls_today", Metric: schema.MetricCount,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggCount}}).
		AddGroup(schema.GroupSpec{Name: "dur_today", Metric: schema.MetricDuration,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggSum}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func mkEvent(caller uint64, i int64) event.Event {
	return event.Event{
		Caller:    caller,
		Callee:    caller + 1,
		Timestamp: 100*dayMs + i,
		Duration:  10,
		Cost:      0.5,
	}
}

func TestPartitionGetPutMerge(t *testing.T) {
	sch := testSchema(t)
	p := NewPartition(sch, 4, nil)

	// Unknown entity: miss.
	buf := make(schema.Record, sch.Slots)
	if _, ok := p.Get(7, buf); ok {
		t.Fatal("Get on empty partition hit")
	}

	// Put goes to the delta; Get sees it before any merge.
	rec := sch.NewRecord(7)
	rec.SetInt(sch.MustAttrIndex("zip"), 8001)
	p.Put(rec)
	v, ok := p.Get(7, buf)
	if !ok || v == 0 {
		t.Fatalf("Get after Put: ok=%v version=%d", ok, v)
	}
	if buf.Int(sch.MustAttrIndex("zip")) != 8001 {
		t.Fatal("delta Get returned wrong record")
	}
	if p.Main().Len() != 0 {
		t.Fatal("Put leaked into main before merge")
	}

	// Merge moves it to main.
	if n := p.MergeStep(); n != 1 {
		t.Fatalf("MergeStep merged %d, want 1", n)
	}
	if p.Main().Len() != 1 {
		t.Fatalf("main has %d records", p.Main().Len())
	}
	v2, ok := p.Get(7, buf)
	if !ok || v2 != v {
		t.Fatalf("Get after merge: ok=%v version=%d want %d", ok, v2, v)
	}

	// A second merge with no new puts is a no-op.
	if n := p.MergeStep(); n != 0 {
		t.Fatalf("empty MergeStep merged %d", n)
	}
}

func TestPartitionGetPrefersNewerDelta(t *testing.T) {
	sch := testSchema(t)
	p := NewPartition(sch, 4, nil)
	zip := sch.MustAttrIndex("zip")

	rec := sch.NewRecord(1)
	rec.SetInt(zip, 100)
	p.Put(rec)
	p.MergeStep() // now in main (and stale copy in old delta)

	rec.SetInt(zip, 200)
	p.Put(rec) // newest version in current delta

	buf := make(schema.Record, sch.Slots)
	if _, ok := p.Get(1, buf); !ok || buf.Int(zip) != 200 {
		t.Fatalf("Get = %d, want 200 (current delta wins)", buf.Int(zip))
	}

	// After switching (without the merge finishing), the sealed old delta
	// must still win over main.
	sealed := p.SwitchDeltas()
	if sealed.Len() != 1 {
		t.Fatalf("sealed delta has %d entries", sealed.Len())
	}
	if _, ok := p.Get(1, buf); !ok || buf.Int(zip) != 200 {
		t.Fatalf("Get during merge = %d, want 200 (old delta wins over main)", buf.Int(zip))
	}
}

func TestConditionalPut(t *testing.T) {
	sch := testSchema(t)
	p := NewPartition(sch, 4, nil)
	rec := sch.NewRecord(5)
	p.Put(rec)
	buf := make(schema.Record, sch.Slots)
	v, _ := p.Get(5, buf)

	// Write with the right version succeeds and bumps the version.
	if err := p.ConditionalPut(buf.Clone(), v); err != nil {
		t.Fatalf("ConditionalPut: %v", err)
	}
	// Re-using the stale version now conflicts.
	err := p.ConditionalPut(buf.Clone(), v)
	if !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("stale ConditionalPut err = %v, want ErrVersionConflict", err)
	}
	// The version check also works after a merge.
	v2, _ := p.Get(5, buf)
	p.MergeStep()
	if err := p.ConditionalPut(buf.Clone(), v2); err != nil {
		t.Fatalf("ConditionalPut after merge: %v", err)
	}
	// Unknown entities accept any expected version (first write).
	fresh := sch.NewRecord(99)
	if err := p.ConditionalPut(fresh, 12345); err != nil {
		t.Fatalf("ConditionalPut on fresh entity: %v", err)
	}
}

func TestApplyEventCreatesAndUpdates(t *testing.T) {
	sch := testSchema(t)
	zip := sch.MustAttrIndex("zip")
	calls := sch.MustAttrIndex("calls_today_count")
	factory := func(id uint64) schema.Record {
		r := sch.NewRecord(id)
		r.SetInt(zip, int64(1000+id))
		return r
	}
	p := NewPartition(sch, 4, factory)

	ev := mkEvent(3, 0)
	rec := p.ApplyEvent(&ev)
	if rec.EntityID() != 3 || rec.Int(zip) != 1003 {
		t.Fatalf("factory statics not applied: %v %v", rec.EntityID(), rec.Int(zip))
	}
	if rec.Int(calls) != 1 {
		t.Fatalf("calls = %d after first event", rec.Int(calls))
	}
	ev2 := mkEvent(3, 1)
	rec = p.ApplyEvent(&ev2)
	if rec.Int(calls) != 2 {
		t.Fatalf("calls = %d after second event", rec.Int(calls))
	}
	// Updates survive merge and further events.
	p.MergeStep()
	ev3 := mkEvent(3, 2)
	rec = p.ApplyEvent(&ev3)
	if rec.Int(calls) != 3 {
		t.Fatalf("calls = %d after merge + third event", rec.Int(calls))
	}
}

// TestFlagProtocolUnderRace hammers the delta-switch protocol with a live
// ESP goroutine; run with -race to validate the synchronization.
func TestFlagProtocolUnderRace(t *testing.T) {
	sch := testSchema(t)
	p := NewPartition(sch, 64, nil)
	calls := sch.MustAttrIndex("calls_today_count")

	const events = 20000
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// ESP goroutine: apply events to 100 entities, checking flags between
	// requests like the real service loop.
	p.AttachESP(nil)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer p.DetachESP()
		for i := 0; i < events; i++ {
			p.CheckSwitch()
			ev := mkEvent(uint64(i%100)+1, int64(i))
			p.ApplyEvent(&ev)
		}
	}()

	// RTA goroutine: merge continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				p.MergeStep()
			}
		}
	}()

	wg.Add(1)
	go func() { // waits for ESP to finish, then stops the merger
		defer wg.Done()
		for p.espAttached.Load() {
			runtime.Gosched()
		}
		close(stop)
	}()
	wg.Wait()

	// Final merge publishes everything; totals must be exact.
	p.MergeStep()
	p.MergeStep() // second merge flushes the delta sealed by the first
	var total int64
	buf := make(schema.Record, sch.Slots)
	for e := uint64(1); e <= 100; e++ {
		if _, ok := p.Get(e, buf); ok {
			total += buf.Int(calls)
		}
	}
	if total != events {
		t.Fatalf("total calls = %d, want %d", total, events)
	}
	if p.Main().Len() != 100 {
		t.Fatalf("main has %d records, want 100", p.Main().Len())
	}
}

// TestScanSeesConsistentSnapshot verifies that a scan between merges
// reflects exactly the merged prefix of events.
func TestScanSeesConsistentSnapshot(t *testing.T) {
	sch := testSchema(t)
	p := NewPartition(sch, 8, nil)
	calls := sch.MustAttrIndex("calls_today_count")

	for i := 0; i < 50; i++ {
		ev := mkEvent(uint64(i%10)+1, int64(i))
		p.ApplyEvent(&ev)
	}
	p.MergeStep()
	for i := 50; i < 80; i++ { // unmerged suffix
		ev := mkEvent(uint64(i%10)+1, int64(i))
		p.ApplyEvent(&ev)
	}

	q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	if err := q.Validate(sch); err != nil {
		t.Fatal(err)
	}
	ex := query.NewExecutor(sch, nil)
	part := query.NewPartial(q)
	for _, b := range p.ScanSnapshot() {
		if err := ex.ProcessBucket(b, q, part); err != nil {
			t.Fatal(err)
		}
	}
	res := part.Finalize(q)
	if got := res.Rows[0].Values[0]; got != 50 {
		t.Fatalf("scan saw %v calls, want exactly the 50 merged", got)
	}
	// Predicate scan over the same snapshot.
	q2 := &query.Query{
		ID:      2,
		Where:   []query.Conjunct{{query.PredInt(calls, vec.Ge, 5)}},
		Aggs:    []query.AggExpr{{Op: query.OpCount}},
		GroupBy: -1,
	}
	if err := q2.Validate(sch); err != nil {
		t.Fatal(err)
	}
	part2 := query.NewPartial(q2)
	for _, b := range p.ScanSnapshot() {
		if err := ex.ProcessBucket(b, q2, part2); err != nil {
			t.Fatal(err)
		}
	}
	if got := part2.Finalize(q2).Rows[0].Values[0]; got != 10 {
		t.Fatalf("entities with >=5 calls = %v, want 10", got)
	}
}
