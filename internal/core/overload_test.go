package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
)

// stallWorker parks worker 0's ESP loop inside a kindExec request until the
// returned release func is called. While parked the worker drains nothing,
// so the test controls the queue depth exactly.
func stallWorker(t *testing.T, n *StorageNode) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	entered := make(chan struct{})
	n.workers[0].ch <- espRequest{kind: kindExec, resp: make(chan espResponse, 1), fn: func() error {
		close(entered)
		<-gate
		return nil
	}}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the stall request")
	}
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }
}

// TestAsyncBlockedProducerAcrossStop pins the legacy (overload-disabled)
// contract under -race: producers blocked on a full ESP queue when Stop is
// called are unblocked by the worker's drain-on-stop, every blocked event is
// applied, and nothing deadlocks or races.
func TestAsyncBlockedProducerAcrossStop(t *testing.T) {
	n := newTestNode(t, Config{Partitions: 1, ESPThreads: 1, ESPQueueLen: 2})
	release := stallWorker(t, n)
	defer release()

	// Fill the queue to capacity without blocking.
	for i := 0; i < 2; i++ {
		if err := n.ProcessEventAsync(mkEvent(uint64(i)+1, int64(i))); err != nil {
			t.Fatalf("fill event %d: %v", i, err)
		}
	}

	// These producers block in the channel send: the queue is full and the
	// worker is parked.
	const blocked = 4
	var wg sync.WaitGroup
	errs := make([]error, blocked)
	for i := 0; i < blocked; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = n.ProcessEventAsync(mkEvent(uint64(i)+10, int64(i)))
		}(i)
	}
	// Let every producer reach the send and park on the full channel.
	time.Sleep(100 * time.Millisecond)

	stopDone := make(chan struct{})
	go func() {
		n.Stop()
		close(stopDone)
	}()
	// Stop must be waiting on the parked worker, not completing early and
	// stranding the blocked producers.
	select {
	case <-stopDone:
		t.Fatal("Stop returned while the worker was still parked")
	case <-time.After(20 * time.Millisecond):
	}

	release()
	select {
	case <-stopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not complete after the worker was released")
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("blocked producer %d: %v", i, err)
		}
	}
	if got := n.Stats().EventsProcessed; got != 2+blocked {
		t.Fatalf("EventsProcessed = %d, want %d (drain-on-stop must apply every accepted event)", got, 2+blocked)
	}
}

// TestAdmissionRejectsTypedAtQueueSoftLimit proves the overload-enabled
// ingest path rejects with a typed retry-after error instead of blocking
// once the ESP queue passes the soft limit, and that every accepted event
// is still applied (no silent loss at the admission boundary).
func TestAdmissionRejectsTypedAtQueueSoftLimit(t *testing.T) {
	n := newTestNode(t, Config{
		Partitions: 1, ESPThreads: 1, ESPQueueLen: 8,
		Overload: OverloadConfig{Enabled: true, RetryAfter: 3 * time.Millisecond},
	})
	release := stallWorker(t, n)
	defer release()

	// Soft limit defaults to 7/8 of the queue; with the worker parked the
	// depth only grows, so rejection must hit within ESPQueueLen attempts.
	accepted := 0
	var rejection error
	for i := 0; i < 16; i++ {
		err := n.ProcessEventAsync(mkEvent(uint64(i%3)+1, int64(i)))
		if err == nil {
			accepted++
			continue
		}
		rejection = err
		break
	}
	if rejection == nil {
		t.Fatal("no rejection despite a parked worker and a full queue")
	}
	if !errors.Is(rejection, ErrOverloaded) {
		t.Fatalf("rejection = %v, want errors.Is ErrOverloaded", rejection)
	}
	if d, ok := RetryAfterHint(rejection); !ok || d != 3*time.Millisecond {
		t.Fatalf("RetryAfterHint = (%v, %v), want (3ms, true)", d, ok)
	}
	if accepted == 0 {
		t.Fatal("admission rejected the very first event on an empty queue")
	}

	// A batch must be all-or-nothing at the same boundary: nothing applied,
	// nothing logged, caller keeps the events.
	if err := n.ProcessEventBatch([]event.Event{mkEvent(1, 100), mkEvent(2, 101)}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("batch past the soft limit = %v, want ErrOverloaded", err)
	}

	release()
	if err := n.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats().EventsProcessed; got != uint64(accepted) {
		t.Fatalf("EventsProcessed = %d, want %d: admitted and applied counts must match exactly", got, accepted)
	}
}
