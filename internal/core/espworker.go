package core

import (
	"slices"
	"time"

	"repro/internal/event"
	"repro/internal/rules"
	"repro/internal/schema"
)

// Request kinds handled by the ESP service loop.
const (
	kindKick uint8 = iota // wake-up for a flag check, no work
	kindEvent
	kindBatch // evs: a batch of events for this worker's partitions
	kindGet
	kindPut
	kindCondPut
	kindSync
	kindExec // run fn on the ESP thread (checkpointing)
)

type espRequest struct {
	kind    uint8
	ev      event.Event
	evs     []event.Event // kindBatch payload; owned by the worker
	entity  uint64
	rec     schema.Record
	version uint64
	fn      func() error
	resp    chan espResponse // nil for fire-and-forget
}

type espResponse struct {
	rec     schema.Record
	version uint64
	found   bool
	err     error
	firings int
}

// espWorker is one ESP thread of a storage node (§4.8): the single writer
// for its assigned partitions. It processes events (UPDATE_MATRIX + rule
// evaluation), Get/Put requests, and acknowledges delta switches between
// requests via Partition.CheckSwitch.
type espWorker struct {
	node   *StorageNode
	ch     chan espRequest
	parts  []*Partition
	engine *rules.Engine // per-worker replica of the rule set; may be nil
	// ruleGroups is the set of attribute groups the rule set reads,
	// computed once at engine construction; it scopes lazy materialization
	// on the batched apply path.
	ruleGroups *schema.GroupSet
	stop   chan struct{}
	done   chan struct{}
	// nEvents is the worker-local event count used to sample per-event
	// latency observation 1-in-16 — frequent enough for stable histograms,
	// cheap enough to leave ingest throughput unchanged.
	nEvents uint64
}

// latencySampleEvery is the event-latency sampling interval (a power of two
// so the modulo folds to a mask).
const latencySampleEvery = 16

func newESPWorker(node *StorageNode, queue int) *espWorker {
	return &espWorker{
		node: node,
		ch:   make(chan espRequest, queue),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// attach assigns a partition to this worker and wires the wake-up kick.
func (w *espWorker) attach(p *Partition) {
	w.parts = append(w.parts, p)
	p.AttachESP(func() {
		// Best-effort wake-up: if the queue is full the loop is busy and
		// checks flags between requests anyway.
		select {
		case w.ch <- espRequest{kind: kindKick}:
		default:
		}
	})
}

// run is the ESP service loop (the paper's Algorithm 7 generalized to k
// partitions per thread).
func (w *espWorker) run() {
	defer close(w.done)
	for {
		select {
		case req := <-w.ch:
			w.checkSwitches()
			w.handle(req)
		case <-w.stop:
			// Drain outstanding requests, then detach so pending delta
			// switches don't wait for a dead thread.
			for {
				select {
				case req := <-w.ch:
					w.checkSwitches()
					w.handle(req)
				default:
					for _, p := range w.parts {
						p.DetachESP()
					}
					return
				}
			}
		}
	}
}

func (w *espWorker) checkSwitches() {
	for _, p := range w.parts {
		p.CheckSwitch()
	}
}

// handleBatch applies a batch of events. The batch is stable-sorted by
// caller — same-caller order is preserved, and cross-caller order within
// a batch is free to change because an event only ever touches its own
// caller's record — then applied one consecutive same-caller run at a
// time, so a run pays the partition Get/Put once. Delta-switch flags are
// rechecked between runs to keep the RTA thread's park latency bounded by
// one run rather than one batch.
func (w *espWorker) handleBatch(evs []event.Event) {
	if len(evs) == 0 {
		return
	}
	slices.SortStableFunc(evs, func(a, b event.Event) int {
		switch {
		case a.Caller < b.Caller:
			return -1
		case a.Caller > b.Caller:
			return 1
		}
		return 0
	})
	for i := 0; i < len(evs); {
		j := i + 1
		for j < len(evs) && evs[j].Caller == evs[i].Caller {
			j++
		}
		w.applyRun(evs[i:j])
		i = j
		w.checkSwitches()
	}
}

// applyRun applies one same-caller run through Partition.ApplyEventBatch,
// evaluating rules per event against the intermediate record so firing
// semantics match the per-event path exactly.
func (w *espWorker) applyRun(run []event.Event) {
	p := w.node.partitionFor(run[0].Caller)
	sample := w.nEvents%latencySampleEvery == 0
	w.nEvents += uint64(len(run))
	var t0 time.Time
	if sample {
		t0 = time.Now()
	}
	nf := 0
	var onApply func(ev *event.Event, rec schema.Record)
	if w.engine != nil {
		onApply = func(ev *event.Event, rec schema.Record) {
			firings := w.engine.Evaluate(ev, rec)
			nf += len(firings)
			if w.node.cfg.OnFiring != nil {
				for _, f := range firings {
					w.node.cfg.OnFiring(f)
				}
			}
		}
	}
	p.ApplyEventBatch(run, w.ruleGroups, onApply)
	if sample {
		// Amortized per-event cost: the run shares one Get and one Put.
		w.node.met.eventApply.ObserveDuration(time.Since(t0) / time.Duration(len(run)))
	}
	if w.engine != nil {
		w.node.met.firings.Add(uint64(nf))
	}
	w.node.met.events.Add(uint64(len(run)))
	if len(run) > 1 {
		w.node.met.coalescedPuts.Add(uint64(len(run) - 1))
	}
}

func (w *espWorker) handle(req espRequest) {
	switch req.kind {
	case kindKick:
		// flag check already happened
	case kindEvent:
		p := w.node.partitionFor(req.ev.Caller)
		sample := w.nEvents%latencySampleEvery == 0
		w.nEvents++
		var t0 time.Time
		if sample {
			t0 = time.Now()
		}
		rec := p.ApplyEvent(&req.ev)
		if sample {
			w.node.met.eventApply.ObserveSince(t0)
		}
		nf := 0
		if w.engine != nil {
			var r0 time.Time
			if sample {
				r0 = time.Now()
			}
			firings := w.engine.Evaluate(&req.ev, rec)
			if sample {
				w.node.met.ruleEval.ObserveSince(r0)
			}
			nf = len(firings)
			if w.node.cfg.OnFiring != nil {
				for _, f := range firings {
					w.node.cfg.OnFiring(f)
				}
			}
			w.node.met.firings.Add(uint64(nf))
		}
		w.node.met.events.Inc()
		if req.resp != nil {
			req.resp <- espResponse{firings: nf, found: true}
		}
	case kindBatch:
		w.handleBatch(req.evs)
		if req.resp != nil {
			req.resp <- espResponse{found: true}
		}
	case kindGet:
		p := w.node.partitionFor(req.entity)
		rec := make(schema.Record, w.node.cfg.Schema.Slots)
		v, ok := p.Get(req.entity, rec)
		if !ok {
			rec = nil
		}
		req.resp <- espResponse{rec: rec, version: v, found: ok}
	case kindPut:
		p := w.node.partitionFor(req.rec.EntityID())
		p.Put(req.rec)
		if req.resp != nil {
			req.resp <- espResponse{found: true}
		}
	case kindCondPut:
		p := w.node.partitionFor(req.rec.EntityID())
		err := p.ConditionalPut(req.rec, req.version)
		req.resp <- espResponse{err: err, found: err == nil}
	case kindSync:
		req.resp <- espResponse{found: true}
	case kindExec:
		err := req.fn()
		req.resp <- espResponse{err: err, found: err == nil}
	}
}
