package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/vec"
)

func newTestNode(t testing.TB, cfg Config) *StorageNode {
	t.Helper()
	if cfg.Schema == nil {
		cfg.Schema = testSchema(t)
	}
	if cfg.BucketSize == 0 {
		cfg.BucketSize = 64
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n
}

// waitForCount polls the node until the global record count reaches want.
func waitForSum(t *testing.T, n *StorageNode, q *query.Query, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var last float64
	for time.Now().Before(deadline) {
		p, err := n.SubmitQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		res := p.Finalize(q)
		if len(res.Rows) > 0 {
			last = res.Rows[0].Values[0]
			if last == want {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %v, last saw %v", want, last)
}

func TestNodeEventToQueryPipeline(t *testing.T) {
	n := newTestNode(t, Config{Partitions: 3, ESPThreads: 2})
	sch := n.Schema()
	calls := sch.MustAttrIndex("calls_today_count")

	const events = 500
	for i := 0; i < events; i++ {
		if err := n.ProcessEventAsync(mkEvent(uint64(i%37)+1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	waitForSum(t, n, q, events)

	st := n.Stats()
	if st.EventsProcessed != events {
		t.Fatalf("EventsProcessed = %d", st.EventsProcessed)
	}
	if st.Records != 37 {
		t.Fatalf("Records = %d, want 37", st.Records)
	}
	if st.ScanRounds == 0 || st.MergedRecords == 0 || st.QueriesServed == 0 {
		t.Fatalf("stats not advancing: %+v", st)
	}
}

func TestNodeGetPutConditional(t *testing.T) {
	n := newTestNode(t, Config{Partitions: 2})
	sch := n.Schema()
	zip := sch.MustAttrIndex("zip")

	rec := sch.NewRecord(42)
	rec.SetInt(zip, 8000)
	if err := n.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, v, ok, err := n.Get(42)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if got.Int(zip) != 8000 {
		t.Fatalf("zip = %d", got.Int(zip))
	}
	got.SetInt(zip, 8001)
	if err := n.ConditionalPut(got, v); err != nil {
		t.Fatalf("ConditionalPut: %v", err)
	}
	if err := n.ConditionalPut(got, v); err == nil {
		t.Fatal("stale ConditionalPut succeeded")
	}
	if _, _, ok, _ := n.Get(4242); ok {
		t.Fatal("Get of unknown entity hit")
	}
}

func TestNodeProcessEventFiresRules(t *testing.T) {
	sch := testSchema(t)
	calls := sch.MustAttrIndex("calls_today_count")
	var mu sync.Mutex
	var fired []rules.Firing
	n := newTestNode(t, Config{
		Schema:     sch,
		Partitions: 2,
		Rules: []rules.Rule{{
			ID: 1, Action: "alert",
			Conjuncts: []rules.Conjunct{{{Kind: rules.LHSAttr, Attr: calls, Op: rules.Ge, Value: 3}}},
		}},
		OnFiring: func(f rules.Firing) {
			mu.Lock()
			fired = append(fired, f)
			mu.Unlock()
		},
	})
	var total int
	for i := 0; i < 5; i++ {
		nf, err := n.ProcessEvent(mkEvent(9, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		total += nf
	}
	// Events 3,4,5 (calls >= 3) fire.
	if total != 3 {
		t.Fatalf("firings = %d, want 3", total)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 3 || fired[0].EntityID != 9 || fired[0].Action != "alert" {
		t.Fatalf("sink saw %+v", fired)
	}
	if n.Stats().RuleFirings != 3 {
		t.Fatalf("RuleFirings = %d", n.Stats().RuleFirings)
	}
}

func TestNodeQueryBatchSharing(t *testing.T) {
	n := newTestNode(t, Config{Partitions: 2, MaxBatch: 8, IdleMergePause: 5 * time.Millisecond})
	sch := n.Schema()
	calls := sch.MustAttrIndex("calls_today_count")
	for i := 0; i < 100; i++ {
		if err := n.ProcessEventAsync(mkEvent(uint64(i%10)+1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	waitForSum(t, n, q, 100)

	// Submit a burst of queries concurrently; they should be answered in
	// far fewer scan rounds than queries (shared scans).
	before := n.Stats().ScanRounds
	const burst = 32
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			qq := &query.Query{ID: id, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
			p, err := n.SubmitQuery(qq)
			if err != nil {
				t.Error(err)
				return
			}
			if got := p.Finalize(qq).Rows[0].Values[0]; got != 100 {
				t.Errorf("query %d saw %v", id, got)
			}
		}(uint64(i))
	}
	wg.Wait()
	rounds := n.Stats().ScanRounds - before
	if rounds >= burst {
		t.Fatalf("no scan sharing: %d rounds for %d queries", rounds, burst)
	}
}

// TestNodeBatchedRoundsMixedQueries drives several sequential rounds of
// concurrent mixed-shape batches (global, filtered, grouped, and exact
// duplicates) through the scan loop. Each round reuses the loop's pooled
// partials, so a stale accumulator or group-cache entry from a previous
// round would surface as a wrong result here.
func TestNodeBatchedRoundsMixedQueries(t *testing.T) {
	n := newTestNode(t, Config{Partitions: 2, MaxBatch: 8, IdleMergePause: 5 * time.Millisecond})
	sch := n.Schema()
	calls := sch.MustAttrIndex("calls_today_count")
	zip := sch.MustAttrIndex("zip")
	// 10 entities x 10 events each.
	for i := 0; i < 100; i++ {
		if err := n.ProcessEventAsync(mkEvent(uint64(i%10)+1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	warm := &query.Query{ID: 999, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	waitForSum(t, n, warm, 100)

	for round := 0; round < 3; round++ {
		base := uint64(round * 10)
		mk := func(id uint64) *query.Query {
			return &query.Query{ID: base + id, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
		}
		sum, sumDup := mk(1), mk(2) // exact duplicates -> folded, not rescanned
		filtered := &query.Query{
			ID:      base + 3,
			Where:   []query.Conjunct{{query.PredInt(calls, vec.Ge, 5)}},
			Aggs:    []query.AggExpr{{Op: query.OpCount}},
			GroupBy: -1,
		}
		grouped := &query.Query{
			ID:      base + 4,
			Aggs:    []query.AggExpr{{Op: query.OpCount}, {Op: query.OpSum, Attr: calls}},
			GroupBy: zip,
		}
		var wg sync.WaitGroup
		check := func(q *query.Query, verify func(*query.Result) error) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p, err := n.SubmitQuery(q)
				if err != nil {
					t.Errorf("round %d query %d: %v", round, q.ID, err)
					return
				}
				if err := verify(p.Finalize(q)); err != nil {
					t.Errorf("round %d query %d: %v", round, q.ID, err)
				}
			}()
		}
		wantScalar := func(want float64) func(*query.Result) error {
			return func(r *query.Result) error {
				if len(r.Rows) != 1 || r.Rows[0].Values[0] != want {
					return fmt.Errorf("got %+v, want [%v]", r.Rows, want)
				}
				return nil
			}
		}
		check(sum, wantScalar(100))
		check(sumDup, wantScalar(100))
		check(filtered, wantScalar(10)) // all 10 entities have calls >= 5
		check(grouped, func(r *query.Result) error {
			// zip is never set: one group (zip=0), count 10, sum 100.
			if len(r.Rows) != 1 || r.Rows[0].Values[0] != 10 || r.Rows[0].Values[1] != 100 {
				return fmt.Errorf("got %+v, want one group [10 100]", r.Rows)
			}
			return nil
		})
		wg.Wait()
	}
}

func TestNodeQueryValidationAndErrors(t *testing.T) {
	n := newTestNode(t, Config{Partitions: 1})
	if _, err := n.SubmitQuery(&query.Query{ID: 1, GroupBy: -1}); err == nil {
		t.Fatal("invalid query accepted")
	}
	// A dimension join against a missing table errors out at scan time.
	q := &query.Query{
		ID:       2,
		Aggs:     []query.AggExpr{{Op: query.OpCount}},
		GroupBy:  n.Schema().MustAttrIndex("zip"),
		GroupDim: &query.DimJoin{Table: "Nope", Column: "x"},
	}
	// Need at least one record so the scan actually evaluates the join.
	rec := n.Schema().NewRecord(1)
	if err := n.Put(rec); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let a merge round publish it
	if _, err := n.SubmitQuery(q); err == nil {
		t.Fatal("scan-time error not propagated")
	}
}

func TestNodeStop(t *testing.T) {
	n := newTestNode(t, Config{Partitions: 2})
	if err := n.ProcessEventAsync(mkEvent(1, 0)); err != nil {
		t.Fatal(err)
	}
	n.Stop()
	n.Stop() // idempotent
	if err := n.ProcessEventAsync(mkEvent(1, 1)); err != ErrStopped {
		t.Fatalf("ProcessEventAsync after Stop: %v", err)
	}
	if _, err := n.SubmitQuery(&query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpCount}}, GroupBy: -1}); err == nil {
		t.Fatal("SubmitQuery after Stop succeeded")
	}
	if err := n.FlushEvents(); err != ErrStopped {
		t.Fatalf("FlushEvents after Stop: %v", err)
	}
	if _, _, _, err := n.Get(1); err != ErrStopped {
		t.Fatalf("Get after Stop: %v", err)
	}
}

func TestNodeConfigValidation(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Fatal("NewNode without schema succeeded")
	}
	// Defaults follow the paper's allocation rule: n = cores - s - 2,
	// floored at 1.
	n := newTestNode(t, Config{})
	want := runtime.NumCPU() - 1 - 2
	if want < 1 {
		want = 1
	}
	if n.NumPartitions() != want {
		t.Fatalf("default partitions = %d, want %d", n.NumPartitions(), want)
	}
}

// TestNodeFreshness checks the t_fresh KPI mechanism: an event becomes
// visible to queries within a bounded number of merge rounds.
func TestNodeFreshness(t *testing.T) {
	n := newTestNode(t, Config{Partitions: 2, IdleMergePause: 200 * time.Microsecond})
	sch := n.Schema()
	calls := sch.MustAttrIndex("calls_today_count")
	start := time.Now()
	if _, err := n.ProcessEvent(mkEvent(1, 0)); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{
		ID:      1,
		Where:   []query.Conjunct{{query.PredInt(calls, vec.Ge, 1)}},
		Aggs:    []query.AggExpr{{Op: query.OpCount}},
		GroupBy: -1,
	}
	waitForSum(t, n, q, 1)
	if fresh := time.Since(start); fresh > time.Second {
		t.Fatalf("freshness %v exceeds the 1s KPI", fresh)
	}
}
