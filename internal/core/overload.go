package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/event"
)

// ErrOverloaded is the sentinel every admission-control rejection matches
// via errors.Is. The concrete error is *OverloadedError, which carries the
// retry hint and the layer that rejected.
var ErrOverloaded = errors.New("core: overloaded")

// ErrDeadline is returned for a query whose Deadline passed before a scan
// round picked it up. Deadline misses are the analytics side of graceful
// degradation: under overload, queries shed (typed, retriable by the
// client's policy) while ingest keeps its SLA.
var ErrDeadline = errors.New("core: query deadline exceeded")

// OverloadedError is a typed, wire-codable ingest/scan rejection. It is
// returned instead of blocking when an admission check fails, so one hot
// partition cannot stall a whole connection. RetryAfter is the server's
// backoff hint; Reason names the layer that rejected ("esp-queue",
// "delta-hard", "scan-admission", "spill-queue").
type OverloadedError struct {
	RetryAfter time.Duration
	Reason     string
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("core: overloaded (%s), retry after %v", e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match any overload rejection.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// RetryAfterHint extracts the server's backoff hint from an overload
// rejection, however deeply wrapped. ok is false when err is not an
// overload rejection.
func RetryAfterHint(err error) (d time.Duration, ok bool) {
	var oe *OverloadedError
	if errors.As(err, &oe) {
		return oe.RetryAfter, true
	}
	return 0, false
}

// OverloadConfig bounds the storage node under offered load beyond
// capacity. Disabled (the zero value) preserves the legacy behavior:
// ingest blocks on full ESP queues and the delta grows without limit.
//
// With Enabled, the node degrades in the paper's priority order — the
// event stream is the SLA, analytics sheds first:
//
//  1. Queries are admission-checked against a pending bound and evicted
//     from scan rounds once past their Deadline (typed ErrDeadline).
//  2. Past the delta soft watermark, scan rounds shrink and merge cadence
//     tightens so merges catch up at the expense of scan throughput.
//  3. Only past the hard limits (ESP queue soft limit, delta hard
//     watermark) does ingest itself reject, with a typed retry-after
//     hint instead of head-of-line blocking.
type OverloadConfig struct {
	// Enabled turns admission control on. Off by default.
	Enabled bool
	// ESPQueueSoftLimit rejects fire-and-forget ingest when the target
	// worker's queue holds at least this many requests. Default: 7/8 of
	// ESPQueueLen, leaving headroom so admitted events still never block.
	ESPQueueSoftLimit int
	// DeltaSoftRecords is the per-partition delta size past which the scan
	// coordinator prioritizes merging (shorter rounds, smaller batches).
	// Default: 32768 records.
	DeltaSoftRecords int
	// DeltaHardRecords is the per-partition delta size past which ingest
	// rejects with retry-after, bounding delta memory. Default: 2x soft.
	DeltaHardRecords int
	// RetryAfter is the backoff hint attached to rejections. Default: 2ms.
	RetryAfter time.Duration
	// MaxPendingQueries bounds queries queued for future scan rounds;
	// submissions past it are rejected instead of queued. Default: the
	// submit queue capacity (4x MaxBatch).
	MaxPendingQueries int
}

func (c *OverloadConfig) setDefaults(queueLen, submitCap int) {
	if c.ESPQueueSoftLimit <= 0 || c.ESPQueueSoftLimit > queueLen {
		c.ESPQueueSoftLimit = queueLen - queueLen/8
		if c.ESPQueueSoftLimit < 1 {
			c.ESPQueueSoftLimit = 1
		}
	}
	if c.DeltaSoftRecords <= 0 {
		c.DeltaSoftRecords = 32768
	}
	if c.DeltaHardRecords <= 0 {
		c.DeltaHardRecords = 2 * c.DeltaSoftRecords
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Millisecond
	}
	if c.MaxPendingQueries <= 0 || c.MaxPendingQueries > submitCap {
		c.MaxPendingQueries = submitCap
	}
}

// Watermark states exposed by aim_core_delta_watermark_state.
const (
	watermarkOK   = 0
	watermarkSoft = 1
	watermarkHard = 2
)

// watermarkState reports the node's worst per-partition delta state:
// 0 below soft, 1 past soft, 2 past hard. Safe from any goroutine.
func (n *StorageNode) watermarkState() int {
	ol := &n.cfg.Overload
	if !ol.Enabled {
		return watermarkOK
	}
	state := watermarkOK
	for _, p := range n.parts {
		pending := int(p.PendingDelta())
		switch {
		case pending >= ol.DeltaHardRecords:
			return watermarkHard
		case pending >= ol.DeltaSoftRecords:
			state = watermarkSoft
		}
	}
	return state
}

// WatermarkState reports the node's delta watermark state (0 ok, 1 soft,
// 2 hard) — the value exported by aim_core_delta_watermark_state, for
// callers that poll the node directly.
func (n *StorageNode) WatermarkState() int { return n.watermarkState() }

// MaxPendingDelta reports the largest per-partition pending-delta size, the
// quantity the watermarks gate on (observability and test hook).
func (n *StorageNode) MaxPendingDelta() int64 {
	var mx int64
	for _, p := range n.parts {
		if v := p.PendingDelta(); v > mx {
			mx = v
		}
	}
	return mx
}

// admitEvent is the fire-and-forget ingest admission check: reject (typed,
// with retry-after) when the target worker's queue is past the soft limit
// or the target partition's delta is past the hard watermark. Returns nil
// when overload protection is disabled.
func (n *StorageNode) admitEvent(entityID uint64) error {
	ol := &n.cfg.Overload
	if !ol.Enabled {
		return nil
	}
	if len(n.workers[n.workerIndexFor(entityID)].ch) >= ol.ESPQueueSoftLimit {
		return n.rejectIngest("esp-queue")
	}
	if n.partitionFor(entityID).PendingDelta() >= int64(ol.DeltaHardRecords) {
		return n.rejectIngest("delta-hard")
	}
	return nil
}

// admitBatch admits or rejects a whole batch before anything is logged or
// enqueued: all-or-nothing, so a rejected batch leaves no partial WAL
// prefix for the caller to reason about.
func (n *StorageNode) admitBatch(evs []event.Event) error {
	if !n.cfg.Overload.Enabled {
		return nil
	}
	for i := range evs {
		if err := n.admitEvent(evs[i].Caller); err != nil {
			return err
		}
	}
	return nil
}

func (n *StorageNode) rejectIngest(reason string) error {
	switch reason {
	case "esp-queue":
		n.met.rejectQueue.Inc()
	case "delta-hard":
		n.met.rejectDelta.Inc()
	}
	return &OverloadedError{RetryAfter: n.cfg.Overload.RetryAfter, Reason: reason}
}
