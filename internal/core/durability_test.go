package core

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/checkpoint"
	"repro/internal/schema"
)

// durableNode starts a node with an archive in dir.
func durableNode(t *testing.T, dir string) (*StorageNode, *archive.Archive, *schema.Schema) {
	t.Helper()
	sch := testSchema(t)
	arch, err := archive.Open(filepath.Join(dir, "wal"), archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { arch.Close() })
	n, err := NewNode(Config{
		Schema: sch, Partitions: 2, BucketSize: 32,
		Archive: arch, IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n, arch, sch
}

func totalCalls(t *testing.T, n *StorageNode, sch *schema.Schema, entities int) int64 {
	t.Helper()
	calls := sch.MustAttrIndex("calls_today_count")
	buf := int64(0)
	for e := 1; e <= entities; e++ {
		rec, _, ok, err := n.Get(uint64(e))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			buf += rec.Int(calls)
		}
	}
	return buf
}

func TestCheckpointAndRestoreFull(t *testing.T) {
	dir := t.TempDir()
	n, arch, sch := durableNode(t, dir)
	for i := 0; i < 200; i++ {
		if err := n.ProcessEventAsync(mkEvent(uint64(i%20)+1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	mgr, err := checkpoint.NewManager(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Checkpoint(mgr, true); err != nil {
		t.Fatal(err)
	}
	// Events after the checkpoint live only in the archive.
	for i := 200; i < 300; i++ {
		if err := n.ProcessEventAsync(mkEvent(uint64(i%20)+1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	want := totalCalls(t, n, sch, 20)
	if want != 300 {
		t.Fatalf("pre-crash total = %d", want)
	}
	n.Stop() // "crash"

	restored, err := Restore(Config{
		Schema: sch, Partitions: 3, BucketSize: 16, // different layout on purpose
		Archive: arch, IdleMergePause: 200 * time.Microsecond,
	}, mgr)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Stop()
	if got := totalCalls(t, restored, sch, 20); got != want {
		t.Fatalf("restored total = %d, want %d", got, want)
	}
	// The restored node keeps working.
	if _, err := restored.ProcessEvent(mkEvent(3, 999)); err != nil {
		t.Fatal(err)
	}
	if got := totalCalls(t, restored, sch, 20); got != want+1 {
		t.Fatalf("post-restore event lost: %d", got)
	}
}

func TestIncrementalCheckpointOnlyDirty(t *testing.T) {
	dir := t.TempDir()
	n, _, _ := durableNode(t, dir)
	defer n.Stop()
	mgr, err := checkpoint.NewManager(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := n.ProcessEventAsync(mkEvent(uint64(i%10)+1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Checkpoint(mgr, true); err != nil {
		t.Fatal(err)
	}
	// Touch only entities 1 and 2; the increment must contain exactly 2.
	if err := n.ProcessEventAsync(mkEvent(1, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := n.ProcessEventAsync(mkEvent(2, 1001)); err != nil {
		t.Fatal(err)
	}
	if err := n.Checkpoint(mgr, false); err != nil {
		t.Fatal(err)
	}
	// An immediate second increment is empty (dirty set cleared).
	if err := n.Checkpoint(mgr, false); err != nil {
		t.Fatal(err)
	}
	recs, _, err := mgr.Load(n.Schema().Slots)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("loaded %d records", len(recs))
	}
	calls := n.Schema().MustAttrIndex("calls_today_count")
	if got := int64(recs[1][calls]); got != 11 {
		t.Fatalf("entity 1 calls in checkpoint = %d, want 11 (increment won)", got)
	}
	if got := int64(recs[3][calls]); got != 10 {
		t.Fatalf("entity 3 calls = %d, want 10 (from base)", got)
	}
}

func TestIncrementalRequiresArchive(t *testing.T) {
	n := newTestNode(t, Config{Partitions: 1})
	mgr, err := checkpoint.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Checkpoint(mgr, false); err == nil {
		t.Fatal("incremental checkpoint without archive accepted")
	}
	// Full checkpoints work without an archive (watermark 0, no replay).
	if err := n.Checkpoint(mgr, true); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreEmptyDirIsEmptyNode(t *testing.T) {
	sch := testSchema(t)
	mgr, err := checkpoint.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	n, err := Restore(Config{Schema: sch, Partitions: 1, BucketSize: 16}, mgr)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if n.Stats().Records != 0 {
		t.Fatalf("records = %d", n.Stats().Records)
	}
	if _, err := Restore(Config{}, mgr); err == nil {
		t.Fatal("Restore without schema accepted")
	}
}

// TestSnapshotDuringLoad runs checkpoints concurrently with event traffic
// on other entities plus continuous merge activity; with -race this guards
// the ESP-thread snapshot against the RTA merge path.
func TestSnapshotDuringLoad(t *testing.T) {
	dir := t.TempDir()
	n, _, sch := durableNode(t, dir)
	defer n.Stop()
	mgr, err := checkpoint.NewManager(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		for i := 0; i < 200; i++ {
			if err := n.ProcessEventAsync(mkEvent(uint64(i%50)+1, int64(round*1000+i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.Checkpoint(mgr, round == 0); err != nil {
			t.Fatal(err)
		}
	}
	recs, _, err := mgr.Load(sch.Slots)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("checkpoint covers %d entities, want 50", len(recs))
	}
	calls := sch.MustAttrIndex("calls_today_count")
	var total int64
	for _, rec := range recs {
		total += int64(rec[calls])
	}
	if total != 1000 {
		t.Fatalf("checkpointed calls = %d, want 1000", total)
	}
}
