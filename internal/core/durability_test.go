package core

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/checkpoint"
	"repro/internal/schema"
)

// durableNode starts a node with an archive in dir.
func durableNode(t *testing.T, dir string) (*StorageNode, *archive.Archive, *schema.Schema) {
	t.Helper()
	sch := testSchema(t)
	arch, err := archive.Open(filepath.Join(dir, "wal"), archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { arch.Close() })
	n, err := NewNode(Config{
		Schema: sch, Partitions: 2, BucketSize: 32,
		Archive: arch, IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n, arch, sch
}

func totalCalls(t *testing.T, n *StorageNode, sch *schema.Schema, entities int) int64 {
	t.Helper()
	calls := sch.MustAttrIndex("calls_today_count")
	buf := int64(0)
	for e := 1; e <= entities; e++ {
		rec, _, ok, err := n.Get(uint64(e))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			buf += rec.Int(calls)
		}
	}
	return buf
}

func TestCheckpointAndRestoreFull(t *testing.T) {
	dir := t.TempDir()
	n, arch, sch := durableNode(t, dir)
	for i := 0; i < 200; i++ {
		if err := n.ProcessEventAsync(mkEvent(uint64(i%20)+1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	mgr, err := checkpoint.NewManager(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Checkpoint(mgr, true); err != nil {
		t.Fatal(err)
	}
	// Events after the checkpoint live only in the archive.
	for i := 200; i < 300; i++ {
		if err := n.ProcessEventAsync(mkEvent(uint64(i%20)+1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	want := totalCalls(t, n, sch, 20)
	if want != 300 {
		t.Fatalf("pre-crash total = %d", want)
	}
	n.Stop() // "crash"

	restored, err := Restore(Config{
		Schema: sch, Partitions: 3, BucketSize: 16, // different layout on purpose
		Archive: arch, IdleMergePause: 200 * time.Microsecond,
	}, mgr)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Stop()
	if got := totalCalls(t, restored, sch, 20); got != want {
		t.Fatalf("restored total = %d, want %d", got, want)
	}
	// The restored node keeps working.
	if _, err := restored.ProcessEvent(mkEvent(3, 999)); err != nil {
		t.Fatal(err)
	}
	if got := totalCalls(t, restored, sch, 20); got != want+1 {
		t.Fatalf("post-restore event lost: %d", got)
	}
}

func TestIncrementalCheckpointOnlyDirty(t *testing.T) {
	dir := t.TempDir()
	n, _, _ := durableNode(t, dir)
	defer n.Stop()
	mgr, err := checkpoint.NewManager(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := n.ProcessEventAsync(mkEvent(uint64(i%10)+1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Checkpoint(mgr, true); err != nil {
		t.Fatal(err)
	}
	// Touch only entities 1 and 2; the increment must contain exactly 2.
	if err := n.ProcessEventAsync(mkEvent(1, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := n.ProcessEventAsync(mkEvent(2, 1001)); err != nil {
		t.Fatal(err)
	}
	if err := n.Checkpoint(mgr, false); err != nil {
		t.Fatal(err)
	}
	// An immediate second increment is empty (dirty set cleared).
	if err := n.Checkpoint(mgr, false); err != nil {
		t.Fatal(err)
	}
	recs, _, err := mgr.Load(n.Schema().Slots)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("loaded %d records", len(recs))
	}
	calls := n.Schema().MustAttrIndex("calls_today_count")
	if got := int64(recs[1][calls]); got != 11 {
		t.Fatalf("entity 1 calls in checkpoint = %d, want 11 (increment won)", got)
	}
	if got := int64(recs[3][calls]); got != 10 {
		t.Fatalf("entity 3 calls = %d, want 10 (from base)", got)
	}
}

func TestIncrementalRequiresArchive(t *testing.T) {
	n := newTestNode(t, Config{Partitions: 1})
	mgr, err := checkpoint.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Checkpoint(mgr, false); err == nil {
		t.Fatal("incremental checkpoint without archive accepted")
	}
	// Full checkpoints work without an archive (watermark 0, no replay).
	if err := n.Checkpoint(mgr, true); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreEmptyDirIsEmptyNode(t *testing.T) {
	sch := testSchema(t)
	mgr, err := checkpoint.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	n, err := Restore(Config{Schema: sch, Partitions: 1, BucketSize: 16}, mgr)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if n.Stats().Records != 0 {
		t.Fatalf("records = %d", n.Stats().Records)
	}
	if _, err := Restore(Config{}, mgr); err == nil {
		t.Fatal("Restore without schema accepted")
	}
}

// TestFuzzyCheckpointUnderConcurrentIngest hammers the node with events
// from several producers WHILE checkpoints are being taken, then restores
// from checkpoint + tail and verifies not one event was lost or double
// counted. This is the §7 online-checkpoint guarantee: each checkpoint is
// consistent with an exact archive watermark even though ingest never
// pauses.
func TestFuzzyCheckpointUnderConcurrentIngest(t *testing.T) {
	dir := t.TempDir()
	n, arch, sch := durableNode(t, dir)
	mgr, err := checkpoint.NewManager(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	const producers = 4
	const perProducer = 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				ev := mkEvent(uint64((p*perProducer+i)%37)+1, int64(i))
				if err := n.ProcessEventAsync(ev); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	// Checkpoints race the producers: a base then increments.
	for c := 0; c < 6; c++ {
		if _, err := n.FuzzyCheckpoint(mgr, c == 0); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	// One more increment so the chain plus tail covers everything so far.
	st, err := n.FuzzyCheckpoint(mgr, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Watermark != producers*perProducer {
		t.Fatalf("final watermark = %d, want %d", st.Watermark, producers*perProducer)
	}
	if err := n.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	want := totalCalls(t, n, sch, 37)
	if want != producers*perProducer {
		t.Fatalf("pre-crash total = %d", want)
	}
	n.Stop()

	restored, rep, err := RestoreWithReport(Config{
		Schema: sch, Partitions: 2, BucketSize: 32,
		Archive: arch, IdleMergePause: 200 * time.Microsecond,
	}, mgr, checkpoint.Strict)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Stop()
	if got := totalCalls(t, restored, sch, 37); got != want {
		t.Fatalf("restored total = %d, want %d (report %+v)", got, want, rep)
	}
	if rep.TailEvents != 0 {
		t.Fatalf("tail after final watermark-complete checkpoint = %d events", rep.TailEvents)
	}
}

// TestCheckpointerRetentionGC runs the background checkpointer with GC on
// and verifies superseded checkpoint files and dead archive segments are
// reclaimed while the node stays recoverable.
func TestCheckpointerRetentionGC(t *testing.T) {
	dir := t.TempDir()
	sch := testSchema(t)
	arch, err := archive.Open(filepath.Join(dir, "wal"), archive.Options{SegmentEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	n, err := NewNode(Config{
		Schema: sch, Partitions: 2, BucketSize: 32,
		Archive: arch, IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := checkpoint.NewManager(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	ckpt := n.StartCheckpointer(mgr, CheckpointerOptions{
		Interval:  time.Hour, // driven manually via RunOnce
		BaseEvery: 2,
		GC:        true,
		OnError:   func(err error) { t.Error(err) },
	})
	for round := 0; round < 6; round++ {
		for i := 0; i < 100; i++ {
			if err := n.ProcessEventAsync(mkEvent(uint64(i%10)+1, int64(round*100+i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := ckpt.RunOnce(); err != nil {
			t.Fatal(err)
		}
	}
	ckpt.Stop()
	// GC must have reclaimed: at most the newest base + one increment
	// remain, and archive segments below the newest base are gone.
	files, _ := filepath.Glob(filepath.Join(dir, "ckpt", "*.ckpt"))
	if len(files) > 2 {
		t.Fatalf("retention left %v", files)
	}
	if arch.FirstLSN() == 0 {
		t.Fatal("archive was never truncated")
	}
	want := totalCalls(t, n, sch, 10)
	n.Stop()
	restored, err := Restore(Config{
		Schema: sch, Partitions: 2, BucketSize: 32,
		Archive: arch, IdleMergePause: 200 * time.Microsecond,
	}, mgr)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Stop()
	if got := totalCalls(t, restored, sch, 10); got != want || got != 600 {
		t.Fatalf("restored total = %d, want %d", got, want)
	}
}

// TestFailedIncrementForcesFullNext verifies the dirty-set safety net: an
// incremental checkpoint that fails AFTER its capture barrier (which clears
// the dirty sets) forces the next checkpoint to be full, so no entity is
// silently dropped from the chain.
func TestFailedIncrementForcesFullNext(t *testing.T) {
	dir := t.TempDir()
	n, _, sch := durableNode(t, dir)
	defer n.Stop()
	ckptDir := filepath.Join(dir, "ckpt")
	mgr, err := checkpoint.NewManager(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := n.ProcessEventAsync(mkEvent(uint64(i%10)+1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Checkpoint(mgr, true); err != nil {
		t.Fatal(err)
	}
	if _, err := n.ProcessEvent(mkEvent(1, 1000)); err != nil {
		t.Fatal(err)
	}
	// Sabotage the directory: the capture barrier runs (clearing dirty
	// sets), then publishing the file fails.
	if err := os.RemoveAll(ckptDir); err != nil {
		t.Fatal(err)
	}
	if err := n.Checkpoint(mgr, false); err == nil {
		t.Fatal("checkpoint into removed directory succeeded")
	}
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// The next "incremental" must silently promote to full.
	st, err := n.FuzzyCheckpoint(mgr, false)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full || st.Records != 10 {
		t.Fatalf("post-failure checkpoint: full=%v records=%d, want full with 10", st.Full, st.Records)
	}
	recs, _, err := mgr.Load(sch.Slots)
	if err != nil {
		t.Fatal(err)
	}
	calls := sch.MustAttrIndex("calls_today_count")
	if got := int64(recs[1][calls]); got != 11 {
		t.Fatalf("entity 1 calls = %d, want 11 (update not lost)", got)
	}
}

// TestRestoreSalvagesCorruptIncrement: a bit-flipped increment makes Strict
// restore fail; Salvage falls back to the base with a longer archive replay
// and rebuilds the exact same matrix.
func TestRestoreSalvagesCorruptIncrement(t *testing.T) {
	dir := t.TempDir()
	n, arch, sch := durableNode(t, dir)
	mgr, err := checkpoint.NewManager(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := n.ProcessEventAsync(mkEvent(uint64(i%10)+1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Checkpoint(mgr, true); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 150; i++ {
		if err := n.ProcessEventAsync(mkEvent(uint64(i%10)+1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Checkpoint(mgr, false); err != nil {
		t.Fatal(err)
	}
	if err := n.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	want := totalCalls(t, n, sch, 10)
	n.Stop()
	// Flip a byte in the increment.
	files, _ := filepath.Glob(filepath.Join(dir, "ckpt", "*-incr.ckpt"))
	if len(files) != 1 {
		t.Fatalf("increments: %v", files)
	}
	data, _ := os.ReadFile(files[0])
	data[30] ^= 0x40
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Schema: sch, Partitions: 2, BucketSize: 32,
		Archive: arch, IdleMergePause: 200 * time.Microsecond,
	}
	if _, _, err := RestoreWithReport(cfg, mgr, checkpoint.Strict); err == nil {
		t.Fatal("strict restore of corrupt increment succeeded")
	}
	restored, rep, err := RestoreWithReport(cfg, mgr, checkpoint.Salvage)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Stop()
	if got := totalCalls(t, restored, sch, 10); got != want || got != 150 {
		t.Fatalf("salvaged total = %d, want %d", got, want)
	}
	if rep.Watermark != 100 || rep.TailEvents != 50 || len(rep.Checkpoint.QuarantinedFiles) != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestRestoreRefusesMissingTail: if the archive has been truncated above
// the watermark recovery fell back to, Restore must fail loudly instead of
// silently losing events.
func TestRestoreRefusesMissingTail(t *testing.T) {
	dir := t.TempDir()
	sch := testSchema(t)
	arch, err := archive.Open(filepath.Join(dir, "wal"), archive.Options{SegmentEvents: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	n, err := NewNode(Config{Schema: sch, Partitions: 1, BucketSize: 32, Archive: arch})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := checkpoint.NewManager(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := n.ProcessEventAsync(mkEvent(uint64(i%10)+1, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Checkpoint(mgr, true); err != nil {
		t.Fatal(err)
	}
	if _, err := arch.TruncateBelow(100); err != nil {
		t.Fatal(err)
	}
	n.Stop()
	// Destroy the base: Salvage now falls back to "no checkpoint at all"
	// (watermark 0), but the archive's early segments are gone.
	files, _ := filepath.Glob(filepath.Join(dir, "ckpt", "*-base.ckpt"))
	data, _ := os.ReadFile(files[0])
	data[12] ^= 0xFF
	os.WriteFile(files[0], data, 0o644)
	cfg := Config{Schema: sch, Partitions: 1, BucketSize: 32, Archive: arch}
	if _, _, err := RestoreWithReport(cfg, mgr, checkpoint.Salvage); err == nil {
		t.Fatal("restore with a GC'd replay tail succeeded")
	}
}

// TestSnapshotDuringLoad runs checkpoints concurrently with event traffic
// on other entities plus continuous merge activity; with -race this guards
// the ESP-thread snapshot against the RTA merge path.
func TestSnapshotDuringLoad(t *testing.T) {
	dir := t.TempDir()
	n, _, sch := durableNode(t, dir)
	defer n.Stop()
	mgr, err := checkpoint.NewManager(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		for i := 0; i < 200; i++ {
			if err := n.ProcessEventAsync(mkEvent(uint64(i%50)+1, int64(round*1000+i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.Checkpoint(mgr, round == 0); err != nil {
			t.Fatal(err)
		}
	}
	recs, _, err := mgr.Load(sch.Slots)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("checkpoint covers %d entities, want 50", len(recs))
	}
	calls := sch.MustAttrIndex("calls_today_count")
	var total int64
	for _, rec := range recs {
		total += int64(rec[calls])
	}
	if total != 1000 {
		t.Fatalf("checkpointed calls = %d, want 1000", total)
	}
}
