// Package core implements the AIM storage node — the paper's primary
// contribution (§4.6–§4.8): data partitions that pair a delta store with a
// ColumnMap main, the two-atomic-flag delta-switch protocol (Appendix A),
// the interleaved scan-step/merge-step loop of the RTA threads (Figure 6),
// shared-scan query batching, and the ESP service loop that gives every
// partition a single writer.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/columnmap"
	"repro/internal/crashpoint"
	"repro/internal/delta"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/schema"
)

// spinWait yields while cond stays false. The paper's Algorithms 6/7 use
// pure spin loops on dedicated cores; on shared or single-core hosts a pure
// Gosched spin can burn whole scheduler quanta, so after a short spin phase
// the wait backs off to microsecond sleeps. It reports whether the slow
// (sleeping) phase was entered, so callers can count delta-switch stalls.
func spinWait(cond func() bool) (slow bool) {
	for i := 0; i < 64; i++ {
		if cond() {
			return false
		}
		runtime.Gosched()
	}
	for !cond() {
		slow = true
		time.Sleep(5 * time.Microsecond)
	}
	return slow
}

// ErrVersionConflict is returned by ConditionalPut when the record changed
// since the caller's Get (§4.6 footnote 8). The ESP node reacts by
// restarting the single-row transaction for the current event.
var ErrVersionConflict = errors.New("core: conditional write version conflict")

// RecordFactory creates the initial Entity Record for a previously unseen
// entity, letting the application populate segmentation attributes.
type RecordFactory func(entityID uint64) schema.Record

// Partition is one horizontal partition of the Analytics Matrix within a
// storage node: a ColumnMap main plus two pre-allocated deltas. Exactly one
// ESP goroutine issues Get/Put/ApplyEvent, and exactly one RTA goroutine
// issues ScanSnapshot/MergeStep; the two coordinate only through the delta
// switch protocol.
type Partition struct {
	sch     *schema.Schema
	main    *columnmap.ColumnMap
	factory RecordFactory

	// cur receives Puts; old is the sealed delta, already merged (or being
	// merged) into main. Both are pre-allocated at startup (§4.6 footnote
	// 7); a switch is two pointer swaps plus a reset. These fields are
	// written by the RTA thread only while the ESP thread is parked by the
	// flag protocol, whose atomic operations order the writes.
	cur, old *delta.Delta

	// Flag protocol state (Appendix A). rtaReady signals the RTA thread's
	// intent to switch; espWaiting acknowledges that the ESP thread is
	// parked. Deviation from the paper's Algorithms 6/7: the ESP thread
	// clears espWaiting itself after leaving the spin loop and the RTA
	// thread waits for that, closing a window in which back-to-back
	// switches could deadlock against a still-spinning ESP thread.
	rtaReady   atomic.Bool
	espWaiting atomic.Bool
	// espAttached is true while an ESP service loop is running. When no
	// ESP thread is attached (tests, shutdown), switches proceed
	// immediately — there is nobody to park.
	espAttached atomic.Bool
	// kick, when non-nil, is poked by the RTA thread after raising
	// rtaReady so a channel-blocked ESP worker wakes up to acknowledge.
	kick func()

	// pending mirrors cur.Len() for cross-thread readers (admission
	// control, watermark gauges). The delta itself is ESP-thread confined;
	// this atomic is the only part of its size other threads may observe.
	pending atomic.Int64

	version uint64        // conditional-write version counter
	scratch schema.Record // ESP-thread-confined record buffer
	gdirty  []uint64      // dirty-group bitmask scratch for batched apply (ESP-thread confined)

	// dirty tracks entities Put since the last incremental checkpoint
	// (ESP-thread confined). nil when dirty tracking is disabled.
	dirty map[uint64]struct{}

	// tier is the cold-tier policy (see EnableTiering). Read by the RTA
	// thread at the end of every merge step; immutable once serving.
	tier TierConfig

	// obs holds the partition's observability hooks. All metric pointers
	// are nil-safe, so an uninstrumented partition pays one predictable
	// branch per hook.
	obs partitionObs
}

// partitionObs bundles the metrics and trace hooks a StorageNode wires into
// each of its partitions (see StorageNode.instrumentPartitions).
type partitionObs struct {
	idx        int64          // partition index within the node
	espPark    *obs.Histogram // time the ESP thread spends parked per switch
	switchWait *obs.Histogram // time the RTA thread waits for the ESP park ack
	spinSlow   *obs.Counter   // spinWait calls that fell through to sleeping
	freshness  *obs.Histogram // age of the oldest unmerged record at merge time
	deltaLen   *obs.Gauge     // records in the last sealed delta
	tracer     obs.Tracer     // may be nil
}

// NewPartition creates a partition. factory may be nil, in which case bare
// records are created for unseen entities. bucketSize <= 0 selects the
// ColumnMap default.
func NewPartition(sch *schema.Schema, bucketSize int, factory RecordFactory) *Partition {
	if factory == nil {
		factory = sch.NewRecord
	}
	return &Partition{
		sch:     sch,
		main:    columnmap.New(sch.Slots, bucketSize),
		factory: factory,
		cur:     delta.New(1024),
		old:     delta.New(1024),
		scratch: make(schema.Record, sch.Slots),
		gdirty:  make([]uint64, sch.GroupMaskWords()),
	}
}

// Schema returns the partition's schema.
func (p *Partition) Schema() *schema.Schema { return p.sch }

// Main exposes the ColumnMap for scan steps and tests.
func (p *Partition) Main() *columnmap.ColumnMap { return p.main }

// DeltaLen reports the number of entities pending in the active delta. Only
// the ESP thread may call it.
func (p *Partition) DeltaLen() int { return p.cur.Len() }

// PendingDelta reports the active delta's size as of the last Put. Unlike
// DeltaLen it is safe from any goroutine; it may lag the true size by the
// writes in flight on the ESP thread.
func (p *Partition) PendingDelta() int64 { return p.pending.Load() }

// --- ESP-thread operations -------------------------------------------------

// Get copies the freshest version of the entity's record into dst and
// returns its modification version (Algorithm 3: new delta, then old delta,
// then main).
func (p *Partition) Get(entityID uint64, dst schema.Record) (uint64, bool) {
	if p.cur.Get(entityID, dst) {
		return dst[p.sch.VersionSlot], true
	}
	if p.old.Get(entityID, dst) {
		return dst[p.sch.VersionSlot], true
	}
	if ok, err := p.main.GatherEntity(entityID, dst); ok && err == nil {
		return dst[p.sch.VersionSlot], true
	}
	return 0, false
}

// currentVersion returns the freshest stored version for the entity.
func (p *Partition) currentVersion(entityID uint64) (uint64, bool) {
	if v, ok := p.cur.Slot(entityID, p.sch.VersionSlot); ok {
		return v, true
	}
	if v, ok := p.old.Slot(entityID, p.sch.VersionSlot); ok {
		return v, true
	}
	if rid, ok := p.main.Lookup(entityID); ok {
		return p.main.Value(rid, p.sch.VersionSlot), true
	}
	return 0, false
}

// Put stores rec as the entity's newest version (Algorithm 4) and stamps a
// fresh modification version. Version counters restart after recovery;
// conditional writes compare versions for equality, so the only hazard is a
// full-cycle ABA, which a single-row workload cannot produce.
func (p *Partition) Put(rec schema.Record) {
	p.version++
	rec[p.sch.VersionSlot] = p.version
	p.cur.Put(rec.EntityID(), rec)
	p.pending.Store(int64(p.cur.Len()))
	if p.dirty != nil {
		p.dirty[rec.EntityID()] = struct{}{}
	}
}

// EnableDirtyTracking turns on the dirty-entity set used by incremental
// checkpoints. Must be called before any Put.
func (p *Partition) EnableDirtyTracking() {
	p.dirty = make(map[uint64]struct{})
}

// SnapshotRecords emits a consistent copy of every Entity Record (or only
// the dirty ones) and clears the dirty set. It must run on the partition's
// ESP thread; it may run concurrently with RTA merge steps. The main rows a
// merge rewrites are exactly the sealed delta's entities, and that
// membership cannot change while this runs (a delta switch needs the ESP
// thread this call occupies) — so delta membership is checked BEFORE
// touching a main row, skipped rows get their fresher delta copy emitted
// instead, and rows actually read from main are never concurrently written.
func (p *Partition) SnapshotRecords(onlyDirty bool, emit func(rec schema.Record) error) error {
	buf := make(schema.Record, p.sch.Slots)
	if onlyDirty {
		if p.dirty == nil {
			return errors.New("core: dirty tracking not enabled")
		}
		for id := range p.dirty {
			if _, ok := p.Get(id, buf); ok {
				if err := emit(buf); err != nil {
					return err
				}
			}
		}
		clear(p.dirty)
		return nil
	}
	for _, e := range p.main.IndexSnapshot() {
		if p.cur.Contains(e.Entity) || p.old.Contains(e.Entity) {
			continue // the delta copy below is fresher (and tear-free)
		}
		if err := p.main.Gather(e.RID, buf); err != nil {
			return err
		}
		if err := emit(buf); err != nil {
			return err
		}
	}
	var emitErr error
	p.cur.Iterate(func(id uint64, rec []uint64) {
		if emitErr != nil {
			return
		}
		copy(buf, rec)
		emitErr = emit(buf)
	})
	if emitErr != nil {
		return emitErr
	}
	p.old.Iterate(func(id uint64, rec []uint64) {
		if emitErr != nil || p.cur.Contains(id) {
			return
		}
		copy(buf, rec)
		emitErr = emit(buf)
	})
	if emitErr != nil {
		return emitErr
	}
	if p.dirty != nil {
		clear(p.dirty)
	}
	return nil
}

// ConditionalPut is Put guarded by the version returned from a prior Get.
func (p *Partition) ConditionalPut(rec schema.Record, expected uint64) error {
	if v, ok := p.currentVersion(rec.EntityID()); ok && v != expected {
		return fmt.Errorf("%w: entity %d at version %d, expected %d",
			ErrVersionConflict, rec.EntityID(), v, expected)
	}
	p.Put(rec)
	return nil
}

// putOwned is the ESP hot path's Put: rec (the scratch buffer) is stamped
// and handed to the delta by reference, and the delta's displaced slice
// comes back as the next scratch. One pointer swap instead of a full record
// copy. Only the owning ESP thread may call it, and rec must be p.scratch.
func (p *Partition) putOwned(rec schema.Record) {
	p.version++
	rec[p.sch.VersionSlot] = p.version
	entity := rec.EntityID()
	p.scratch = p.cur.PutOwned(entity, rec)
	p.pending.Store(int64(p.cur.Len()))
	if p.dirty != nil {
		p.dirty[entity] = struct{}{}
	}
}

// ApplyEvent is the partition-local body of UPDATE_MATRIX (Algorithm 1):
// get (or create) the caller's record, apply all attribute-group update
// functions, and put the record back. It returns the updated record for
// Business Rule evaluation; the returned slice is the partition's former
// scratch buffer (now owned by the delta), valid until the next ESP
// operation.
func (p *Partition) ApplyEvent(ev *event.Event) schema.Record {
	rec := p.scratch
	if _, ok := p.Get(ev.Caller, rec); !ok {
		fresh := p.factory(ev.Caller)
		copy(rec, fresh)
	}
	p.sch.Apply(rec, ev)
	p.putOwned(rec)
	return rec
}

// ApplyEventBatch applies a caller-coalesced run — consecutive events that
// all belong to the same caller — paying the Get (hash probes + record
// copy) and the delta Put once for the whole run instead of once per event.
//
// Updates run split-phase: each event's ingest touches only the hidden
// primitives, and visible aggregates are materialized lazily. ruleGroups,
// when non-nil, names the groups the active Business Rules read; before
// each intermediate onApply only the dirty groups in that set are
// materialized, since rule evaluation cannot observe any other visible
// slot. Everything still dirty is materialized once at the end of the run,
// before the record is stored — so the stored record, and the record seen
// by onApply for the final event within ruleGroups, are byte-identical to
// the per-event path (modulo the version slot, which advances once per
// event but is stamped only at the end). With ruleGroups == nil and a
// non-nil onApply, every dirty group materializes per event, preserving
// fully eager semantics for callers that inspect whole intermediate
// records. Returns the final record under the same lifetime contract as
// ApplyEvent.
func (p *Partition) ApplyEventBatch(run []event.Event, ruleGroups *schema.GroupSet, onApply func(ev *event.Event, rec schema.Record)) schema.Record {
	rec := p.scratch
	caller := run[0].Caller
	if _, ok := p.Get(caller, rec); !ok {
		fresh := p.factory(caller)
		copy(rec, fresh)
	}
	for i := range run {
		p.sch.ApplyIngest(rec, &run[i], p.gdirty)
		if onApply != nil {
			p.sch.MaterializeDirty(rec, p.gdirty, ruleGroups)
			onApply(&run[i], rec)
		}
	}
	// Publish whatever stayed lazy during the run before the record becomes
	// visible to Gets and scans.
	p.sch.MaterializeDirty(rec, p.gdirty, nil)
	// Advance the version counter as if each event had Put individually, so
	// conditional-write version arithmetic is unchanged by batching.
	p.version += uint64(len(run) - 1)
	p.putOwned(rec)
	return rec
}

// CheckSwitch parks the ESP thread while the RTA thread performs a delta
// switch (Algorithm 7). The ESP service loop must call it between requests.
func (p *Partition) CheckSwitch() {
	if !p.rtaReady.Load() {
		return
	}
	t0 := time.Now()
	p.espWaiting.Store(true)
	if spinWait(func() bool { return !p.rtaReady.Load() }) {
		p.obs.spinSlow.Inc()
	}
	p.espWaiting.Store(false)
	p.obs.espPark.ObserveSince(t0)
}

// AttachESP marks an ESP service loop as running; kick (optional) is
// invoked by the RTA thread to wake a blocked loop for flag checks.
func (p *Partition) AttachESP(kick func()) {
	p.kick = kick
	p.espAttached.Store(true)
}

// DetachESP marks the ESP service loop as stopped.
func (p *Partition) DetachESP() {
	p.espAttached.Store(false)
}

// --- RTA-thread operations --------------------------------------------------

// SwitchDeltas seals the active delta and installs the empty spare
// (Algorithm 6). It blocks the ESP thread only for the duration of two
// pointer swaps and a reset of the spare — the paper's "blazingly fast"
// new-delta allocation. Returns the sealed delta for merging.
func (p *Partition) SwitchDeltas() *delta.Delta {
	t0 := time.Now()
	p.rtaReady.Store(true)
	if p.espAttached.Load() {
		if p.kick != nil {
			p.kick()
		}
		if spinWait(func() bool { return p.espWaiting.Load() || !p.espAttached.Load() }) {
			p.obs.spinSlow.Inc()
		}
	}
	p.obs.switchWait.ObserveSince(t0)
	p.old.Reset() // retire the previously merged delta; it becomes the spare
	p.cur, p.old = p.old, p.cur
	p.pending.Store(0)
	p.rtaReady.Store(false)
	// Wait for the ESP thread to leave the spin loop before the next
	// switch can possibly begin.
	if spinWait(func() bool { return !p.espWaiting.Load() }) {
		p.obs.spinSlow.Inc()
	}
	if p.obs.tracer != nil {
		p.obs.tracer.Record(obs.Span{
			Kind:  obs.SpanDeltaSwitch,
			Start: t0,
			Dur:   time.Since(t0),
			A:     p.obs.idx,
			B:     int64(p.old.Len()),
		})
	}
	return p.old
}

// MergeStep performs one merge step (Figure 6): switch deltas, then apply
// every sealed record to the main in place. It returns the number of merged
// records. The ESP thread keeps running during the merge itself; Gets for
// affected entities are served from the sealed delta (Algorithm 3), which
// stays identical to what the main converges to.
func (p *Partition) MergeStep() int {
	sealed := p.SwitchDeltas()
	t0 := time.Now()
	// Freshness (t_fresh, §2.1): by the end of this merge step the oldest
	// record that was still invisible to scans has aged this much.
	if first := sealed.FirstPutNanos(); first > 0 {
		p.obs.freshness.ObserveDuration(time.Duration(t0.UnixNano() - first))
	}
	p.obs.deltaLen.Set(int64(sealed.Len()))
	n := 0
	sealed.Iterate(func(id uint64, rec []uint64) {
		if err := p.main.Upsert(rec); err != nil {
			// Upsert only fails on arity mismatch, which would be a
			// programming error caught by tests; surface loudly.
			panic(fmt.Sprintf("core: merge upsert entity %d: %v", id, err))
		}
		n++
	})
	// Tier aging (this thread is the main's single writer): every merge
	// step ticks the epoch clock, then demotes buckets whose last write —
	// restamped by the Upsert loop above — is ColdAfterEpochs ticks old.
	p.main.AdvanceEpoch()
	if p.tier.Enabled {
		crashpoint.Hit(crashpoint.CoreBucketFreeze)
		p.main.FreezeCold(uint64(p.tier.ColdAfterEpochs), p.tier.MaxFreezePerStep)
	}
	if p.obs.tracer != nil {
		p.obs.tracer.Record(obs.Span{
			Kind:  obs.SpanMergeStep,
			Start: t0,
			Dur:   time.Since(t0),
			A:     p.obs.idx,
			B:     int64(n),
		})
	}
	return n
}

// ScanSnapshot returns the main's buckets for a scan step. The snapshot is
// consistent: main is only mutated by this partition's own merge steps,
// which never overlap scan steps.
func (p *Partition) ScanSnapshot() []columnmap.Bucket {
	return p.main.Snapshot()
}
