package core

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/query"
)

// nodeMetrics holds a StorageNode's registry-backed instruments. The node
// always has one (backed by a private registry when Config.Metrics is nil),
// so NodeStats is a view over the registry — one source of truth — and the
// hot paths never test for "metrics enabled".
type nodeMetrics struct {
	events        *obs.Counter
	firings       *obs.Counter
	scanRounds    *obs.Counter
	mergedRecords *obs.Counter
	queriesServed *obs.Counter

	eventApply *obs.Histogram // sampled UPDATE_MATRIX latency
	ruleEval   *obs.Histogram // sampled business-rule evaluation latency

	ingestBatch   *obs.Histogram // events per ProcessEventBatch call
	coalescedPuts *obs.Counter   // delta Puts saved by caller coalescing

	rejectQueue    *obs.Counter // ingest rejections: ESP queue past soft limit
	rejectDelta    *obs.Counter // ingest rejections: delta past hard watermark
	rejectScan     *obs.Counter // query rejections: pending pool full
	rejectDeadline *obs.Counter // query rejections: deadline passed in queue
	shedRounds     *obs.Counter // scan rounds run in soft-watermark shed mode

	ckptTotal    *obs.Counter
	ckptFailures *obs.Counter
	ckptRecords  *obs.Counter
	ckptBytes    *obs.Counter
	ckptDuration *obs.Histogram
	recovery     *obs.Histogram

	scan *query.ScanMetrics
}

// mname applies the node's constant label (Config.MetricsLabel) to a metric
// name so several nodes can share one registry without colliding.
func mname(label, name string) string {
	if label == "" {
		return name
	}
	return obs.Label(name, "node", label)
}

// newNodeMetrics registers the node's instruments on reg.
func newNodeMetrics(reg *obs.Registry, label string) nodeMetrics {
	return nodeMetrics{
		events: reg.Counter(mname(label, "aim_core_events_total"),
			"Events applied to the Analytics Matrix (UPDATE_MATRIX executions)."),
		firings: reg.Counter(mname(label, "aim_esp_rule_firings_total"),
			"Business-rule firings produced by event processing."),
		scanRounds: reg.Counter(mname(label, "aim_core_scan_rounds_total"),
			"Shared-scan rounds completed (including merge-only rounds)."),
		mergedRecords: reg.Counter(mname(label, "aim_core_merged_records_total"),
			"Delta records merged into ColumnMap mains."),
		queriesServed: reg.Counter(mname(label, "aim_core_queries_served_total"),
			"RTA queries answered by this node."),
		eventApply: reg.LatencyHistogram(mname(label, "aim_core_event_apply_seconds"),
			"Sampled latency of applying one event to its partition (Algorithm 1)."),
		ruleEval: reg.LatencyHistogram(mname(label, "aim_esp_rule_eval_seconds"),
			"Sampled latency of evaluating the rule set against one event."),
		ingestBatch: reg.Histogram(mname(label, "aim_core_ingest_batch_size"),
			"Events per batched ingest call (ProcessEventBatch)."),
		coalescedPuts: reg.Counter(mname(label, "aim_core_coalesced_puts_total"),
			"Record copies saved by caller-coalesced batch apply (events applied minus delta stores)."),
		rejectQueue: reg.Counter(mname(label, obs.Label("aim_core_overload_rejections_total", "reason", "esp-queue")),
			"Ingest admissions rejected because the target ESP queue passed the soft limit."),
		rejectDelta: reg.Counter(mname(label, obs.Label("aim_core_overload_rejections_total", "reason", "delta-hard")),
			"Ingest admissions rejected because the target partition's delta passed the hard watermark."),
		rejectScan: reg.Counter(mname(label, obs.Label("aim_query_scan_rejections_total", "reason", "admission")),
			"Query submissions rejected because the pending scan pool was full."),
		rejectDeadline: reg.Counter(mname(label, obs.Label("aim_query_scan_rejections_total", "reason", "deadline")),
			"Queries evicted from a scan round because their deadline had passed."),
		shedRounds: reg.Counter(mname(label, "aim_core_shed_rounds_total"),
			"Scan rounds run in soft-watermark shed mode (tight merge cadence, halved batch)."),
		ckptTotal: reg.Counter(mname(label, "aim_ckpt_total"),
			"Checkpoints completed (base + incremental)."),
		ckptFailures: reg.Counter(mname(label, "aim_ckpt_failures_total"),
			"Checkpoints that failed after starting."),
		ckptRecords: reg.Counter(mname(label, "aim_ckpt_records_total"),
			"Entity Records written across all checkpoints."),
		ckptBytes: reg.Counter(mname(label, "aim_ckpt_bytes_total"),
			"Bytes written across all checkpoint files."),
		ckptDuration: reg.LatencyHistogram(mname(label, "aim_ckpt_duration_seconds"),
			"End-to-end duration of one fuzzy checkpoint (barrier + stream + seal)."),
		recovery: reg.LatencyHistogram(mname(label, "aim_recovery_seconds"),
			"Wall-clock time of node recovery (checkpoint load + archive tail replay)."),
		scan: query.NewScanMetrics(reg, func(name string) string { return mname(label, name) }),
	}
}

// instrumentPartitions wires the shared per-node hooks plus per-partition
// gauges into every partition, and registers the records gauge.
func (n *StorageNode) instrumentPartitions(reg *obs.Registry, label string, tracer obs.Tracer) {
	espPark := reg.LatencyHistogram(mname(label, "aim_core_esp_park_seconds"),
		"Time the ESP thread spends parked per delta switch (Algorithm 7).")
	switchWait := reg.LatencyHistogram(mname(label, "aim_core_switch_wait_seconds"),
		"Time the RTA thread waits for the ESP park acknowledgement (Algorithm 6).")
	spinSlow := reg.Counter(mname(label, "aim_core_spin_slow_total"),
		"Delta-switch spin waits that fell through to the sleeping backoff phase.")
	freshness := reg.LatencyHistogram(mname(label, "aim_core_freshness_seconds"),
		"Data freshness t_fresh: age of the oldest unmerged delta record when its merge step lands (2.1).")
	for i, p := range n.parts {
		p.obs = partitionObs{
			idx:        int64(i),
			espPark:    espPark,
			switchWait: switchWait,
			spinSlow:   spinSlow,
			freshness:  freshness,
			deltaLen: reg.Gauge(
				mname(label, obs.Label("aim_core_delta_len", "partition", strconv.Itoa(i))),
				"Records in the partition's last sealed delta."),
			tracer: tracer,
		}
	}
	parts := n.parts
	reg.GaugeFunc(mname(label, "aim_core_records"),
		"Entity Records resident in the node's ColumnMap mains.",
		func() float64 {
			total := 0
			for _, p := range parts {
				total += p.Main().Len()
			}
			return float64(total)
		})
	reg.GaugeFunc(mname(label, "aim_core_delta_watermark_state"),
		"Worst per-partition delta watermark state: 0 below soft, 1 past soft, 2 past hard.",
		func() float64 { return float64(n.watermarkState()) })
	reg.GaugeFunc(mname(label, obs.Label("aim_core_main_bytes", "tier", "hot")),
		"Payload bytes held by hot (flat slab) ColumnMap buckets.",
		func() float64 { return float64(n.TierStats().HotBytes) })
	reg.GaugeFunc(mname(label, obs.Label("aim_core_main_bytes", "tier", "cold")),
		"Payload bytes held by cold (compressed chunk) ColumnMap buckets.",
		func() float64 { return float64(n.TierStats().ColdBytes) })
	reg.GaugeFunc(mname(label, "aim_core_cold_chunks"),
		"Compressed column chunks currently frozen across the node's mains.",
		func() float64 { return float64(n.TierStats().ColdChunks) })
	reg.GaugeFunc(mname(label, "aim_core_cold_compression_ratio"),
		"Raw-to-compressed size ratio of the cold tier (1 when nothing is cold).",
		func() float64 { return n.TierStats().CompressionRatio() })
	reg.CounterFunc(mname(label, "aim_core_bucket_freezes_total"),
		"Full buckets frozen into the compressed cold tier.",
		func() float64 { return float64(n.TierStats().Freezes) })
	reg.CounterFunc(mname(label, "aim_core_bucket_thaws_total"),
		"Frozen buckets thawed back hot by delta writes.",
		func() float64 { return float64(n.TierStats().Thaws) })
}

// instrumentWorkers registers per-worker ESP queue depth and capacity
// gauges. Runs after the workers exist (NewNode wires partitions first).
func (n *StorageNode) instrumentWorkers(reg *obs.Registry, label string) {
	for i, w := range n.workers {
		ch := w.ch
		reg.GaugeFunc(mname(label, obs.Label("aim_core_esp_queue_depth", "worker", strconv.Itoa(i))),
			"Requests waiting in this ESP worker's queue.",
			func() float64 { return float64(len(ch)) })
		reg.Gauge(mname(label, obs.Label("aim_core_esp_queue_capacity", "worker", strconv.Itoa(i))),
			"Capacity of this ESP worker's queue.").Set(int64(cap(ch)))
	}
}
