package netproto

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/schema"
)

// startPairCfg boots a node + server + client with explicit configs, for
// exercising the batched ingest paths.
func startPairCfg(t *testing.T, scfg ServerConfig, ccfg ClientConfig) (*Client, *core.StorageNode, *schema.Schema) {
	t.Helper()
	sch := netSchema(t)
	node, err := core.NewNode(core.Config{
		Schema: sch, Partitions: 2, BucketSize: 32,
		IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeWithConfig("127.0.0.1:0", node, sch, scfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialConfig(srv.Addr(), sch, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
		node.Stop()
	})
	return cli, node, sch
}

func waitProcessed(t *testing.T, node *core.StorageNode, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := node.Stats().EventsProcessed; got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server processed %d events, want %d", node.Stats().EventsProcessed, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEventBatchCodecRoundtrip(t *testing.T) {
	evs := make([]event.Event, 17)
	for i := range evs {
		evs[i] = event.Event{
			Caller: uint64(i) + 1, Callee: uint64(i) + 2, Timestamp: int64(i * 7),
			Duration: int64(i), Cost: float64(i) / 4, LongDistance: i%3 == 0,
		}
	}
	got, err := decodeEventBatch(encodeEventBatch(evs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
	for i := range got {
		if got[i] != evs[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], evs[i])
		}
	}

	// Malformed bodies must be rejected, not mis-sliced.
	if _, err := decodeEventBatch(nil); err == nil {
		t.Fatal("decoded empty body")
	}
	if _, err := decodeEventBatch([]byte{0, 0}); err == nil {
		t.Fatal("decoded short body")
	}
	body := encodeEventBatch(evs[:2])
	if _, err := decodeEventBatch(body[:len(body)-1]); err == nil {
		t.Fatal("decoded truncated batch")
	}
	body[0] = 3 // count says 3, body carries 2
	if _, err := decodeEventBatch(body); err == nil {
		t.Fatal("decoded count/length mismatch")
	}
	zero := encodeEventBatch(nil)
	if _, err := decodeEventBatch(zero); err == nil {
		t.Fatal("decoded zero-count batch")
	}
}

// TestClientCoalescingOverTCP drives the opt-in client buffer end to end:
// events coalesce into msgEventBatch frames, FlushEvents force-drains, and
// the server applies every event exactly once.
func TestClientCoalescingOverTCP(t *testing.T) {
	cli, node, _ := startPairCfg(t, ServerConfig{},
		ClientConfig{EventBatch: 16, EventLinger: -1})
	for i := 0; i < 200; i++ {
		ev := event.Event{Caller: uint64(i%20) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := cli.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	// A pre-batched caller path ships one frame directly (draining the
	// coalescing buffer first to keep order).
	batch := make([]event.Event, 50)
	for i := range batch {
		batch[i] = event.Event{Caller: uint64(i%20) + 1, Timestamp: int64(1000 + i), Duration: 5, Cost: 1}
	}
	if err := cli.ProcessEventBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := cli.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	if got := node.Stats().EventsProcessed; got != 250 {
		t.Fatalf("server processed %d events, want 250", got)
	}
}

// TestClientLingerFlush checks a size-incomplete batch does not wait for
// more traffic: the linger timer ships it.
func TestClientLingerFlush(t *testing.T) {
	cli, node, _ := startPairCfg(t, ServerConfig{},
		ClientConfig{EventBatch: 64, EventLinger: 5 * time.Millisecond})
	for i := 0; i < 10; i++ {
		ev := event.Event{Caller: uint64(i) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := cli.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	// No flush: only the linger timer can deliver these.
	waitProcessed(t, node, 10)
}

// TestSyncCallFlushesBuffered checks read-your-writes ordering: a
// synchronous call drains the coalescing buffer first, so the server sees
// the buffered events before the call — without FlushEvents and without a
// linger timer.
func TestSyncCallFlushesBuffered(t *testing.T) {
	cli, node, _ := startPairCfg(t, ServerConfig{},
		ClientConfig{EventBatch: 64, EventLinger: -1})
	for i := 0; i < 5; i++ {
		ev := event.Event{Caller: 7, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := cli.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := cli.Get(7); err != nil {
		t.Fatal(err)
	}
	// The Get was the only possible flush trigger (buffer not full, timer
	// disabled); the events must now be on the server.
	waitProcessed(t, node, 5)
}

// TestServerSideCoalescing drives a legacy per-event client against a
// server with ingest coalescing enabled: msgEvent frames group into batch
// applies, a flush forces the partial group out, and the idle linger drains
// a group no further traffic completes.
func TestServerSideCoalescing(t *testing.T) {
	cli, node, _ := startPairCfg(t,
		ServerConfig{IngestBatch: 16, IngestLinger: 2 * time.Millisecond},
		ClientConfig{})
	for i := 0; i < 100; i++ {
		ev := event.Event{Caller: uint64(i%20) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := cli.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	// 100 = 6 full groups of 16 plus a partial 4; the flush frame forces the
	// partial out before the server acks.
	if err := cli.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	if got := node.Stats().EventsProcessed; got != 100 {
		t.Fatalf("server processed %d events, want 100", got)
	}

	// Idle-linger path: a lone partial group with no follow-up frame must
	// still drain via the read-deadline peek.
	for i := 0; i < 5; i++ {
		ev := event.Event{Caller: 3, Timestamp: int64(200 + i), Duration: 5, Cost: 1}
		if err := cli.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	waitProcessed(t, node, 105)
}

// TestLingerRetriesAfterFailedFlush checks a dead timer cannot strand a
// quiet stream: when a linger flush fails (server unreachable) the timer
// re-arms, so the buffered events are delivered after the server heals with
// no further sends, flushes, or syncs from the application.
func TestLingerRetriesAfterFailedFlush(t *testing.T) {
	plan := NewFaultPlan()
	cli, node, _ := startPairCfg(t, ServerConfig{}, ClientConfig{
		EventBatch: 64, EventLinger: 2 * time.Millisecond,
		Dialer:      plan.Dialer(),
		BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
	})

	// Take the server away: the live conn is reset and redials are refused.
	plan.SetFailDial(true)
	plan.ResetAll()
	for i := 0; i < 3; i++ {
		ev := event.Event{Caller: uint64(i) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := cli.ProcessEventAsync(ev); err != nil {
			t.Fatalf("event %d: buffered send surfaced %v", i, err)
		}
	}
	// Several linger deadlines pass against the dead server; every flush
	// attempt fails and must leave the retry timer armed.
	time.Sleep(20 * time.Millisecond)
	if got := node.Stats().EventsProcessed; got != 0 {
		t.Fatalf("server processed %d events while unreachable", got)
	}

	// Heal and touch nothing: only a re-armed linger timer can deliver.
	plan.Heal()
	waitProcessed(t, node, 3)
}

// TestCoalescingZeroLossUnderFaults checks the batched client path keeps
// the per-event path's delivery contract under connection loss: a failed
// flush keeps the batch buffered, the failure surfaces on the next send
// (whose event stays owned by the caller, exactly like a failed per-event
// send), and after healing every accepted event is delivered once.
func TestCoalescingZeroLossUnderFaults(t *testing.T) {
	plan := NewFaultPlan()
	cli, node, _ := startPairCfg(t, ServerConfig{}, ClientConfig{
		EventBatch: 4, EventLinger: -1,
		Dialer:      plan.Dialer(),
		BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
	})
	mk := func(i int) event.Event {
		return event.Event{Caller: uint64(i) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
	}

	// Healthy: one full batch flushes by size.
	for i := 0; i < 4; i++ {
		if err := cli.ProcessEventAsync(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.FlushEvents(); err != nil {
		t.Fatal(err)
	}

	// Kill the server's reachability: live conn reset, redials refused.
	plan.SetFailDial(true)
	plan.ResetAll()

	// Three events buffer cleanly; the fourth triggers a size flush that
	// fails. The failure is NOT surfaced here — the batch (all 4 events) is
	// retained for redelivery.
	for i := 4; i < 8; i++ {
		if err := cli.ProcessEventAsync(mk(i)); err != nil {
			t.Fatalf("event %d: buffered send surfaced %v", i, err)
		}
	}
	// The next send surfaces the sticky failure and rejects its event, so
	// the caller (the cluster spill queue, in production) still owns it.
	rejected := mk(8)
	if err := cli.ProcessEventAsync(rejected); err == nil {
		t.Fatal("send after failed flush reported success")
	}
	// An explicit flush while the server is down also fails — the batch
	// stays buffered.
	if err := cli.FlushEvents(); err == nil {
		t.Fatal("FlushEvents succeeded against a dead server")
	}

	plan.Heal()
	if err := cli.FlushEvents(); err != nil {
		t.Fatalf("flush after heal: %v", err)
	}
	// Redeliver the one rejected event, exactly like the spill queue would.
	if err := cli.ProcessEventAsync(rejected); err != nil {
		t.Fatal(err)
	}
	if err := cli.FlushEvents(); err != nil {
		t.Fatal(err)
	}

	// Zero loss, zero duplication: 4 + 4 buffered-through-outage + 1 resent.
	if got := node.Stats().EventsProcessed; got != 9 {
		t.Fatalf("server processed %d events, want 9", got)
	}
	if plan.Injected() == 0 {
		t.Fatal("fault plan injected nothing; test exercised the healthy path only")
	}
}
