package netproto

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/repl"
	"repro/internal/schema"
)

// Server exposes a storage node over TCP. Event frames are applied with
// fire-and-forget semantics (the ESP stream); request/response frames are
// answered in order of completion, with query work running asynchronously
// so slow scans never block the event path (§4.2: ESP communication is
// synchronous, RTA communication is asynchronous).
type Server struct {
	node core.Storage
	sch  *schema.Schema
	ln   net.Listener
	cfg  ServerConfig

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
	quit      chan struct{}
	closeOnce sync.Once
}

// ServerConfig tunes server behavior; the zero value is the default.
type ServerConfig struct {
	// ConnWrap, when set, wraps every accepted connection. The
	// fault-injection harness uses it to make a server's links flaky
	// (drops, delays, resets) without touching the protocol code.
	ConnWrap func(net.Conn) net.Conn
	// Metrics, when set, instruments request handling (see
	// NewServerMetrics). Nil disables instrumentation at zero cost.
	Metrics *ServerMetrics
	// IngestBatch enables server-side event coalescing for clients that
	// still send one msgEvent frame per event: up to IngestBatch
	// consecutive event frames on a connection are applied as one
	// node-level batch. Any other frame type (and connection teardown)
	// applies the pending batch first, so per-connection ordering is
	// unchanged. 0 or 1 disables coalescing.
	IngestBatch int
	// IngestLinger bounds how long a coalesced event may wait for more
	// traffic while the connection is idle. 0 selects DefaultEventLinger;
	// only meaningful when IngestBatch > 1.
	IngestLinger time.Duration
	// ReplArchive, when set, enables the WAL log-shipping stream
	// (DESIGN.md §12): msgReplSubscribe subscribers tail this archive —
	// normally the served node's own event WAL.
	ReplArchive *archive.Archive
	// ReplHeartbeat bounds how long a quiet subscription goes without a
	// frontier heartbeat (0 selects the repl package default).
	ReplHeartbeat time.Duration
	// ReplBatch caps events per shipped msgReplBatch frame (0 = default).
	ReplBatch int
	// OnPromote, when set, answers msgReplPromote: it seals the local
	// follower's replay and returns the sealed watermark. Nil rejects
	// promote requests (this server is not a follower).
	OnPromote func() (uint64, error)
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") backed by node.
func Serve(addr string, node core.Storage, sch *schema.Schema) (*Server, error) {
	return ServeWithConfig(addr, node, sch, ServerConfig{})
}

// ServeWithConfig starts a server with an explicit ServerConfig.
func ServeWithConfig(addr string, node core.Storage, sch *schema.Schema, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		node:  node,
		sch:   sch,
		ln:    ln,
		cfg:   cfg,
		conns: make(map[net.Conn]struct{}),
		quit:  make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every connection and waits for handlers.
// Idempotent: extra calls just wait for the first shutdown to finish.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.quit)
		s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
				return // listener failed; nothing more to accept
			}
		}
		if s.cfg.ConnWrap != nil {
			conn = s.cfg.ConnWrap(conn)
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var writeMu sync.Mutex
	reply := func(reqID uint64, body []byte) {
		writeMu.Lock()
		defer writeMu.Unlock()
		_ = writeFrame(conn, frame{typ: msgResp, reqID: reqID, body: body})
	}
	var pendingQueries sync.WaitGroup
	defer pendingQueries.Wait()

	// Replication stream state: at most one subscription per connection.
	// The teardown defer runs before pendingQueries.Wait (LIFO) so the
	// sender goroutine is unblocked — Close on the source wakes a pending
	// Next, Close on the conn fails its next write.
	var replMu sync.Mutex
	var replSrc repl.Source
	defer func() {
		replMu.Lock()
		src := replSrc
		replMu.Unlock()
		if src != nil {
			conn.Close()
			src.Close()
		}
	}()

	// Reads are buffered: one kernel read can surface many 77 B event
	// frames. With IngestBatch > 1 consecutive msgEvent frames additionally
	// coalesce in evbuf and hit the node as one batch.
	br := bufio.NewReaderSize(conn, 64<<10)
	batchMax := s.cfg.IngestBatch
	linger := s.cfg.IngestLinger
	if linger <= 0 {
		linger = DefaultEventLinger
	}
	// Overload pushback state. Fire-and-forget events rejected by admission
	// control have no reply frame, so the server (a) pushes an msgOverload
	// frame — throttled to one per retry-after window — telling the client
	// to fail ingest locally for a while, and (b) remembers the rejection so
	// the connection's next msgFlush answers with the typed overload error
	// instead of pretending every event landed.
	var rejected uint64
	var lastOverload error
	var lastPush time.Time
	notifyOverload := func(err error, n int) {
		if n <= 0 || !errors.Is(err, core.ErrOverloaded) {
			return
		}
		rejected += uint64(n)
		lastOverload = err
		retry, _ := core.RetryAfterHint(err)
		if now := time.Now(); now.Sub(lastPush) >= retry {
			lastPush = now
			var body [16]byte
			binary.LittleEndian.PutUint64(body[0:], uint64(retry))
			binary.LittleEndian.PutUint64(body[8:], rejected)
			writeMu.Lock()
			_ = writeFrame(conn, frame{typ: msgOverload, body: body[:]})
			writeMu.Unlock()
		}
	}
	var evbuf []event.Event
	flushEvents := func() {
		if len(evbuf) == 0 {
			return
		}
		evs := evbuf
		evbuf = nil
		// Fire-and-forget: errors surface via msgFlush, as on the
		// per-event path.
		applied, err := core.ProcessBatch(s.node, evs)
		notifyOverload(err, len(evs)-applied)
	}
	defer flushEvents()

	for {
		if len(evbuf) > 0 && br.Buffered() == 0 {
			// Stream idle with a pending batch: wait at most linger for the
			// next frame's first byte, then apply what we have. bufio drops
			// its stored read error once consumed, so a deadline timeout
			// here does not poison later reads.
			conn.SetReadDeadline(time.Now().Add(linger))
			_, err := br.Peek(1)
			conn.SetReadDeadline(time.Time{})
			if err != nil {
				flushEvents()
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					continue
				}
				return
			}
		}
		f, err := readFrame(br)
		if err != nil {
			return
		}
		if f.typ != msgEvent {
			// Ordering: a batch coalesced from earlier event frames must be
			// applied before any later request on the same connection.
			flushEvents()
		}
		t0 := time.Now()
		switch f.typ {
		case msgEvent, msgEventSync:
			var ev event.Event
			if err := ev.Decode(f.body); err != nil {
				if f.typ == msgEventSync {
					reply(f.reqID, errBody(err))
				}
				continue
			}
			if f.typ == msgEvent {
				s.cfg.Metrics.eventsReceived(1)
				if batchMax > 1 {
					evbuf = append(evbuf, ev)
					if len(evbuf) >= batchMax {
						flushEvents()
					}
					continue
				}
				if err := s.node.ProcessEventAsync(ev); err != nil {
					// Fire-and-forget: the error surfaces via Flush.
					notifyOverload(err, 1)
					continue
				}
			} else {
				firings, err := s.node.ProcessEvent(ev)
				if err != nil {
					reply(f.reqID, errBody(err))
					continue
				}
				var out [4]byte
				binary.LittleEndian.PutUint32(out[:], uint32(firings))
				reply(f.reqID, okBody(out[:]))
			}
		case msgEventBatch:
			evs, err := decodeEventBatch(f.body)
			if err != nil {
				// Fire-and-forget: a malformed batch has no reply channel.
				continue
			}
			s.cfg.Metrics.eventsReceived(len(evs))
			applied, err := core.ProcessBatch(s.node, evs)
			notifyOverload(err, len(evs)-applied)
		case msgFlush:
			if err := s.node.FlushEvents(); err != nil {
				reply(f.reqID, errBody(err))
				continue
			}
			if rejected > 0 {
				// The queues are drained, but some events on this connection
				// never entered them. A clean flush would claim every prior
				// event was applied; report the loss typed instead.
				n := rejected
				rejected = 0
				reply(f.reqID, errBody(fmt.Errorf("%d events rejected by admission control since last flush: %w", n, lastOverload)))
				continue
			}
			reply(f.reqID, okBody(nil))
		case msgGet:
			if len(f.body) < 8 {
				reply(f.reqID, errBody(errors.New("short get frame")))
				continue
			}
			entity := binary.LittleEndian.Uint64(f.body)
			rec, version, found, err := s.node.Get(entity)
			if err != nil {
				reply(f.reqID, errBody(err))
				continue
			}
			out := make([]byte, 9, 9+schema.EncodedSize(s.sch.Slots))
			if found {
				out[0] = 1
			}
			binary.LittleEndian.PutUint64(out[1:], version)
			if found {
				buf := make([]byte, schema.EncodedSize(len(rec)))
				schema.EncodeRecord(rec, buf)
				out = append(out, buf...)
			}
			reply(f.reqID, okBody(out))
		case msgPut:
			rec, err := schema.DecodeRecord(f.body, s.sch.Slots)
			if err != nil {
				reply(f.reqID, errBody(err))
				continue
			}
			if err := s.node.Put(rec); err != nil {
				reply(f.reqID, errBody(err))
				continue
			}
			reply(f.reqID, okBody(nil))
		case msgCondPut:
			if len(f.body) < 8 {
				reply(f.reqID, errBody(errors.New("short conditional put frame")))
				continue
			}
			version := binary.LittleEndian.Uint64(f.body)
			rec, err := schema.DecodeRecord(f.body[8:], s.sch.Slots)
			if err != nil {
				reply(f.reqID, errBody(err))
				continue
			}
			if err := s.node.ConditionalPut(rec, version); err != nil {
				reply(f.reqID, errBody(err))
				continue
			}
			reply(f.reqID, okBody(nil))
		case msgQuery:
			q, err := query.DecodeQuery(f.body)
			if err != nil {
				reply(f.reqID, errBody(err))
				continue
			}
			ch, err := s.node.SubmitQueryAsync(q)
			if err != nil {
				reply(f.reqID, errBody(err))
				continue
			}
			// Answer asynchronously when the shared scan completes.
			pendingQueries.Add(1)
			go func(reqID uint64, ch <-chan core.QueryResponse) {
				defer pendingQueries.Done()
				r := <-ch
				if r.Err != nil {
					reply(reqID, errBody(r.Err))
					return
				}
				reply(reqID, okBody(query.EncodePartial(r.Partial)))
				s.cfg.Metrics.observe(msgQuery, t0)
			}(f.reqID, ch)
		case msgReplSubscribe:
			if s.cfg.ReplArchive == nil {
				reply(f.reqID, errBody(errors.New("replication not enabled on this server")))
				continue
			}
			if len(f.body) < 8 {
				reply(f.reqID, errBody(errors.New("short repl subscribe frame")))
				continue
			}
			from := binary.LittleEndian.Uint64(f.body)
			// Clamp a request below the retention floor up to the floor: the
			// follower sees the jump as a typed ErrGap at apply time instead
			// of a string error here.
			if floor := s.cfg.ReplArchive.FirstLSN(); from < floor {
				from = floor
			}
			replMu.Lock()
			if replSrc != nil {
				replMu.Unlock()
				reply(f.reqID, errBody(errors.New("connection already subscribed")))
				continue
			}
			src := repl.NewArchiveSource(s.cfg.ReplArchive, from, repl.ArchiveSourceConfig{
				MaxEvents: s.cfg.ReplBatch,
				Heartbeat: s.cfg.ReplHeartbeat,
			})
			replSrc = src
			replMu.Unlock()
			var out [16]byte
			binary.LittleEndian.PutUint64(out[0:], from)
			binary.LittleEndian.PutUint64(out[8:], s.cfg.ReplArchive.NextLSN())
			reply(f.reqID, okBody(out[:]))
			pendingQueries.Add(1)
			go func() {
				defer pendingQueries.Done()
				streamRepl(conn, &writeMu, src)
			}()
		case msgReplProbe:
			if s.cfg.ReplArchive == nil {
				reply(f.reqID, errBody(errors.New("replication not enabled on this server")))
				continue
			}
			var out [8]byte
			binary.LittleEndian.PutUint64(out[:], s.cfg.ReplArchive.NextLSN())
			reply(f.reqID, okBody(out[:]))
		case msgReplPromote:
			if s.cfg.OnPromote == nil {
				reply(f.reqID, errBody(errors.New("promotion not supported on this server")))
				continue
			}
			sealed, err := s.cfg.OnPromote()
			if err != nil {
				reply(f.reqID, errBody(err))
				continue
			}
			var out [8]byte
			binary.LittleEndian.PutUint64(out[:], sealed)
			reply(f.reqID, okBody(out[:]))
		default:
			reply(f.reqID, errBody(fmt.Errorf("unknown message type %d", f.typ)))
		}
		// Per-op handling latency for the synchronous request types; the
		// event stream is counted (not timed) and queries are observed by
		// their async responder above. Error paths `continue` past this.
		switch f.typ {
		case msgEventSync, msgFlush, msgGet, msgPut, msgCondPut:
			s.cfg.Metrics.observe(f.typ, t0)
		}
	}
}

// streamRepl pushes msgReplBatch frames to a subscriber until the source or
// the connection dies. A failure closes the connection so the read loop ends
// with it; the subscriber resubscribes from its applied watermark.
func streamRepl(conn net.Conn, writeMu *sync.Mutex, src repl.Source) {
	defer src.Close()
	for {
		b, err := src.Next()
		if err != nil {
			conn.Close()
			return
		}
		writeMu.Lock()
		werr := writeFrame(conn, frame{typ: msgReplBatch, body: encodeReplBatch(b)})
		writeMu.Unlock()
		if werr != nil {
			conn.Close()
			return
		}
	}
}
