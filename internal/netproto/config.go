package netproto

import (
	"math/rand/v2"
	"net"
	"time"
)

// Defaults for ClientConfig. The paper assumes a lossless Infiniband fabric
// and never times anything out; these bounds are what a TCP deployment
// needs so one stalled storage server cannot wedge an ESP router or RTA
// coordinator forever.
const (
	// DefaultCallTimeout bounds one synchronous RPC round trip.
	DefaultCallTimeout = 10 * time.Second
	// DefaultDialTimeout bounds connection establishment (and redials).
	DefaultDialTimeout = 3 * time.Second
	// DefaultMaxRetries is the extra attempts idempotent ops get after a
	// transport failure.
	DefaultMaxRetries = 2
	// DefaultBackoffBase seeds the exponential redial/retry backoff.
	DefaultBackoffBase = 20 * time.Millisecond
	// DefaultBackoffMax caps the backoff.
	DefaultBackoffMax = 1 * time.Second
	// DefaultEventBatch is the coalescing buffer size selected by
	// EventBatch: -1 (batching opted in without an explicit size).
	DefaultEventBatch = 256
	// DefaultEventLinger bounds how long a coalesced event may sit in the
	// client buffer before a size-incomplete batch is flushed anyway.
	DefaultEventLinger = time.Millisecond
)

// ClientConfig tunes a Client's failure behavior. The zero value selects
// the defaults above with reconnection enabled.
type ClientConfig struct {
	// CallTimeout bounds each RPC round trip (including asynchronous query
	// responses). 0 selects DefaultCallTimeout; negative disables the
	// timeout entirely.
	CallTimeout time.Duration
	// DialTimeout bounds the initial dial and every reconnect attempt.
	// 0 selects DefaultDialTimeout.
	DialTimeout time.Duration
	// MaxRetries is how many additional attempts idempotent operations
	// (Get, SubmitQuery, FlushEvents) make after a transport-level failure.
	// 0 selects DefaultMaxRetries; negative disables retries.
	MaxRetries int
	// DisableReconnect keeps the original fail-stop behavior: once the
	// connection drops, every subsequent call fails.
	DisableReconnect bool
	// BackoffBase / BackoffMax shape the exponential redial backoff
	// (full jitter in [d/2, d)). 0 selects the defaults.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// EventBatch enables client-side event coalescing: ProcessEventAsync
	// buffers up to EventBatch events and ships them as one msgEventBatch
	// frame (flushed earlier by EventLinger, by FlushEvents, or by any
	// synchronous call, which preserves read-your-writes ordering on the
	// connection). 0 keeps the historical one-frame-per-event behavior;
	// -1 selects DefaultEventBatch; 1 is equivalent to 0.
	EventBatch int
	// EventLinger bounds how long a buffered event may wait for its batch
	// to fill. 0 selects DefaultEventLinger; negative disables the timer
	// (size/flush-triggered draining only). Ignored unless EventBatch > 1.
	EventLinger time.Duration
	// Dialer overrides the transport dialer; the fault-injection harness
	// uses it to hand the client flaky connections. Nil means plain TCP.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Metrics, when set, instruments the client's RPCs (see
	// NewClientMetrics). Nil disables instrumentation at zero cost.
	Metrics *Metrics
}

// withDefaults resolves zero fields to their defaults.
func (cfg ClientConfig) withDefaults() ClientConfig {
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = DefaultCallTimeout
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.EventBatch < 0 {
		cfg.EventBatch = DefaultEventBatch
	} else if cfg.EventBatch == 1 {
		cfg.EventBatch = 0
	}
	if cfg.EventLinger == 0 {
		cfg.EventLinger = DefaultEventLinger
	} else if cfg.EventLinger < 0 {
		cfg.EventLinger = 0
	}
	if cfg.Dialer == nil {
		cfg.Dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return cfg
}

// backoffFor returns the jittered exponential delay for the n-th
// consecutive failure (n >= 1): full jitter in [d/2, d) with d capped at
// BackoffMax.
func (cfg ClientConfig) backoffFor(n int) time.Duration {
	d := cfg.BackoffBase
	for i := 1; i < n && d < cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > cfg.BackoffMax {
		d = cfg.BackoffMax
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + rand.N(half)
}
