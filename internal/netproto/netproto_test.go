package netproto

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/rta"
	"repro/internal/schema"
)

func netSchema(t testing.TB) *schema.Schema {
	t.Helper()
	sch, err := schema.NewBuilder().
		AddGroup(schema.GroupSpec{Name: "calls_today", Metric: schema.MetricCount,
			Window: schema.Day(), Aggs: []schema.AggKind{schema.AggCount}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// startPair boots a storage node, serves it over TCP and dials a client.
func startPair(t *testing.T) (*Client, *core.StorageNode, *schema.Schema) {
	t.Helper()
	sch := netSchema(t)
	node, err := core.NewNode(core.Config{
		Schema: sch, Partitions: 2, BucketSize: 32,
		IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", node, sch)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr(), sch)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
		node.Stop()
	})
	return cli, node, sch
}

func TestEventsOverTCP(t *testing.T) {
	cli, node, _ := startPair(t)
	for i := 0; i < 200; i++ {
		ev := event.Event{Caller: uint64(i%20) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := cli.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	if got := node.Stats().EventsProcessed; got != 200 {
		t.Fatalf("server processed %d events, want 200", got)
	}
	// Sync path returns firing counts (0 here; no rules installed).
	if nf, err := cli.ProcessEvent(event.Event{Caller: 1, Timestamp: 1000, Duration: 1, Cost: 1}); err != nil || nf != 0 {
		t.Fatalf("ProcessEvent: %d %v", nf, err)
	}
}

func TestGetPutCondPutOverTCP(t *testing.T) {
	cli, _, sch := startPair(t)
	rec := sch.NewRecord(42)
	if err := cli.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, v, ok, err := cli.Get(42)
	if err != nil || !ok {
		t.Fatalf("Get: %v %v", ok, err)
	}
	if got.EntityID() != 42 {
		t.Fatalf("entity = %d", got.EntityID())
	}
	if err := cli.ConditionalPut(got, v); err != nil {
		t.Fatalf("ConditionalPut: %v", err)
	}
	err = cli.ConditionalPut(got, v)
	if !errors.Is(err, core.ErrVersionConflict) {
		t.Fatalf("stale ConditionalPut err = %v, want ErrVersionConflict across the wire", err)
	}
	if _, _, ok, err := cli.Get(4242); err != nil || ok {
		t.Fatalf("Get(missing): %v %v", ok, err)
	}
}

func TestQueryOverTCP(t *testing.T) {
	cli, _, sch := startPair(t)
	calls := sch.MustAttrIndex("calls_today_count")
	for i := 0; i < 100; i++ {
		ev := event.Event{Caller: uint64(i%10) + 1, Timestamp: 100*24*3600*1000 + int64(i), Duration: 5, Cost: 1}
		if err := cli.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	deadline := time.Now().Add(5 * time.Second)
	for {
		p, err := cli.SubmitQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		res := p.Finalize(q)
		if len(res.Rows) > 0 && res.Rows[0].Values[0] == 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query never saw all events over TCP")
		}
		time.Sleep(time.Millisecond)
	}
	// Invalid queries error across the wire.
	if _, err := cli.SubmitQuery(&query.Query{ID: 2, GroupBy: -1}); err == nil {
		t.Fatal("invalid query accepted over TCP")
	}
}

func TestClusterOverTCP(t *testing.T) {
	sch := netSchema(t)
	calls := sch.MustAttrIndex("calls_today_count")
	var handles []core.Storage
	for i := 0; i < 3; i++ {
		node, err := core.NewNode(core.Config{
			Schema: sch, Partitions: 2, BucketSize: 32,
			IdleMergePause: 200 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := Serve("127.0.0.1:0", node, sch)
		if err != nil {
			t.Fatal(err)
		}
		cli, err := Dial(srv.Addr(), sch)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cli.Close()
			srv.Close()
			node.Stop()
		})
		handles = append(handles, cli)
	}
	c, err := cluster.New(handles)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		ev := event.Event{Caller: uint64(i%60) + 1, Timestamp: 100*24*3600*1000 + int64(i), Duration: 5, Cost: 1}
		if err := c.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	coord, err := rta.NewCoordinator(c.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := coord.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) > 0 && res.Rows[0].Values[0] == 300 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("TCP cluster never converged")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestClientFailsAfterServerClose(t *testing.T) {
	sch := netSchema(t)
	node, err := core.NewNode(core.Config{Schema: sch, Partitions: 1, BucketSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	srv, err := Serve("127.0.0.1:0", node, sch)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr(), sch)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv.Close()
	time.Sleep(10 * time.Millisecond)
	if _, _, _, err := cli.Get(1); err == nil {
		t.Fatal("Get after server close succeeded")
	}
}

func TestFrameValidation(t *testing.T) {
	f := frame{typ: msgGet, reqID: 7, body: []byte{1, 2, 3}}
	var buf writerBuf
	if err := writeFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.typ != f.typ || got.reqID != f.reqID || string(got.body) != string(f.body) {
		t.Fatalf("round trip %+v != %+v", got, f)
	}
	// Oversized frames are rejected before allocation.
	var hdr writerBuf
	hdr.b = []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := readFrame(&hdr); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// writerBuf is a minimal in-memory io.ReadWriter for frame tests.
type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func (w *writerBuf) Read(p []byte) (int, error) {
	if len(w.b) == 0 {
		return 0, errors.New("EOF")
	}
	n := copy(p, w.b)
	w.b = w.b[n:]
	return n, nil
}
