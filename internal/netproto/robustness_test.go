package netproto

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/schema"
)

// rawDial opens a plain TCP connection to a server for malformed-frame
// injection.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func startServer(t *testing.T) (*Server, *core.StorageNode, *schema.Schema) {
	t.Helper()
	sch := netSchema(t)
	node, err := core.NewNode(core.Config{
		Schema: sch, Partitions: 1, BucketSize: 32,
		IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", node, sch)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		node.Stop()
	})
	return srv, node, sch
}

// TestServerSurvivesMalformedFrames injects garbage and undersized frames;
// the server must drop the bad connection (or answer with an error) and
// keep serving well-formed clients.
func TestServerSurvivesMalformedFrames(t *testing.T) {
	srv, _, sch := startServer(t)

	payloads := [][]byte{
		{},                       // nothing (immediate close)
		{0x01},                   // truncated length prefix
		{0xff, 0xff, 0xff, 0x7f}, // absurd frame length
		{0x00, 0x00, 0x00, 0x00}, // zero-length frame (< header)
		{0x09, 0x00, 0x00, 0x00, 99, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown type
	}
	for i, p := range payloads {
		conn := rawDial(t, srv.Addr())
		if len(p) > 0 {
			if _, err := conn.Write(p); err != nil {
				t.Logf("payload %d: write error %v (fine)", i, err)
			}
		}
		conn.Close()
	}
	// Truncated bodies for every message type.
	for _, typ := range []uint8{msgEvent, msgEventSync, msgGet, msgPut, msgCondPut, msgQuery} {
		conn := rawDial(t, srv.Addr())
		var hdr [13]byte
		binary.LittleEndian.PutUint32(hdr[0:], 9+2) // 2-byte body
		hdr[4] = typ
		binary.LittleEndian.PutUint64(hdr[5:], 1)
		conn.Write(hdr[:])
		conn.Write([]byte{0xde, 0xad})
		// Give the server a beat to process, then drop the connection.
		time.Sleep(2 * time.Millisecond)
		conn.Close()
	}

	// A healthy client still works end to end.
	cli, err := Dial(srv.Addr(), sch)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Put(sch.NewRecord(7)); err != nil {
		t.Fatalf("healthy client broken after garbage: %v", err)
	}
	if _, _, ok, err := cli.Get(7); err != nil || !ok {
		t.Fatalf("Get after garbage: %v %v", ok, err)
	}
}

// TestManyConcurrentClients hammers one server with parallel clients mixing
// events, gets and queries.
func TestManyConcurrentClients(t *testing.T) {
	srv, node, sch := startServer(t)
	calls := sch.MustAttrIndex("calls_today_count")

	const clients = 8
	const perClient = 100
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr(), sch)
			if err != nil {
				errCh <- err
				return
			}
			defer cli.Close()
			for i := 0; i < perClient; i++ {
				ev := event.Event{Caller: uint64(c*perClient+i) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
				if err := cli.ProcessEventAsync(ev); err != nil {
					errCh <- err
					return
				}
				if i%10 == 0 {
					q := &query.Query{ID: uint64(c*1000 + i), Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
					if _, err := cli.SubmitQuery(q); err != nil {
						errCh <- err
						return
					}
				}
			}
			if err := cli.FlushEvents(); err != nil {
				errCh <- err
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := node.Stats().EventsProcessed; got != clients*perClient {
		t.Fatalf("server processed %d events, want %d", got, clients*perClient)
	}
}

// TestPipelinedQueriesOneConnection verifies the asynchronous protocol:
// many queries in flight on one connection, answered out of submission
// lockstep.
func TestPipelinedQueriesOneConnection(t *testing.T) {
	srv, _, sch := startServer(t)
	cli, err := Dial(srv.Addr(), sch)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 50; i++ {
		ev := event.Event{Caller: uint64(i + 1), Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := cli.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	calls := sch.MustAttrIndex("calls_today_count")
	const inflight = 32
	chans := make([]<-chan core.QueryResponse, inflight)
	for i := 0; i < inflight; i++ {
		q := &query.Query{ID: uint64(i + 1), Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
		ch, err := cli.SubmitQueryAsync(q)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		r := <-ch
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if r.Partial.QueryID != uint64(i+1) {
			t.Fatalf("query %d got partial for %d", i+1, r.Partial.QueryID)
		}
	}
}
