package netproto

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/schema"
)

// rawDial opens a plain TCP connection to a server for malformed-frame
// injection.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func startServer(t *testing.T) (*Server, *core.StorageNode, *schema.Schema) {
	t.Helper()
	sch := netSchema(t)
	node, err := core.NewNode(core.Config{
		Schema: sch, Partitions: 1, BucketSize: 32,
		IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", node, sch)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		node.Stop()
	})
	return srv, node, sch
}

// TestServerSurvivesMalformedFrames injects garbage and undersized frames;
// the server must drop the bad connection (or answer with an error) and
// keep serving well-formed clients.
func TestServerSurvivesMalformedFrames(t *testing.T) {
	srv, _, sch := startServer(t)

	payloads := [][]byte{
		{},                       // nothing (immediate close)
		{0x01},                   // truncated length prefix
		{0xff, 0xff, 0xff, 0x7f}, // absurd frame length
		{0x00, 0x00, 0x00, 0x00}, // zero-length frame (< header)
		{0x09, 0x00, 0x00, 0x00, 99, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown type
	}
	for i, p := range payloads {
		conn := rawDial(t, srv.Addr())
		if len(p) > 0 {
			if _, err := conn.Write(p); err != nil {
				t.Logf("payload %d: write error %v (fine)", i, err)
			}
		}
		conn.Close()
	}
	// Truncated bodies for every message type.
	for _, typ := range []uint8{msgEvent, msgEventSync, msgGet, msgPut, msgCondPut, msgQuery} {
		conn := rawDial(t, srv.Addr())
		var hdr [13]byte
		binary.LittleEndian.PutUint32(hdr[0:], 9+2) // 2-byte body
		hdr[4] = typ
		binary.LittleEndian.PutUint64(hdr[5:], 1)
		conn.Write(hdr[:])
		conn.Write([]byte{0xde, 0xad})
		// Give the server a beat to process, then drop the connection.
		time.Sleep(2 * time.Millisecond)
		conn.Close()
	}

	// A healthy client still works end to end.
	cli, err := Dial(srv.Addr(), sch)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Put(sch.NewRecord(7)); err != nil {
		t.Fatalf("healthy client broken after garbage: %v", err)
	}
	if _, _, ok, err := cli.Get(7); err != nil || !ok {
		t.Fatalf("Get after garbage: %v %v", ok, err)
	}
}

// TestManyConcurrentClients hammers one server with parallel clients mixing
// events, gets and queries.
func TestManyConcurrentClients(t *testing.T) {
	srv, node, sch := startServer(t)
	calls := sch.MustAttrIndex("calls_today_count")

	const clients = 8
	const perClient = 100
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr(), sch)
			if err != nil {
				errCh <- err
				return
			}
			defer cli.Close()
			for i := 0; i < perClient; i++ {
				ev := event.Event{Caller: uint64(c*perClient+i) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
				if err := cli.ProcessEventAsync(ev); err != nil {
					errCh <- err
					return
				}
				if i%10 == 0 {
					q := &query.Query{ID: uint64(c*1000 + i), Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
					if _, err := cli.SubmitQuery(q); err != nil {
						errCh <- err
						return
					}
				}
			}
			if err := cli.FlushEvents(); err != nil {
				errCh <- err
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := node.Stats().EventsProcessed; got != clients*perClient {
		t.Fatalf("server processed %d events, want %d", got, clients*perClient)
	}
}

// blackholeServer accepts connections and reads frames but never responds —
// the "stalled server" the paper assumes away.
func blackholeServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestCallTimeoutAgainstStalledServer: a server that never replies must not
// wedge the client forever; the call fails with ErrTimeout and the pending
// slot is reclaimed.
func TestCallTimeoutAgainstStalledServer(t *testing.T) {
	addr := blackholeServer(t)
	cli, err := DialConfig(addr, netSchema(t), ClientConfig{
		CallTimeout: 50 * time.Millisecond, MaxRetries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	start := time.Now()
	_, _, _, err = cli.Get(1)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Get against stalled server = %v, want ErrTimeout", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("timeout took %v", el)
	}
	cli.mu.Lock()
	n := len(cli.pending)
	cli.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d pending requests leaked after timeout", n)
	}
}

// TestCloseFailsPendingDeterministically: Close must mark the client closed
// and fail in-flight requests immediately — racing callers cannot register
// after Close and hang (the old bug: only readLoop set closed).
func TestCloseFailsPendingDeterministically(t *testing.T) {
	addr := blackholeServer(t)
	cli, err := DialConfig(addr, netSchema(t), ClientConfig{CallTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, _, err := cli.Get(1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the Get register
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("in-flight Get after Close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight Get hung after Close")
	}
	// New calls fail immediately and deterministically.
	for i := 0; i < 10; i++ {
		if _, _, _, err := cli.Get(1); !errors.Is(err, ErrClosed) {
			t.Fatalf("Get #%d after Close = %v, want ErrClosed", i, err)
		}
	}
	if _, err := cli.SubmitQueryAsync(&query.Query{ID: 1, GroupBy: -1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitQueryAsync after Close = %v, want ErrClosed", err)
	}
}

// TestSubmitQueryMidFlightDrop drops the connection while a query response
// is outstanding. Without reconnection the async channel must deliver an
// error promptly; with reconnection the retry path must produce the
// partial transparently.
func TestSubmitQueryMidFlightDrop(t *testing.T) {
	srv, _, sch := startServer(t)
	calls := sch.MustAttrIndex("calls_today_count")
	q := &query.Query{ID: 1, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}

	t.Run("fail-stop", func(t *testing.T) {
		plan := NewFaultPlan()
		// Slow the response read so the drop happens mid-flight.
		plan.SetReadDelay(30 * time.Millisecond)
		cli, err := DialConfig(srv.Addr(), sch, ClientConfig{
			DisableReconnect: true, CallTimeout: 5 * time.Second, Dialer: plan.Dialer(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		ch, err := cli.SubmitQueryAsync(q)
		if err != nil {
			t.Fatal(err)
		}
		plan.ResetAll()
		select {
		case r := <-ch:
			if r.Err == nil {
				t.Fatal("query survived a dropped connection without reconnect")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("async query channel hung after connection drop")
		}
		// The client is fail-stop now.
		if _, _, _, err := cli.Get(1); err == nil {
			t.Fatal("Get succeeded after drop with reconnect disabled")
		}
	})

	t.Run("reconnect-retry", func(t *testing.T) {
		plan := NewFaultPlan()
		plan.SetReadDelay(30 * time.Millisecond)
		cli, err := DialConfig(srv.Addr(), sch, ClientConfig{
			CallTimeout: 5 * time.Second, MaxRetries: 3,
			BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond,
			Dialer: plan.Dialer(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		ch, err := cli.SubmitQueryAsync(q)
		if err != nil {
			t.Fatal(err)
		}
		plan.ResetAll()
		plan.Heal()
		select {
		case r := <-ch:
			if r.Err != nil {
				t.Fatalf("query not retried across reconnect: %v", r.Err)
			}
			if r.Partial.QueryID != q.ID {
				t.Fatalf("partial for query %d, want %d", r.Partial.QueryID, q.ID)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("retried query never completed")
		}
		if cli.Reconnects() == 0 {
			t.Fatal("client never redialed")
		}
	})
}

// TestFlushRacesClose closes the client while FlushEvents calls are in
// flight from other goroutines: no call may hang, and post-Close flushes
// must fail with ErrClosed.
func TestFlushRacesClose(t *testing.T) {
	srv, _, sch := startServer(t)
	for round := 0; round < 5; round++ {
		cli, err := Dial(srv.Addr(), sch)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					for i := 0; i < 8; i++ {
						ev := event.Event{Caller: uint64(i + 1), Timestamp: int64(i + 1), Duration: 1, Cost: 1}
						if err := cli.ProcessEventAsync(ev); err != nil {
							return
						}
					}
					if err := cli.FlushEvents(); err != nil {
						if !errors.Is(err, ErrClosed) && !retriable(err) {
							t.Errorf("flush racing close: unexpected error %v", err)
						}
						return
					}
				}
			}()
		}
		time.Sleep(5 * time.Millisecond)
		cli.Close()
		doneCh := make(chan struct{})
		go func() { wg.Wait(); close(doneCh) }()
		select {
		case <-doneCh:
		case <-time.After(5 * time.Second):
			t.Fatal("flush goroutines hung after Close")
		}
		if err := cli.FlushEvents(); !errors.Is(err, ErrClosed) {
			t.Fatalf("flush after Close = %v, want ErrClosed", err)
		}
	}
}

// TestTypedErrorsAcrossTheWire: well-known storage errors survive as typed
// error-code frames, not string matches.
func TestTypedErrorsAcrossTheWire(t *testing.T) {
	srv, node, sch := startServer(t)
	cli, err := Dial(srv.Addr(), sch)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	rec := sch.NewRecord(5)
	if err := cli.Put(rec); err != nil {
		t.Fatal(err)
	}
	err = cli.ConditionalPut(rec, 999)
	if !errors.Is(err, core.ErrVersionConflict) {
		t.Fatalf("stale ConditionalPut = %v, want ErrVersionConflict via error-code frame", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != codeVersionConflict {
		t.Fatalf("not a typed RemoteError: %#v", err)
	}
	// A stopped node is a typed remote error too (and is NOT retried:
	// the node answered, so the transport is fine).
	node.Stop()
	if _, _, _, err := cli.Get(5); !errors.Is(err, core.ErrStopped) {
		t.Fatalf("Get on stopped node = %v, want ErrStopped across the wire", err)
	}
}

// TestPipelinedQueriesOneConnection verifies the asynchronous protocol:
// many queries in flight on one connection, answered out of submission
// lockstep.
func TestPipelinedQueriesOneConnection(t *testing.T) {
	srv, _, sch := startServer(t)
	cli, err := Dial(srv.Addr(), sch)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 50; i++ {
		ev := event.Event{Caller: uint64(i + 1), Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := cli.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	calls := sch.MustAttrIndex("calls_today_count")
	const inflight = 32
	chans := make([]<-chan core.QueryResponse, inflight)
	for i := 0; i < inflight; i++ {
		q := &query.Query{ID: uint64(i + 1), Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
		ch, err := cli.SubmitQueryAsync(q)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		r := <-ch
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if r.Partial.QueryID != uint64(i+1) {
			t.Fatalf("query %d got partial for %d", i+1, r.Partial.QueryID)
		}
	}
}
