package netproto

import (
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/repl"
	"repro/internal/schema"
)

// startReplPair boots a durable primary (own WAL) served with replication
// enabled, plus a client for control RPCs.
func startReplPair(t *testing.T, cfg ServerConfig) (*Client, *Server, *core.StorageNode, *archive.Archive, *schema.Schema) {
	t.Helper()
	sch := netSchema(t)
	arch, err := archive.Open(t.TempDir(), archive.Options{SegmentEvents: 32})
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewNode(core.Config{
		Schema: sch, Partitions: 2, BucketSize: 32,
		Archive: arch, IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.ReplArchive = arch
	if cfg.ReplHeartbeat == 0 {
		cfg.ReplHeartbeat = 5 * time.Millisecond
	}
	srv, err := ServeWithConfig("127.0.0.1:0", node, sch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr(), sch)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
		node.Stop()
		arch.Close()
	})
	return cli, srv, node, arch, sch
}

func replWait(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicaStreamOverTCP ships the primary's WAL over the wire into a
// follower node: subscribe-from-LSN, batched log records, and heartbeats
// that keep the frontier moving while the primary is idle.
func TestReplicaStreamOverTCP(t *testing.T) {
	cli, srv, _, _, _ := startReplPair(t, ServerConfig{ReplBatch: 16})

	fnode, err := core.NewNode(core.Config{
		Schema: netSchema(t), Partitions: 2, BucketSize: 32,
		IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fnode.Stop()

	rc, err := DialReplica(srv.Addr(), 0, ReplicaConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rc.StartLSN() != 0 {
		t.Fatalf("subscription started at %d, want 0", rc.StartLSN())
	}
	f := repl.NewFollower(fnode, 0, repl.FollowerConfig{})
	if err := f.Start(rc); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	const total = 300
	for i := 0; i < total; i++ {
		ev := event.Event{Caller: uint64(i%20) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := cli.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	replWait(t, "follower catch-up over TCP", func() bool {
		return f.AppliedLSN() == total && f.Lag() == 0
	})
	if err := fnode.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	if got := fnode.Stats().EventsProcessed; got != total {
		t.Fatalf("follower processed %d events, want %d", got, total)
	}
	// Idle heartbeats keep arriving: the frontier stays observed, lag 0.
	time.Sleep(20 * time.Millisecond)
	if f.Err() != nil {
		t.Fatalf("tail loop died on idle stream: %v", f.Err())
	}
}

// TestReplicaResubscribeFromWatermark: a dropped stream redials from the
// applied watermark and resumes without loss or double-apply.
func TestReplicaResubscribeFromWatermark(t *testing.T) {
	cli, srv, _, _, _ := startReplPair(t, ServerConfig{})

	fnode, err := core.NewNode(core.Config{
		Schema: netSchema(t), Partitions: 2, BucketSize: 32,
		IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fnode.Stop()

	rc, err := DialReplica(srv.Addr(), 0, ReplicaConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f := repl.NewFollower(fnode, 0, repl.FollowerConfig{
		ReopenBackoff: time.Millisecond,
		Reopen: func(fromLSN uint64) (repl.Source, error) {
			return DialReplica(srv.Addr(), fromLSN, ReplicaConfig{})
		},
	})
	if err := f.Start(rc); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	const half, total = 120, 240
	send := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ev := event.Event{Caller: uint64(i%20) + 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
			if err := cli.ProcessEventAsync(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := cli.FlushEvents(); err != nil {
			t.Fatal(err)
		}
	}
	send(0, half)
	replWait(t, "first half", func() bool { return f.AppliedLSN() == half })

	rc.Close() // drop the wire; the follower must redial from its watermark
	send(half, total)
	replWait(t, "catch-up after redial", func() bool { return f.AppliedLSN() == total })
	if err := fnode.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	if got := fnode.Stats().EventsProcessed; got != total {
		t.Fatalf("follower processed %d events, want %d (exactly once)", got, total)
	}
}

// TestReplicaSubscribeClampsToRetentionFloor: subscribing below the
// primary's GC'd retention floor clamps the stream up to the floor, and the
// follower surfaces the jump as a typed gap instead of silently skipping.
func TestReplicaSubscribeClampsToRetentionFloor(t *testing.T) {
	cli, srv, _, arch, _ := startReplPair(t, ServerConfig{})
	for i := 0; i < 100; i++ {
		ev := event.Event{Caller: 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := cli.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	if _, err := arch.TruncateBelow(64); err != nil {
		t.Fatal(err)
	}
	floor := arch.FirstLSN()
	if floor == 0 {
		t.Fatal("truncation removed nothing; test needs a nonzero floor")
	}
	rc, err := DialReplica(srv.Addr(), 0, ReplicaConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if rc.StartLSN() != floor {
		t.Fatalf("subscription started at %d, want clamp to floor %d", rc.StartLSN(), floor)
	}
	b, err := rc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b.FirstLSN != floor {
		t.Fatalf("first batch at lsn %d, want %d", b.FirstLSN, floor)
	}
}

// TestReplProbeAndPromoteRPCs: the lag probe reports the primary's frontier
// and the promote RPC runs the server's OnPromote hook.
func TestReplProbeAndPromoteRPCs(t *testing.T) {
	var promoted bool
	cli, _, _, arch, _ := startReplPair(t, ServerConfig{
		OnPromote: func() (uint64, error) {
			promoted = true
			return 77, nil
		},
	})
	for i := 0; i < 50; i++ {
		ev := event.Event{Caller: 1, Timestamp: int64(i + 1), Duration: 5, Cost: 1}
		if err := cli.ProcessEventAsync(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.FlushEvents(); err != nil {
		t.Fatal(err)
	}
	frontier, err := cli.ReplProbe()
	if err != nil {
		t.Fatal(err)
	}
	if want := arch.NextLSN(); frontier != want {
		t.Fatalf("probe frontier = %d, want %d", frontier, want)
	}
	sealed, err := cli.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if !promoted || sealed != 77 {
		t.Fatalf("promote RPC: hook=%v sealed=%d", promoted, sealed)
	}
}

// TestReplRPCsWithoutArchive: a server without a WAL refuses replication
// cleanly instead of hanging subscribers.
func TestReplRPCsWithoutArchive(t *testing.T) {
	sch := netSchema(t)
	node, err := core.NewNode(core.Config{
		Schema: sch, Partitions: 2, BucketSize: 32,
		IdleMergePause: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", node, sch)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		node.Stop()
	})
	if _, err := DialReplica(srv.Addr(), 0, ReplicaConfig{}); err == nil {
		t.Fatal("subscribe against a WAL-less server succeeded")
	}
	cli, err := Dial(srv.Addr(), sch)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Promote(); err == nil {
		t.Fatal("promote against a server with no OnPromote hook succeeded")
	}
}
