// Package netproto implements AIM's network protocol (§4.2): a
// length-framed binary TCP protocol carrying the storage interface —
// synchronous Get/Put/event traffic from ESP nodes and asynchronous query
// submission from RTA nodes. The paper runs the same logical protocol over
// Infiniband; see DESIGN.md for the substitution note.
//
// Frame layout (little endian):
//
//	u32 length   // bytes after this field
//	u8  type     // message type
//	u64 reqID    // request correlation id (0 for fire-and-forget)
//	...body      // type-specific payload
//
// Responses carry a status byte: 0 = ok (payload follows), 1 = error (u8
// error code, then UTF-8 message). Error codes let well-known storage
// errors (version conflict, stopped node) survive the wire as typed errors
// instead of string matches.
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/repl"
)

// Message types.
const (
	msgEvent     uint8 = iota + 1 // body: 64 B event; fire-and-forget
	msgEventSync                  // body: 64 B event; resp: i32 firings
	msgFlush                      // resp: empty
	msgGet                        // body: u64 entity; resp: u8 found, u64 version, record
	msgPut                        // body: record; resp: empty
	msgCondPut                    // body: u64 version, record; resp: empty
	msgQuery                      // body: encoded query; resp: encoded partial
	msgResp                       // response frame
	// msgEventBatch must stay above msgResp: the metrics latency arrays are
	// sized [msgResp] and indexed by the synchronous types below it.
	msgEventBatch // body: u32 count, count x 64 B events; fire-and-forget
	// Replication frames (WAL log shipping; DESIGN.md §12). Like
	// msgEventBatch they must stay above msgResp.
	msgReplSubscribe // body: u64 fromLSN; resp: u64 startLSN, u64 frontier; the conn then streams msgReplBatch frames
	msgReplBatch     // server→subscriber push: u64 firstLSN, u64 frontier, i64 origin unix-nanos, u32 count, count x 64 B events
	msgReplProbe     // lag/heartbeat probe; resp: u64 frontier (the primary's next LSN)
	msgReplPromote   // seal a follower's replay at its watermark; resp: u64 sealed LSN
	// msgOverload is a server→client push: fire-and-forget ingest on this
	// connection was rejected by admission control. Body: u64 retry-after
	// nanos, u64 events rejected so far on this connection. The client
	// honors it by failing ingest locally (typed, synchronous) for a
	// jittered retry-after window, so its caller's spill/retry machinery
	// engages instead of more doomed frames being shipped.
	msgOverload
)

// maxFrame bounds a frame to keep a malformed peer from allocating
// unboundedly. Partials over huge group counts dominate; 64 MiB is ample.
const maxFrame = 64 << 20

// statusOK / statusErr lead every response body.
const (
	statusOK  = 0
	statusErr = 1
)

// Wire error codes (the byte after statusErr). codeGeneric carries only the
// message; the other codes map onto process-local sentinel errors on the
// client side so errors.Is works across the wire.
const (
	codeGeneric         uint8 = 0
	codeVersionConflict uint8 = 1
	codeStopped         uint8 = 2
	codeOverloaded      uint8 = 3 // body carries u64 retry-after nanos before the message
	codeDeadline        uint8 = 4
)

// RemoteError is an application-level error reported by the server. Its
// presence means the node is alive and responded — as opposed to transport
// errors (timeouts, resets), which the client may retry.
type RemoteError struct {
	// Code is the wire error code.
	Code uint8
	// Msg is the server-side error text.
	Msg string
	// RetryAfter is the server's backoff hint (codeOverloaded only).
	RetryAfter time.Duration
}

func (e *RemoteError) Error() string { return "netproto: remote: " + e.Msg }

// Is maps well-known codes back onto their sentinel errors.
func (e *RemoteError) Is(target error) bool {
	switch e.Code {
	case codeVersionConflict:
		return target == core.ErrVersionConflict
	case codeStopped:
		return target == core.ErrStopped
	case codeOverloaded:
		return target == core.ErrOverloaded
	case codeDeadline:
		return target == core.ErrDeadline
	}
	return false
}

// As lets errors.As extract a *core.OverloadedError from a remote overload
// rejection, so core.RetryAfterHint works identically for local and remote
// storage handles.
func (e *RemoteError) As(target any) bool {
	oe, ok := target.(**core.OverloadedError)
	if !ok || e.Code != codeOverloaded {
		return false
	}
	*oe = &core.OverloadedError{RetryAfter: e.RetryAfter, Reason: "remote"}
	return true
}

// errCode classifies a server-side error for the wire.
func errCode(err error) uint8 {
	switch {
	case errors.Is(err, core.ErrVersionConflict):
		return codeVersionConflict
	case errors.Is(err, core.ErrStopped):
		return codeStopped
	case errors.Is(err, core.ErrOverloaded):
		return codeOverloaded
	case errors.Is(err, core.ErrDeadline):
		return codeDeadline
	}
	return codeGeneric
}

type frame struct {
	typ   uint8
	reqID uint64
	body  []byte
}

// writeFrame sends one frame; the caller must serialize writes.
func writeFrame(w io.Writer, f frame) error {
	var hdr [13]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(9+len(f.body)))
	hdr[4] = f.typ
	binary.LittleEndian.PutUint64(hdr[5:], f.reqID)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.body) > 0 {
		if _, err := w.Write(f.body); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame.
func readFrame(r io.Reader) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return frame{}, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 9 || n > maxFrame {
		return frame{}, fmt.Errorf("netproto: invalid frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return frame{}, err
	}
	return frame{
		typ:   buf[0],
		reqID: binary.LittleEndian.Uint64(buf[1:9]),
		body:  buf[9:],
	}, nil
}

// encodeEventBatch packs events into a msgEventBatch body: u32 count, then
// count fixed-size wire events back to back.
func encodeEventBatch(evs []event.Event) []byte {
	body := make([]byte, 4+len(evs)*event.WireSize)
	binary.LittleEndian.PutUint32(body, uint32(len(evs)))
	for i := range evs {
		evs[i].Encode(body[4+i*event.WireSize:])
	}
	return body
}

// decodeEventBatch unpacks a msgEventBatch body into a fresh slice.
func decodeEventBatch(body []byte) ([]event.Event, error) {
	if len(body) < 4 {
		return nil, errors.New("netproto: short event batch frame")
	}
	n := int(binary.LittleEndian.Uint32(body))
	if n < 1 || len(body) != 4+n*event.WireSize {
		return nil, fmt.Errorf("netproto: event batch count %d does not match body length %d", n, len(body))
	}
	evs := make([]event.Event, n)
	for i := range evs {
		if err := evs[i].Decode(body[4+i*event.WireSize:]); err != nil {
			return nil, err
		}
	}
	return evs, nil
}

// replBatchHdr is the fixed prefix of a msgReplBatch body: firstLSN,
// frontier, origin nanos, event count.
const replBatchHdr = 8 + 8 + 8 + 4

// encodeReplBatch packs one shipped log chunk into a msgReplBatch body.
func encodeReplBatch(b repl.Batch) []byte {
	body := make([]byte, replBatchHdr+len(b.Events)*event.WireSize)
	binary.LittleEndian.PutUint64(body[0:], b.FirstLSN)
	binary.LittleEndian.PutUint64(body[8:], b.Frontier)
	binary.LittleEndian.PutUint64(body[16:], uint64(b.Origin.UnixNano()))
	binary.LittleEndian.PutUint32(body[24:], uint32(len(b.Events)))
	for i := range b.Events {
		b.Events[i].Encode(body[replBatchHdr+i*event.WireSize:])
	}
	return body
}

// decodeReplBatch unpacks a msgReplBatch body.
func decodeReplBatch(body []byte) (repl.Batch, error) {
	if len(body) < replBatchHdr {
		return repl.Batch{}, errors.New("netproto: short repl batch frame")
	}
	n := int(binary.LittleEndian.Uint32(body[24:]))
	if n < 0 || len(body) != replBatchHdr+n*event.WireSize {
		return repl.Batch{}, fmt.Errorf("netproto: repl batch count %d does not match body length %d", n, len(body))
	}
	b := repl.Batch{
		FirstLSN: binary.LittleEndian.Uint64(body[0:]),
		Frontier: binary.LittleEndian.Uint64(body[8:]),
		Origin:   time.Unix(0, int64(binary.LittleEndian.Uint64(body[16:]))),
	}
	if n > 0 {
		b.Events = make([]event.Event, n)
		for i := range b.Events {
			if err := b.Events[i].Decode(body[replBatchHdr+i*event.WireSize:]); err != nil {
				return repl.Batch{}, err
			}
		}
	}
	return b, nil
}

// okBody prefixes a payload with the ok status.
func okBody(payload []byte) []byte {
	out := make([]byte, 1+len(payload))
	out[0] = statusOK
	copy(out[1:], payload)
	return out
}

// errBody encodes an error response: status byte, error code, message.
// codeOverloaded carries the retry-after hint (u64 nanos) before the
// message so the typed rejection survives the wire intact.
func errBody(err error) []byte {
	msg := err.Error()
	code := errCode(err)
	if code == codeOverloaded {
		retry, _ := core.RetryAfterHint(err)
		out := make([]byte, 10+len(msg))
		out[0] = statusErr
		out[1] = code
		binary.LittleEndian.PutUint64(out[2:], uint64(retry))
		copy(out[10:], msg)
		return out
	}
	out := make([]byte, 2+len(msg))
	out[0] = statusErr
	out[1] = code
	copy(out[2:], msg)
	return out
}

// splitResp separates a response body into payload or a typed RemoteError.
func splitResp(body []byte) ([]byte, error) {
	if len(body) < 1 {
		return nil, fmt.Errorf("netproto: empty response body")
	}
	if body[0] == statusErr {
		if len(body) < 2 {
			return nil, &RemoteError{Code: codeGeneric, Msg: "truncated error frame"}
		}
		if body[1] == codeOverloaded && len(body) >= 10 {
			return nil, &RemoteError{
				Code:       codeOverloaded,
				RetryAfter: time.Duration(binary.LittleEndian.Uint64(body[2:])),
				Msg:        string(body[10:]),
			}
		}
		return nil, &RemoteError{Code: body[1], Msg: string(body[2:])}
	}
	return body[1:], nil
}
