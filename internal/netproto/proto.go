// Package netproto implements AIM's network protocol (§4.2): a
// length-framed binary TCP protocol carrying the storage interface —
// synchronous Get/Put/event traffic from ESP nodes and asynchronous query
// submission from RTA nodes. The paper runs the same logical protocol over
// Infiniband; see DESIGN.md for the substitution note.
//
// Frame layout (little endian):
//
//	u32 length   // bytes after this field
//	u8  type     // message type
//	u64 reqID    // request correlation id (0 for fire-and-forget)
//	...body      // type-specific payload
//
// Responses carry a status byte: 0 = ok (payload follows), 1 = error (UTF-8
// message follows).
package netproto

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Message types.
const (
	msgEvent     uint8 = iota + 1 // body: 64 B event; fire-and-forget
	msgEventSync                  // body: 64 B event; resp: i32 firings
	msgFlush                      // resp: empty
	msgGet                        // body: u64 entity; resp: u8 found, u64 version, record
	msgPut                        // body: record; resp: empty
	msgCondPut                    // body: u64 version, record; resp: empty
	msgQuery                      // body: encoded query; resp: encoded partial
	msgResp                       // response frame
)

// maxFrame bounds a frame to keep a malformed peer from allocating
// unboundedly. Partials over huge group counts dominate; 64 MiB is ample.
const maxFrame = 64 << 20

// statusOK / statusErr lead every response body.
const (
	statusOK  = 0
	statusErr = 1
)

type frame struct {
	typ   uint8
	reqID uint64
	body  []byte
}

// writeFrame sends one frame; the caller must serialize writes.
func writeFrame(w io.Writer, f frame) error {
	var hdr [13]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(9+len(f.body)))
	hdr[4] = f.typ
	binary.LittleEndian.PutUint64(hdr[5:], f.reqID)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.body) > 0 {
		if _, err := w.Write(f.body); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame.
func readFrame(r io.Reader) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return frame{}, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 9 || n > maxFrame {
		return frame{}, fmt.Errorf("netproto: invalid frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return frame{}, err
	}
	return frame{
		typ:   buf[0],
		reqID: binary.LittleEndian.Uint64(buf[1:9]),
		body:  buf[9:],
	}, nil
}

// okBody prefixes a payload with the ok status.
func okBody(payload []byte) []byte {
	out := make([]byte, 1+len(payload))
	out[0] = statusOK
	copy(out[1:], payload)
	return out
}

// errBody encodes an error response.
func errBody(err error) []byte {
	msg := err.Error()
	out := make([]byte, 1+len(msg))
	out[0] = statusErr
	copy(out[1:], msg)
	return out
}

// splitResp separates a response body into payload or error.
func splitResp(body []byte) ([]byte, error) {
	if len(body) < 1 {
		return nil, fmt.Errorf("netproto: empty response body")
	}
	if body[0] == statusErr {
		return nil, fmt.Errorf("netproto: remote: %s", string(body[1:]))
	}
	return body[1:], nil
}
