package netproto

import (
	"sync"
	"time"

	"repro/internal/event"
)

// coalescer is the client-side event batching buffer (DESIGN.md §10):
// ProcessEventAsync appends to buf, and the batch ships as one
// msgEventBatch frame when it reaches max events, when the linger timer
// fires, or when any synchronous call needs the connection (preserving
// frame order = call order).
//
// Failure semantics mirror the per-event path. A failed flush means the
// frame never took effect server-side (a clean write error sends nothing; a
// torn write kills the connection and the server discards the partial
// frame), so the batch stays buffered for the next drain attempt and the
// error is recorded in pending. The NEXT ProcessEventAsync surfaces pending
// instead of buffering its event — that event is therefore owned by the
// caller again, which lets the cluster layer spill it exactly like a failed
// per-event send.
type coalescer struct {
	mu      sync.Mutex
	buf     []event.Event
	max     int
	linger  time.Duration
	timer   *time.Timer // fires lingerFlush; created on first use
	armed   bool        // a lingerFlush fire is scheduled
	stopped bool        // Close ran; never (re-)arm again
	pending error       // sticky first delivery failure, see above
}

func newCoalescer(max int, linger time.Duration) *coalescer {
	return &coalescer{buf: make([]event.Event, 0, max), max: max, linger: linger}
}

// armLocked schedules a linger flush unless one is already pending (or
// lingering is off, or the client closed). Every path that leaves the buffer
// non-empty must call it — including failed flushes, or a quiet stream would
// strand the buffered events with a dead timer. Caller holds co.mu.
func (c *Client) armLocked() {
	co := c.co
	if co.linger <= 0 || co.armed || co.stopped {
		return
	}
	co.armed = true
	if co.timer == nil {
		co.timer = time.AfterFunc(co.linger, c.lingerFlush)
	} else {
		co.timer.Reset(co.linger)
	}
}

// bufferEvent enqueues ev, flushing when the batch is full.
func (c *Client) bufferEvent(ev event.Event) error {
	co := c.co
	co.mu.Lock()
	defer co.mu.Unlock()
	if err := co.pending; err != nil {
		co.pending = nil
		return err
	}
	if len(co.buf) >= co.max {
		// Still full from a failed flush: retry now, and reject this event
		// if the server is still unreachable rather than grow unboundedly.
		if err := c.flushEventsLocked(); err != nil {
			co.pending = nil
			// The stranded batch keeps retrying on the linger cadence.
			c.armLocked()
			return err
		}
	}
	co.buf = append(co.buf, ev)
	if len(co.buf) >= co.max {
		// Size-triggered flush. On failure the batch (including ev, which
		// the buffer now owns) is kept for redelivery and the error is
		// surfaced by the next send.
		_ = c.flushEventsLocked()
	}
	if len(co.buf) > 0 {
		c.armLocked()
	}
	return nil
}

// lingerFlush drains a size-incomplete batch when the linger deadline hits.
// A failed flush re-arms the timer: the buffer is still non-empty, and on a
// quiet stream no other trigger would retry it.
func (c *Client) lingerFlush() {
	co := c.co
	co.mu.Lock()
	co.armed = false
	if len(co.buf) > 0 {
		if c.flushEventsLocked() != nil {
			c.armLocked()
		}
	}
	co.mu.Unlock()
}

// drainEvents force-flushes the buffer and reports any undelivered batch.
func (c *Client) drainEvents() error {
	if c.co == nil {
		return nil
	}
	co := c.co
	co.mu.Lock()
	defer co.mu.Unlock()
	if len(co.buf) == 0 {
		err := co.pending
		co.pending = nil
		return err
	}
	err := c.flushEventsLocked()
	co.pending = nil
	return err
}

// drainForOrder best-effort-flushes buffered events before a synchronous
// call so the server sees frames in call order (read-your-writes on one
// connection). A failure stays in pending for the event path to surface.
func (c *Client) drainForOrder() {
	if c.co == nil {
		return
	}
	c.co.mu.Lock()
	if len(c.co.buf) > 0 {
		_ = c.flushEventsLocked()
	}
	c.co.mu.Unlock()
}

// flushEventsLocked ships the buffered batch as one frame. Caller holds
// co.mu. On failure the events stay buffered and pending records the cause.
func (c *Client) flushEventsLocked() error {
	co := c.co
	conn, gen, err := c.ensureConn()
	if err != nil {
		co.pending = err
		return err
	}
	if err := c.send(conn, frame{typ: msgEventBatch, body: encodeEventBatch(co.buf)}); err != nil {
		c.connLost(conn, gen, err)
		co.pending = err
		return err
	}
	c.cfg.Metrics.eventsSent(len(co.buf))
	co.buf = co.buf[:0]
	co.pending = nil
	return nil
}
