package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/schema"
)

// ErrClosed is returned for operations against a Close()d client.
var ErrClosed = errors.New("netproto: client closed")

// ErrTimeout marks an RPC that exceeded ClientConfig.CallTimeout. The
// request is abandoned; a late response is discarded by the read loop.
var ErrTimeout = errors.New("netproto: call timed out")

// Client is a TCP storage handle implementing core.Storage, so ESP routers
// and RTA coordinators can drive remote storage servers exactly like
// in-process ones. Unless DisableReconnect is set it transparently redials
// after connection loss (exponential backoff, full jitter) and retries
// idempotent operations (Get, SubmitQuery, FlushEvents) up to MaxRetries
// times; every call is bounded by CallTimeout.
type Client struct {
	addr string
	sch  *schema.Schema
	cfg  ClientConfig

	writeMu sync.Mutex // serializes frame writes on the live conn

	co *coalescer // event batching buffer; nil when EventBatch <= 1

	// rejectUntil (unix nanos) is the end of the local ingest-rejection
	// window opened by a server msgOverload push: until then, fire-and-
	// forget ingest fails synchronously with a typed overload error so the
	// caller's spill/retry machinery engages instead of shipping frames the
	// server would drop. 0 = no window.
	rejectUntil atomic.Int64

	redialMu sync.Mutex // single-flights reconnect attempts

	mu         sync.Mutex
	conn       net.Conn
	gen        uint64 // connection generation, bumped per (re)dial
	pending    map[uint64]*pendingCall
	nextID     uint64
	closed     bool
	lastErr    error     // why the last conn died / last dial failed
	dialFails  int       // consecutive failed dials (backoff exponent)
	redialAt   time.Time // earliest next dial attempt
	reconnects uint64    // successful redials (observability)
}

// pendingCall is one in-flight request. Exactly one result is ever
// delivered to ch (buffered), by whichever of readLoop / connLost / Close
// removes the entry from the pending map first.
type pendingCall struct {
	ch  chan callResult
	gen uint64
}

type callResult struct {
	f   frame
	err error
}

var _ core.Storage = (*Client)(nil)

// Dial connects to a storage server with the default fault-tolerance
// configuration. The client must use the same schema as the server.
func Dial(addr string, sch *schema.Schema) (*Client, error) {
	return DialConfig(addr, sch, ClientConfig{})
}

// DialConfig connects with an explicit ClientConfig. The initial dial is
// eager: an unreachable server fails here, not on first use.
func DialConfig(addr string, sch *schema.Schema, cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	conn, err := cfg.Dialer(addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		addr:    addr,
		sch:     sch,
		cfg:     cfg,
		conn:    conn,
		gen:     1,
		pending: make(map[uint64]*pendingCall),
	}
	if cfg.EventBatch > 1 {
		c.co = newCoalescer(cfg.EventBatch, cfg.EventLinger)
	}
	go c.readLoop(conn, 1)
	return c, nil
}

// Reconnects reports how many times the client successfully redialed.
func (c *Client) Reconnects() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Close shuts the client down: the connection is closed and every queued
// or pending request fails with ErrClosed immediately and deterministically
// (callers racing Close can no longer register afterwards).
func (c *Client) Close() error {
	if c.co != nil {
		// Best-effort final drain so coalesced events are not silently
		// dropped, then stop the linger timer for good (stopped bars the
		// failure-retry paths from re-arming it against a closed client).
		_ = c.drainEvents()
		c.co.mu.Lock()
		c.co.stopped = true
		if c.co.timer != nil {
			c.co.timer.Stop()
		}
		c.co.mu.Unlock()
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	failed := c.takePendingLocked(c.gen)
	c.mu.Unlock()
	for _, pc := range failed {
		pc.ch <- callResult{err: ErrClosed}
	}
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// takePendingLocked removes and returns every pending call registered on
// generation <= gen. Caller holds c.mu.
func (c *Client) takePendingLocked(gen uint64) []*pendingCall {
	var out []*pendingCall
	for id, pc := range c.pending {
		if pc.gen <= gen {
			delete(c.pending, id)
			out = append(out, pc)
		}
	}
	return out
}

func (c *Client) readLoop(conn net.Conn, gen uint64) {
	for {
		f, err := readFrame(conn)
		if err != nil {
			c.connLost(conn, gen, err)
			return
		}
		if f.typ == msgOverload {
			c.noteOverloadPush(f.body)
			continue
		}
		if f.typ != msgResp {
			continue
		}
		c.mu.Lock()
		pc := c.pending[f.reqID]
		if pc != nil {
			delete(c.pending, f.reqID)
		}
		c.mu.Unlock()
		if pc != nil {
			pc.ch <- callResult{f: f}
		}
	}
}

// noteOverloadPush opens (or extends) the local ingest-rejection window
// from a server msgOverload push. The window is the server's retry-after
// hint plus up to 50% jitter, so a fleet of clients backing off together
// does not re-converge on the server in one synchronized wave.
func (c *Client) noteOverloadPush(body []byte) {
	if len(body) < 8 {
		return
	}
	retry := time.Duration(binary.LittleEndian.Uint64(body))
	if retry <= 0 {
		retry = time.Millisecond
	}
	window := retry + rand.N(retry/2+1)
	until := time.Now().Add(window).UnixNano()
	for {
		cur := c.rejectUntil.Load()
		if cur >= until || c.rejectUntil.CompareAndSwap(cur, until) {
			return
		}
	}
}

// ingestRejection returns the typed error for an open rejection window, or
// nil when ingest may proceed.
func (c *Client) ingestRejection() error {
	until := c.rejectUntil.Load()
	if until == 0 {
		return nil
	}
	remain := until - time.Now().UnixNano()
	if remain <= 0 {
		return nil
	}
	return &core.OverloadedError{RetryAfter: time.Duration(remain), Reason: "remote"}
}

// connLost tears down one connection generation: the conn is closed, and
// every request pending on it fails now rather than blocking forever.
func (c *Client) connLost(conn net.Conn, gen uint64, cause error) {
	conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
		c.lastErr = cause
	}
	failed := c.takePendingLocked(gen)
	c.mu.Unlock()
	err := fmt.Errorf("netproto: connection lost: %w", cause)
	for _, pc := range failed {
		pc.ch <- callResult{err: err}
	}
}

// ensureConn returns the live connection, redialing (with single-flight
// and jittered exponential backoff) if the previous one died.
func (c *Client) ensureConn() (net.Conn, uint64, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, 0, ErrClosed
	}
	if c.conn != nil {
		conn, gen := c.conn, c.gen
		c.mu.Unlock()
		return conn, gen, nil
	}
	c.mu.Unlock()

	c.redialMu.Lock()
	defer c.redialMu.Unlock()
	// Re-check: another caller may have redialed while we waited.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, 0, ErrClosed
	}
	if c.conn != nil {
		conn, gen := c.conn, c.gen
		c.mu.Unlock()
		return conn, gen, nil
	}
	if c.cfg.DisableReconnect {
		err := c.lastErr
		c.mu.Unlock()
		if err != nil {
			return nil, 0, fmt.Errorf("netproto: connection closed: %w", err)
		}
		return nil, 0, errors.New("netproto: connection closed")
	}
	wait := time.Until(c.redialAt)
	c.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}

	conn, err := c.cfg.Dialer(c.addr, c.cfg.DialTimeout)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		if conn != nil {
			conn.Close()
		}
		return nil, 0, ErrClosed
	}
	if err != nil {
		c.dialFails++
		c.redialAt = time.Now().Add(c.cfg.backoffFor(c.dialFails))
		c.lastErr = err
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("netproto: reconnect %s: %w", c.addr, err)
	}
	c.dialFails = 0
	c.redialAt = time.Time{}
	c.reconnects++
	c.cfg.Metrics.reconnected()
	c.conn = conn
	c.gen++
	gen := c.gen
	c.mu.Unlock()
	go c.readLoop(conn, gen)
	return conn, gen, nil
}

// register allocates a request id and its response slot on generation gen.
func (c *Client) register(gen uint64) (uint64, *pendingCall, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, nil, ErrClosed
	}
	if c.conn == nil || c.gen != gen {
		return 0, nil, errors.New("netproto: connection lost during register")
	}
	c.nextID++
	id := c.nextID
	pc := &pendingCall{ch: make(chan callResult, 1), gen: gen}
	c.pending[id] = pc
	return id, pc, nil
}

// unregister drops a request that never made it onto the wire.
func (c *Client) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

func (c *Client) send(conn net.Conn, f frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return writeFrame(conn, f)
}

// await blocks for the response to request id, bounded by CallTimeout.
// On timeout the pending entry is removed so the slot cannot leak; if the
// result was already in flight it is consumed instead.
func (c *Client) await(id uint64, pc *pendingCall) (frame, error) {
	var timeCh <-chan time.Time
	if c.cfg.CallTimeout > 0 {
		t := time.NewTimer(c.cfg.CallTimeout)
		defer t.Stop()
		timeCh = t.C
	}
	select {
	case r := <-pc.ch:
		return r.f, r.err
	case <-timeCh:
		c.mu.Lock()
		_, still := c.pending[id]
		if still {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if !still {
			// A deliverer removed the entry first; its result is (or is
			// about to be) in the buffered channel.
			r := <-pc.ch
			return r.f, r.err
		}
		return frame{}, fmt.Errorf("%w after %v", ErrTimeout, c.cfg.CallTimeout)
	}
}

// callOnce performs one request/response attempt. Transport-level failures
// (send error, connection loss, timeout) are retriable; RemoteErrors mean
// the server is alive and are final.
func (c *Client) callOnce(typ uint8, body []byte) ([]byte, error) {
	conn, gen, err := c.ensureConn()
	if err != nil {
		return nil, err
	}
	id, pc, err := c.register(gen)
	if err != nil {
		return nil, err
	}
	if err := c.send(conn, frame{typ: typ, reqID: id, body: body}); err != nil {
		c.unregister(id)
		// A failed write leaves the stream in an unknown state; tear the
		// conn down NOW (not when the read loop notices) so a retry
		// redials instead of burning attempts on a known-dead conn.
		c.connLost(conn, gen, err)
		return nil, err
	}
	f, err := c.await(id, pc)
	if err != nil {
		return nil, err
	}
	return splitResp(f.body)
}

// retriable reports whether err is a transport-level failure worth a fresh
// attempt. Application errors (RemoteError) and ErrClosed are final.
func retriable(err error) bool {
	var re *RemoteError
	return err != nil && !errors.As(err, &re) && !errors.Is(err, ErrClosed)
}

// call runs an RPC; idempotent ops survive transport faults via reconnect
// and bounded retries with backoff.
func (c *Client) call(typ uint8, body []byte, idempotent bool) ([]byte, error) {
	c.drainForOrder()
	t0 := time.Now()
	attempts := 1
	if idempotent && !c.cfg.DisableReconnect {
		attempts += c.cfg.MaxRetries
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.cfg.Metrics.retried()
			time.Sleep(c.cfg.backoffFor(i))
		}
		payload, err := c.callOnce(typ, body)
		if err == nil {
			c.cfg.Metrics.observeCall(typ, t0, nil)
			return payload, nil
		}
		if !retriable(err) {
			c.cfg.Metrics.observeCall(typ, t0, err)
			return nil, err
		}
		lastErr = err
	}
	c.cfg.Metrics.observeCall(typ, t0, lastErr)
	return nil, lastErr
}

// ProcessEventAsync ships an event fire-and-forget (the 64 B CDR frame).
// It is not transparently retried: delivery of a failed write is unknown,
// so replay is left to the cluster layer's spill queue, which owns
// at-least-once semantics for the ESP stream.
func (c *Client) ProcessEventAsync(ev event.Event) error {
	if err := c.ingestRejection(); err != nil {
		return err
	}
	if c.co != nil {
		return c.bufferEvent(ev)
	}
	conn, gen, err := c.ensureConn()
	if err != nil {
		return err
	}
	var buf [event.WireSize]byte
	ev.Encode(buf[:])
	if err := c.send(conn, frame{typ: msgEvent, body: buf[:]}); err != nil {
		c.connLost(conn, gen, err)
		return err
	}
	c.cfg.Metrics.eventsSent(1)
	return nil
}

// ProcessEventBatch ships evs as one fire-and-forget msgEventBatch frame,
// taking ownership of the slice. Like ProcessEventAsync it is not
// transparently retried: delivery of a failed write is unknown, so replay
// belongs to the cluster layer's spill queue.
func (c *Client) ProcessEventBatch(evs []event.Event) error {
	if len(evs) == 0 {
		return nil
	}
	if err := c.ingestRejection(); err != nil {
		return err
	}
	if c.co != nil {
		// Individually coalesced events were submitted first; keep order.
		if err := c.drainEvents(); err != nil {
			return err
		}
	}
	conn, gen, err := c.ensureConn()
	if err != nil {
		return err
	}
	if err := c.send(conn, frame{typ: msgEventBatch, body: encodeEventBatch(evs)}); err != nil {
		c.connLost(conn, gen, err)
		return err
	}
	c.cfg.Metrics.eventsSent(len(evs))
	return nil
}

// ProcessEvent ships an event and waits for its firing count. Not
// idempotent (it mutates the matrix), hence no transparent retry.
func (c *Client) ProcessEvent(ev event.Event) (int, error) {
	var buf [event.WireSize]byte
	ev.Encode(buf[:])
	payload, err := c.call(msgEventSync, buf[:], false)
	if err != nil {
		return 0, err
	}
	if len(payload) < 4 {
		return 0, errors.New("netproto: short event response")
	}
	return int(binary.LittleEndian.Uint32(payload)), nil
}

// FlushEvents drains the client's coalescing buffer and then the server's
// ESP queues. Because frames on one connection are processed in order, the
// flush also covers every event this client sent before it. A nil return
// therefore means every accepted event reached the server and was applied;
// an undelivered coalesced batch surfaces here (and stays buffered, so a
// later retry can still deliver it). The server round trip is idempotent
// and retried.
func (c *Client) FlushEvents() error {
	if err := c.drainEvents(); err != nil {
		return err
	}
	_, err := c.call(msgFlush, nil, true)
	return err
}

// ReplProbe asks the server for its log frontier (next LSN) — the lag
// probe: frontier minus a follower's applied watermark is its lag in
// events. Idempotent, so transport faults are retried.
func (c *Client) ReplProbe() (uint64, error) {
	payload, err := c.call(msgReplProbe, nil, true)
	if err != nil {
		return 0, err
	}
	if len(payload) < 8 {
		return 0, errors.New("netproto: short repl probe reply")
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// Promote asks a follower server to seal its replay at its watermark and
// returns the sealed LSN (the manual-promotion handshake). Idempotent: the
// server returns the same watermark on a repeat.
func (c *Client) Promote() (uint64, error) {
	payload, err := c.call(msgReplPromote, nil, true)
	if err != nil {
		return 0, err
	}
	if len(payload) < 8 {
		return 0, errors.New("netproto: short promote reply")
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// Get fetches a record; idempotent, so transport faults are retried.
func (c *Client) Get(entityID uint64) (schema.Record, uint64, bool, error) {
	var body [8]byte
	binary.LittleEndian.PutUint64(body[:], entityID)
	payload, err := c.call(msgGet, body[:], true)
	if err != nil {
		return nil, 0, false, err
	}
	if len(payload) < 9 {
		return nil, 0, false, errors.New("netproto: short get response")
	}
	found := payload[0] == 1
	version := binary.LittleEndian.Uint64(payload[1:])
	if !found {
		return nil, 0, false, nil
	}
	rec, err := schema.DecodeRecord(payload[9:], c.sch.Slots)
	if err != nil {
		return nil, 0, false, err
	}
	return rec, version, true, nil
}

// Put stores a record unconditionally. A retry would bump the version
// twice, so transport faults are surfaced to the caller.
func (c *Client) Put(rec schema.Record) error {
	body := make([]byte, schema.EncodedSize(len(rec)))
	schema.EncodeRecord(rec, body)
	_, err := c.call(msgPut, body, false)
	return err
}

// ConditionalPut stores a record guarded by its version. Remote version
// conflicts arrive as typed error-code frames, so
// errors.Is(err, core.ErrVersionConflict) holds across the wire and ESP
// retry loops work unchanged.
func (c *Client) ConditionalPut(rec schema.Record, expected uint64) error {
	body := make([]byte, 8+schema.EncodedSize(len(rec)))
	binary.LittleEndian.PutUint64(body, expected)
	schema.EncodeRecord(rec, body[8:])
	_, err := c.call(msgCondPut, body, false)
	return err
}

// SubmitQueryAsync ships a query and returns a channel that delivers the
// server-level partial when the remote shared scan completes. The wait is
// bounded by CallTimeout; on transport failure the query (idempotent) is
// retried on a fresh connection before the error is delivered.
func (c *Client) SubmitQueryAsync(q *query.Query) (<-chan core.QueryResponse, error) {
	c.drainForOrder()
	t0 := time.Now()
	body := query.EncodeQuery(q)
	conn, gen, err := c.ensureConn()
	if err != nil {
		return nil, err
	}
	id, pc, err := c.register(gen)
	if err != nil {
		return nil, err
	}
	if err := c.send(conn, frame{typ: msgQuery, reqID: id, body: body}); err != nil {
		c.unregister(id)
		c.connLost(conn, gen, err)
		return nil, err
	}
	out := make(chan core.QueryResponse, 1)
	go func() {
		var payload []byte
		f, err := c.await(id, pc)
		if err == nil {
			payload, err = splitResp(f.body)
		}
		if err != nil && retriable(err) && !c.cfg.DisableReconnect {
			for i := 1; i <= c.cfg.MaxRetries; i++ {
				c.cfg.Metrics.retried()
				time.Sleep(c.cfg.backoffFor(i))
				payload, err = c.callOnce(msgQuery, body)
				if err == nil || !retriable(err) {
					break
				}
			}
		}
		c.cfg.Metrics.observeCall(msgQuery, t0, err)
		if err != nil {
			out <- core.QueryResponse{Err: err}
			return
		}
		p, err := query.DecodePartial(payload)
		if err != nil {
			out <- core.QueryResponse{Err: err}
			return
		}
		out <- core.QueryResponse{Partial: p}
	}()
	return out, nil
}

// SubmitQuery ships a query and waits for the partial.
func (c *Client) SubmitQuery(q *query.Query) (*query.Partial, error) {
	ch, err := c.SubmitQueryAsync(q)
	if err != nil {
		return nil, err
	}
	r := <-ch
	return r.Partial, r.Err
}
