package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/schema"
)

// Client is a TCP storage handle implementing core.Storage, so ESP routers
// and RTA coordinators can drive remote storage servers exactly like
// in-process ones.
type Client struct {
	conn net.Conn
	sch  *schema.Schema

	writeMu sync.Mutex
	mu      sync.Mutex
	pending map[uint64]chan frame
	nextID  uint64
	readErr error
	closed  bool
}

var _ core.Storage = (*Client)(nil)

// Dial connects to a storage server. The client must use the same schema as
// the server.
func Dial(addr string, sch *schema.Schema) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, sch: sch, pending: make(map[uint64]chan frame)}
	go c.readLoop()
	return c, nil
}

// Close shuts the connection down; pending requests fail.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) readLoop() {
	for {
		f, err := readFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.closed = true
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		if f.typ != msgResp {
			continue
		}
		c.mu.Lock()
		ch := c.pending[f.reqID]
		delete(c.pending, f.reqID)
		c.mu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

// register allocates a request id and its response channel.
func (c *Client) register() (uint64, chan frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, nil, c.connErr()
	}
	c.nextID++
	id := c.nextID
	ch := make(chan frame, 1)
	c.pending[id] = ch
	return id, ch, nil
}

func (c *Client) connErr() error {
	if c.readErr != nil {
		return fmt.Errorf("netproto: connection closed: %w", c.readErr)
	}
	return errors.New("netproto: connection closed")
}

func (c *Client) send(f frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return writeFrame(c.conn, f)
}

// call sends a request and waits for its response payload.
func (c *Client) call(typ uint8, body []byte) ([]byte, error) {
	id, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	if err := c.send(frame{typ: typ, reqID: id, body: body}); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	f, ok := <-ch
	if !ok {
		return nil, c.connErr()
	}
	return splitResp(f.body)
}

// ProcessEventAsync ships an event fire-and-forget (the 64 B CDR frame).
func (c *Client) ProcessEventAsync(ev event.Event) error {
	var buf [event.WireSize]byte
	ev.Encode(buf[:])
	return c.send(frame{typ: msgEvent, body: buf[:]})
}

// ProcessEvent ships an event and waits for its firing count.
func (c *Client) ProcessEvent(ev event.Event) (int, error) {
	var buf [event.WireSize]byte
	ev.Encode(buf[:])
	payload, err := c.call(msgEventSync, buf[:])
	if err != nil {
		return 0, err
	}
	if len(payload) < 4 {
		return 0, errors.New("netproto: short event response")
	}
	return int(binary.LittleEndian.Uint32(payload)), nil
}

// FlushEvents drains the server's ESP queues. Because frames on one
// connection are processed in order, the flush also covers every event this
// client sent before it.
func (c *Client) FlushEvents() error {
	_, err := c.call(msgFlush, nil)
	return err
}

// Get fetches a record.
func (c *Client) Get(entityID uint64) (schema.Record, uint64, bool, error) {
	var body [8]byte
	binary.LittleEndian.PutUint64(body[:], entityID)
	payload, err := c.call(msgGet, body[:])
	if err != nil {
		return nil, 0, false, err
	}
	if len(payload) < 9 {
		return nil, 0, false, errors.New("netproto: short get response")
	}
	found := payload[0] == 1
	version := binary.LittleEndian.Uint64(payload[1:])
	if !found {
		return nil, 0, false, nil
	}
	rec, err := schema.DecodeRecord(payload[9:], c.sch.Slots)
	if err != nil {
		return nil, 0, false, err
	}
	return rec, version, true, nil
}

// Put stores a record unconditionally.
func (c *Client) Put(rec schema.Record) error {
	body := make([]byte, schema.EncodedSize(len(rec)))
	schema.EncodeRecord(rec, body)
	_, err := c.call(msgPut, body)
	return err
}

// ConditionalPut stores a record guarded by its version. Remote version
// conflicts are surfaced as core.ErrVersionConflict so ESP retry loops work
// across the wire.
func (c *Client) ConditionalPut(rec schema.Record, expected uint64) error {
	body := make([]byte, 8+schema.EncodedSize(len(rec)))
	binary.LittleEndian.PutUint64(body, expected)
	schema.EncodeRecord(rec, body[8:])
	_, err := c.call(msgCondPut, body)
	if err != nil && strings.Contains(err.Error(), core.ErrVersionConflict.Error()) {
		return fmt.Errorf("%w: %v", core.ErrVersionConflict, err)
	}
	return err
}

// SubmitQueryAsync ships a query and returns a channel that delivers the
// server-level partial when the remote shared scan completes.
func (c *Client) SubmitQueryAsync(q *query.Query) (<-chan core.QueryResponse, error) {
	id, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	if err := c.send(frame{typ: msgQuery, reqID: id, body: query.EncodeQuery(q)}); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	out := make(chan core.QueryResponse, 1)
	go func() {
		f, ok := <-ch
		if !ok {
			out <- core.QueryResponse{Err: c.connErr()}
			return
		}
		payload, err := splitResp(f.body)
		if err != nil {
			out <- core.QueryResponse{Err: err}
			return
		}
		p, err := query.DecodePartial(payload)
		if err != nil {
			out <- core.QueryResponse{Err: err}
			return
		}
		out <- core.QueryResponse{Partial: p}
	}()
	return out, nil
}

// SubmitQuery ships a query and waits for the partial.
func (c *Client) SubmitQuery(q *query.Query) (*query.Partial, error) {
	ch, err := c.SubmitQueryAsync(q)
	if err != nil {
		return nil, err
	}
	r := <-ch
	return r.Partial, r.Err
}
