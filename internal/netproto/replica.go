package netproto

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/repl"
)

// ReplicaConfig tunes the subscriber end of the log-shipping stream. The
// zero value selects the defaults.
type ReplicaConfig struct {
	// DialTimeout bounds the connect (default DefaultDialTimeout).
	DialTimeout time.Duration
	// ReadTimeout bounds how long Next waits for the next frame. It must
	// exceed the server's heartbeat interval, or a healthy-but-quiet
	// primary looks dead; default 2s against the 25ms default heartbeat.
	ReadTimeout time.Duration
}

func (cfg ReplicaConfig) withDefaults() ReplicaConfig {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 2 * time.Second
	}
	return cfg
}

// ReplicaConn is a dedicated subscription connection carrying the primary's
// log stream. It implements repl.Source, so a repl.Follower tails a remote
// primary exactly like an in-process archive.
type ReplicaConn struct {
	conn     net.Conn
	br       *bufio.Reader
	cfg      ReplicaConfig
	startLSN uint64
	frontier uint64
}

var _ repl.Source = (*ReplicaConn)(nil)

// DialReplica opens a log subscription against addr starting at fromLSN.
// The returned conn's StartLSN may exceed fromLSN when the primary has
// GC'd that prefix — the follower surfaces that as a typed repl.ErrGap.
func DialReplica(addr string, fromLSN uint64, cfg ReplicaConfig) (*ReplicaConn, error) {
	cfg = cfg.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	var body [8]byte
	binary.LittleEndian.PutUint64(body[:], fromLSN)
	if err := writeFrame(conn, frame{typ: msgReplSubscribe, reqID: 1, body: body[:]}); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	conn.SetReadDeadline(time.Now().Add(cfg.ReadTimeout))
	f, err := readFrame(br)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if f.typ != msgResp || f.reqID != 1 {
		conn.Close()
		return nil, fmt.Errorf("netproto: unexpected subscribe reply type %d", f.typ)
	}
	payload, err := splitResp(f.body)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if len(payload) < 16 {
		conn.Close()
		return nil, errors.New("netproto: short subscribe ack")
	}
	return &ReplicaConn{
		conn:     conn,
		br:       br,
		cfg:      cfg,
		startLSN: binary.LittleEndian.Uint64(payload[0:]),
		frontier: binary.LittleEndian.Uint64(payload[8:]),
	}, nil
}

// StartLSN is the LSN the subscription actually starts at (>= the requested
// fromLSN when the primary GC'd log below its retention floor).
func (r *ReplicaConn) StartLSN() uint64 { return r.startLSN }

// Frontier is the primary's next-LSN at subscribe time.
func (r *ReplicaConn) Frontier() uint64 { return r.frontier }

// Next blocks for the next shipped batch or heartbeat. A silent wire for
// longer than ReadTimeout is an error — heartbeats bound the gap between
// frames on a healthy stream.
func (r *ReplicaConn) Next() (repl.Batch, error) {
	r.conn.SetReadDeadline(time.Now().Add(r.cfg.ReadTimeout))
	f, err := readFrame(r.br)
	r.conn.SetReadDeadline(time.Time{})
	if err != nil {
		return repl.Batch{}, err
	}
	if f.typ != msgReplBatch {
		return repl.Batch{}, fmt.Errorf("netproto: unexpected frame type %d on repl stream", f.typ)
	}
	return decodeReplBatch(f.body)
}

// Close ends the subscription.
func (r *ReplicaConn) Close() error { return r.conn.Close() }
