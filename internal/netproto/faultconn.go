package netproto

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrInjectedFault marks a failure produced by a FaultPlan, so tests can
// tell injected faults from real ones.
var ErrInjectedFault = errors.New("netproto: injected fault")

// FaultPlan is a shared, live-mutable fault-injection policy for network
// connections: every conn wrapped by (or dialed through) the plan consults
// it on each Read/Write, so a test can flip faults on and off mid-flight.
// It simulates the failure modes a TCP storage fabric actually exhibits —
// slow links (delays), dead servers (dial refusal), crashed connections
// (resets), and half-written frames (partial writes) — against the real
// client/server stack.
//
// The zero value injects nothing; all methods are safe for concurrent use.
type FaultPlan struct {
	mu            sync.Mutex
	readDelay     time.Duration
	writeDelay    time.Duration
	dropWrites    bool
	failDial      bool
	resetEvery    int // close the conn on every Nth write (0 = off)
	writesLeft    int
	partialWrites bool // deliver a prefix of the frame, then reset
	conns         map[*faultConn]struct{}
	injected      uint64 // faults fired (observability)
}

// NewFaultPlan returns an empty (fault-free) plan.
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{conns: make(map[*faultConn]struct{})}
}

// Wrap returns conn with the plan's faults applied to it.
func (p *FaultPlan) Wrap(conn net.Conn) net.Conn {
	fc := &faultConn{Conn: conn, plan: p}
	p.mu.Lock()
	if p.conns == nil {
		p.conns = make(map[*faultConn]struct{})
	}
	p.conns[fc] = struct{}{}
	p.mu.Unlock()
	return fc
}

// Dialer returns a ClientConfig.Dialer that refuses to connect while
// FailDial is set and wraps every successful connection in the plan.
func (p *FaultPlan) Dialer() func(addr string, timeout time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		p.mu.Lock()
		fail := p.failDial
		if fail {
			p.injected++
		}
		p.mu.Unlock()
		if fail {
			return nil, errors.New("netproto: injected fault: dial refused")
		}
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return p.Wrap(conn), nil
	}
}

// SetReadDelay stalls every Read by d (0 = off).
func (p *FaultPlan) SetReadDelay(d time.Duration) { p.mu.Lock(); p.readDelay = d; p.mu.Unlock() }

// SetWriteDelay stalls every Write by d (0 = off).
func (p *FaultPlan) SetWriteDelay(d time.Duration) { p.mu.Lock(); p.writeDelay = d; p.mu.Unlock() }

// SetDropWrites makes writes report success without sending anything —
// a black-holed link.
func (p *FaultPlan) SetDropWrites(v bool) { p.mu.Lock(); p.dropWrites = v; p.mu.Unlock() }

// SetFailDial makes the plan's Dialer refuse connections — a dead server.
func (p *FaultPlan) SetFailDial(v bool) { p.mu.Lock(); p.failDial = v; p.mu.Unlock() }

// SetResetEvery closes the connection on every n-th write, before any
// bytes of that write reach the wire (so frames are never torn and the
// peer sees a clean EOF after the previously delivered frames). 0 disables.
func (p *FaultPlan) SetResetEvery(n int) {
	p.mu.Lock()
	p.resetEvery = n
	p.writesLeft = n
	p.mu.Unlock()
}

// SetPartialWrites delivers only a prefix of each multi-byte write and then
// resets the connection — a torn frame mid-flight.
func (p *FaultPlan) SetPartialWrites(v bool) { p.mu.Lock(); p.partialWrites = v; p.mu.Unlock() }

// ResetAll immediately closes every live connection under the plan.
func (p *FaultPlan) ResetAll() {
	p.mu.Lock()
	conns := make([]*faultConn, 0, len(p.conns))
	for fc := range p.conns {
		conns = append(conns, fc)
	}
	p.injected += uint64(len(conns))
	p.mu.Unlock()
	for _, fc := range conns {
		fc.Close()
	}
}

// Heal clears every configured fault (live conns stay up).
func (p *FaultPlan) Heal() {
	p.mu.Lock()
	p.readDelay, p.writeDelay = 0, 0
	p.dropWrites, p.failDial, p.partialWrites = false, false, false
	p.resetEvery, p.writesLeft = 0, 0
	p.mu.Unlock()
}

// Injected returns how many faults fired so far.
func (p *FaultPlan) Injected() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// LiveConns returns the number of open connections under the plan.
func (p *FaultPlan) LiveConns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

func (p *FaultPlan) remove(fc *faultConn) {
	p.mu.Lock()
	delete(p.conns, fc)
	p.mu.Unlock()
}

// writeAction is the fault decision for one Write, snapshotted under the
// plan lock so the IO itself runs unlocked.
type writeAction struct {
	delay   time.Duration
	drop    bool
	reset   bool
	partial bool
}

func (p *FaultPlan) nextWrite() writeAction {
	p.mu.Lock()
	defer p.mu.Unlock()
	a := writeAction{delay: p.writeDelay, drop: p.dropWrites, partial: p.partialWrites}
	if p.resetEvery > 0 {
		p.writesLeft--
		if p.writesLeft <= 0 {
			p.writesLeft = p.resetEvery
			a.reset = true
		}
	}
	if a.drop || a.reset || a.partial {
		p.injected++
	}
	return a
}

// faultConn applies a FaultPlan to one net.Conn.
type faultConn struct {
	net.Conn
	plan      *FaultPlan
	closeOnce sync.Once
}

func (f *faultConn) Read(b []byte) (int, error) {
	f.plan.mu.Lock()
	d := f.plan.readDelay
	f.plan.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	return f.Conn.Read(b)
}

func (f *faultConn) Write(b []byte) (int, error) {
	a := f.plan.nextWrite()
	if a.delay > 0 {
		time.Sleep(a.delay)
	}
	switch {
	case a.reset:
		// Close before writing: the peer sees every prior frame intact,
		// then EOF — a clean crash between frames.
		f.Close()
		return 0, errors.Join(ErrInjectedFault, errors.New("connection reset"))
	case a.partial && len(b) > 1:
		n, _ := f.Conn.Write(b[:len(b)/2])
		f.Close()
		return n, errors.Join(ErrInjectedFault, errors.New("partial write"))
	case a.drop:
		return len(b), nil
	}
	return f.Conn.Write(b)
}

func (f *faultConn) Close() error {
	f.plan.remove(f)
	var err error
	f.closeOnce.Do(func() { err = f.Conn.Close() })
	return err
}
