package netproto

import (
	"errors"
	"time"

	"repro/internal/obs"
)

// opName maps wire message types to the op label of the RPC metrics.
func opName(typ uint8) string {
	switch typ {
	case msgEvent:
		return "event"
	case msgEventSync:
		return "event_sync"
	case msgFlush:
		return "flush"
	case msgGet:
		return "get"
	case msgPut:
		return "put"
	case msgCondPut:
		return "cond_put"
	case msgQuery:
		return "query"
	case msgEventBatch:
		return "event_batch"
	}
	return "unknown"
}

// Metrics instruments one Client (the ESP router / RTA coordinator side of
// the wire): per-op RPC latency, retry/timeout/reconnect counters, and
// SpanRPC trace records. A nil *Metrics is a no-op.
type Metrics struct {
	latency  [msgResp]*obs.Histogram // indexed by wire message type
	events   *obs.Counter
	retries  *obs.Counter
	timeouts *obs.Counter
	redials  *obs.Counter
	failures *obs.Counter
	tracer   obs.Tracer
}

// NewClientMetrics registers the client-side RPC instruments on reg.
// tracer may be nil.
func NewClientMetrics(reg *obs.Registry, tracer obs.Tracer) *Metrics {
	m := &Metrics{
		events: reg.Counter("aim_net_client_events_total",
			"Fire-and-forget event frames shipped to storage servers."),
		retries: reg.Counter("aim_net_client_retries_total",
			"RPC attempts beyond the first (idempotent-op retry loop)."),
		timeouts: reg.Counter("aim_net_client_timeouts_total",
			"RPC attempts that exceeded CallTimeout."),
		redials: reg.Counter("aim_net_client_reconnects_total",
			"Successful redials after connection loss."),
		failures: reg.Counter("aim_net_client_errors_total",
			"RPCs that ultimately failed (after retries)."),
		tracer: tracer,
	}
	for typ := uint8(msgEventSync); typ < msgResp; typ++ {
		m.latency[typ] = reg.LatencyHistogram(
			obs.Label("aim_net_client_seconds", "op", opName(typ)),
			"Client-observed RPC latency including retries and backoff.")
	}
	return m
}

// observeCall records one completed RPC (including its retries). Nil-safe.
func (m *Metrics) observeCall(typ uint8, t0 time.Time, err error) {
	if m == nil {
		return
	}
	d := time.Since(t0)
	if int(typ) < len(m.latency) {
		m.latency[typ].ObserveDuration(d)
	}
	var failed int64
	if err != nil {
		m.failures.Inc()
		failed = 1
		if errors.Is(err, ErrTimeout) {
			m.timeouts.Inc()
		}
	}
	if m.tracer != nil {
		m.tracer.Record(obs.Span{Kind: obs.SpanRPC, Start: t0, Dur: d, A: int64(typ), B: failed})
	}
}

func (m *Metrics) retried() {
	if m != nil {
		m.retries.Inc()
	}
}

// eventsSent counts fire-and-forget events shipped (n per batch frame).
func (m *Metrics) eventsSent(n int) {
	if m != nil {
		m.events.Add(uint64(n))
	}
}

func (m *Metrics) reconnected() {
	if m != nil {
		m.redials.Inc()
	}
}

// ServerMetrics instruments a Server: per-op handling latency (request
// arrival to response write) and the fire-and-forget event count. A nil
// *ServerMetrics is a no-op.
type ServerMetrics struct {
	latency [msgResp]*obs.Histogram
	events  *obs.Counter
}

// NewServerMetrics registers the server-side RPC instruments on reg.
func NewServerMetrics(reg *obs.Registry) *ServerMetrics {
	m := &ServerMetrics{
		events: reg.Counter("aim_net_server_events_total",
			"Fire-and-forget event frames received."),
	}
	for typ := uint8(msgEventSync); typ < msgResp; typ++ {
		m.latency[typ] = reg.LatencyHistogram(
			obs.Label("aim_net_server_seconds", "op", opName(typ)),
			"Server-side request handling latency (arrival to response write).")
	}
	return m
}

// eventsReceived counts fire-and-forget events arriving (n per batch frame).
func (m *ServerMetrics) eventsReceived(n int) {
	if m != nil {
		m.events.Add(uint64(n))
	}
}

func (m *ServerMetrics) observe(typ uint8, t0 time.Time) {
	if m == nil {
		return
	}
	if int(typ) < len(m.latency) {
		m.latency[typ].ObserveSince(t0)
	}
}
