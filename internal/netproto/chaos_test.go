package netproto

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/rta"
	"repro/internal/schema"
)

// chaosRig is a 3-node TCP cluster whose first node's links run through a
// FaultPlan, plus strict and degraded RTA coordinators over the same
// handles.
type chaosRig struct {
	sch      *schema.Schema
	nodes    []*core.StorageNode
	servers  []*Server
	clients  []*Client
	cl       *cluster.Cluster
	strict   *rta.Coordinator
	degraded *rta.Coordinator
	plan     *FaultPlan
	sent     int
}

func newChaosRig(t *testing.T) *chaosRig {
	t.Helper()
	r := &chaosRig{sch: netSchema(t), plan: NewFaultPlan()}
	var handles []core.Storage
	for i := 0; i < 3; i++ {
		node, err := core.NewNode(core.Config{
			Schema: r.sch, Partitions: 2, BucketSize: 32,
			IdleMergePause: 200 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, node)
		srv, err := Serve("127.0.0.1:0", node, r.sch)
		if err != nil {
			t.Fatal(err)
		}
		r.servers = append(r.servers, srv)
		cfg := ClientConfig{
			CallTimeout: 2 * time.Second,
			MaxRetries:  8,
			BackoffBase: 2 * time.Millisecond,
			BackoffMax:  20 * time.Millisecond,
		}
		if i == 0 {
			cfg.Dialer = r.plan.Dialer()
		}
		cli, err := DialConfig(srv.Addr(), r.sch, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.clients = append(r.clients, cli)
		handles = append(handles, cli)
	}
	cl, err := cluster.NewWithHealth(handles, cluster.HealthConfig{
		FailureThreshold: 3,
		ProbeInterval:    20 * time.Millisecond,
		RetryQueue:       8192,
		RetryInterval:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.cl = cl
	if r.strict, err = rta.NewCoordinator(handles); err != nil {
		t.Fatal(err)
	}
	if r.degraded, err = rta.NewCoordinatorConfig(handles, rta.Config{Policy: rta.PolicyDegraded}); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *chaosRig) close() {
	r.cl.Close()
	for _, c := range r.clients {
		c.Close()
	}
	for _, s := range r.servers {
		s.Close()
	}
	for _, n := range r.nodes {
		n.Stop()
	}
}

// ingest pushes n events through the cluster router; the ESP pipeline must
// accept every one of them regardless of injected faults (spill absorbs).
func (r *chaosRig) ingest(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ev := event.Event{
			Caller:    uint64(r.sent%97) + 1,
			Timestamp: 100*24*3600*1000 + int64(r.sent),
			Duration:  5, Cost: 1,
		}
		if err := r.cl.ProcessEventAsync(ev); err != nil {
			t.Fatalf("ESP pipeline rejected event %d under faults: %v", r.sent, err)
		}
		r.sent++
	}
}

func (r *chaosRig) sumQuery(id uint64) *query.Query {
	calls := r.sch.MustAttrIndex("calls_today_count")
	return &query.Query{ID: id, Aggs: []query.AggExpr{{Op: query.OpSum, Attr: calls}}, GroupBy: -1}
}

// TestChaosFlakyNodeFullWorkload is the acceptance drill: with resets,
// delays and dial refusal injected on 1 of 3 TCP storage nodes, the ESP
// pipeline keeps ingesting, idempotent RPCs succeed via retry/reconnect,
// degraded-policy RTA queries return partials marked Incomplete while
// strict-policy queries fail with the typed node-failure error — and after
// healing, the cluster converges with zero event loss and zero goroutine
// leaks.
func TestChaosFlakyNodeFullWorkload(t *testing.T) {
	before := runtime.NumGoroutine()

	r := newChaosRig(t)
	func() {
		defer r.close()

		// Phase 0 — healthy warmup: events flow, queries are complete.
		r.ingest(t, 300)
		if err := r.cl.FlushEvents(); err != nil {
			t.Fatalf("healthy flush: %v", err)
		}
		waitForSum(t, r, float64(r.sent), "healthy warmup")

		// Phase 1 — flaky: node 0's connections reset on every 3rd write
		// and reads are slowed. Ingestion must not error (failures spill),
		// and idempotent RPCs must succeed via reconnect + retry.
		r.plan.SetReadDelay(time.Millisecond)
		r.plan.SetResetEvery(3)
		r.plan.ResetAll()
		r.ingest(t, 500)
		for i := 0; i < 15; i++ {
			if _, _, _, err := r.clients[0].Get(uint64(i + 1)); err != nil {
				t.Fatalf("idempotent Get %d through flaky link: %v", i, err)
			}
		}
		if r.clients[0].Reconnects() == 0 {
			t.Fatal("flaky phase never forced a reconnect")
		}
		if r.plan.Injected() == 0 {
			t.Fatal("fault plan injected nothing")
		}

		// Phase 2 — dead: node 0 refuses dials entirely. The ESP pipeline
		// keeps ingesting (spill queue), degraded queries return partials
		// marked Incomplete, strict queries fail with the typed error.
		r.plan.Heal()
		r.plan.SetFailDial(true)
		r.plan.ResetAll()
		r.ingest(t, 300)

		res, err := r.degraded.Execute(r.sumQuery(1_000_001))
		if err != nil {
			t.Fatalf("degraded query with dead node: %v", err)
		}
		if !res.Incomplete || res.CoveredNodes != 2 || res.TotalNodes != 3 {
			t.Fatalf("degraded coverage = %d/%d incomplete=%v, want 2/3 incomplete",
				res.CoveredNodes, res.TotalNodes, res.Incomplete)
		}
		_, err = r.strict.Execute(r.sumQuery(1_000_002))
		if !errors.Is(err, rta.ErrNodeFailure) {
			t.Fatalf("strict query with dead node = %v, want ErrNodeFailure", err)
		}
		var nfe *rta.NodeFailureError
		if !errors.As(err, &nfe) || nfe.Failed != 1 || nfe.Total != 3 {
			t.Fatalf("typed node-failure error = %+v", err)
		}
		if h := r.cl.Health(0); h.State == cluster.BreakerClosed || h.Spilled == 0 {
			t.Fatalf("node 0 health after dead phase: %+v, want open breaker with spilled events", h)
		}

		// Phase 3 — heal: the spill queue replays, flush succeeds, and the
		// cluster converges to every event sent — zero loss.
		r.plan.Heal()
		r.ingest(t, 200)
		flushDeadline := time.Now().Add(20 * time.Second)
		for {
			err := r.cl.FlushEvents()
			if err == nil {
				break
			}
			if time.Now().After(flushDeadline) {
				t.Fatalf("flush never recovered after heal: %v (health %+v)", err, r.cl.Health(0))
			}
			time.Sleep(10 * time.Millisecond)
		}
		var processed uint64
		for _, n := range r.nodes {
			processed += n.Stats().EventsProcessed
		}
		if processed != uint64(r.sent) {
			t.Fatalf("event loss under chaos: processed %d, sent %d (node0 health %+v)",
				processed, r.sent, r.cl.Health(0))
		}
		waitForSum(t, r, float64(r.sent), "post-heal convergence")
		if h := r.cl.Health(0); h.QueuedEvents != 0 {
			t.Fatalf("spill queue not drained after heal: %+v", h)
		}
	}()

	// Zero goroutine leaks: everything the drill started must wind down.
	deadline := time.Now().Add(10 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before chaos, %d after\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitForSum polls the degraded coordinator until the merged sum reaches
// want with full coverage (merge cycles make events visible eventually).
func waitForSum(t *testing.T, r *chaosRig, want float64, phase string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var qid uint64 = 5_000_000
	for {
		qid++
		res, err := r.degraded.Execute(r.sumQuery(qid))
		if err == nil && !res.Incomplete && len(res.Rows) > 0 && res.Rows[0].Values[0] == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: cluster never converged to %v (last: res=%+v err=%v)", phase, want, res, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
