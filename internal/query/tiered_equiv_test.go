package query_test

import (
	"reflect"
	"testing"

	"repro/internal/columnmap"
	"repro/internal/query"
	"repro/internal/workload"
)

// TestTieredScanMatchesFlat is the scan-on-compressed equivalence property:
// the seven Huawei RTA templates (plus random instances) must produce
// byte-identical partials over frozen compressed buckets, a mixed hot/cold
// split, and the flat hot matrix. Both the single-query path (direct chunk
// kernels with decompress fallback) and the fused batch path are checked.
func TestTieredScanMatchesFlat(t *testing.T) {
	sch, err := workload.BuildSmallSchema()
	if err != nil {
		t.Fatal(err)
	}
	dims, err := workload.BuildDimensions(7)
	if err != nil {
		t.Fatal(err)
	}
	cm := populateMatrix(t, sch, dims, 512, 128)
	cm.SetColHints(sch.ColHints())

	gen, err := workload.NewQueryGen(sch, 7)
	if err != nil {
		t.Fatal(err)
	}
	queries := []*query.Query{
		gen.Q1(1), gen.Q2(3), gen.Q3(), gen.Q4(4, 60), gen.Q5(1, 1), gen.Q6(2), gen.Q7(0),
	}
	for i := 0; i < 9; i++ {
		queries = append(queries, gen.Next())
	}
	for _, q := range queries {
		if err := q.Validate(sch); err != nil {
			t.Fatal(err)
		}
	}

	run := func(buckets []columnmap.Bucket) []*query.Partial {
		t.Helper()
		out := make([]*query.Partial, len(queries))
		for qi, q := range queries {
			ex := query.NewExecutor(sch, dims.Store)
			out[qi] = query.NewPartial(q)
			for _, b := range buckets {
				if err := ex.ProcessBucket(b, q, out[qi]); err != nil {
					t.Fatal(err)
				}
			}
		}
		return out
	}
	runBatch := func(buckets []columnmap.Bucket) []*query.Partial {
		t.Helper()
		plan, err := query.CompileBatch(sch, queries)
		if err != nil {
			t.Fatal(err)
		}
		ex := query.NewExecutor(sch, dims.Store)
		out := make([]*query.Partial, len(queries))
		for qi, q := range queries {
			out[qi] = query.NewPartial(q)
		}
		for _, b := range buckets {
			if err := ex.ProcessBucketBatch(b, plan, out); err != nil {
				t.Fatal(err)
			}
		}
		plan.FoldDuplicates(out)
		return out
	}

	want := run(cm.Snapshot())

	// Freeze everything: all four full buckets go cold.
	cm.AdvanceEpoch()
	if n := cm.FreezeCold(0, 0); n != 4 {
		t.Fatalf("froze %d buckets, want 4", n)
	}
	cold := cm.Snapshot()
	frozen := 0
	for _, b := range cold {
		if b.Frozen() != nil {
			frozen++
		}
	}
	if frozen != 4 {
		t.Fatalf("snapshot has %d frozen buckets, want 4", frozen)
	}
	compare := func(label string, got []*query.Partial) {
		t.Helper()
		for qi, q := range queries {
			if !reflect.DeepEqual(got[qi], want[qi]) {
				t.Errorf("%s: query %d differs\ngot  %+v\nwant %+v", label, q.ID, got[qi], want[qi])
			}
			if !reflect.DeepEqual(got[qi].Finalize(q), want[qi].Finalize(q)) {
				t.Errorf("%s: query %d finalized result differs", label, q.ID)
			}
		}
	}
	compare("all-cold sequential", run(cold))
	compare("all-cold batch", runBatch(cold))

	// Thaw half the buckets by rewriting one record in each: a mixed
	// hot/cold snapshot must still agree everywhere.
	dst := make([]uint64, sch.Slots)
	for _, e := range []uint64{1, 200} {
		if ok, err := cm.GatherEntity(e, dst); err != nil || !ok {
			t.Fatalf("gather %d: %v %v", e, ok, err)
		}
		rec := append([]uint64(nil), dst...)
		if err := cm.Upsert(rec); err != nil {
			t.Fatal(err)
		}
	}
	mixed := cm.Snapshot()
	hot := 0
	for _, b := range mixed {
		if b.Frozen() == nil {
			hot++
		}
	}
	if hot == 0 || hot == len(mixed) {
		t.Fatalf("expected a mixed split, got %d/%d hot", hot, len(mixed))
	}
	compare("mixed sequential", run(mixed))
	compare("mixed batch", runBatch(mixed))

	// Work-stealing shared scan over the cold snapshot: float reductions may
	// reassociate across workers, so use the epsilon comparison.
	partials, err := query.ScanShared(sch, dims.Store, cold, queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		if !partialsEquivalent(partials[qi], want[qi]) {
			t.Errorf("ScanShared cold: query %d differs\ngot  %+v\nwant %+v",
				q.ID, partials[qi], want[qi])
		}
	}
}
