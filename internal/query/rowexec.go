package query

import (
	"fmt"
	"math"

	"repro/internal/dimension"
	"repro/internal/schema"
	"repro/internal/vec"
)

// RowEvaluator evaluates queries record-at-a-time, for row-organized stores
// (the baseline engines of §5.3). It is semantically identical to the
// columnar Executor — the baselines and AIM must return the same answers —
// but pays the row-store stride the paper describes.
type RowEvaluator struct {
	sch      *schema.Schema
	dims     *dimension.Store
	dimCache map[DimJoin]map[uint64]string
}

// NewRowEvaluator returns an evaluator bound to a schema and optional
// dimension store.
func NewRowEvaluator(sch *schema.Schema, dims *dimension.Store) *RowEvaluator {
	return &RowEvaluator{sch: sch, dims: dims, dimCache: make(map[DimJoin]map[uint64]string)}
}

// evalPredicate applies one predicate to a record.
func (re *RowEvaluator) evalPredicate(p Predicate, rec []uint64) bool {
	bits := rec[p.Attr]
	switch re.sch.Attrs[p.Attr].Type {
	case schema.TypeFloat64:
		return cmpFloat(math.Float64frombits(bits), p.Op, math.Float64frombits(p.Bits))
	case schema.TypeUint64, schema.TypeDictString:
		return cmpUint(bits, p.Op, p.Bits)
	default:
		return cmpInt(int64(bits), p.Op, int64(p.Bits))
	}
}

// Matches reports whether the record satisfies the query's DNF filter.
func (re *RowEvaluator) Matches(q *Query, rec []uint64) bool {
	if len(q.Where) == 0 {
		return true
	}
	for _, c := range q.Where {
		ok := true
		for _, p := range c {
			if !re.evalPredicate(p, rec) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// AddRecord folds one record into the partial if it matches the filter.
func (re *RowEvaluator) AddRecord(q *Query, rec []uint64, p *Partial) error {
	if !re.Matches(q, rec) {
		return nil
	}
	var key GroupKey
	if q.GroupBy >= 0 {
		gv := rec[q.GroupBy]
		switch {
		case q.GroupDim != nil:
			m, err := re.dimLookupMap(*q.GroupDim)
			if err != nil {
				return err
			}
			s, ok := m[gv]
			if !ok {
				return nil // inner-join semantics
			}
			key.S = s
		case q.GroupDictNames:
			s, ok := re.sch.Dict(q.GroupBy).String(gv)
			if !ok {
				return nil
			}
			key.S = s
		default:
			key.I = int64(gv)
		}
	}
	cells := p.cells(key)
	id := rec[schema.SlotEntityID]
	for i, a := range q.Aggs {
		cell := &cells[i]
		cell.Count++
		switch a.Op {
		case OpCount:
		case OpSum, OpAvg:
			cell.Sum += slotVal(rec[a.Attr], re.sch.Attrs[a.Attr].Type)
		case OpMin:
			if v := slotVal(rec[a.Attr], re.sch.Attrs[a.Attr].Type); v < cell.Min {
				cell.Min = v
			}
		case OpMax:
			if v := slotVal(rec[a.Attr], re.sch.Attrs[a.Attr].Type); v > cell.Max {
				cell.Max = v
			}
		default:
			v := slotVal(rec[a.Attr], re.sch.Attrs[a.Attr].Type)
			if a.Op == OpArgMinRatio || a.Op == OpArgMaxRatio {
				den := slotVal(rec[a.Attr2], re.sch.Attrs[a.Attr2].Type)
				if den == 0 {
					continue
				}
				v /= den
			}
			updateArg(cell, a.Op, id, v)
		}
	}
	return nil
}

func (re *RowEvaluator) dimLookupMap(dj DimJoin) (map[uint64]string, error) {
	if m, ok := re.dimCache[dj]; ok {
		return m, nil
	}
	if re.dims == nil {
		return nil, fmt.Errorf("query: dimension join against %q but evaluator has no dimension store", dj.Table)
	}
	tab, err := re.dims.Table(dj.Table)
	if err != nil {
		return nil, err
	}
	m := make(map[uint64]string, tab.Len())
	for _, k := range tab.Keys() {
		v, ok := tab.Lookup(k, dj.Column)
		if !ok {
			return nil, fmt.Errorf("query: dimension table %q has no column %q", dj.Table, dj.Column)
		}
		m[k] = v
	}
	re.dimCache[dj] = m
	return m, nil
}

func cmpInt(a int64, op vec.CmpOp, b int64) bool {
	switch op {
	case vec.Lt:
		return a < b
	case vec.Le:
		return a <= b
	case vec.Gt:
		return a > b
	case vec.Ge:
		return a >= b
	case vec.Eq:
		return a == b
	default:
		return a != b
	}
}

func cmpUint(a uint64, op vec.CmpOp, b uint64) bool {
	switch op {
	case vec.Lt:
		return a < b
	case vec.Le:
		return a <= b
	case vec.Gt:
		return a > b
	case vec.Ge:
		return a >= b
	case vec.Eq:
		return a == b
	default:
		return a != b
	}
}

func cmpFloat(a float64, op vec.CmpOp, b float64) bool {
	switch op {
	case vec.Lt:
		return a < b
	case vec.Le:
		return a <= b
	case vec.Gt:
		return a > b
	case vec.Ge:
		return a >= b
	case vec.Eq:
		return a == b
	default:
		return a != b
	}
}
