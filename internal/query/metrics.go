package query

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// ScanMetrics instruments shared-scan rounds at round granularity: the
// executor's per-bucket hot path stays untouched, so enabling metrics costs
// one ObserveRound call per round, not per record. A nil *ScanMetrics is a
// no-op, which is what the metrics-overhead guard benchmarks against.
type ScanMetrics struct {
	rounds       *obs.Counter
	batchSize    *obs.Histogram
	roundLatency *obs.Histogram
	predsEval    *obs.Counter
	predsSaved   *obs.Counter
	dupQueries   *obs.Counter
	// byTemplate[t] holds the round latency of rounds containing a query of
	// workload template t (Q1..Q7); index 0 is unused.
	byTemplate [8]*obs.Histogram
}

// NewScanMetrics registers the scan instruments on reg. name rewrites each
// metric name (callers inject constant labels, e.g. node="0"); pass nil for
// identity.
func NewScanMetrics(reg *obs.Registry, name func(string) string) *ScanMetrics {
	if name == nil {
		name = func(s string) string { return s }
	}
	m := &ScanMetrics{
		rounds: reg.Counter(name("aim_query_rounds_total"),
			"Shared-scan rounds that answered at least one query."),
		batchSize: reg.Histogram(name("aim_query_batch_size"),
			"Queries fused into one shared-scan round."),
		roundLatency: reg.LatencyHistogram(name("aim_query_scan_round_seconds"),
			"Latency of one shared-scan round (dispatch to all partials gathered)."),
		predsEval: reg.Counter(name("aim_query_predicates_evaluated_total"),
			"Distinct predicates evaluated against columns across all rounds."),
		predsSaved: reg.Counter(name("aim_query_predicates_saved_total"),
			"Predicate evaluations avoided by cross-query dedup and complement sharing."),
		dupQueries: reg.Counter(name("aim_query_folded_duplicates_total"),
			"Queries answered by copying an identical twin's partial instead of scanning."),
	}
	for t := 1; t < len(m.byTemplate); t++ {
		m.byTemplate[t] = reg.LatencyHistogram(
			name(obs.Label("aim_query_template_seconds", "template", fmt.Sprintf("q%d", t))),
			"Shared-scan round latency attributed to rounds containing this workload template.")
	}
	return m
}

// ObserveRound records one completed shared-scan round executed under plan.
// Nil-safe.
func (m *ScanMetrics) ObserveRound(plan *BatchPlan, d time.Duration) {
	if m == nil {
		return
	}
	queries := plan.Queries()
	m.rounds.Inc()
	m.batchSize.Observe(uint64(len(queries)))
	m.roundLatency.ObserveDuration(d)
	occurrences := 0
	for _, q := range queries {
		for _, c := range q.Where {
			occurrences += len(c)
		}
		if t := int(q.Template); t >= 1 && t < len(m.byTemplate) {
			m.byTemplate[t].ObserveDuration(d)
		}
	}
	evaluated := plan.NumEvaluated()
	m.predsEval.Add(uint64(evaluated))
	if saved := occurrences - evaluated; saved > 0 {
		m.predsSaved.Add(uint64(saved))
	}
	m.dupQueries.Add(uint64(plan.NumDuplicates()))
}
