package query

import (
	"reflect"
	"testing"

	"repro/internal/vec"
)

// batchQueries builds a batch whose filters overlap heavily, the shape the
// plan compiler is designed for.
func batchQueries(f *fixture) []*Query {
	return []*Query{
		// Shares calls>4 with q2 and q4.
		{ID: 1, Where: []Conjunct{{PredInt(f.calls, vec.Gt, 4)}},
			Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1},
		{ID: 2, Where: []Conjunct{{PredInt(f.calls, vec.Gt, 4), PredInt(f.dur, vec.Ge, 30)}},
			Aggs: []AggExpr{{Op: OpSum, Attr: f.dur}, {Op: OpAvg, Attr: f.cost}}, GroupBy: -1},
		// Empty WHERE: match-all program.
		{ID: 3, Aggs: []AggExpr{{Op: OpMin, Attr: f.cost}, {Op: OpMax, Attr: f.dur}}, GroupBy: -1},
		// Multi-conjunct DNF reusing both earlier predicates.
		{ID: 4, Where: []Conjunct{
			{PredInt(f.calls, vec.Gt, 4)},
			{PredInt(f.dur, vec.Ge, 30), PredInt(f.zip, vec.Eq, 1001)},
		}, Aggs: []AggExpr{{Op: OpArgMax, Attr: f.dur}}, GroupBy: -1},
		// Grouped with a dimension join.
		{ID: 5, Where: []Conjunct{{PredInt(f.zip, vec.Eq, 1001)}},
			Aggs: []AggExpr{{Op: OpCount}}, GroupBy: f.zip,
			GroupDim: &DimJoin{Table: "RegionInfo", Column: "city"}},
	}
}

func TestCompileBatchDedup(t *testing.T) {
	f := newFixture(t)
	queries := batchQueries(f)
	plan, err := CompileBatch(f.sch, queries)
	if err != nil {
		t.Fatal(err)
	}
	// Nine predicate occurrences across the batch, three distinct.
	if got := plan.NumPredicates(); got != 3 {
		t.Fatalf("NumPredicates = %d, want 3", got)
	}
	if got := plan.NumEvaluated(); got != 3 {
		t.Fatalf("NumEvaluated = %d, want 3 (no complements in batch)", got)
	}
	if len(plan.Queries()) != len(queries) {
		t.Fatalf("Queries() len = %d, want %d", len(plan.Queries()), len(queries))
	}
	if !plan.progs[2].matchAll {
		t.Fatal("empty WHERE did not compile to matchAll")
	}
	// Distinct predicates must be ordered by attribute for column locality.
	for i := 1; i < len(plan.preds); i++ {
		if plan.preds[i].Attr < plan.preds[i-1].Attr {
			t.Fatalf("predicates not attribute-ordered: %+v", plan.preds)
		}
	}
}

func TestCompileBatchComplementSharing(t *testing.T) {
	f := newFixture(t)
	queries := []*Query{
		{ID: 1, Where: []Conjunct{{PredInt(f.calls, vec.Gt, 4)}},
			Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1},
		{ID: 2, Where: []Conjunct{{PredInt(f.calls, vec.Le, 4)}},
			Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1},
		{ID: 3, Where: []Conjunct{{PredInt(f.zip, vec.Eq, 1001)}},
			Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1},
		{ID: 4, Where: []Conjunct{{PredInt(f.zip, vec.Ne, 1001)}},
			Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1},
		// Float complements must NOT be shared (NaN semantics).
		{ID: 5, Where: []Conjunct{{PredFloat(f.cost, vec.Lt, 6.0)}},
			Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1},
		{ID: 6, Where: []Conjunct{{PredFloat(f.cost, vec.Ge, 6.0)}},
			Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1},
	}
	plan, err := CompileBatch(f.sch, queries)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.NumPredicates(); got != 6 {
		t.Fatalf("NumPredicates = %d, want 6", got)
	}
	// Gt/Le and Eq/Ne pairs on int attributes each evaluate once; the float
	// pair evaluates both sides.
	if got := plan.NumEvaluated(); got != 4 {
		t.Fatalf("NumEvaluated = %d, want 4", got)
	}
	// Derived masks must yield the same results as direct evaluation.
	assertFusedMatchesSequential(t, f, queries)
}

// assertFusedMatchesSequential checks that ProcessBucketBatch produces
// byte-identical partials to per-query ProcessBucket over the same buckets.
func assertFusedMatchesSequential(t *testing.T, f *fixture, queries []*Query) {
	t.Helper()
	for _, q := range queries {
		if err := q.Validate(f.sch); err != nil {
			t.Fatal(err)
		}
	}
	buckets := f.cm.Snapshot()

	seqEx := NewExecutor(f.sch, f.dims)
	want := make([]*Partial, len(queries))
	for qi, q := range queries {
		want[qi] = NewPartial(q)
		for _, b := range buckets {
			if err := seqEx.ProcessBucket(b, q, want[qi]); err != nil {
				t.Fatal(err)
			}
		}
	}

	plan, err := CompileBatch(f.sch, queries)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f.sch, f.dims)
	got := make([]*Partial, len(queries))
	for qi, q := range queries {
		got[qi] = NewPartial(q)
	}
	for _, b := range buckets {
		if err := ex.ProcessBucketBatch(b, plan, got); err != nil {
			t.Fatal(err)
		}
	}
	plan.FoldDuplicates(got)
	for qi, q := range queries {
		if !reflect.DeepEqual(got[qi], want[qi]) {
			t.Errorf("query %d: fused partial differs\ngot  %+v\nwant %+v", q.ID, got[qi], want[qi])
		}
	}
}

// TestCompileBatchDuplicateQueries checks that structurally identical
// queries are scanned once and materialized by FoldDuplicates, including
// when filter conjuncts are written in a different order.
func TestCompileBatchDuplicateQueries(t *testing.T) {
	f := newFixture(t)
	queries := []*Query{
		{ID: 1, Where: []Conjunct{{PredInt(f.calls, vec.Gt, 4), PredInt(f.dur, vec.Ge, 30)}},
			Aggs: []AggExpr{{Op: OpSum, Attr: f.dur}}, GroupBy: -1},
		// Same query, predicates swapped, different ID and Limit.
		{ID: 2, Where: []Conjunct{{PredInt(f.dur, vec.Ge, 30), PredInt(f.calls, vec.Gt, 4)}},
			Aggs: []AggExpr{{Op: OpSum, Attr: f.dur}}, GroupBy: -1, Limit: 5},
		// Same filter, different aggregates: NOT a duplicate.
		{ID: 3, Where: []Conjunct{{PredInt(f.calls, vec.Gt, 4), PredInt(f.dur, vec.Ge, 30)}},
			Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1},
		// Match-all duplicates (the Q3-template shape).
		{ID: 4, Aggs: []AggExpr{{Op: OpAvg, Attr: f.cost}}, GroupBy: f.calls},
		{ID: 5, Aggs: []AggExpr{{Op: OpAvg, Attr: f.cost}}, GroupBy: f.calls},
	}
	plan, err := CompileBatch(f.sch, queries)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.NumDuplicates(); got != 2 {
		t.Fatalf("NumDuplicates = %d, want 2", got)
	}
	assertFusedMatchesSequential(t, f, queries)
}

func TestProcessBucketBatchMatchesSequential(t *testing.T) {
	f := newFixture(t)
	assertFusedMatchesSequential(t, f, batchQueries(f))
}

func TestCompileBatchAttrOutOfRange(t *testing.T) {
	f := newFixture(t)
	bad := []*Query{{
		ID:      1,
		Where:   []Conjunct{{Predicate{Attr: 99, Op: vec.Eq, Bits: 0}}},
		Aggs:    []AggExpr{{Op: OpCount}},
		GroupBy: -1,
	}}
	if _, err := CompileBatch(f.sch, bad); err == nil {
		t.Fatal("CompileBatch accepted out-of-range predicate attribute")
	}
}

func TestProcessBucketBatchPartialsMismatch(t *testing.T) {
	f := newFixture(t)
	queries := batchQueries(f)
	plan, err := CompileBatch(f.sch, queries)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f.sch, f.dims)
	err = ex.ProcessBucketBatch(f.cm.Snapshot()[0], plan, make([]*Partial, 1))
	if err == nil {
		t.Fatal("ProcessBucketBatch accepted mismatched partials slice")
	}
}

// TestProcessBucketBatchZeroAllocs is the zero-allocation acceptance check:
// after the first round warms the executor's slab, scratch masks and the
// partials' group rows, steady-state bucket processing of non-grouped
// queries must not touch the heap.
func TestProcessBucketBatchZeroAllocs(t *testing.T) {
	f := newFixture(t)
	queries := []*Query{
		{ID: 1, Where: []Conjunct{{PredInt(f.calls, vec.Gt, 4)}},
			Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1},
		{ID: 2, Where: []Conjunct{{PredInt(f.calls, vec.Gt, 4), PredInt(f.dur, vec.Ge, 30)}},
			Aggs: []AggExpr{{Op: OpSum, Attr: f.dur}, {Op: OpMin, Attr: f.cost}, {Op: OpMax, Attr: f.dur}}, GroupBy: -1},
		{ID: 3, Aggs: []AggExpr{{Op: OpAvg, Attr: f.cost}}, GroupBy: -1},
		{ID: 4, Where: []Conjunct{{PredInt(f.zip, vec.Ne, 1001)}},
			Aggs: []AggExpr{{Op: OpArgMax, Attr: f.dur}, {Op: OpArgMinRatio, Attr: f.cost, Attr2: f.dur}}, GroupBy: -1},
	}
	plan, err := CompileBatch(f.sch, queries)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f.sch, f.dims)
	partials := make([]*Partial, len(queries))
	for qi, q := range queries {
		partials[qi] = NewPartial(q)
	}
	buckets := f.cm.Snapshot()
	scan := func() {
		for _, b := range buckets {
			if err := ex.ProcessBucketBatch(b, plan, partials); err != nil {
				t.Fatal(err)
			}
		}
	}
	scan() // warm slab, scratch and group rows
	if allocs := testing.AllocsPerRun(100, scan); allocs != 0 {
		t.Fatalf("steady-state ProcessBucketBatch allocates %.1f objects per scan, want 0", allocs)
	}
}
