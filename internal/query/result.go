package query

import (
	"math"
	"sort"
)

// GroupKey identifies one result group. For plain attribute group-bys only I
// is set; for dimension-joined group-bys only S is set.
type GroupKey struct {
	I int64
	S string
}

// Less orders keys deterministically (string part first, then integer).
func (k GroupKey) Less(o GroupKey) bool {
	if k.S != o.S {
		return k.S < o.S
	}
	return k.I < o.I
}

// Cell is the mergeable accumulator for one aggregate within one group.
type Cell struct {
	Count  int64
	Sum    float64
	Min    float64
	Max    float64
	ArgKey uint64
	ArgVal float64
	ArgSet bool
}

// newCells returns an initialized accumulator row.
func newCells(n int) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		cells[i].Min = math.Inf(1)
		cells[i].Max = math.Inf(-1)
	}
	return cells
}

// Partial is the mergeable per-partition (or per-node) query result.
type Partial struct {
	// QueryID echoes Query.ID.
	QueryID uint64
	// NumAggs is the aggregate arity (len(Query.Aggs)).
	NumAggs int
	// Groups maps group keys to accumulator rows.
	Groups map[GroupKey][]Cell
	// gen counts Resets, so executor-side caches of Groups rows can detect
	// that a pooled partial was recycled for a new scan round.
	gen uint64
}

// NewPartial returns an empty partial for a query.
func NewPartial(q *Query) *Partial {
	return &Partial{QueryID: q.ID, NumAggs: len(q.Aggs), Groups: make(map[GroupKey][]Cell)}
}

// Reset re-initializes p for query q, retaining the group map's storage so
// pooled partials can be reused across scan rounds without reallocating.
func (p *Partial) Reset(q *Query) {
	p.QueryID = q.ID
	p.NumAggs = len(q.Aggs)
	p.gen++
	if p.Groups == nil {
		p.Groups = make(map[GroupKey][]Cell)
		return
	}
	for k := range p.Groups {
		delete(p.Groups, k)
	}
}

// cells returns (creating if needed) the accumulator row for key.
func (p *Partial) cells(key GroupKey) []Cell {
	if c, ok := p.Groups[key]; ok {
		return c
	}
	c := newCells(p.NumAggs)
	p.Groups[key] = c
	return c
}

// mergeCell folds src into dst for aggregate expression a.
func mergeCell(dst *Cell, src *Cell, op AggOp) {
	dst.Count += src.Count
	dst.Sum += src.Sum
	if src.Min < dst.Min {
		dst.Min = src.Min
	}
	if src.Max > dst.Max {
		dst.Max = src.Max
	}
	if src.ArgSet {
		better := !dst.ArgSet
		if !better {
			switch op {
			case OpArgMax, OpArgMaxRatio:
				better = src.ArgVal > dst.ArgVal
			case OpArgMin, OpArgMinRatio:
				better = src.ArgVal < dst.ArgVal
			}
		}
		if better {
			dst.ArgKey, dst.ArgVal, dst.ArgSet = src.ArgKey, src.ArgVal, true
		}
	}
}

// Merge folds other into p. Both partials must stem from the same query.
func (p *Partial) Merge(other *Partial, q *Query) {
	for key, src := range other.Groups {
		dst := p.cells(key)
		for i := range src {
			mergeCell(&dst[i], &src[i], q.Aggs[i].Op)
		}
	}
}

// ResultRow is one finalized result group.
type ResultRow struct {
	Key GroupKey
	// Values holds one finalized value per aggregate projection, followed
	// by the derived ratio columns. Arg ops yield float64(entity id),
	// exact for ids below 2^53.
	Values []float64
}

// Result is a finalized query result.
type Result struct {
	QueryID uint64
	Rows    []ResultRow
	// Incomplete marks a degraded scatter/gather result: at least one
	// storage node's partial is missing, so aggregates cover only part of
	// the Analytics Matrix. Single-node results leave it false.
	Incomplete bool
	// CoveredNodes / TotalNodes report scatter coverage when the result
	// came from a multi-node coordinator (both zero otherwise).
	CoveredNodes int
	TotalNodes   int
	// ReplicaShards counts the shards whose partial was answered by a
	// follower replica (freshness-bounded reads) instead of the primary.
	ReplicaShards int
}

// Finalize converts the merged partial into ordered result rows, resolving
// averages, empty-group min/max, derived ratios and the limit.
func (p *Partial) Finalize(q *Query) *Result {
	res := &Result{QueryID: p.QueryID}
	keys := make([]GroupKey, 0, len(p.Groups))
	for k := range p.Groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	if q.Limit > 0 && len(keys) > q.Limit {
		keys = keys[:q.Limit]
	}
	for _, k := range keys {
		cells := p.Groups[k]
		row := ResultRow{Key: k, Values: make([]float64, 0, len(cells)+len(q.Derived))}
		for i, c := range cells {
			row.Values = append(row.Values, finalizeCell(&c, q.Aggs[i].Op))
		}
		for _, r := range q.Derived {
			den := row.Values[r.Den]
			if den == 0 {
				row.Values = append(row.Values, 0)
			} else {
				row.Values = append(row.Values, row.Values[r.Num]/den)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func finalizeCell(c *Cell, op AggOp) float64 {
	switch op {
	case OpCount:
		return float64(c.Count)
	case OpSum:
		return c.Sum
	case OpAvg:
		if c.Count == 0 {
			return 0
		}
		return c.Sum / float64(c.Count)
	case OpMin:
		if c.Count == 0 {
			return 0
		}
		return c.Min
	case OpMax:
		if c.Count == 0 {
			return 0
		}
		return c.Max
	default: // arg ops
		if !c.ArgSet {
			return 0
		}
		return float64(c.ArgKey)
	}
}
