package query

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/vec"
)

// Wire codecs for queries and partial results. The RTA node ships encoded
// queries to every storage node and merges the encoded partials it receives
// back (§4.2). The format is a straightforward little-endian binary layout;
// both sides of the protocol live in this package so the layout stays
// private.

type wbuf struct{ b []byte }

func (w *wbuf) u8(v uint8)    { w.b = append(w.b, v) }
func (w *wbuf) u16(v uint16)  { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *wbuf) u32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) i64(v int64)   { w.u64(uint64(v)) }
func (w *wbuf) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *wbuf) str(s string) {
	w.u16(uint16(len(s)))
	w.b = append(w.b, s...)
}

type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("query: truncated frame at offset %d", r.off)
	}
}

func (r *rbuf) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *rbuf) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rbuf) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *rbuf) i64() int64   { return int64(r.u64()) }
func (r *rbuf) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *rbuf) str() string {
	n := int(r.u16())
	if r.err != nil || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// EncodeQuery serializes q.
func EncodeQuery(q *Query) []byte {
	var w wbuf
	w.u64(q.ID)
	w.u8(q.Template)
	w.u16(uint16(len(q.Where)))
	for _, c := range q.Where {
		w.u16(uint16(len(c)))
		for _, p := range c {
			w.u32(uint32(p.Attr))
			w.u8(uint8(p.Op))
			w.u64(p.Bits)
		}
	}
	w.u16(uint16(len(q.Aggs)))
	for _, a := range q.Aggs {
		w.u8(uint8(a.Op))
		w.u32(uint32(a.Attr))
		w.u32(uint32(a.Attr2))
	}
	w.i64(int64(q.GroupBy))
	if q.GroupDim != nil {
		w.u8(1)
		w.str(q.GroupDim.Table)
		w.str(q.GroupDim.Column)
	} else {
		w.u8(0)
	}
	if q.GroupDictNames {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u16(uint16(len(q.Derived)))
	for _, d := range q.Derived {
		w.u32(uint32(d.Num))
		w.u32(uint32(d.Den))
	}
	w.u32(uint32(q.Limit))
	w.i64(q.Deadline)
	return w.b
}

// DecodeQuery parses a query encoded by EncodeQuery.
func DecodeQuery(b []byte) (*Query, error) {
	r := rbuf{b: b}
	q := &Query{ID: r.u64(), Template: r.u8()}
	nc := int(r.u16())
	for i := 0; i < nc; i++ {
		np := int(r.u16())
		c := make(Conjunct, 0, np)
		for j := 0; j < np; j++ {
			c = append(c, Predicate{
				Attr: int(r.u32()),
				Op:   vec.CmpOp(r.u8()),
				Bits: r.u64(),
			})
		}
		q.Where = append(q.Where, c)
	}
	na := int(r.u16())
	for i := 0; i < na; i++ {
		q.Aggs = append(q.Aggs, AggExpr{
			Op:    AggOp(r.u8()),
			Attr:  int(r.u32()),
			Attr2: int(r.u32()),
		})
	}
	q.GroupBy = int(r.i64())
	if r.u8() == 1 {
		q.GroupDim = &DimJoin{Table: r.str(), Column: r.str()}
	}
	q.GroupDictNames = r.u8() == 1
	nd := int(r.u16())
	for i := 0; i < nd; i++ {
		q.Derived = append(q.Derived, Ratio{Num: int(r.u32()), Den: int(r.u32())})
	}
	q.Limit = int(r.u32())
	q.Deadline = r.i64()
	if r.err != nil {
		return nil, r.err
	}
	return q, nil
}

// EncodePartial serializes p.
func EncodePartial(p *Partial) []byte {
	var w wbuf
	w.u64(p.QueryID)
	w.u32(uint32(p.NumAggs))
	w.u32(uint32(len(p.Groups)))
	for key, cells := range p.Groups {
		w.i64(key.I)
		w.str(key.S)
		for _, c := range cells {
			w.i64(c.Count)
			w.f64(c.Sum)
			w.f64(c.Min)
			w.f64(c.Max)
			w.u64(c.ArgKey)
			w.f64(c.ArgVal)
			if c.ArgSet {
				w.u8(1)
			} else {
				w.u8(0)
			}
		}
	}
	return w.b
}

// DecodePartial parses a partial encoded by EncodePartial.
func DecodePartial(b []byte) (*Partial, error) {
	r := rbuf{b: b}
	p := &Partial{QueryID: r.u64()}
	p.NumAggs = int(r.u32())
	if p.NumAggs < 0 || p.NumAggs > 1<<16 {
		return nil, fmt.Errorf("query: implausible aggregate arity %d", p.NumAggs)
	}
	ng := int(r.u32())
	p.Groups = make(map[GroupKey][]Cell, ng)
	for i := 0; i < ng; i++ {
		key := GroupKey{I: r.i64(), S: r.str()}
		cells := make([]Cell, p.NumAggs)
		for j := range cells {
			cells[j] = Cell{
				Count:  r.i64(),
				Sum:    r.f64(),
				Min:    r.f64(),
				Max:    r.f64(),
				ArgKey: r.u64(),
				ArgVal: r.f64(),
				ArgSet: r.u8() == 1,
			}
		}
		if r.err != nil {
			return nil, r.err
		}
		p.Groups[key] = cells
	}
	if r.err != nil {
		return nil, r.err
	}
	return p, nil
}
