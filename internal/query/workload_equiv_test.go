package query_test

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/columnmap"
	"repro/internal/event"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/workload"
)

// populateMatrix builds an Analytics Matrix over the Huawei small schema:
// every entity gets the dimension-consistent static attributes from the
// factory plus a few applied events so the aggregate indicators are
// non-trivial.
func populateMatrix(t testing.TB, sch *schema.Schema, dims *workload.Dimensions, entities uint64, bucketSize int) *columnmap.ColumnMap {
	t.Helper()
	factory := dims.Factory(sch)
	gen := event.NewGenerator(entities, 42)
	cm := columnmap.New(sch.Slots, bucketSize)
	var ev event.Event
	for e := uint64(1); e <= entities; e++ {
		rec := factory(e)
		for i := 0; i < 3; i++ {
			gen.NextFor(&ev, e)
			sch.Apply(rec, &ev)
		}
		if _, err := cm.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	return cm
}

// TestFusedBatchMatchesSequentialWorkload is the property check behind the
// fused shared scan: a fused batch of N template queries must produce
// byte-identical partials to N sequential single-query scans over the same
// snapshot. It runs the seven Huawei RTA templates (Table 5) plus a batch of
// randomly-parameterized instances, which is exactly the predicate-overlap
// profile the plan compiler fuses.
func TestFusedBatchMatchesSequentialWorkload(t *testing.T) {
	sch, err := workload.BuildSmallSchema()
	if err != nil {
		t.Fatal(err)
	}
	dims, err := workload.BuildDimensions(7)
	if err != nil {
		t.Fatal(err)
	}
	cm := populateMatrix(t, sch, dims, 512, 128)
	buckets := cm.Snapshot()

	gen, err := workload.NewQueryGen(sch, 7)
	if err != nil {
		t.Fatal(err)
	}
	// One fixed instance per template, then more random draws so repeated
	// templates with identical and differing parameters both occur.
	queries := []*query.Query{
		gen.Q1(1), gen.Q2(3), gen.Q3(), gen.Q4(4, 60), gen.Q5(1, 1), gen.Q6(2), gen.Q7(0),
	}
	for i := 0; i < 9; i++ {
		queries = append(queries, gen.Next())
	}
	occurrences := 0
	for _, q := range queries {
		if err := q.Validate(sch); err != nil {
			t.Fatal(err)
		}
		for _, c := range q.Where {
			occurrences += len(c)
		}
	}

	// Sequential reference: one query at a time, as N independent scans.
	want := make([]*query.Partial, len(queries))
	for qi, q := range queries {
		ex := query.NewExecutor(sch, dims.Store)
		want[qi] = query.NewPartial(q)
		for _, b := range buckets {
			if err := ex.ProcessBucket(b, q, want[qi]); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Fused batch: one plan, one pass.
	plan, err := query.CompileBatch(sch, queries)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumPredicates() >= occurrences {
		t.Fatalf("no cross-query sharing: %d distinct predicates from %d occurrences",
			plan.NumPredicates(), occurrences)
	}
	ex := query.NewExecutor(sch, dims.Store)
	got := make([]*query.Partial, len(queries))
	for qi, q := range queries {
		got[qi] = query.NewPartial(q)
	}
	for _, b := range buckets {
		if err := ex.ProcessBucketBatch(b, plan, got); err != nil {
			t.Fatal(err)
		}
	}
	plan.FoldDuplicates(got)

	for qi, q := range queries {
		if !reflect.DeepEqual(got[qi], want[qi]) {
			t.Errorf("query %d (template params %+v): fused partial differs\ngot  %+v\nwant %+v",
				q.ID, q.Where, got[qi], want[qi])
		}
		// Finalized results must agree too (exercises group ordering, limits
		// and derived ratios on top of the raw accumulators).
		if !reflect.DeepEqual(got[qi].Finalize(q), want[qi].Finalize(q)) {
			t.Errorf("query %d: finalized result differs", q.ID)
		}
	}

	// The same batch through the work-stealing entry point. Work stealing
	// partitions buckets across workers nondeterministically, so float sums
	// may differ from the sequential reference by association order (and an
	// argmax/argmin tie may resolve to a different entity); everything else
	// must match exactly.
	partials, err := query.ScanShared(sch, dims.Store, buckets, queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		if !partialsEquivalent(partials[qi], want[qi]) {
			t.Errorf("query %d: ScanShared partial differs from sequential\ngot  %+v\nwant %+v",
				q.ID, partials[qi], want[qi])
		}
	}
}

// partialsEquivalent compares a parallel partial against the sequential
// reference, allowing only the differences a reordered float reduction can
// legitimately produce: sums within relative epsilon, and differing
// argmax/argmin winners when their values tie exactly.
func partialsEquivalent(got, want *query.Partial) bool {
	if got.QueryID != want.QueryID || got.NumAggs != want.NumAggs ||
		len(got.Groups) != len(want.Groups) {
		return false
	}
	const rel = 1e-9
	feq := func(x, y float64) bool {
		if x == y {
			return true
		}
		d := math.Abs(x - y)
		return d <= rel*math.Max(math.Abs(x), math.Abs(y))
	}
	for key, wc := range want.Groups {
		gc, ok := got.Groups[key]
		if !ok || len(gc) != len(wc) {
			return false
		}
		for i := range wc {
			g, w := gc[i], wc[i]
			if g.Count != w.Count || g.Min != w.Min || g.Max != w.Max ||
				g.ArgSet != w.ArgSet || g.ArgVal != w.ArgVal {
				return false
			}
			if !feq(g.Sum, w.Sum) {
				return false
			}
			// Equal ArgVal with different ArgKey is a tie between entities;
			// either winner is a correct argmax/argmin.
			_ = g.ArgKey
		}
	}
	return true
}
