package query

import (
	"fmt"
	"math"

	"repro/internal/columnmap"
	"repro/internal/dimension"
	"repro/internal/schema"
	"repro/internal/vec"
)

// Executor evaluates queries over ColumnMap buckets. One Executor belongs to
// one scan thread: it owns reusable bitmask scratch buffers and a dimension
// lookup cache, so steady-state bucket processing is allocation-free for
// non-grouped queries.
type Executor struct {
	sch  *schema.Schema
	dims *dimension.Store

	acc  []uint64 // DNF accumulator mask
	conj []uint64 // current conjunct mask
	pred []uint64 // current predicate mask

	dimCache map[DimJoin]map[uint64]string
}

// NewExecutor returns an executor bound to a schema and the node's
// replicated dimension tables (dims may be nil if no query joins).
func NewExecutor(sch *schema.Schema, dims *dimension.Store) *Executor {
	return &Executor{sch: sch, dims: dims, dimCache: make(map[DimJoin]map[uint64]string)}
}

func (ex *Executor) ensureScratch(n int) {
	w := vec.MaskWords(n)
	if cap(ex.acc) < w {
		ex.acc = make([]uint64, w)
		ex.conj = make([]uint64, w)
		ex.pred = make([]uint64, w)
	}
	ex.acc = ex.acc[:cap(ex.acc)][:w]
	ex.conj = ex.conj[:cap(ex.conj)][:w]
	ex.pred = ex.pred[:cap(ex.pred)][:w]
}

// ProcessBucket evaluates q over one bucket and folds matches into p. This
// is the process_bucket step of the paper's shared scan (Algorithm 5).
func (ex *Executor) ProcessBucket(b columnmap.Bucket, q *Query, p *Partial) error {
	n := b.N
	if n == 0 {
		return nil
	}
	ex.ensureScratch(n)

	// Filter: DNF over word-packed bitmasks.
	if len(q.Where) == 0 {
		vec.FillMask(ex.acc, n)
	} else {
		vec.ZeroMask(ex.acc)
		for _, c := range q.Where {
			for pi, pr := range c {
				if err := ex.evalPredicate(b, n, pr, ex.pred); err != nil {
					return err
				}
				if pi == 0 {
					copy(ex.conj, ex.pred)
				} else {
					vec.And(ex.conj, ex.pred)
				}
			}
			vec.Or(ex.acc, ex.conj)
		}
	}

	if q.GroupBy < 0 {
		return ex.aggregateGlobal(b, q, p)
	}
	return ex.aggregateGrouped(b, q, p)
}

// evalPredicate fills mask with the predicate result over the bucket.
func (ex *Executor) evalPredicate(b columnmap.Bucket, n int, pr Predicate, mask []uint64) error {
	if pr.Attr < 0 || pr.Attr >= ex.sch.NumAttrs() {
		return fmt.Errorf("query: predicate attribute %d out of range", pr.Attr)
	}
	col := b.Col(pr.Attr)
	switch ex.sch.Attrs[pr.Attr].Type {
	case schema.TypeInt64:
		vec.CmpInt(col, n, pr.Op, int64(pr.Bits), mask)
	case schema.TypeUint64, schema.TypeDictString:
		vec.CmpUint(col, n, pr.Op, pr.Bits, mask)
	case schema.TypeFloat64:
		vec.CmpFloat(col, n, pr.Op, math.Float64frombits(pr.Bits), mask)
	}
	return nil
}

// aggregateGlobal is the vectorized single-group path.
func (ex *Executor) aggregateGlobal(b columnmap.Bucket, q *Query, p *Partial) error {
	matched := vec.Count(ex.acc)
	if matched == 0 {
		return nil
	}
	cells := p.cells(GroupKey{})
	for i, a := range q.Aggs {
		cell := &cells[i]
		cell.Count += matched
		switch a.Op {
		case OpCount:
			// count already folded in
		case OpSum, OpAvg:
			cell.Sum += ex.maskedSum(b, a.Attr)
		case OpMin:
			if v, ok := ex.maskedMin(b, a.Attr); ok && v < cell.Min {
				cell.Min = v
			}
		case OpMax:
			if v, ok := ex.maskedMax(b, a.Attr); ok && v > cell.Max {
				cell.Max = v
			}
		default:
			ex.argScan(b, a, cell)
		}
	}
	return nil
}

func (ex *Executor) maskedSum(b columnmap.Bucket, attr int) float64 {
	col := b.Col(attr)
	if ex.sch.Attrs[attr].Type == schema.TypeFloat64 {
		return vec.SumFloat(col, ex.acc)
	}
	return float64(vec.SumInt(col, ex.acc))
}

func (ex *Executor) maskedMin(b columnmap.Bucket, attr int) (float64, bool) {
	col := b.Col(attr)
	if ex.sch.Attrs[attr].Type == schema.TypeFloat64 {
		return vec.MinFloat(col, ex.acc)
	}
	v, ok := vec.MinInt(col, ex.acc)
	return float64(v), ok
}

func (ex *Executor) maskedMax(b columnmap.Bucket, attr int) (float64, bool) {
	col := b.Col(attr)
	if ex.sch.Attrs[attr].Type == schema.TypeFloat64 {
		return vec.MaxFloat(col, ex.acc)
	}
	v, ok := vec.MaxInt(col, ex.acc)
	return float64(v), ok
}

// argScan folds arg-style aggregates (entity-id of extreme value), which
// need per-record iteration.
func (ex *Executor) argScan(b columnmap.Bucket, a AggExpr, cell *Cell) {
	ids := b.Col(schema.SlotEntityID)
	col := b.Col(a.Attr)
	t := ex.sch.Attrs[a.Attr].Type
	var col2 []uint64
	var t2 schema.Type
	if a.Op == OpArgMinRatio || a.Op == OpArgMaxRatio {
		col2 = b.Col(a.Attr2)
		t2 = ex.sch.Attrs[a.Attr2].Type
	}
	vec.ForEach(ex.acc, func(i int) {
		v := slotVal(col[i], t)
		switch a.Op {
		case OpArgMinRatio, OpArgMaxRatio:
			den := slotVal(col2[i], t2)
			if den == 0 {
				return
			}
			v /= den
		}
		updateArg(cell, a.Op, ids[i], v)
	})
}

func updateArg(cell *Cell, op AggOp, id uint64, v float64) {
	better := !cell.ArgSet
	if !better {
		switch op {
		case OpArgMax, OpArgMaxRatio:
			better = v > cell.ArgVal
		case OpArgMin, OpArgMinRatio:
			better = v < cell.ArgVal
		}
	}
	if better {
		cell.ArgKey, cell.ArgVal, cell.ArgSet = id, v, true
	}
}

// aggregateGrouped is the per-record group-by path.
func (ex *Executor) aggregateGrouped(b columnmap.Bucket, q *Query, p *Partial) error {
	gcol := b.Col(q.GroupBy)
	ids := b.Col(schema.SlotEntityID)
	var dimMap map[uint64]string
	if q.GroupDim != nil {
		var err error
		dimMap, err = ex.dimLookupMap(*q.GroupDim)
		if err != nil {
			return err
		}
	}
	var dict *schema.Dict
	if q.GroupDictNames {
		dict = ex.sch.Dict(q.GroupBy)
	}
	var iterErr error
	vec.ForEach(ex.acc, func(i int) {
		if iterErr != nil {
			return
		}
		var key GroupKey
		gv := gcol[i]
		switch {
		case dimMap != nil:
			s, ok := dimMap[gv]
			if !ok {
				return // inner-join semantics: unmatched keys drop out
			}
			key.S = s
		case dict != nil:
			s, ok := dict.String(gv)
			if !ok {
				return
			}
			key.S = s
		default:
			key.I = int64(gv)
		}
		cells := p.cells(key)
		for ai, a := range q.Aggs {
			cell := &cells[ai]
			cell.Count++
			switch a.Op {
			case OpCount:
			case OpSum, OpAvg:
				cell.Sum += slotVal(b.Col(a.Attr)[i], ex.sch.Attrs[a.Attr].Type)
			case OpMin:
				if v := slotVal(b.Col(a.Attr)[i], ex.sch.Attrs[a.Attr].Type); v < cell.Min {
					cell.Min = v
				}
			case OpMax:
				if v := slotVal(b.Col(a.Attr)[i], ex.sch.Attrs[a.Attr].Type); v > cell.Max {
					cell.Max = v
				}
			default:
				v := slotVal(b.Col(a.Attr)[i], ex.sch.Attrs[a.Attr].Type)
				if a.Op == OpArgMinRatio || a.Op == OpArgMaxRatio {
					den := slotVal(b.Col(a.Attr2)[i], ex.sch.Attrs[a.Attr2].Type)
					if den == 0 {
						continue
					}
					v /= den
				}
				updateArg(cell, a.Op, ids[i], v)
			}
		}
	})
	return iterErr
}

// dimLookupMap returns (and caches) the key -> column-value map for a
// dimension join. Dimension tables are frozen, so the cache never staleness.
func (ex *Executor) dimLookupMap(dj DimJoin) (map[uint64]string, error) {
	if m, ok := ex.dimCache[dj]; ok {
		return m, nil
	}
	if ex.dims == nil {
		return nil, fmt.Errorf("query: dimension join against %q but executor has no dimension store", dj.Table)
	}
	tab, err := ex.dims.Table(dj.Table)
	if err != nil {
		return nil, err
	}
	m := make(map[uint64]string, tab.Len())
	for _, k := range tab.Keys() {
		v, ok := tab.Lookup(k, dj.Column)
		if !ok {
			return nil, fmt.Errorf("query: dimension table %q has no column %q", dj.Table, dj.Column)
		}
		m[k] = v
	}
	ex.dimCache[dj] = m
	return m, nil
}

func slotVal(bits uint64, t schema.Type) float64 {
	switch t {
	case schema.TypeFloat64:
		return math.Float64frombits(bits)
	case schema.TypeUint64:
		return float64(bits)
	default:
		return float64(int64(bits))
	}
}
