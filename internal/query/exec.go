package query

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/columnmap"
	"repro/internal/dimension"
	"repro/internal/schema"
	"repro/internal/vec"
)

// Executor evaluates queries over ColumnMap buckets. One Executor belongs to
// one scan goroutine (see the package doc for the thread-confinement
// contract): it owns reusable bitmask scratch buffers, the batch-plan mask
// slab, and a dimension lookup cache, so steady-state bucket processing is
// allocation-free for non-grouped queries.
type Executor struct {
	sch  *schema.Schema
	dims *dimension.Store

	acc  []uint64 // DNF accumulator mask
	conj []uint64 // current conjunct mask
	pred []uint64 // current predicate mask
	slab []uint64 // per-bucket mask cache for batch plans (one mask per distinct predicate)
	idx  []int32  // matched-record index slab for the grouped path

	// gcache holds one group-row cache per batch-query position: raw group
	// column value -> the partial's accumulator row. It replaces the
	// per-record GroupKey (string hash) map lookup of the grouped path with
	// a uint64 one while a scan pass runs.
	gcache []groupCache

	// Cold-tier scan support: per-column pooled scratch for frozen buckets
	// whose shape has no direct chunk kernel (and for per-record paths like
	// group-by and arg aggregates). Keyed by the FrozenBucket pointer, so a
	// column is decompressed at most once per bucket per pass and the
	// backing arrays are reused across buckets.
	thawRef   *columnmap.FrozenBucket
	thawBufs  [][]uint64
	thawValid []bool

	dimCache map[DimJoin]map[uint64]string
}

// groupCache memoizes group-column values to accumulator rows of one
// partial. It stays valid as long as it observes the same (partial,
// generation) pair; pooled partials bump their generation on Reset.
type groupCache struct {
	p    *Partial
	gen  uint64
	rows map[uint64][]Cell // nil row = group dropped (failed dim/dict join)
}

// rowsFor returns the cache's row map, emptied if the cache was bound to a
// different partial or an earlier generation of p.
func (gc *groupCache) rowsFor(p *Partial) map[uint64][]Cell {
	if gc.rows == nil {
		gc.rows = make(map[uint64][]Cell)
	} else if gc.p != p || gc.gen != p.gen {
		for k := range gc.rows {
			delete(gc.rows, k)
		}
	}
	gc.p, gc.gen = p, p.gen
	return gc.rows
}

// NewExecutor returns an executor bound to a schema and the node's
// replicated dimension tables (dims may be nil if no query joins).
func NewExecutor(sch *schema.Schema, dims *dimension.Store) *Executor {
	return &Executor{sch: sch, dims: dims, dimCache: make(map[DimJoin]map[uint64]string)}
}

func (ex *Executor) ensureScratch(n int) {
	w := vec.MaskWords(n)
	if cap(ex.acc) < w {
		ex.acc = make([]uint64, w)
		ex.conj = make([]uint64, w)
		ex.pred = make([]uint64, w)
	}
	ex.acc = ex.acc[:cap(ex.acc)][:w]
	ex.conj = ex.conj[:cap(ex.conj)][:w]
	ex.pred = ex.pred[:cap(ex.pred)][:w]
}

// ensureSlab returns the mask slab resliced to hold words words, growing the
// backing array only when a bigger batch or bucket arrives.
func (ex *Executor) ensureSlab(words int) []uint64 {
	if cap(ex.slab) < words {
		ex.slab = make([]uint64, words)
	}
	ex.slab = ex.slab[:cap(ex.slab)][:words]
	return ex.slab
}

// ProcessBucket evaluates q over one bucket and folds matches into p. This
// is the process_bucket step of the paper's shared scan (Algorithm 5).
//
// For whole-batch processing with cross-query predicate sharing, compile the
// batch with CompileBatch and use ProcessBucketBatch instead.
func (ex *Executor) ProcessBucket(b columnmap.Bucket, q *Query, p *Partial) error {
	n := b.N
	if n == 0 {
		return nil
	}
	ex.ensureScratch(n)

	// Filter: DNF over word-packed bitmasks.
	if len(q.Where) == 0 {
		vec.FillMask(ex.acc, n)
	} else {
		vec.ZeroMask(ex.acc)
		for _, c := range q.Where {
			for pi, pr := range c {
				if err := ex.evalPredicate(b, n, pr, ex.pred); err != nil {
					return err
				}
				if pi == 0 {
					vec.CopyMask(ex.conj, ex.pred)
				} else {
					vec.And(ex.conj, ex.pred)
				}
			}
			vec.Or(ex.acc, ex.conj)
		}
	}
	return ex.aggregate(b, q, p, ex.acc, nil)
}

// aggregate folds the records selected by mask into p. gc may be nil; the
// batch path passes a per-query group cache.
func (ex *Executor) aggregate(b columnmap.Bucket, q *Query, p *Partial, mask []uint64, gc *groupCache) error {
	if q.GroupBy < 0 {
		ex.aggregateGlobal(b, q, p, mask)
		return nil
	}
	return ex.aggregateGrouped(b, q, p, mask, gc)
}

// evalPredicate fills mask with the predicate result over the bucket.
// Frozen buckets are evaluated directly on the compressed chunks; shapes
// without a direct kernel decompress into the pooled scratch and run the
// raw kernels.
func (ex *Executor) evalPredicate(b columnmap.Bucket, n int, pr Predicate, mask []uint64) error {
	if pr.Attr < 0 || pr.Attr >= ex.sch.NumAttrs() {
		return fmt.Errorf("query: predicate attribute %d out of range", pr.Attr)
	}
	if fb := b.Frozen(); fb != nil {
		ch := fb.Chunk(pr.Attr)
		var ok bool
		switch ex.sch.Attrs[pr.Attr].Type {
		case schema.TypeInt64:
			ok = vec.CmpChunkInt(ch, n, pr.Op, int64(pr.Bits), mask)
		case schema.TypeUint64, schema.TypeDictString:
			ok = vec.CmpChunkUint(ch, n, pr.Op, pr.Bits, mask)
		case schema.TypeFloat64:
			ok = vec.CmpChunkFloat(ch, n, pr.Op, math.Float64frombits(pr.Bits), mask)
		}
		if ok {
			return nil
		}
	}
	col := ex.col(b, pr.Attr)
	switch ex.sch.Attrs[pr.Attr].Type {
	case schema.TypeInt64:
		vec.CmpInt(col, n, pr.Op, int64(pr.Bits), mask)
	case schema.TypeUint64, schema.TypeDictString:
		vec.CmpUint(col, n, pr.Op, pr.Bits, mask)
	case schema.TypeFloat64:
		vec.CmpFloat(col, n, pr.Op, math.Float64frombits(pr.Bits), mask)
	}
	return nil
}

// col returns column c of the bucket for per-record access: the hot slab
// directly, or a pooled decompressed copy for frozen buckets.
func (ex *Executor) col(b columnmap.Bucket, c int) []uint64 {
	fb := b.Frozen()
	if fb == nil {
		return b.Col(c)
	}
	if ex.thawBufs == nil {
		ex.thawBufs = make([][]uint64, ex.sch.Slots)
		ex.thawValid = make([]bool, ex.sch.Slots)
	}
	if ex.thawRef != fb {
		ex.thawRef = fb
		for i := range ex.thawValid {
			ex.thawValid[i] = false
		}
	}
	if !ex.thawValid[c] {
		ex.thawBufs[c] = fb.DecompressCol(c, ex.thawBufs[c])
		ex.thawValid[c] = true
	}
	return ex.thawBufs[c][:b.N]
}

// aggregateGlobal is the vectorized single-group path.
func (ex *Executor) aggregateGlobal(b columnmap.Bucket, q *Query, p *Partial, mask []uint64) {
	matched := vec.Count(mask)
	if matched == 0 {
		return
	}
	cells := p.cells(GroupKey{})
	for i, a := range q.Aggs {
		cell := &cells[i]
		cell.Count += matched
		switch a.Op {
		case OpCount:
			// count already folded in
		case OpSum, OpAvg:
			cell.Sum += ex.maskedSum(b, a.Attr, mask)
		case OpMin:
			if v, ok := ex.maskedMin(b, a.Attr, mask); ok && v < cell.Min {
				cell.Min = v
			}
		case OpMax:
			if v, ok := ex.maskedMax(b, a.Attr, mask); ok && v > cell.Max {
				cell.Max = v
			}
		default:
			ex.argScan(b, a, cell, mask)
		}
	}
}

func (ex *Executor) maskedSum(b columnmap.Bucket, attr int, mask []uint64) float64 {
	isFloat := ex.sch.Attrs[attr].Type == schema.TypeFloat64
	if fb := b.Frozen(); fb != nil {
		ch := fb.Chunk(attr)
		if !isFloat {
			return float64(vec.SumIntChunk(ch, mask))
		}
		if v, ok := vec.SumFloatChunk(ch, mask); ok {
			return v
		}
		return vec.SumFloat(ex.col(b, attr), mask)
	}
	col := b.Col(attr)
	if isFloat {
		return vec.SumFloat(col, mask)
	}
	return float64(vec.SumInt(col, mask))
}

func (ex *Executor) maskedMin(b columnmap.Bucket, attr int, mask []uint64) (float64, bool) {
	isFloat := ex.sch.Attrs[attr].Type == schema.TypeFloat64
	if fb := b.Frozen(); fb != nil {
		ch := fb.Chunk(attr)
		if !isFloat {
			v, any := vec.MinIntChunk(ch, mask)
			return float64(v), any
		}
		if v, any, ok := vec.MinFloatChunk(ch, mask); ok {
			return v, any
		}
		return vec.MinFloat(ex.col(b, attr), mask)
	}
	col := b.Col(attr)
	if isFloat {
		return vec.MinFloat(col, mask)
	}
	v, ok := vec.MinInt(col, mask)
	return float64(v), ok
}

func (ex *Executor) maskedMax(b columnmap.Bucket, attr int, mask []uint64) (float64, bool) {
	isFloat := ex.sch.Attrs[attr].Type == schema.TypeFloat64
	if fb := b.Frozen(); fb != nil {
		ch := fb.Chunk(attr)
		if !isFloat {
			v, any := vec.MaxIntChunk(ch, mask)
			return float64(v), any
		}
		if v, any, ok := vec.MaxFloatChunk(ch, mask); ok {
			return v, any
		}
		return vec.MaxFloat(ex.col(b, attr), mask)
	}
	col := b.Col(attr)
	if isFloat {
		return vec.MaxFloat(col, mask)
	}
	v, ok := vec.MaxInt(col, mask)
	return float64(v), ok
}

// argScan folds arg-style aggregates (entity-id of extreme value), which
// need per-record iteration. The mask words are walked inline rather than
// through vec.ForEach so the hot batch path stays closure- and
// allocation-free.
func (ex *Executor) argScan(b columnmap.Bucket, a AggExpr, cell *Cell, mask []uint64) {
	ids := ex.col(b, schema.SlotEntityID)
	col := ex.col(b, a.Attr)
	t := ex.sch.Attrs[a.Attr].Type
	var col2 []uint64
	var t2 schema.Type
	ratio := a.Op == OpArgMinRatio || a.Op == OpArgMaxRatio
	if ratio {
		col2 = ex.col(b, a.Attr2)
		t2 = ex.sch.Attrs[a.Attr2].Type
	}
	for wi, w := range mask {
		base := wi * 64
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			w &= w - 1
			v := slotVal(col[i], t)
			if ratio {
				den := slotVal(col2[i], t2)
				if den == 0 {
					continue
				}
				v /= den
			}
			updateArg(cell, a.Op, ids[i], v)
		}
	}
}

func updateArg(cell *Cell, op AggOp, id uint64, v float64) {
	better := !cell.ArgSet
	if !better {
		switch op {
		case OpArgMax, OpArgMaxRatio:
			better = v > cell.ArgVal
		case OpArgMin, OpArgMinRatio:
			better = v < cell.ArgVal
		}
	}
	if better {
		cell.ArgKey, cell.ArgVal, cell.ArgSet = id, v, true
	}
}

// resolveGroup maps a raw group-column value to the partial's accumulator
// row, or nil when inner-join semantics drop the group (unmatched dimension
// or dictionary key).
func resolveGroup(p *Partial, gv uint64, dimMap map[uint64]string, dict *schema.Dict) []Cell {
	var key GroupKey
	switch {
	case dimMap != nil:
		s, ok := dimMap[gv]
		if !ok {
			return nil
		}
		key.S = s
	case dict != nil:
		s, ok := dict.String(gv)
		if !ok {
			return nil
		}
		key.S = s
	default:
		key.I = int64(gv)
	}
	return p.cells(key)
}

// aggregateGrouped is the per-record group-by path. With a group cache the
// (hash-expensive) GroupKey resolution runs once per distinct group value
// per scan pass; every further record is one uint64 map probe.
func (ex *Executor) aggregateGrouped(b columnmap.Bucket, q *Query, p *Partial, mask []uint64, gc *groupCache) error {
	gcol := ex.col(b, q.GroupBy)
	ids := ex.col(b, schema.SlotEntityID)
	var dimMap map[uint64]string
	if q.GroupDim != nil {
		var err error
		dimMap, err = ex.dimLookupMap(*q.GroupDim)
		if err != nil {
			return err
		}
	}
	var dict *schema.Dict
	if q.GroupDictNames {
		dict = ex.sch.Dict(q.GroupBy)
	}
	var rows map[uint64][]Cell
	if gc != nil {
		rows = gc.rowsFor(p)
	}
	ex.idx = vec.Indices(mask, ex.idx)
	for _, i32 := range ex.idx {
		i := int(i32)
		gv := gcol[i]
		var cells []Cell
		if rows != nil {
			var hit bool
			cells, hit = rows[gv]
			if !hit {
				cells = resolveGroup(p, gv, dimMap, dict)
				rows[gv] = cells // nil remembers dropped groups too
			}
		} else {
			cells = resolveGroup(p, gv, dimMap, dict)
		}
		if cells == nil {
			continue // inner-join semantics: unmatched keys drop out
		}
		for ai, a := range q.Aggs {
			cell := &cells[ai]
			cell.Count++
			switch a.Op {
			case OpCount:
			case OpSum, OpAvg:
				cell.Sum += slotVal(ex.col(b, a.Attr)[i], ex.sch.Attrs[a.Attr].Type)
			case OpMin:
				if v := slotVal(ex.col(b, a.Attr)[i], ex.sch.Attrs[a.Attr].Type); v < cell.Min {
					cell.Min = v
				}
			case OpMax:
				if v := slotVal(ex.col(b, a.Attr)[i], ex.sch.Attrs[a.Attr].Type); v > cell.Max {
					cell.Max = v
				}
			default:
				v := slotVal(ex.col(b, a.Attr)[i], ex.sch.Attrs[a.Attr].Type)
				if a.Op == OpArgMinRatio || a.Op == OpArgMaxRatio {
					den := slotVal(ex.col(b, a.Attr2)[i], ex.sch.Attrs[a.Attr2].Type)
					if den == 0 {
						continue
					}
					v /= den
				}
				updateArg(cell, a.Op, ids[i], v)
			}
		}
	}
	return nil
}

// dimLookupMap returns (and caches) the key -> column-value map for a
// dimension join. Dimension tables are frozen, so the cache never goes
// stale.
func (ex *Executor) dimLookupMap(dj DimJoin) (map[uint64]string, error) {
	if m, ok := ex.dimCache[dj]; ok {
		return m, nil
	}
	if ex.dims == nil {
		return nil, fmt.Errorf("query: dimension join against %q but executor has no dimension store", dj.Table)
	}
	tab, err := ex.dims.Table(dj.Table)
	if err != nil {
		return nil, err
	}
	m := make(map[uint64]string, tab.Len())
	for _, k := range tab.Keys() {
		v, ok := tab.Lookup(k, dj.Column)
		if !ok {
			return nil, fmt.Errorf("query: dimension table %q has no column %q", dj.Table, dj.Column)
		}
		m[k] = v
	}
	ex.dimCache[dj] = m
	return m, nil
}

func slotVal(bits uint64, t schema.Type) float64 {
	switch t {
	case schema.TypeFloat64:
		return math.Float64frombits(bits)
	case schema.TypeUint64:
		return float64(bits)
	default:
		return float64(int64(bits))
	}
}
