package query

import (
	"reflect"
	"testing"

	"repro/internal/columnmap"
	"repro/internal/schema"
	"repro/internal/vec"
)

// dictFixture builds a schema with a dictionary-encoded "plan" attribute
// (variable-length data support, §7) and ten records.
type dictFixture struct {
	sch  *schema.Schema
	cm   *columnmap.ColumnMap
	plan int
	dur  int
}

func newDictFixture(t *testing.T) *dictFixture {
	t.Helper()
	sch, err := schema.NewBuilder().
		AddStatic(schema.StaticSpec{Name: "plan", Type: schema.TypeDictString}).
		AddStatic(schema.StaticSpec{Name: "dur", Type: schema.TypeInt64}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	f := &dictFixture{
		sch:  sch,
		cm:   columnmap.New(sch.Slots, 4),
		plan: sch.MustAttrIndex("plan"),
		dur:  sch.MustAttrIndex("dur"),
	}
	plans := []string{"prepaid", "contract", "business"}
	for e := int64(1); e <= 10; e++ {
		rec := sch.NewRecord(uint64(e))
		sch.SetString(rec, f.plan, plans[e%3])
		rec.SetInt(f.dur, e*10)
		if _, err := f.cm.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestDictRoundTrip(t *testing.T) {
	d := schema.NewDict()
	a := d.Code("x")
	b := d.Code("y")
	if a == b || d.Code("x") != a || d.Len() != 2 {
		t.Fatalf("interning broken: %d %d len=%d", a, b, d.Len())
	}
	if s, ok := d.String(a); !ok || s != "x" {
		t.Fatalf("String(%d) = %q,%v", a, s, ok)
	}
	if _, ok := d.String(99); ok {
		t.Fatal("unknown code resolved")
	}
	if _, ok := d.Lookup("zzz"); ok {
		t.Fatal("Lookup interned")
	}
}

func TestStringPredicateFilter(t *testing.T) {
	f := newDictFixture(t)
	q := &Query{
		ID:      1,
		Where:   []Conjunct{{PredString(f.sch, f.plan, vec.Eq, "contract")}},
		Aggs:    []AggExpr{{Op: OpCount}, {Op: OpSum, Attr: f.dur}},
		GroupBy: -1,
	}
	if err := q.Validate(f.sch); err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f.sch, nil)
	p := NewPartial(q)
	for _, b := range f.cm.Snapshot() {
		if err := ex.ProcessBucket(b, q, p); err != nil {
			t.Fatal(err)
		}
	}
	res := p.Finalize(q)
	// plans[e%3]=="contract" for e in {1,4,7,10}.
	if res.Rows[0].Values[0] != 4 || res.Rows[0].Values[1] != (1+4+7+10)*10 {
		t.Fatalf("contract rows = %+v", res.Rows[0])
	}
	// An unknown string matches nothing.
	q2 := &Query{
		ID:      2,
		Where:   []Conjunct{{PredString(f.sch, f.plan, vec.Eq, "nope")}},
		Aggs:    []AggExpr{{Op: OpCount}},
		GroupBy: -1,
	}
	p2 := NewPartial(q2)
	for _, b := range f.cm.Snapshot() {
		if err := ex.ProcessBucket(b, q2, p2); err != nil {
			t.Fatal(err)
		}
	}
	if len(p2.Finalize(q2).Rows) != 0 {
		t.Fatal("unknown string matched records")
	}
}

func TestGroupByStringNames(t *testing.T) {
	f := newDictFixture(t)
	q := &Query{
		ID:             3,
		Aggs:           []AggExpr{{Op: OpCount}},
		GroupBy:        f.plan,
		GroupDictNames: true,
	}
	if err := q.Validate(f.sch); err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f.sch, nil)
	p := NewPartial(q)
	for _, b := range f.cm.Snapshot() {
		if err := ex.ProcessBucket(b, q, p); err != nil {
			t.Fatal(err)
		}
	}
	res := p.Finalize(q)
	want := map[string]float64{"business": 3, "contract": 4, "prepaid": 3}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %+v", res.Rows)
	}
	for _, row := range res.Rows {
		if want[row.Key.S] != row.Values[0] {
			t.Fatalf("group %q = %v, want %v", row.Key.S, row.Values[0], want[row.Key.S])
		}
	}
	// The row evaluator agrees.
	re := NewRowEvaluator(f.sch, nil)
	rp := NewPartial(q)
	rec := make([]uint64, f.sch.Slots)
	for rid := 0; rid < f.cm.Len(); rid++ {
		if err := f.cm.Gather(uint32(rid), rec); err != nil {
			t.Fatal(err)
		}
		if err := re.AddRecord(q, rec, rp); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(rp.Finalize(q), res) {
		t.Fatal("row evaluator diverges on string group-by")
	}
	// Codec preserves the flag.
	got, err := DecodeQuery(EncodeQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if !got.GroupDictNames {
		t.Fatal("GroupDictNames lost in codec")
	}
}

func TestDictValidation(t *testing.T) {
	f := newDictFixture(t)
	// Range predicates on string attributes are rejected.
	q := &Query{
		ID:      1,
		Where:   []Conjunct{{{Attr: f.plan, Op: vec.Gt, Bits: 0}}},
		Aggs:    []AggExpr{{Op: OpCount}},
		GroupBy: -1,
	}
	if err := q.Validate(f.sch); err == nil {
		t.Fatal("range predicate on string attribute accepted")
	}
	// GroupDictNames on a non-string attribute is rejected.
	q2 := &Query{ID: 2, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: f.dur, GroupDictNames: true}
	if err := q2.Validate(f.sch); err == nil {
		t.Fatal("GroupDictNames on int attribute accepted")
	}
	// GroupDictNames plus GroupDim is rejected.
	q3 := &Query{ID: 3, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: f.plan,
		GroupDictNames: true, GroupDim: &DimJoin{Table: "T", Column: "c"}}
	if err := q3.Validate(f.sch); err == nil {
		t.Fatal("GroupDictNames+GroupDim accepted")
	}
	// GroupDictNames without GroupBy is rejected.
	q4 := &Query{ID: 4, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1, GroupDictNames: true}
	if err := q4.Validate(f.sch); err == nil {
		t.Fatal("GroupDictNames without GroupBy accepted")
	}
}

func TestSchemaStringHelpers(t *testing.T) {
	f := newDictFixture(t)
	rec := f.sch.NewRecord(99)
	f.sch.SetString(rec, f.plan, "prepaid")
	if s, ok := f.sch.GetString(rec, f.plan); !ok || s != "prepaid" {
		t.Fatalf("GetString = %q,%v", s, ok)
	}
	if _, ok := f.sch.GetString(rec, f.dur); ok {
		t.Fatal("GetString on non-dict attribute succeeded")
	}
	if f.sch.Dict(f.plan) == nil || f.sch.Dict(f.dur) != nil {
		t.Fatal("Dict accessor wrong")
	}
}
