// Package query implements AIM's RTA query model and its shared-scan
// execution over ColumnMap buckets (§2.3, §4.7).
//
// A Query is a SQL-like aggregation over the Analytics Matrix: a DNF filter,
// a list of aggregate projections, an optional group-by (optionally mapped
// through a replicated dimension table — the paper's inlined joins), derived
// ratio columns and a limit. Queries are executed bucket-at-a-time so that a
// whole batch of queries shares one scan pass (Algorithm 5), producing
// mergeable Partials; the stateless RTA node merges the partials from every
// storage partition and finalizes them into a Result.
//
// Batches are fused before scanning: CompileBatch deduplicates structurally
// identical predicates across the batch and Executor.ProcessBucketBatch
// evaluates each distinct predicate once per bucket into a cached mask slab,
// assembling every query's filter from the shared masks (see BatchPlan).
//
// Thread confinement: an Executor is confined to a single scan goroutine.
// It owns mutable scratch state (bitmask buffers, the batch mask slab, the
// dimension lookup cache) that is reused across buckets without
// synchronization — create one Executor per goroutine and never share it.
// Schemas, dimension stores, Queries and compiled BatchPlans are immutable
// during a scan and safe to share between executors.
package query

import (
	"fmt"
	"math"

	"repro/internal/schema"
	"repro/internal/vec"
)

// PredString builds an equality/inequality predicate on a dictionary-encoded
// string attribute. A value absent from the dictionary yields a predicate
// that matches nothing (Eq) or everything stored (Ne), since no record can
// carry an unknown code.
func PredString(sch *schema.Schema, attr int, op vec.CmpOp, v string) Predicate {
	code := ^uint64(0) // sentinel no record holds
	if d := sch.Dict(attr); d != nil {
		if c, ok := d.Lookup(v); ok {
			code = c
		}
	}
	return Predicate{Attr: attr, Op: op, Bits: code}
}

// AggOp is an aggregate projection operator.
type AggOp uint8

const (
	// OpCount counts matching records.
	OpCount AggOp = iota
	// OpSum sums an attribute.
	OpSum
	// OpAvg averages an attribute.
	OpAvg
	// OpMin takes the minimum of an attribute.
	OpMin
	// OpMax takes the maximum of an attribute.
	OpMax
	// OpArgMax reports the entity id holding the maximum attribute value
	// (Q6's "report the entity-ids of the records with the longest call").
	OpArgMax
	// OpArgMin reports the entity id holding the minimum attribute value.
	OpArgMin
	// OpArgMinRatio reports the entity id minimizing Attr/Attr2 over
	// records where Attr2 > 0 (Q7's "smallest flat rate").
	OpArgMinRatio
	// OpArgMaxRatio reports the entity id maximizing Attr/Attr2.
	OpArgMaxRatio
)

// String implements fmt.Stringer.
func (op AggOp) String() string {
	switch op {
	case OpCount:
		return "count"
	case OpSum:
		return "sum"
	case OpAvg:
		return "avg"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpArgMax:
		return "argmax"
	case OpArgMin:
		return "argmin"
	case OpArgMinRatio:
		return "argmin-ratio"
	case OpArgMaxRatio:
		return "argmax-ratio"
	default:
		return fmt.Sprintf("AggOp(%d)", uint8(op))
	}
}

// AggExpr is one aggregate projection.
type AggExpr struct {
	Op AggOp
	// Attr is the aggregated attribute (unused for OpCount).
	Attr int
	// Attr2 is the denominator attribute for the ratio arg ops.
	Attr2 int
}

// Predicate is a comparison of one attribute against a constant. Bits holds
// the operand in the attribute's value representation (int64/uint64 bits or
// float64 bits); use PredInt / PredFloat to construct it.
type Predicate struct {
	Attr int
	Op   vec.CmpOp
	Bits uint64
}

// PredInt builds a predicate comparing an integer-typed attribute to v.
func PredInt(attr int, op vec.CmpOp, v int64) Predicate {
	return Predicate{Attr: attr, Op: op, Bits: uint64(v)}
}

// PredFloat builds a predicate comparing a float-typed attribute to v.
func PredFloat(attr int, op vec.CmpOp, v float64) Predicate {
	return Predicate{Attr: attr, Op: op, Bits: math.Float64bits(v)}
}

// Conjunct is an AND of predicates.
type Conjunct []Predicate

// DimJoin maps a group-by key attribute through a replicated dimension
// table, producing string group keys (e.g. zip -> RegionInfo.city).
type DimJoin struct {
	Table  string
	Column string
}

// Ratio is a derived output column: Values[Num] / Values[Den] of the
// finalized aggregates (Q3's SUM/SUM cost ratio).
type Ratio struct {
	Num, Den int
}

// Query is one RTA query.
type Query struct {
	// ID identifies the query within a batch/wire exchange.
	ID uint64
	// Template tags the workload template the query instantiates (1..7 for
	// the paper's Q1..Q7; 0 = untemplated). It only feeds per-template
	// latency metrics and never affects execution.
	Template uint8
	// Where is a DNF filter: OR over conjuncts, AND within. Empty matches
	// every record.
	Where []Conjunct
	// Aggs are the aggregate projections (at least one).
	Aggs []AggExpr
	// GroupBy is the grouping attribute, or -1 for a single global group.
	GroupBy int
	// GroupDim optionally maps group keys through a dimension table.
	GroupDim *DimJoin
	// GroupDictNames resolves group keys of a dictionary-encoded string
	// attribute back to strings (mutually exclusive with GroupDim).
	GroupDictNames bool
	// Derived appends ratio columns computed from finalized aggregates.
	Derived []Ratio
	// Limit caps the number of result rows (0 = unlimited). Rows are
	// key-ordered before the limit is applied.
	Limit int
	// Deadline is an absolute wall-clock bound (UnixNano, 0 = none). A
	// storage node evicts the query from its next scan round once the
	// deadline passes, answering with a typed deadline error — the RTA
	// side of graceful degradation under overload.
	Deadline int64
}

// Validate checks the query against a schema.
func (q *Query) Validate(sch *schema.Schema) error {
	if len(q.Aggs) == 0 {
		return fmt.Errorf("query %d: no aggregate projections", q.ID)
	}
	checkAttr := func(a int, what string) error {
		if a < 0 || a >= sch.NumAttrs() {
			return fmt.Errorf("query %d: %s attribute %d out of range [0,%d)", q.ID, what, a, sch.NumAttrs())
		}
		return nil
	}
	for _, c := range q.Where {
		if len(c) == 0 {
			return fmt.Errorf("query %d: empty conjunct", q.ID)
		}
		for _, p := range c {
			if err := checkAttr(p.Attr, "predicate"); err != nil {
				return err
			}
			if sch.Attrs[p.Attr].Type == schema.TypeDictString && p.Op != vec.Eq && p.Op != vec.Ne {
				return fmt.Errorf("query %d: string attribute %q only supports == and !=",
					q.ID, sch.Attrs[p.Attr].Name)
			}
		}
	}
	for _, a := range q.Aggs {
		if a.Op != OpCount {
			if err := checkAttr(a.Attr, "aggregate"); err != nil {
				return err
			}
		}
		if a.Op == OpArgMinRatio || a.Op == OpArgMaxRatio {
			if err := checkAttr(a.Attr2, "ratio denominator"); err != nil {
				return err
			}
		}
	}
	if q.GroupBy >= 0 {
		if err := checkAttr(q.GroupBy, "group-by"); err != nil {
			return err
		}
		if q.GroupDictNames {
			if q.GroupDim != nil {
				return fmt.Errorf("query %d: GroupDictNames and GroupDim are mutually exclusive", q.ID)
			}
			if sch.Attrs[q.GroupBy].Type != schema.TypeDictString {
				return fmt.Errorf("query %d: GroupDictNames on non-string attribute %q",
					q.ID, sch.Attrs[q.GroupBy].Name)
			}
		}
	} else if q.GroupDim != nil || q.GroupDictNames {
		return fmt.Errorf("query %d: group-key mapping without GroupBy", q.ID)
	}
	for _, r := range q.Derived {
		if r.Num < 0 || r.Num >= len(q.Aggs) || r.Den < 0 || r.Den >= len(q.Aggs) {
			return fmt.Errorf("query %d: derived ratio references aggregate out of range", q.ID)
		}
	}
	if q.Limit < 0 {
		return fmt.Errorf("query %d: negative limit", q.ID)
	}
	return nil
}
