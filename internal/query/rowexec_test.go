package query

import (
	"reflect"
	"testing"

	"repro/internal/vec"
)

// TestRowEvaluatorMatchesColumnarExecutor cross-checks the row-at-a-time
// evaluator (used by the baseline engines) against the vectorized bucket
// executor on every query shape.
func TestRowEvaluatorMatchesColumnarExecutor(t *testing.T) {
	f := newFixture(t)
	queries := []*Query{
		{ID: 1, Aggs: []AggExpr{{Op: OpCount}, {Op: OpSum, Attr: f.dur}, {Op: OpAvg, Attr: f.cost}, {Op: OpMin, Attr: f.dur}, {Op: OpMax, Attr: f.dur}}, GroupBy: -1},
		{ID: 2, Where: []Conjunct{{PredInt(f.calls, vec.Gt, 5)}}, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1},
		{ID: 3, Where: []Conjunct{{PredInt(f.calls, vec.Le, 2)}, {PredFloat(f.cost, vec.Gt, 12)}}, Aggs: []AggExpr{{Op: OpSum, Attr: f.calls}}, GroupBy: -1},
		{ID: 4, Aggs: []AggExpr{{Op: OpCount}, {Op: OpSum, Attr: f.dur}}, GroupBy: f.zip},
		{ID: 5, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: f.zip, GroupDim: &DimJoin{Table: "RegionInfo", Column: "city"}},
		{ID: 6, Aggs: []AggExpr{{Op: OpArgMax, Attr: f.dur}, {Op: OpArgMinRatio, Attr: f.cost, Attr2: f.dur}}, GroupBy: -1},
		{ID: 7, Aggs: []AggExpr{{Op: OpSum, Attr: f.cost}, {Op: OpSum, Attr: f.dur}}, GroupBy: f.calls, Derived: []Ratio{{Num: 0, Den: 1}}, Limit: 4},
	}
	ex := NewExecutor(f.sch, f.dims)
	re := NewRowEvaluator(f.sch, f.dims)
	rec := make([]uint64, f.sch.Slots)
	for _, q := range queries {
		if err := q.Validate(f.sch); err != nil {
			t.Fatalf("q%d: %v", q.ID, err)
		}
		colP := NewPartial(q)
		for _, b := range f.cm.Snapshot() {
			if err := ex.ProcessBucket(b, q, colP); err != nil {
				t.Fatal(err)
			}
		}
		rowP := NewPartial(q)
		for rid := 0; rid < f.cm.Len(); rid++ {
			if err := f.cm.Gather(uint32(rid), rec); err != nil {
				t.Fatal(err)
			}
			if err := re.AddRecord(q, rec, rowP); err != nil {
				t.Fatal(err)
			}
		}
		colRes, rowRes := colP.Finalize(q), rowP.Finalize(q)
		if !reflect.DeepEqual(colRes, rowRes) {
			t.Fatalf("q%d mismatch:\ncolumnar %+v\nrow      %+v", q.ID, colRes, rowRes)
		}
	}
}

func TestRowEvaluatorDimErrors(t *testing.T) {
	f := newFixture(t)
	re := NewRowEvaluator(f.sch, nil)
	q := &Query{ID: 1, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: f.zip, GroupDim: &DimJoin{Table: "RegionInfo", Column: "city"}}
	rec := make([]uint64, f.sch.Slots)
	if err := re.AddRecord(q, rec, NewPartial(q)); err == nil {
		t.Fatal("nil dimension store accepted")
	}
	re2 := NewRowEvaluator(f.sch, f.dims)
	q2 := &Query{ID: 2, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: f.zip, GroupDim: &DimJoin{Table: "RegionInfo", Column: "nope"}}
	if err := re2.AddRecord(q2, rec, NewPartial(q2)); err == nil {
		t.Fatal("missing dimension column accepted")
	}
}
