package query_test

import (
	"os"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/workload"
)

// TestMetricsOverheadGuard enforces the observability budget: running the
// fused shared scan with a live ScanMetrics registry must stay within 3%
// of the uninstrumented (nil *ScanMetrics) loop. Instrumentation happens
// once per scan round, not per bucket or per record, so the delta should
// be far below the guard. Gated behind AIM_OBS_GUARD=1 because benchmark
// timing under a loaded CI box is noisy.
func TestMetricsOverheadGuard(t *testing.T) {
	if os.Getenv("AIM_OBS_GUARD") != "1" {
		t.Skip("set AIM_OBS_GUARD=1 to run the metrics overhead guard")
	}
	sch, err := workload.BuildSmallSchema()
	if err != nil {
		t.Fatal(err)
	}
	dims, err := workload.BuildDimensions(7)
	if err != nil {
		t.Fatal(err)
	}
	buckets := populateMatrix(t, sch, dims, 8192, 1024).Snapshot()
	gen, err := workload.NewQueryGen(sch, 7)
	if err != nil {
		t.Fatal(err)
	}
	queries := templateBatch(gen, 8)
	plan, err := query.CompileBatch(sch, queries)
	if err != nil {
		t.Fatal(err)
	}
	partials := make([]*query.Partial, len(queries))
	for qi, q := range queries {
		partials[qi] = query.NewPartial(q)
	}

	// One measured unit = one full scan round (batch of 8 over every
	// bucket) instrumented exactly like StorageNode.runRound: a clock read
	// before, and one ObserveRound after. Only met varies.
	round := func(met *query.ScanMetrics) func(b *testing.B) {
		return func(b *testing.B) {
			ex := query.NewExecutor(sch, dims.Store)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for qi, q := range queries {
					partials[qi].Reset(q)
				}
				t0 := time.Now()
				for _, bk := range buckets {
					if err := ex.ProcessBucketBatch(bk, plan, partials); err != nil {
						b.Fatal(err)
					}
				}
				plan.FoldDuplicates(partials)
				met.ObserveRound(plan, time.Since(t0))
			}
		}
	}

	reg := obs.NewRegistry()
	met := query.NewScanMetrics(reg, func(s string) string { return s })
	// Interleave A/B/A/B and keep each side's best time: the minimum is
	// the least noise-contaminated estimate of the true cost.
	best := func(fn func(b *testing.B)) float64 {
		bestNs := 0.0
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(fn)
			ns := float64(r.NsPerOp())
			if bestNs == 0 || ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs
	}
	baseline := best(round(nil))
	instrumented := best(round(met))

	ratio := instrumented / baseline
	t.Logf("scan round: baseline %.0f ns, instrumented %.0f ns, ratio %.4f", baseline, instrumented, ratio)
	if ratio > 1.03 {
		t.Fatalf("metrics overhead %.2f%% exceeds the 3%% budget (baseline %.0f ns, instrumented %.0f ns)",
			(ratio-1)*100, baseline, instrumented)
	}
}
