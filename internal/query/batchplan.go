package query

import (
	"fmt"
	"sort"

	"repro/internal/columnmap"
	"repro/internal/schema"
	"repro/internal/vec"
)

// BatchPlan is the compiled form of one shared-scan query batch. Compiling
// fuses the batch's filters: structurally identical predicates that appear
// in several queries (the common case for the Huawei templates, which share
// their subscription-type / city / value-segment filters) are deduplicated
// and evaluated exactly once per bucket into the executor's mask slab; each
// query's DNF accumulator is then assembled from the cached masks with
// AND/OR word operations instead of re-reading the columns.
//
// Two further fusions happen at compile time:
//
//   - Complement sharing: a predicate whose complement on the same attribute
//     and operand is already in the plan (a > v vs a <= v, a == v vs a != v)
//     is not evaluated against the column at all — its mask is derived by
//     bit-complementing the twin's cached mask. Float attributes are
//     excluded (NaN breaks comparison complements).
//   - Column grouping: distinct predicates are ordered by attribute, so all
//     predicates over one column are evaluated back-to-back while the column
//     is hot in cache, and columns no query references are never read.
//
// A BatchPlan is immutable after CompileBatch and safe to share across scan
// goroutines; all mutable evaluation state lives in each goroutine's
// Executor.
type BatchPlan struct {
	queries []*Query
	preds   []Predicate // distinct predicates, ordered by (Attr, Bits, Op)
	twin    []int32     // per predicate: slab index of the complement twin, or -1
	progs   []queryProg
	dupOf   []int32 // per query: index of the representative duplicate (== own index if none)
}

// queryProg is one query's filter program over the plan's predicate slab.
type queryProg struct {
	matchAll bool      // empty WHERE: every record matches
	conjs    [][]int32 // DNF: OR over conjuncts, AND over slab indices within
}

// complementOp returns the complement comparison (NOT (a op v) == a op' v)
// and whether one exists. Complements hold exactly for total orders; the
// caller must exclude float attributes (NaN compares false on both sides).
func complementOp(op vec.CmpOp) (vec.CmpOp, bool) {
	switch op {
	case vec.Lt:
		return vec.Ge, true
	case vec.Le:
		return vec.Gt, true
	case vec.Gt:
		return vec.Le, true
	case vec.Ge:
		return vec.Lt, true
	case vec.Eq:
		return vec.Ne, true
	case vec.Ne:
		return vec.Eq, true
	default:
		return op, false
	}
}

// CompileBatch compiles a query batch into a fused scan plan. Predicate
// attributes are range-checked here once, so the per-bucket path can skip
// validation. Queries are referenced, not copied; they must not be mutated
// while the plan is in use.
func CompileBatch(sch *schema.Schema, queries []*Query) (*BatchPlan, error) {
	plan := &BatchPlan{queries: queries, progs: make([]queryProg, len(queries))}
	index := make(map[Predicate]int32)
	for qi, q := range queries {
		prog := &plan.progs[qi]
		if len(q.Where) == 0 {
			prog.matchAll = true
			continue
		}
		prog.conjs = make([][]int32, len(q.Where))
		for ci, c := range q.Where {
			refs := make([]int32, len(c))
			for pi, pr := range c {
				if pr.Attr < 0 || pr.Attr >= sch.NumAttrs() {
					return nil, fmt.Errorf("query %d: predicate attribute %d out of range [0,%d)",
						q.ID, pr.Attr, sch.NumAttrs())
				}
				id, ok := index[pr]
				if !ok {
					id = int32(len(plan.preds))
					plan.preds = append(plan.preds, pr)
					index[pr] = id
				}
				refs[pi] = id
			}
			prog.conjs[ci] = refs
		}
	}

	// Order the distinct predicates by (Attr, Bits, Op) for column locality
	// and so that a complement pair lands adjacent with the lower CmpOp
	// first, then remap the programs through the permutation.
	order := make([]int32, len(plan.preds))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := plan.preds[order[a]], plan.preds[order[b]]
		if pa.Attr != pb.Attr {
			return pa.Attr < pb.Attr
		}
		if pa.Bits != pb.Bits {
			return pa.Bits < pb.Bits
		}
		return pa.Op < pb.Op
	})
	perm := make([]int32, len(plan.preds)) // old slab index -> new
	sorted := make([]Predicate, len(plan.preds))
	for newID, oldID := range order {
		perm[oldID] = int32(newID)
		sorted[newID] = plan.preds[oldID]
	}
	plan.preds = sorted
	for qi := range plan.progs {
		for _, refs := range plan.progs[qi].conjs {
			for i, r := range refs {
				refs[i] = perm[r]
			}
		}
	}

	// Mark complement twins: a predicate derives its mask from an earlier
	// twin with the complementary operator on the same attribute/operand.
	// Lt<Le<Gt<Ge<Eq<Ne guarantees exactly one side of each pair can point
	// backwards, so derivation never chains.
	plan.twin = make([]int32, len(plan.preds))
	for i := range plan.twin {
		plan.twin[i] = -1
	}
	for i, pr := range plan.preds {
		if sch.Attrs[pr.Attr].Type == schema.TypeFloat64 {
			continue
		}
		cop, ok := complementOp(pr.Op)
		if !ok || cop >= pr.Op {
			continue
		}
		if tw, ok := index[Predicate{Attr: pr.Attr, Op: cop, Bits: pr.Bits}]; ok {
			plan.twin[i] = perm[tw]
		}
	}

	// Detect duplicate queries: under concurrent clients the coordinator
	// routinely batches several instances of the same template with the same
	// parameters (Q3 has no parameters at all). Their partials are
	// necessarily identical, so only the first instance is scanned and
	// FoldDuplicates copies the result to the rest.
	plan.dupOf = make([]int32, len(queries))
	seen := make(map[string]int32, len(queries))
	for qi, q := range queries {
		key := canonicalKey(&plan.progs[qi], q)
		if rep, ok := seen[key]; ok {
			plan.dupOf[qi] = rep
		} else {
			seen[key] = int32(qi)
			plan.dupOf[qi] = int32(qi)
		}
	}
	return plan, nil
}

// canonicalKey renders the parts of a compiled query that determine its
// partial: the filter program in canonical order (conjunct predicate sets
// sorted, then conjuncts sorted) plus aggregates and grouping. Derived
// ratios and Limit are Finalize-time only and deliberately excluded.
func canonicalKey(prog *queryProg, q *Query) string {
	var sb []byte
	if prog.matchAll {
		sb = append(sb, '*')
	} else {
		conjs := make([]string, len(prog.conjs))
		for ci, refs := range prog.conjs {
			s := append([]int32(nil), refs...)
			sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
			conjs[ci] = fmt.Sprint(s)
		}
		sort.Strings(conjs)
		sb = append(sb, fmt.Sprint(conjs)...)
	}
	sb = append(sb, '|')
	for _, a := range q.Aggs {
		sb = append(sb, fmt.Sprintf("%d:%d:%d;", a.Op, a.Attr, a.Attr2)...)
	}
	sb = append(sb, fmt.Sprintf("|g%d|d%v", q.GroupBy, q.GroupDictNames)...)
	if q.GroupDim != nil {
		sb = append(sb, fmt.Sprintf("|j%s.%s", q.GroupDim.Table, q.GroupDim.Column)...)
	}
	return string(sb)
}

// Queries returns the batch the plan was compiled from.
func (bp *BatchPlan) Queries() []*Query { return bp.queries }

// NumPredicates returns the number of distinct predicates the plan holds —
// the per-bucket slab width in masks.
func (bp *BatchPlan) NumPredicates() int { return len(bp.preds) }

// NumEvaluated returns how many distinct predicates are evaluated against
// columns per bucket; the rest are derived by complementing a twin's mask.
func (bp *BatchPlan) NumEvaluated() int {
	n := 0
	for _, tw := range bp.twin {
		if tw < 0 {
			n++
		}
	}
	return n
}

// NumDuplicates returns how many queries in the batch are exact duplicates
// of an earlier query and therefore skipped during scanning.
func (bp *BatchPlan) NumDuplicates() int {
	n := 0
	for qi, rep := range bp.dupOf {
		if rep != int32(qi) {
			n++
		}
	}
	return n
}

// FoldDuplicates copies each representative's partial into its duplicates'
// partials. Call it once after the last bucket of a scan pass; the per-
// bucket path leaves duplicate queries' partials untouched.
func (bp *BatchPlan) FoldDuplicates(partials []*Partial) {
	for qi, rep := range bp.dupOf {
		if rep != int32(qi) {
			partials[qi].Merge(partials[rep], bp.queries[qi])
		}
	}
}

// ProcessBucketBatch evaluates the whole compiled batch over one bucket,
// folding query i's matches into partials[i]. It is the fused counterpart
// of calling ProcessBucket once per query: every distinct predicate is
// evaluated (or complement-derived) once into the executor's mask slab, and
// each query's DNF is assembled from the cached masks. Duplicate queries
// are not scanned at all — call plan.FoldDuplicates(partials) once after
// the pass to fill them in.
//
// The steady-state path performs no heap allocations for non-grouped
// queries: the slab and scratch masks are pooled in the executor, sized on
// first use to the batch's distinct-predicate count times the bucket's mask
// words.
func (ex *Executor) ProcessBucketBatch(b columnmap.Bucket, plan *BatchPlan, partials []*Partial) error {
	if len(partials) != len(plan.queries) {
		return fmt.Errorf("query: batch has %d queries but %d partials", len(plan.queries), len(partials))
	}
	n := b.N
	if n == 0 {
		return nil
	}
	ex.ensureScratch(n)
	w := vec.MaskWords(n)
	slab := ex.ensureSlab(len(plan.preds) * w)
	if len(ex.gcache) < len(plan.queries) {
		ex.gcache = append(ex.gcache, make([]groupCache, len(plan.queries)-len(ex.gcache))...)
	}

	// Fill the mask slab: one mask per distinct predicate, columns touched
	// once each thanks to the (Attr, Bits, Op) ordering.
	for pi := range plan.preds {
		mask := slab[pi*w : (pi+1)*w]
		if tw := plan.twin[pi]; tw >= 0 {
			// Complement of an already-cached mask; no column read.
			vec.FillMask(mask, n)
			vec.AndNot(mask, slab[int(tw)*w:(int(tw)+1)*w])
			continue
		}
		if err := ex.evalPredicate(b, n, plan.preds[pi], mask); err != nil {
			return err
		}
	}

	// Assemble each query's accumulator from the cached masks and aggregate.
	// Duplicate queries are skipped; FoldDuplicates materializes them after
	// the pass.
	for qi, q := range plan.queries {
		if plan.dupOf[qi] != int32(qi) {
			continue
		}
		prog := &plan.progs[qi]
		acc := ex.acc
		switch {
		case prog.matchAll:
			vec.FillMask(acc, n)
		case len(prog.conjs) == 1:
			// Single conjunct: AND directly into the accumulator; a single
			// predicate aliases its slab mask with no copy at all.
			refs := prog.conjs[0]
			if len(refs) == 1 {
				acc = slab[int(refs[0])*w : (int(refs[0])+1)*w]
			} else {
				vec.CopyMask(acc, slab[int(refs[0])*w:(int(refs[0])+1)*w])
				for _, r := range refs[1:] {
					vec.And(acc, slab[int(r)*w:(int(r)+1)*w])
				}
			}
		default:
			vec.ZeroMask(acc)
			for _, refs := range prog.conjs {
				vec.CopyMask(ex.conj, slab[int(refs[0])*w:(int(refs[0])+1)*w])
				for _, r := range refs[1:] {
					vec.And(ex.conj, slab[int(r)*w:(int(r)+1)*w])
				}
				vec.Or(acc, ex.conj)
			}
		}
		if err := ex.aggregate(b, q, partials[qi], acc, &ex.gcache[qi]); err != nil {
			return err
		}
	}
	return nil
}
