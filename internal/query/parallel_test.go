package query

import (
	"reflect"
	"testing"

	"repro/internal/vec"
)

func TestScanSharedMatchesSequential(t *testing.T) {
	f := newFixture(t)
	queries := []*Query{
		{ID: 1, Aggs: []AggExpr{{Op: OpCount}, {Op: OpSum, Attr: f.dur}, {Op: OpMin, Attr: f.cost}}, GroupBy: -1},
		{ID: 2, Where: []Conjunct{{PredInt(f.calls, vec.Gt, 4)}}, Aggs: []AggExpr{{Op: OpAvg, Attr: f.cost}}, GroupBy: -1},
		{ID: 3, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: f.zip, GroupDim: &DimJoin{Table: "RegionInfo", Column: "city"}},
		{ID: 4, Aggs: []AggExpr{{Op: OpArgMax, Attr: f.dur}}, GroupBy: -1},
	}
	for _, q := range queries {
		if err := q.Validate(f.sch); err != nil {
			t.Fatal(err)
		}
	}
	buckets := f.cm.Snapshot()

	// Sequential reference.
	ex := NewExecutor(f.sch, f.dims)
	want := make([]*Result, len(queries))
	for qi, q := range queries {
		p := NewPartial(q)
		for _, b := range buckets {
			if err := ex.ProcessBucket(b, q, p); err != nil {
				t.Fatal(err)
			}
		}
		want[qi] = p.Finalize(q)
	}

	for _, workers := range []int{1, 2, 3, 8, 100} {
		partials, err := ScanShared(f.sch, f.dims, buckets, queries, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for qi, q := range queries {
			got := partials[qi].Finalize(q)
			if !reflect.DeepEqual(got, want[qi]) {
				t.Fatalf("workers=%d query %d:\ngot  %+v\nwant %+v", workers, q.ID, got, want[qi])
			}
		}
	}
}

func TestScanSharedEdgeCases(t *testing.T) {
	f := newFixture(t)
	// No queries.
	if out, err := ScanShared(f.sch, f.dims, f.cm.Snapshot(), nil, 4); err != nil || len(out) != 0 {
		t.Fatalf("no queries: %v %v", out, err)
	}
	// No buckets.
	q := &Query{ID: 1, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1}
	out, err := ScanShared(f.sch, f.dims, nil, []*Query{q}, 4)
	if err != nil || len(out) != 1 || len(out[0].Groups) != 0 {
		t.Fatalf("no buckets: %v %v", out, err)
	}
	// Errors propagate (missing dimension table).
	bad := &Query{ID: 2, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: f.zip, GroupDim: &DimJoin{Table: "Nope", Column: "x"}}
	if _, err := ScanShared(f.sch, f.dims, f.cm.Snapshot(), []*Query{bad}, 4); err == nil {
		t.Fatal("missing dimension table not surfaced")
	}
	// workers <= 0 coerces to 1.
	if _, err := ScanShared(f.sch, f.dims, f.cm.Snapshot(), []*Query{q}, 0); err != nil {
		t.Fatal(err)
	}
}
