package query

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/vec"
)

func TestScanSharedMatchesSequential(t *testing.T) {
	f := newFixture(t)
	queries := []*Query{
		{ID: 1, Aggs: []AggExpr{{Op: OpCount}, {Op: OpSum, Attr: f.dur}, {Op: OpMin, Attr: f.cost}}, GroupBy: -1},
		{ID: 2, Where: []Conjunct{{PredInt(f.calls, vec.Gt, 4)}}, Aggs: []AggExpr{{Op: OpAvg, Attr: f.cost}}, GroupBy: -1},
		{ID: 3, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: f.zip, GroupDim: &DimJoin{Table: "RegionInfo", Column: "city"}},
		{ID: 4, Aggs: []AggExpr{{Op: OpArgMax, Attr: f.dur}}, GroupBy: -1},
	}
	for _, q := range queries {
		if err := q.Validate(f.sch); err != nil {
			t.Fatal(err)
		}
	}
	buckets := f.cm.Snapshot()

	// Sequential reference.
	ex := NewExecutor(f.sch, f.dims)
	want := make([]*Result, len(queries))
	for qi, q := range queries {
		p := NewPartial(q)
		for _, b := range buckets {
			if err := ex.ProcessBucket(b, q, p); err != nil {
				t.Fatal(err)
			}
		}
		want[qi] = p.Finalize(q)
	}

	for _, workers := range []int{1, 2, 3, 8, 100} {
		partials, err := ScanShared(f.sch, f.dims, buckets, queries, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for qi, q := range queries {
			got := partials[qi].Finalize(q)
			if !reflect.DeepEqual(got, want[qi]) {
				t.Fatalf("workers=%d query %d:\ngot  %+v\nwant %+v", workers, q.ID, got, want[qi])
			}
		}
	}
}

func TestScanSharedEdgeCases(t *testing.T) {
	f := newFixture(t)
	// No queries.
	if out, err := ScanShared(f.sch, f.dims, f.cm.Snapshot(), nil, 4); err != nil || len(out) != 0 {
		t.Fatalf("no queries: %v %v", out, err)
	}
	// No buckets.
	q := &Query{ID: 1, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1}
	out, err := ScanShared(f.sch, f.dims, nil, []*Query{q}, 4)
	if err != nil || len(out) != 1 || len(out[0].Groups) != 0 {
		t.Fatalf("no buckets: %v %v", out, err)
	}
	// Errors propagate (missing dimension table).
	bad := &Query{ID: 2, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: f.zip, GroupDim: &DimJoin{Table: "Nope", Column: "x"}}
	if _, err := ScanShared(f.sch, f.dims, f.cm.Snapshot(), []*Query{bad}, 4); err == nil {
		t.Fatal("missing dimension table not surfaced")
	}
	// workers <= 0 coerces to 1.
	if _, err := ScanShared(f.sch, f.dims, f.cm.Snapshot(), []*Query{q}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestScanSharedWorkersExceedBuckets(t *testing.T) {
	f := newFixture(t)
	buckets := f.cm.Snapshot() // 3 buckets
	q := &Query{ID: 1, Aggs: []AggExpr{{Op: OpCount}, {Op: OpSum, Attr: f.dur}}, GroupBy: -1}

	ex := NewExecutor(f.sch, f.dims)
	want := NewPartial(q)
	for _, b := range buckets {
		if err := ex.ProcessBucket(b, q, want); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{len(buckets) + 1, 64} {
		out, err := ScanShared(f.sch, f.dims, buckets, []*Query{q}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(out[0], want) {
			t.Fatalf("workers=%d: partial differs\ngot  %+v\nwant %+v", workers, out[0], want)
		}
	}
}

// TestScanSharedErrorMidScan injects a failure that only manifests while
// processing buckets (a dimension join against a missing table) into the
// middle of an otherwise healthy batch: no partial may be returned — not
// even for the healthy queries — and all worker goroutines must exit.
func TestScanSharedErrorMidScan(t *testing.T) {
	f := newFixture(t)
	queries := []*Query{
		{ID: 1, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1},
		{ID: 2, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: f.zip, GroupDim: &DimJoin{Table: "Nope", Column: "x"}},
		{ID: 3, Aggs: []AggExpr{{Op: OpSum, Attr: f.dur}}, GroupBy: -1},
	}
	before := runtime.NumGoroutine()
	out, err := ScanShared(f.sch, f.dims, f.cm.Snapshot(), queries, 4)
	if err == nil {
		t.Fatal("mid-scan error not surfaced")
	}
	if out != nil {
		t.Fatalf("error scan returned partials: %+v", out)
	}
	// ScanShared waits on its WaitGroup, so workers should already be gone;
	// poll briefly to absorb unrelated runtime goroutine churn.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("worker goroutines leaked: %d before, %d after", before, n)
	}
}
