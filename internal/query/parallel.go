package query

import (
	"sync"
	"sync/atomic"

	"repro/internal/columnmap"
	"repro/internal/dimension"
	"repro/internal/schema"
)

// ScanShared runs a query batch over the buckets with `workers` goroutines
// pulling buckets from a shared queue — the work-stealing load-balancing
// alternative of §3.2 ("partition the data into many small chunks at the
// start of a Scan and then continuously assign chunks to idle threads").
// Buckets are the natural chunks: fixed-size, cache-resident units.
//
// It returns one merged Partial per query, identical to what a sequential
// shared scan produces. The fixed thread-partition assignment (the design
// AIM chose) lives in core.StorageNode; this entry point exists for the
// ablation bench and for embedding scans outside a storage node.
func ScanShared(sch *schema.Schema, dims *dimension.Store, buckets []columnmap.Bucket, queries []*Query, workers int) ([]*Partial, error) {
	if workers <= 0 {
		workers = 1
	}
	if workers > len(buckets) && len(buckets) > 0 {
		workers = len(buckets)
	}
	merged := make([]*Partial, len(queries))
	for i, q := range queries {
		merged[i] = NewPartial(q)
	}
	if len(buckets) == 0 || len(queries) == 0 {
		return merged, nil
	}
	// Compile the fused batch plan once; every worker shares the immutable
	// plan while keeping its own executor (mask slab, scratch, dim cache).
	plan, err := CompileBatch(sch, queries)
	if err != nil {
		return nil, err
	}

	var next atomic.Int64 // shared chunk queue: the next bucket to claim
	var mu sync.Mutex     // guards merged and firstErr
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ex := NewExecutor(sch, dims)
			local := make([]*Partial, len(queries))
			for i, q := range queries {
				local[i] = NewPartial(q)
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(buckets) {
					break
				}
				if err := ex.ProcessBucketBatch(buckets[i], plan, local); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			for qi, q := range queries {
				merged[qi].Merge(local[qi], q)
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	plan.FoldDuplicates(merged)
	return merged, nil
}
