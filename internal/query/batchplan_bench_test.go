package query_test

import (
	"fmt"
	"testing"

	"repro/internal/columnmap"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/workload"
)

// setupBench populates an 8k-entity matrix over the small Huawei schema and
// returns the scan fixtures.
func setupBench(b *testing.B) (*schema.Schema, []columnmap.Bucket, *workload.QueryGen, *workload.Dimensions) {
	b.Helper()
	sch, err := workload.BuildSmallSchema()
	if err != nil {
		b.Fatal(err)
	}
	dims, err := workload.BuildDimensions(7)
	if err != nil {
		b.Fatal(err)
	}
	cm := populateMatrix(b, sch, dims, 8192, 1024)
	gen, err := workload.NewQueryGen(sch, 7)
	if err != nil {
		b.Fatal(err)
	}
	return sch, cm.Snapshot(), gen, dims
}

// templateBatch returns the first size queries of the cyclic template
// sequence Q1..Q7, Q1', Q2', ... — repeated templates carry fresh random
// parameters, matching what a node's coordinator batches under load.
func templateBatch(gen *workload.QueryGen, size int) []*query.Query {
	fixed := []*query.Query{
		gen.Q1(1), gen.Q2(3), gen.Q3(), gen.Q4(4, 60), gen.Q5(1, 1), gen.Q6(2), gen.Q7(0),
	}
	out := make([]*query.Query, 0, size)
	if size < len(fixed) {
		out = append(out, fixed[:size]...)
	} else {
		out = append(out, fixed...)
	}
	for len(out) < size {
		out = append(out, gen.Next())
	}
	return out
}

// BenchmarkSharedScanBatch compares three batch-scan regimes at the batch
// sizes the acceptance criteria name. One iteration is one full scan round
// (the whole batch over every bucket):
//
//   - single: one independent pass per query — batch × single-query cost,
//     the thread-per-query baseline the fused plan is measured against.
//   - naive:  shared bucket walk, but each query re-evaluates its own
//     predicates per bucket (the pre-batch-plan code path).
//   - fused:  compiled BatchPlan — predicate dedup, complement sharing,
//     mask-slab caching, duplicate-query elimination.
func BenchmarkSharedScanBatch(b *testing.B) {
	sch, buckets, gen, dims := setupBench(b)
	for _, size := range []int{1, 4, 8, 16} {
		queries := templateBatch(gen, size)
		partials := make([]*query.Partial, len(queries))
		for qi, q := range queries {
			partials[qi] = query.NewPartial(q)
		}

		b.Run(fmt.Sprintf("single/batch=%d", size), func(b *testing.B) {
			ex := query.NewExecutor(sch, dims.Store)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for qi, q := range queries {
					partials[qi].Reset(q)
				}
				for qi, q := range queries {
					for _, bk := range buckets {
						if err := ex.ProcessBucket(bk, q, partials[qi]); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})

		b.Run(fmt.Sprintf("naive/batch=%d", size), func(b *testing.B) {
			ex := query.NewExecutor(sch, dims.Store)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for qi, q := range queries {
					partials[qi].Reset(q)
				}
				for _, bk := range buckets {
					for qi, q := range queries {
						if err := ex.ProcessBucket(bk, q, partials[qi]); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})

		b.Run(fmt.Sprintf("fused/batch=%d", size), func(b *testing.B) {
			plan, err := query.CompileBatch(sch, queries)
			if err != nil {
				b.Fatal(err)
			}
			ex := query.NewExecutor(sch, dims.Store)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for qi, q := range queries {
					partials[qi].Reset(q)
				}
				for _, bk := range buckets {
					if err := ex.ProcessBucketBatch(bk, plan, partials); err != nil {
						b.Fatal(err)
					}
				}
				plan.FoldDuplicates(partials)
			}
		})
	}
}
