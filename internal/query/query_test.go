package query

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/columnmap"
	"repro/internal/dimension"
	"repro/internal/schema"
	"repro/internal/vec"
)

// fixture builds a schema of static attributes, a ColumnMap with ten
// records spread over three buckets, and a RegionInfo dimension table.
//
//	entity  zip   calls  dur   cost
//	1..10   1000+e%3  e   e*10  e*1.5
type fixture struct {
	sch   *schema.Schema
	cm    *columnmap.ColumnMap
	dims  *dimension.Store
	zip   int
	calls int
	dur   int
	cost  int
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sch, err := schema.NewBuilder().
		AddStatic(schema.StaticSpec{Name: "zip", Type: schema.TypeInt64}).
		AddStatic(schema.StaticSpec{Name: "calls", Type: schema.TypeInt64}).
		AddStatic(schema.StaticSpec{Name: "dur", Type: schema.TypeInt64}).
		AddStatic(schema.StaticSpec{Name: "cost", Type: schema.TypeFloat64}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{
		sch:   sch,
		cm:    columnmap.New(sch.Slots, 4),
		zip:   sch.MustAttrIndex("zip"),
		calls: sch.MustAttrIndex("calls"),
		dur:   sch.MustAttrIndex("dur"),
		cost:  sch.MustAttrIndex("cost"),
	}
	for e := int64(1); e <= 10; e++ {
		rec := sch.NewRecord(uint64(e))
		rec.SetInt(f.zip, 1000+e%3)
		rec.SetInt(f.calls, e)
		rec.SetInt(f.dur, e*10)
		rec.SetFloat(f.cost, float64(e)*1.5)
		if _, err := f.cm.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	rt := dimension.NewTable("RegionInfo", "city")
	for zip, city := range map[uint64]string{1000: "Zurich", 1001: "Geneva", 1002: "Bern"} {
		if err := rt.Insert(zip, city); err != nil {
			t.Fatal(err)
		}
	}
	f.dims = dimension.NewStore()
	f.dims.Add(rt)
	return f
}

// run executes q over all buckets of the fixture and finalizes.
func (f *fixture) run(t *testing.T, q *Query) *Result {
	t.Helper()
	if err := q.Validate(f.sch); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ex := NewExecutor(f.sch, f.dims)
	p := NewPartial(q)
	for _, b := range f.cm.Snapshot() {
		if err := ex.ProcessBucket(b, q, p); err != nil {
			t.Fatalf("ProcessBucket: %v", err)
		}
	}
	return p.Finalize(q)
}

func TestGlobalAggregates(t *testing.T) {
	f := newFixture(t)
	q := &Query{
		ID:      1,
		Where:   []Conjunct{{PredInt(f.calls, vec.Gt, 5)}}, // entities 6..10
		Aggs:    []AggExpr{{Op: OpCount}, {Op: OpSum, Attr: f.dur}, {Op: OpAvg, Attr: f.cost}, {Op: OpMin, Attr: f.dur}, {Op: OpMax, Attr: f.dur}},
		GroupBy: -1,
	}
	res := f.run(t, q)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	v := res.Rows[0].Values
	if v[0] != 5 {
		t.Errorf("count = %v, want 5", v[0])
	}
	if v[1] != 60+70+80+90+100 {
		t.Errorf("sum(dur) = %v, want 400", v[1])
	}
	wantAvg := (6 + 7 + 8 + 9 + 10) * 1.5 / 5
	if math.Abs(v[2]-wantAvg) > 1e-9 {
		t.Errorf("avg(cost) = %v, want %v", v[2], wantAvg)
	}
	if v[3] != 60 || v[4] != 100 {
		t.Errorf("min/max = %v/%v, want 60/100", v[3], v[4])
	}
}

func TestEmptyFilterMatchesAll(t *testing.T) {
	f := newFixture(t)
	res := f.run(t, &Query{ID: 2, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1})
	if got := res.Rows[0].Values[0]; got != 10 {
		t.Fatalf("count = %v, want 10", got)
	}
}

func TestDNFFilter(t *testing.T) {
	f := newFixture(t)
	// calls <= 2 OR (calls >= 9 AND cost > 14.0)  => {1,2} ∪ {10} (9*1.5=13.5 excluded)
	q := &Query{
		ID: 3,
		Where: []Conjunct{
			{PredInt(f.calls, vec.Le, 2)},
			{PredInt(f.calls, vec.Ge, 9), PredFloat(f.cost, vec.Gt, 14.0)},
		},
		Aggs:    []AggExpr{{Op: OpCount}, {Op: OpSum, Attr: f.calls}},
		GroupBy: -1,
	}
	res := f.run(t, q)
	if res.Rows[0].Values[0] != 3 {
		t.Fatalf("count = %v, want 3", res.Rows[0].Values[0])
	}
	if res.Rows[0].Values[1] != 1+2+10 {
		t.Fatalf("sum = %v, want 13", res.Rows[0].Values[1])
	}
}

func TestNoMatchesFinalizesZero(t *testing.T) {
	f := newFixture(t)
	q := &Query{
		ID:      4,
		Where:   []Conjunct{{PredInt(f.calls, vec.Gt, 100)}},
		Aggs:    []AggExpr{{Op: OpCount}, {Op: OpMin, Attr: f.dur}, {Op: OpMax, Attr: f.dur}, {Op: OpAvg, Attr: f.cost}},
		GroupBy: -1,
	}
	res := f.run(t, q)
	// A global aggregate with zero matches yields no groups at all.
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(res.Rows))
	}
}

func TestGroupByAttribute(t *testing.T) {
	f := newFixture(t)
	q := &Query{
		ID:      5,
		Aggs:    []AggExpr{{Op: OpCount}, {Op: OpSum, Attr: f.dur}},
		GroupBy: f.zip,
	}
	res := f.run(t, q)
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Rows))
	}
	// zip 1000: entities 3,6,9 -> count 3, dur 180; keys sorted ascending.
	if res.Rows[0].Key.I != 1000 || res.Rows[0].Values[0] != 3 || res.Rows[0].Values[1] != 180 {
		t.Fatalf("group 1000 = %+v", res.Rows[0])
	}
	// zip 1001: entities 1,4,7,10 -> count 4, dur 220.
	if res.Rows[1].Key.I != 1001 || res.Rows[1].Values[0] != 4 || res.Rows[1].Values[1] != 220 {
		t.Fatalf("group 1001 = %+v", res.Rows[1])
	}
}

func TestGroupByDimensionJoin(t *testing.T) {
	f := newFixture(t)
	q := &Query{
		ID:       6,
		Aggs:     []AggExpr{{Op: OpCount}},
		GroupBy:  f.zip,
		GroupDim: &DimJoin{Table: "RegionInfo", Column: "city"},
	}
	res := f.run(t, q)
	want := map[string]float64{"Bern": 3, "Geneva": 4, "Zurich": 3}
	if len(res.Rows) != len(want) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		if want[row.Key.S] != row.Values[0] {
			t.Fatalf("city %q count = %v, want %v", row.Key.S, row.Values[0], want[row.Key.S])
		}
	}
	// Rows sorted by string key.
	if res.Rows[0].Key.S != "Bern" || res.Rows[2].Key.S != "Zurich" {
		t.Fatalf("row order: %v", res.Rows)
	}
}

func TestDimensionJoinInnerSemantics(t *testing.T) {
	f := newFixture(t)
	// A dimension table that only knows zip 1000 drops the other groups.
	small := dimension.NewTable("Small", "name")
	if err := small.Insert(1000, "only"); err != nil {
		t.Fatal(err)
	}
	f.dims.Add(small)
	q := &Query{
		ID:       7,
		Aggs:     []AggExpr{{Op: OpCount}},
		GroupBy:  f.zip,
		GroupDim: &DimJoin{Table: "Small", Column: "name"},
	}
	res := f.run(t, q)
	if len(res.Rows) != 1 || res.Rows[0].Key.S != "only" || res.Rows[0].Values[0] != 3 {
		t.Fatalf("inner join rows = %+v", res.Rows)
	}
}

func TestArgMaxAndRatio(t *testing.T) {
	f := newFixture(t)
	q := &Query{
		ID: 8,
		Aggs: []AggExpr{
			{Op: OpArgMax, Attr: f.dur},
			{Op: OpArgMin, Attr: f.cost},
			{Op: OpArgMinRatio, Attr: f.cost, Attr2: f.dur},
		},
		GroupBy: -1,
	}
	res := f.run(t, q)
	v := res.Rows[0].Values
	if v[0] != 10 {
		t.Errorf("argmax(dur) = %v, want entity 10", v[0])
	}
	if v[1] != 1 {
		t.Errorf("argmin(cost) = %v, want entity 1", v[1])
	}
	// cost/dur = 0.15 for every entity; ties keep the first seen (entity 1).
	if v[2] != 1 {
		t.Errorf("argmin-ratio = %v, want entity 1", v[2])
	}
}

func TestDerivedRatioAndLimit(t *testing.T) {
	f := newFixture(t)
	q := &Query{
		ID:      9,
		Aggs:    []AggExpr{{Op: OpSum, Attr: f.cost}, {Op: OpSum, Attr: f.dur}},
		GroupBy: f.calls,
		Derived: []Ratio{{Num: 0, Den: 1}},
		Limit:   4,
	}
	res := f.run(t, q)
	if len(res.Rows) != 4 {
		t.Fatalf("limit: rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Values) != 3 {
			t.Fatalf("row has %d values, want 3", len(row.Values))
		}
		if math.Abs(row.Values[2]-0.15) > 1e-9 {
			t.Fatalf("derived ratio = %v, want 0.15", row.Values[2])
		}
	}
}

func TestDerivedRatioZeroDenominator(t *testing.T) {
	f := newFixture(t)
	q := &Query{
		ID:      10,
		Where:   []Conjunct{{PredInt(f.calls, vec.Gt, 100)}},
		Aggs:    []AggExpr{{Op: OpSum, Attr: f.cost}, {Op: OpSum, Attr: f.dur}},
		GroupBy: f.zip,
		Derived: []Ratio{{Num: 0, Den: 1}},
	}
	res := f.run(t, q)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Force a zero-denominator group via direct partial manipulation.
	p := NewPartial(q)
	p.Groups[GroupKey{I: 1}] = newCells(2)
	r := p.Finalize(q)
	if r.Rows[0].Values[2] != 0 {
		t.Fatalf("zero-denominator ratio = %v, want 0", r.Rows[0].Values[2])
	}
}

func TestPartialMergeEqualsSingleScan(t *testing.T) {
	f := newFixture(t)
	q := &Query{
		ID:      11,
		Aggs:    []AggExpr{{Op: OpCount}, {Op: OpSum, Attr: f.dur}, {Op: OpMin, Attr: f.cost}, {Op: OpMax, Attr: f.cost}, {Op: OpArgMax, Attr: f.dur}},
		GroupBy: f.zip,
	}
	if err := q.Validate(f.sch); err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f.sch, f.dims)

	whole := NewPartial(q)
	for _, b := range f.cm.Snapshot() {
		if err := ex.ProcessBucket(b, q, whole); err != nil {
			t.Fatal(err)
		}
	}

	// Per-bucket partials merged pairwise must give the same result.
	merged := NewPartial(q)
	for _, b := range f.cm.Snapshot() {
		p := NewPartial(q)
		if err := ex.ProcessBucket(b, q, p); err != nil {
			t.Fatal(err)
		}
		merged.Merge(p, q)
	}
	a, bres := whole.Finalize(q), merged.Finalize(q)
	if !reflect.DeepEqual(a, bres) {
		t.Fatalf("merge mismatch:\nwhole : %+v\nmerged: %+v", a, bres)
	}
}

func TestValidateRejects(t *testing.T) {
	f := newFixture(t)
	bad := []*Query{
		{ID: 1, GroupBy: -1}, // no aggs
		{ID: 2, Aggs: []AggExpr{{Op: OpSum, Attr: 999}}, GroupBy: -1},                                      // bad attr
		{ID: 3, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: 999},                                              // bad group attr
		{ID: 4, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1, GroupDim: &DimJoin{}},                         // dim w/o group
		{ID: 5, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1, Where: []Conjunct{{}}},                        // empty conjunct
		{ID: 6, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1, Derived: []Ratio{{Num: 5}}},                   // bad derived
		{ID: 7, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1, Limit: -1},                                    // bad limit
		{ID: 8, Aggs: []AggExpr{{Op: OpArgMinRatio, Attr: 2, Attr2: 999}}, GroupBy: -1},                    // bad denominator
		{ID: 9, Aggs: []AggExpr{{Op: OpCount}}, Where: []Conjunct{{PredInt(999, vec.Lt, 0)}}, GroupBy: -1}, // bad pred attr
	}
	for _, q := range bad {
		if err := q.Validate(f.sch); err == nil {
			t.Errorf("query %d validated, want error", q.ID)
		}
	}
}

func TestQueryCodecRoundTrip(t *testing.T) {
	f := newFixture(t)
	q := &Query{
		ID: 77,
		Where: []Conjunct{
			{PredInt(f.calls, vec.Gt, 3), PredFloat(f.cost, vec.Le, 12.5)},
			{PredInt(f.dur, vec.Eq, 40)},
		},
		Aggs:     []AggExpr{{Op: OpSum, Attr: f.dur}, {Op: OpArgMinRatio, Attr: f.cost, Attr2: f.dur}},
		GroupBy:  f.zip,
		GroupDim: &DimJoin{Table: "RegionInfo", Column: "city"},
		Derived:  []Ratio{{Num: 0, Den: 1}},
		Limit:    100,
	}
	got, err := DecodeQuery(EncodeQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, q) {
		t.Fatalf("round trip:\ngot  %+v\nwant %+v", got, q)
	}
	// Queries without optional parts round-trip too.
	q2 := &Query{ID: 1, Aggs: []AggExpr{{Op: OpCount}}, GroupBy: -1}
	got2, err := DecodeQuery(EncodeQuery(q2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, q2) {
		t.Fatalf("round trip 2: got %+v", got2)
	}
	if _, err := DecodeQuery([]byte{1, 2}); err == nil {
		t.Fatal("truncated query decoded")
	}
}

func TestPartialCodecRoundTrip(t *testing.T) {
	f := newFixture(t)
	q := &Query{
		ID:      12,
		Aggs:    []AggExpr{{Op: OpCount}, {Op: OpMax, Attr: f.dur}, {Op: OpArgMax, Attr: f.dur}},
		GroupBy: f.zip,
	}
	ex := NewExecutor(f.sch, f.dims)
	p := NewPartial(q)
	for _, b := range f.cm.Snapshot() {
		if err := ex.ProcessBucket(b, q, p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := DecodePartial(EncodePartial(p))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Finalize(q), p.Finalize(q)) {
		t.Fatal("partial codec round trip changed the finalized result")
	}
	if _, err := DecodePartial([]byte{9}); err == nil {
		t.Fatal("truncated partial decoded")
	}
}
